package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pollCounts waits for the instance's pool to reach the wanted
// (idle, live) state; busy workers retire on release, so convergence
// is eventual.
func pollCounts(t *testing.T, r *Instance, wantIdle, wantLive int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := r.rt.DebugSnapshot()
		if snap.Pool != nil && snap.Pool.Idle == wantIdle && snap.Pool.Live == wantLive {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not reach idle=%d live=%d: %+v", wantIdle, wantLive, snap.Pool)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInstanceCloseDuringParallelRegions closes an instance while
// several goroutines are mid-region: nothing deadlocks, every region
// completes its work, the pooled workers all retire (no leak), and the
// instance remains usable afterwards via spawned goroutines.
func TestInstanceCloseDuringParallelRegions(t *testing.T) {
	r := NewRuntime(WithPool(true), WithDefaultNumThreads(4))
	if !r.PoolEnabled() {
		t.Fatal("pool not enabled")
	}

	const drivers, regionsPerDriver, iters = 4, 20, 2000
	var total atomic.Int64
	var wg sync.WaitGroup
	started := make(chan struct{})
	var startOnce sync.Once
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := r.rt.NewContext()
			for reg := 0; reg < regionsPerDriver; reg++ {
				err := (&TC{ctx: tc}).Parallel(func(tc *TC) {
					startOnce.Do(func() { close(started) })
					var local int64
					for i := 0; i < iters; i++ {
						local++
					}
					total.Add(local)
				}, WithNumThreads(4))
				if err != nil {
					t.Errorf("Parallel during close: %v", err)
					return
				}
			}
		}()
	}

	// Close mid-flight, concurrently with the drivers.
	<-started
	r.Close()
	wg.Wait()

	if want := int64(drivers * regionsPerDriver * 4 * iters); total.Load() != want {
		t.Errorf("work done = %d, want %d (regions lost iterations across Close)", total.Load(), want)
	}
	// Busy workers retire as their regions release: no pooled worker
	// may outlive the close.
	pollCounts(t, r, 0, 0)

	// The instance stays usable, spawning goroutines per region.
	var after atomic.Int64
	err := r.Parallel(func(tc *TC) { after.Add(1) }, WithNumThreads(4))
	if err != nil {
		t.Fatalf("Parallel after Close: %v", err)
	}
	if after.Load() != 4 {
		t.Errorf("post-close team ran %d threads, want 4", after.Load())
	}
	pollCounts(t, r, 0, 0) // and it must not repopulate the pool
}

// TestInstanceCloseRaces runs Close concurrently with itself and with
// in-flight regions; Close is idempotent and never wedges a region.
func TestInstanceCloseRaces(t *testing.T) {
	for round := 0; round < 5; round++ {
		r := NewRuntime(WithPool(true), WithDefaultNumThreads(2))
		var wg sync.WaitGroup
		for d := 0; d < 3; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tc := r.rt.NewContext()
				for reg := 0; reg < 10; reg++ {
					_ = (&TC{ctx: tc}).Parallel(func(tc *TC) {}, WithNumThreads(2))
				}
			}()
		}
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.Close()
			}()
		}
		wg.Wait()
		pollCounts(t, r, 0, 0)
	}
}
