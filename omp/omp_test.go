package omp

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelHello(t *testing.T) {
	var seen sync.Map
	err := Parallel(func(tc *TC) {
		seen.Store(tc.ThreadNum(), true)
		if tc.NumThreads() != 4 {
			t.Errorf("NumThreads = %d", tc.NumThreads())
		}
		if !tc.InParallel() {
			t.Error("InParallel false inside region")
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, ok := seen.Load(i); !ok {
			t.Fatalf("thread %d missing", i)
		}
	}
}

func TestPiReduction(t *testing.T) {
	// The paper's Fig. 1 workload through the native API.
	const n = 100000
	w := 1.0 / n
	pi, err := ParallelReduce(0, n, 0.0, Sum[float64],
		func(tc *TC, i int, acc float64) float64 {
			local := (float64(i) + 0.5) * w
			return acc + 4.0/(1.0+local*local)
		}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	pi *= w
	if math.Abs(pi-math.Pi) > 1e-6 {
		t.Fatalf("pi = %.10f", pi)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	const n = 1000
	hits := make([]int32, n)
	err := ParallelFor(0, n, func(tc *TC, i int) {
		atomic.AddInt32(&hits[i], 1)
	}, WithNumThreads(8), WithSched(Dynamic(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
}

func TestForStepNegative(t *testing.T) {
	var mu sync.Mutex
	var got []int
	err := Parallel(func(tc *TC) {
		if err := tc.ForStep(10, 0, -2, func(i int) {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		}); err != nil {
			t.Error(err)
		}
	}, WithNumThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("visited %v", got)
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for _, want := range []int{10, 8, 6, 4, 2} {
		if !seen[want] {
			t.Fatalf("missing %d in %v", want, got)
		}
	}
}

func TestForCollapse(t *testing.T) {
	var count atomic.Int64
	err := Parallel(func(tc *TC) {
		err := tc.ForCollapse([][3]int{{0, 6, 1}, {0, 7, 1}}, func(idx []int) {
			if idx[0] < 0 || idx[0] >= 6 || idx[1] < 0 || idx[1] >= 7 {
				t.Errorf("bad index %v", idx)
			}
			count.Add(1)
		}, WithSched(Dynamic(5)))
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 42 {
		t.Fatalf("count = %d, want 42", count.Load())
	}
}

func TestSingleAndMaster(t *testing.T) {
	var singles, masters atomic.Int64
	err := Parallel(func(tc *TC) {
		if err := tc.Single(func() { singles.Add(1) }); err != nil {
			t.Error(err)
		}
		tc.Master(func() { masters.Add(1) })
		if err := tc.Barrier(); err != nil {
			t.Error(err)
		}
	}, WithNumThreads(6))
	if err != nil {
		t.Fatal(err)
	}
	if singles.Load() != 1 || masters.Load() != 1 {
		t.Fatalf("singles=%d masters=%d", singles.Load(), masters.Load())
	}
}

func TestSingleCopyPrivate(t *testing.T) {
	vals := make([]any, 4)
	err := Parallel(func(tc *TC) {
		v, err := tc.SingleCopyPrivate(func() any { return "broadcast" })
		if err != nil {
			t.Error(err)
			return
		}
		vals[tc.ThreadNum()] = v
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != "broadcast" {
			t.Fatalf("thread %d got %v", i, v)
		}
	}
}

func TestSections(t *testing.T) {
	var a, b, c atomic.Int64
	err := Parallel(func(tc *TC) {
		err := tc.Sections(
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
		)
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Fatalf("sections ran %d/%d/%d times", a.Load(), b.Load(), c.Load())
	}
}

func TestTasksFibonacci(t *testing.T) {
	var fibTask func(tc *TC, n int, out *int64)
	fibTask = func(tc *TC, n int, out *int64) {
		if n <= 1 {
			*out = int64(n)
			return
		}
		var f1, f2 int64
		if err := tc.Task(func(tt *TC) { fibTask(tt, n-1, &f1) }, WithIf(n > 10)); err != nil {
			t.Error(err)
		}
		if err := tc.Task(func(tt *TC) { fibTask(tt, n-2, &f2) }, WithIf(n > 10)); err != nil {
			t.Error(err)
		}
		if err := tc.TaskWait(); err != nil {
			t.Error(err)
		}
		*out = f1 + f2
	}
	var result int64
	err := Parallel(func(tc *TC) {
		if err := tc.Single(func() { fibTask(tc, 18, &result) }); err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if result != 2584 {
		t.Fatalf("fib(18) = %d", result)
	}
}

func TestCriticalProtectsSharedState(t *testing.T) {
	counter := 0
	err := Parallel(func(tc *TC) {
		for i := 0; i < 500; i++ {
			tc.Critical("", func() { counter++ })
		}
	}, WithNumThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	if counter != 4000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestAtomicHelper(t *testing.T) {
	x := 0
	err := Parallel(func(tc *TC) {
		for i := 0; i < 500; i++ {
			tc.Atomic(1, func() { x++ })
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if x != 2000 {
		t.Fatalf("x = %d", x)
	}
}

func TestOrderedLoop(t *testing.T) {
	var mu sync.Mutex
	var order []int
	err := Parallel(func(tc *TC) {
		err := tc.For(0, 32, func(i int) {
			if err := tc.Ordered(i, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			}); err != nil {
				t.Error(err)
			}
		}, WithOrdered(), WithSched(Dynamic(2)))
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered sequence broken: %v", order)
		}
	}
}

func TestIfClauseSerializes(t *testing.T) {
	err := Parallel(func(tc *TC) {
		if tc.NumThreads() != 1 {
			t.Errorf("if(false): team size %d", tc.NumThreads())
		}
	}, WithNumThreads(8), WithIf(false))
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedParallelAPI(t *testing.T) {
	SetNested(true)
	defer SetNested(false)
	var innerCount atomic.Int64
	err := Parallel(func(outer *TC) {
		err := outer.Parallel(func(inner *TC) {
			innerCount.Add(1)
			if inner.Level() != 2 {
				t.Errorf("level = %d", inner.Level())
			}
			if inner.TeamSize(1) != 2 {
				t.Errorf("team size at level 1 = %d", inner.TeamSize(1))
			}
		}, WithNumThreads(2))
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if innerCount.Load() != 4 {
		t.Fatalf("inner ran %d times, want 4", innerCount.Load())
	}
}

func TestGlobalAPIRoundTrip(t *testing.T) {
	old := GetMaxThreads()
	defer SetNumThreads(old)
	SetNumThreads(3)
	if GetMaxThreads() != 3 {
		t.Fatalf("GetMaxThreads = %d", GetMaxThreads())
	}
	if err := SetSchedule(ScheduleGuided, 9); err != nil {
		t.Fatal(err)
	}
	kind, chunk := GetSchedule()
	if kind != ScheduleGuided || chunk != 9 {
		t.Fatalf("schedule = %v,%d", kind, chunk)
	}
	SetDynamic(true)
	if !GetDynamic() {
		t.Fatal("dynamic lost")
	}
	SetDynamic(false)
	SetMaxActiveLevels(5)
	if GetMaxActiveLevels() != 5 {
		t.Fatal("max active levels lost")
	}
	if GetWTime() < 0 || GetWTick() <= 0 {
		t.Fatal("wtime/wtick")
	}
	if Root().ThreadNum() != 0 || Root().NumThreads() != 1 {
		t.Fatal("root context")
	}
}

func TestReduceForWithinParallel(t *testing.T) {
	total := int64(0)
	err := Parallel(func(tc *TC) {
		part, err := ReduceFor(tc, 1, 101, int64(0), Sum[int64],
			func(i int, acc int64) int64 { return acc + int64(i) })
		if err != nil {
			t.Error(err)
			return
		}
		tc.Critical("", func() { total += part })
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if total != 5050 {
		t.Fatalf("sum = %d", total)
	}
}

func TestMinMaxCombiners(t *testing.T) {
	minV, err := ParallelReduce(0, 100, int64(1<<60), Min[int64],
		func(tc *TC, i int, acc int64) int64 {
			v := int64((i*37)%100 - 50)
			if v < acc {
				return v
			}
			return acc
		}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	maxV, err := ParallelReduce(0, 100, int64(-1<<60), Max[int64],
		func(tc *TC, i int, acc int64) int64 {
			v := int64((i*37)%100 - 50)
			if v > acc {
				return v
			}
			return acc
		}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if minV != -50 || maxV != 49 {
		t.Fatalf("min=%d max=%d", minV, maxV)
	}
}
