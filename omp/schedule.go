package omp

// Schedule is a loop scheduling policy value: the kind and its chunk
// size travel together, the way a schedule clause names both at once.
// Build one with the constructors below and hand it to WithSched (or
// Instance-level SetSchedule via its Kind/Chunk). The zero value is
// schedule(static) with the runtime's default chunking.
type Schedule struct {
	Kind  ScheduleKind
	Chunk int
}

// Static is schedule(static, chunk): iterations are divided at loop
// entry, round-robin in chunks, or in one contiguous block per thread
// when chunk is 0. Static loops are eligible for the compiled tier's
// runtime-aware kernels (docs/runtime.md, "Compiled kernels").
func Static(chunk int) Schedule { return Schedule{Kind: ScheduleStatic, Chunk: chunk} }

// Dynamic is schedule(dynamic, chunk): threads claim chunks from a
// shared counter as they finish; chunk 0 means the policy default (1).
func Dynamic(chunk int) Schedule { return Schedule{Kind: ScheduleDynamic, Chunk: chunk} }

// Guided is schedule(guided, chunk): like Dynamic with decreasing
// chunk sizes, never below chunk (0 means the policy default).
func Guided(chunk int) Schedule { return Schedule{Kind: ScheduleGuided, Chunk: chunk} }

// RuntimeSched is schedule(runtime): the policy is read from the
// run-sched ICV (SetSchedule / OMP_SCHEDULE) at loop entry.
func RuntimeSched() Schedule { return Schedule{Kind: ScheduleRuntime} }

// AutoSched is schedule(auto): the runtime picks the policy (the
// def-sched ICV, static unless configured otherwise).
func AutoSched() Schedule { return Schedule{Kind: ScheduleAuto} }
