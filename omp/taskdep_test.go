package omp

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestTaskDependChain: WithDepend(InOut(...)) serializes tasks in
// submission order; the unsynchronized slice append only survives the
// race detector because the chain is real.
func TestTaskDependChain(t *testing.T) {
	const n = 24
	var order []int
	err := Parallel(func(tc *TC) {
		err := tc.Single(func() {
			for i := 0; i < n; i++ {
				i := i
				if err := tc.Task(func(*TC) {
					order = append(order, i)
				}, WithDepend(InOut("chain")...)); err != nil {
					t.Error(err)
				}
			}
			if err := tc.TaskWait(); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: chain not serialized %v", i, v, order)
		}
	}
	if len(order) != n {
		t.Fatalf("%d tasks ran, want %d", len(order), n)
	}
}

// TestTaskGroupWaitsForSubtree: TaskGroup returns only after the
// grandchild completed.
func TestTaskGroupWaitsForSubtree(t *testing.T) {
	var done atomic.Bool
	err := Parallel(func(tc *TC) {
		err := tc.Single(func() {
			if err := tc.TaskGroup(func(g *TC) {
				if err := g.Task(func(child *TC) {
					if err := child.Task(func(*TC) {
						done.Store(true)
					}); err != nil {
						t.Error(err)
					}
				}); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Error(err)
			}
			if !done.Load() {
				t.Error("TaskGroup returned before grandchild completed")
			}
		})
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
}

// TestTaskGroupSurfacesErrors: a panicking task inside the group
// surfaces as an error from TaskGroup, not from Parallel.
func TestTaskGroupSurfacesErrors(t *testing.T) {
	var groupErr error
	err := Parallel(func(tc *TC) {
		serr := tc.Single(func() {
			groupErr = tc.TaskGroup(func(g *TC) {
				if err := g.Task(func(*TC) {
					panic("group task boom")
				}); err != nil {
					t.Error(err)
				}
			})
		})
		if serr != nil {
			t.Error(serr)
		}
	}, WithNumThreads(2))
	if err != nil {
		t.Fatalf("Parallel returned %v, want nil (error consumed by TaskGroup)", err)
	}
	if groupErr == nil || !strings.Contains(groupErr.Error(), "panic in task") {
		t.Fatalf("TaskGroup returned %v, want panic-in-task error", groupErr)
	}
}

// TestTaskLoopPartitions: TaskLoop covers [lo,hi) exactly once and
// respects WithNumTasks chunk counts.
func TestTaskLoopPartitions(t *testing.T) {
	const total = 97
	var visits [total]atomic.Int32
	var chunks atomic.Int32
	err := Parallel(func(tc *TC) {
		err := tc.Single(func() {
			if err := tc.TaskLoop(0, total, func(_ *TC, lo, hi int) {
				chunks.Add(1)
				for i := lo; i < hi; i++ {
					visits[i].Add(1)
				}
			}, WithNumTasks(5)); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if n := visits[i].Load(); n != 1 {
			t.Fatalf("iteration %d visited %d times", i, n)
		}
	}
	if got := chunks.Load(); got != 5 {
		t.Fatalf("%d chunks, want 5", got)
	}
}

// TestCancelTaskGroupStopsPending: tasks behind a dependence on the
// running task never start after cancellation.
func TestCancelTaskGroupStopsPending(t *testing.T) {
	var ran atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})
	err := Parallel(func(tc *TC) {
		err := tc.Single(func() {
			gerr := tc.TaskGroup(func(g *TC) {
				if err := g.Task(func(*TC) {
					ran.Add(1)
					close(started)
					<-gate
				}, WithDepend(Out("w")...)); err != nil {
					t.Error(err)
				}
				for i := 0; i < 8; i++ {
					if err := g.Task(func(*TC) {
						ran.Add(1)
					}, WithDepend(InOut("w")...)); err != nil {
						t.Error(err)
					}
				}
				<-started
				if !g.CancelTaskGroup() {
					t.Error("CancelTaskGroup found no active group")
				}
				close(gate)
			})
			if gerr != nil {
				t.Error(gerr)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}, WithNumThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d task bodies ran after cancel, want 1", got)
	}
}
