package omp

import (
	"io"

	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/rt"
)

// This file exposes the observability subsystem (internal/ompt) on the
// public API. A Tool receives one Record per runtime event — parallel
// region begin/end, barrier enter/exit with wait time, loop chunk
// dispatch, task lifecycle, critical-section contention, reduction
// merges. The bundled Tracer collects records into per-thread ring
// buffers and exports Chrome trace_event JSON (chrome://tracing,
// Perfetto) or a plain-text summary.

// Tool consumes runtime events; see ompt.Tool.
type Tool = ompt.Tool

// TraceRecord is one runtime event; see ompt.Record.
type TraceRecord = ompt.Record

// Tracer is the bundled event collector; see ompt.Tracer.
type Tracer = ompt.Tracer

// TraceStats is the aggregate view of a trace; see ompt.Stats.
type TraceStats = ompt.Stats

// NewTracer returns a collector with the given per-thread ring size
// (0 means the default); attach it with SetTool or WithTool.
func NewTracer(ringSize int) *Tracer { return ompt.NewTracer(ringSize) }

// SetTool attaches t to the default runtime (nil detaches). Attach
// before entering the parallel regions to observe.
func SetTool(t Tool) { defaultRuntime().SetTool(t) }

// EnableTrace attaches a fresh Tracer to the default runtime and
// returns it. Run the regions of interest, then export with the
// tracer's WriteChromeTrace or WriteSummary (after the regions have
// completed — the collector is not synchronized against regions still
// in flight).
func EnableTrace() *Tracer {
	t := ompt.NewTracer(0)
	defaultRuntime().SetTool(t)
	return t
}

// DisableTrace detaches any tool from the default runtime.
func DisableTrace() { defaultRuntime().SetTool(nil) }

// WriteChromeTrace writes records collected by the default runtime's
// Tracer (installed by EnableTrace) as Chrome trace_event JSON. It
// fails with a MisuseError when no Tracer is attached.
func WriteChromeTrace(w io.Writer) error {
	tr, err := defaultTracer()
	if err != nil {
		return err
	}
	return tr.WriteChromeTrace(w)
}

// WriteTraceSummary writes the plain-text summary of the default
// runtime's Tracer.
func WriteTraceSummary(w io.Writer) error {
	tr, err := defaultTracer()
	if err != nil {
		return err
	}
	return tr.WriteSummary(w)
}

func defaultTracer() (*Tracer, error) {
	r := defaultRuntime()
	if tr, ok := r.Tool().(*Tracer); ok {
		return tr, nil
	}
	if tr := r.EnvTracer(); tr != nil {
		return tr, nil
	}
	return nil, &rt.MisuseError{Msg: "no tracer attached; call EnableTrace first"}
}
