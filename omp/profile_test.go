package omp

import (
	"encoding/json"
	"os"
	"testing"
)

// TestProfileBreakdownAndFlight covers the public observability
// surface added with the time-attribution profiler: WithLabel buckets
// a region under its name, ProfileBreakdown returns the merged view,
// and the flight recorder writes a loadable on-demand dump.
func TestProfileBreakdownAndFlight(t *testing.T) {
	r := NewRuntime(WithDefaultNumThreads(2))
	defer r.Close()

	if err := r.Parallel(func(tc *TC) {
		_ = tc.For(0, 1000, func(i int) {})
	}, WithLabel("hotspot")); err != nil {
		t.Fatal(err)
	}

	p := r.ProfileBreakdown()
	if p == nil || p.TotalNS <= 0 {
		t.Fatalf("ProfileBreakdown = %+v, want a populated breakdown", p)
	}
	var found bool
	for _, b := range p.Buckets {
		if b.Label == "hotspot" {
			found = true
			if b.TotalNS <= 0 || b.NS["compute"] <= 0 {
				t.Errorf("hotspot bucket lacks compute time: %+v", b)
			}
		}
	}
	if !found {
		t.Fatalf("no bucket labeled hotspot: %+v", p.Buckets)
	}

	dir, err := r.EnableFlightRecorder(t.TempDir())
	if err != nil {
		t.Fatalf("EnableFlightRecorder: %v", err)
	}
	path, err := r.FlightDump("api test")
	if err != nil {
		t.Fatalf("FlightDump: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading dump from %s: %v", dir, err)
	}
	var doc struct {
		Reason  string   `json:"reason"`
		Profile *Profile `json:"profile"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump not loadable: %v", err)
	}
	if doc.Reason != "api test" || doc.Profile == nil {
		t.Errorf("dump = reason %q profile %v, want the trigger reason and a breakdown", doc.Reason, doc.Profile)
	}
}
