package omp

import "github.com/omp4go/omp4go/internal/rt"

// TaskOption configures a task directive.
type TaskOption func(*taskOptions)

type taskOptions struct {
	ifSet    bool
	ifVal    bool
	finalSet bool
	finalVal bool
}

// TaskIf is the task if clause: when cond is false the task is
// undeferred and runs immediately on the encountering thread.
func TaskIf(cond bool) TaskOption {
	return func(o *taskOptions) { o.ifSet, o.ifVal = true, cond }
}

// TaskFinal is the final clause: descendants of a final task are
// executed inline instead of being deferred.
func TaskFinal(cond bool) TaskOption {
	return func(o *taskOptions) { o.finalSet, o.finalVal = true, cond }
}

// Task packages fn into a task pushed onto the submitting thread's
// work-stealing deque; idle team threads steal it if the owner is
// busy (the task directive). See docs/tasking.md for the scheduler
// design and the OMP4GO_TASK_SCHED knob.
func (tc *TC) Task(fn func(tc *TC), opts ...TaskOption) error {
	var o taskOptions
	for _, opt := range opts {
		opt(&o)
	}
	ro := rt.TaskOpts{}
	if o.ifSet {
		ro.If, ro.IfSet = o.ifVal, true
	}
	if o.finalSet {
		ro.Final, ro.FinalSet = o.finalVal, true
	}
	return tc.ctx.SubmitTask(ro, func(c *rt.Context) error {
		fn(&TC{ctx: c})
		return nil
	})
}

// TaskWait suspends the current task until all its direct children
// complete, draining the local deque and stealing from teammates
// meanwhile (the taskwait directive).
func (tc *TC) TaskWait() error { return tc.ctx.TaskWait() }
