package omp

import "github.com/omp4go/omp4go/internal/rt"

// TaskOption is the historical name of Option from when tasks had a
// separate clause surface.
//
// Deprecated: use Option; WithIf and WithFinal apply to Task directly.
type TaskOption = Option

// TaskIf is the task if clause.
//
// Deprecated: use WithIf, which serves Parallel and Task uniformly.
func TaskIf(cond bool) Option { return WithIf(cond) }

// TaskFinal is the final clause.
//
// Deprecated: use WithFinal.
func TaskFinal(cond bool) Option { return WithFinal(cond) }

// Task packages fn into a task pushed onto the submitting thread's
// work-stealing deque; idle team threads steal it if the owner is
// busy (the task directive). WithIf(false) makes the task undeferred
// and WithFinal(true) runs every descendant inline. See
// docs/tasking.md for the scheduler design and the OMP4GO_TASK_SCHED
// knob.
func (tc *TC) Task(fn func(tc *TC), opts ...Option) error {
	o := buildOptions(opts)
	ro := rt.TaskOpts{}
	if o.ifSet {
		ro.If, ro.IfSet = o.ifVal, true
	}
	if o.finalSet {
		ro.Final, ro.FinalSet = o.finalVal, true
	}
	return tc.ctx.SubmitTask(ro, func(c *rt.Context) error {
		fn(&TC{ctx: c})
		return nil
	})
}

// TaskWait suspends the current task until all its direct children
// complete, draining the local deque and stealing from teammates
// meanwhile (the taskwait directive).
func (tc *TC) TaskWait() error { return tc.ctx.TaskWait() }
