package omp

import "github.com/omp4go/omp4go/internal/rt"

// Task packages fn into a task pushed onto the submitting thread's
// work-stealing deque; idle team threads steal it if the owner is
// busy (the task directive). WithIf(false) makes the task undeferred
// and WithFinal(true) runs every descendant inline. See
// docs/tasking.md for the scheduler design and the OMP4GO_TASK_SCHED
// knob.
func (tc *TC) Task(fn func(tc *TC), opts ...Option) error {
	o := buildOptions(opts)
	ro := rt.TaskOpts{Depends: o.depends}
	if o.ifSet {
		ro.If, ro.IfSet = o.ifVal, true
	}
	if o.finalSet {
		ro.Final, ro.FinalSet = o.finalVal, true
	}
	return tc.ctx.SubmitTask(ro, func(c *rt.Context) error {
		fn(&TC{ctx: c})
		return nil
	})
}

// TaskWait suspends the current task until all its direct children
// complete, draining the local deque and stealing from teammates
// meanwhile (the taskwait directive). Errors recorded by completed
// children (panics in deferred tasks) surface here.
func (tc *TC) TaskWait() error { return tc.ctx.TaskWait() }

// Dep is one task dependence: a storage key plus its direction.
type Dep = rt.Dep

// In builds read dependences (depend(in: ...)): the task waits for
// the last prior sibling that wrote any of the keys.
func In(keys ...any) []Dep { return rt.In(keys...) }

// Out builds write dependences (depend(out: ...)): the task waits for
// the last writer of and all readers since each key.
func Out(keys ...any) []Dep { return rt.Out(keys...) }

// InOut builds read-write dependences (depend(inout: ...)); ordering
// is identical to Out.
func InOut(keys ...any) []Dep { return rt.InOut(keys...) }

// TaskGroup runs body and waits until every task generated inside it
// — and all their descendants — completed (the taskgroup construct,
// unlike TaskWait's direct-children-only scope). Errors from tasks of
// the group are returned. A panic in body still closes the group
// before unwinding so the region's task accounting stays balanced.
func (tc *TC) TaskGroup(body func(tc *TC)) error {
	tc.ctx.TaskgroupBegin()
	done := false
	defer func() {
		if !done {
			_ = tc.ctx.TaskgroupEnd()
		}
	}()
	body(tc)
	done = true
	return tc.ctx.TaskgroupEnd()
}

// CancelTaskGroup marks the innermost enclosing taskgroup cancelled:
// its tasks (and their descendants) that have not yet started are
// skipped; running tasks may poll TaskGroupCancelled to stop early.
// Reports whether a taskgroup was active.
func (tc *TC) CancelTaskGroup() bool { return tc.ctx.TaskgroupCancel() }

// TaskGroupCancelled reports whether any taskgroup enclosing the
// current task has been cancelled — the cancellation-point check for
// long-running task bodies.
func (tc *TC) TaskGroupCancelled() bool { return tc.ctx.TaskgroupCancelled() }

// TaskLoop chunks the iterations of [lo, hi) into child tasks (the
// taskloop construct). Chunk sizing comes from WithGrainsize or
// WithNumTasks (default: one chunk per team member); body receives
// each chunk's [lo, hi) subrange. Unless WithNoGroup is given, an
// implicit taskgroup makes TaskLoop return only after every chunk
// task and its descendants completed.
func (tc *TC) TaskLoop(lo, hi int, body func(tc *TC, lo, hi int), opts ...Option) error {
	o := buildOptions(opts)
	b := rt.ForBounds(rt.Triplet{Start: int64(lo), End: int64(hi), Step: 1})
	ro := rt.TaskLoopOpts{
		Grainsize: o.grainsize,
		NumTasks:  o.numTasks,
		NoGroup:   o.nogroup,
		Depends:   o.depends,
	}
	if o.ifSet {
		ro.IfSet, ro.If = true, o.ifVal
	}
	if o.finalSet {
		ro.FinalSet, ro.Final = true, o.finalVal
	}
	base := int64(lo)
	return tc.ctx.TaskLoop(b, ro, func(c *rt.Context, clo, chi int64) error {
		body(&TC{ctx: c}, int(base+clo), int(base+chi))
		return nil
	})
}
