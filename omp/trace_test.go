package omp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/omp4go/omp4go/internal/ompt"
)

// TestEnableTraceParallelFor traces a native-API parallel loop on the
// default runtime and checks both exporters.
func TestEnableTraceParallelFor(t *testing.T) {
	tr := EnableTrace()
	defer DisableTrace()
	err := ParallelFor(0, 1000, func(tc *TC, i int) {}, WithNumThreads(2))
	if err != nil {
		t.Fatalf("ParallelFor: %v", err)
	}

	stats := tr.Stats()
	if stats.Regions < 1 {
		t.Fatalf("Regions = %d, want >= 1", stats.Regions)
	}
	if stats.Records == 0 {
		t.Fatalf("no events recorded")
	}

	var trace bytes.Buffer
	if err := WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("empty trace")
	}

	var summary bytes.Buffer
	if err := WriteTraceSummary(&summary); err != nil {
		t.Fatalf("WriteTraceSummary: %v", err)
	}
	if summary.Len() == 0 {
		t.Fatalf("empty summary")
	}
}

func TestWriteChromeTraceWithoutTracer(t *testing.T) {
	DisableTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err == nil {
		t.Fatalf("WriteChromeTrace with no tracer should fail")
	}
}

// TestWithToolAllModes traces the MiniPy pi program through every
// execution mode: the @omp-generated code must produce parallel,
// loop-chunk and critical events in each.
func TestWithToolAllModes(t *testing.T) {
	for _, mode := range []Mode{ModePure, ModeHybrid, ModeCompiled, ModeCompiledDT} {
		tracer := NewTracer(0)
		p, err := Load(piProgram, "pi.py", mode, WithTool(tracer))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if _, err := p.Call("pi", 10000); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		counts := map[ompt.EventKind]int{}
		for _, r := range tracer.Records() {
			counts[r.Kind]++
		}
		if counts[ompt.EvParallelBegin] < 1 || counts[ompt.EvParallelEnd] < 1 {
			t.Fatalf("%v: no parallel events: %v", mode, counts)
		}
		// CompiledDT runs the static loop as a compiled kernel: one
		// kernel-enter per member replaces the per-chunk events. Every
		// other mode claims chunks through the bridge.
		if mode == ModeCompiledDT {
			if counts[ompt.EvKernelEnter] < 1 {
				t.Fatalf("%v: no kernel events: %v", mode, counts)
			}
		} else if counts[ompt.EvLoopChunk] < 1 {
			t.Fatalf("%v: no chunk events: %v", mode, counts)
		}
		if counts[ompt.EvCriticalAcquire] < 1 {
			t.Fatalf("%v: no critical (reduction merge) events: %v", mode, counts)
		}
		if counts[ompt.EvBarrierExit] < counts[ompt.EvBarrierEnter] {
			t.Fatalf("%v: unbalanced barrier events: %v", mode, counts)
		}
	}
}

// TestEnvTracePipeline covers OMP4GO_TRACE through the MiniPy
// pipeline: env activation at Load, FlushTrace writing the file.
func TestEnvTracePipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pi-trace.json")
	p, err := Load(piProgram, "pi.py", ModeHybrid, WithEnv(func(k string) string {
		if k == "OMP4GO_TRACE" {
			return path
		}
		return ""
	}))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := p.Call("pi", 10000); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := p.FlushTrace(); err != nil {
		t.Fatalf("FlushTrace: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("empty trace file")
	}
}
