// Package omp is the public API of omp4go, a Go implementation of the
// OMP4Py system (CGO 2026): OpenMP's directive-based fork-join
// programming model, including worksharing, scheduling policies,
// reductions, tasking, and the OpenMP 3.0 runtime library routines.
//
// The package offers two surfaces:
//
//   - A native Go API (this file and its siblings): Parallel, For,
//     Task, Critical, Barrier, ... operating on *TC team contexts.
//   - A MiniPy pipeline (pipeline.go): Exec/Run compile programs
//     written in the Python-subset MiniPy language, where OpenMP
//     directives appear as `with omp("...")` blocks under an @omp
//     decorator, exactly as in the paper.
//
// A program begins on the initial thread. Parallel forks a team whose
// members each receive a *TC; the encountering goroutine becomes
// thread 0 of the team:
//
//	omp.Parallel(func(tc *omp.TC) {
//	    fmt.Println("hello from", tc.ThreadNum())
//	}, omp.WithNumThreads(4))
package omp

import (
	"sync"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/rt"
)

// ScheduleKind names a loop scheduling policy.
type ScheduleKind = directive.ScheduleKind

// Loop scheduling policy kinds, consumed by SetSchedule and returned
// by GetSchedule. Loop constructs take a full Schedule value instead:
// build one with the Static, Dynamic, Guided or RuntimeSched
// constructors (schedule.go) and pass it through WithSched.
const (
	ScheduleStatic  = directive.ScheduleStatic
	ScheduleDynamic = directive.ScheduleDynamic
	ScheduleGuided  = directive.ScheduleGuided
	ScheduleAuto    = directive.ScheduleAuto
	ScheduleRuntime = directive.ScheduleRuntime
)

var (
	defaultMu sync.Mutex
	defaultRT *rt.Runtime
	defaultTC *TC
)

// defaultRuntime returns the process-wide runtime (atomic layer, the
// paper's Hybrid default), creating it on first use.
func defaultRuntime() *rt.Runtime {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRT == nil {
		defaultRT = rt.New(rt.LayerAtomic)
		defaultTC = &TC{ctx: defaultRT.NewContext()}
	}
	return defaultRT
}

// Root returns the initial-thread context of the default runtime.
// Calls made outside any parallel region (taskwait, barrier, the
// thread-info routines) go through it.
func Root() *TC {
	defaultRuntime()
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultTC
}

// TC is a team context: the per-thread handle threaded through every
// construct. CPython keeps this in thread-local storage; Go has no
// TLS, so the context is explicit.
type TC struct {
	ctx *rt.Context
}

// ThreadNum returns this thread's number within the current team
// (omp_get_thread_num).
func (tc *TC) ThreadNum() int { return tc.ctx.GetThreadNum() }

// NumThreads returns the size of the current team
// (omp_get_num_threads).
func (tc *TC) NumThreads() int { return tc.ctx.GetNumThreads() }

// InParallel reports whether the thread runs inside an active
// parallel region (omp_in_parallel).
func (tc *TC) InParallel() bool { return tc.ctx.InParallel() }

// Level returns the number of enclosing parallel regions
// (omp_get_level).
func (tc *TC) Level() int { return tc.ctx.GetLevel() }

// ActiveLevel returns the number of enclosing active parallel regions
// (omp_get_active_level).
func (tc *TC) ActiveLevel() int { return tc.ctx.GetActiveLevel() }

// AncestorThreadNum returns the thread number of the ancestor at the
// given level (omp_get_ancestor_thread_num).
func (tc *TC) AncestorThreadNum(level int) int { return tc.ctx.GetAncestorThreadNum(level) }

// TeamSize returns the team size at the given nesting level
// (omp_get_team_size).
func (tc *TC) TeamSize(level int) int { return tc.ctx.GetTeamSize(level) }

// IsMaster reports whether this thread is thread 0 of its team.
func (tc *TC) IsMaster() bool { return tc.ctx.Master() }

// Parallel forks a team executing body, using the default runtime and
// the initial-thread context (the outermost parallel directive).
func Parallel(body func(tc *TC), opts ...Option) error {
	return Root().Parallel(body, opts...)
}

// Parallel forks a nested team from this context (a nested parallel
// directive; enable with SetNested).
func (tc *TC) Parallel(body func(tc *TC), opts ...Option) error {
	o := buildOptions(opts)
	po := rt.ParallelOpts{NumThreads: o.numThreads, Label: o.label}
	if o.ifSet {
		po.If, po.IfSet = o.ifVal, true
	}
	return tc.ctx.Runtime().Parallel(tc.ctx, po, func(c *rt.Context) error {
		inner := &TC{ctx: c}
		body(inner)
		return nil
	})
}

// Barrier waits for every thread of the current team, executing
// pending tasks while waiting (the barrier directive).
func (tc *TC) Barrier() error { return tc.ctx.Barrier() }

// Critical runs fn inside the named critical section; the empty name
// is the unnamed critical (the critical directive).
func (tc *TC) Critical(name string, fn func()) {
	tc.ctx.CriticalEnter(name)
	defer tc.ctx.CriticalExit(name)
	fn()
}

// Atomic performs update atomically with respect to every other
// Atomic call with the same cell identity (the atomic construct for
// locations that hardware atomics cannot cover).
func (tc *TC) Atomic(cellID uint64, update func()) {
	tc.ctx.Runtime().AtomicUpdate(cellID, update)
}

// Master runs fn on thread 0 only; no implied barrier (the master
// directive).
func (tc *TC) Master(fn func()) {
	if tc.ctx.Master() {
		fn()
	}
}

// Single runs fn on exactly one thread of the team, with the implicit
// barrier of the single directive.
func (tc *TC) Single(fn func()) error { return tc.single(fn, false) }

// SingleNowait is Single without the implicit barrier (the nowait
// clause).
func (tc *TC) SingleNowait(fn func()) error { return tc.single(fn, true) }

func (tc *TC) single(fn func(), nowait bool) error {
	s, err := tc.ctx.SingleBegin(nowait, false)
	if err != nil {
		return err
	}
	if s.Executes() {
		fn()
	}
	_, err = s.End()
	return err
}

// SingleCopyPrivate runs fn on one thread and broadcasts its return
// value to the whole team (the copyprivate clause).
func (tc *TC) SingleCopyPrivate(fn func() any) (any, error) {
	s, err := tc.ctx.SingleBegin(false, true)
	if err != nil {
		return nil, err
	}
	if s.Executes() {
		if err := s.CopyPrivate(fn()); err != nil {
			return nil, err
		}
	}
	return s.End()
}

// Sections distributes the given blocks over the team, each executed
// exactly once (the sections directive).
func (tc *TC) Sections(blocks ...func()) error {
	return tc.sections(blocks, false)
}

// SectionsNowait is Sections without the implicit barrier.
func (tc *TC) SectionsNowait(blocks ...func()) error {
	return tc.sections(blocks, true)
}

func (tc *TC) sections(blocks []func(), nowait bool) error {
	s, err := tc.ctx.SectionsBegin(len(blocks), nowait)
	if err != nil {
		return err
	}
	for {
		id := s.Next()
		if id < 0 {
			break
		}
		blocks[id]()
	}
	return s.End()
}

// Ordered runs fn in iteration order within a loop declared with
// WithOrdered; i is the current loop variable value.
func (tc *TC) Ordered(i int, fn func()) error {
	if err := tc.ctx.OrderedBegin(int64(i)); err != nil {
		return err
	}
	fn()
	return tc.ctx.OrderedEnd()
}

// SetNumThreads sets the default team size (omp_set_num_threads).
func SetNumThreads(n int) { defaultRuntime().SetNumThreads(n) }

// GetMaxThreads returns the default team size (omp_get_max_threads).
func GetMaxThreads() int { return defaultRuntime().GetMaxThreads() }

// SetNested enables nested parallelism (omp_set_nested).
func SetNested(v bool) { defaultRuntime().SetNested(v) }

// GetNested reports whether nested parallelism is enabled
// (omp_get_nested).
func GetNested() bool { return defaultRuntime().GetNested() }

// SetDynamic sets the dynamic-adjustment ICV (omp_set_dynamic).
func SetDynamic(v bool) { defaultRuntime().SetDynamic(v) }

// GetDynamic returns the dynamic-adjustment ICV (omp_get_dynamic).
func GetDynamic() bool { return defaultRuntime().GetDynamic() }

// SetSchedule sets the policy applied by schedule(runtime)
// (omp_set_schedule).
func SetSchedule(kind ScheduleKind, chunk int) error {
	return defaultRuntime().SetSchedule(rt.Schedule{Kind: kind, Chunk: int64(chunk)})
}

// GetSchedule returns the runtime schedule (omp_get_schedule).
func GetSchedule() (ScheduleKind, int) {
	s := defaultRuntime().GetSchedule()
	return s.Kind, int(s.Chunk)
}

// SetWaitPolicy sets the wait-policy ICV ("active" or "passive")
// controlling how the runtime's idle pool workers wait for the next
// parallel region, without going through OMP_WAIT_POLICY.
func SetWaitPolicy(policy string) error { return defaultRuntime().SetWaitPolicy(policy) }

// GetWaitPolicy returns the wait-policy ICV ("active" or "passive";
// the default is "passive").
func GetWaitPolicy() string { return defaultRuntime().GetWaitPolicy() }

// SetMaxActiveLevels sets the nesting cap (omp_set_max_active_levels).
func SetMaxActiveLevels(n int) { defaultRuntime().SetMaxActiveLevels(n) }

// GetMaxActiveLevels returns the nesting cap
// (omp_get_max_active_levels).
func GetMaxActiveLevels() int { return defaultRuntime().GetMaxActiveLevels() }

// GetWTime returns elapsed wall-clock seconds (omp_get_wtime).
func GetWTime() float64 { return defaultRuntime().GetWTime() }

// GetWTick returns timer resolution in seconds (omp_get_wtick).
func GetWTick() float64 { return defaultRuntime().GetWTick() }

// Lock is an OpenMP simple lock (omp_init_lock family).
type Lock = rt.Lock
