package omp

import (
	"bytes"
	"strings"
	"testing"
)

const piProgram = `
from omp4py import *

@omp
def pi(n: int) -> float:
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local: float = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
`

func TestLoadAndCallAllModes(t *testing.T) {
	for _, mode := range []Mode{ModePure, ModeHybrid, ModeCompiled, ModeCompiledDT} {
		p, err := Load(piProgram, "pi.py", mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		v, err := p.Call("pi", 20000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		f, ok := v.(float64)
		if !ok || f < 3.14159 || f > 3.14160 {
			t.Fatalf("%v: pi = %v", mode, v)
		}
		if p.Mode() != mode {
			t.Fatalf("mode = %v", p.Mode())
		}
		if len(p.Transformed) != 1 || p.Transformed[0] != "pi" {
			t.Fatalf("%v: transformed = %v", mode, p.Transformed)
		}
	}
}

func TestExecTopLevel(t *testing.T) {
	var buf bytes.Buffer
	err := Exec(`
from omp4py import *

@omp
def count():
    hits = [0] * 3
    with omp("parallel num_threads(3)"):
        hits[omp_get_thread_num()] = 1
    return sum(hits)

print(count())
`, "count.py", ModeHybrid, WithStdout(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != "3\n" {
		t.Fatalf("output %q", buf.String())
	}
}

func TestExecSyntaxErrors(t *testing.T) {
	if err := Exec("def broken(:\n", "b.py", ModeHybrid); err == nil {
		t.Fatal("parse error not reported")
	}
	err := Exec(`
@omp
def f():
    with omp("parallell"):
        pass
`, "d.py", ModeHybrid)
	if err == nil || !strings.Contains(err.Error(), "unknown directive") {
		t.Fatalf("err = %v", err)
	}
}

func TestDumpOptionSurfaces(t *testing.T) {
	p, err := Load(`
@omp(dump=True)
def f():
    with omp("parallel"):
        pass
`, "dump.py", ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	dump, ok := p.Dumps["f"]
	if !ok || !strings.Contains(dump, "__omp.parallel_run") {
		t.Fatalf("dump = %q", dump)
	}
}

func TestCallArgumentConversions(t *testing.T) {
	p, err := Load(`
def describe(xs, label, flag):
    total = 0.0
    for v in xs:
        total += v
    return (label, total, flag, len(xs))
`, "conv.py", ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Call("describe", []float64{1.5, 2.5}, "sum", true)
	if err != nil {
		t.Fatal(err)
	}
	tup, ok := v.([]any)
	if !ok || len(tup) != 4 {
		t.Fatalf("result = %#v", v)
	}
	if tup[0] != "sum" || tup[1] != 4.0 || tup[2] != true || tup[3] != int64(2) {
		t.Fatalf("result = %#v", tup)
	}
	if _, err := p.Call("describe", make(chan int), "x", false); err == nil {
		t.Fatal("unconvertible argument accepted")
	}
	if _, err := p.Call("missing"); err == nil {
		t.Fatal("missing function accepted")
	}
}

func TestDictResultConversion(t *testing.T) {
	p, err := Load(`
def counts(words):
    d = {}
    for w in words:
        d[w] = d.get(w, 0) + 1
    return d
`, "wc.py", ModeCompiled)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Call("counts", []any{"a", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := v.(map[any]any)
	if !ok || m["a"] != int64(2) || m["b"] != int64(1) {
		t.Fatalf("result = %#v", v)
	}
}

func TestWithGILStillCorrect(t *testing.T) {
	p, err := Load(piProgram, "pi.py", ModePure, WithGIL())
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Call("pi", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if f := v.(float64); f < 3.14 || f > 3.15 {
		t.Fatalf("pi under GIL = %v", f)
	}
}

func TestHybridHonoursPerFunctionCompile(t *testing.T) {
	p, err := Load(`
@omp(compile=True)
def fast(n: int) -> int:
    total: int = 0
    for i in range(n):
        total += i
    return total
`, "mix.py", ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Call("fast", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(499500) {
		t.Fatalf("fast(1000) = %v", v)
	}
}
