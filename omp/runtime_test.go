package omp

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestNewRuntimeInstance covers the constructed-runtime surface:
// option application, pool toggling, and independence from the
// process-wide default runtime.
func TestNewRuntimeInstance(t *testing.T) {
	r := NewRuntime(WithWaitPolicy("active"), WithDefaultNumThreads(3))
	defer r.Close()
	if got := r.GetWaitPolicy(); got != "active" {
		t.Errorf("wait policy = %q, want active", got)
	}
	if !r.PoolEnabled() {
		t.Error("pool disabled by default on a constructed runtime")
	}
	var ran atomic.Int32
	if err := r.Parallel(func(tc *TC) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Errorf("default team ran %d threads, want 3", ran.Load())
	}

	spawn := NewRuntime(WithPool(false))
	defer spawn.Close()
	if spawn.PoolEnabled() {
		t.Error("WithPool(false) runtime still reports pool enabled")
	}
	if err := spawn.Parallel(func(tc *TC) {}, WithNumThreads(2)); err != nil {
		t.Fatal(err)
	}

	// The default runtime's ICVs are untouched by instance options.
	if got := GetWaitPolicy(); got != "passive" {
		t.Errorf("default runtime wait policy = %q, want passive", got)
	}
}

// TestRuntimeUsableAfterClose: Close retires pool workers but the
// runtime keeps working on the spawn fallback.
func TestRuntimeUsableAfterClose(t *testing.T) {
	r := NewRuntime(WithDefaultNumThreads(2))
	if err := r.Parallel(func(tc *TC) {}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	var ran atomic.Int32
	if err := r.Parallel(func(tc *TC) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Errorf("post-Close region ran %d threads, want 2", ran.Load())
	}
}

// TestPackageWaitPolicy covers the package-level ICV routines.
func TestPackageWaitPolicy(t *testing.T) {
	defer func() {
		if err := SetWaitPolicy("passive"); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetWaitPolicy("active"); err != nil {
		t.Fatal(err)
	}
	if got := GetWaitPolicy(); got != "active" {
		t.Errorf("wait policy = %q, want active", got)
	}
	if err := SetWaitPolicy("busy"); err == nil {
		t.Error("SetWaitPolicy(busy) succeeded, want error")
	}
}

// TestNestedConcurrentParallelReduce is the regression test for the
// fixed reduction-slot name: concurrent and nested ParallelReduce
// regions each merge under their own slot, so totals never cross
// regions.
func TestNestedConcurrentParallelReduce(t *testing.T) {
	SetNested(true)
	defer SetNested(false)

	// Concurrent top-level reductions from plain goroutines.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := int64(g+1) * 1000 * 999 / 2
			got, err := ParallelReduce(0, 1000, int64(0), Sum[int64],
				func(tc *TC, i int, acc int64) int64 {
					return acc + int64(i)*int64(g+1)
				}, WithNumThreads(4))
			if err != nil {
				errs[g] = err
				return
			}
			if got != want {
				t.Errorf("goroutine %d: sum = %d, want %d", g, got, want)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// Reductions fired from inside an enclosing parallel region.
	var badInner atomic.Int32
	err := Parallel(func(tc *TC) {
		got, err := ParallelReduce(0, 100, 0, Sum[int],
			func(_ *TC, i int, acc int) int { return acc + i },
			WithNumThreads(2))
		if err != nil || got != 100*99/2 {
			badInner.Add(1)
		}
	}, WithNumThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	if badInner.Load() != 0 {
		t.Errorf("%d inner reductions wrong", badInner.Load())
	}
}

// TestUnifiedTaskOptions: WithIf and WithFinal drive Task directly
// (the unified clause surface; the old TaskIf/TaskFinal aliases are
// gone).
func TestUnifiedTaskOptions(t *testing.T) {
	run := func(opt Option) int32 {
		var undeferredOn atomic.Int32
		err := Parallel(func(tc *TC) {
			if tc.ThreadNum() != 0 {
				return
			}
			if err := tc.Task(func(tt *TC) {
				undeferredOn.Store(int32(tt.ThreadNum()) + 1)
			}, opt); err != nil {
				t.Error(err)
			}
			if err := tc.TaskWait(); err != nil {
				t.Error(err)
			}
		}, WithNumThreads(2))
		if err != nil {
			t.Fatal(err)
		}
		return undeferredOn.Load()
	}
	// An if(false) task is undeferred: it runs on the submitting
	// thread (thread 0 → stored value 1).
	if got := run(WithIf(false)); got != 1 {
		t.Errorf("WithIf(false) task ran on thread %d, want 0", got-1)
	}

	// final(true): descendants execute inline.
	var order []int
	err := Parallel(func(tc *TC) {
		if tc.ThreadNum() != 0 {
			return
		}
		if err := tc.Task(func(tt *TC) {
			order = append(order, 1)
			if err := tt.Task(func(*TC) { order = append(order, 2) }, WithFinal(true)); err != nil {
				t.Error(err)
			}
			order = append(order, 3)
		}, WithFinal(true), WithIf(false)); err != nil {
			t.Error(err)
		}
		if err := tc.TaskWait(); err != nil {
			t.Error(err)
		}
	}, WithNumThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("final-task execution order = %v, want [1 2 3]", order)
	}
}
