package omp

import (
	"time"

	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/rt"
)

// This file exposes the always-on metrics, the live introspection
// endpoint, and the stall watchdog on the public API. Unlike the
// Tool/Tracer event stream (trace.go), the metrics are collected
// unconditionally — striped per-thread counters merged on demand — so
// they can be scraped in production without attaching anything.

// MetricsServer is a running metrics/introspection endpoint; see
// rt.MetricsServer. It serves:
//
//	/metrics      Prometheus text exposition of the runtime counters
//	/debug/omp    JSON snapshot: ICVs, pool state, in-flight regions
//	/debug/pprof  standard Go profiles (goroutines carry omp_region /
//	              omp_gtid labels while the endpoint is running)
type MetricsServer = rt.MetricsServer

// StallReport is one watchdog finding; see rt.StallReport.
type StallReport = rt.StallReport

// ServeMetrics starts the metrics/introspection endpoint for the
// default runtime on addr (e.g. ":9090"; use ":0" to pick a free
// port, then read it back with Addr). The same endpoint is activated
// by the OMP4GO_METRICS environment variable without code changes.
func ServeMetrics(addr string) (*MetricsServer, error) {
	return defaultRuntime().ServeMetrics(addr)
}

// MetricsCounters returns a merged snapshot of the default runtime's
// always-on counters, keyed by Prometheus metric name (e.g.
// "omp4go_regions_forked_total").
func MetricsCounters() map[string]int64 {
	return defaultRuntime().MetricsSnapshot().CounterMap()
}

// StartWatchdog arms the stall watchdog on the default runtime: a
// sampler flags barriers and taskwaits that fail to complete within
// threshold, reporting which threads arrived and which are missing to
// stderr and to StallReports / the /debug/omp endpoint. The same
// watchdog is armed by OMP4GO_WATCHDOG (e.g. "5s").
func StartWatchdog(threshold time.Duration) { defaultRuntime().StartWatchdog(threshold) }

// StopWatchdog disarms the default runtime's stall watchdog.
func StopWatchdog() { defaultRuntime().StopWatchdog() }

// StallReports returns the default runtime's recent watchdog
// findings, most recent first.
func StallReports() []StallReport { return defaultRuntime().StallReports() }

// MultiTool combines tools into one (each event fans out to all, in
// order), so a Chrome-trace Tracer and a custom consumer can observe
// the same run; see ompt.Multi. Nil entries are dropped; combining
// zero tools returns nil, which detaches when passed to SetTool.
func MultiTool(tools ...Tool) Tool { return ompt.Multi(tools...) }

// ServeMetrics starts the metrics/introspection endpoint for this
// isolated runtime.
func (r *Instance) ServeMetrics(addr string) (*MetricsServer, error) {
	return r.rt.ServeMetrics(addr)
}

// MetricsCounters returns this runtime's merged counter snapshot,
// keyed by Prometheus metric name.
func (r *Instance) MetricsCounters() map[string]int64 {
	return r.rt.MetricsSnapshot().CounterMap()
}

// StartWatchdog arms the stall watchdog on this runtime.
func (r *Instance) StartWatchdog(threshold time.Duration) { r.rt.StartWatchdog(threshold) }

// StopWatchdog disarms this runtime's stall watchdog.
func (r *Instance) StopWatchdog() { r.rt.StopWatchdog() }

// StallReports returns this runtime's recent watchdog findings.
func (r *Instance) StallReports() []StallReport { return r.rt.StallReports() }

// ProfileBucket is the per-state time breakdown of one labeled region
// group: NS maps state name ("compute", "barrier_wait", "taskwait",
// "depend_stall", "taskgroup_wait", "steal_idle", "critical",
// "kernel") to accumulated nanoseconds, Counts to the number of
// attribution samples.
type ProfileBucket struct {
	Label   string           `json:"label"`
	NS      map[string]int64 `json:"ns"`
	Counts  map[string]int64 `json:"counts"`
	TotalNS int64            `json:"total_ns"`
}

// Profile is a snapshot of the time-attribution profiler: where team
// threads spent their time, per state and region label. Unlabeled
// multi-thread regions accumulate under the empty label.
type Profile struct {
	Buckets []ProfileBucket `json:"buckets"`
	TotalNS int64           `json:"total_ns"`
}

func profileFrom(r *rt.Runtime) *Profile {
	s := r.ProfileSnapshot()
	if s == nil {
		return nil
	}
	p := &Profile{TotalNS: s.TotalNS, Buckets: make([]ProfileBucket, 0, len(s.Buckets))}
	for _, b := range s.Buckets {
		p.Buckets = append(p.Buckets, ProfileBucket{
			Label: b.Label, NS: b.NS, Counts: b.Counts, TotalNS: b.TotalNS,
		})
	}
	return p
}

// ProfileBreakdown returns the default runtime's time-attribution
// snapshot, or nil when profiling is disabled (OMP4GO_PROFILE=off).
// The profiler is on by default: multi-thread parallel regions
// classify every team-thread nanosecond into compute, barrier_wait,
// taskwait, depend_stall, taskgroup_wait, steal_idle, critical and
// kernel states.
func ProfileBreakdown() *Profile { return profileFrom(defaultRuntime()) }

// ProfileBreakdown returns this runtime's time-attribution snapshot.
func (r *Instance) ProfileBreakdown() *Profile { return profileFrom(r.rt) }

// EnableFlightRecorder activates the default runtime's flight
// recorder, writing post-mortem dumps into dir ("" selects a default
// under the OS temp directory). Dumps — a JSON document with the
// debug snapshot, profile breakdown and recent introspection samples,
// plus a Chrome trace of recent events — are written when the
// watchdog flags a stall or FlightDump is called. Also activated by
// OMP4GO_FLIGHT=on or OMP4GO_FLIGHT=<dir>. Returns the dump
// directory.
func EnableFlightRecorder(dir string) (string, error) {
	fr, err := defaultRuntime().EnableFlight(dir)
	if err != nil {
		return "", err
	}
	return fr.Dir(), nil
}

// EnableFlightRecorder activates this runtime's flight recorder.
func (r *Instance) EnableFlightRecorder(dir string) (string, error) {
	fr, err := r.rt.EnableFlight(dir)
	if err != nil {
		return "", err
	}
	return fr.Dir(), nil
}

// FlightDump triggers an on-demand flight-recorder dump on the
// default runtime, returning the dump file's path. The recorder must
// be enabled first.
func FlightDump(reason string) (string, error) { return defaultRuntime().FlightDump(reason) }

// FlightDump triggers an on-demand dump on this runtime.
func (r *Instance) FlightDump(reason string) (string, error) { return r.rt.FlightDump(reason) }
