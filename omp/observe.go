package omp

import (
	"time"

	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/rt"
)

// This file exposes the always-on metrics, the live introspection
// endpoint, and the stall watchdog on the public API. Unlike the
// Tool/Tracer event stream (trace.go), the metrics are collected
// unconditionally — striped per-thread counters merged on demand — so
// they can be scraped in production without attaching anything.

// MetricsServer is a running metrics/introspection endpoint; see
// rt.MetricsServer. It serves:
//
//	/metrics      Prometheus text exposition of the runtime counters
//	/debug/omp    JSON snapshot: ICVs, pool state, in-flight regions
//	/debug/pprof  standard Go profiles (goroutines carry omp_region /
//	              omp_gtid labels while the endpoint is running)
type MetricsServer = rt.MetricsServer

// StallReport is one watchdog finding; see rt.StallReport.
type StallReport = rt.StallReport

// ServeMetrics starts the metrics/introspection endpoint for the
// default runtime on addr (e.g. ":9090"; use ":0" to pick a free
// port, then read it back with Addr). The same endpoint is activated
// by the OMP4GO_METRICS environment variable without code changes.
func ServeMetrics(addr string) (*MetricsServer, error) {
	return defaultRuntime().ServeMetrics(addr)
}

// MetricsCounters returns a merged snapshot of the default runtime's
// always-on counters, keyed by Prometheus metric name (e.g.
// "omp4go_regions_forked_total").
func MetricsCounters() map[string]int64 {
	return defaultRuntime().MetricsSnapshot().CounterMap()
}

// StartWatchdog arms the stall watchdog on the default runtime: a
// sampler flags barriers and taskwaits that fail to complete within
// threshold, reporting which threads arrived and which are missing to
// stderr and to StallReports / the /debug/omp endpoint. The same
// watchdog is armed by OMP4GO_WATCHDOG (e.g. "5s").
func StartWatchdog(threshold time.Duration) { defaultRuntime().StartWatchdog(threshold) }

// StopWatchdog disarms the default runtime's stall watchdog.
func StopWatchdog() { defaultRuntime().StopWatchdog() }

// StallReports returns the default runtime's recent watchdog
// findings, most recent first.
func StallReports() []StallReport { return defaultRuntime().StallReports() }

// MultiTool combines tools into one (each event fans out to all, in
// order), so a Chrome-trace Tracer and a custom consumer can observe
// the same run; see ompt.Multi. Nil entries are dropped; combining
// zero tools returns nil, which detaches when passed to SetTool.
func MultiTool(tools ...Tool) Tool { return ompt.Multi(tools...) }

// ServeMetrics starts the metrics/introspection endpoint for this
// isolated runtime.
func (r *Instance) ServeMetrics(addr string) (*MetricsServer, error) {
	return r.rt.ServeMetrics(addr)
}

// MetricsCounters returns this runtime's merged counter snapshot,
// keyed by Prometheus metric name.
func (r *Instance) MetricsCounters() map[string]int64 {
	return r.rt.MetricsSnapshot().CounterMap()
}

// StartWatchdog arms the stall watchdog on this runtime.
func (r *Instance) StartWatchdog(threshold time.Duration) { r.rt.StartWatchdog(threshold) }

// StopWatchdog disarms this runtime's stall watchdog.
func (r *Instance) StopWatchdog() { r.rt.StopWatchdog() }

// StallReports returns this runtime's recent watchdog findings.
func (r *Instance) StallReports() []StallReport { return r.rt.StallReports() }
