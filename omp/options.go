package omp

import "github.com/omp4go/omp4go/internal/rt"

// Option configures an OpenMP construct, mirroring directive clauses.
// One option type serves every construct — Parallel, For, Task — the
// way a clause applies to whichever directive carries it; options that
// a construct does not consume are ignored, as OMP4Py ignores clauses
// foreign to a directive's runtime entry point. WithIf, for example,
// serializes a Parallel region and makes a Task undeferred, and
// WithFinal only has an effect on Task.
type Option func(*options)

type options struct {
	numThreads int
	ifSet      bool
	ifVal      bool
	schedSet   bool
	sched      rt.Schedule
	nowait     bool
	ordered    bool
	finalSet   bool
	finalVal   bool
	depends    []rt.Dep
	grainsize  int64
	numTasks   int64
	nogroup    bool
	label      string
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithNumThreads is the num_threads clause (Parallel).
func WithNumThreads(n int) Option {
	return func(o *options) { o.numThreads = n }
}

// WithLabel names the parallel region for the time-attribution
// profiler: the region's per-state time breakdown accumulates under
// this label (ProfileBreakdown, the omp4go_time_seconds_total series)
// instead of the shared default bucket. MiniPy-lowered regions are
// labeled automatically with their directive's source line.
func WithLabel(name string) Option {
	return func(o *options) { o.label = name }
}

// WithIf is the if clause: on Parallel, a false cond serializes the
// region (team of one); on Task, a false cond makes the task
// undeferred, running immediately on the encountering thread.
func WithIf(cond bool) Option {
	return func(o *options) { o.ifSet, o.ifVal = true, cond }
}

// WithFinal is the final clause (Task): descendants of a final task
// are included — executed inline instead of deferred.
func WithFinal(cond bool) Option {
	return func(o *options) { o.finalSet, o.finalVal = true, cond }
}

// WithDepend is the depend clause (Task, TaskLoop): the task is held
// back until every predecessor implied by its dependence records has
// completed. Build the records with In, Out and InOut; keys are
// compared by Go equality, so use values (strings, ints, small
// structs) that identify the storage the task reads or writes.
func WithDepend(deps ...Dep) Option {
	return func(o *options) { o.depends = append(o.depends, deps...) }
}

// WithGrainsize is the taskloop grainsize clause: chunks carry at
// least n iterations. Mutually exclusive with WithNumTasks.
func WithGrainsize(n int) Option {
	return func(o *options) { o.grainsize = int64(n) }
}

// WithNumTasks is the taskloop num_tasks clause: the iteration space
// splits into exactly n chunk tasks. Mutually exclusive with
// WithGrainsize.
func WithNumTasks(n int) Option {
	return func(o *options) { o.numTasks = int64(n) }
}

// WithNoGroup is the taskloop nogroup clause: the construct skips its
// implicit taskgroup, so completion is observed by the next TaskWait
// or barrier instead of by TaskLoop returning.
func WithNoGroup() Option {
	return func(o *options) { o.nogroup = true }
}

// WithSched is the schedule clause (For): pass a Schedule built with
// Static, Dynamic, Guided, RuntimeSched or AutoSched. Chunk 0 selects
// the policy default.
func WithSched(s Schedule) Option {
	return func(o *options) {
		o.schedSet = true
		o.sched = rt.Schedule{Kind: s.Kind, Chunk: int64(s.Chunk)}
	}
}

// WithSchedule is the schedule clause from separate kind and chunk
// arguments.
//
// Deprecated: use WithSched with a Schedule constructor, e.g.
// WithSched(Dynamic(64)).
func WithSchedule(kind ScheduleKind, chunk int) Option {
	return WithSched(Schedule{Kind: kind, Chunk: chunk})
}

// WithNoWait is the nowait clause: the worksharing construct skips
// its implicit barrier.
func WithNoWait() Option {
	return func(o *options) { o.nowait = true }
}

// WithOrdered is the ordered clause, enabling tc.Ordered inside the
// loop.
func WithOrdered() Option {
	return func(o *options) { o.ordered = true }
}
