package omp

import "github.com/omp4go/omp4go/internal/rt"

// Option configures a parallel region or worksharing loop, mirroring
// OpenMP clauses.
type Option func(*options)

type options struct {
	numThreads int
	ifSet      bool
	ifVal      bool
	schedSet   bool
	sched      rt.Schedule
	nowait     bool
	ordered    bool
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithNumThreads is the num_threads clause.
func WithNumThreads(n int) Option {
	return func(o *options) { o.numThreads = n }
}

// WithIf is the if clause: when cond is false the region runs
// serialized (teams of one) and tasks run undeferred.
func WithIf(cond bool) Option {
	return func(o *options) { o.ifSet, o.ifVal = true, cond }
}

// WithSchedule is the schedule clause; chunk 0 selects the policy
// default.
func WithSchedule(kind ScheduleKind, chunk int) Option {
	return func(o *options) {
		o.schedSet = true
		o.sched = rt.Schedule{Kind: kind, Chunk: int64(chunk)}
	}
}

// WithNoWait is the nowait clause: the worksharing construct skips
// its implicit barrier.
func WithNoWait() Option {
	return func(o *options) { o.nowait = true }
}

// WithOrdered is the ordered clause, enabling tc.Ordered inside the
// loop.
func WithOrdered() Option {
	return func(o *options) { o.ordered = true }
}
