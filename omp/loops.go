package omp

import (
	"strconv"
	"sync/atomic"

	"github.com/omp4go/omp4go/internal/rt"
)

// For distributes the iterations of [lo, hi) over the current team
// with step +1, implementing the for directive. Scheduling, nowait,
// and ordered come from options.
func (tc *TC) For(lo, hi int, body func(i int), opts ...Option) error {
	return tc.ForStep(lo, hi, 1, body, opts...)
}

// ForStep is For with an explicit (possibly negative) step.
func (tc *TC) ForStep(lo, hi, step int, body func(i int), opts ...Option) error {
	o := buildOptions(opts)
	b := rt.ForBounds(rt.Triplet{Start: int64(lo), End: int64(hi), Step: int64(step)})
	fo := rt.ForOpts{
		Sched:    o.sched,
		SchedSet: o.schedSet,
		Ordered:  o.ordered,
		NoWait:   o.nowait,
	}
	if err := tc.ctx.ForInit(b, fo); err != nil {
		return err
	}
	for b.ForNext() {
		loVal, hiVal := b.LoValue(), b.HiValue()
		if step > 0 {
			for i := loVal; i < hiVal; i += int64(step) {
				body(int(i))
			}
		} else {
			for i := loVal; i > hiVal; i += int64(step) {
				body(int(i))
			}
		}
	}
	return tc.ctx.ForEnd(b)
}

// ForCollapse distributes the collapsed iteration space of the given
// loop triplets (the collapse clause); body receives one loop
// variable value per level.
func (tc *TC) ForCollapse(loops [][3]int, body func(idx []int), opts ...Option) error {
	o := buildOptions(opts)
	trips := make([]rt.Triplet, len(loops))
	for i, l := range loops {
		trips[i] = rt.Triplet{Start: int64(l[0]), End: int64(l[1]), Step: int64(l[2])}
	}
	b := rt.ForBounds(trips...)
	fo := rt.ForOpts{
		Sched:    o.sched,
		SchedSet: o.schedSet,
		NoWait:   o.nowait,
	}
	if err := tc.ctx.ForInit(b, fo); err != nil {
		return err
	}
	idx := make([]int, len(loops))
	for b.ForNext() {
		for lin := b.Lo; lin < b.Hi; lin++ {
			vals := b.Unravel(lin)
			for d, v := range vals {
				idx[d] = int(v)
			}
			body(idx)
		}
	}
	return tc.ctx.ForEnd(b)
}

// ParallelFor is the combined parallel-for directive: it forks a team
// and distributes [lo, hi) over it.
func ParallelFor(lo, hi int, body func(tc *TC, i int), opts ...Option) error {
	return Parallel(func(tc *TC) {
		// The loop error surfaces through the region error; a
		// conforming loop cannot fail after ForInit succeeds.
		if err := tc.For(lo, hi, func(i int) { body(tc, i) }, opts...); err != nil {
			panic(err)
		}
	}, opts...)
}

// Number is the constraint for built-in numeric reductions.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 | ~float32 | ~float64
}

// ReduceFor runs a worksharing loop with a reduction: each thread
// folds its iterations into a private accumulator seeded with
// identity, and the partials are merged with combine inside a
// critical section — the code shape OMP4Py generates for
// reduction clauses (Fig. 2).
func ReduceFor[T any](tc *TC, lo, hi int, identity T,
	combine func(a, b T) T, body func(i int, acc T) T, opts ...Option) (T, error) {

	acc := identity
	err := tc.For(lo, hi, func(i int) {
		acc = body(i, acc)
	}, opts...)
	if err != nil {
		var zero T
		return zero, err
	}
	return acc, nil
}

// reduceSeq numbers ParallelReduce invocations so each region merges
// under its own critical-section slot. A fixed shared name would make
// every reduction in the process — including nested or concurrent
// regions — contend on one lock and blur per-region merge attribution
// in traces.
var reduceSeq atomic.Uint64

// ParallelReduce forks a team, folds [lo, hi) into per-thread
// accumulators, and merges them with combine under a per-region
// critical section, returning the combined result.
func ParallelReduce[T any](lo, hi int, identity T,
	combine func(a, b T) T, body func(tc *TC, i int, acc T) T, opts ...Option) (T, error) {

	slot := "__omp_reduce#" + strconv.FormatUint(reduceSeq.Add(1), 10)
	result := identity
	err := Parallel(func(tc *TC) {
		acc := identity
		if err := tc.For(lo, hi, func(i int) {
			acc = body(tc, i, acc)
		}, opts...); err != nil {
			panic(err)
		}
		tc.Critical(slot, func() {
			result = combine(result, acc)
		})
		tc.ctx.ReductionMerge(slot)
	}, opts...)
	// The slot name never recurs: release its lock object so unique
	// names do not accumulate in the runtime's critical table.
	Root().ctx.Runtime().DropCritical(slot)
	if err != nil {
		var zero T
		return zero, err
	}
	return result, nil
}

// Sum is a ready-made combiner for ParallelReduce.
func Sum[T Number](a, b T) T { return a + b }

// Max is a ready-made combiner for ParallelReduce.
func Max[T Number](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min is a ready-made combiner for ParallelReduce.
func Min[T Number](a, b T) T {
	if a < b {
		return a
	}
	return b
}
