package omp

import (
	"os"
	"time"

	"github.com/omp4go/omp4go/internal/rt"
)

// Runtime is an isolated OpenMP runtime instance: its own ICVs, its
// own persistent worker pool, fully independent of the process-wide
// default runtime the package-level functions use. Mirroring the
// paper's architecture, contexts from one runtime are foreign initial
// threads to another.
type Instance struct {
	rt   *rt.Runtime
	root *TC
}

// RuntimeOption configures a Runtime at construction, covering the
// knobs that are otherwise only reachable through environment
// variables.
type RuntimeOption func(*runtimeConfig)

type runtimeConfig struct {
	waitPolicy string
	poolSet    bool
	poolOn     bool
	numThreads int
	watchdog   time.Duration
}

// WithWaitPolicy sets the wait-policy ICV ("active" or "passive") for
// the new runtime's idle pool workers, overriding OMP_WAIT_POLICY.
// Invalid values are ignored, as they are in the environment.
func WithWaitPolicy(policy string) RuntimeOption {
	return func(c *runtimeConfig) { c.waitPolicy = policy }
}

// WithPool enables or disables the persistent worker pool for the new
// runtime, overriding OMP4GO_POOL. Disabled, every parallel region
// spawns fresh goroutines (the differential baseline).
func WithPool(enabled bool) RuntimeOption {
	return func(c *runtimeConfig) { c.poolSet, c.poolOn = true, enabled }
}

// WithDefaultNumThreads sets the nthreads ICV of the new runtime, as
// SetNumThreads does after construction.
func WithDefaultNumThreads(n int) RuntimeOption {
	return func(c *runtimeConfig) { c.numThreads = n }
}

// WithWatchdog arms the stall watchdog on the new runtime with the
// given threshold, as StartWatchdog does after construction and as
// OMP4GO_WATCHDOG does through the environment. Non-positive
// thresholds are ignored.
func WithWatchdog(threshold time.Duration) RuntimeOption {
	return func(c *runtimeConfig) { c.watchdog = threshold }
}

// NewRuntime creates an isolated runtime (atomic layer, the paper's
// Hybrid default). ICVs initialize from the OMP_* environment, then
// the options apply on top.
func NewRuntime(opts ...RuntimeOption) *Instance {
	var cfg runtimeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	getenv := os.Getenv
	if cfg.poolSet {
		pool := "off"
		if cfg.poolOn {
			pool = "on"
		}
		getenv = func(k string) string {
			if k == "OMP4GO_POOL" {
				return pool
			}
			return os.Getenv(k)
		}
	}
	inner := rt.NewWithEnv(rt.LayerAtomic, getenv)
	if cfg.waitPolicy != "" {
		// Mirror the environment's tolerance: a bad value keeps the
		// default instead of failing construction.
		_ = inner.SetWaitPolicy(cfg.waitPolicy)
	}
	if cfg.numThreads > 0 {
		inner.SetNumThreads(cfg.numThreads)
	}
	if cfg.watchdog > 0 {
		inner.StartWatchdog(cfg.watchdog)
	}
	return &Instance{rt: inner, root: &TC{ctx: inner.NewContext()}}
}

// Root returns the runtime's initial-thread context.
func (r *Instance) Root() *TC { return r.root }

// Parallel forks a team on this runtime from its initial thread.
func (r *Instance) Parallel(body func(tc *TC), opts ...Option) error {
	return r.root.Parallel(body, opts...)
}

// Close retires the runtime's parked pool workers. Optional — idle
// workers retire on their own — but deterministic; the runtime stays
// usable, spawning goroutines per region afterwards.
func (r *Instance) Close() { r.rt.Shutdown() }

// SetNumThreads sets the default team size (omp_set_num_threads).
func (r *Instance) SetNumThreads(n int) { r.rt.SetNumThreads(n) }

// SetNested enables nested parallelism (omp_set_nested).
func (r *Instance) SetNested(v bool) { r.rt.SetNested(v) }

// SetWaitPolicy sets the wait-policy ICV ("active" or "passive").
func (r *Instance) SetWaitPolicy(policy string) error { return r.rt.SetWaitPolicy(policy) }

// GetWaitPolicy returns the wait-policy ICV.
func (r *Instance) GetWaitPolicy() string { return r.rt.GetWaitPolicy() }

// PoolEnabled reports whether parallel regions dispatch to the
// persistent worker pool.
func (r *Instance) PoolEnabled() bool { return r.rt.PoolEnabled() }
