package omp

import (
	"fmt"
	"io"

	"github.com/omp4go/omp4go/internal/compile"
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/transform"
)

// Mode selects an OMP4Py execution mode for MiniPy programs (§III-B):
// how user code executes and which runtime flavour backs the OpenMP
// primitives.
type Mode int

// Execution modes.
const (
	// ModePure interprets user code and coordinates the runtime with
	// mutexes (the pure-Python runtime).
	ModePure Mode = iota
	// ModeHybrid interprets user code over the atomic native runtime
	// (the cruntime; OMP4Py's default).
	ModeHybrid
	// ModeCompiled compiles user code to closures with boxed values
	// (Cython without annotations).
	ModeCompiled
	// ModeCompiledDT additionally honours int/float annotations for
	// unboxed native execution (Cython with data types).
	ModeCompiledDT
)

// String returns the paper's mode name.
func (m Mode) String() string {
	switch m {
	case ModePure:
		return "Pure"
	case ModeHybrid:
		return "Hybrid"
	case ModeCompiled:
		return "Compiled"
	case ModeCompiledDT:
		return "CompiledDT"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ProgramOption configures Load/Exec.
type ProgramOption func(*programConfig)

type programConfig struct {
	stdout io.Writer
	gil    bool
	getenv func(string) string
	tool   Tool
}

// WithStdout routes print() output (default os.Stdout).
func WithStdout(w io.Writer) ProgramOption {
	return func(c *programConfig) { c.stdout = w }
}

// WithGIL enables the GIL-enabled-interpreter model for interpreted
// modes (the pre-free-threading baseline).
func WithGIL() ProgramOption {
	return func(c *programConfig) { c.gil = true }
}

// WithEnv supplies OMP_* environment variables (default os.Getenv).
func WithEnv(getenv func(string) string) ProgramOption {
	return func(c *programConfig) { c.getenv = getenv }
}

// WithTool attaches an observability tool (see EnableTrace / Tracer)
// to the program's runtime before any parallel region runs.
func WithTool(t Tool) ProgramOption {
	return func(c *programConfig) { c.tool = t }
}

// Program is a loaded MiniPy module: its top-level code has run and
// its functions are callable from Go.
type Program struct {
	in   *interp.Interp
	mode Mode
	// Transformed lists the @omp-decorated functions that were
	// rewritten, and Dumps their generated source for functions
	// decorated with @omp(dump=True).
	Transformed []string
	Dumps       map[string]string
}

// Load parses source, applies the @omp transformation, compiles it
// when the mode asks for it, and executes the module top level.
func Load(source, filename string, mode Mode, opts ...ProgramOption) (*Program, error) {
	cfg := programConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	mod, err := minipy.Parse(source, filename)
	if err != nil {
		return nil, err
	}
	res, err := transform.Module(mod)
	if err != nil {
		return nil, err
	}
	layer := rt.LayerAtomic
	if mode == ModePure {
		layer = rt.LayerMutex
	}
	in := interp.New(interp.Options{
		Layer:  layer,
		GIL:    cfg.gil && (mode == ModePure || mode == ModeHybrid),
		Stdout: cfg.stdout,
		Getenv: cfg.getenv,
	})
	if cfg.tool != nil {
		in.Runtime().SetTool(cfg.tool)
	}
	switch mode {
	case ModeCompiled, ModeCompiledDT:
		if err := compile.Install(in, mod, compile.Options{Typed: mode == ModeCompiledDT}); err != nil {
			return nil, err
		}
	case ModeHybrid:
		// Per-function @omp(compile=True) is honoured in Hybrid mode,
		// matching §III-F's mixing of Hybrid and Compiled functions.
		if len(res.Compile) > 0 {
			if err := compile.Install(in, mod, compile.Options{Only: res.Compile}); err != nil {
				return nil, err
			}
		}
	}
	if err := in.RunModule(mod); err != nil {
		return nil, err
	}
	return &Program{in: in, mode: mode, Transformed: res.Functions, Dumps: res.Dumps}, nil
}

// Exec is Load for programs that do all their work at module level.
func Exec(source, filename string, mode Mode, opts ...ProgramOption) error {
	_, err := Load(source, filename, mode, opts...)
	return err
}

// Mode reports the program's execution mode.
func (p *Program) Mode() Mode { return p.mode }

// Runtime exposes the program's OpenMP runtime, e.g. for SetTool or
// the ICV accessors.
func (p *Program) Runtime() *rt.Runtime { return p.in.Runtime() }

// FlushTrace writes the trace activated by OMP4GO_TRACE=<file> to its
// file; a no-op when the variable was not set. Call once the traced
// program functions have returned.
func (p *Program) FlushTrace() error { return p.in.Runtime().FlushTrace() }

// Call invokes a module-level function with Go values (bool, int,
// int64, float64, string, []float64, []int64, and nested []any are
// converted) and converts the result back the same way.
func (p *Program) Call(fn string, args ...any) (any, error) {
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("omp: argument %d: %w", i, err)
		}
		vals[i] = v
	}
	out, err := p.in.CallFunction(fn, vals...)
	if err != nil {
		return nil, err
	}
	return fromValue(out), nil
}

func toValue(a any) (interp.Value, error) {
	switch v := a.(type) {
	case nil, bool, int64, float64, string:
		return v, nil
	case int:
		return int64(v), nil
	case float32:
		return float64(v), nil
	case []float64:
		return interp.AdoptFloats(v), nil
	case []int64:
		return interp.AdoptInts(v), nil
	case []any:
		elts := make([]interp.Value, len(v))
		for i, e := range v {
			ev, err := toValue(e)
			if err != nil {
				return nil, err
			}
			elts[i] = ev
		}
		return interp.NewList(elts), nil
	}
	return nil, fmt.Errorf("unsupported Go value of type %T", a)
}

func fromValue(v interp.Value) any {
	switch t := v.(type) {
	case nil, bool, int64, float64, string:
		return t
	case *interp.List:
		if fs, ok := t.FloatData(); ok {
			return append([]float64(nil), fs...)
		}
		if is, ok := t.IntData(); ok {
			return append([]int64(nil), is...)
		}
		out := make([]any, t.Len())
		for i := range out {
			out[i] = fromValue(t.Get(i))
		}
		return out
	case *interp.Tuple:
		out := make([]any, len(t.Elts))
		for i, e := range t.Elts {
			out[i] = fromValue(e)
		}
		return out
	case *interp.Dict:
		out := make(map[any]any, t.Len())
		for _, kv := range t.Items() {
			out[fromValue(kv[0])] = fromValue(kv[1])
		}
		return out
	}
	return v
}
