GO ?= go

.PHONY: build test race vet verify depend-race kernels-race metrics-smoke serve-smoke profile-smoke mpi-smoke mpi-race bench bench-compare bench-report bench-gate trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the packages with concurrency-sensitive tests under the
# race detector (runtime, tracing, public API). The timeout is a
# deadlock watchdog: a scheduler bug that wedges a barrier fails the
# run in 120s instead of hanging CI.
race:
	$(GO) test -race -timeout 120s ./internal/rt/... ./internal/ompt/... ./internal/serve/... ./omp/...

vet:
	$(GO) vet ./...

# metrics-smoke exercises the observability endpoint end to end: a
# runtime started with OMP4GO_METRICS on a random port runs a parallel
# region, then /metrics is scraped over real HTTP and the region and
# barrier counters are asserted non-zero. -count=1 defeats the test
# cache so the smoke actually runs on every invocation.
metrics-smoke:
	$(GO) test -run='TestMetricsEndpointSmoke|TestMetricsAgreeWithTraceSummary' -count=1 -timeout 60s ./internal/rt/

# serve-smoke exercises the execution service over real HTTP: every
# directive mode runs a parallel program end to end, an oversized body
# is rejected with 413, and an over-quota program is killed with the
# typed quota error. -count=1 defeats the test cache so the smoke
# actually runs on every invocation.
serve-smoke:
	$(GO) test -run='TestModes|TestBodyTooLarge|TestQuotaKill' -count=1 -timeout 120s ./internal/serve/

# profile-smoke exercises the time-attribution profiler and the flight
# recorder end to end: the attribution breakdown must sum to the
# region's wall time (n x wall for an n-thread team), a gated
# dependence chain must report nonzero depend_stall, and a deliberately
# stalled region must leave a loadable flight dump on disk. -count=1
# defeats the test cache so the smoke actually runs on every
# invocation.
profile-smoke:
	$(GO) test -run='TestProfile|TestFlight|TestIntrospect.*WaitFor|TestTraceDropped' -count=1 -timeout 120s ./internal/rt/
	$(GO) test -run='TestQuotaKillWritesFlightDump|TestTenantTimeAttribution' -count=1 -timeout 60s ./internal/serve/

# mpi-smoke exercises the distributed transport end to end: the real
# launcher (cmd/omp4go-mpirun) spawns a 2-rank loopback world of the
# hybrid-jacobi example over TCP sockets, the result is checked
# bit-for-bit against the sequential sweep inside the example, and the
# printed omp4go_mpi_coalesced_total counter must be nonzero — halo
# chunks actually rode coalesced wire batches.
mpi-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/hybrid-jacobi ./examples/hybrid-jacobi && \
	$(GO) build -o $$tmp/omp4go-mpirun ./cmd/omp4go-mpirun && \
	out=$$($$tmp/omp4go-mpirun -n 2 $$tmp/hybrid-jacobi -rows 48 -cols 32 -iters 4) && \
	echo "$$out" | grep -q "halo jacobi ok" && \
	echo "$$out" | grep "omp4go_mpi_coalesced_total" | grep -qv " 0$$" && \
	echo "mpi-smoke: 2-rank TCP halo jacobi ok, coalescing active"

# mpi-race runs the transport and halo-differential tests under the
# race detector with the test cache defeated: matching, coalescing and
# the single-puller receive path are the concurrency-dense code, and
# the differential (which re-executes the race-built test binary as
# real rank processes) pins bit-identical results across transports.
mpi-race:
	$(GO) test -race -count=1 -timeout 300s ./internal/mpi/
	$(GO) test -race -count=1 -timeout 300s -run='TestHalo|TestHybrid' ./internal/bench/

# verify is the CI gate: static checks plus the race-detector pass
# over the runtime and observability layers, plus a single-iteration
# smoke of the pool-vs-spawn overhead benchmark so a dispatch
# regression that only bites under the pool path fails loudly, plus
# the metrics endpoint, execution-service and profiler/flight smokes.
verify: vet metrics-smoke serve-smoke profile-smoke depend-race kernels-race mpi-smoke mpi-race
	$(GO) test ./...
	$(GO) test -race -timeout 120s ./internal/rt/... ./internal/ompt/... ./internal/serve/... ./omp/...
	$(GO) test -run=NONE -bench=BenchmarkRegionOverhead -benchtime=1x -timeout 120s ./internal/rt/

# depend-race is the task-dataflow differential gate: the dependence,
# taskgroup, taskloop and task-error tests run under the race detector
# with the test cache defeated. Each test iterates BOTH task
# schedulers (list and stealing) internally, and the wavefront
# differential asserts bit-identical float results between them — a
# dependence edge missed by either scheduler shows up as a data race
# or a differing checksum here.
depend-race:
	$(GO) test -race -count=1 -timeout 180s \
	  -run='TestDepend|TestTaskgroup|TestTaskLoop|TestWavefront|TestUndeferred|TestTaskWait|TestNested|TestPanic|TestTaskError|TestRegionJoin' \
	  ./internal/rt/
	$(GO) test -race -count=1 -timeout 180s -run='TestTask|TestCancel' ./omp/

# kernels-race is the compiled-kernel differential gate: the static
# partition differential, the schedule-selection and escape-hatch
# matrix, the kernel flow-semantics tests and the benchmark-level
# kernels-on/off/interp matrix run under the race detector with the
# test cache defeated. A kernel that reads stale hoisted storage or
# races the bridge on a mixed loop shows up here as a data race or a
# diverging checksum.
kernels-race:
	$(GO) test -race -count=1 -timeout 180s -run='TestStaticBounds|TestReduceSlot' ./internal/rt/
	$(GO) test -race -count=1 -timeout 180s -run='TestKernel' ./internal/compile/
	$(GO) test -race -count=1 -timeout 300s -run='TestKernelDifferentialMatrix' ./internal/bench/

bench:
	$(GO) test -run=NONE -bench=BenchmarkFig5 -benchtime=1x ./...

# bench-smoke is the cheap scheduler-regression canary: one qsort
# (task-heavy) Fig. 5 run plus the direct scheduler microbenchmarks.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkFig5/qsort' -benchtime=1x -timeout 300s .
	$(GO) test -run=NONE -bench=BenchmarkTaskSched -benchtime=1x -timeout 300s ./internal/rt/

# bench-compare quantifies the persistent worker pool against the
# spawn-per-region baseline: the region-overhead microbenchmark runs
# both modes in-process (the pool=on/off sub-benchmarks), and the awk
# pass prints the off/on time ratio per team size — the Fig. 5
# thread-management amortization. A task-heavy Fig. 5 kernel then runs
# once under each mode via the real OMP4GO_POOL environment ICV.
bench-compare:
	$(GO) test -run=NONE -bench=BenchmarkRegionOverhead -benchtime=500ms -timeout 600s ./internal/rt/ \
	  | awk '/^BenchmarkRegionOverhead/ { split($$1, p, "/"); t[p[2] "/" p[3]] = $$3 } \
	    END { for (k in t) if (k ~ /^pool=on/) { size = substr(k, 9); off = t["pool=off/" size]; \
	      if (off) printf "  %-4s spawn/pool ratio: %.2fx (%.0f ns -> %.0f ns)\n", size, off / t[k], off, t[k] } }'
	$(GO) test -run=NONE -bench='BenchmarkFig5/qsort' -benchtime=1x -timeout 300s .
	OMP4GO_POOL=off $(GO) test -run=NONE -bench='BenchmarkFig5/qsort' -benchtime=1x -timeout 300s .

# bench-report regenerates the committed timing snapshot
# (BENCH_report.json): the Fig. 5/6 matrix at laptop scale, three
# repetitions. Run it on the reference machine after deliberate
# performance changes and commit the result.
bench-report:
	$(GO) run ./cmd/omp4go-report -maxthreads 4 -reps 3 -json BENCH_report.json fig5 fig6

# bench-gate re-measures the same matrix and fails when the overall
# geometric mean regresses more than 5% against the committed
# snapshot (per-series deltas are reported but do not gate; see the
# gate function in cmd/omp4go-report).
bench-gate:
	$(GO) run ./cmd/omp4go-report -maxthreads 4 -reps 3 -json "" -gate BENCH_report.json fig5 fig6

# trace produces the demo Chrome trace (load in chrome://tracing or
# ui.perfetto.dev).
trace:
	$(GO) run ./cmd/omp4go-trace pi 4

# BENCH_report.json is a committed snapshot (the bench-gate baseline),
# not a build product — clean leaves it alone.
clean:
	$(GO) clean ./...
	rm -f *-trace.json
