GO ?= go

.PHONY: build test race vet verify bench trace clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the packages with concurrency-sensitive tests under the
# race detector (runtime, tracing, public API). The timeout is a
# deadlock watchdog: a scheduler bug that wedges a barrier fails the
# run in 120s instead of hanging CI.
race:
	$(GO) test -race -timeout 120s ./internal/rt/... ./internal/ompt/... ./omp/...

vet:
	$(GO) vet ./...

# verify is the CI gate: static checks plus the race-detector pass
# over the runtime and observability layers.
verify: vet
	$(GO) test ./...
	$(GO) test -race -timeout 120s ./internal/rt/... ./internal/ompt/... ./omp/...

bench:
	$(GO) test -run=NONE -bench=BenchmarkFig5 -benchtime=1x ./...

# bench-smoke is the cheap scheduler-regression canary: one qsort
# (task-heavy) Fig. 5 run plus the direct scheduler microbenchmarks.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkFig5/qsort' -benchtime=1x -timeout 300s .
	$(GO) test -run=NONE -bench=BenchmarkTaskSched -benchtime=1x -timeout 300s ./internal/rt/

# trace produces the demo Chrome trace (load in chrome://tracing or
# ui.perfetto.dev).
trace:
	$(GO) run ./cmd/omp4go-trace pi 4

clean:
	$(GO) clean ./...
	rm -f *-trace.json BENCH_report.json
