// Graph clustering coefficients: the paper's §IV-B example of
// library-bound parallel work (NetworkX there, the graph substrate
// here). The per-node coefficients are computed by library calls
// inside a dynamically scheduled parallel loop, so all execution
// modes perform similarly — the effect Fig. 6 shows.
//
// Run with: go run ./examples/graph-clustering
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/omp4go/omp4go/internal/graph"
	"github.com/omp4go/omp4go/omp"
)

func main() {
	const (
		nodes  = 4000
		degree = 24
		seed   = 11
	)
	g := graph.Random(nodes, degree, seed)
	fmt.Printf("random graph: %d nodes, %d edges (avg degree %.1f)\n",
		g.N(), g.Edges(), 2*float64(g.Edges())/float64(g.N()))

	// Parallel per-node clustering with a sum reduction.
	coeffs := make([]float64, nodes)
	total, err := omp.ParallelReduce(0, nodes, 0.0, omp.Sum[float64],
		func(tc *omp.TC, u int, acc float64) float64 {
			c := g.Clustering(u)
			coeffs[u] = c
			return acc + c
		},
		omp.WithNumThreads(4),
		omp.WithSched(omp.Dynamic(64)), // node degrees vary: dynamic balances
	)
	if err != nil {
		log.Fatal(err)
	}

	// Validate against the brute-force reference.
	check := 0.0
	for u := 0; u < nodes; u++ {
		check += g.ClusteringBrute(u)
	}
	if math.Abs(total-check) > 1e-9*(1+math.Abs(check)) {
		log.Fatalf("parallel sum %.12f != reference %.12f", total, check)
	}

	fmt.Printf("average clustering coefficient: %.6f (validated against brute force)\n",
		total/nodes)

	// A tiny histogram of the coefficient distribution.
	var buckets [10]int
	for _, c := range coeffs {
		b := int(c * 10)
		if b > 9 {
			b = 9
		}
		buckets[b]++
	}
	fmt.Println("coefficient distribution:")
	for b, n := range buckets {
		fmt.Printf("  [%.1f, %.1f) %6d\n", float64(b)/10, float64(b+1)/10, n)
	}
}
