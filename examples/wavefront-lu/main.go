// Wavefront task dataflow: a blocked LU-style sweep where each grid
// cell is one task ordered only by depend clauses — the MiniPy surface
// next to the equivalent native Go API (WithDepend, TaskGroup,
// TaskLoop). The dependence tracker replaces every barrier: cell
// (i, j) waits for (i-1, j) and (i, j-1), so anti-diagonals run in
// parallel while the recurrence stays bit-deterministic.
//
// Run with: go run ./examples/wavefront-lu
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/omp4go/omp4go/omp"
)

const program = `
from omp4py import *
import math

@omp
def sweep(n):
    a = [0.0] * (n * n)
    with omp("parallel num_threads(4)"):
        with omp("single"):
            i = 0
            while i < n:
                j = 0
                while j < n:
                    with omp("task depend(in: a[i-1][j], a[i][j-1]) depend(out: a[i][j]) firstprivate(i, j)"):
                        up = 1.0
                        left = 1.0
                        if i > 0:
                            up = a[(i - 1) * n + j]
                        if j > 0:
                            left = a[i * n + j - 1]
                        a[i * n + j] = math.sqrt(up * 1.25 + left / 3.0) + up / 7.0
                    j += 1
                i += 1
            omp("taskwait")
    return a[n * n - 1]
`

func main() {
	// MiniPy: the depend clauses express the wavefront directly.
	p, err := omp.Load(program, "wavefront.py", omp.ModeHybrid)
	if err != nil {
		log.Fatal(err)
	}
	const n = 64
	v, err := p.Call("sweep", n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MiniPy wavefront: corner(%d) = %v\n", n, v)

	// The same sweep on the native API: [2]int keys identify cells,
	// a taskgroup scopes the whole DAG.
	grid := make([]float64, n*n)
	err = omp.Parallel(func(tc *omp.TC) {
		check(tc.Single(func() {
			check(tc.TaskGroup(func(g *omp.TC) {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						i, j := i, j
						deps := omp.Out([2]int{i, j})
						if i > 0 {
							deps = append(deps, omp.In([2]int{i - 1, j})...)
						}
						if j > 0 {
							deps = append(deps, omp.In([2]int{i, j - 1})...)
						}
						check(g.Task(func(*omp.TC) {
							up, left := 1.0, 1.0
							if i > 0 {
								up = grid[(i-1)*n+j]
							}
							if j > 0 {
								left = grid[i*n+j-1]
							}
							grid[i*n+j] = math.Sqrt(up*1.25+left/3.0) + up/7.0
						}, omp.WithDepend(deps...)))
					}
				}
			}))
		}))
	}, omp.WithNumThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native wavefront: corner(%d) = %v\n", n, grid[n*n-1])

	// Postprocess the grid with a taskloop: chunked row sums under the
	// construct's implicit taskgroup.
	rowSums := make([]float64, n)
	err = omp.Parallel(func(tc *omp.TC) {
		check(tc.Single(func() {
			check(tc.TaskLoop(0, n, func(_ *omp.TC, lo, hi int) {
				for i := lo; i < hi; i++ {
					s := 0.0
					for j := 0; j < n; j++ {
						s += grid[i*n+j]
					}
					rowSums[i] = s
				}
			}, omp.WithGrainsize(8)))
		}))
	}, omp.WithNumThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	for _, s := range rowSums {
		total += s
	}
	fmt.Printf("taskloop row sums: total = %.6f\n", total)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
