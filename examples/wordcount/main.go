// Wordcount: the paper's §IV-B showcase of full Python support —
// dictionaries and string methods inside parallel regions, which the
// Numba-based PyOMP cannot compile. Per-thread dictionaries count
// words over a dynamically scheduled loop and merge under a critical
// section.
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"github.com/omp4go/omp4go/internal/textgen"
	"github.com/omp4go/omp4go/omp"
)

const program = `
from omp4py import *

@omp
def wordcount(lines, threads):
    omp_set_num_threads(threads)
    counts = {}
    n = len(lines)
    with omp("parallel"):
        local = {}
        with omp("for schedule(dynamic, 16) nowait"):
            for i in range(n):
                for w in lines[i].lower().split():
                    local[w] = local.get(w, 0) + 1
        with omp("critical"):
            for k in local:
                counts[k] = counts.get(k, 0) + local[k]
    return counts
`

func main() {
	// A deterministic Zipf corpus stands in for the paper's 21 GB
	// Spanish Wikipedia dump.
	corpus := textgen.Generate(textgen.Options{Lines: 2000, Seed: 7})
	lines := make([]any, len(corpus.Lines))
	for i, l := range corpus.Lines {
		lines[i] = l
	}

	p, err := omp.Load(program, "wordcount.py", omp.ModeHybrid)
	if err != nil {
		log.Fatal(err)
	}
	v, err := p.Call("wordcount", lines, 4)
	if err != nil {
		log.Fatal(err)
	}
	counts := v.(map[any]any)

	// Cross-check against the sequential reference.
	ref := textgen.SequentialWordCount(corpus)
	if len(counts) != len(ref) {
		log.Fatalf("distinct words: parallel %d vs sequential %d", len(counts), len(ref))
	}
	type wc struct {
		word string
		n    int64
	}
	var top []wc
	for k, n := range counts {
		word := k.(string)
		cnt := n.(int64)
		if int64(ref[word]) != cnt {
			log.Fatalf("count mismatch for %q: %d vs %d", word, cnt, ref[word])
		}
		top = append(top, wc{word, cnt})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].word < top[j].word
	})
	fmt.Printf("%d lines, %d distinct words (all counts match the sequential reference)\n",
		len(corpus.Lines), len(counts))
	fmt.Println("top 10 words (Zipf head):")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Printf("  %-12s %6d  %s\n", top[i].word, top[i].n,
			strings.Repeat("#", int(top[i].n)/50+1))
	}
}
