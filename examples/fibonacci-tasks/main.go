// Fibonacci with OpenMP tasks: the paper's Fig. 4 program run through
// the MiniPy pipeline, next to the equivalent native Go tasking API.
// The task if clause keeps small subproblems on the spawning thread.
//
// Run with: go run ./examples/fibonacci-tasks
package main

import (
	"fmt"
	"log"

	"github.com/omp4go/omp4go/omp"
)

const program = `
from omp4py import *

@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task if(n > 12)"):
        fib1 = fibonacci(n - 1)
    with omp("task if(n > 12)"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2

@omp
def run(n):
    result = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            result[0] = fibonacci(n)
    return result[0]
`

func main() {
	// MiniPy tasking (Fig. 4).
	p, err := omp.Load(program, "fib.py", omp.ModeHybrid)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{10, 20, 25} {
		v, err := p.Call("run", n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MiniPy tasks: fib(%d) = %v\n", n, v)
	}

	// The same divide-and-conquer shape on the native API.
	var fib func(tc *omp.TC, n int) int
	fib = func(tc *omp.TC, n int) int {
		if n <= 1 {
			return n
		}
		var f1, f2 int
		check(tc.Task(func(tt *omp.TC) { f1 = fib(tt, n-1) }, omp.WithIf(n > 12)))
		check(tc.Task(func(tt *omp.TC) { f2 = fib(tt, n-2) }, omp.WithIf(n > 12)))
		check(tc.TaskWait())
		return f1 + f2
	}
	var result int
	err = omp.Parallel(func(tc *omp.TC) {
		check(tc.Single(func() { result = fib(tc, 25) }))
	}, omp.WithNumThreads(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native tasks: fib(25) = %d\n", result)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
