// Hybrid MPI + OpenMP: the §IV-C case study. MPI distributes the
// jacobi system's rows across simulated nodes (in-process ranks over
// a modelled interconnect); within each rank OpenMP threads update
// the local rows; MPI_Allgather rebuilds x and MPI_Allreduce combines
// the convergence error — the communication pattern of Fig. 8.
//
// Run with: go run ./examples/hybrid-jacobi
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/omp4go/omp4go/internal/bench"
	"github.com/omp4go/omp4go/internal/pyomp"
)

func main() {
	const (
		n       = 160
		iters   = 6
		seed    = 42
		threads = 2
	)
	want := pyomp.SequentialJacobi(n, iters, seed)
	fmt.Printf("jacobi %dx%d, %d sweeps; sequential checksum %.10g\n", n, n, iters, want)
	fmt.Printf("%-6s %-12s %12s %10s\n", "nodes", "mode", "seconds", "checksum")

	for _, nodes := range []int{1, 2, 4} {
		for _, mode := range []bench.Mode{bench.Hybrid, bench.CompiledDT} {
			res, err := bench.RunHybridJacobi(bench.HybridConfig{
				Mode:           mode,
				Nodes:          nodes,
				ThreadsPerNode: threads,
				N:              n,
				Iters:          iters,
				Seed:           seed,
				Network:        bench.DefaultNetwork(),
			})
			if err != nil {
				log.Fatal(err)
			}
			if math.Abs(res.Checksum-want) > 1e-9*(1+math.Abs(want)) {
				log.Fatalf("%d nodes %s: checksum %v, want %v", nodes, mode, res.Checksum, want)
			}
			fmt.Printf("%-6d %-12s %12.6f %10.4f\n", nodes, mode, res.Seconds, res.Checksum)
		}
	}
	fmt.Println("all runs match the sequential solution")
}
