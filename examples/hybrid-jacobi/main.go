// Hybrid MPI + OpenMP: the §IV-C case study. MPI distributes work
// across ranks; within each rank OpenMP threads update the local
// rows; collectives combine the results — the communication pattern
// of Fig. 8.
//
// Two modes:
//
//   - Default (no OMP4GO_MPI_ADDR): a self-contained demo. In-process
//     ranks over the modelled interconnect run the MiniPy dense
//     jacobi, then a 2-rank halo-exchange stencil demonstrates
//     compute/communication overlap and message coalescing.
//
//   - Rank mode (launched by omp4go-mpirun, which sets
//     OMP4GO_MPI_ADDR/RANK/SIZE): this process is ONE rank of a
//     multi-process world over the TCP transport. All ranks run the
//     halo-exchange stencil together and rank 0 prints the result
//     plus its omp4go_mpi_* transport counters.
//
// Run with:
//
//	go run ./examples/hybrid-jacobi
//	go run ./cmd/omp4go-mpirun -n 2 -- $(go env GOPATH)/bin/hybrid-jacobi  (after go install)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"github.com/omp4go/omp4go/internal/bench"
	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/mpi"
	"github.com/omp4go/omp4go/internal/pyomp"
)

func main() {
	rows := flag.Int("rows", 96, "halo stencil grid rows")
	cols := flag.Int("cols", 64, "halo stencil grid cols")
	iters := flag.Int("iters", 6, "sweeps")
	threads := flag.Int("threads", 2, "OpenMP threads per rank")
	chunks := flag.Int("chunks", 4, "boundary-row chunks per neighbor (coalescing fodder)")
	flag.Parse()

	hcfg := bench.HaloConfig{
		Rows: *rows, Cols: *cols, Iters: *iters,
		Seed: 42, Threads: *threads, Chunks: *chunks,
	}

	tcpCfg, isRank, err := mpi.EnvTCPConfig(os.Getenv)
	if err != nil {
		log.Fatal(err)
	}
	if isRank {
		runTCPRank(tcpCfg, hcfg)
		return
	}
	denseDemo()
	haloDemo(hcfg)
}

// runTCPRank is the body of one omp4go-mpirun-launched rank process.
func runTCPRank(tcpCfg mpi.TCPConfig, hcfg bench.HaloConfig) {
	reg := metrics.New()
	tcpCfg.Metrics = reg
	c, err := mpi.ConnectTCP(tcpCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("rank %d/%d up over TCP\n", c.Rank(), c.Size())
	res, err := bench.RunHaloJacobi(c, hcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		log.Fatal(err)
	}
	if c.Rank() == 0 {
		reportHalo(hcfg, res, reg.Snapshot())
	}
}

// denseDemo is the original Fig. 8 dense jacobi over the simulated
// in-process interconnect.
func denseDemo() {
	const (
		n       = 160
		iters   = 6
		seed    = 42
		threads = 2
	)
	want := pyomp.SequentialJacobi(n, iters, seed)
	fmt.Printf("jacobi %dx%d, %d sweeps; sequential checksum %.10g\n", n, n, iters, want)
	fmt.Printf("%-6s %-12s %12s %10s\n", "nodes", "mode", "seconds", "checksum")

	for _, nodes := range []int{1, 2, 4} {
		for _, mode := range []bench.Mode{bench.Hybrid, bench.CompiledDT} {
			res, err := bench.RunHybridJacobi(bench.HybridConfig{
				Mode:           mode,
				Nodes:          nodes,
				ThreadsPerNode: threads,
				N:              n,
				Iters:          iters,
				Seed:           seed,
				Network:        bench.DefaultNetwork(),
			})
			if err != nil {
				log.Fatal(err)
			}
			if math.Abs(res.Checksum-want) > 1e-9*(1+math.Abs(want)) {
				log.Fatalf("%d nodes %s: checksum %v, want %v", nodes, mode, res.Checksum, want)
			}
			fmt.Printf("%-6d %-12s %12.6f %10.4f\n", nodes, mode, res.Seconds, res.Checksum)
		}
	}
	fmt.Println("all runs match the sequential solution")
}

// haloDemo runs the overlap stencil on 2 in-process ranks and checks
// it against the sequential sweep — the same code path a TCP rank
// runs, minus the sockets.
func haloDemo(hcfg bench.HaloConfig) {
	fmt.Printf("\nhalo stencil %dx%d, %d sweeps, %d chunks/boundary (in-process ranks)\n",
		hcfg.Rows, hcfg.Cols, hcfg.Iters, hcfg.Chunks)
	reg := metrics.New()
	var out bench.HaloResult
	err := mpi.Run(2, nil, func(c *mpi.Comm) error {
		c.AttachMetrics(reg)
		res, err := bench.RunHaloJacobi(c, hcfg)
		if c.Rank() == 0 {
			out = res
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	reportHalo(hcfg, out, reg.Snapshot())
}

// reportHalo verifies the distributed grid against the sequential
// reference bit for bit and prints the transport counters in
// Prometheus style (the same series the /metrics endpoint serves).
func reportHalo(hcfg bench.HaloConfig, res bench.HaloResult, snap *metrics.Snapshot) {
	seq := bench.SequentialHaloJacobi(hcfg)
	for i := range seq.Cells {
		if math.Float64bits(res.Cells[i]) != math.Float64bits(seq.Cells[i]) {
			log.Fatalf("cell %d differs from the sequential sweep", i)
		}
	}
	fmt.Printf("residual %.12g, %d cells bit-identical to sequential\n", res.Residual, len(res.Cells))
	for _, c := range []metrics.CounterID{metrics.MPIMsgs, metrics.MPIBytes, metrics.MPICoalesced} {
		fmt.Printf("%s %d\n", c.Name(), snap.Counters[c])
	}
	fmt.Println("halo jacobi ok")
}
