// Quickstart: the two faces of omp4go.
//
// First the native Go API — OpenMP-style teams, worksharing loops,
// and reductions over goroutine-backed thread teams. Then the MiniPy
// pipeline: the paper's Fig. 1 program, transformed by the @omp
// decorator machinery and executed in the Hybrid mode.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/omp4go/omp4go/omp"
)

func main() {
	// --- Native Go API ---

	// A parallel region: the body runs once per team thread.
	err := omp.Parallel(func(tc *omp.TC) {
		tc.Critical("io", func() {
			fmt.Printf("hello from thread %d of %d\n", tc.ThreadNum(), tc.NumThreads())
		})
	}, omp.WithNumThreads(4))
	if err != nil {
		log.Fatal(err)
	}

	// A worksharing loop with a reduction: Fig. 1's pi integral.
	const n = 1_000_000
	w := 1.0 / n
	pi, err := omp.ParallelReduce(0, n, 0.0, omp.Sum[float64],
		func(tc *omp.TC, i int, acc float64) float64 {
			x := (float64(i) + 0.5) * w
			return acc + 4.0/(1.0+x*x)
		},
		omp.WithNumThreads(4),
		omp.WithSched(omp.Static(0)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native API:  pi ≈ %.10f\n", pi*w)

	// --- MiniPy pipeline (the paper's Fig. 1, verbatim) ---

	program := `
from omp4py import *

@omp
def pi(n: int) -> float:
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local: float = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
`
	p, err := omp.Load(program, "pi.py", omp.ModeHybrid)
	if err != nil {
		log.Fatal(err)
	}
	v, err := p.Call("pi", 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MiniPy mode: pi ≈ %.10f (mode %s)\n", v, p.Mode())

	// The same program under CompiledDT: the int/float annotations
	// turn the hot loop into unboxed native code.
	pdt, err := omp.Load(program, "pi.py", omp.ModeCompiledDT)
	if err != nil {
		log.Fatal(err)
	}
	vdt, err := pdt.Call("pi", 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CompiledDT:  pi ≈ %.10f\n", vdt)
}
