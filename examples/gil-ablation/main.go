// GIL ablation: what the paper's motivation section describes. The
// same parallel MiniPy program runs once on the GIL-enabled
// interpreter model (threads exist, only one interprets at a time —
// CPython before free threading) and once free-threaded. With the
// GIL, adding threads cannot reduce wall time; without it, the team
// shares the work (when the host has more than one CPU).
//
// Run with: go run ./examples/gil-ablation
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/omp4go/omp4go/omp"
)

const program = `
from omp4py import *

@omp
def work(n, threads):
    omp_set_num_threads(threads)
    total = 0.0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += (i % 7) * 0.5
    return total
`

func run(label string, opts ...omp.ProgramOption) {
	p, err := omp.Load(program, "work.py", omp.ModePure, opts...)
	if err != nil {
		log.Fatal(err)
	}
	const n = 120_000
	fmt.Printf("%s:\n", label)
	var base time.Duration
	for _, threads := range []int{1, 2, 4} {
		start := time.Now()
		v, err := p.Call("work", n, threads)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if threads == 1 {
			base = elapsed
		}
		fmt.Printf("  %d thread(s): %8.1f ms  (speedup %.2fx, result %v)\n",
			threads, float64(elapsed.Microseconds())/1000,
			float64(base)/float64(elapsed), v)
	}
}

func main() {
	fmt.Printf("host CPUs: %d (speedups need >1 to materialize)\n\n", runtime.NumCPU())
	run("GIL-enabled interpreter (pre-3.13 CPython model)", omp.WithGIL())
	fmt.Println()
	run("free-threaded interpreter (the paper's --disable-gil build)")
}
