// Command omp4go-serve runs the multi-tenant MiniPy execution service:
// an HTTP/JSON API that accepts MiniPy programs with an OMP4Py
// directive mode (pure, hybrid, compiled, compileddt) and executes
// them on per-tenant isolated interpreter + OpenMP runtime instances,
// with per-tenant quotas, admission control, and graceful drain on
// SIGTERM/SIGINT.
//
// Configuration comes from the OMP4GO_SERVE_* environment (see
// docs/serving.md); flags override it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/omp4go/omp4go/internal/serve"
)

func main() {
	cfg := serve.FromEnv(os.Getenv)
	addr := flag.String("addr", cfg.Addr, "listen address")
	drain := flag.Duration("drain", 20*time.Second,
		"grace period for in-flight runs on shutdown before their budgets are canceled")
	workers := flag.Int("workers", cfg.MaxWorkers, "concurrent run slots")
	queue := flag.Int("queue", cfg.QueueDepth, "queued runs beyond the slots before shedding 429")
	flag.Parse()
	cfg.Addr = *addr
	cfg.MaxWorkers = *workers
	cfg.QueueDepth = *queue

	srv := serve.New(cfg)
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "omp4go-serve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "omp4go-serve: listening on %s (%d workers, queue %d)\n",
		srv.Addr(), cfg.MaxWorkers, cfg.QueueDepth)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	sig := <-stop
	fmt.Fprintf(os.Stderr, "omp4go-serve: %s received, draining (up to %s)\n", sig, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "omp4go-serve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "omp4go-serve: drained")
}
