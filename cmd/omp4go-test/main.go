// Command omp4go-test is the artifact's automated sweep: it runs one
// benchmark across all execution modes and the thread configurations
// 1, 2, 4, 8, 16, 32 (the paper's Fig. 5/6 grid), printing one line
// per measurement and a summary table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/omp4go/omp4go/internal/bench"
	"github.com/omp4go/omp4go/internal/pyomp"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's problem sizes (may take hours)")
	reps := flag.Int("reps", 1, "repetitions to average (the paper averages 10)")
	maxThreads := flag.Int("maxthreads", 32, "cap the thread sweep")
	validate := flag.Bool("validate", true, "check checksums against the sequential reference")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: omp4go-test [flags] <test> [size-args...]\n  test: %s\nflags:\n",
			strings.Join(bench.Names, ", "))
		flag.PrintDefaults()
		os.Exit(2)
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
	}
	name := flag.Arg(0)
	b, ok := bench.Registry[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "omp4go-test: unknown test %q\n", name)
		os.Exit(1)
	}
	args := b.DefaultArgs
	if *paper {
		args = b.PaperArgs
	}
	if flag.NArg() > 1 {
		args = nil
		for _, a := range flag.Args()[1:] {
			v, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "omp4go-test: invalid size arg %q\n", a)
				os.Exit(1)
			}
			args = append(args, v)
		}
	}

	var threads []int
	for _, t := range bench.DefaultThreadCounts {
		if t <= *maxThreads {
			threads = append(threads, t)
		}
	}

	modes := append([]bench.Mode{}, bench.AllOMP4PyModes...)
	if _, no := pyomp.Unsupported[name]; !no {
		modes = append(modes, bench.PyOMP)
	} else {
		fmt.Printf("# PyOMP skipped: %s\n", pyomp.Unsupported[name])
	}

	fmt.Printf("# %s args=%v reps=%d\n", name, args, *reps)
	fmt.Printf("%-12s %-8s %12s\n", "mode", "threads", "seconds")
	table := make(map[bench.Mode]map[int]float64)
	for _, mode := range modes {
		table[mode] = make(map[int]float64)
		for _, th := range threads {
			total := 0.0
			for rep := 0; rep < *reps; rep++ {
				run := bench.Run
				if *validate {
					run = bench.Validate
				}
				res, err := run(mode, name, bench.RunConfig{Threads: th, Args: args})
				if err != nil {
					fmt.Fprintf(os.Stderr, "omp4go-test: %v\n", err)
					os.Exit(1)
				}
				total += res.Seconds
			}
			mean := total / float64(*reps)
			table[mode][th] = mean
			fmt.Printf("%-12s %-8d %12.6f\n", mode, th, mean)
		}
	}

	fmt.Printf("\n# speedup over each mode's 1-thread time\n")
	fmt.Printf("%-12s", "mode")
	for _, th := range threads {
		fmt.Printf(" %8dT", th)
	}
	fmt.Println()
	for _, mode := range modes {
		fmt.Printf("%-12s", mode)
		base := table[mode][threads[0]]
		for _, th := range threads {
			fmt.Printf(" %9.2f", base/table[mode][th])
		}
		fmt.Println()
	}
}
