// Command omp4go runs one benchmark in one execution mode — the
// analogue of the artifact's `python3 examples/main.py <mode> <test>
// <threads> [args...]` (modes: -1 PyOMP, 0 Pure, 1 Hybrid,
// 2 Compiled, 3 CompiledDT).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/omp4go/omp4go/internal/bench"
	"github.com/omp4go/omp4go/internal/mpi"
	"github.com/omp4go/omp4go/internal/rt"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: omp4go [flags] <mode> <test> <threads> [size-args...]

  mode     -1 = PyOMP baseline, 0 = Pure, 1 = Hybrid, 2 = Compiled, 3 = CompiledDT
  test     %s
  threads  OpenMP team size

flags:
`, strings.Join(bench.Names, ", "))
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	paper := flag.Bool("paper", false, "use the paper's problem sizes (may take hours)")
	validate := flag.Bool("validate", false, "check the checksum against the sequential reference")
	sched := flag.String("sched", "", "run-sched policy for schedule(runtime) loops (static|dynamic|guided)")
	chunk := flag.Int64("chunk", 0, "chunk size for -sched")
	gil := flag.Bool("gil", false, "enable the GIL ablation (interpreted modes)")
	reps := flag.Int("reps", 1, "repetitions to average")
	nodes := flag.Int("nodes", 0, "run the hybrid MPI/OpenMP jacobi on this many simulated nodes")
	flag.Usage = usage
	// The PyOMP mode is written "-1" (matching the artifact's CLI);
	// stop flag parsing there so it reads as a positional argument.
	argv := os.Args[1:]
	for i, a := range argv {
		if a == "--" {
			break // the user already ended flag parsing
		}
		if a == "-1" {
			argv = append(argv[:i:i], append([]string{"--"}, argv[i:]...)...)
			break
		}
	}
	if err := flag.CommandLine.Parse(argv); err != nil {
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) < 3 {
		usage()
	}
	modeNum, err := strconv.Atoi(args[0])
	if err != nil {
		fatal("invalid mode %q", args[0])
	}
	mode, err := bench.ParseMode(modeNum)
	if err != nil {
		fatal("%v", err)
	}
	name := args[1]
	threads, err := strconv.Atoi(args[2])
	if err != nil || threads < 1 {
		fatal("invalid thread count %q", args[2])
	}
	var sizeArgs []int64
	for _, a := range args[3:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fatal("invalid size argument %q", a)
		}
		sizeArgs = append(sizeArgs, v)
	}

	if *nodes > 0 {
		runHybrid(mode, *nodes, threads, sizeArgs)
		return
	}

	b, ok := bench.Registry[name]
	if !ok {
		fatal("unknown test %q (valid: %s)", name, strings.Join(bench.Names, ", "))
	}
	if sizeArgs == nil {
		if *paper {
			sizeArgs = b.PaperArgs
		} else {
			sizeArgs = b.DefaultArgs
		}
	}

	cfg := bench.RunConfig{
		Threads: threads,
		Args:    sizeArgs,
		GIL:     *gil,
		Stdout:  os.Stdout,
	}
	if *sched != "" {
		s, err := rt.ParseScheduleEnv(*sched + chunkSuffix(*chunk))
		if err != nil {
			fatal("%v", err)
		}
		cfg.Schedule = s
	}

	var total float64
	var last bench.Result
	for rep := 0; rep < *reps; rep++ {
		run := bench.Run
		if *validate {
			run = bench.Validate
		}
		res, err := run(mode, name, cfg)
		if err != nil {
			fatal("%v", err)
		}
		total += res.Seconds
		last = res
	}
	fmt.Printf("%s %s threads=%d args=%v: %.6fs (checksum %.10g)\n",
		name, mode, threads, sizeArgs, total/float64(*reps), last.Checksum)
	if *validate {
		fmt.Println("checksum validated against the sequential reference")
	}
}

func chunkSuffix(chunk int64) string {
	if chunk > 0 {
		return fmt.Sprintf(",%d", chunk)
	}
	return ""
}

func runHybrid(mode bench.Mode, nodes, threads int, sizeArgs []int64) {
	if mode == bench.PyOMP {
		fatal("PyOMP cannot be combined with mpi4py (§IV-C)")
	}
	n, iters, seed := int64(192), int64(5), int64(42)
	if len(sizeArgs) > 0 {
		n = sizeArgs[0]
	}
	if len(sizeArgs) > 1 {
		iters = sizeArgs[1]
	}
	if len(sizeArgs) > 2 {
		seed = sizeArgs[2]
	}
	res, err := bench.RunHybridJacobi(bench.HybridConfig{
		Mode: mode, Nodes: nodes, ThreadsPerNode: threads,
		N: int(n), Iters: int(iters), Seed: seed,
		Network: defaultNet(),
	})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("hybrid jacobi %s nodes=%d threads/node=%d n=%d iters=%d: %.6fs (checksum %.10g)\n",
		mode, nodes, threads, n, iters, res.Seconds, res.Checksum)
}

func defaultNet() *mpi.NetworkModel { return bench.DefaultNetwork() }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "omp4go: "+format+"\n", args...)
	os.Exit(1)
}
