// Command omp4go-report regenerates the paper's tables and figures:
// table1, fig5, fig6, fig7, fig8, summary, or all. Output is plain
// text suitable for EXPERIMENTS.md; -json additionally writes the
// figure datasets (per-benchmark mode x threads timings) to a
// machine-readable report file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"github.com/omp4go/omp4go/internal/bench"
)

// reportSchemaVersion identifies the shape of the -json report so
// downstream consumers (plot scripts, CI comparisons) can reject
// reports written by an incompatible omp4go-report. Bump on any
// breaking change to the JSON structure.
const reportSchemaVersion = 1

func main() {
	threadsFlag := flag.Int("maxthreads", 8, "cap the thread sweep (paper: 32)")
	reps := flag.Int("reps", 1, "repetitions to average (paper: 10)")
	scale := flag.Float64("scale", 1.0, "problem-size multiplier over the defaults")
	jsonPath := flag.String("json", "BENCH_report.json",
		"write figure datasets as JSON to this file (empty disables)")
	gatePath := flag.String("gate", "",
		"compare fresh timings against this BENCH_report.json snapshot and exit 1 on regression")
	gateTol := flag.Float64("gate-tolerance", 0.05,
		"allowed slowdown of the overall geometric mean before -gate fails")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: omp4go-report [flags] table1|fig5|fig6|fig7|fig8|summary|all ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
	}

	var threads []int
	for _, t := range bench.DefaultThreadCounts {
		if t <= *threadsFlag {
			threads = append(threads, t)
		}
	}
	r := &reporter{threads: threads, reps: *reps, scale: *scale}

	for _, cmd := range flag.Args() {
		switch cmd {
		case "table1":
			r.table1()
		case "fig5":
			r.fig5()
		case "fig6":
			r.fig6()
		case "fig7":
			r.fig7()
		case "fig8":
			r.fig8()
		case "summary":
			r.summary()
		case "all":
			r.table1()
			r.fig5()
			r.fig6()
			r.fig7()
			r.fig8()
			r.summary()
		default:
			flag.Usage()
		}
	}

	if *jsonPath != "" && len(r.figures) > 0 {
		check(r.writeJSON(*jsonPath))
		fmt.Printf("wrote %d figure datasets to %s\n", len(r.figures), *jsonPath)
	}
	if *gatePath != "" {
		check(r.gate(*gatePath, *gateTol))
	}
}

type reporter struct {
	threads []int
	reps    int
	scale   float64
	figures []figureJSON
}

// figureJSON is one figure dataset in the -json report: the figure the
// points belong to, the benchmark, and the mode x threads timings.
type figureJSON struct {
	Figure    string         `json:"figure"`
	Benchmark string         `json:"benchmark,omitempty"`
	Title     string         `json:"title"`
	XLabel    string         `json:"xlabel"`
	Series    []bench.Series `json:"series"`
}

func (r *reporter) record(figure, benchmark string, f *bench.Figure) {
	r.figures = append(r.figures, figureJSON{
		Figure: figure, Benchmark: benchmark,
		Title: f.Title, XLabel: f.XLabel, Series: f.Series,
	})
}

// reportJSON is the -json report document (and what -gate reads back).
type reportJSON struct {
	SchemaVersion int          `json:"schema_version"`
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	MaxThreads    int          `json:"max_threads"`
	Repetitions   int          `json:"repetitions"`
	Scale         float64      `json:"scale"`
	Figures       []figureJSON `json:"figures"`
}

func (r *reporter) writeJSON(path string) error {
	report := reportJSON{
		SchemaVersion: reportSchemaVersion,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		MaxThreads:    r.threads[len(r.threads)-1],
		Repetitions:   r.reps,
		Scale:         r.scale,
		Figures:       r.figures,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gate compares the freshly measured figure datasets against a
// committed snapshot. Every (figure, benchmark, series, threads) point
// present in both contributes a fresh/baseline time ratio; the gate
// fails when the overall geometric mean regresses past tol. Individual
// series are reported with slower/REGRESSED markers but do not gate on
// their own: single-series ratios on a shared machine are too noisy to
// block on, while the geometric mean over the full matrix is stable.
// Matching is by key, so snapshots taken with different sweeps simply
// compare the intersection.
func (r *reporter) gate(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate: %w", err)
	}
	var baseline reportJSON
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("gate: parse %s: %w", path, err)
	}
	if baseline.SchemaVersion != reportSchemaVersion {
		return fmt.Errorf("gate: %s has schema %d, this binary writes %d — regenerate the snapshot",
			path, baseline.SchemaVersion, reportSchemaVersion)
	}
	base := map[string]float64{}
	for _, f := range baseline.Figures {
		for _, s := range f.Series {
			for _, p := range s.Points {
				base[fmt.Sprintf("%s/%s/%s/%d", f.Figure, f.Benchmark, s.Label, p.X)] = p.Seconds
			}
		}
	}

	fmt.Printf("== bench gate vs %s (tolerance %.0f%%) ==\n", path, tol*100)
	var logSum float64
	var matched int
	for _, f := range r.figures {
		for _, s := range f.Series {
			var seriesLog float64
			var seriesN int
			for _, p := range s.Points {
				key := fmt.Sprintf("%s/%s/%s/%d", f.Figure, f.Benchmark, s.Label, p.X)
				b, ok := base[key]
				if !ok || b <= 0 || p.Seconds <= 0 {
					continue
				}
				seriesLog += math.Log(p.Seconds / b)
				seriesN++
			}
			if seriesN == 0 {
				continue
			}
			matched += seriesN
			logSum += seriesLog
			ratio := math.Exp(seriesLog / float64(seriesN))
			mark := "ok"
			if ratio > 1+3*tol {
				mark = "REGRESSED"
			} else if ratio > 1+tol {
				mark = "slower"
			}
			fmt.Printf("  %-6s %-10s %-12s %6.1f%%  %s\n",
				f.Figure, f.Benchmark, s.Label, (ratio-1)*100, mark)
		}
	}
	if matched == 0 {
		return fmt.Errorf("gate: no overlapping datapoints between this run and %s", path)
	}
	overall := math.Exp(logSum / float64(matched))
	fmt.Printf("  overall geo-mean vs snapshot: %+.1f%% over %d points\n", (overall-1)*100, matched)
	if overall > 1+tol {
		return fmt.Errorf("gate: overall geo-mean regressed %.1f%% (> %.0f%% tolerance)", (overall-1)*100, tol*100)
	}
	fmt.Println("  gate passed")
	return nil
}

func (r *reporter) opts(name string) bench.FigureOptions {
	b := bench.Registry[name]
	args := make([]int64, len(b.DefaultArgs))
	copy(args, b.DefaultArgs)
	if r.scale != 1.0 && len(args) > 0 {
		args[0] = int64(float64(args[0]) * r.scale)
	}
	return bench.FigureOptions{Threads: r.threads, Args: args, Repetitions: r.reps}
}

func (r *reporter) table1() {
	fmt.Println("== Table I: static characteristics of the evaluated benchmarks ==")
	out, err := bench.TableI()
	check(err)
	fmt.Println(out)
}

func (r *reporter) fig5() {
	fmt.Println("== Fig. 5: scalability of the parallel numerical applications ==")
	for _, name := range bench.Names {
		if !bench.Registry[name].Numerical {
			continue
		}
		fig, err := bench.Figure5(name, r.opts(name))
		check(err)
		r.record("fig5", name, fig)
		fmt.Println(fig.Render())
	}
}

func (r *reporter) fig6() {
	fmt.Println("== Fig. 6: scalability of clustering coefficient and wordcount ==")
	for _, name := range []string{"graphic", "wordcount"} {
		fig, err := bench.Figure6(name, r.opts(name))
		check(err)
		r.record("fig6", name, fig)
		fmt.Println(fig.Render())
	}
}

func (r *reporter) fig7() {
	fmt.Println("== Fig. 7: speedups under static/dynamic/guided scheduling (chunk 300) ==")
	for _, name := range []string{"graphic", "wordcount"} {
		fig, err := bench.Figure7(name,
			[]bench.Mode{bench.Pure, bench.Hybrid, bench.CompiledDT}, 300, r.opts(name))
		check(err)
		r.record("fig7", name, fig)
		fmt.Println(fig.Render())
	}
}

func (r *reporter) fig8() {
	fmt.Println("== Fig. 8: hybrid MPI/OpenMP jacobi scaling ==")
	nodes := []int{1, 2, 4, 8, 16}
	tpn := 4
	if len(r.threads) > 0 && r.threads[len(r.threads)-1] < tpn {
		tpn = r.threads[len(r.threads)-1]
	}
	fig, err := bench.Figure8(bench.Figure8Options{
		Nodes: nodes, ThreadsPerNode: tpn,
		N: int(192 * r.scale), Iters: 5,
	})
	check(err)
	r.record("fig8", "jacobi", fig)
	fmt.Println(fig.Render())
	fmt.Println(fig.Speedups("").Render())
}

// summary reproduces the headline statistics of §IV-A: Pure max
// speedup, CompiledDT vs Pure ratios, and per-mode scalability.
func (r *reporter) summary() {
	fmt.Println("== §IV-A summary statistics ==")
	maxT := r.threads[len(r.threads)-1]
	var ratios []float64
	var bestPureSpeedup float64
	var bestPureName string
	for _, name := range bench.Names {
		if !bench.Registry[name].Numerical {
			continue
		}
		o := r.opts(name)
		pure1, err := runMean(bench.Pure, name, 1, o)
		check(err)
		pureN, err := runMean(bench.Pure, name, maxT, o)
		check(err)
		dtN, err := runMean(bench.CompiledDT, name, maxT, o)
		check(err)
		ratio := pureN / dtN
		ratios = append(ratios, ratio)
		if sp := pure1 / pureN; sp > bestPureSpeedup {
			bestPureSpeedup, bestPureName = sp, name
		}
		fmt.Printf("%-8s Pure 1T %9.4fs | Pure %dT %9.4fs | CompiledDT %dT %9.4fs | DT speedup over Pure %7.1fx\n",
			name, pure1, maxT, pureN, maxT, dtN, ratio)
	}
	gm := 1.0
	for _, x := range ratios {
		gm *= x
	}
	gm = math.Pow(gm, 1.0/float64(len(ratios)))
	fmt.Printf("\nPure max self-speedup: %.2fx (%s); CompiledDT over Pure at %d threads: geo-mean %.0fx\n",
		bestPureSpeedup, bestPureName, maxT, gm)
}

func runMean(mode bench.Mode, name string, threads int, o bench.FigureOptions) (float64, error) {
	total := 0.0
	for i := 0; i < o.Repetitions; i++ {
		res, err := bench.Run(mode, name, bench.RunConfig{Threads: threads, Args: o.Args})
		if err != nil {
			return 0, err
		}
		total += res.Seconds
	}
	return total / float64(o.Repetitions), nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omp4go-report: %v\n", err)
		os.Exit(1)
	}
}
