// Command omp4go-top renders a polling terminal view of a running
// omp4go program's introspection endpoint (started by OMP4GO_METRICS=
// <addr> or omp.ServeMetrics): the always-on counters with per-poll
// rates, the persistent pool state, every in-flight parallel region
// with member wait states and deque depths, and recent watchdog stall
// reports.
//
// Usage:
//
//	omp4go-top -addr localhost:9090 [-interval 1s] [-once]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "localhost:9090",
		"host:port of the omp4go introspection endpoint (OMP4GO_METRICS)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	var prev map[string]int64
	var prevAt time.Time
	for {
		snap, err := fetchDebug(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omp4go-top: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		if !*once {
			// ANSI clear + home keeps the view in place between polls.
			fmt.Print("\x1b[2J\x1b[H")
		}
		render(os.Stdout, base, snap, prev, now.Sub(prevAt))
		if *once {
			return
		}
		prev, prevAt = snap.Counters, now
		time.Sleep(*interval)
	}
}

// debugSnapshot mirrors rt.DebugSnapshot's JSON; decoded structurally
// so the tool has no dependency on the runtime packages and can
// inspect any omp4go process, not just one built from this tree.
type debugSnapshot struct {
	ICVs map[string]any `json:"icvs"`
	Pool *struct {
		Idle int `json:"idle"`
		Live int `json:"live"`
		Max  int `json:"max"`
	} `json:"pool"`
	Regions []struct {
		RegionID    int32 `json:"region_id"`
		Size        int   `json:"size"`
		Outstanding int64 `json:"outstanding_tasks"`
		Members     []struct {
			GTID       int32  `json:"gtid"`
			ThreadNum  int    `json:"thread_num"`
			Wait       string `json:"wait"`
			WaitFor    string `json:"wait_for"`
			WaitNS     int64  `json:"wait_ns"`
			DequeDepth int    `json:"deque_depth"`
		} `json:"members"`
	} `json:"inflight_regions"`
	Stalls []struct {
		RegionID int32  `json:"region_id"`
		Kind     string `json:"kind"`
		Waiting  []struct {
			GTID   int32 `json:"gtid"`
			WaitNS int64 `json:"wait_ns"`
		} `json:"waiting"`
		Missing     []int32 `json:"missing_gtids"`
		DequeDepths []int   `json:"deque_depths"`
		Outstanding int64   `json:"outstanding_tasks"`
	} `json:"stalls"`
	Counters map[string]int64 `json:"counters"`
	Profile  *struct {
		Buckets []struct {
			Label   string           `json:"label"`
			NS      map[string]int64 `json:"ns"`
			TotalNS int64            `json:"total_ns"`
		} `json:"buckets"`
		TotalNS int64 `json:"total_ns"`
	} `json:"profile"`
}

func fetchDebug(client *http.Client, base string) (*debugSnapshot, error) {
	resp, err := client.Get(base + "/debug/omp")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s/debug/omp: %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
	}
	var snap debugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding /debug/omp: %w", err)
	}
	return &snap, nil
}

func render(w io.Writer, base string, s *debugSnapshot, prev map[string]int64, elapsed time.Duration) {
	fmt.Fprintf(w, "omp4go-top  %s  %s\n\n", base, time.Now().Format("15:04:05"))

	// ICVs on one line, stable order.
	keys := make([]string, 0, len(s.ICVs))
	for k := range s.ICVs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v := s.ICVs[k]
		// JSON numbers decode as float64; the ICVs are all integral.
		if f, ok := v.(float64); ok && f == float64(int64(f)) {
			v = int64(f)
		}
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	fmt.Fprintf(w, "icvs: %s\n", strings.Join(parts, " "))

	if s.Pool != nil {
		fmt.Fprintf(w, "pool: %d idle / %d live (cap %d)\n", s.Pool.Idle, s.Pool.Live, s.Pool.Max)
	} else {
		fmt.Fprintln(w, "pool: disabled")
	}

	fmt.Fprintf(w, "\n%-40s %15s %12s\n", "counter", "total", "per-sec")
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.Counters[name]
		rate := ""
		if prev != nil && elapsed > 0 {
			if d := v - prev[name]; d >= 0 {
				rate = fmt.Sprintf("%.1f", float64(d)/elapsed.Seconds())
			}
		}
		fmt.Fprintf(w, "%-40s %15d %12s\n", name, v, rate)
	}

	if s.Profile != nil && s.Profile.TotalNS > 0 {
		fmt.Fprintf(w, "\ntime attribution (total %s)\n",
			time.Duration(s.Profile.TotalNS).Round(time.Microsecond))
		for _, b := range s.Profile.Buckets {
			label := b.Label
			if label == "" {
				label = "(unlabeled)"
			}
			// States sorted by time share, largest first, on one line.
			type st struct {
				name string
				ns   int64
			}
			states := make([]st, 0, len(b.NS))
			for name, ns := range b.NS {
				if ns > 0 {
					states = append(states, st{name, ns})
				}
			}
			sort.Slice(states, func(i, j int) bool { return states[i].ns > states[j].ns })
			parts := make([]string, 0, len(states))
			for _, e := range states {
				parts = append(parts, fmt.Sprintf("%s %.1f%%", e.name,
					100*float64(e.ns)/float64(b.TotalNS)))
			}
			fmt.Fprintf(w, "  %-12s %s  %s\n", label,
				time.Duration(b.TotalNS).Round(time.Microsecond), strings.Join(parts, "  "))
		}
	}

	fmt.Fprintf(w, "\nin-flight regions: %d\n", len(s.Regions))
	for _, r := range s.Regions {
		fmt.Fprintf(w, "  region %d  size %d  outstanding tasks %d\n", r.RegionID, r.Size, r.Outstanding)
		for _, m := range r.Members {
			state := "running"
			if m.Wait != "" {
				state = fmt.Sprintf("waiting in %s %s", m.Wait, time.Duration(m.WaitNS).Round(time.Microsecond))
				if m.WaitFor != "" {
					state += " on " + m.WaitFor
				}
			}
			fmt.Fprintf(w, "    thread %d (gtid %d): %s, deque depth %d\n", m.ThreadNum, m.GTID, state, m.DequeDepth)
		}
	}

	if len(s.Stalls) > 0 {
		fmt.Fprintf(w, "\nrecent stalls: %d\n", len(s.Stalls))
		for _, st := range s.Stalls {
			waiting := make([]string, 0, len(st.Waiting))
			longest := time.Duration(0)
			for _, m := range st.Waiting {
				waiting = append(waiting, fmt.Sprint(m.GTID))
				if d := time.Duration(m.WaitNS); d > longest {
					longest = d
				}
			}
			fmt.Fprintf(w, "  region %d %s stalled %s: waiting gtids [%s], missing %v, %d outstanding tasks, deques %v\n",
				st.RegionID, st.Kind, longest.Round(time.Millisecond),
				strings.Join(waiting, " "), st.Missing, st.Outstanding, st.DequeDepths)
		}
	}
}
