// Command omp4go-mpirun launches a multi-process MPI world: it picks
// a rendezvous address, spawns one copy of the given program per rank
// with OMP4GO_MPI_ADDR/RANK/SIZE set, prefixes each rank's output,
// and exits with the first rank failure (killing the survivors after
// a grace period) — the role mpirun plays for mpi4py programs.
//
//	omp4go-mpirun -n 4 ./myprog -flag value
//
// With -print the commands are printed instead of executed, one per
// rank, for pasting onto separate hosts; -addr then chooses the
// address peers will dial (it must be reachable from every host).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/omp4go/omp4go/internal/mpi"
)

func main() {
	n := flag.Int("n", 2, "number of ranks to launch")
	addr := flag.String("addr", "", "rendezvous address (default: a free 127.0.0.1 port)")
	printOnly := flag.Bool("print", false, "print per-rank commands instead of running them")
	coalesce := flag.Int("coalesce", 0, "OMP4GO_MPI_COALESCE byte threshold for every rank (0 = default)")
	grace := flag.Duration("grace", 3*time.Second, "how long surviving ranks get after the first failure")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: omp4go-mpirun [flags] program [args...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *n < 1 {
		fmt.Fprintf(os.Stderr, "omp4go-mpirun: -n %d must be at least 1\n", *n)
		os.Exit(2)
	}
	rendezvous := *addr
	if rendezvous == "" {
		var err error
		if rendezvous, err = freePort(); err != nil {
			fmt.Fprintln(os.Stderr, "omp4go-mpirun:", err)
			os.Exit(1)
		}
	}
	rankEnv := func(rank int) []string {
		env := []string{
			mpi.EnvMPIAddr + "=" + rendezvous,
			mpi.EnvMPIRank + "=" + strconv.Itoa(rank),
			mpi.EnvMPISize + "=" + strconv.Itoa(*n),
		}
		if *coalesce > 0 {
			env = append(env, mpi.EnvMPICoalesce+"="+strconv.Itoa(*coalesce))
		}
		return env
	}
	if *printOnly {
		for rank := 0; rank < *n; rank++ {
			fmt.Printf("# rank %d\n", rank)
			for _, kv := range rankEnv(rank) {
				fmt.Printf("%s ", kv)
			}
			for _, a := range flag.Args() {
				fmt.Printf("%s ", a)
			}
			fmt.Println()
		}
		return
	}
	os.Exit(run(*n, rankEnv, flag.Args(), *grace))
}

// freePort reserves a loopback port and releases it for rank 0 to
// bind. The window between release and bind is small and rank 0
// retries the bind, so the race is acceptable for a local launcher.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func run(n int, rankEnv func(int) []string, argv []string, grace time.Duration) int {
	cmds := make([]*exec.Cmd, n)
	var outWG sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), rankEnv(rank)...)
		cmd.Stdin = nil
		stdout, err := cmd.StdoutPipe()
		if err == nil {
			cmd.Stderr = cmd.Stdout // one prefixed stream per rank
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "omp4go-mpirun:", err)
			return 1
		}
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "omp4go-mpirun: rank %d: %v\n", rank, err)
			killAll(cmds)
			return 1
		}
		cmds[rank] = cmd
		outWG.Add(1)
		go func(rank int, r io.Reader) {
			defer outWG.Done()
			sc := bufio.NewScanner(r)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				fmt.Printf("[rank %d] %s\n", rank, sc.Text())
			}
		}(rank, stdout)
	}

	// Forward interrupts to the whole world.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		for sig := range sigc {
			for _, cmd := range cmds {
				if cmd != nil && cmd.Process != nil {
					_ = cmd.Process.Signal(sig)
				}
			}
		}
	}()
	defer signal.Stop(sigc)

	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, n)
	for rank, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) { exits <- exit{rank, cmd.Wait()} }(rank, cmd)
	}
	code := 0
	var killTimer *time.Timer
	for done := 0; done < n; done++ {
		e := <-exits
		if e.err != nil {
			fmt.Fprintf(os.Stderr, "omp4go-mpirun: rank %d: %v\n", e.rank, e.err)
			if code == 0 {
				if ee, ok := e.err.(*exec.ExitError); ok && ee.ExitCode() > 0 {
					code = ee.ExitCode()
				} else {
					code = 1
				}
				// First failure: give survivors a grace period to
				// notice their dead peer, then kill the stragglers.
				killTimer = time.AfterFunc(grace, func() { killAll(cmds) })
			}
		}
	}
	if killTimer != nil {
		killTimer.Stop()
	}
	outWG.Wait()
	return code
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}
