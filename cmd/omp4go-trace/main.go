// Command omp4go-trace runs one benchmark under the observability
// subsystem and writes a Chrome trace_event JSON file (open in
// chrome://tracing or https://ui.perfetto.dev) plus a plain-text
// summary of wait times and load imbalance.
//
// usage: omp4go-trace [flags] <test> <threads> [size-args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/omp4go/omp4go/internal/bench"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/rt"
)

func main() {
	modeFlag := flag.Int("mode", 1, "execution mode: 0=Pure 1=Hybrid 2=Compiled 3=CompiledDT")
	out := flag.String("o", "", "trace output file (default <test>-trace.json)")
	paper := flag.Bool("paper", false, "use the paper's problem sizes (may take hours)")
	validate := flag.Bool("validate", false, "check the checksum against the sequential reference")
	summary := flag.Bool("summary", true, "print the plain-text trace summary")
	sched := flag.String("schedule", "", "run-sched ICV for schedule(runtime) loops, e.g. dynamic,300")
	ringSize := flag.Int("ringsize", 0, "per-thread ring capacity in events (0 = default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: omp4go-trace [flags] <test> <threads> [size-args...]\n  test: %s\nflags:\n",
			strings.Join(bench.Names, ", "))
		flag.PrintDefaults()
		os.Exit(2)
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
	}
	name := flag.Arg(0)
	b, ok := bench.Registry[name]
	if !ok {
		fail("unknown test %q (valid: %s)", name, strings.Join(bench.Names, ", "))
	}
	threads, err := strconv.Atoi(flag.Arg(1))
	if err != nil || threads < 1 {
		fail("invalid thread count %q", flag.Arg(1))
	}
	mode, err := bench.ParseMode(*modeFlag)
	if err != nil || mode == bench.PyOMP {
		fail("invalid mode %d (tracing needs an OMP4Py mode, 0-3)", *modeFlag)
	}

	args := b.DefaultArgs
	if *paper {
		args = b.PaperArgs
	}
	if flag.NArg() > 2 {
		args = nil
		for _, a := range flag.Args()[2:] {
			v, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				fail("invalid size arg %q", a)
			}
			args = append(args, v)
		}
	}

	cfg := bench.RunConfig{Threads: threads, Args: args}
	if *sched != "" {
		s, err := rt.ParseScheduleEnv(*sched)
		if err != nil {
			fail("invalid -schedule %q: %v", *sched, err)
		}
		cfg.Schedule = s
	}
	tracer := ompt.NewTracer(*ringSize)
	cfg.Tool = tracer

	run := bench.Run
	if *validate {
		run = bench.Validate
	}
	res, err := run(mode, name, cfg)
	if err != nil {
		fail("%v", err)
	}

	path := *out
	if path == "" {
		path = name + "-trace.json"
	}
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		fail("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("writing trace: %v", err)
	}

	fmt.Printf("%s %s %d threads: %.4fs checksum %v\n", name, mode, threads, res.Seconds, res.Checksum)
	fmt.Printf("trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", path)
	if *summary {
		fmt.Println()
		if err := tracer.WriteSummary(os.Stdout); err != nil {
			fail("writing summary: %v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "omp4go-trace: "+format+"\n", args...)
	os.Exit(1)
}
