// Package main holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem .
//
// Absolute numbers depend on the host (the paper used a 32-core Xeon;
// CI containers may have one core); the shapes to check are mode
// ordering (CompiledDT < Compiled < Hybrid ≤ Pure in time), PyOMP ≈
// CompiledDT, dynamic ≥ static on imbalanced work, and the
// mutex-vs-atomic runtime gap.
package main

import (
	"fmt"
	"testing"

	"github.com/omp4go/omp4go/internal/bench"
	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/pyomp"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/omp"
)

// benchArgs shrinks problem sizes so the full suite fits CI budgets;
// use cmd/omp4go -paper for paper-scale runs.
var benchArgs = map[string][]int64{
	"fft":       {1 << 10, 42},
	"jacobi":    {96, 5, 42},
	"lu":        {96, 42},
	"md":        {64, 2, 42},
	"pi":        {200_000},
	"qsort":     {30_000, 42},
	"bfs":       {41, 42},
	"graphic":   {600, 12, 42},
	"wordcount": {800, 42},
}

var benchThreads = []int{1, 4}

func runBenchmark(b *testing.B, mode bench.Mode, name string, threads int) {
	b.Helper()
	cfg := bench.RunConfig{Threads: threads, Args: benchArgs[name]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(mode, name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkTable1Census regenerates Table I (static directive
// analysis of the seven numerical benchmarks).
func BenchmarkTable1Census(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := bench.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig5 measures every numerical benchmark in every mode
// (the Fig. 5 grid): fft, jacobi, lu, md, pi, qsort, bfs ×
// Pure/Hybrid/Compiled/CompiledDT (+ PyOMP where supported).
func BenchmarkFig5(b *testing.B) {
	for _, name := range bench.Names {
		if !bench.Registry[name].Numerical {
			continue
		}
		modes := append([]bench.Mode{}, bench.AllOMP4PyModes...)
		if _, no := pyomp.Unsupported[name]; !no {
			modes = append(modes, bench.PyOMP)
		}
		for _, mode := range modes {
			for _, th := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/%dT", name, mode, th), func(b *testing.B) {
					runBenchmark(b, mode, name, th)
				})
			}
		}
	}
}

// BenchmarkFig6 measures the non-numerical applications across the
// OMP4Py modes (PyOMP cannot run them, §IV-B).
func BenchmarkFig6(b *testing.B) {
	for _, name := range []string{"graphic", "wordcount"} {
		for _, mode := range bench.AllOMP4PyModes {
			for _, th := range benchThreads {
				b.Run(fmt.Sprintf("%s/%s/%dT", name, mode, th), func(b *testing.B) {
					runBenchmark(b, mode, name, th)
				})
			}
		}
	}
}

// BenchmarkFig7 measures the scheduling-policy sweep (static,
// dynamic, guided; chunk 300 in the paper, scaled here) on the
// imbalanced non-numerical workloads.
func BenchmarkFig7(b *testing.B) {
	policies := []directive.ScheduleKind{
		directive.ScheduleStatic, directive.ScheduleDynamic, directive.ScheduleGuided,
	}
	for _, name := range []string{"graphic", "wordcount"} {
		for _, pol := range policies {
			b.Run(fmt.Sprintf("%s/%s", name, pol), func(b *testing.B) {
				cfg := bench.RunConfig{
					Threads:  4,
					Args:     benchArgs[name],
					Schedule: rt.Schedule{Kind: pol, Chunk: 30},
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.Run(bench.Hybrid, name, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8 measures the hybrid MPI/OpenMP jacobi across
// simulated node counts.
func BenchmarkFig8(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jacobi/%dnodes", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := bench.RunHybridJacobi(bench.HybridConfig{
					Mode: bench.CompiledDT, Nodes: nodes, ThreadsPerNode: 2,
					N: 96, Iters: 4, Seed: 42, Network: bench.DefaultNetwork(),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSyncLayer isolates the Pure-vs-Hybrid mechanism:
// the same dynamic-scheduled loop driven through the mutex runtime
// and the atomic cruntime (§III-D's counter coordination).
func BenchmarkAblationSyncLayer(b *testing.B) {
	for _, layer := range []rt.Layer{rt.LayerMutex, rt.LayerAtomic} {
		b.Run(layer.String(), func(b *testing.B) {
			r := rt.NewWithEnv(layer, func(string) string { return "" })
			ctx := r.NewContext()
			for i := 0; i < b.N; i++ {
				err := r.Parallel(ctx, rt.ParallelOpts{NumThreads: 4}, func(c *rt.Context) error {
					bounds := rt.ForBounds(rt.Triplet{Start: 0, End: 20000, Step: 1})
					if err := c.ForInit(bounds, rt.ForOpts{
						Sched:    rt.Schedule{Kind: directive.ScheduleDynamic, Chunk: 1},
						SchedSet: true,
					}); err != nil {
						return err
					}
					for bounds.ForNext() {
					}
					return c.ForEnd(bounds)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGIL quantifies the GIL model against free
// threading on the interpreted path.
func BenchmarkAblationGIL(b *testing.B) {
	for _, gil := range []bool{true, false} {
		label := "free-threaded"
		if gil {
			label = "gil"
		}
		b.Run(label, func(b *testing.B) {
			cfg := bench.RunConfig{Threads: 4, Args: []int64{60_000}, GIL: gil}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Run(bench.Pure, "pi", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContendedAlloc toggles the free-threading
// allocation-contention model (the forward-looking claim of §IV-A:
// interpreter fixes lift Pure-mode scalability without OMP4Py
// changes).
func BenchmarkAblationContendedAlloc(b *testing.B) {
	for _, off := range []bool{false, true} {
		label := "contended"
		if off {
			label = "uncontended"
		}
		b.Run(label, func(b *testing.B) {
			cfg := bench.RunConfig{Threads: 4, Args: []int64{60_000}, ContendedAllocOff: off}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Run(bench.Pure, "pi", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTaskIfCutoff sweeps the task if-clause cutoff on
// qsort (the clause PyOMP lacks, §IV-A).
func BenchmarkAblationTaskIfCutoff(b *testing.B) {
	program := `
from omp4py import *

@omp
def qs(a, lo: int, hi: int, cutoff: int):
    if lo >= hi:
        return None
    pivot: float = a[(lo + hi) // 2]
    i: int = lo
    j: int = hi
    while i <= j:
        while a[i] < pivot:
            i += 1
        while a[j] > pivot:
            j -= 1
        if i <= j:
            t: float = a[i]
            a[i] = a[j]
            a[j] = t
            i += 1
            j -= 1
    with omp("task if(j - lo > cutoff)"):
        qs(a, lo, j, cutoff)
    with omp("task if(hi - i > cutoff)"):
        qs(a, i, hi, cutoff)
    omp("taskwait")
    return None

@omp
def run(n, cutoff):
    a = [0.0] * n
    x = 12345.0
    for i in range(n):
        x = (x * 1103.515245 + 12345.0) % 1000000.0
        a[i] = x
    with omp("parallel num_threads(4)"):
        with omp("single"):
            qs(a, 0, n - 1, cutoff)
    return a[0] + a[n - 1] + a[n // 2]
`
	for _, cutoff := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("cutoff%d", cutoff), func(b *testing.B) {
			p, err := omp.Load(program, "qs.py", omp.ModeCompiledDT)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Call("run", 20000, cutoff); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationListStorage contrasts the float-specialized list
// storage against generic boxed storage in CompiledDT (the adaptive
// representation behind the typed fast paths).
func BenchmarkAblationListStorage(b *testing.B) {
	mk := func(boxed bool) string {
		init := "a = [0.0] * n"
		if boxed {
			// Seeding with a string then deleting it forces generic
			// storage for the whole run.
			init = "a = [\"box\"] + [0.0] * n\n    a.pop(0)"
		}
		return `
def kernel(n: int) -> float:
    ` + init + `
    for i in range(n):
        a[i] = i * 0.5
    s: float = 0.0
    for i in range(n):
        s += a[i]
    return s
`
	}
	for _, boxed := range []bool{false, true} {
		label := "specialized"
		if boxed {
			label = "boxed"
		}
		b.Run(label, func(b *testing.B) {
			p, err := omp.Load(mk(boxed), "ls.py", omp.ModeCompiledDT)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Call("kernel", 50_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompiledKernels quantifies the CompiledDT
// runtime-aware loop kernels (docs/runtime.md, "Compiled kernels")
// against the interp-bridge lowering they replace. The win is the
// per-chunk boxed for_next round trip, so it scales inversely with
// the static chunk size: fine-grained chunking (static,1..4) runs
// >=2x faster under kernels, while the block-partition default claims
// one chunk per member either way and lands within noise.
func BenchmarkAblationCompiledKernels(b *testing.B) {
	mk := func(sched string) string {
		return `
from omp4py import *

@omp
def kernel(n: int) -> float:
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value)` + sched + `"):
        for i in range(n):
            local: float = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
`
	}
	for _, sched := range []string{"", " schedule(static, 1)", " schedule(static, 4)"} {
		label := "block"
		if sched != "" {
			label = "chunk=" + sched[len(" schedule(static, "):len(sched)-1]
		}
		for _, mode := range []string{"on", "off"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/kernels=%s", label, mode), func(b *testing.B) {
				p, err := omp.Load(mk(sched), "kab.py", omp.ModeCompiledDT,
					omp.WithEnv(func(k string) string {
						switch k {
						case "OMP4GO_COMPILE_KERNELS":
							return mode
						case "OMP_NUM_THREADS":
							return "4"
						}
						return ""
					}))
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Call("kernel", 1_000_000); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestBenchShapesSanity asserts the headline orderings the paper
// reports hold at bench sizes: compiled modes beat interpreted ones,
// and PyOMP lands near CompiledDT.
func TestBenchShapesSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	timeOf := func(mode bench.Mode, name string) float64 {
		best := 1e18
		for i := 0; i < 3; i++ {
			res, err := bench.Run(mode, name, bench.RunConfig{Threads: 1, Args: benchArgs[name]})
			if err != nil {
				t.Fatal(err)
			}
			if res.Seconds < best {
				best = res.Seconds
			}
		}
		return best
	}
	for _, name := range []string{"pi", "fft"} {
		pure := timeOf(bench.Pure, name)
		compiled := timeOf(bench.Compiled, name)
		dt := timeOf(bench.CompiledDT, name)
		t.Logf("%s: Pure %.4fs, Compiled %.4fs, CompiledDT %.4fs", name, pure, compiled, dt)
		if compiled >= pure {
			t.Errorf("%s: Compiled (%.4fs) not faster than Pure (%.4fs)", name, compiled, pure)
		}
		if dt >= pure {
			t.Errorf("%s: CompiledDT (%.4fs) not faster than Pure (%.4fs)", name, dt, pure)
		}
	}
}
