module github.com/omp4go/omp4go

go 1.24
