// Package metrics is omp4go's always-on runtime metrics layer. Unlike
// the tracing subsystem (internal/ompt), which records a bounded event
// stream while a tool is attached and exports it after the fact, this
// package maintains monotonic counters and log-bucketed histograms for
// the whole lifetime of a Runtime, cheap enough to leave enabled in
// production: hot paths perform one striped atomic add per update, and
// aggregation work happens only when a snapshot is taken (the
// /metrics endpoint, omp4go-top, or a test).
//
// Contention is kept off the update path by striping: the registry
// holds a fixed power-of-two array of cache-padded stripes, and each
// update lands on the stripe selected by the updating worker's global
// thread id. Pool workers have stable gtids, so in steady state each
// worker increments its own stripe and the cache line never bounces.
// Updates use atomic adds, so a collision between two gtids mapping to
// the same stripe costs a little contention but never a lost count —
// snapshots are exact, which the trace-agreement tests rely on.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// CounterID names one monotonic counter.
type CounterID int

// The counter set. Names returned by Name follow the Prometheus
// convention (omp4go_<what>_total).
const (
	// RegionsForked counts parallel regions entered (including
	// serialized size-1 regions); RegionsJoined counts regions whose
	// implicit join completed.
	RegionsForked CounterID = iota
	RegionsJoined
	// Barriers counts per-thread barrier passages (one per team member
	// per completed barrier, implicit and explicit — accounted in one
	// add by the arrival that completes the epoch, so a barrier
	// abandoned by a broken team counts zero); BarrierWaitNS
	// accumulates the time threads spent waiting in barriers,
	// excluding time spent productively executing stolen tasks while
	// waiting. BarrierWaitNS, CriticalWaitNS and CriticalHoldNS mirror
	// their histogram's sum (see nsMirror): hot paths feed only the
	// histogram, and the counter is materialized on read.
	Barriers
	BarrierWaitNS
	// Task lifecycle: created (deferred and undeferred), run to
	// completion, claimed from another member's deque, spilled to the
	// scheduler's shared overflow list.
	TasksCreated
	TasksRun
	TasksStolen
	TasksOverflowed
	// Task dataflow: tasks created with at least one unresolved
	// depend-clause predecessor (stalled off the ready deques), tasks
	// later released to the scheduler when their last predecessor
	// completed, tasks skipped because an enclosing taskgroup was
	// cancelled, and taskgroup regions entered.
	TasksDependStalled
	TasksDependReleased
	TasksCancelled
	Taskgroups
	// Worksharing loops: chunks claimed and iterations covered.
	LoopChunks
	LoopIterations
	// Compiled loop kernels: worksharing-loop member shares executed
	// by internal/compile's static-schedule fast path instead of the
	// per-chunk interp bridge (one count per member per loop).
	CompiledKernelLoops
	// Critical sections: contention wait and hold time.
	CriticalWaitNS
	CriticalHoldNS
	// Persistent pool worker lifecycle: parks (worker blocked waiting
	// for a region), unparks (woken with work after a park), and
	// retirements (idle worker goroutine exited).
	PoolParks
	PoolUnparks
	PoolRetirements
	// FlightDumps counts flight-recorder dump files written (stall-,
	// kill- or demand-triggered post-mortem captures).
	FlightDumps
	// MPI transport traffic (internal/mpi): point-to-point messages
	// handed to the transport, payload bytes moved (approximate for
	// object payloads), and messages that rode a coalesced flush
	// batch behind another message instead of paying their own wire
	// write (len(batch)-1 per multi-message flush).
	MPIMsgs
	MPIBytes
	MPICoalesced

	NumCounters
)

var counterNames = [NumCounters]string{
	RegionsForked:       "omp4go_regions_forked_total",
	RegionsJoined:       "omp4go_regions_joined_total",
	Barriers:            "omp4go_barrier_passages_total",
	BarrierWaitNS:       "omp4go_barrier_wait_ns_total",
	TasksCreated:        "omp4go_tasks_created_total",
	TasksRun:            "omp4go_tasks_run_total",
	TasksStolen:         "omp4go_tasks_stolen_total",
	TasksOverflowed:     "omp4go_tasks_overflowed_total",
	TasksDependStalled:  "omp4go_tasks_depend_stalled_total",
	TasksDependReleased: "omp4go_tasks_depend_released_total",
	TasksCancelled:      "omp4go_tasks_cancelled_total",
	Taskgroups:          "omp4go_taskgroups_total",
	LoopChunks:          "omp4go_loop_chunks_total",
	LoopIterations:      "omp4go_loop_iterations_total",
	CompiledKernelLoops: "omp4go_compiled_kernel_loops_total",
	CriticalWaitNS:      "omp4go_critical_wait_ns_total",
	CriticalHoldNS:      "omp4go_critical_hold_ns_total",
	PoolParks:           "omp4go_pool_parks_total",
	PoolUnparks:         "omp4go_pool_unparks_total",
	PoolRetirements:     "omp4go_pool_retirements_total",
	FlightDumps:         "omp4go_flight_dumps_total",
	MPIMsgs:             "omp4go_mpi_msgs_total",
	MPIBytes:            "omp4go_mpi_bytes_total",
	MPICoalesced:        "omp4go_mpi_coalesced_total",
}

// Name returns the Prometheus metric name of the counter.
func (c CounterID) Name() string { return counterNames[c] }

// HistID names one log-bucketed duration histogram.
type HistID int

// The histogram set. Every histogram observes nanoseconds.
const (
	HistBarrierWait HistID = iota
	HistCriticalWait
	HistCriticalHold
	// MPI transport wait time (internal/mpi): time a flush spent
	// blocked handing a batch to the transport, and time a receive
	// spent blocked waiting for a matching message.
	HistMPISendWait
	HistMPIRecvWait

	NumHists
)

var histNames = [NumHists]string{
	HistBarrierWait:  "omp4go_barrier_wait_seconds",
	HistCriticalWait: "omp4go_critical_wait_seconds",
	HistCriticalHold: "omp4go_critical_hold_seconds",
	HistMPISendWait:  "omp4go_mpi_send_wait_seconds",
	HistMPIRecvWait:  "omp4go_mpi_recv_wait_seconds",
}

// Name returns the Prometheus metric name of the histogram.
func (h HistID) Name() string { return histNames[h] }

// NumBuckets is the finite bucket count of each histogram. Bucket i
// counts observations with ns <= 1<<(bucketShift+i); observations
// beyond the last boundary land in the implicit +Inf bucket
// (Count - sum of finite buckets).
const (
	NumBuckets = 16
	// bucketShift puts the first boundary at 2^10 ns ≈ 1 µs; the last
	// finite boundary is then 2^25 ns ≈ 33 ms. Anything slower is
	// +Inf — at that point the magnitude, not the shape, is the story.
	bucketShift = 10
)

// BucketBound returns the inclusive upper bound, in nanoseconds, of
// finite bucket i.
func BucketBound(i int) int64 { return 1 << (bucketShift + i) }

// bucketOf returns the finite bucket index for an observation, or
// NumBuckets for the +Inf bucket. Constant-time: the bucket is the
// bit length of (ns-1) above the first boundary's shift, so that the
// inclusive bounds 1<<(bucketShift+i) land in bucket i.
func bucketOf(ns int64) int {
	if ns <= 1<<bucketShift {
		return 0
	}
	b := bits.Len64(uint64(ns-1)) - bucketShift
	if b > NumBuckets {
		return NumBuckets
	}
	return b
}

// histogram is one stripe's share of a log-bucketed histogram. The
// extra bucket slot is the +Inf bucket, so an observation costs two
// atomic adds (bucket, sum); the total count is derived at snapshot
// time as the sum of every bucket.
type histogram struct {
	buckets [NumBuckets + 1]atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// numStripes is the stripe count; power of two so stripe selection is
// a mask. 32 stripes cover the persistent-pool worker cap on typical
// hardware while keeping a registry around 25 KB.
const numStripes = 32

// stripeData is the payload of one stripe: the counter block and the
// histogram block, updated by (mostly) one worker.
type stripeData struct {
	c [NumCounters]atomic.Int64
	h [NumHists]histogram
}

const cacheLine = 64

// stripe pads stripeData to a cache-line multiple so neighbouring
// stripes never share a line (no false sharing between workers).
type stripe struct {
	stripeData
	_ [(cacheLine - unsafe.Sizeof(stripeData{})%cacheLine) % cacheLine]byte
}

// Registry is one runtime's metric store.
type Registry struct {
	stripes [numStripes]stripe
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// stripeFor selects the stripe for a global thread id.
func (r *Registry) stripeFor(gtid int32) *stripeData {
	return &r.stripes[uint32(gtid)&(numStripes-1)].stripeData
}

// Add adds delta to a counter on the worker's stripe.
func (r *Registry) Add(gtid int32, id CounterID, delta int64) {
	r.stripeFor(gtid).c[id].Add(delta)
}

// Inc increments a counter on the worker's stripe.
func (r *Registry) Inc(gtid int32, id CounterID) {
	r.stripeFor(gtid).c[id].Add(1)
}

// Observe records a duration observation into a histogram on the
// worker's stripe: one bucket add and one sum add.
func (r *Registry) Observe(gtid int32, id HistID, ns int64) {
	h := &r.stripeFor(gtid).h[id]
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// nsMirror maps the *_ns_total counters to the histogram whose sum
// they mirror. The hot paths feed only the histogram (two atomic adds
// instead of three); the counter value is materialized on read.
var nsMirror = map[CounterID]HistID{
	BarrierWaitNS:  HistBarrierWait,
	CriticalWaitNS: HistCriticalWait,
	CriticalHoldNS: HistCriticalHold,
}

// Counter returns the merged value of one counter.
func (r *Registry) Counter(id CounterID) int64 {
	if h, ok := nsMirror[id]; ok {
		var v int64
		for i := range r.stripes {
			v += r.stripes[i].h[h].sum.Load()
		}
		return v
	}
	var v int64
	for i := range r.stripes {
		v += r.stripes[i].c[id].Load()
	}
	return v
}

// HistSnapshot is the merged view of one histogram.
type HistSnapshot struct {
	// Buckets[i] counts observations ≤ BucketBound(i); observations
	// past the last finite bound appear only in Count.
	Buckets [NumBuckets]int64
	Count   int64
	SumNS   int64
}

// Snapshot is a merged point-in-time copy of every metric. Snapshots
// taken while workers are updating are internally consistent per
// counter (each counter is a sum of atomic loads) but not across
// counters; for exact cross-counter agreement, quiesce first.
type Snapshot struct {
	Counters [NumCounters]int64
	Hists    [NumHists]HistSnapshot
}

// Snapshot merges every stripe.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	for i := range r.stripes {
		st := &r.stripes[i].stripeData
		for c := CounterID(0); c < NumCounters; c++ {
			s.Counters[c] += st.c[c].Load()
		}
		for h := HistID(0); h < NumHists; h++ {
			hs := &s.Hists[h]
			for b := 0; b < NumBuckets; b++ {
				hs.Buckets[b] += st.h[h].buckets[b].Load()
			}
			// Count spans every bucket including +Inf.
			for b := 0; b <= NumBuckets; b++ {
				hs.Count += st.h[h].buckets[b].Load()
			}
			hs.SumNS += st.h[h].sum.Load()
		}
	}
	// The *_ns_total counters mirror their histogram sums (the hot
	// paths feed only the histogram).
	for c, h := range nsMirror {
		s.Counters[c] = s.Hists[h].SumNS
	}
	return s
}

// Counter returns one counter from the snapshot.
func (s *Snapshot) Counter(id CounterID) int64 { return s.Counters[id] }

// CounterMap renders the counters as a name → value map (the
// /debug/omp JSON form).
func (s *Snapshot) CounterMap() map[string]int64 {
	m := make(map[string]int64, NumCounters)
	for c := CounterID(0); c < NumCounters; c++ {
		m[c.Name()] = s.Counters[c]
	}
	return m
}
