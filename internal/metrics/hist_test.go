package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestHistObserveSnapshot(t *testing.T) {
	var h Hist
	h.Observe(500)     // first bucket (<= 1µs)
	h.Observe(1 << 12) // 4096 ns
	h.Observe(1 << 30) // past the last finite bound -> +Inf only
	h.Observe(-5)      // clamped to 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if s.Buckets[0] != 2 { // 500 and the clamped -5
		t.Errorf("Buckets[0] = %d, want 2", s.Buckets[0])
	}
	wantSum := int64(500 + 1<<12 + 1<<30)
	if s.SumNS != wantSum {
		t.Errorf("SumNS = %d, want %d", s.SumNS, wantSum)
	}
	var finite int64
	for _, b := range s.Buckets {
		finite += b
	}
	if finite != 3 {
		t.Errorf("finite bucket total = %d, want 3 (one observation is +Inf-only)", finite)
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestHistWritePrometheus(t *testing.T) {
	var h Hist
	h.Observe(2000)
	var b strings.Builder
	if err := h.Snapshot().WritePrometheus(&b, "svc_run_seconds", `tenant="alice"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`svc_run_seconds_bucket{tenant="alice",le="+Inf"} 1`,
		`svc_run_seconds_count{tenant="alice"} 1`,
		`svc_run_seconds_sum{tenant="alice"} 2e-06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Unlabeled series render without braces.
	b.Reset()
	if err := h.Snapshot().WritePrometheus(&b, "svc_run_seconds", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "svc_run_seconds_count 1") {
		t.Errorf("unlabeled exposition malformed:\n%s", b.String())
	}
}
