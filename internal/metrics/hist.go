package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// Hist is a standalone log-bucketed histogram with the same bucket
// geometry as the registry's striped histograms, for subsystems whose
// metrics fall outside the fixed runtime counter set (the execution
// service's per-tenant run latencies, for example). Unlike the
// registry it is unstriped: observations are two atomic adds on shared
// lines, which is fine at request rates but would bounce on the
// runtime's per-event hot paths.
type Hist struct {
	h histogram
}

// Observe records one duration observation in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.h.buckets[bucketOf(ns)].Add(1)
	h.h.sum.Add(ns)
}

// Snapshot returns a merged point-in-time copy.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for b := 0; b < NumBuckets; b++ {
		s.Buckets[b] = h.h.buckets[b].Load()
	}
	for b := 0; b <= NumBuckets; b++ {
		s.Count += h.h.buckets[b].Load()
	}
	s.SumNS = h.h.sum.Load()
	return s
}

// WritePrometheus renders the snapshot as a Prometheus histogram named
// name with an optional label set (e.g. `tenant="alice"`). The TYPE
// and HELP headers are the caller's responsibility, since several
// labeled series of one metric share a single header.
func (s HistSnapshot) WritePrometheus(w io.Writer, name, labels string) error {
	brace := func(extra string) string {
		if labels == "" && extra == "" {
			return ""
		}
		switch {
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		}
		return "{" + labels + "," + extra + "}"
	}
	cum := int64(0)
	for b := 0; b < NumBuckets; b++ {
		cum += s.Buckets[b]
		le := strconv.FormatFloat(float64(BucketBound(b))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(`le=`+strconv.Quote(le)), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
		name, brace(`le="+Inf"`), s.Count,
		name, brace(""), strconv.FormatFloat(float64(s.SumNS)/1e9, 'g', -1, 64),
		name, brace(""), s.Count)
	return err
}
