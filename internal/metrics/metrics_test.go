package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestStripePadding(t *testing.T) {
	if sz := unsafe.Sizeof(stripe{}); sz%cacheLine != 0 {
		t.Fatalf("stripe size %d is not a multiple of the cache line", sz)
	}
}

func TestCountersMergeAcrossStripes(t *testing.T) {
	r := New()
	// Spread updates over more gtids than stripes so the merge path
	// and the collision path are both exercised.
	for gtid := int32(0); gtid < 3*numStripes; gtid++ {
		r.Inc(gtid, RegionsForked)
		r.Add(gtid, LoopIterations, 10)
	}
	if got := r.Counter(RegionsForked); got != 3*numStripes {
		t.Errorf("RegionsForked = %d, want %d", got, 3*numStripes)
	}
	s := r.Snapshot()
	if got := s.Counter(LoopIterations); got != 30*numStripes {
		t.Errorf("LoopIterations = %d, want %d", got, 30*numStripes)
	}
	if s.Counter(TasksCreated) != 0 {
		t.Errorf("untouched counter non-zero")
	}
}

func TestConcurrentUpdatesAreExact(t *testing.T) {
	r := New()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(gtid int32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc(gtid, Barriers)
				// Same stripe from every worker: collisions must not
				// lose counts.
				r.Inc(0, TasksRun)
			}
		}(int32(w))
	}
	wg.Wait()
	if got := r.Counter(Barriers); got != workers*per {
		t.Errorf("Barriers = %d, want %d", got, workers*per)
	}
	if got := r.Counter(TasksRun); got != workers*per {
		t.Errorf("TasksRun = %d, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	r.Observe(1, HistBarrierWait, 0)              // bucket 0
	r.Observe(1, HistBarrierWait, BucketBound(0)) // inclusive bound: bucket 0
	r.Observe(2, HistBarrierWait, BucketBound(3)) // bucket 3
	r.Observe(2, HistBarrierWait, 1<<40)          // +Inf only
	r.Observe(2, HistBarrierWait, -5)             // clamped to 0
	s := r.Snapshot()
	h := s.Hists[HistBarrierWait]
	if h.Count != 5 {
		t.Fatalf("count = %d, want 5", h.Count)
	}
	if h.Buckets[0] != 3 || h.Buckets[3] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	var finite int64
	for _, b := range h.Buckets {
		finite += b
	}
	if inf := h.Count - finite; inf != 1 {
		t.Errorf("+Inf observations = %d, want 1", inf)
	}
	if want := int64(BucketBound(0) + BucketBound(3) + 1<<40); h.SumNS != want {
		t.Errorf("sum = %d, want %d", h.SumNS, want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Inc(0, RegionsForked)
	r.Add(0, BarrierWaitNS, 1500)
	r.Observe(0, HistBarrierWait, 1500)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE omp4go_regions_forked_total counter",
		"omp4go_regions_forked_total 1",
		"omp4go_barrier_wait_ns_total 1500",
		"# TYPE omp4go_barrier_wait_seconds histogram",
		`omp4go_barrier_wait_seconds_bucket{le="+Inf"} 1`,
		"omp4go_barrier_wait_seconds_count 1",
		"omp4go_pool_parks_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the 1500 ns observation must appear in
	// every bucket from its own upward.
	if !strings.Contains(out, `omp4go_barrier_wait_seconds_bucket{le="2.048e-06"} 1`) {
		t.Errorf("bucket cumulation wrong:\n%s", out)
	}
}
