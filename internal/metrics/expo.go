package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// counterHelp documents each counter for the Prometheus exposition.
var counterHelp = [NumCounters]string{
	RegionsForked:   "Parallel regions entered (including serialized size-1 regions).",
	RegionsJoined:   "Parallel regions whose implicit join completed.",
	Barriers:        "Per-thread barrier passages (implicit and explicit).",
	BarrierWaitNS:   "Nanoseconds spent waiting in barriers (task execution while waiting excluded).",
	TasksCreated:    "Explicit tasks submitted (deferred and undeferred).",
	TasksRun:        "Explicit tasks run to completion.",
	TasksStolen:     "Tasks claimed from another team member's deque.",
	TasksOverflowed: "Task submissions spilled to the scheduler's shared overflow list.",
	LoopChunks:      "Worksharing loop chunks claimed.",
	LoopIterations:  "Worksharing loop iterations covered by claimed chunks.",
	CriticalWaitNS:  "Nanoseconds spent contending for critical sections.",
	CriticalHoldNS:  "Nanoseconds critical sections were held.",
	PoolParks:       "Times a persistent pool worker parked waiting for a region.",
	PoolUnparks:     "Times a parked pool worker was woken with work.",
	PoolRetirements: "Idle pool worker goroutines retired.",
	FlightDumps:     "Flight-recorder dump files written (stall/kill/demand triggered).",
	MPIMsgs:         "MPI point-to-point messages handed to the transport.",
	MPIBytes:        "MPI payload bytes moved (approximate for object payloads).",
	MPICoalesced:    "MPI messages that rode a coalesced flush batch behind another message.",
}

var histHelp = [NumHists]string{
	HistBarrierWait:  "Barrier wait time (task execution while waiting excluded).",
	HistCriticalWait: "Critical-section contention wait time.",
	HistCriticalHold: "Critical-section hold time.",
	HistMPISendWait:  "MPI flush time blocked handing a batch to the transport.",
	HistMPIRecvWait:  "MPI receive time blocked waiting for a matching message.",
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): every counter as a _total
// counter, every histogram as _bucket/_sum/_count series with
// boundaries in seconds.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for c := CounterID(0); c < NumCounters; c++ {
		name := c.Name()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, counterHelp[c], name, name, s.Counters[c]); err != nil {
			return err
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		name := h.Name()
		hs := &s.Hists[h]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			name, histHelp[h], name); err != nil {
			return err
		}
		cum := int64(0)
		for b := 0; b < NumBuckets; b++ {
			cum += hs.Buckets[b]
			le := strconv.FormatFloat(float64(BucketBound(b))/1e9, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, hs.Count,
			name, strconv.FormatFloat(float64(hs.SumNS)/1e9, 'g', -1, 64),
			name, hs.Count); err != nil {
			return err
		}
	}
	return nil
}
