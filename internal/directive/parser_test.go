package directive

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Directive {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return d
}

func mustFail(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q): expected error containing %q, got nil", src, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("Parse(%q): error %q does not contain %q", src, err, wantSub)
	}
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("Parse(%q): error is %T, want *SyntaxError", src, err)
	}
}

func asSyntaxError(err error, out **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*out = se
	}
	return ok
}

func TestParseSimpleDirectives(t *testing.T) {
	for _, src := range []string{
		"parallel", "for", "sections", "section", "single", "master",
		"critical", "barrier", "atomic", "flush", "ordered", "task", "taskwait",
	} {
		d := mustParse(t, src)
		if string(d.Name) != src {
			t.Errorf("Parse(%q).Name = %q", src, d.Name)
		}
		if len(d.Clauses) != 0 {
			t.Errorf("Parse(%q) has %d clauses, want 0", src, len(d.Clauses))
		}
	}
}

func TestParseCombinedNames(t *testing.T) {
	cases := map[string]Name{
		"parallel for":      NameParallelFor,
		"parallel_for":      NameParallelFor,
		"Parallel For":      NameParallelFor,
		"parallel sections": NameParallelSections,
		"parallel_sections": NameParallelSections,
		"declare reduction(m : omp_out + omp_in)": NameDeclareReduction,
		"declare_reduction(m : omp_out + omp_in)": NameDeclareReduction,
	}
	for src, want := range cases {
		d := mustParse(t, src)
		if d.Name != want {
			t.Errorf("Parse(%q).Name = %q, want %q", src, d.Name, want)
		}
	}
}

func TestParallelForSubsumesParallel(t *testing.T) {
	// "parallel" followed by a non-combining identifier stays plain parallel.
	d := mustParse(t, "parallel num_threads(4)")
	if d.Name != NameParallel {
		t.Fatalf("name = %q, want parallel", d.Name)
	}
	c := d.Find(ClauseNumThreads)
	if c == nil || c.Expr != "4" {
		t.Fatalf("num_threads clause = %+v", c)
	}
}

func TestParseReduction(t *testing.T) {
	d := mustParse(t, "parallel for reduction(+:pi_value)")
	c := d.Find(ClauseReduction)
	if c == nil {
		t.Fatal("no reduction clause")
	}
	if c.Op != "+" || len(c.Vars) != 1 || c.Vars[0] != "pi_value" {
		t.Fatalf("reduction clause = %+v", c)
	}
}

func TestParseReductionOps(t *testing.T) {
	for _, op := range []string{"+", "*", "-", "&", "|", "^", "&&", "||", "min", "max", "myred"} {
		d := mustParse(t, "for reduction("+op+": a, b)")
		c := d.Find(ClauseReduction)
		if c == nil || c.Op != op {
			t.Errorf("op %q: clause = %+v", op, c)
		}
		if len(c.Vars) != 2 || c.Vars[0] != "a" || c.Vars[1] != "b" {
			t.Errorf("op %q: vars = %v", op, c.Vars)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		src   string
		kind  ScheduleKind
		chunk string
	}{
		{"for schedule(static)", ScheduleStatic, ""},
		{"for schedule(dynamic, 300)", ScheduleDynamic, "300"},
		{"for schedule(guided,8)", ScheduleGuided, "8"},
		{"for schedule(auto)", ScheduleAuto, ""},
		{"for schedule(runtime)", ScheduleRuntime, ""},
		{"for schedule(dynamic, n // 2)", ScheduleDynamic, "n // 2"},
		{"for schedule(static, (n+1)*2)", ScheduleStatic, "(n+1)*2"},
	}
	for _, tc := range cases {
		d := mustParse(t, tc.src)
		c := d.Find(ClauseSchedule)
		if c == nil {
			t.Fatalf("%q: no schedule clause", tc.src)
		}
		if c.Sched != tc.kind || c.Expr != tc.chunk {
			t.Errorf("%q: got (%v,%q), want (%v,%q)", tc.src, c.Sched, c.Expr, tc.kind, tc.chunk)
		}
	}
}

func TestParseDataClauses(t *testing.T) {
	d := mustParse(t, "parallel private(a, b) firstprivate(c) shared(d) default(none)")
	if got := d.Find(ClausePrivate).Vars; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("private vars = %v", got)
	}
	if got := d.Find(ClauseFirstprivate).Vars; len(got) != 1 || got[0] != "c" {
		t.Errorf("firstprivate vars = %v", got)
	}
	if got := d.Find(ClauseShared).Vars; len(got) != 1 || got[0] != "d" {
		t.Errorf("shared vars = %v", got)
	}
	if got := d.Find(ClauseDefault).Default; got != DefaultNone {
		t.Errorf("default = %v", got)
	}
}

func TestParseDefaultVariants(t *testing.T) {
	for src, want := range map[string]DefaultKind{
		"parallel default(shared)":       DefaultShared,
		"parallel default(none)":         DefaultNone,
		"parallel default(private)":      DefaultPrivate,
		"parallel default(firstprivate)": DefaultFirstprivate,
	} {
		d := mustParse(t, src)
		if got := d.Find(ClauseDefault).Default; got != want {
			t.Errorf("%q: default = %v, want %v", src, got, want)
		}
	}
	mustFail(t, "parallel default(bogus)", "invalid default")
}

func TestParseIfAndNumThreads(t *testing.T) {
	d := mustParse(t, "task if(n > 30)")
	if c := d.Find(ClauseIf); c == nil || c.Expr != "n > 30" {
		t.Fatalf("if clause = %+v", c)
	}
	d = mustParse(t, "parallel num_threads(2 * k)")
	if c := d.Find(ClauseNumThreads); c == nil || c.Expr != "2 * k" {
		t.Fatalf("num_threads clause = %+v", c)
	}
	// Directive-name modifier (OpenMP 6.0 syntax inside a clause).
	d = mustParse(t, "task if(task: n > 30)")
	if c := d.Find(ClauseIf); c == nil || c.Expr != "n > 30" {
		t.Fatalf("modified if clause = %+v", c)
	}
}

func TestParseNestedParensInIf(t *testing.T) {
	d := mustParse(t, "task if(len(items) > (lo + hi))")
	if c := d.Find(ClauseIf); c == nil || c.Expr != "len(items) > (lo + hi)" {
		t.Fatalf("if clause = %+v", c)
	}
}

func TestParseCollapseOrderedNowait(t *testing.T) {
	d := mustParse(t, "for collapse(2) nowait")
	if c := d.Find(ClauseCollapse); c == nil || c.Expr != "2" {
		t.Fatalf("collapse = %+v", c)
	}
	if !d.Has(ClauseNowait) {
		t.Fatal("nowait missing")
	}
	d = mustParse(t, "for ordered")
	if !d.Has(ClauseOrdered) {
		t.Fatal("ordered missing")
	}
	// Optional nowait argument (OMP4Py extension).
	d = mustParse(t, "for nowait(1)")
	if c := d.Find(ClauseNowait); c == nil || c.Expr != "1" {
		t.Fatalf("nowait(1) = %+v", c)
	}
	mustFail(t, "for collapse(0)", "positive integer")
	mustFail(t, "for collapse(x)", "positive integer")
	mustFail(t, "for collapse(2) ordered", "not permitted together")
}

func TestParseCritical(t *testing.T) {
	d := mustParse(t, "critical")
	if d.Find(ClauseCriticalName) != nil {
		t.Fatal("unnamed critical should have no name clause")
	}
	d = mustParse(t, "critical(update_sum)")
	if c := d.Find(ClauseCriticalName); c == nil || c.Expr != "update_sum" {
		t.Fatalf("critical name = %+v", c)
	}
	mustFail(t, "critical(2bad name)", "not a valid identifier")
}

func TestParseAtomic(t *testing.T) {
	d := mustParse(t, "atomic")
	if d.Find(ClauseAtomicOp) != nil {
		t.Fatal("plain atomic should carry no op clause")
	}
	for _, op := range []string{"read", "write", "update", "capture"} {
		d := mustParse(t, "atomic "+op)
		if c := d.Find(ClauseAtomicOp); c == nil || c.Expr != op {
			t.Errorf("atomic %s: clause = %+v", op, c)
		}
	}
}

func TestParseFlushAndThreadprivate(t *testing.T) {
	d := mustParse(t, "flush")
	if d.Find(ClauseFlushList) != nil {
		t.Fatal("bare flush should have no list")
	}
	d = mustParse(t, "flush(a, b)")
	if c := d.Find(ClauseFlushList); c == nil || len(c.Vars) != 2 {
		t.Fatalf("flush list = %+v", c)
	}
	d = mustParse(t, "threadprivate(counter)")
	if c := d.Find(ClauseFlushList); c == nil || c.Vars[0] != "counter" {
		t.Fatalf("threadprivate list = %+v", c)
	}
	mustFail(t, "threadprivate", "expected '('")
}

func TestParseTaskClauses(t *testing.T) {
	d := mustParse(t, "task untied final(depth > 8) mergeable firstprivate(x)")
	if !d.Has(ClauseUntied) || !d.Has(ClauseMergeable) {
		t.Fatal("untied/mergeable missing")
	}
	if c := d.Find(ClauseFinal); c == nil || c.Expr != "depth > 8" {
		t.Fatalf("final = %+v", c)
	}
}

func TestParseDeclareReduction(t *testing.T) {
	d := mustParse(t, "declare reduction(merge : omp_out + omp_in) initializer(omp_priv = 0)")
	dr := d.DeclaredReduction
	if dr == nil {
		t.Fatal("no declared reduction payload")
	}
	if dr.Ident != "merge" || dr.Combiner != "omp_out + omp_in" || dr.Initializer != "0" {
		t.Fatalf("declared reduction = %+v", dr)
	}
	d = mustParse(t, "declare reduction(m2 : max(omp_out, omp_in))")
	if d.DeclaredReduction.Initializer != "" {
		t.Fatalf("unexpected initializer %q", d.DeclaredReduction.Initializer)
	}
	mustFail(t, "declare reduction(: x)", "identifier : combiner")
	mustFail(t, "declare reduction(a.b : x)", "not a valid name")
}

func TestSemicolonClauseSeparators(t *testing.T) {
	// OpenMP 6.0 lexical convention adopted by OMP4Py.
	d := mustParse(t, "parallel for; reduction(+:s); schedule(dynamic, 4)")
	if d.Name != NameParallelFor {
		t.Fatalf("name = %q", d.Name)
	}
	if d.Find(ClauseReduction) == nil || d.Find(ClauseSchedule) == nil {
		t.Fatal("clauses missing with semicolon separators")
	}
	d = mustParse(t, "parallel private(a), shared(b)")
	if d.Find(ClausePrivate) == nil || d.Find(ClauseShared) == nil {
		t.Fatal("clauses missing with comma separators")
	}
}

func TestValidationRejectsWrongClauses(t *testing.T) {
	mustFail(t, "barrier nowait", "not valid on directive")
	mustFail(t, "for num_threads(2)", "not valid on directive")
	mustFail(t, "single reduction(+:x)", "not valid on directive")
	mustFail(t, "master private(x)", "not valid on directive")
	mustFail(t, "taskwait if(x)", "not valid on directive")
	mustFail(t, "parallel schedule(static)", "not valid on directive")
}

func TestValidationRejectsDuplicates(t *testing.T) {
	mustFail(t, "parallel if(a) if(b)", "at most once")
	mustFail(t, "for schedule(static) schedule(dynamic)", "at most once")
	mustFail(t, "parallel default(none) default(shared)", "at most once")
}

func TestValidationDataSharingConflicts(t *testing.T) {
	mustFail(t, "parallel private(x) shared(x)", "appears in both")
	mustFail(t, "parallel for reduction(+:x) private(x)", "appears in both")
	// firstprivate + lastprivate on the same variable is conforming.
	mustParse(t, "for firstprivate(x) lastprivate(x)")
}

func TestParseErrors(t *testing.T) {
	mustFail(t, "", "expected directive name")
	mustFail(t, "frobnicate", "unknown directive")
	mustFail(t, "parallel wibble(x)", "unknown clause")
	mustFail(t, "parallel if(", "unbalanced")
	mustFail(t, "parallel private()", "at least one variable")
	mustFail(t, "parallel private(a,)", "trailing ','")
	mustFail(t, "for reduction(+ x)", "expected ':'")
	mustFail(t, "for reduction(+:)", "expected variable name")
	mustFail(t, "for schedule(sideways)", "unknown schedule kind")
	mustFail(t, "for schedule(runtime, 4)", "does not accept a chunk")
	mustFail(t, "parallel )", "unexpected")
}

func TestStringRoundTrip(t *testing.T) {
	// String() output must itself parse back to an equivalent directive.
	srcs := []string{
		"parallel for reduction(+:pi_value) schedule(dynamic,300)",
		"parallel num_threads(4) default(none) private(a,b) shared(c)",
		"task if(n > 30) untied final(d > 2) mergeable",
		"single copyprivate(x) nowait",
		"critical(name1)",
		"sections lastprivate(v)",
		"for collapse(3) schedule(guided,7)",
		"flush(p,q)",
		"atomic capture",
	}
	for _, src := range srcs {
		d1 := mustParse(t, src)
		d2 := mustParse(t, d1.String())
		if d1.String() != d2.String() {
			t.Errorf("round trip mismatch:\n  first:  %s\n  second: %s", d1, d2)
		}
		if d1.Name != d2.Name || len(d1.Clauses) != len(d2.Clauses) {
			t.Errorf("%q: structural mismatch after round trip", src)
		}
	}
}

func TestIsStandalone(t *testing.T) {
	for src, want := range map[string]bool{
		"barrier":          true,
		"taskwait":         true,
		"flush":            true,
		"threadprivate(x)": true,
		"parallel":         false,
		"task":             false,
		"single":           false,
	} {
		if got := mustParse(t, src).IsStandalone(); got != want {
			t.Errorf("IsStandalone(%q) = %v, want %v", src, got, want)
		}
	}
}
