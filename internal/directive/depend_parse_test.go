package directive

import "testing"

func TestParseDependClauses(t *testing.T) {
	d := mustParse(t, "task depend(in: a, b) depend(out: c) depend(inout: d)")
	var in, out, inout *Clause
	for i := range d.Clauses {
		c := &d.Clauses[i]
		if c.Kind != ClauseDepend {
			continue
		}
		switch c.Op {
		case "in":
			in = c
		case "out":
			out = c
		case "inout":
			inout = c
		}
	}
	if in == nil || len(in.Vars) != 2 || in.Vars[0] != "a" || in.Vars[1] != "b" {
		t.Fatalf("depend(in) = %+v", in)
	}
	if out == nil || len(out.Vars) != 1 || out.Vars[0] != "c" {
		t.Fatalf("depend(out) = %+v", out)
	}
	if inout == nil || len(inout.Vars) != 1 || inout.Vars[0] != "d" {
		t.Fatalf("depend(inout) = %+v", inout)
	}
}

func TestParseDependSubscripts(t *testing.T) {
	d := mustParse(t, "task depend(in: A[i-1][j], A[i][j-1]) depend(out: A[i][j])")
	var ins, outs []string
	for _, c := range d.Clauses {
		if c.Kind != ClauseDepend {
			continue
		}
		switch c.Op {
		case "in":
			ins = append(ins, c.Vars...)
		case "out":
			outs = append(outs, c.Vars...)
		}
	}
	if len(ins) != 2 || ins[0] != "A[i-1][j]" || ins[1] != "A[i][j-1]" {
		t.Fatalf("depend(in) operands = %q", ins)
	}
	if len(outs) != 1 || outs[0] != "A[i][j]" {
		t.Fatalf("depend(out) operands = %q", outs)
	}
}

func TestParseDependErrors(t *testing.T) {
	mustFail(t, "task depend(frob: a)", "dependence type")
	mustFail(t, "task depend(in:)", "expected variable name")
	mustFail(t, "task depend(in a)", "':'")
	mustFail(t, "parallel depend(in: a)", "not valid on directive")
}

func TestParseTaskloop(t *testing.T) {
	d := mustParse(t, "taskloop grainsize(64) private(x)")
	if d.Name != NameTaskloop {
		t.Fatalf("name = %q", d.Name)
	}
	if c := d.Find(ClauseGrainsize); c == nil || c.Expr != "64" {
		t.Fatalf("grainsize = %+v", c)
	}
	d = mustParse(t, "taskloop num_tasks(n * 2) nogroup")
	if c := d.Find(ClauseNumTasks); c == nil || c.Expr != "n * 2" {
		t.Fatalf("num_tasks = %+v", c)
	}
	if !d.Has(ClauseNogroup) {
		t.Fatal("nogroup missing")
	}
}

func TestParseTaskgroup(t *testing.T) {
	d := mustParse(t, "taskgroup")
	if d.Name != NameTaskgroup {
		t.Fatalf("name = %q", d.Name)
	}
	mustFail(t, "taskgroup if(x)", "not valid on directive")
}

func TestValidateTaskloopClauseExclusion(t *testing.T) {
	mustFail(t, "taskloop grainsize(2) num_tasks(3)", "mutually exclusive")
	mustFail(t, "taskloop grainsize(2) grainsize(3)", "at most once")
	mustFail(t, "for depend(in: a)", "not valid on directive")
}

func TestFormatDependRoundTrip(t *testing.T) {
	for _, src := range []string{
		"task depend(in:a,b) depend(out:c)",
		"taskloop grainsize(8)",
		"taskloop num_tasks(4) nogroup",
		"taskgroup",
	} {
		d := mustParse(t, src)
		if _, err := Parse(d.String()); err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", d.String(), src, err)
		}
	}
}
