package directive

import (
	"strconv"
	"strings"
)

// Parse parses and validates one OpenMP directive string, e.g.
//
//	parallel for reduction(+:pi_value) schedule(dynamic, 300)
//
// Combined directive names may be written with spaces or underscores
// ("parallel for" and "parallel_for" are equivalent), and clauses may
// be separated by whitespace, commas, or semicolons (OpenMP 6.0
// lexical conventions).
func Parse(src string) (*Directive, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{raw: src, toks: toks}
	d, err := p.parseDirective()
	if err != nil {
		return nil, err
	}
	if err := validate(d, src); err != nil {
		return nil, err
	}
	return d, nil
}

type parser struct {
	raw  string
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return errf(p.raw, p.cur().pos, format, args...)
}

// directiveWords maps the canonical name to its word sequence.
// Multi-word names are matched greedily, longest first.
var directiveNames = []Name{
	NameDeclareReduction,
	NameParallelSections,
	NameParallelFor,
	NameThreadprivate,
	NameParallel,
	NameSections,
	NameSection,
	NameTaskgroup,
	NameTaskloop,
	NameTaskwait,
	NameCritical,
	NameBarrier,
	NameOrdered,
	NameAtomic,
	NameSingle,
	NameMaster,
	NameFlush,
	NameTask,
	NameFor,
}

// splitWords expands an identifier that may contain underscores into
// its component words ("parallel_for" -> ["parallel","for"]). Plain
// identifiers yield themselves.
func splitWords(ident string) []string {
	if !strings.Contains(ident, "_") {
		return []string{ident}
	}
	parts := strings.Split(ident, "_")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return []string{ident}
	}
	return out
}

// matchName consumes the directive name from the token stream.
func (p *parser) matchName() (Name, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected directive name, found %s", p.cur())
	}
	// Gather up to three leading identifier words (splitting
	// underscores) so combined names match regardless of spelling.
	var words []string
	var consumed []int // token count consumed per flattened word group
	for j := p.i; j < len(p.toks) && len(words) < 3; j++ {
		if p.toks[j].kind != tokIdent {
			break
		}
		ws := splitWords(strings.ToLower(p.toks[j].text))
		words = append(words, ws...)
		for range ws {
			consumed = append(consumed, j-p.i+1)
		}
	}
	for _, name := range directiveNames {
		nw := strings.Fields(string(name))
		if len(nw) > len(words) {
			continue
		}
		ok := true
		for k, w := range nw {
			if words[k] != w {
				ok = false
				break
			}
		}
		if ok {
			p.i += consumed[len(nw)-1]
			return name, nil
		}
	}
	return "", p.errf("unknown directive %q", p.cur().text)
}

func (p *parser) parseDirective() (*Directive, error) {
	name, err := p.matchName()
	if err != nil {
		return nil, err
	}
	d := &Directive{Name: name, Raw: p.raw}

	// Directive-specific leading arguments.
	switch name {
	case NameCritical:
		if p.cur().kind == tokLParen {
			expr, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
			if err != nil {
				return nil, err
			}
			p.i = ni
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseCriticalName, Expr: expr})
		}
	case NameFlush:
		if p.cur().kind == tokLParen {
			vars, err := p.parseParenVarList()
			if err != nil {
				return nil, err
			}
			d.Clauses = append(d.Clauses, Clause{Kind: ClauseFlushList, Vars: vars})
		}
	case NameThreadprivate:
		vars, err := p.parseParenVarList()
		if err != nil {
			return nil, err
		}
		d.Clauses = append(d.Clauses, Clause{Kind: ClauseFlushList, Vars: vars})
	case NameAtomic:
		if p.cur().kind == tokIdent {
			switch op := strings.ToLower(p.cur().text); op {
			case "read", "write", "update", "capture":
				p.next()
				d.Clauses = append(d.Clauses, Clause{Kind: ClauseAtomicOp, Expr: op})
			}
		}
	case NameDeclareReduction:
		dr, err := p.parseDeclareReduction()
		if err != nil {
			return nil, err
		}
		d.DeclaredReduction = dr
		if p.cur().kind != tokEOF {
			return nil, p.errf("unexpected %s after declare reduction", p.cur())
		}
		return d, nil
	}

	// Clause list.
	for {
		switch p.cur().kind {
		case tokEOF:
			return d, nil
		case tokComma, tokSemi:
			p.next() // OpenMP 6.0: commas/semicolons may separate clauses
			continue
		case tokIdent:
			c, err := p.parseClause()
			if err != nil {
				return nil, err
			}
			d.Clauses = append(d.Clauses, *c)
		default:
			return nil, p.errf("unexpected %s in directive", p.cur())
		}
	}
}

// parseParenVarList parses "(a, b, c)" into identifiers.
func (p *parser) parseParenVarList() ([]string, error) {
	if p.cur().kind != tokLParen {
		return nil, p.errf("expected '(' to open variable list, found %s", p.cur())
	}
	p.next()
	var vars []string
	for {
		switch p.cur().kind {
		case tokIdent:
			vars = append(vars, p.next().text)
			switch p.cur().kind {
			case tokComma:
				p.next()
			case tokRParen:
				p.next()
				return vars, nil
			default:
				return nil, p.errf("expected ',' or ')' in variable list, found %s", p.cur())
			}
		case tokRParen:
			if len(vars) > 0 {
				return nil, p.errf("trailing ',' in variable list")
			}
			p.next()
			return vars, nil
		default:
			return nil, p.errf("expected variable name, found %s", p.cur())
		}
	}
}

var clauseKeywords = map[string]ClauseKind{
	"if":           ClauseIf,
	"num_threads":  ClauseNumThreads,
	"default":      ClauseDefault,
	"private":      ClausePrivate,
	"firstprivate": ClauseFirstprivate,
	"lastprivate":  ClauseLastprivate,
	"shared":       ClauseShared,
	"copyin":       ClauseCopyin,
	"copyprivate":  ClauseCopyprivate,
	"reduction":    ClauseReduction,
	"schedule":     ClauseSchedule,
	"collapse":     ClauseCollapse,
	"ordered":      ClauseOrdered,
	"nowait":       ClauseNowait,
	"untied":       ClauseUntied,
	"final":        ClauseFinal,
	"mergeable":    ClauseMergeable,
	"depend":       ClauseDepend,
	"grainsize":    ClauseGrainsize,
	"num_tasks":    ClauseNumTasks,
	"nogroup":      ClauseNogroup,
}

func (p *parser) parseClause() (*Clause, error) {
	kw := strings.ToLower(p.cur().text)
	kind, ok := clauseKeywords[kw]
	if !ok {
		return nil, p.errf("unknown clause %q", p.cur().text)
	}
	p.next()
	c := &Clause{Kind: kind}
	switch kind {
	case ClauseIf, ClauseNumThreads, ClauseFinal:
		expr, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
		if err != nil {
			return nil, err
		}
		p.i = ni
		// OpenMP 6.0 allows a directive-name modifier: if(task: expr).
		if idx := strings.Index(expr, ":"); kind == ClauseIf && idx > 0 {
			head := strings.TrimSpace(expr[:idx])
			if isDirectiveModifier(head) {
				expr = strings.TrimSpace(expr[idx+1:])
			}
		}
		if expr == "" {
			return nil, p.errf("%s clause requires an expression", kind)
		}
		c.Expr = expr
	case ClauseDefault:
		arg, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
		if err != nil {
			return nil, err
		}
		p.i = ni
		switch strings.ToLower(arg) {
		case "shared":
			c.Default = DefaultShared
		case "none":
			c.Default = DefaultNone
		case "private":
			c.Default = DefaultPrivate
		case "firstprivate":
			c.Default = DefaultFirstprivate
		default:
			return nil, p.errf("invalid default(%s); want shared, none, private or firstprivate", arg)
		}
	case ClausePrivate, ClauseFirstprivate, ClauseLastprivate, ClauseShared,
		ClauseCopyin, ClauseCopyprivate:
		vars, err := p.parseParenVarList()
		if err != nil {
			return nil, err
		}
		if len(vars) == 0 {
			return nil, p.errf("%s clause requires at least one variable", kind)
		}
		c.Vars = vars
	case ClauseReduction:
		if err := p.parseReductionArgs(c); err != nil {
			return nil, err
		}
	case ClauseDepend:
		if err := p.parseDependArgs(c); err != nil {
			return nil, err
		}
	case ClauseGrainsize, ClauseNumTasks:
		expr, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
		if err != nil {
			return nil, err
		}
		p.i = ni
		if strings.TrimSpace(expr) == "" {
			return nil, p.errf("%s clause requires an expression", kind)
		}
		c.Expr = strings.TrimSpace(expr)
	case ClauseSchedule:
		if err := p.parseScheduleArgs(c); err != nil {
			return nil, err
		}
	case ClauseCollapse:
		expr, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
		if err != nil {
			return nil, err
		}
		p.i = ni
		n, err := strconv.Atoi(strings.TrimSpace(expr))
		if err != nil || n < 1 {
			return nil, p.errf("collapse requires a positive integer constant, got %q", expr)
		}
		c.Expr = strconv.Itoa(n)
	case ClauseOrdered, ClauseUntied, ClauseMergeable, ClauseNogroup:
		// no arguments
	case ClauseNowait:
		// OMP4Py supports the optional argument from newer standards.
		if p.cur().kind == tokLParen {
			expr, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
			if err != nil {
				return nil, err
			}
			p.i = ni
			c.Expr = expr
		}
	}
	return c, nil
}

func isDirectiveModifier(s string) bool {
	switch strings.ToLower(s) {
	case "parallel", "for", "task", "sections", "single", "target", "taskloop", "simd", "cancel":
		return true
	}
	return false
}

func (p *parser) parseReductionArgs(c *Clause) error {
	if p.cur().kind != tokLParen {
		return p.errf("expected '(' after reduction, found %s", p.cur())
	}
	p.next()
	// Operator: built-in token(s) or identifier for declared reductions.
	var op string
	switch p.cur().kind {
	case tokOp:
		op = p.next().text
	case tokIdent:
		switch t := strings.ToLower(p.cur().text); t {
		case "min", "max":
			op = t
			p.next()
		default:
			op = p.next().text // user-declared reduction identifier
		}
	default:
		return p.errf("expected reduction operator, found %s", p.cur())
	}
	if p.cur().kind != tokColon {
		return p.errf("expected ':' after reduction operator, found %s", p.cur())
	}
	p.next()
	var vars []string
	for {
		if p.cur().kind != tokIdent {
			return p.errf("expected variable name in reduction list, found %s", p.cur())
		}
		vars = append(vars, p.next().text)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind != tokRParen {
		return p.errf("expected ')' closing reduction clause, found %s", p.cur())
	}
	p.next()
	c.Op = op
	c.Vars = vars
	return nil
}

// parseDependArgs parses depend(in: a, b) — dependence type, colon,
// variable list. The type lands in c.Op, the list in c.Vars.
func (p *parser) parseDependArgs(c *Clause) error {
	if p.cur().kind != tokLParen {
		return p.errf("expected '(' after depend, found %s", p.cur())
	}
	p.next()
	if p.cur().kind != tokIdent {
		return p.errf("expected dependence type (in, out, inout), found %s", p.cur())
	}
	typ := strings.ToLower(p.next().text)
	switch typ {
	case "in", "out", "inout":
	default:
		return p.errf("invalid dependence type %q; want in, out or inout", typ)
	}
	if p.cur().kind != tokColon {
		return p.errf("expected ':' after dependence type, found %s", p.cur())
	}
	p.next()
	// Operands are names with optional subscripts: a, b[i], c[i][j].
	// Subscript text is kept raw; the transformer parses it as a
	// MiniPy expression evaluated at task-submission time.
	var vars []string
	for {
		if p.cur().kind != tokIdent {
			return p.errf("expected variable name in depend list, found %s", p.cur())
		}
		startTok := p.cur()
		end := startTok.pos + len(startTok.text)
		p.next()
		for p.cur().kind == tokOther && p.cur().text == "[" {
			depth := 0
			for {
				t := p.cur()
				if t.kind == tokEOF {
					return p.errf("unbalanced '[' in depend clause")
				}
				if t.kind == tokOther && t.text == "[" {
					depth++
				}
				if t.kind == tokOther && t.text == "]" {
					depth--
					if depth == 0 {
						end = t.pos + 1
						p.next()
						break
					}
				}
				p.next()
			}
		}
		vars = append(vars, strings.TrimSpace(p.raw[startTok.pos:end]))
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind != tokRParen {
		return p.errf("expected ')' closing depend clause, found %s", p.cur())
	}
	p.next()
	c.Op = typ
	c.Vars = vars
	return nil
}

func (p *parser) parseScheduleArgs(c *Clause) error {
	if p.cur().kind != tokLParen {
		return p.errf("expected '(' after schedule, found %s", p.cur())
	}
	p.next()
	if p.cur().kind != tokIdent {
		return p.errf("expected schedule kind, found %s", p.cur())
	}
	kind, err := ParseScheduleKind(p.cur().text)
	if err != nil {
		return p.errf("%v", err)
	}
	p.next()
	c.Sched = kind
	if p.cur().kind == tokComma {
		p.next()
		// Chunk size: scan until the closing paren, allowing
		// arbitrary expressions.
		start := p.cur().pos
		depth := 1
		for {
			switch p.cur().kind {
			case tokLParen:
				depth++
				p.next()
			case tokRParen:
				depth--
				if depth == 0 {
					c.Expr = strings.TrimSpace(p.raw[start:p.cur().pos])
					if c.Expr == "" {
						return p.errf("empty chunk size in schedule clause")
					}
					if kind == ScheduleRuntime || kind == ScheduleAuto {
						return p.errf("schedule(%s) does not accept a chunk size", kind)
					}
					p.next()
					return nil
				}
				p.next()
			case tokEOF:
				return p.errf("unbalanced parentheses in schedule clause")
			default:
				p.next()
			}
		}
	}
	if p.cur().kind != tokRParen {
		return p.errf("expected ')' closing schedule clause, found %s", p.cur())
	}
	p.next()
	if kind == ScheduleRuntime && c.Expr != "" {
		return p.errf("schedule(runtime) does not accept a chunk size")
	}
	return nil
}

// parseDeclareReduction parses
//
//	declare reduction(ident : combiner) [initializer(expr)]
func (p *parser) parseDeclareReduction() (*DeclaredReduction, error) {
	if p.cur().kind != tokLParen {
		return nil, p.errf("expected '(' after declare reduction, found %s", p.cur())
	}
	body, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
	if err != nil {
		return nil, err
	}
	p.i = ni
	idx := strings.Index(body, ":")
	if idx <= 0 {
		return nil, p.errf("declare reduction requires 'identifier : combiner'")
	}
	dr := &DeclaredReduction{
		Ident:    strings.TrimSpace(body[:idx]),
		Combiner: strings.TrimSpace(body[idx+1:]),
	}
	if dr.Ident == "" || dr.Combiner == "" {
		return nil, p.errf("declare reduction requires 'identifier : combiner'")
	}
	if !isIdent(dr.Ident) {
		return nil, p.errf("declare reduction identifier %q is not a valid name", dr.Ident)
	}
	if p.cur().kind == tokIdent && strings.ToLower(p.cur().text) == "initializer" {
		p.next()
		init, ni, err := scanBalancedExpr(p.raw, p.toks, p.i)
		if err != nil {
			return nil, err
		}
		p.i = ni
		if strings.HasPrefix(init, "omp_priv") {
			if eq := strings.Index(init, "="); eq >= 0 {
				init = strings.TrimSpace(init[eq+1:])
			}
		}
		if init == "" {
			return nil, p.errf("initializer clause requires an expression")
		}
		dr.Initializer = init
	}
	return dr, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return false
		}
		if i > 0 && !isIdentCont(r) {
			return false
		}
	}
	return !strings.Contains(s, ".")
}

func fmtList(kinds []ClauseKind) string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return strings.Join(names, ", ")
}
