// Package directive implements the lexer, parser, and validator for
// OpenMP directive strings as they appear inside omp("...") blocks.
//
// The grammar covers the full OpenMP 3.0 directive set together with
// the extensions OMP4Py adopts from later standards: declare reduction
// (4.0), the private/firstprivate variants of the default clause, the
// optional argument of nowait, and the OpenMP 6.0 lexical conventions
// (underscores interchangeable with spaces in combined directive
// names, and semicolons usable as clause separators).
package directive

import (
	"fmt"
	"strings"
)

// Name identifies a canonical directive name. Combined constructs such
// as "parallel for" are canonicalized to the space-separated form.
type Name string

// Canonical directive names.
const (
	NameParallel         Name = "parallel"
	NameFor              Name = "for"
	NameParallelFor      Name = "parallel for"
	NameSections         Name = "sections"
	NameParallelSections Name = "parallel sections"
	NameSection          Name = "section"
	NameSingle           Name = "single"
	NameMaster           Name = "master"
	NameCritical         Name = "critical"
	NameBarrier          Name = "barrier"
	NameAtomic           Name = "atomic"
	NameFlush            Name = "flush"
	NameOrdered          Name = "ordered"
	NameThreadprivate    Name = "threadprivate"
	NameTask             Name = "task"
	NameTaskwait         Name = "taskwait"
	NameTaskloop         Name = "taskloop"
	NameTaskgroup        Name = "taskgroup"
	NameDeclareReduction Name = "declare reduction"
)

// ClauseKind identifies the kind of a parsed clause.
type ClauseKind int

// Clause kinds.
const (
	ClauseIf ClauseKind = iota
	ClauseNumThreads
	ClauseDefault
	ClausePrivate
	ClauseFirstprivate
	ClauseLastprivate
	ClauseShared
	ClauseCopyin
	ClauseCopyprivate
	ClauseReduction
	ClauseSchedule
	ClauseCollapse
	ClauseOrdered
	ClauseNowait
	ClauseUntied
	ClauseFinal
	ClauseMergeable
	ClauseDepend       // depend(in|out|inout: list) — task dataflow (4.0)
	ClauseGrainsize    // grainsize(expr) — taskloop chunk lower bound
	ClauseNumTasks     // num_tasks(expr) — taskloop chunk count
	ClauseNogroup      // nogroup — taskloop without its implicit taskgroup
	ClauseCriticalName // synthetic: the (name) argument of critical
	ClauseFlushList    // synthetic: the (list) argument of flush
	ClauseAtomicOp     // read | write | update | capture
)

var clauseKindNames = map[ClauseKind]string{
	ClauseIf:           "if",
	ClauseNumThreads:   "num_threads",
	ClauseDefault:      "default",
	ClausePrivate:      "private",
	ClauseFirstprivate: "firstprivate",
	ClauseLastprivate:  "lastprivate",
	ClauseShared:       "shared",
	ClauseCopyin:       "copyin",
	ClauseCopyprivate:  "copyprivate",
	ClauseReduction:    "reduction",
	ClauseSchedule:     "schedule",
	ClauseCollapse:     "collapse",
	ClauseOrdered:      "ordered",
	ClauseNowait:       "nowait",
	ClauseUntied:       "untied",
	ClauseFinal:        "final",
	ClauseMergeable:    "mergeable",
	ClauseDepend:       "depend",
	ClauseGrainsize:    "grainsize",
	ClauseNumTasks:     "num_tasks",
	ClauseNogroup:      "nogroup",
	ClauseCriticalName: "critical-name",
	ClauseFlushList:    "flush-list",
	ClauseAtomicOp:     "atomic-op",
}

// String returns the clause keyword as it appears in source.
func (k ClauseKind) String() string {
	if s, ok := clauseKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ClauseKind(%d)", int(k))
}

// DefaultKind enumerates the argument of the default clause. OpenMP
// 3.0 allows shared and none; OMP4Py also accepts the private and
// firstprivate variants from later standards.
type DefaultKind int

// Default clause arguments.
const (
	DefaultShared DefaultKind = iota
	DefaultNone
	DefaultPrivate
	DefaultFirstprivate
)

// String returns the source spelling of the default kind.
func (d DefaultKind) String() string {
	switch d {
	case DefaultShared:
		return "shared"
	case DefaultNone:
		return "none"
	case DefaultPrivate:
		return "private"
	case DefaultFirstprivate:
		return "firstprivate"
	}
	return fmt.Sprintf("DefaultKind(%d)", int(d))
}

// ScheduleKind enumerates loop scheduling policies.
type ScheduleKind int

// Scheduling policies.
const (
	ScheduleStatic ScheduleKind = iota
	ScheduleDynamic
	ScheduleGuided
	ScheduleAuto
	ScheduleRuntime
)

// String returns the source spelling of the schedule kind.
func (s ScheduleKind) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	case ScheduleAuto:
		return "auto"
	case ScheduleRuntime:
		return "runtime"
	}
	return fmt.Sprintf("ScheduleKind(%d)", int(s))
}

// ParseScheduleKind converts a source spelling into a ScheduleKind.
func ParseScheduleKind(s string) (ScheduleKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "static":
		return ScheduleStatic, nil
	case "dynamic":
		return ScheduleDynamic, nil
	case "guided":
		return ScheduleGuided, nil
	case "auto":
		return ScheduleAuto, nil
	case "runtime":
		return ScheduleRuntime, nil
	}
	return ScheduleStatic, fmt.Errorf("unknown schedule kind %q", s)
}

// Clause is one parsed clause of a directive.
type Clause struct {
	Kind ClauseKind
	// Vars holds the variable list for data-sharing clauses
	// (private, shared, reduction, copyin, flush, threadprivate...).
	Vars []string
	// Expr holds the raw expression text for if, num_threads, final,
	// collapse, nowait(n) and the chunk argument of schedule.
	Expr string
	// Op holds the reduction operator (+, *, -, &, |, ^, &&, ||, min,
	// max, or a user identifier registered via declare reduction).
	Op string
	// Default is set for the default clause.
	Default DefaultKind
	// Sched is set for the schedule clause.
	Sched ScheduleKind
}

// Directive is a fully parsed and validated OpenMP directive.
type Directive struct {
	Name    Name
	Clauses []Clause
	// Raw is the original directive text as written by the user.
	Raw string
	// DeclaredReduction carries the payload of declare reduction:
	// identifier, combiner expression and optional initializer.
	DeclaredReduction *DeclaredReduction
}

// DeclaredReduction is the payload of a declare reduction directive:
//
//	declare reduction(ident : combiner) [initializer(expr)]
//
// The combiner references omp_in and omp_out; the initializer
// references omp_priv.
type DeclaredReduction struct {
	Ident       string
	Combiner    string
	Initializer string
}

// Find returns the first clause of the given kind, or nil.
func (d *Directive) Find(kind ClauseKind) *Clause {
	for i := range d.Clauses {
		if d.Clauses[i].Kind == kind {
			return &d.Clauses[i]
		}
	}
	return nil
}

// FindAll returns every clause of the given kind in source order.
func (d *Directive) FindAll(kind ClauseKind) []*Clause {
	var out []*Clause
	for i := range d.Clauses {
		if d.Clauses[i].Kind == kind {
			out = append(out, &d.Clauses[i])
		}
	}
	return out
}

// Has reports whether a clause of the given kind is present.
func (d *Directive) Has(kind ClauseKind) bool { return d.Find(kind) != nil }

// IsStandalone reports whether the directive is a standalone construct
// that takes no structured block (barrier, taskwait, flush,
// threadprivate, declare reduction).
func (d *Directive) IsStandalone() bool {
	switch d.Name {
	case NameBarrier, NameTaskwait, NameFlush, NameThreadprivate, NameDeclareReduction:
		return true
	}
	return false
}

// String reconstructs a canonical source form of the directive.
func (d *Directive) String() string {
	var b strings.Builder
	b.WriteString(string(d.Name))
	for _, c := range d.Clauses {
		b.WriteByte(' ')
		b.WriteString(formatClause(c))
	}
	return b.String()
}

func formatClause(c Clause) string {
	switch c.Kind {
	case ClauseIf, ClauseNumThreads, ClauseFinal, ClauseCollapse:
		return fmt.Sprintf("%s(%s)", c.Kind, c.Expr)
	case ClauseDefault:
		return fmt.Sprintf("default(%s)", c.Default)
	case ClausePrivate, ClauseFirstprivate, ClauseLastprivate, ClauseShared,
		ClauseCopyin, ClauseCopyprivate:
		return fmt.Sprintf("%s(%s)", c.Kind, strings.Join(c.Vars, ","))
	case ClauseReduction:
		return fmt.Sprintf("reduction(%s:%s)", c.Op, strings.Join(c.Vars, ","))
	case ClauseSchedule:
		if c.Expr != "" {
			return fmt.Sprintf("schedule(%s,%s)", c.Sched, c.Expr)
		}
		return fmt.Sprintf("schedule(%s)", c.Sched)
	case ClauseOrdered, ClauseUntied, ClauseMergeable, ClauseNogroup:
		return c.Kind.String()
	case ClauseDepend:
		return fmt.Sprintf("depend(%s:%s)", c.Op, strings.Join(c.Vars, ","))
	case ClauseGrainsize, ClauseNumTasks:
		return fmt.Sprintf("%s(%s)", c.Kind, c.Expr)
	case ClauseNowait:
		if c.Expr != "" {
			return fmt.Sprintf("nowait(%s)", c.Expr)
		}
		return "nowait"
	case ClauseCriticalName:
		return fmt.Sprintf("(%s)", c.Expr)
	case ClauseFlushList:
		return fmt.Sprintf("(%s)", strings.Join(c.Vars, ","))
	case ClauseAtomicOp:
		return c.Expr
	}
	return c.Kind.String()
}

// ReductionOps lists the built-in reduction operators with their
// identity values (as MiniPy expressions).
var ReductionOps = map[string]string{
	"+":   "0",
	"*":   "1",
	"-":   "0",
	"&":   "-1",
	"|":   "0",
	"^":   "0",
	"&&":  "True",
	"||":  "False",
	"min": "None",
	"max": "None",
}

// IsBuiltinReductionOp reports whether op is a built-in reduction
// operator (as opposed to a user-declared reduction identifier).
func IsBuiltinReductionOp(op string) bool {
	_, ok := ReductionOps[op]
	return ok
}
