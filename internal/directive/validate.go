package directive

import "strings"

// allowedClauses lists, per directive, which clause kinds conform to
// the OpenMP 3.0 specification (with the OMP4Py extensions noted in
// directive.go).
var allowedClauses = map[Name][]ClauseKind{
	NameParallel: {ClauseIf, ClauseNumThreads, ClauseDefault, ClausePrivate,
		ClauseFirstprivate, ClauseShared, ClauseCopyin, ClauseReduction},
	NameFor: {ClausePrivate, ClauseFirstprivate, ClauseLastprivate,
		ClauseReduction, ClauseSchedule, ClauseCollapse, ClauseOrdered, ClauseNowait},
	NameParallelFor: {ClauseIf, ClauseNumThreads, ClauseDefault, ClausePrivate,
		ClauseFirstprivate, ClauseLastprivate, ClauseShared, ClauseCopyin,
		ClauseReduction, ClauseSchedule, ClauseCollapse, ClauseOrdered},
	NameSections: {ClausePrivate, ClauseFirstprivate, ClauseLastprivate,
		ClauseReduction, ClauseNowait},
	NameParallelSections: {ClauseIf, ClauseNumThreads, ClauseDefault,
		ClausePrivate, ClauseFirstprivate, ClauseLastprivate, ClauseShared,
		ClauseCopyin, ClauseReduction},
	NameSection:       {},
	NameSingle:        {ClausePrivate, ClauseFirstprivate, ClauseCopyprivate, ClauseNowait},
	NameMaster:        {},
	NameCritical:      {ClauseCriticalName},
	NameBarrier:       {},
	NameAtomic:        {ClauseAtomicOp},
	NameFlush:         {ClauseFlushList},
	NameOrdered:       {},
	NameThreadprivate: {ClauseFlushList},
	NameTask: {ClauseIf, ClauseFinal, ClauseUntied, ClauseDefault,
		ClauseMergeable, ClausePrivate, ClauseFirstprivate, ClauseShared,
		ClauseDepend},
	NameTaskwait: {},
	NameTaskloop: {ClauseIf, ClauseFinal, ClauseUntied, ClauseDefault,
		ClauseMergeable, ClausePrivate, ClauseFirstprivate, ClauseShared,
		ClauseGrainsize, ClauseNumTasks, ClauseNogroup},
	NameTaskgroup:        {},
	NameDeclareReduction: {},
}

// uniqueClauses may appear at most once per directive.
var uniqueClauses = map[ClauseKind]bool{
	ClauseIf:         true,
	ClauseNumThreads: true,
	ClauseDefault:    true,
	ClauseSchedule:   true,
	ClauseCollapse:   true,
	ClauseNowait:     true,
	ClauseOrdered:    true,
	ClauseFinal:      true,
	ClauseUntied:     true,
	ClauseMergeable:  true,
	ClauseGrainsize:  true,
	ClauseNumTasks:   true,
	ClauseNogroup:    true,
}

// dataSharingClauses place a variable into a sharing class; a variable
// may appear in at most one of them (firstprivate+lastprivate being
// the one conforming combination on worksharing constructs).
var dataSharingClauses = map[ClauseKind]bool{
	ClausePrivate:      true,
	ClauseFirstprivate: true,
	ClauseLastprivate:  true,
	ClauseShared:       true,
	ClauseReduction:    true,
}

func validate(d *Directive, raw string) error {
	allowed, ok := allowedClauses[d.Name]
	if !ok {
		return errf(raw, 0, "unknown directive %q", d.Name)
	}
	allowedSet := make(map[ClauseKind]bool, len(allowed))
	for _, k := range allowed {
		allowedSet[k] = true
	}
	seen := make(map[ClauseKind]int)
	sharing := make(map[string]ClauseKind)
	for _, c := range d.Clauses {
		if !allowedSet[c.Kind] {
			return errf(raw, 0, "clause %s is not valid on directive %q (valid: %s)",
				c.Kind, d.Name, fmtList(allowed))
		}
		seen[c.Kind]++
		if uniqueClauses[c.Kind] && seen[c.Kind] > 1 {
			return errf(raw, 0, "clause %s may appear at most once on %q", c.Kind, d.Name)
		}
		if dataSharingClauses[c.Kind] {
			for _, v := range c.Vars {
				if prev, dup := sharing[v]; dup {
					if okPair(prev, c.Kind) {
						continue
					}
					return errf(raw, 0,
						"variable %q appears in both %s and %s clauses", v, prev, c.Kind)
				}
				sharing[v] = c.Kind
			}
		}
		if c.Kind == ClauseReduction && !IsBuiltinReductionOp(c.Op) && !isIdent(c.Op) {
			return errf(raw, 0, "invalid reduction operator %q", c.Op)
		}
	}
	// Cross-clause rules.
	if d.Name == NameTaskloop && d.Has(ClauseGrainsize) && d.Has(ClauseNumTasks) {
		return errf(raw, 0, "grainsize and num_tasks are mutually exclusive on taskloop")
	}
	if d.Name == NameFor || d.Name == NameParallelFor {
		if cl := d.Find(ClauseCollapse); cl != nil {
			if ord := d.Find(ClauseOrdered); ord != nil {
				return errf(raw, 0, "ordered is not permitted together with collapse")
			}
		}
	}
	if cl := d.Find(ClauseCriticalName); cl != nil && cl.Expr != "" {
		if !isIdent(strings.TrimSpace(cl.Expr)) {
			return errf(raw, 0, "critical section name %q is not a valid identifier", cl.Expr)
		}
	}
	return nil
}

// okPair reports whether two data-sharing attributes may legally apply
// to the same variable on one construct.
func okPair(a, b ClauseKind) bool {
	return (a == ClauseFirstprivate && b == ClauseLastprivate) ||
		(a == ClauseLastprivate && b == ClauseFirstprivate)
}
