package directive

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies directive-string tokens.
type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokSemi
	tokOp  // an operator usable as reduction op: + * - & | ^ && ||
	tokEOF // end of input
	tokOther
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of directive"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError reports a malformed directive. It mirrors the
// SyntaxError OMP4Py raises at decoration time.
type SyntaxError struct {
	Directive string // the raw directive text
	Pos       int    // byte offset of the offending token
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("omp syntax error: %s in directive %q at offset %d", e.Msg, e.Directive, e.Pos)
}

func errf(raw string, pos int, format string, args ...any) error {
	return &SyntaxError{Directive: raw, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes a directive string. Directive strings are short; the
// lexer keeps the whole token slice in memory.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '&' || c == '|':
			if i+1 < n && src[i+1] == c {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '+' || c == '*' || c == '-' || c == '^':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentCont(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' ||
				src[j] == 'E' || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		default:
			// Other characters (e.g. operators inside if() expressions)
			// are tolerated as opaque single-char tokens; balanced-paren
			// expression scanning handles them.
			toks = append(toks, token{tokOther, string(c), i})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// scanBalancedExpr returns the raw source between the '(' that toks[i]
// must point at and its matching ')'. It is used for clause arguments
// that carry arbitrary expressions (if, num_threads, final, chunk
// sizes). The returned index points at the token after the ')'.
func scanBalancedExpr(raw string, toks []token, i int) (string, int, error) {
	if toks[i].kind != tokLParen {
		return "", i, errf(raw, toks[i].pos, "expected '(' after clause keyword, found %s", toks[i])
	}
	depth := 0
	start := toks[i].pos + 1
	for j := i; ; j++ {
		switch toks[j].kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
			if depth == 0 {
				return strings.TrimSpace(raw[start:toks[j].pos]), j + 1, nil
			}
		case tokEOF:
			return "", j, errf(raw, toks[j].pos, "unbalanced parentheses in clause argument")
		}
	}
}
