package transform

import (
	"strconv"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/minipy"
)

// construct dispatches a block directive.
func (tr *transformer) construct(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	switch dir.Name {
	case directive.NameParallel, directive.NameParallelFor, directive.NameParallelSections:
		return tr.parallel(ctx, dir, w)
	case directive.NameFor:
		return tr.forConstruct(ctx, dir, w.Body, w.NodePos())
	case directive.NameSections:
		return tr.sections(ctx, dir, w.Body, w.NodePos())
	case directive.NameSingle:
		return tr.single(ctx, dir, w)
	case directive.NameMaster:
		return tr.master(ctx, w)
	case directive.NameCritical:
		return tr.critical(ctx, dir, w)
	case directive.NameAtomic:
		return tr.atomic(ctx, dir, w)
	case directive.NameOrdered:
		return tr.ordered(ctx, w)
	case directive.NameTask:
		return tr.task(ctx, dir, w)
	case directive.NameTaskloop:
		return tr.taskloop(ctx, dir, w)
	case directive.NameTaskgroup:
		return tr.taskgroup(ctx, w)
	case directive.NameSection:
		return nil, errAt(w.NodePos(), "section directive is only valid inside a sections construct")
	}
	return nil, errAt(w.NodePos(), "unsupported directive %q", dir.Name)
}

// dataPlan is the uniform machinery behind the data-sharing clauses:
// renamed privates, capture statements, per-thread initializers, and
// mutex-guarded reduction merges (the code shape of Fig. 2).
type dataPlan struct {
	renames   map[string]string
	preOuter  []minipy.Stmt  // before the construct (capture points)
	preInner  []minipy.Stmt  // per thread, before the body
	postInner []minipy.Stmt  // per thread, after the body (merges)
	lastPriv  [][2]string    // (shared, private) pairs for lastprivate
	params    []minipy.Param // firstprivate captures for function-based constructs
	vars      map[string]bool
}

// buildDataPlan processes private/firstprivate/lastprivate/reduction/
// copyin clauses. body is the (already transformed) construct body;
// renames are applied to it here.
//
// asFunction selects the capture mechanism for firstprivate: function
// constructs (parallel, task) bind the value as a default parameter
// of the generated inner function, so each task/region captures at
// packaging time; inline constructs (for, sections, single) read the
// shared variable at construct entry. outside is the enclosing scope
// with the construct excluded (used by default(...) handling); nil
// falls back to the full function scope.
func (tr *transformer) buildDataPlan(ctx *fnCtx, dir *directive.Directive,
	body []minipy.Stmt, pos minipy.Position, asFunction bool,
	outside *minipy.ScopeInfo) (*dataPlan, error) {

	plan := &dataPlan{renames: make(map[string]string), vars: make(map[string]bool)}
	if outside == nil {
		outside = ctx.scope
	}
	capture := func(priv, shared string) {
		if asFunction {
			plan.params = append(plan.params, minipy.Param{Name: priv, Default: nameRef(shared)})
			return
		}
		cap := tr.fresh("cap_" + shared)
		plan.preOuter = append(plan.preOuter, assignStmt(cap, nameRef(shared)))
		plan.preInner = append(plan.preInner, assignStmt(priv, nameRef(cap)))
	}

	addRename := func(v string) string {
		if nn, ok := plan.renames[v]; ok {
			return nn
		}
		nn := tr.fresh(v)
		plan.renames[v] = nn
		plan.vars[v] = true
		return nn
	}

	// Threadprivate variables behave as private in every region of
	// this function (copyin turns them into firstprivate).
	copyin := map[string]bool{}
	if cl := dir.Find(directive.ClauseCopyin); cl != nil {
		for _, v := range cl.Vars {
			copyin[v] = true
		}
	}
	for v := range ctx.threadprivate {
		nn := addRename(v)
		if copyin[v] {
			capture(nn, v)
		} else {
			plan.preInner = append(plan.preInner, assignStmt(nn, noneLit()))
		}
	}

	for _, cl := range dir.FindAll(directive.ClausePrivate) {
		for _, v := range cl.Vars {
			nn := addRename(v)
			// OpenMP private copies start uninitialized; None is the
			// closest Python rendering.
			plan.preInner = append(plan.preInner, assignStmt(nn, noneLit()))
		}
	}
	for _, cl := range dir.FindAll(directive.ClauseFirstprivate) {
		for _, v := range cl.Vars {
			nn := addRename(v)
			capture(nn, v)
		}
	}
	for _, cl := range dir.FindAll(directive.ClauseLastprivate) {
		for _, v := range cl.Vars {
			nn := addRename(v)
			// firstprivate+lastprivate combination: the firstprivate
			// initializer (if any) already ran; otherwise start unset.
			already := false
			for _, pre := range plan.preInner {
				if a, ok := pre.(*minipy.Assign); ok {
					if n, ok := a.Targets[0].(*minipy.Name); ok && n.ID == nn {
						already = true
					}
				}
			}
			for _, p := range plan.params {
				if p.Name == nn {
					already = true
				}
			}
			if !already {
				plan.preInner = append(plan.preInner, assignStmt(nn, noneLit()))
			}
			plan.lastPriv = append(plan.lastPriv, [2]string{v, nn})
		}
	}
	for _, cl := range dir.FindAll(directive.ClauseReduction) {
		for _, v := range cl.Vars {
			nn := addRename(v)
			init, merge, err := tr.reductionPieces(cl.Op, v, nn, pos)
			if err != nil {
				return nil, err
			}
			plan.preInner = append(plan.preInner, init)
			plan.postInner = append(plan.postInner, merge)
		}
	}

	// default(none/private/firstprivate) applies to variables bound
	// outside the construct and referenced inside it.
	if def := dir.Find(directive.ClauseDefault); def != nil && def.Default != directive.DefaultShared {
		used := collectNames(body)
		var unlisted []string
		for name := range used {
			if plan.vars[name] || isGeneratedName(name) || name == "omp" {
				continue
			}
			if !outside.IsLocal(name) {
				continue // not bound in the enclosing function: module global or builtin
			}
			unlisted = append(unlisted, name)
		}
		switch def.Default {
		case directive.DefaultNone:
			// Shared-clause names are explicitly listed.
			shared := map[string]bool{}
			for _, cl := range dir.FindAll(directive.ClauseShared) {
				for _, v := range cl.Vars {
					shared[v] = true
				}
			}
			for _, name := range unlisted {
				if !shared[name] {
					return nil, errAt(pos,
						"default(none): variable %q used in the construct has no data-sharing clause", name)
				}
			}
		case directive.DefaultPrivate:
			for _, name := range unlisted {
				nn := addRename(name)
				plan.preInner = append(plan.preInner, assignStmt(nn, noneLit()))
			}
		case directive.DefaultFirstprivate:
			for _, name := range unlisted {
				capture(addRename(name), name)
			}
		}
	}

	renameInStmts(body, plan.renames)
	return plan, nil
}

func isGeneratedName(name string) bool {
	return len(name) >= 6 && name[:6] == "__omp_" || name == "__omp"
}

// reductionPieces builds the private initializer and the
// mutex-guarded merge statement for one reduction variable.
func (tr *transformer) reductionPieces(op, shared, private string, pos minipy.Position) (minipy.Stmt, minipy.Stmt, error) {
	var init minipy.Stmt
	var mergeExpr minipy.Expr
	sharedRef := func() minipy.Expr { return nameRef(shared) }
	privRef := func() minipy.Expr { return nameRef(private) }
	switch op {
	case "+", "-":
		init = assignStmt(private, intLit(0))
		mergeExpr = &minipy.BinOp{Op: "+", L: sharedRef(), R: privRef()}
	case "*":
		init = assignStmt(private, intLit(1))
		mergeExpr = &minipy.BinOp{Op: "*", L: sharedRef(), R: privRef()}
	case "&":
		init = assignStmt(private, intLit(-1))
		mergeExpr = &minipy.BinOp{Op: "&", L: sharedRef(), R: privRef()}
	case "|":
		init = assignStmt(private, intLit(0))
		mergeExpr = &minipy.BinOp{Op: "|", L: sharedRef(), R: privRef()}
	case "^":
		init = assignStmt(private, intLit(0))
		mergeExpr = &minipy.BinOp{Op: "^", L: sharedRef(), R: privRef()}
	case "&&":
		init = assignStmt(private, boolLit(true))
		mergeExpr = &minipy.BoolOp{Op: "and", Values: []minipy.Expr{sharedRef(), privRef()}}
	case "||":
		init = assignStmt(private, boolLit(false))
		mergeExpr = &minipy.BoolOp{Op: "or", Values: []minipy.Expr{sharedRef(), privRef()}}
	case "min", "max":
		// Seed the private copy from the shared value (idempotent for
		// min/max, avoiding a typed infinity). The read takes the
		// reduction mutex: another thread may already be merging.
		init = &minipy.Try{
			Body: []minipy.Stmt{
				exprStmt(ompCall("mutex_lock")),
				assignStmt(private, sharedRef()),
			},
			Final: []minipy.Stmt{exprStmt(ompCall("mutex_unlock"))},
		}
		mergeExpr = &minipy.Call{Fn: nameRef(op), Args: []minipy.Expr{sharedRef(), privRef()}}
	default:
		// User-declared reduction.
		init = assignStmt(private, ompCall("reduce_init", strLit(op)))
		mergeExpr = ompCall("reduce_combine", strLit(op), sharedRef(), privRef())
	}
	// try: __omp.mutex_lock(); shared = merge finally: __omp.mutex_unlock()
	merge := &minipy.Try{
		Body: []minipy.Stmt{
			exprStmt(ompCall("mutex_lock")),
			assignStmt(shared, mergeExpr),
		},
		Final: []minipy.Stmt{exprStmt(ompCall("mutex_unlock"))},
	}
	return init, merge, nil
}

// shareDecls builds the nonlocal/global declarations for shared
// variables assigned inside a generated inner function (Fig. 2's
// `nonlocal pi_value`). outside is the enclosing function's scope
// with the construct excluded. Names in exclude are implicitly
// private (worksharing and taskloop iteration variables, OpenMP
// §2.9.1) and stay plain locals of the inner function even when the
// enclosing function also binds them — sharing them would make every
// team member race on one cell.
func shareDecls(ctx *fnCtx, outside *minipy.ScopeInfo, innerBody []minipy.Stmt,
	exclude map[string]bool) []minipy.Stmt {
	inner := minipy.AnalyzeScope(nil, innerBody)
	var nonlocals, globals []string
	for _, name := range inner.Locals {
		if isGeneratedName(name) || exclude[name] {
			continue
		}
		switch {
		case ctx.scope.Globals[name]:
			globals = append(globals, name)
		case outside.IsLocal(name):
			nonlocals = append(nonlocals, name)
		}
		// Names bound only inside the block stay thread-private
		// locals of the inner function.
	}
	var out []minipy.Stmt
	if len(globals) > 0 {
		out = append(out, &minipy.Global{Names: globals})
	}
	if len(nonlocals) > 0 {
		out = append(out, &minipy.Nonlocal{Names: nonlocals})
	}
	return out
}

// wsLoopVarNames collects the iteration variables of the lowered
// worksharing loops in stmts: the target of the chunk loop under each
// `while __omp.for_next(b):`, and — for collapsed nests — the
// per-level variables assigned from the generated unravel index.
// These are implicitly private per OpenMP, so shareDecls must not
// turn them into nonlocal declarations. Nested FuncDefs (inner
// regions, tasks) are not entered: their loop variables are already
// locals of their own function.
func wsLoopVarNames(stmts []minipy.Stmt) map[string]bool {
	vars := map[string]bool{}
	var walk func(ss []minipy.Stmt)
	markChunkLoop := func(f *minipy.For) {
		if n, ok := f.Target.(*minipy.Name); ok && !isGeneratedName(n.ID) {
			vars[n.ID] = true
		}
		// Collapsed form: an __omp_idx_N = __omp.unravel(...) prefix
		// followed by lv_d = __omp_idx_N[d] per-level assignments.
		for _, s := range f.Body {
			as, ok := s.(*minipy.Assign)
			if !ok || len(as.Targets) != 1 {
				break
			}
			tgt, ok := as.Targets[0].(*minipy.Name)
			if !ok {
				break
			}
			if isGeneratedName(tgt.ID) {
				continue // the unravel index itself
			}
			idx, ok := as.Value.(*minipy.Index)
			if !ok {
				break
			}
			base, ok := idx.X.(*minipy.Name)
			if !ok || !isGeneratedName(base.ID) {
				break
			}
			vars[tgt.ID] = true
		}
	}
	walk = func(ss []minipy.Stmt) {
		for _, s := range ss {
			switch t := s.(type) {
			case *minipy.While:
				if call, ok := t.Cond.(*minipy.Call); ok {
					if attr, ok := call.Fn.(*minipy.Attribute); ok && attr.Name == "for_next" {
						if base, ok := attr.X.(*minipy.Name); ok && base.ID == "__omp" {
							if len(t.Body) == 1 {
								if f, ok := t.Body[0].(*minipy.For); ok {
									markChunkLoop(f)
								}
							}
						}
					}
				}
				walk(t.Body)
			case *minipy.For:
				walk(t.Body)
			case *minipy.If:
				walk(t.Body)
				walk(t.Else)
			case *minipy.With:
				walk(t.Body)
			case *minipy.Try:
				walk(t.Body)
				for _, h := range t.Handlers {
					walk(h.Body)
				}
				walk(t.Final)
			}
		}
	}
	walk(stmts)
	return vars
}

// parallel transforms parallel, parallel for, and parallel sections.
func (tr *transformer) parallel(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	pos := w.NodePos()
	outside := minipy.AnalyzeScopeExcluding(ctx.fd.Params, ctx.fd.Body, w)

	var innerBody []minipy.Stmt
	var err error
	switch dir.Name {
	case directive.NameParallelFor:
		loopDir := subsetDirective(dir, directive.NameFor,
			directive.ClauseSchedule, directive.ClauseCollapse, directive.ClauseOrdered,
			directive.ClauseLastprivate, directive.ClauseReduction)
		innerBody, err = tr.forConstruct(ctx, loopDir, w.Body, pos)
	case directive.NameParallelSections:
		secDir := subsetDirective(dir, directive.NameSections,
			directive.ClauseLastprivate, directive.ClauseReduction)
		innerBody, err = tr.sections(ctx, secDir, w.Body, pos)
	default:
		innerBody, err = tr.block(ctx, w.Body)
	}
	if err != nil {
		return nil, err
	}

	// Data clauses held by the parallel part (reduction is delegated
	// to the inner worksharing construct for the combined forms).
	parDir := dir
	if dir.Name != directive.NameParallel {
		parDir = subsetDirective(dir, directive.NameParallel,
			directive.ClauseIf, directive.ClauseNumThreads, directive.ClauseDefault,
			directive.ClausePrivate, directive.ClauseFirstprivate, directive.ClauseShared,
			directive.ClauseCopyin)
	}
	plan, err := tr.buildDataPlan(ctx, parDir, innerBody, pos, true, outside)
	if err != nil {
		return nil, err
	}

	fnBody := append(append(append([]minipy.Stmt{}, plan.preInner...), innerBody...), plan.postInner...)
	decls := shareDecls(ctx, outside, fnBody, wsLoopVarNames(fnBody))
	fnBody = append(decls, fnBody...)

	fnName := tr.fresh("parallel")
	fd := &minipy.FuncDef{Name: fnName, Params: plan.params, Body: fnBody}

	// parallel_run(fn, num_threads, if_set, if_val, label): the label
	// carries the directive's source line into the runtime's per-region
	// time-attribution profiler, so hot directives attribute to lines.
	var numThreads minipy.Expr = intLit(0)
	if cl := dir.Find(directive.ClauseNumThreads); cl != nil {
		numThreads, err = parseClauseExpr(cl, pos)
		if err != nil {
			return nil, err
		}
	}
	var ifSet minipy.Expr = boolLit(false)
	var ifVal minipy.Expr = boolLit(false)
	if cl := dir.Find(directive.ClauseIf); cl != nil {
		ifSet = boolLit(true)
		ifVal, err = parseClauseExpr(cl, pos)
		if err != nil {
			return nil, err
		}
	}

	out := append([]minipy.Stmt{}, plan.preOuter...)
	out = append(out, fd,
		exprStmt(ompCall("parallel_run", nameRef(fnName), numThreads, ifSet, ifVal,
			strLit("L"+strconv.Itoa(pos.Line)))))
	return out, nil
}

// subsetDirective builds a synthetic directive holding only the
// listed clause kinds of dir.
func subsetDirective(dir *directive.Directive, name directive.Name, kinds ...directive.ClauseKind) *directive.Directive {
	out := &directive.Directive{Name: name, Raw: dir.Raw}
	keep := make(map[directive.ClauseKind]bool, len(kinds))
	for _, k := range kinds {
		keep[k] = true
	}
	for _, c := range dir.Clauses {
		if keep[c.Kind] {
			out.Clauses = append(out.Clauses, c)
		}
	}
	return out
}

// forConstruct transforms the for directive (Fig. 3).
func (tr *transformer) forConstruct(ctx *fnCtx, dir *directive.Directive,
	body []minipy.Stmt, pos minipy.Position) ([]minipy.Stmt, error) {

	collapse := 1
	if cl := dir.Find(directive.ClauseCollapse); cl != nil {
		if n, ok := intFromString(cl.Expr); ok {
			collapse = int(n)
		}
	}

	// Peel the loop nest: collapse levels must be perfectly nested
	// range loops.
	loops := make([]*minipy.For, 0, collapse)
	cur := body
	for level := 0; level < collapse; level++ {
		if len(cur) != 1 {
			return nil, errAt(pos, "for directive requires a single (perfectly nested) for loop, found %d statements", len(cur))
		}
		loop, ok := cur[0].(*minipy.For)
		if !ok {
			return nil, errAt(pos, "for directive requires a for loop as its body")
		}
		loops = append(loops, loop)
		cur = loop.Body
	}
	innerBody := loops[len(loops)-1].Body

	// Extract range() triplets.
	var tripletArgs []minipy.Expr
	var loopVars []string
	for _, loop := range loops {
		v, ok := loop.Target.(*minipy.Name)
		if !ok {
			return nil, errAt(loop.NodePos(), "parallel loop variable must be a simple name")
		}
		loopVars = append(loopVars, v.ID)
		call, ok := loop.Iter.(*minipy.Call)
		if !ok {
			return nil, errAt(loop.NodePos(), "parallel loops must iterate over range(...)")
		}
		fnName, ok := call.Fn.(*minipy.Name)
		if !ok || fnName.ID != "range" {
			return nil, errAt(loop.NodePos(),
				"parallel loops must iterate over range(...); list comprehensions and other iterables are not supported")
		}
		var start, stop, step minipy.Expr
		switch len(call.Args) {
		case 1:
			start, stop, step = intLit(0), call.Args[0], intLit(1)
		case 2:
			start, stop, step = call.Args[0], call.Args[1], intLit(1)
		case 3:
			start, stop, step = call.Args[0], call.Args[1], call.Args[2]
		default:
			return nil, errAt(loop.NodePos(), "range() takes 1 to 3 arguments")
		}
		tripletArgs = append(tripletArgs, start, stop, step)
	}

	ordered := dir.Has(directive.ClauseOrdered)

	// Transform the loop body (nested directives see the ordered
	// loop variable).
	prevLoopVar := ctx.loopVar
	if ordered {
		ctx.loopVar = loopVars[0]
	}
	tBody, err := tr.block(ctx, innerBody)
	ctx.loopVar = prevLoopVar
	if err != nil {
		return nil, err
	}

	plan, err := tr.buildDataPlan(ctx, dir, tBody, pos, false, nil)
	if err != nil {
		return nil, err
	}

	// Schedule clause. A loop without one gets the explicit "static"
	// default rather than an empty kind: the lowered for_init call is
	// the compiled tier's only schedule metadata, and a literal
	// "static" + literal chunk is what lets it select the
	// precomputed-bounds kernel instead of the per-chunk bridge
	// (internal/compile/kernel.go). The runtime resolves "" and
	// "static" identically, so interp-tier behavior is unchanged.
	var kindExpr minipy.Expr = strLit("static")
	var chunkExpr minipy.Expr = noneLit()
	if cl := dir.Find(directive.ClauseSchedule); cl != nil {
		kindExpr = strLit(cl.Sched.String())
		if cl.Expr != "" {
			chunkExpr, err = parseClauseExpr(cl, pos)
			if err != nil {
				return nil, err
			}
		}
	}
	nowait := dir.Has(directive.ClauseNowait)

	bVar := tr.fresh("bounds")
	var out []minipy.Stmt
	out = append(out, plan.preOuter...)
	out = append(out, plan.preInner...)
	out = append(out, assignStmt(bVar, ompCall("for_bounds", tripletArgs...)))
	out = append(out, exprStmt(ompCall("for_init", nameRef(bVar), kindExpr, chunkExpr,
		boolLit(ordered), boolLit(nowait))))

	var chunkLoop minipy.Stmt
	if collapse == 1 {
		// for i in range(b[0], b[1], b[2]):
		iter := &minipy.Call{Fn: nameRef("range"), Args: []minipy.Expr{
			&minipy.Index{X: nameRef(bVar), I: intLit(0)},
			&minipy.Index{X: nameRef(bVar), I: intLit(1)},
			&minipy.Index{X: nameRef(bVar), I: intLit(2)},
		}}
		chunkLoop = &minipy.For{Target: nameRef(loopVars[0]), Iter: iter, Body: tBody}
	} else {
		// Linear chunk with unraveling into the loop variables.
		linVar := tr.fresh("lin")
		idxVar := tr.fresh("idx")
		inner := []minipy.Stmt{
			assignStmt(idxVar, ompCall("unravel", nameRef(bVar), nameRef(linVar))),
		}
		for d, lv := range loopVars {
			inner = append(inner, assignStmt(lv,
				&minipy.Index{X: nameRef(idxVar), I: intLit(int64(d))}))
		}
		inner = append(inner, tBody...)
		iter := &minipy.Call{Fn: nameRef("range"), Args: []minipy.Expr{
			ompCall("lin_lo", nameRef(bVar)),
			ompCall("lin_hi", nameRef(bVar)),
		}}
		chunkLoop = &minipy.For{Target: nameRef(linVar), Iter: iter, Body: inner}
	}

	out = append(out, &minipy.While{
		Cond: ompCall("for_next", nameRef(bVar)),
		Body: []minipy.Stmt{chunkLoop},
	})
	for _, lp := range plan.lastPriv {
		out = append(out, &minipy.If{
			Cond: ompCall("for_last", nameRef(bVar)),
			Body: []minipy.Stmt{assignStmt(lp[0], nameRef(lp[1]))},
		})
	}
	out = append(out, plan.postInner...)
	out = append(out, exprStmt(ompCall("for_end", nameRef(bVar))))
	return out, nil
}

// sections transforms the sections construct: each section gets a
// fixed sequence id claimed through the shared counter (§III-D).
func (tr *transformer) sections(ctx *fnCtx, dir *directive.Directive,
	body []minipy.Stmt, pos minipy.Position) ([]minipy.Stmt, error) {

	var sectionBodies [][]minipy.Stmt
	for _, s := range body {
		w, ok := s.(*minipy.With)
		if ok {
			if d, isDir := withDirective(w); isDir {
				sd, err := directive.Parse(d)
				if err != nil {
					return nil, errAt(w.NodePos(), "%v", err)
				}
				if sd.Name == directive.NameSection {
					tb, err := tr.block(ctx, w.Body)
					if err != nil {
						return nil, err
					}
					sectionBodies = append(sectionBodies, tb)
					continue
				}
			}
		}
		return nil, errAt(s.NodePos(), "only 'with omp(\"section\")' blocks may appear inside sections")
	}
	if len(sectionBodies) == 0 {
		return nil, errAt(pos, "sections construct contains no section blocks")
	}

	var all []minipy.Stmt
	for _, sb := range sectionBodies {
		all = append(all, sb...)
	}
	plan, err := tr.buildDataPlan(ctx, dir, all, pos, false, nil)
	if err != nil {
		return nil, err
	}

	nowait := dir.Has(directive.ClauseNowait)
	sVar := tr.fresh("section")

	// if s == 0: ... elif s == 1: ...
	var dispatch minipy.Stmt
	for i := len(sectionBodies) - 1; i >= 0; i-- {
		node := &minipy.If{
			Cond: &minipy.Compare{L: nameRef(sVar), Ops: []string{"=="},
				Rights: []minipy.Expr{intLit(int64(i))}},
			Body: sectionBodies[i],
		}
		if dispatch != nil {
			node.Else = []minipy.Stmt{dispatch}
		}
		dispatch = node
	}

	var out []minipy.Stmt
	out = append(out, plan.preOuter...)
	out = append(out, plan.preInner...)
	out = append(out, exprStmt(ompCall("sections_begin",
		intLit(int64(len(sectionBodies))), boolLit(nowait))))
	loop := &minipy.While{
		Cond: boolLit(true),
		Body: []minipy.Stmt{
			assignStmt(sVar, ompCall("sections_next")),
			&minipy.If{
				Cond: &minipy.Compare{L: nameRef(sVar), Ops: []string{"<"},
					Rights: []minipy.Expr{intLit(0)}},
				Body: []minipy.Stmt{&minipy.Break{}},
			},
			dispatch,
		},
	}
	out = append(out, loop)
	for _, lp := range plan.lastPriv {
		out = append(out, &minipy.If{
			Cond: ompCall("sections_last"),
			Body: []minipy.Stmt{assignStmt(lp[0], nameRef(lp[1]))},
		})
	}
	out = append(out, plan.postInner...)
	out = append(out, exprStmt(ompCall("sections_end")))
	return out, nil
}

// single transforms the single construct with optional copyprivate.
func (tr *transformer) single(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	pos := w.NodePos()
	tBody, err := tr.block(ctx, w.Body)
	if err != nil {
		return nil, err
	}
	plan, err := tr.buildDataPlan(ctx, dir, tBody, pos, false, nil)
	if err != nil {
		return nil, err
	}

	var cpVars []string
	for _, cl := range dir.FindAll(directive.ClauseCopyprivate) {
		cpVars = append(cpVars, cl.Vars...)
	}
	hasCP := len(cpVars) > 0
	nowait := dir.Has(directive.ClauseNowait)

	wonVar := tr.fresh("won")
	ifBody := append(append([]minipy.Stmt{}, plan.preInner...), tBody...)
	if hasCP {
		elts := make([]minipy.Expr, len(cpVars))
		for i, v := range cpVars {
			// copyprivate publishes the private copy when the name is
			// private in this construct, else the variable itself.
			if nn, ok := plan.renames[v]; ok {
				elts[i] = nameRef(nn)
			} else {
				elts[i] = nameRef(v)
			}
		}
		ifBody = append(ifBody,
			exprStmt(ompCall("single_copyprivate", &minipy.TupleLit{Elts: elts})))
	}

	var out []minipy.Stmt
	out = append(out, plan.preOuter...)
	out = append(out, assignStmt(wonVar, ompCall("single_begin", boolLit(nowait), boolLit(hasCP))))
	out = append(out, &minipy.If{Cond: nameRef(wonVar), Body: ifBody})
	if hasCP {
		cpVar := tr.fresh("cp")
		out = append(out, assignStmt(cpVar, ompCall("single_end")))
		for i, v := range cpVars {
			out = append(out, assignStmt(v,
				&minipy.Index{X: nameRef(cpVar), I: intLit(int64(i))}))
		}
	} else {
		out = append(out, exprStmt(ompCall("single_end")))
	}
	out = append(out, plan.postInner...)
	return out, nil
}

func (tr *transformer) master(ctx *fnCtx, w *minipy.With) ([]minipy.Stmt, error) {
	tBody, err := tr.block(ctx, w.Body)
	if err != nil {
		return nil, err
	}
	return []minipy.Stmt{
		&minipy.If{Cond: ompCall("master"), Body: tBody},
	}, nil
}

func (tr *transformer) critical(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	name := ""
	if cl := dir.Find(directive.ClauseCriticalName); cl != nil {
		name = cl.Expr
	}
	tBody, err := tr.block(ctx, w.Body)
	if err != nil {
		return nil, err
	}
	return []minipy.Stmt{
		exprStmt(ompCall("critical_enter", strLit(name))),
		&minipy.Try{
			Body:  tBody,
			Final: []minipy.Stmt{exprStmt(ompCall("critical_exit", strLit(name)))},
		},
	}, nil
}

// atomic validates the single-update restriction and lowers to a
// per-location critical section (boxed interpreter values cannot use
// hardware atomics; the runtime stripes the locks).
func (tr *transformer) atomic(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	if len(w.Body) != 1 {
		return nil, errAt(w.NodePos(), "atomic construct requires exactly one update statement")
	}
	var target minipy.Expr
	switch t := w.Body[0].(type) {
	case *minipy.AugAssign:
		target = t.Target
	case *minipy.Assign:
		if len(t.Targets) != 1 {
			return nil, errAt(w.NodePos(), "atomic construct requires a single assignment target")
		}
		target = t.Targets[0]
	case *minipy.ExprStmt:
		return nil, errAt(w.NodePos(), "atomic construct requires an assignment or augmented assignment")
	default:
		return nil, errAt(w.NodePos(), "atomic construct requires an assignment or augmented assignment")
	}
	root := rootName(target)
	if root == "" {
		return nil, errAt(w.NodePos(), "atomic update target must be a variable or subscript")
	}
	name := "__omp_atomic_" + root
	return []minipy.Stmt{
		exprStmt(ompCall("critical_enter", strLit(name))),
		&minipy.Try{
			Body:  []minipy.Stmt{w.Body[0]},
			Final: []minipy.Stmt{exprStmt(ompCall("critical_exit", strLit(name)))},
		},
	}, nil
}

func rootName(e minipy.Expr) string {
	switch t := e.(type) {
	case *minipy.Name:
		return t.ID
	case *minipy.Index:
		return rootName(t.X)
	case *minipy.Attribute:
		return rootName(t.X)
	}
	return ""
}

func (tr *transformer) ordered(ctx *fnCtx, w *minipy.With) ([]minipy.Stmt, error) {
	if ctx.loopVar == "" {
		return nil, errAt(w.NodePos(),
			"ordered region must be closely nested inside a loop with the ordered clause")
	}
	tBody, err := tr.block(ctx, w.Body)
	if err != nil {
		return nil, err
	}
	return []minipy.Stmt{
		exprStmt(ompCall("ordered_begin", nameRef(ctx.loopVar))),
		&minipy.Try{
			Body:  tBody,
			Final: []minipy.Stmt{exprStmt(ompCall("ordered_end"))},
		},
	}, nil
}

// task transforms the task directive: the body is packaged into an
// inner function submitted to the team's shared queue (§III-E).
func (tr *transformer) task(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	pos := w.NodePos()
	outside := minipy.AnalyzeScopeExcluding(ctx.fd.Params, ctx.fd.Body, w)

	tBody, err := tr.block(ctx, w.Body)
	if err != nil {
		return nil, err
	}
	plan, err := tr.buildDataPlan(ctx, dir, tBody, pos, true, outside)
	if err != nil {
		return nil, err
	}

	fnBody := append(append([]minipy.Stmt{}, plan.preInner...), tBody...)
	fnBody = append(fnBody, plan.postInner...)
	decls := shareDecls(ctx, outside, fnBody, nil)
	fnBody = append(decls, fnBody...)

	fnName := tr.fresh("task")
	fd := &minipy.FuncDef{Name: fnName, Params: plan.params, Body: fnBody}

	var ifSet, ifVal minipy.Expr = boolLit(false), boolLit(false)
	if cl := dir.Find(directive.ClauseIf); cl != nil {
		ifSet = boolLit(true)
		ifVal, err = parseClauseExpr(cl, pos)
		if err != nil {
			return nil, err
		}
	}
	var finalSet, finalVal minipy.Expr = boolLit(false), boolLit(false)
	if cl := dir.Find(directive.ClauseFinal); cl != nil {
		finalSet = boolLit(true)
		finalVal, err = parseClauseExpr(cl, pos)
		if err != nil {
			return nil, err
		}
	}

	// depend clauses lower to key tuples evaluated at submission time
	// in the submitting scope (index expressions read current values).
	var depIn, depOut, depInout []minipy.Expr
	for _, cl := range dir.FindAll(directive.ClauseDepend) {
		for _, v := range cl.Vars {
			key, err := dependKeyExpr(v, pos)
			if err != nil {
				return nil, err
			}
			switch cl.Op {
			case "in":
				depIn = append(depIn, key)
			case "out":
				depOut = append(depOut, key)
			default:
				depInout = append(depInout, key)
			}
		}
	}

	out := append([]minipy.Stmt{}, plan.preOuter...)
	callArgs := []minipy.Expr{nameRef(fnName), ifSet, ifVal, finalSet, finalVal}
	if len(depIn)+len(depOut)+len(depInout) > 0 {
		callArgs = append(callArgs,
			&minipy.TupleLit{Elts: depIn},
			&minipy.TupleLit{Elts: depOut},
			&minipy.TupleLit{Elts: depInout})
	}
	out = append(out, fd, exprStmt(ompCall("task_submit", callArgs...)))
	return out, nil
}

// dependKeyExpr lowers one depend operand to its storage-key
// expression: a plain name becomes a string literal, a subscripted
// name a ("name", idx...) tuple whose index expressions the generated
// code evaluates at submission time.
func dependKeyExpr(operand string, pos minipy.Position) (minipy.Expr, error) {
	e, err := minipy.ParseExprString(operand)
	if err != nil {
		return nil, errAt(pos, "invalid depend operand %q: %v", operand, err)
	}
	var idx []minipy.Expr
	for {
		switch t := e.(type) {
		case *minipy.Name:
			if len(idx) == 0 {
				return strLit(t.ID), nil
			}
			return &minipy.TupleLit{Elts: append([]minipy.Expr{strLit(t.ID)}, idx...)}, nil
		case *minipy.Index:
			idx = append([]minipy.Expr{t.I}, idx...)
			e = t.X
		default:
			return nil, errAt(pos, "depend operand %q must be a variable or subscripted variable", operand)
		}
	}
}

// taskgroup transforms the taskgroup construct: deep completion wait
// on the directly generated tasks and all their descendants, with the
// end reached even when the body raises so the group stays balanced.
func (tr *transformer) taskgroup(ctx *fnCtx, w *minipy.With) ([]minipy.Stmt, error) {
	tBody, err := tr.block(ctx, w.Body)
	if err != nil {
		return nil, err
	}
	return []minipy.Stmt{
		exprStmt(ompCall("taskgroup_begin")),
		&minipy.Try{
			Body:  tBody,
			Final: []minipy.Stmt{exprStmt(ompCall("taskgroup_end"))},
		},
	}, nil
}

// taskloop transforms the taskloop construct: the runtime chunks the
// loop's iteration space into child tasks, each invoking the
// generated chunk function with a [lo, hi) range of linear indices.
func (tr *transformer) taskloop(ctx *fnCtx, dir *directive.Directive, w *minipy.With) ([]minipy.Stmt, error) {
	pos := w.NodePos()
	outside := minipy.AnalyzeScopeExcluding(ctx.fd.Params, ctx.fd.Body, w)

	if len(w.Body) != 1 {
		return nil, errAt(pos, "taskloop requires a single for loop, found %d statements", len(w.Body))
	}
	loop, ok := w.Body[0].(*minipy.For)
	if !ok {
		return nil, errAt(pos, "taskloop requires a for loop as its body")
	}
	v, ok := loop.Target.(*minipy.Name)
	if !ok {
		return nil, errAt(loop.NodePos(), "taskloop loop variable must be a simple name")
	}
	call, ok := loop.Iter.(*minipy.Call)
	if !ok {
		return nil, errAt(loop.NodePos(), "taskloop must iterate over range(...)")
	}
	fnRef, ok := call.Fn.(*minipy.Name)
	if !ok || fnRef.ID != "range" {
		return nil, errAt(loop.NodePos(), "taskloop must iterate over range(...)")
	}
	var start, stop, step minipy.Expr
	switch len(call.Args) {
	case 1:
		start, stop, step = intLit(0), call.Args[0], intLit(1)
	case 2:
		start, stop, step = call.Args[0], call.Args[1], intLit(1)
	case 3:
		start, stop, step = call.Args[0], call.Args[1], call.Args[2]
	default:
		return nil, errAt(loop.NodePos(), "range() takes 1 to 3 arguments")
	}

	tBody, err := tr.block(ctx, loop.Body)
	if err != nil {
		return nil, err
	}
	plan, err := tr.buildDataPlan(ctx, dir, tBody, pos, true, outside)
	if err != nil {
		return nil, err
	}

	// The loop variable is private to each chunk task: keep it a local
	// of the chunk function (unless a data clause already renamed it).
	lv, renamed := plan.renames[v.ID]
	if !renamed {
		lv = tr.fresh(v.ID)
		renameInStmts(tBody, map[string]string{v.ID: lv})
	}

	// Bounds are captured once, before the chunk function definition,
	// so its defaults and the runtime call see the same values.
	startVar := tr.fresh("tl_start")
	stopVar := tr.fresh("tl_stop")
	stepVar := tr.fresh("tl_step")
	loVar, hiVar := tr.fresh("lo"), tr.fresh("hi")
	startP, stepP := tr.fresh("startp"), tr.fresh("stepp")

	// for <lv> in range(start + lo*step, start + hi*step, step): body
	linVal := func(edge string) minipy.Expr {
		return &minipy.BinOp{Op: "+", L: nameRef(startP),
			R: &minipy.BinOp{Op: "*", L: nameRef(edge), R: nameRef(stepP)}}
	}
	chunkLoop := &minipy.For{
		Target: nameRef(lv),
		Iter: &minipy.Call{Fn: nameRef("range"), Args: []minipy.Expr{
			linVal(loVar), linVal(hiVar), nameRef(stepP)}},
		Body: tBody,
	}

	fnBody := append(append([]minipy.Stmt{}, plan.preInner...), chunkLoop)
	fnBody = append(fnBody, plan.postInner...)
	// The taskloop iteration variable is implicitly private to each
	// chunk task (OpenMP §2.9.1), exactly like a worksharing loop var.
	decls := shareDecls(ctx, outside, fnBody, map[string]bool{lv: true})
	fnBody = append(decls, fnBody...)

	params := []minipy.Param{
		{Name: loVar}, {Name: hiVar},
		{Name: startP, Default: nameRef(startVar)},
		{Name: stepP, Default: nameRef(stepVar)},
	}
	params = append(params, plan.params...)
	fnName := tr.fresh("taskloop")
	fd := &minipy.FuncDef{Name: fnName, Params: params, Body: fnBody}

	var gsExpr, ntExpr minipy.Expr = intLit(0), intLit(0)
	if cl := dir.Find(directive.ClauseGrainsize); cl != nil {
		if gsExpr, err = parseClauseExpr(cl, pos); err != nil {
			return nil, err
		}
	}
	if cl := dir.Find(directive.ClauseNumTasks); cl != nil {
		if ntExpr, err = parseClauseExpr(cl, pos); err != nil {
			return nil, err
		}
	}
	var ifSet, ifVal minipy.Expr = boolLit(false), boolLit(false)
	if cl := dir.Find(directive.ClauseIf); cl != nil {
		ifSet = boolLit(true)
		if ifVal, err = parseClauseExpr(cl, pos); err != nil {
			return nil, err
		}
	}
	var finalSet, finalVal minipy.Expr = boolLit(false), boolLit(false)
	if cl := dir.Find(directive.ClauseFinal); cl != nil {
		finalSet = boolLit(true)
		if finalVal, err = parseClauseExpr(cl, pos); err != nil {
			return nil, err
		}
	}

	out := append([]minipy.Stmt{}, plan.preOuter...)
	out = append(out,
		assignStmt(startVar, start),
		assignStmt(stopVar, stop),
		assignStmt(stepVar, step),
		fd,
		exprStmt(ompCall("taskloop", nameRef(fnName),
			nameRef(startVar), nameRef(stopVar), nameRef(stepVar),
			gsExpr, ntExpr, boolLit(dir.Has(directive.ClauseNogroup)),
			ifSet, ifVal, finalSet, finalVal)))
	return out, nil
}
