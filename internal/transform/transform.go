// Package transform implements OMP4Py's source-to-source pass: the
// work the @omp decorator performs at module load time (§III-A).
// Functions decorated with @omp have their `with omp("...")` blocks
// and standalone omp("...") calls parsed, validated, and rewritten
// into calls to the __omp runtime module, reproducing the generated
// code shapes of Figs. 2 and 3; the decorator and the directives are
// then removed from the AST.
package transform

import (
	"fmt"
	"strconv"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/minipy"
)

// FuncOptions are the per-function options accepted by the @omp
// decorator (§III-F). The transformation itself is identical across
// modes; Compile marks the function for the closure compiler.
type FuncOptions struct {
	Compile bool
	Dump    bool
	Debug   bool
}

// Result reports what the pass did.
type Result struct {
	// Functions lists the decorated functions that were transformed,
	// in source order.
	Functions []string
	// Compile records functions that requested @omp(compile=True).
	Compile map[string]bool
	// Dumps holds the unparsed transformed source of functions that
	// requested @omp(dump=True).
	Dumps map[string]string
}

// Module transforms every @omp-decorated function in mod, in place.
func Module(mod *minipy.Module) (*Result, error) {
	res := &Result{Compile: make(map[string]bool), Dumps: make(map[string]string)}
	tr := &transformer{res: res}
	if err := tr.stmts(mod.Body, nil); err != nil {
		return nil, err
	}
	return res, nil
}

type transformer struct {
	res    *Result
	gensym int
}

func (tr *transformer) fresh(stem string) string {
	tr.gensym++
	return fmt.Sprintf("__omp_%s_%d", stem, tr.gensym)
}

func errAt(pos minipy.Position, format string, args ...any) error {
	return &minipy.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// stmts walks a statement list looking for decorated functions.
// enclosing is the scope info of the function containing these
// statements (nil at module level).
func (tr *transformer) stmts(body []minipy.Stmt, enclosing *minipy.ScopeInfo) error {
	for _, s := range body {
		if err := tr.stmt(s, enclosing); err != nil {
			return err
		}
	}
	return nil
}

func (tr *transformer) stmt(s minipy.Stmt, enclosing *minipy.ScopeInfo) error {
	switch t := s.(type) {
	case *minipy.FuncDef:
		opts, decorated, rest := ompDecorator(t.Decorators)
		if decorated {
			if err := tr.transformFunction(t, opts); err != nil {
				return err
			}
			t.Decorators = rest // strip @omp, keep any others
			if opts.Compile {
				tr.res.Compile[t.Name] = true
			}
			tr.res.Functions = append(tr.res.Functions, t.Name)
			if opts.Dump {
				tr.res.Dumps[t.Name] = minipy.Unparse(t)
			}
			return nil
		}
		// Non-decorated functions may still contain decorated inner
		// functions.
		scope := minipy.AnalyzeScope(t.Params, t.Body)
		return tr.stmts(t.Body, scope)
	case *minipy.If:
		if err := tr.stmts(t.Body, enclosing); err != nil {
			return err
		}
		return tr.stmts(t.Else, enclosing)
	case *minipy.While:
		return tr.stmts(t.Body, enclosing)
	case *minipy.For:
		return tr.stmts(t.Body, enclosing)
	case *minipy.With:
		return tr.stmts(t.Body, enclosing)
	case *minipy.Try:
		if err := tr.stmts(t.Body, enclosing); err != nil {
			return err
		}
		for _, h := range t.Handlers {
			if err := tr.stmts(h.Body, enclosing); err != nil {
				return err
			}
		}
		return tr.stmts(t.Final, enclosing)
	}
	return nil
}

// ompDecorator recognizes @omp and @omp(...) decorators and parses
// their options; it returns the remaining decorators.
func ompDecorator(decorators []minipy.Expr) (FuncOptions, bool, []minipy.Expr) {
	var opts FuncOptions
	var rest []minipy.Expr
	found := false
	for _, d := range decorators {
		switch t := d.(type) {
		case *minipy.Name:
			if t.ID == "omp" {
				found = true
				continue
			}
		case *minipy.Call:
			if name, ok := t.Fn.(*minipy.Name); ok && name.ID == "omp" {
				found = true
				for _, kw := range t.Keywords {
					truthy := false
					if b, ok := kw.Value.(*minipy.BoolLit); ok {
						truthy = b.V
					}
					switch kw.Name {
					case "compile":
						opts.Compile = truthy
					case "dump":
						opts.Dump = truthy
					case "debug":
						opts.Debug = truthy
					case "cache", "force", "options":
						// Accepted for interface compatibility; the Go
						// pipeline recompiles per run, so caching
						// options have no effect.
					}
				}
				continue
			}
		}
		rest = append(rest, d)
	}
	return opts, found, rest
}

// fnCtx carries per-function transformation state.
type fnCtx struct {
	fd    *minipy.FuncDef
	scope *minipy.ScopeInfo // scope of the function being transformed
	// threadprivate names declared in this function.
	threadprivate map[string]bool
	// loopVar is the active ordered-loop variable, when inside a
	// loop with the ordered clause.
	loopVar string
}

func (tr *transformer) transformFunction(fd *minipy.FuncDef, opts FuncOptions) error {
	ctx := &fnCtx{
		fd:            fd,
		scope:         minipy.AnalyzeScope(fd.Params, fd.Body),
		threadprivate: make(map[string]bool),
	}
	body, err := tr.block(ctx, fd.Body)
	if err != nil {
		return err
	}
	fd.Body = body
	return nil
}

// block transforms a statement list, expanding directives.
func (tr *transformer) block(ctx *fnCtx, body []minipy.Stmt) ([]minipy.Stmt, error) {
	var out []minipy.Stmt
	for _, s := range body {
		repl, err := tr.oneStmt(ctx, s)
		if err != nil {
			return nil, err
		}
		out = append(out, repl...)
	}
	if len(out) == 0 {
		out = []minipy.Stmt{&minipy.Pass{}}
	}
	return out, nil
}

func (tr *transformer) oneStmt(ctx *fnCtx, s minipy.Stmt) ([]minipy.Stmt, error) {
	switch t := s.(type) {
	case *minipy.With:
		if d, ok := withDirective(t); ok {
			dir, err := directive.Parse(d)
			if err != nil {
				return nil, errAt(t.NodePos(), "%v", err)
			}
			if dir.IsStandalone() {
				return nil, errAt(t.NodePos(),
					"directive %q does not take a block; call omp(%q) as a statement", dir.Name, d)
			}
			return tr.construct(ctx, dir, t)
		}
		// Ordinary with statement: transform its body.
		inner, err := tr.block(ctx, t.Body)
		if err != nil {
			return nil, err
		}
		t.Body = inner
		return []minipy.Stmt{t}, nil
	case *minipy.ExprStmt:
		if d, ok := callDirective(t.X); ok {
			dir, err := directive.Parse(d)
			if err != nil {
				return nil, errAt(t.NodePos(), "%v", err)
			}
			if !dir.IsStandalone() {
				return nil, errAt(t.NodePos(),
					"directive %q requires a structured block: use 'with omp(%q):'", dir.Name, d)
			}
			return tr.standalone(ctx, dir, t.NodePos())
		}
		return []minipy.Stmt{t}, nil
	case *minipy.If:
		var err error
		t.Body, err = tr.block(ctx, t.Body)
		if err != nil {
			return nil, err
		}
		if t.Else != nil {
			t.Else, err = tr.block(ctx, t.Else)
			if err != nil {
				return nil, err
			}
		}
		return []minipy.Stmt{t}, nil
	case *minipy.While:
		var err error
		t.Body, err = tr.block(ctx, t.Body)
		if err != nil {
			return nil, err
		}
		return []minipy.Stmt{t}, nil
	case *minipy.For:
		var err error
		t.Body, err = tr.block(ctx, t.Body)
		if err != nil {
			return nil, err
		}
		return []minipy.Stmt{t}, nil
	case *minipy.Try:
		var err error
		t.Body, err = tr.block(ctx, t.Body)
		if err != nil {
			return nil, err
		}
		for i := range t.Handlers {
			t.Handlers[i].Body, err = tr.block(ctx, t.Handlers[i].Body)
			if err != nil {
				return nil, err
			}
		}
		if t.Final != nil {
			t.Final, err = tr.block(ctx, t.Final)
			if err != nil {
				return nil, err
			}
		}
		return []minipy.Stmt{t}, nil
	case *minipy.FuncDef:
		// Nested function: its body is a new scope; directives inside
		// it are transformed against that scope.
		inner := &fnCtx{
			fd:            t,
			scope:         minipy.AnalyzeScope(t.Params, t.Body),
			threadprivate: ctx.threadprivate,
		}
		body, err := tr.block(inner, t.Body)
		if err != nil {
			return nil, err
		}
		t.Body = body
		return []minipy.Stmt{t}, nil
	}
	return []minipy.Stmt{s}, nil
}

// withDirective recognizes `with omp("...")`.
func withDirective(w *minipy.With) (string, bool) {
	if len(w.Items) != 1 || w.Items[0].Vars != nil {
		return "", false
	}
	return callDirective(w.Items[0].Context)
}

// callDirective recognizes omp("...") calls.
func callDirective(e minipy.Expr) (string, bool) {
	call, ok := e.(*minipy.Call)
	if !ok {
		return "", false
	}
	name, ok := call.Fn.(*minipy.Name)
	if !ok || name.ID != "omp" || len(call.Args) != 1 || len(call.Keywords) != 0 {
		return "", false
	}
	s, ok := call.Args[0].(*minipy.StrLit)
	if !ok {
		return "", false
	}
	return s.V, true
}

// standalone expands a standalone directive into runtime calls.
func (tr *transformer) standalone(ctx *fnCtx, dir *directive.Directive, pos minipy.Position) ([]minipy.Stmt, error) {
	switch dir.Name {
	case directive.NameBarrier:
		return []minipy.Stmt{exprStmt(ompCall("barrier"))}, nil
	case directive.NameTaskwait:
		return []minipy.Stmt{exprStmt(ompCall("task_wait"))}, nil
	case directive.NameFlush:
		return []minipy.Stmt{exprStmt(ompCall("flush"))}, nil
	case directive.NameThreadprivate:
		if cl := dir.Find(directive.ClauseFlushList); cl != nil {
			for _, v := range cl.Vars {
				ctx.threadprivate[v] = true
			}
		}
		return nil, nil // purely declarative
	case directive.NameDeclareReduction:
		return tr.declareReduction(dir, pos)
	}
	return nil, errAt(pos, "directive %q cannot be used standalone", dir.Name)
}

func (tr *transformer) declareReduction(dir *directive.Directive, pos minipy.Position) ([]minipy.Stmt, error) {
	dr := dir.DeclaredReduction
	combiner, err := minipy.ParseExprString(dr.Combiner)
	if err != nil {
		return nil, errAt(pos, "invalid declare reduction combiner %q: %v", dr.Combiner, err)
	}
	combLambda := &minipy.Lambda{
		Params: []minipy.Param{{Name: "omp_out"}, {Name: "omp_in"}},
		Body:   combiner,
	}
	var initArg minipy.Expr = &minipy.NoneLit{}
	if dr.Initializer != "" {
		initExpr, err := minipy.ParseExprString(dr.Initializer)
		if err != nil {
			return nil, errAt(pos, "invalid declare reduction initializer %q: %v", dr.Initializer, err)
		}
		initArg = &minipy.Lambda{Body: initExpr}
	}
	call := ompCall("declare_reduction", strLit(dr.Ident), combLambda, initArg)
	return []minipy.Stmt{exprStmt(call)}, nil
}

// ---- AST construction helpers ----

func nameRef(id string) *minipy.Name          { return &minipy.Name{ID: id} }
func strLit(s string) *minipy.StrLit          { return &minipy.StrLit{V: s} }
func intLit(n int64) *minipy.IntLit           { return &minipy.IntLit{V: n} }
func boolLit(b bool) *minipy.BoolLit          { return &minipy.BoolLit{V: b} }
func exprStmt(e minipy.Expr) *minipy.ExprStmt { return &minipy.ExprStmt{X: e} }
func noneLit() *minipy.NoneLit                { return &minipy.NoneLit{} }

// ompCall builds __omp.fn(args...).
func ompCall(fn string, args ...minipy.Expr) *minipy.Call {
	return &minipy.Call{
		Fn:   &minipy.Attribute{X: nameRef("__omp"), Name: fn},
		Args: args,
	}
}

func assignStmt(target string, v minipy.Expr) *minipy.Assign {
	return &minipy.Assign{Targets: []minipy.Expr{nameRef(target)}, Value: v}
}

func parseClauseExpr(cl *directive.Clause, pos minipy.Position) (minipy.Expr, error) {
	e, err := minipy.ParseExprString(cl.Expr)
	if err != nil {
		return nil, errAt(pos, "invalid %s clause expression %q: %v", cl.Kind, cl.Expr, err)
	}
	return e, nil
}

func intFromString(s string) (int64, bool) {
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}
