package transform

import (
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/minipy"
)

// These tests target the transformer's less-travelled paths:
// directives nested under ordinary control flow, renaming through
// every expression form, and the remaining clause combinations.

func TestDirectiveInsideControlFlow(t *testing.T) {
	// Directives under if/while/for/try/with all transform.
	expectOMP(t, `
from omp4py import *

@omp
def f(flag):
    total = 0
    if flag:
        with omp("parallel for reduction(+:total) num_threads(2)"):
            for i in range(10):
                total += i
    else:
        total = -1
    k = 0
    while k < 2:
        with omp("parallel num_threads(2)"):
            with omp("critical"):
                total += 1
        k += 1
    for r in range(2):
        with omp("parallel num_threads(2)"):
            with omp("single"):
                total += 10
    try:
        with omp("parallel num_threads(2)"):
            with omp("master"):
                total += 100
    finally:
        total += 1000
    return total

print(f(True))
`, "1169\n") // 45 + 2*2 + 2*10 + 100 + 1000
}

func TestDirectiveInsideOrdinaryWith(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    total = [0]
    ctx = "not a directive"
    with ctx as alias:
        with omp("parallel num_threads(2)"):
            with omp("atomic"):
                total[0] += 1
    return (total[0], alias)

print(f())
`, "(2, 'not a directive')\n")
}

func TestNestedFunctionWithDirectives(t *testing.T) {
	// A nested (non-decorated) def inside a decorated function also
	// has its directives transformed against its own scope.
	expectOMP(t, `
from omp4py import *

@omp
def outer():
    def inner(n):
        acc = 0
        with omp("parallel for reduction(+:acc) num_threads(2)"):
            for i in range(n):
                acc += i
        return acc
    return inner(10) + inner(5)

print(outer())
`, "55\n")
}

func TestInnerDecoratedFunction(t *testing.T) {
	// @omp on a nested function inside an undecorated one.
	expectOMP(t, `
from omp4py import *

def factory():
    @omp
    def worker(n):
        s = 0
        with omp("parallel for reduction(+:s) num_threads(2)"):
            for i in range(n):
                s += 1
        return s
    return worker

w = factory()
print(w(30))
`, "30\n")
}

func TestRenameThroughAllExpressionForms(t *testing.T) {
	// The private rename must reach names inside every expression
	// kind: subscripts, slices, calls, dict/set/tuple literals,
	// lambdas, conditionals, comparisons.
	expectOMP(t, `
from omp4py import *

@omp
def f():
    x = 5
    out = []
    with omp("parallel num_threads(1) firstprivate(x)"):
        a = [x, x * 2]
        d = {x: "v"}
        s = {x}
        t = (x, -x)
        cond = x if x > 0 else -x
        cmp = 0 < x < 10
        fn = lambda k=x: k + x
        sub = a[x - 5]
        sl = a[0:x - 3]
        with omp("critical"):
            out.append(a[1] + t[0] + cond + fn() + sub + sl[0])
        x = 99
    return (out[0], x)

print(f())
`, "(40, 5)\n")
}

func TestRenameShadowedByNestedDef(t *testing.T) {
	// A nested function whose parameter shadows a private name must
	// not have its body renamed.
	expectOMP(t, `
from omp4py import *

@omp
def f():
    x = 3
    res = [0]
    with omp("parallel num_threads(1) firstprivate(x)"):
        def g(x):
            return x * 100
        res[0] = g(2) + x
    return res[0]

print(f())
`, "203\n")
}

func TestSectionsWithDataClauses(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    acc = 0
    last = -1
    with omp("parallel num_threads(2)"):
        with omp("sections reduction(+:acc) lastprivate(last)"):
            with omp("section"):
                acc += 5
                last = 1
            with omp("section"):
                acc += 7
                last = 2
    return (acc, last)

print(f())
`, "(12, 2)\n")
}

func TestSectionsNowait(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    hits = [0, 0]
    with omp("parallel num_threads(2)"):
        with omp("sections nowait"):
            with omp("section"):
                hits[0] = 1
            with omp("section"):
                hits[1] = 1
        omp("barrier")
    return hits

print(f())
`, "[1, 1]\n")
}

func TestSingleNowaitAndPrivate(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    v = 10
    count = [0]
    with omp("parallel num_threads(3)"):
        with omp("single nowait private(v)"):
            v = 99
            with omp("atomic"):
                count[0] += 1
        omp("barrier")
    return (count[0], v)

print(f())
`, "(1, 10)\n")
}

func TestAtomicOnSubscript(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    cells = [0, 0]
    with omp("parallel num_threads(4)"):
        for r in range(50):
            with omp("atomic"):
                cells[0] += 1
            with omp("atomic update"):
                cells[1] = cells[1] + 2
    return cells

print(f())
`, "[200, 400]\n")
}

func TestCriticalExceptionStillReleases(t *testing.T) {
	// An exception inside a critical body must release the section
	// (the generated try/finally), so later entries do not deadlock.
	expectOMP(t, `
from omp4py import *

@omp
def f():
    hits = [0]
    with omp("parallel num_threads(2)"):
        try:
            with omp("critical(guard)"):
                raise ValueError("inside critical")
        except ValueError:
            pass
        with omp("critical(guard)"):
            hits[0] += 1
    return hits[0]

print(f())
`, "2\n")
}

func TestParallelForWithIfAndSchedule(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n, go):
    total = 0
    with omp("parallel for reduction(+:total) num_threads(4) if(go) schedule(guided, 2)"):
        for i in range(n):
            total += omp_get_num_threads()
    return total

print(f(10, False))
print(f(10, True) > 10)
`, "10\nTrue\n")
}

func TestMultipleReductionsOneClauseList(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    a = 0
    b = 0
    with omp("parallel for reduction(+:a, b) num_threads(2)"):
        for i in range(n):
            a += 1
            b += 2
    return (a, b)

print(f(50))
`, "(50, 100)\n")
}

func TestProductReduction(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    p = 1
    with omp("parallel for reduction(*:p) num_threads(3)"):
        for i in range(1, 11):
            p *= i
    return p

print(f())
`, "3628800\n")
}

func TestStandaloneFlushAndThreadprivateDecl(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    done = [0]
    with omp("parallel num_threads(2)"):
        with omp("atomic"):
            done[0] += 1
        omp("flush(done)")
    return done[0]

print(f())
`, "2\n")
}

func TestUnderscoreCombinedNameInTransform(t *testing.T) {
	// OpenMP 6.0 lexical convention through the whole pipeline.
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    s = 0
    with omp("parallel_for reduction(+:s); num_threads(2)"):
        for i in range(n):
            s += i
    return s

print(f(10))
`, "45\n")
}

func TestTransformedCodeReparses(t *testing.T) {
	// Unparse → reparse of a transformed module must succeed for a
	// program using every construct.
	src := `
from omp4py import *

@omp
def everything(n):
    omp("declare reduction(cat : omp_out + omp_in) initializer(omp_priv = 0)")
    total = 0
    last = -1
    tp = 1
    omp("threadprivate(tp)")
    with omp("parallel num_threads(2) copyin(tp) default(shared)"):
        with omp("for schedule(dynamic, 2) lastprivate(last) reduction(cat:total)"):
            for i in range(n):
                total += i
                last = i
        with omp("sections nowait"):
            with omp("section"):
                pass
            with omp("section"):
                pass
        omp("barrier")
        with omp("single copyprivate(tp)"):
            tp = 7
        with omp("master"):
            pass
        with omp("critical(zone)"):
            pass
        with omp("atomic"):
            total += 0
        with omp("task if(n > 100) final(n > 1000) untied mergeable firstprivate(n)"):
            pass
        omp("taskwait")
        omp("flush")
    return (total, last, tp)

print(everything(6))
`
	mod, err := minipy.Parse(src, "all.py")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Module(mod); err != nil {
		t.Fatal(err)
	}
	out := minipy.Unparse(mod)
	if _, err := minipy.Parse(out, "reparse.py"); err != nil {
		t.Fatalf("transformed module does not reparse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "task_submit") || !strings.Contains(out, "declare_reduction") {
		t.Fatalf("expected runtime calls in transformed output:\n%s", out)
	}
	// And it runs.
	got := runOMP(t, src)
	if got != "(15, 5, 1)\n" {
		t.Fatalf("output = %q", got)
	}
}
