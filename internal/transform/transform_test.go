package transform

import (
	"bytes"
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
)

// runOMP parses, transforms, and executes src, returning stdout.
func runOMP(t *testing.T, src string) string {
	t.Helper()
	return runOMPLayer(t, src, rt.LayerAtomic)
}

func runOMPLayer(t *testing.T, src string, layer rt.Layer) string {
	t.Helper()
	mod, err := minipy.Parse(src, "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Module(mod); err != nil {
		t.Fatalf("transform: %v", err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: layer,
		Getenv: func(string) string { return "" }})
	if err := in.RunModule(mod); err != nil {
		t.Fatalf("run: %v\ntransformed:\n%s", err, minipy.Unparse(mod))
	}
	return buf.String()
}

func transformErr(t *testing.T, src, wantSub string) {
	t.Helper()
	mod, err := minipy.Parse(src, "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Module(mod)
	if err == nil {
		t.Fatalf("transform succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func expectOMP(t *testing.T, src, want string) {
	t.Helper()
	got := runOMP(t, src)
	if got != want {
		t.Fatalf("output mismatch.\ngot:  %q\nwant: %q", got, want)
	}
}

// TestPiFigure1 runs the paper's flagship example end to end.
func TestPiFigure1(t *testing.T) {
	for _, layer := range []rt.Layer{rt.LayerMutex, rt.LayerAtomic} {
		src := `
from omp4py import *

@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w

v = pi(20000)
print(v > 3.14159 and v < 3.14160)
`
		got := runOMPLayer(t, src, layer)
		if got != "True\n" {
			t.Fatalf("layer %v: got %q", layer, got)
		}
	}
}

func TestParallelBasics(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    seen = [0] * 4
    with omp("parallel num_threads(4)"):
        seen[omp_get_thread_num()] = omp_get_num_threads()
    return seen

print(f())
`, "[4, 4, 4, 4]\n")
}

func TestParallelIfFalse(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(cond):
    sizes = []
    with omp("parallel num_threads(4) if(cond)"):
        with omp("critical"):
            sizes.append(omp_get_num_threads())
    return sizes

print(f(False))
print(len(f(True)))
`, "[1]\n4\n")
}

func TestSharedVsPrivateDefaults(t *testing.T) {
	// Variables defined before the block are shared; variables first
	// bound inside are thread-private (§III-C).
	expectOMP(t, `
from omp4py import *

@omp
def f():
    total = 0
    with omp("parallel num_threads(4)"):
        mine = omp_get_thread_num() + 1
        with omp("critical"):
            total += mine
    return total

print(f())
`, "10\n")
}

func TestPrivateClause(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    x = 100
    with omp("parallel num_threads(4) private(x)"):
        x = omp_get_thread_num()
    return x

print(f())
`, "100\n") // private copies are discarded
}

func TestFirstprivateClause(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    x = 7
    out = [0] * 3
    with omp("parallel num_threads(3) firstprivate(x)"):
        x = x * 10 + omp_get_thread_num()
        out[omp_get_thread_num()] = x
    return (x, sorted(out))

print(f())
`, "(7, [70, 71, 72])\n")
}

func TestReductionOperators(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def sums(n):
    s = 0
    p = 1
    mx = 0
    mn = 10 ** 9
    with omp("parallel for reduction(+:s) reduction(max:mx) reduction(min:mn) num_threads(4)"):
        for i in range(1, n + 1):
            s += i
            mx = max(mx, i)
            mn = min(mn, i)
    return (s, mx, mn)

print(sums(100))
`, "(5050, 100, 1)\n")
	expectOMP(t, `
from omp4py import *

@omp
def logic(n):
    allpos = True
    anyzero = False
    with omp("parallel for reduction(&&:allpos) reduction(||:anyzero) num_threads(4)"):
        for i in range(n):
            allpos = allpos and (i >= 0)
            anyzero = anyzero or (i == 0)
    return (allpos, anyzero)

print(logic(50))
`, "(True, True)\n")
	expectOMP(t, `
from omp4py import *

@omp
def bits(n):
    o = 0
    x = 0
    a = -1
    with omp("parallel for reduction(|:o) reduction(^:x) reduction(&:a) num_threads(2)"):
        for i in range(n):
            o = o | i
            x = x ^ i
            a = a & (i | 240)
    return (o, x, a)

print(bits(16))
`, "(15, 0, 240)\n")
}

func TestDeclareReduction(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    omp("declare reduction(addmul : omp_out + omp_in) initializer(omp_priv = 0)")
    acc = 0
    with omp("parallel for reduction(addmul:acc) num_threads(4)"):
        for i in range(n):
            acc = acc + i
    return acc

print(f(100))
`, "4950\n")
}

func TestScheduleClauses(t *testing.T) {
	for _, sched := range []string{
		"schedule(static)", "schedule(static, 3)", "schedule(dynamic)",
		"schedule(dynamic, 5)", "schedule(guided)", "schedule(guided, 2)",
		"schedule(auto)", "schedule(runtime)",
	} {
		src := `
from omp4py import *

@omp
def f(n):
    hits = [0] * n
    with omp("parallel for num_threads(4) ` + sched + `"):
        for i in range(n):
            hits[i] = hits[i] + 1
    return (sum(hits), min(hits))

print(f(100))
`
		got := runOMP(t, src)
		if got != "(100, 1)\n" {
			t.Fatalf("%s: got %q", sched, got)
		}
	}
}

func TestForNonUnitStep(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    total = 0
    with omp("parallel for reduction(+:total) num_threads(3) schedule(dynamic, 2)"):
        for i in range(1, 20, 3):
            total += i
    return total

print(f())
`, "70\n") // 1+4+7+10+13+16+19
}

func TestCollapse(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    total = 0
    with omp("parallel for collapse(2) reduction(+:total) num_threads(4) schedule(dynamic, 3)"):
        for i in range(5):
            for j in range(7):
                total += i * 100 + j
    return total

print(f())
`, "7105\n") // sum over i<5,j<7 of 100i+j = 100*7*10 + 5*21
}

func TestLastprivate(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    last = -1
    with omp("parallel num_threads(4)"):
        with omp("for lastprivate(last) schedule(dynamic, 3)"):
            for i in range(n):
                last = i * 2
    return last

print(f(50))
`, "98\n")
}

func TestOrphanedForInsideParallel(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    total = 0
    with omp("parallel num_threads(4)"):
        with omp("for reduction(+:total)"):
            for i in range(n):
                total += 1
    return total

print(f(1000))
`, "1000\n")
}

func TestNowaitLoops(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    a = 0
    b = 0
    with omp("parallel num_threads(4)"):
        with omp("for reduction(+:a) nowait"):
            for i in range(n):
                a += 1
        with omp("for reduction(+:b)"):
            for i in range(n):
                b += 1
    return (a, b)

print(f(200))
`, "(200, 200)\n")
}

func TestSingleAndBarrier(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    count = [0]
    with omp("parallel num_threads(6)"):
        with omp("single"):
            count[0] = count[0] + 1
        omp("barrier")
        with omp("single nowait"):
            count[0] = count[0] + 10
    return count[0]

print(f())
`, "11\n")
}

func TestSingleCopyprivate(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    results = [0] * 4
    v = 0
    with omp("parallel num_threads(4) private(v)"):
        with omp("single copyprivate(v)"):
            v = 42
        results[omp_get_thread_num()] = v
    return results

print(f())
`, "[42, 42, 42, 42]\n")
}

func TestMaster(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    hits = []
    with omp("parallel num_threads(4)"):
        with omp("master"):
            hits.append(omp_get_thread_num())
    return hits

print(f())
`, "[0]\n")
}

func TestSections(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    out = [0, 0, 0]
    with omp("parallel num_threads(2)"):
        with omp("sections"):
            with omp("section"):
                out[0] = 1
            with omp("section"):
                out[1] = 2
            with omp("section"):
                out[2] = 3
    return out

print(f())
`, "[1, 2, 3]\n")
}

func TestParallelSections(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    a = 0
    b = 0
    with omp("parallel sections num_threads(2)"):
        with omp("section"):
            a = 10
        with omp("section"):
            b = 20
    return a + b

print(f())
`, "30\n")
}

func TestCriticalNamedAndUnnamed(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    c = 0
    with omp("parallel num_threads(8)"):
        for i in range(100):
            with omp("critical(bump)"):
                c += 1
    return c

print(f())
`, "800\n")
}

func TestAtomic(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    x = 0
    with omp("parallel num_threads(8)"):
        for i in range(100):
            with omp("atomic"):
                x += 1
    return x

print(f())
`, "800\n")
}

func TestAtomicRequiresSingleUpdate(t *testing.T) {
	transformErr(t, `
@omp
def f():
    with omp("parallel"):
        with omp("atomic"):
            x = 1
            y = 2
`, "exactly one update statement")
	transformErr(t, `
@omp
def f():
    with omp("parallel"):
        with omp("atomic"):
            print("no")
`, "assignment")
}

func TestOrdered(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    out = []
    with omp("parallel for ordered num_threads(4) schedule(dynamic, 2)"):
        for i in range(n):
            v = i * i
            with omp("ordered"):
                out.append(i)
    return out

print(f(16))
`, "[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]\n")
}

func TestOrderedOutsideLoopRejected(t *testing.T) {
	transformErr(t, `
@omp
def f():
    with omp("parallel"):
        with omp("ordered"):
            pass
`, "ordered region must be closely nested")
}

func TestTasksFibonacci(t *testing.T) {
	// The paper's Fig. 4, with the if clause cutting task granularity.
	expectOMP(t, `
from omp4py import *

@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task if(n > 8)"):
        fib1 = fibonacci(n - 1)
    with omp("task if(n > 8)"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2

@omp
def run(n):
    result = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            result[0] = fibonacci(n)
    return result[0]

print(run(15))
`, "610\n")
}

func TestTaskFirstprivate(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    out = []
    with omp("parallel num_threads(2)"):
        with omp("single"):
            i = 0
            while i < 4:
                with omp("task firstprivate(i)"):
                    with omp("critical"):
                        out.append(i)
                i += 1
    return sorted(out)

print(f())
`, "[0, 1, 2, 3]\n")
}

func TestDefaultNone(t *testing.T) {
	transformErr(t, `
@omp
def f():
    x = 1
    with omp("parallel default(none)"):
        y = x + 1
`, "default(none)")
	// Listing the variable fixes it.
	runOMP(t, `
from omp4py import *

@omp
def f():
    x = 1
    with omp("parallel default(none) shared(x) num_threads(2)"):
        y = x + 1
f()
`)
}

func TestDefaultFirstprivate(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    x = 5
    with omp("parallel num_threads(3) default(firstprivate)"):
        x = x + omp_get_thread_num()
    return x

print(f())
`, "5\n")
}

func TestThreadprivateCopyin(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    tp = 9
    omp("threadprivate(tp)")
    seen = [0] * 3
    with omp("parallel num_threads(3) copyin(tp)"):
        seen[omp_get_thread_num()] = tp + omp_get_thread_num()
    return sorted(seen)

print(f())
`, "[9, 10, 11]\n")
}

func TestBarrierFlushTaskwaitStandalone(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    phase = [0] * 4
    ok = [True]
    with omp("parallel num_threads(4)"):
        phase[omp_get_thread_num()] = 1
        omp("barrier")
        omp("flush")
        if sum(phase) != 4:
            ok[0] = False
    return ok[0]

print(f())
`, "True\n")
}

func TestDirectiveSyntaxErrors(t *testing.T) {
	transformErr(t, `
@omp
def f():
    with omp("paralel"):
        pass
`, "unknown directive")
	transformErr(t, `
@omp
def f():
    with omp("barrier"):
        pass
`, "does not take a block")
	transformErr(t, `
@omp
def f():
    omp("parallel")
`, "requires a structured block")
	transformErr(t, `
@omp
def f():
    with omp("parallel for"):
        x = 1
`, "for loop")
	transformErr(t, `
@omp
def f():
    with omp("parallel for"):
        for x in [1, 2]:
            pass
`, "range")
	transformErr(t, `
@omp
def f():
    with omp("sections"):
        x = 1
`, "section")
	transformErr(t, `
@omp
def f():
    with omp("section"):
        pass
`, "only valid inside a sections construct")
}

func TestUndecoratedFunctionsUntouched(t *testing.T) {
	// Without @omp, directives are inert (§III-A) and code runs
	// sequentially.
	expectOMP(t, `
from omp4py import *

def f(n):
    total = 0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += i
    return total

print(f(10))
`, "45\n")
}

func TestDumpOption(t *testing.T) {
	src := `
from omp4py import *

@omp(dump=True)
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
`
	mod, err := minipy.Parse(src, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Module(mod)
	if err != nil {
		t.Fatal(err)
	}
	dump, ok := res.Dumps["pi"]
	if !ok {
		t.Fatal("no dump recorded")
	}
	for _, want := range []string{
		"def __omp_parallel_", "nonlocal pi_value", "__omp.parallel_run",
		"__omp.for_bounds", "__omp.for_next", "__omp.mutex_lock",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q.\ndump:\n%s", want, dump)
		}
	}
	// The dumped source must itself parse.
	if _, err := minipy.Parse(dump, "dump.py"); err != nil {
		t.Fatalf("dump does not re-parse: %v\n%s", err, dump)
	}
	if res.Functions[0] != "pi" {
		t.Fatalf("functions = %v", res.Functions)
	}
}

func TestCompileFlagRecorded(t *testing.T) {
	src := `
@omp(compile=True)
def f():
    with omp("parallel"):
        pass

@omp
def g():
    with omp("parallel"):
        pass
`
	mod, err := minipy.Parse(src, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Module(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compile["f"] || res.Compile["g"] {
		t.Fatalf("compile flags: %v", res.Compile)
	}
}

func TestNestedParallelRegions(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    omp_set_nested(True)
    total = [0]
    with omp("parallel num_threads(2)"):
        with omp("parallel num_threads(2)"):
            with omp("critical"):
                total[0] = total[0] + 1
    return total[0]

print(f())
`, "4\n")
}

func TestExceptionInsideParallelSurfaces(t *testing.T) {
	mod, err := minipy.Parse(`
from omp4py import *

@omp
def f():
    with omp("parallel num_threads(2)"):
        raise ValueError("inside region")

f()
`, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Module(mod); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	rerr := in.RunModule(mod)
	if rerr == nil || !strings.Contains(rerr.Error(), "inside region") {
		t.Fatalf("error = %v", rerr)
	}
}

func TestGILModeRunsTransformedCode(t *testing.T) {
	src := `
from omp4py import *

@omp
def f(n):
    total = 0
    with omp("parallel for reduction(+:total) num_threads(4)"):
        for i in range(n):
            total += i
    return total

print(f(1000))
`
	mod, err := minipy.Parse(src, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Module(mod); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, GIL: true, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	if err := in.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "499500\n" {
		t.Fatalf("GIL run output %q", buf.String())
	}
}
