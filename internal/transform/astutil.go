package transform

import "github.com/omp4go/omp4go/internal/minipy"

// renameInStmts rewrites Name nodes per the renames map, in place.
// It does not descend into nested FuncDef/Lambda bodies whose
// parameters rebind a renamed name (shadowing).
func renameInStmts(body []minipy.Stmt, renames map[string]string) {
	for _, s := range body {
		renameInStmt(s, renames)
	}
}

func renameInStmt(s minipy.Stmt, renames map[string]string) {
	switch t := s.(type) {
	case *minipy.ExprStmt:
		renameInExpr(t.X, renames)
	case *minipy.Assign:
		for _, tgt := range t.Targets {
			renameInExpr(tgt, renames)
		}
		renameInExpr(t.Value, renames)
	case *minipy.AugAssign:
		renameInExpr(t.Target, renames)
		renameInExpr(t.Value, renames)
	case *minipy.AnnAssign:
		renameInExpr(t.Target, renames)
		if t.Value != nil {
			renameInExpr(t.Value, renames)
		}
	case *minipy.Return:
		if t.Value != nil {
			renameInExpr(t.Value, renames)
		}
	case *minipy.If:
		renameInExpr(t.Cond, renames)
		renameInStmts(t.Body, renames)
		renameInStmts(t.Else, renames)
	case *minipy.While:
		renameInExpr(t.Cond, renames)
		renameInStmts(t.Body, renames)
	case *minipy.For:
		renameInExpr(t.Target, renames)
		renameInExpr(t.Iter, renames)
		renameInStmts(t.Body, renames)
	case *minipy.With:
		for i := range t.Items {
			renameInExpr(t.Items[i].Context, renames)
			if t.Items[i].Vars != nil {
				renameInExpr(t.Items[i].Vars, renames)
			}
		}
		renameInStmts(t.Body, renames)
	case *minipy.Try:
		renameInStmts(t.Body, renames)
		for i := range t.Handlers {
			if t.Handlers[i].Type != nil {
				renameInExpr(t.Handlers[i].Type, renames)
			}
			renameInStmts(t.Handlers[i].Body, renames)
		}
		renameInStmts(t.Final, renames)
	case *minipy.Raise:
		if t.Exc != nil {
			renameInExpr(t.Exc, renames)
		}
	case *minipy.Assert:
		renameInExpr(t.Test, renames)
		if t.Msg != nil {
			renameInExpr(t.Msg, renames)
		}
	case *minipy.Del:
		for _, tgt := range t.Targets {
			renameInExpr(tgt, renames)
		}
	case *minipy.FuncDef:
		sub := shadowed(renames, paramNames(t.Params))
		if len(sub) > 0 {
			renameInStmts(t.Body, sub)
		}
	case *minipy.Nonlocal:
		for i, n := range t.Names {
			if nn, ok := renames[n]; ok {
				t.Names[i] = nn
			}
		}
	case *minipy.Global:
		for i, n := range t.Names {
			if nn, ok := renames[n]; ok {
				t.Names[i] = nn
			}
		}
	}
}

func renameInExpr(e minipy.Expr, renames map[string]string) {
	switch t := e.(type) {
	case *minipy.Name:
		if nn, ok := renames[t.ID]; ok {
			t.ID = nn
		}
	case *minipy.BinOp:
		renameInExpr(t.L, renames)
		renameInExpr(t.R, renames)
	case *minipy.BoolOp:
		for _, v := range t.Values {
			renameInExpr(v, renames)
		}
	case *minipy.UnaryOp:
		renameInExpr(t.X, renames)
	case *minipy.Compare:
		renameInExpr(t.L, renames)
		for _, r := range t.Rights {
			renameInExpr(r, renames)
		}
	case *minipy.Call:
		renameInExpr(t.Fn, renames)
		for _, a := range t.Args {
			renameInExpr(a, renames)
		}
		for i := range t.Keywords {
			renameInExpr(t.Keywords[i].Value, renames)
		}
	case *minipy.Attribute:
		renameInExpr(t.X, renames)
	case *minipy.Index:
		renameInExpr(t.X, renames)
		renameInExpr(t.I, renames)
	case *minipy.SliceExpr:
		renameInExpr(t.X, renames)
		if t.Lo != nil {
			renameInExpr(t.Lo, renames)
		}
		if t.Hi != nil {
			renameInExpr(t.Hi, renames)
		}
		if t.Step != nil {
			renameInExpr(t.Step, renames)
		}
	case *minipy.ListLit:
		for _, el := range t.Elts {
			renameInExpr(el, renames)
		}
	case *minipy.TupleLit:
		for _, el := range t.Elts {
			renameInExpr(el, renames)
		}
	case *minipy.DictLit:
		for i := range t.Keys {
			renameInExpr(t.Keys[i], renames)
			renameInExpr(t.Vals[i], renames)
		}
	case *minipy.SetLit:
		for _, el := range t.Elts {
			renameInExpr(el, renames)
		}
	case *minipy.IfExp:
		renameInExpr(t.Cond, renames)
		renameInExpr(t.Then, renames)
		renameInExpr(t.Else, renames)
	case *minipy.Lambda:
		sub := shadowed(renames, paramNames(t.Params))
		if len(sub) > 0 {
			renameInExpr(t.Body, sub)
		}
	}
}

func paramNames(params []minipy.Param) map[string]bool {
	out := make(map[string]bool, len(params))
	for _, p := range params {
		out[p.Name] = true
	}
	return out
}

// shadowed removes renames whose names are rebound by params.
func shadowed(renames map[string]string, bound map[string]bool) map[string]string {
	out := make(map[string]string, len(renames))
	for k, v := range renames {
		if !bound[k] {
			out[k] = v
		}
	}
	return out
}

// collectNames gathers every identifier referenced (read or written)
// in the statements, excluding nested function bodies' shadowed
// names. Used by default(none) checking and default(private).
func collectNames(body []minipy.Stmt) map[string]bool {
	out := make(map[string]bool)
	var walkS func(minipy.Stmt)
	var walkE func(minipy.Expr)
	walkE = func(e minipy.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *minipy.Name:
			out[t.ID] = true
		case *minipy.BinOp:
			walkE(t.L)
			walkE(t.R)
		case *minipy.BoolOp:
			for _, v := range t.Values {
				walkE(v)
			}
		case *minipy.UnaryOp:
			walkE(t.X)
		case *minipy.Compare:
			walkE(t.L)
			for _, r := range t.Rights {
				walkE(r)
			}
		case *minipy.Call:
			walkE(t.Fn)
			for _, a := range t.Args {
				walkE(a)
			}
			for i := range t.Keywords {
				walkE(t.Keywords[i].Value)
			}
		case *minipy.Attribute:
			walkE(t.X)
		case *minipy.Index:
			walkE(t.X)
			walkE(t.I)
		case *minipy.SliceExpr:
			walkE(t.X)
			walkE(t.Lo)
			walkE(t.Hi)
			walkE(t.Step)
		case *minipy.ListLit:
			for _, el := range t.Elts {
				walkE(el)
			}
		case *minipy.TupleLit:
			for _, el := range t.Elts {
				walkE(el)
			}
		case *minipy.DictLit:
			for i := range t.Keys {
				walkE(t.Keys[i])
				walkE(t.Vals[i])
			}
		case *minipy.SetLit:
			for _, el := range t.Elts {
				walkE(el)
			}
		case *minipy.IfExp:
			walkE(t.Cond)
			walkE(t.Then)
			walkE(t.Else)
		case *minipy.Lambda:
			walkE(t.Body)
		}
	}
	walkS = func(s minipy.Stmt) {
		switch t := s.(type) {
		case *minipy.ExprStmt:
			walkE(t.X)
		case *minipy.Assign:
			for _, tgt := range t.Targets {
				walkE(tgt)
			}
			walkE(t.Value)
		case *minipy.AugAssign:
			walkE(t.Target)
			walkE(t.Value)
		case *minipy.AnnAssign:
			walkE(t.Target)
			walkE(t.Value)
		case *minipy.Return:
			walkE(t.Value)
		case *minipy.If:
			walkE(t.Cond)
			for _, b := range t.Body {
				walkS(b)
			}
			for _, b := range t.Else {
				walkS(b)
			}
		case *minipy.While:
			walkE(t.Cond)
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.For:
			walkE(t.Target)
			walkE(t.Iter)
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.With:
			for _, it := range t.Items {
				walkE(it.Context)
				walkE(it.Vars)
			}
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.Try:
			for _, b := range t.Body {
				walkS(b)
			}
			for _, h := range t.Handlers {
				walkE(h.Type)
				for _, b := range h.Body {
					walkS(b)
				}
			}
			for _, b := range t.Final {
				walkS(b)
			}
		case *minipy.Raise:
			walkE(t.Exc)
		case *minipy.Assert:
			walkE(t.Test)
			walkE(t.Msg)
		case *minipy.Del:
			for _, tgt := range t.Targets {
				walkE(tgt)
			}
		case *minipy.FuncDef:
			for _, b := range t.Body {
				walkS(b)
			}
		}
	}
	for _, s := range body {
		walkS(s)
	}
	return out
}
