package transform

import (
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/minipy"
)

// TestTaskDependChainEndToEnd: an inout chain serializes tasks in
// submission order with no critical section — the MiniPy surface of
// the dependence tracker.
func TestTaskDependChainEndToEnd(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    out = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            i = 0
            while i < n:
                with omp("task depend(inout: q) firstprivate(i)"):
                    out.append(i)
                i += 1
            omp("taskwait")
    return out

print(f(12))
`, "[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]\n")
}

// TestTaskDependSubscriptsEndToEnd: subscripted dependence operands
// build per-element chains — a 1-D wavefront computing prefix sums,
// where each cell reads its left neighbour.
func TestTaskDependSubscriptsEndToEnd(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    acc = [0] * n
    with omp("parallel num_threads(4)"):
        with omp("single"):
            i = 1
            while i < n:
                with omp("task depend(in: acc[i-1]) depend(out: acc[i]) firstprivate(i)"):
                    acc[i] = acc[i - 1] + i
                i += 1
            omp("taskwait")
    return acc

print(f(8))
`, "[0, 1, 3, 6, 10, 15, 21, 28]\n")
}

// TestTaskloopEndToEnd: taskloop chunks the loop into tasks and its
// implicit taskgroup completes them before the construct exits.
func TestTaskloopEndToEnd(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    total = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("taskloop grainsize(16)"):
                for i in range(n):
                    with omp("critical"):
                        total[0] += i
    return total[0]

print(f(100))
`, "4950\n")
}

// TestTaskloopNumTasksNogroup: nogroup skips the implicit taskgroup;
// the explicit taskwait observes chunk completion instead.
func TestTaskloopNumTasksNogroup(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f(n):
    total = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("taskloop num_tasks(4) nogroup"):
                for i in range(n):
                    with omp("critical"):
                        total[0] += 1
            omp("taskwait")
    return total[0]

print(f(64))
`, "64\n")
}

// TestTaskloopStepAndBounds: a non-unit step survives the lowering's
// linear-index chunking.
func TestTaskloopStepAndBounds(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    out = []
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("taskloop grainsize(2)"):
                for i in range(10, 0, -2):
                    with omp("critical"):
                        out.append(i)
    return sorted(out)

print(f())
`, "[2, 4, 6, 8, 10]\n")
}

// TestTaskgroupEndToEnd: taskgroup waits for descendants, so the
// grandchild's write is visible right after the with block.
func TestTaskgroupEndToEnd(t *testing.T) {
	expectOMP(t, `
from omp4py import *

@omp
def f():
    box = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("taskgroup"):
                with omp("task"):
                    with omp("task"):
                        box[0] = 41
            box[0] += 1
    return box[0]

print(f())
`, "42\n")
}

// TestTaskloopLowering inspects the generated MiniPy: the construct
// becomes a chunk function plus one __omp.taskloop runtime call, and
// captured bounds are evaluated before the function definition.
func TestTaskloopLowering(t *testing.T) {
	mod, err := minipy.Parse(`
@omp
def f(n):
    with omp("taskloop grainsize(4)"):
        for i in range(n):
            pass
`, "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Module(mod); err != nil {
		t.Fatalf("transform: %v", err)
	}
	src := minipy.Unparse(mod)
	if !strings.Contains(src, "__omp.taskloop(") {
		t.Fatalf("no __omp.taskloop call in lowering:\n%s", src)
	}
	if strings.Contains(src, "__omp.taskgroup_begin") {
		t.Fatalf("taskloop lowering should rely on the runtime's implicit group:\n%s", src)
	}
}

// TestTaskgroupLowering: the construct becomes begin + try/finally
// end so a raising body still closes the group.
func TestTaskgroupLowering(t *testing.T) {
	mod, err := minipy.Parse(`
@omp
def f():
    with omp("taskgroup"):
        pass
`, "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Module(mod); err != nil {
		t.Fatalf("transform: %v", err)
	}
	src := minipy.Unparse(mod)
	if !strings.Contains(src, "__omp.taskgroup_begin()") ||
		!strings.Contains(src, "__omp.taskgroup_end()") {
		t.Fatalf("taskgroup lowering missing begin/end:\n%s", src)
	}
	if !strings.Contains(src, "finally") {
		t.Fatalf("taskgroup end not in a finally block:\n%s", src)
	}
}

// TestTaskloopRequiresForLoop: the construct only accepts a single
// range-for body.
func TestTaskloopRequiresForLoop(t *testing.T) {
	transformErr(t, `
@omp
def f():
    with omp("taskloop"):
        x = 1
`, "taskloop")
}
