package compile

import (
	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
)

// This file is the runtime-aware kernel back end for worksharing
// loops. The transform lowers
//
//	with omp("for schedule(static, c)"): for i in range(a, b, s): body
//
// to the bridge protocol
//
//	__omp_bounds_N = __omp.for_bounds(a, b, s)
//	__omp.for_init(__omp_bounds_N, "static", c, False, nowait)
//	while __omp.for_next(__omp_bounds_N):
//	    for i in range(__omp_bounds_N[0], __omp_bounds_N[1], __omp_bounds_N[2]):
//	        body
//	...reduction merges...
//	__omp.for_end(__omp_bounds_N)
//
// which costs one boxed __omp call per claimed chunk plus boxed
// bounds-tuple indexing per chunk. When the schedule is static and
// compile-time known, every chunk a member will claim is a pure
// function of (thread num, team size, triplet, chunk): the kernel
// replaces the for_bounds/for_init/while prefix with one rt.ForInit
// (region accounting, EvLoopBegin, misuse detection unchanged) and an
// rt.StaticIter walked entirely in native Go. Reduction merges and
// for_end still compile from the lowered form, so barrier ordering
// and the merge critical section are untouched; the member's
// LoopBounds value is stored into the bounds variable so for_end's
// bridge call (one per loop) finds it.
//
// While the kernel body runs, the storage of lists that the body only
// ever subscripts is hoisted once into a kernelEnv of raw
// []float64/[]int64 slices, the analogue of Cython acquiring a
// memoryview before a nogil loop: element access compiles to a single
// bounds-checked slice index (texpr.go's hoisted paths). The same
// assumption Cython makes — the buffer is not reallocated or
// re-typed mid-loop — applies; names that appear in any non-subscript
// position (append calls, rebinding, argument passing) are never
// hoisted, and a storage-kind mismatch at entry simply leaves the
// slot nil so every access falls back to the boxed protocol.

// kernelEnv is the per-execution hoisted storage. Slot j holds the
// unboxed backing of the j-th hoisted list in whichever slice matches
// its storage kind (the other stays nil; generic-kind lists leave
// both nil).
type kernelEnv struct {
	f [][]float64
	i [][]int64
}

// hoistIndex reports the kernelEnv slot of x when x is a plain name
// the active kernel hoists.
func (sc *scopeCtx) hoistIndex(x minipy.Expr) (int, bool) {
	if sc.hoist == nil {
		return 0, false
	}
	n, ok := x.(*minipy.Name)
	if !ok {
		return 0, false
	}
	hi, ok := sc.hoist[n.ID]
	return hi, ok
}

// ompCallTo matches e as a call to the generated-code runtime entry
// point __omp.fn. The __omp binding must resolve to the module global
// the interpreter predefines — a shadowed __omp is not the runtime.
func ompCallTo(sc *scopeCtx, e minipy.Expr, fn string) (*minipy.Call, bool) {
	call, ok := e.(*minipy.Call)
	if !ok {
		return nil, false
	}
	attr, ok := call.Fn.(*minipy.Attribute)
	if !ok || attr.Name != fn {
		return nil, false
	}
	base, ok := attr.X.(*minipy.Name)
	if !ok || base.ID != "__omp" {
		return nil, false
	}
	if sc.resolve("__omp").kind != refGlobal {
		return nil, false
	}
	return call, true
}

// boundsIndex matches e as bVar[k].
func boundsIndex(e minipy.Expr, bVar string, k int64) bool {
	idx, ok := e.(*minipy.Index)
	if !ok {
		return false
	}
	n, ok := idx.X.(*minipy.Name)
	if !ok || n.ID != bVar {
		return false
	}
	lit, ok := idx.I.(*minipy.IntLit)
	return ok && lit.V == k
}

// tryCompileKernel recognizes the lowered worksharing prefix starting
// at body[k] and compiles it to a static kernel. It returns (nil, 0,
// nil) when the shape does not match or is ineligible — dynamic,
// guided or runtime schedules, non-literal chunks, ordered loops,
// collapsed nests, lastprivate (which needs the bridge's IsLast
// bookkeeping), or a loop variable without an unboxed int slot — in
// which case the caller compiles the bridge lowering unchanged.
func (c *compiler) tryCompileKernel(sc *scopeCtx, body []minipy.Stmt, k int) (stmtFn, int, error) {
	if k+2 >= len(body) {
		return nil, 0, nil
	}

	// body[k]: __omp_bounds_N = __omp.for_bounds(start, stop, step).
	// Exactly one triplet — collapse(>1) emits 3*n args and iterates
	// linearized indices through unravel, which stays on the bridge.
	as, ok := body[k].(*minipy.Assign)
	if !ok || len(as.Targets) != 1 {
		return nil, 0, nil
	}
	bName, ok := as.Targets[0].(*minipy.Name)
	if !ok {
		return nil, 0, nil
	}
	boundsCall, ok := ompCallTo(sc, as.Value, "for_bounds")
	if !ok || len(boundsCall.Args) != 3 {
		return nil, 0, nil
	}

	// body[k+1]: __omp.for_init(b, "static", chunk, False, nowait)
	// with the schedule fully known at compile time.
	initStmt, ok := body[k+1].(*minipy.ExprStmt)
	if !ok {
		return nil, 0, nil
	}
	initCall, ok := ompCallTo(sc, initStmt.X, "for_init")
	if !ok || len(initCall.Args) != 5 {
		return nil, 0, nil
	}
	if n, ok := initCall.Args[0].(*minipy.Name); !ok || n.ID != bName.ID {
		return nil, 0, nil
	}
	kind, ok := initCall.Args[1].(*minipy.StrLit)
	if !ok || kind.V != "static" {
		return nil, 0, nil
	}
	var chunk int64 // 0 = block partition (the schedule default)
	switch ch := initCall.Args[2].(type) {
	case *minipy.NoneLit:
		chunk = 0
	case *minipy.IntLit:
		if ch.V < 1 {
			return nil, 0, nil // let the bridge raise the ValueError
		}
		chunk = ch.V
	default:
		return nil, 0, nil // runtime-valued chunk
	}
	ordered, ok := initCall.Args[3].(*minipy.BoolLit)
	if !ok || ordered.V {
		return nil, 0, nil
	}
	nowaitLit, ok := initCall.Args[4].(*minipy.BoolLit)
	if !ok {
		return nil, 0, nil
	}

	// body[k+2]: while __omp.for_next(b): for lv in range(b[0], b[1], b[2]).
	wh, ok := body[k+2].(*minipy.While)
	if !ok || len(wh.Body) != 1 {
		return nil, 0, nil
	}
	nextCall, ok := ompCallTo(sc, wh.Cond, "for_next")
	if !ok || len(nextCall.Args) != 1 {
		return nil, 0, nil
	}
	if n, ok := nextCall.Args[0].(*minipy.Name); !ok || n.ID != bName.ID {
		return nil, 0, nil
	}
	loop, ok := wh.Body[0].(*minipy.For)
	if !ok {
		return nil, 0, nil
	}
	lv, ok := loop.Target.(*minipy.Name)
	if !ok {
		return nil, 0, nil
	}
	rangeCall, ok := loop.Iter.(*minipy.Call)
	if !ok || !isRangeCall(loop.Iter) || len(rangeCall.Args) != 3 {
		return nil, 0, nil
	}
	for j := int64(0); j < 3; j++ {
		if !boundsIndex(rangeCall.Args[j], bName.ID, j) {
			return nil, 0, nil
		}
	}
	lvRef := sc.resolve(lv.ID)
	if lvRef.kind != refISlot {
		// A privatized (None-initialized) or captured loop variable is
		// boxed; the unboxed kernel loop needs a native int slot.
		return nil, 0, nil
	}
	lvIdx := lvRef.idx

	// The remainder of the block may reference the bounds variable
	// only as the for_end argument. A for_last reference (lastprivate)
	// needs per-chunk IsLast bookkeeping the kernel does not maintain.
	foundEnd := false
	for _, s := range body[k+3:] {
		if es, ok := s.(*minipy.ExprStmt); ok {
			if endCall, ok := ompCallTo(sc, es.X, "for_end"); ok && len(endCall.Args) == 1 {
				if n, ok := endCall.Args[0].(*minipy.Name); ok && n.ID == bName.ID {
					foundEnd = true
					continue
				}
			}
		}
		if collectNamesStmt(s)[bName.ID] {
			return nil, 0, nil
		}
	}
	if !foundEnd {
		return nil, 0, nil
	}

	// Eligible: compile the pieces.
	pos := as.NodePos()
	startf, err := c.compileInt(sc, boundsCall.Args[0])
	if err != nil {
		return nil, 0, err
	}
	stopf, err := c.compileInt(sc, boundsCall.Args[1])
	if err != nil {
		return nil, 0, err
	}
	stepf, err := c.compileInt(sc, boundsCall.Args[2])
	if err != nil {
		return nil, 0, err
	}
	storeB := sc.store(bName.ID)

	// Hoist analysis + body compilation under the hoist table. The
	// loop body never sees the bounds variable (checked above), so the
	// table is scoped to exactly this compilation.
	hoistNames := kernelHoistCandidates(sc, loop.Body)
	hoist := make(map[string]int, len(hoistNames))
	loaders := make([]exprFn, len(hoistNames))
	for j, name := range hoistNames {
		hoist[name] = j
		loaders[j] = sc.load(name, pos)
	}
	prevHoist := sc.hoist
	sc.hoist = hoist
	bodyf, err := c.compileStmts(sc, loop.Body)
	sc.hoist = prevHoist
	if err != nil {
		return nil, 0, err
	}

	nowait := nowaitLit.V
	nHoist := len(hoistNames)
	kf := func(fr *Frame) (flow, error) {
		start, err := startf(fr)
		if err != nil {
			return flowNext, err
		}
		stop, err := stopf(fr)
		if err != nil {
			return flowNext, err
		}
		step, err := stepf(fr)
		if err != nil {
			return flowNext, err
		}
		if step == 0 {
			return flowNext, interp.NewPyError("ValueError",
				"range() arg 3 must not be zero", pos)
		}
		b := rt.ForBounds(rt.Triplet{Start: start, End: stop, Step: step})
		// The bounds value feeds the (still bridge-compiled) for_end.
		if err := storeB(fr, &interp.BoundsVal{B: b}); err != nil {
			return flowNext, err
		}
		ctx := fr.th.Ctx()
		err = ctx.ForInit(b, rt.ForOpts{
			SchedSet: true,
			Sched:    rt.Schedule{Kind: directive.ScheduleStatic, Chunk: chunk},
			NoWait:   nowait,
		})
		if err != nil {
			return flowNext, interp.WrapRuntimeError(err)
		}
		it := rt.StaticBounds(ctx.GetThreadNum(), ctx.GetNumThreads(),
			start, stop, step, chunk)
		ctx.KernelEnter(it.Total(), chunk)

		env := &kernelEnv{}
		if nHoist > 0 {
			env.f = make([][]float64, nHoist)
			env.i = make([][]int64, nHoist)
			for j, load := range loaders {
				v, err := load(fr)
				if err != nil {
					continue // unbound: body access raises on the slow path
				}
				if l, ok := v.(*interp.List); ok {
					if fs, ok := l.FloatData(); ok {
						env.f[j] = fs
					} else if is, ok := l.IntData(); ok {
						env.i[j] = is
					}
				}
			}
		}
		fr.kern = env
		defer func() { fr.kern = nil }()

		for it.Next() {
		chunkLoop:
			for lin := it.Lo; lin < it.Hi; lin++ {
				fr.i[lvIdx] = start + lin*step
				fl, err := bodyf(fr)
				if err != nil {
					return flowNext, err
				}
				switch fl {
				case flowBreak:
					// Bridge semantics: break leaves the chunk's range
					// loop; the while claims the next chunk.
					break chunkLoop
				case flowReturn:
					// Mirrors the bridge, where flowReturn skips the
					// remaining lowered statements including for_end.
					return flowReturn, nil
				}
			}
		}
		return flowNext, nil
	}
	return kf, 3, nil
}

// kernelHoistCandidates returns the names whose list storage the
// kernel may hoist: plain names that appear in the loop body only as
// the base of a subscript (never rebound, never passed, never a
// method-call receiver — so never appended to or re-typed by this
// body) and that do not already occupy an unboxed scalar slot.
func kernelHoistCandidates(sc *scopeCtx, body []minipy.Stmt) []string {
	indexed := map[string]bool{}
	other := map[string]bool{}
	var walkE func(e minipy.Expr)
	markAll := func(names map[string]bool) {
		for n := range names {
			other[n] = true
		}
	}
	walkE = func(e minipy.Expr) {
		if e == nil {
			return
		}
		if idx, ok := e.(*minipy.Index); ok {
			if n, ok := idx.X.(*minipy.Name); ok {
				indexed[n.ID] = true
				walkE(idx.I)
				return
			}
		}
		if _, ok := e.(*minipy.Lambda); ok {
			markAll(collectNamesExpr(e))
			return
		}
		if n, ok := e.(*minipy.Name); ok {
			other[n.ID] = true
			return
		}
		// Recurse one level through the remaining expression kinds;
		// collectNamesExpr would lose the index-base distinction, so
		// reuse the AST walk shape from nestedReferences.
		switch t := e.(type) {
		case *minipy.BinOp:
			walkE(t.L)
			walkE(t.R)
		case *minipy.BoolOp:
			for _, v := range t.Values {
				walkE(v)
			}
		case *minipy.UnaryOp:
			walkE(t.X)
		case *minipy.Compare:
			walkE(t.L)
			for _, r := range t.Rights {
				walkE(r)
			}
		case *minipy.Call:
			walkE(t.Fn)
			for _, a := range t.Args {
				walkE(a)
			}
			for i := range t.Keywords {
				walkE(t.Keywords[i].Value)
			}
		case *minipy.Attribute:
			walkE(t.X)
		case *minipy.Index:
			walkE(t.X)
			walkE(t.I)
		case *minipy.SliceExpr:
			walkE(t.X)
			walkE(t.Lo)
			walkE(t.Hi)
			walkE(t.Step)
		case *minipy.ListLit:
			for _, el := range t.Elts {
				walkE(el)
			}
		case *minipy.TupleLit:
			for _, el := range t.Elts {
				walkE(el)
			}
		case *minipy.DictLit:
			for i := range t.Keys {
				walkE(t.Keys[i])
				walkE(t.Vals[i])
			}
		case *minipy.SetLit:
			for _, el := range t.Elts {
				walkE(el)
			}
		case *minipy.IfExp:
			walkE(t.Cond)
			walkE(t.Then)
			walkE(t.Else)
		}
	}
	var walkS func(s minipy.Stmt)
	walkS = func(s minipy.Stmt) {
		switch t := s.(type) {
		case *minipy.ExprStmt:
			walkE(t.X)
		case *minipy.Assign:
			for _, tgt := range t.Targets {
				walkE(tgt)
			}
			walkE(t.Value)
		case *minipy.AugAssign:
			walkE(t.Target)
			walkE(t.Value)
		case *minipy.AnnAssign:
			walkE(t.Target)
			walkE(t.Value)
		case *minipy.Return:
			walkE(t.Value)
		case *minipy.If:
			walkE(t.Cond)
			for _, b := range t.Body {
				walkS(b)
			}
			for _, b := range t.Else {
				walkS(b)
			}
		case *minipy.While:
			walkE(t.Cond)
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.For:
			walkE(t.Target)
			walkE(t.Iter)
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.With:
			for _, it := range t.Items {
				walkE(it.Context)
				walkE(it.Vars)
			}
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.Try:
			for _, b := range t.Body {
				walkS(b)
			}
			for _, h := range t.Handlers {
				if h.Name != "" {
					other[h.Name] = true
				}
				for _, b := range h.Body {
					walkS(b)
				}
			}
			for _, b := range t.Final {
				walkS(b)
			}
		case *minipy.Raise:
			walkE(t.Exc)
		case *minipy.Assert:
			walkE(t.Test)
			walkE(t.Msg)
		case *minipy.Del:
			// del a[i] mutates; del a rebinds. Either disqualifies.
			markAll(collectNamesStmt(s))
		case *minipy.FuncDef:
			// A nested function may do anything with its captures.
			markAll(collectNamesStmt(s))
		case *minipy.Global:
			for _, n := range t.Names {
				other[n] = true
			}
		case *minipy.Nonlocal:
			for _, n := range t.Names {
				other[n] = true
			}
		}
	}
	for _, s := range body {
		walkS(s)
	}
	var names []string
	for n := range indexed {
		if other[n] {
			continue
		}
		switch sc.resolve(n).kind {
		case refFSlot, refISlot:
			continue // unboxed scalars are not lists
		}
		names = append(names, n)
	}
	// Deterministic slot order (map iteration is randomized).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
