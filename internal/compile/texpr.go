package compile

import (
	"math"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
)

// This file is the CompiledDT back end: expressions whose inferred
// type is int or float compile to unboxed closure chains, the
// counterpart of the machine code Cython emits once variables carry
// int/float annotations (§III-F, §IV).

var nativeMath1 = map[string]func(float64) float64{
	"sqrt": math.Sqrt, "sin": math.Sin, "cos": math.Cos, "tan": math.Tan,
	"exp": math.Exp, "log": math.Log, "log2": math.Log2, "log10": math.Log10,
	"fabs": math.Abs, "atan": math.Atan, "asin": math.Asin, "acos": math.Acos,
}

var nativeMath2 = map[string]func(float64, float64) float64{
	"pow": math.Pow, "atan2": math.Atan2, "fmod": math.Mod,
}

// isArith reports whether op is numeric-only in a float context.
func isArith(op string) bool {
	switch op {
	case "+", "-", "*", "/", "//", "%", "**":
		return true
	}
	return false
}

// compileFloat compiles e into an unboxed float computation; any
// subexpression it cannot specialize falls back to the boxed path
// with a coercion at the boundary.
func (c *compiler) compileFloat(sc *scopeCtx, e minipy.Expr) (floatFn, error) {
	switch t := e.(type) {
	case *minipy.FloatLit:
		v := t.V
		return func(fr *Frame) (float64, error) { return v, nil }, nil
	case *minipy.IntLit:
		v := float64(t.V)
		return func(fr *Frame) (float64, error) { return v, nil }, nil
	case *minipy.Name:
		ref := sc.resolve(t.ID)
		switch ref.kind {
		case refFSlot:
			idx := ref.idx
			return func(fr *Frame) (float64, error) { return fr.f[idx], nil }, nil
		case refISlot:
			idx := ref.idx
			return func(fr *Frame) (float64, error) { return float64(fr.i[idx]), nil }, nil
		}
	case *minipy.UnaryOp:
		if t.Op == "-" || t.Op == "+" {
			xf, err := c.compileFloat(sc, t.X)
			if err != nil {
				return nil, err
			}
			if t.Op == "+" {
				return xf, nil
			}
			return func(fr *Frame) (float64, error) {
				x, err := xf(fr)
				return -x, err
			}, nil
		}
	case *minipy.BinOp:
		// The context demands a float, so both operands compile on
		// the float path regardless of their inferred types: operands
		// the specializer cannot prove numeric fall back to boxed
		// evaluation plus a coercion inside their own compileFloat.
		// This is the annotation-trusting semantics of Cython's cdef:
		// a list element flowing into float arithmetic had better be
		// a number. It is what lets a[i]*x[j] reach the unboxed
		// FloatAt fast path.
		if isArith(t.Op) {
			lf, err := c.compileFloat(sc, t.L)
			if err != nil {
				return nil, err
			}
			rf, err := c.compileFloat(sc, t.R)
			if err != nil {
				return nil, err
			}
			pos := t.NodePos()
			switch t.Op {
			case "+":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l + r, err
				}, nil
			case "-":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l - r, err
				}, nil
			case "*":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l * r, err
				}, nil
			case "/":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r == 0 {
						return 0, interp.NewPyError("ZeroDivisionError", "float division by zero", pos)
					}
					return l / r, nil
				}, nil
			case "//":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r == 0 {
						return 0, interp.NewPyError("ZeroDivisionError", "float floor division by zero", pos)
					}
					return math.Floor(l / r), nil
				}, nil
			case "%":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r == 0 {
						return 0, interp.NewPyError("ZeroDivisionError", "float modulo", pos)
					}
					m := math.Mod(l, r)
					if m != 0 && ((m < 0) != (r < 0)) {
						m += r
					}
					return m, nil
				}, nil
			case "**":
				return func(fr *Frame) (float64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					return math.Pow(l, r), nil
				}, nil
			}
		}
	case *minipy.Call:
		// math.<fn>(x) with a guard that the callee really is the
		// math module (compiled code binds it early, like Cython).
		if attr, ok := t.Fn.(*minipy.Attribute); ok {
			if base, ok := attr.X.(*minipy.Name); ok {
				if f1, ok := nativeMath1[attr.Name]; ok && len(t.Args) == 1 {
					loadMod := sc.load(base.ID, t.NodePos())
					xf, err := c.compileFloat(sc, t.Args[0])
					if err != nil {
						return nil, err
					}
					fname := attr.Name
					pos := t.NodePos()
					return func(fr *Frame) (float64, error) {
						mv, err := loadMod(fr)
						if err != nil {
							return 0, err
						}
						if m, ok := mv.(*interp.Module); ok && m.Name == "math" {
							x, err := xf(fr)
							if err != nil {
								return 0, err
							}
							r := f1(x)
							if math.IsNaN(r) && !math.IsNaN(x) {
								return 0, interp.NewPyError("ValueError", "math domain error", pos)
							}
							return r, nil
						}
						return c.genericFloatCall(fr, mv, fname, xf, pos)
					}, nil
				}
				if f2, ok := nativeMath2[attr.Name]; ok && len(t.Args) == 2 {
					loadMod := sc.load(base.ID, t.NodePos())
					af, err := c.compileFloat(sc, t.Args[0])
					if err != nil {
						return nil, err
					}
					bf, err := c.compileFloat(sc, t.Args[1])
					if err != nil {
						return nil, err
					}
					pos := t.NodePos()
					fname := attr.Name
					return func(fr *Frame) (float64, error) {
						mv, err := loadMod(fr)
						if err != nil {
							return 0, err
						}
						if m, ok := mv.(*interp.Module); ok && m.Name == "math" {
							a, err := af(fr)
							if err != nil {
								return 0, err
							}
							b, err := bf(fr)
							if err != nil {
								return 0, err
							}
							return f2(a, b), nil
						}
						// Fall back via the boxed protocol.
						fn, err := fr.th.GetAttr(mv, fname, pos)
						if err != nil {
							return 0, err
						}
						a, err := af(fr)
						if err != nil {
							return 0, err
						}
						b, err := bf(fr)
						if err != nil {
							return 0, err
						}
						v, err := fr.th.Call(fn, []interp.Value{a, b}, pos)
						if err != nil {
							return 0, err
						}
						return coerceFloat(v, pos)
					}, nil
				}
			}
		}
		// float(x), abs/min/max handled by inference falling through
		// to the generic path below.
	case *minipy.Index:
		// Unboxed read from a float-specialized list.
		xf, err := c.compileExprBoxed(sc, t.X)
		if err != nil {
			return nil, err
		}
		idxf, err := c.compileInt(sc, t.I)
		if err != nil {
			// Non-integer index: generic fallback.
			break
		}
		pos := t.NodePos()
		if hi, ok := sc.hoistIndex(t.X); ok {
			// Kernel-hoisted list: one bounds-checked slice read. The
			// base is a plain name (side-effect free), so index-first
			// evaluation is unobservable; negative indices, unhoisted
			// storage and kind mismatches fall through to the boxed
			// protocol below (a nil slice fails the uint compare).
			return func(fr *Frame) (float64, error) {
				iv, err := idxf(fr)
				if err != nil {
					return 0, err
				}
				if k := fr.kern; k != nil {
					if s := k.f[hi]; uint64(iv) < uint64(len(s)) {
						return s[uint64(iv)], nil
					}
				}
				xv, err := xf(fr)
				if err != nil {
					return 0, err
				}
				if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
					if f, ok := l.FloatAt(int(iv)); ok {
						return f, nil
					}
				}
				v, err := fr.th.GetItem(xv, iv, pos)
				if err != nil {
					return 0, err
				}
				return coerceFloat(v, pos)
			}, nil
		}
		return func(fr *Frame) (float64, error) {
			xv, err := xf(fr)
			if err != nil {
				return 0, err
			}
			iv, err := idxf(fr)
			if err != nil {
				return 0, err
			}
			if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
				if f, ok := l.FloatAt(int(iv)); ok {
					return f, nil
				}
			}
			v, err := fr.th.GetItem(xv, iv, pos)
			if err != nil {
				return 0, err
			}
			return coerceFloat(v, pos)
		}, nil
	case *minipy.IfExp:
		condf, err := c.compileCond(sc, t.Cond)
		if err != nil {
			return nil, err
		}
		thenf, err := c.compileFloat(sc, t.Then)
		if err != nil {
			return nil, err
		}
		elsef, err := c.compileFloat(sc, t.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (float64, error) {
			ok, err := condf(fr)
			if err != nil {
				return 0, err
			}
			if ok {
				return thenf(fr)
			}
			return elsef(fr)
		}, nil
	}
	// Generic fallback with coercion.
	ef, err := c.compileExprBoxed(sc, e)
	if err != nil {
		return nil, err
	}
	pos := e.NodePos()
	return func(fr *Frame) (float64, error) {
		v, err := ef(fr)
		if err != nil {
			return 0, err
		}
		return coerceFloat(v, pos)
	}, nil
}

func (c *compiler) genericFloatCall(fr *Frame, mod interp.Value, fname string, xf floatFn, pos minipy.Position) (float64, error) {
	fn, err := fr.th.GetAttr(mod, fname, pos)
	if err != nil {
		return 0, err
	}
	x, err := xf(fr)
	if err != nil {
		return 0, err
	}
	v, err := fr.th.Call(fn, []interp.Value{x}, pos)
	if err != nil {
		return 0, err
	}
	return coerceFloat(v, pos)
}

func coerceFloat(v interp.Value, pos minipy.Position) (float64, error) {
	if f, ok := interp.AsFloat(v); ok {
		return f, nil
	}
	return 0, interp.NewPyError("TypeError",
		"expected a number, got "+interp.TypeName(v), pos)
}

func coerceInt(v interp.Value, pos minipy.Position) (int64, error) {
	if n, ok := interp.AsInt(v); ok {
		return n, nil
	}
	return 0, interp.NewPyError("TypeError",
		"expected an int, got "+interp.TypeName(v), pos)
}

// compileInt compiles e into an unboxed int computation.
func (c *compiler) compileInt(sc *scopeCtx, e minipy.Expr) (intFn, error) {
	switch t := e.(type) {
	case *minipy.IntLit:
		v := t.V
		return func(fr *Frame) (int64, error) { return v, nil }, nil
	case *minipy.Name:
		ref := sc.resolve(t.ID)
		if ref.kind == refISlot {
			idx := ref.idx
			return func(fr *Frame) (int64, error) { return fr.i[idx], nil }, nil
		}
	case *minipy.UnaryOp:
		switch t.Op {
		case "-", "+", "~":
			xf, err := c.compileInt(sc, t.X)
			if err != nil {
				return nil, err
			}
			op := t.Op
			return func(fr *Frame) (int64, error) {
				x, err := xf(fr)
				if err != nil {
					return 0, err
				}
				switch op {
				case "-":
					return -x, nil
				case "~":
					return ^x, nil
				}
				return x, nil
			}, nil
		}
	case *minipy.BinOp:
		if exprType(t.L, sc.types) == tInt && exprType(t.R, sc.types) == tInt {
			lf, err := c.compileInt(sc, t.L)
			if err != nil {
				return nil, err
			}
			rf, err := c.compileInt(sc, t.R)
			if err != nil {
				return nil, err
			}
			pos := t.NodePos()
			switch t.Op {
			case "+":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l + r, err
				}, nil
			case "-":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l - r, err
				}, nil
			case "*":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l * r, err
				}, nil
			case "//":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r == 0 {
						return 0, interp.NewPyError("ZeroDivisionError",
							"integer division or modulo by zero", pos)
					}
					q := l / r
					if (l%r != 0) && ((l < 0) != (r < 0)) {
						q--
					}
					return q, nil
				}, nil
			case "%":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r == 0 {
						return 0, interp.NewPyError("ZeroDivisionError",
							"integer division or modulo by zero", pos)
					}
					m := l % r
					if m != 0 && ((l < 0) != (r < 0)) {
						m += r
					}
					return m, nil
				}, nil
			case "&":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l & r, err
				}, nil
			case "|":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l | r, err
				}, nil
			case "^":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					return l ^ r, err
				}, nil
			case "<<":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r < 0 {
						return 0, interp.NewPyError("ValueError", "negative shift count", pos)
					}
					return l << uint(r), nil
				}, nil
			case ">>":
				return func(fr *Frame) (int64, error) {
					l, err := lf(fr)
					if err != nil {
						return 0, err
					}
					r, err := rf(fr)
					if err != nil {
						return 0, err
					}
					if r < 0 {
						return 0, interp.NewPyError("ValueError", "negative shift count", pos)
					}
					return l >> uint(r), nil
				}, nil
			}
		}
	case *minipy.Call:
		if n, ok := t.Fn.(*minipy.Name); ok && n.ID == "len" && len(t.Args) == 1 {
			// len() of anything is a native int.
			lenArg, err := c.compileExprBoxed(sc, t.Args[0])
			if err != nil {
				return nil, err
			}
			pos := t.NodePos()
			return func(fr *Frame) (int64, error) {
				v, err := lenArg(fr)
				if err != nil {
					return 0, err
				}
				switch x := v.(type) {
				case *interp.List:
					return int64(x.Len()), nil
				case string:
					return int64(len(x)), nil
				case *interp.Tuple:
					return int64(len(x.Elts)), nil
				case *interp.Dict:
					return int64(x.Len()), nil
				case *interp.Set:
					return int64(x.Len()), nil
				case *interp.Range:
					return x.Len(), nil
				}
				return 0, interp.NewPyError("TypeError",
					"object of type '"+interp.TypeName(v)+"' has no len()", pos)
			}, nil
		}
	case *minipy.Index:
		xf, err := c.compileExprBoxed(sc, t.X)
		if err != nil {
			return nil, err
		}
		idxf, err := c.compileInt(sc, t.I)
		if err != nil {
			break
		}
		pos := t.NodePos()
		if hi, ok := sc.hoistIndex(t.X); ok {
			// Kernel-hoisted int list (see the float twin above).
			return func(fr *Frame) (int64, error) {
				iv, err := idxf(fr)
				if err != nil {
					return 0, err
				}
				if k := fr.kern; k != nil {
					if s := k.i[hi]; uint64(iv) < uint64(len(s)) {
						return s[uint64(iv)], nil
					}
				}
				xv, err := xf(fr)
				if err != nil {
					return 0, err
				}
				if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
					if n, ok := l.IntAt(int(iv)); ok {
						return n, nil
					}
				}
				v, err := fr.th.GetItem(xv, iv, pos)
				if err != nil {
					return 0, err
				}
				return coerceInt(v, pos)
			}, nil
		}
		return func(fr *Frame) (int64, error) {
			xv, err := xf(fr)
			if err != nil {
				return 0, err
			}
			iv, err := idxf(fr)
			if err != nil {
				return 0, err
			}
			if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
				if n, ok := l.IntAt(int(iv)); ok {
					return n, nil
				}
			}
			v, err := fr.th.GetItem(xv, iv, pos)
			if err != nil {
				return 0, err
			}
			return coerceInt(v, pos)
		}, nil
	case *minipy.IfExp:
		condf, err := c.compileCond(sc, t.Cond)
		if err != nil {
			return nil, err
		}
		thenf, err := c.compileInt(sc, t.Then)
		if err != nil {
			return nil, err
		}
		elsef, err := c.compileInt(sc, t.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (int64, error) {
			ok, err := condf(fr)
			if err != nil {
				return 0, err
			}
			if ok {
				return thenf(fr)
			}
			return elsef(fr)
		}, nil
	}
	ef, err := c.compileExprBoxed(sc, e)
	if err != nil {
		return nil, err
	}
	pos := e.NodePos()
	return func(fr *Frame) (int64, error) {
		v, err := ef(fr)
		if err != nil {
			return 0, err
		}
		return coerceInt(v, pos)
	}, nil
}

// compileCond compiles a boolean context. Typed numeric comparisons
// specialize to native compares.
func (c *compiler) compileCond(sc *scopeCtx, e minipy.Expr) (func(fr *Frame) (bool, error), error) {
	if c.opts.Typed {
		if t, ok := e.(*minipy.Compare); ok && len(t.Ops) == 1 {
			lt := exprType(t.L, sc.types)
			rt := exprType(t.Rights[0], sc.types)
			numeric := func(vt valType) bool { return vt == tInt || vt == tFloat }
			op := t.Ops[0]
			isOrderOp := false
			switch op {
			case "==", "!=", "<", "<=", ">", ">=":
				isOrderOp = true
			}
			// int-int comparisons stay exact on the int path; a float
			// (or one provably-numeric side, annotation-trusting)
			// takes the float path.
			if isOrderOp && lt == tInt && rt == tInt {
				lf, err := c.compileInt(sc, t.L)
				if err != nil {
					return nil, err
				}
				rf, err := c.compileInt(sc, t.Rights[0])
				if err != nil {
					return nil, err
				}
				return func(fr *Frame) (bool, error) {
					l, err := lf(fr)
					if err != nil {
						return false, err
					}
					r, err := rf(fr)
					if err != nil {
						return false, err
					}
					switch op {
					case "==":
						return l == r, nil
					case "!=":
						return l != r, nil
					case "<":
						return l < r, nil
					case "<=":
						return l <= r, nil
					case ">":
						return l > r, nil
					default:
						return l >= r, nil
					}
				}, nil
			}
			if isOrderOp && (numeric(lt) || numeric(rt)) {
				lf, err := c.compileFloat(sc, t.L)
				if err != nil {
					return nil, err
				}
				rf, err := c.compileFloat(sc, t.Rights[0])
				if err != nil {
					return nil, err
				}
				return func(fr *Frame) (bool, error) {
					l, err := lf(fr)
					if err != nil {
						return false, err
					}
					r, err := rf(fr)
					if err != nil {
						return false, err
					}
					switch op {
					case "==":
						return l == r, nil
					case "!=":
						return l != r, nil
					case "<":
						return l < r, nil
					case "<=":
						return l <= r, nil
					case ">":
						return l > r, nil
					default:
						return l >= r, nil
					}
				}, nil
			}
		}
		if t, ok := e.(*minipy.BoolOp); ok {
			subs := make([]func(fr *Frame) (bool, error), len(t.Values))
			for i, v := range t.Values {
				sub, err := c.compileCond(sc, v)
				if err != nil {
					return nil, err
				}
				subs[i] = sub
			}
			and := t.Op == "and"
			return func(fr *Frame) (bool, error) {
				for _, sub := range subs {
					ok, err := sub(fr)
					if err != nil {
						return false, err
					}
					if ok != and {
						return ok, nil
					}
				}
				return and, nil
			}, nil
		}
		if t, ok := e.(*minipy.UnaryOp); ok && t.Op == "not" {
			sub, err := c.compileCond(sc, t.X)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (bool, error) {
				ok, err := sub(fr)
				return !ok, err
			}, nil
		}
	}
	ef, err := c.compileExpr(sc, e)
	if err != nil {
		return nil, err
	}
	return func(fr *Frame) (bool, error) {
		v, err := ef(fr)
		if err != nil {
			return false, err
		}
		return interp.Truthy(v), nil
	}, nil
}

// compileTypedAssign handles "x = expr" and "a[i] = expr" when the
// target or value is type-specialized. ok=false means no fast path.
func (c *compiler) compileTypedAssign(sc *scopeCtx, target minipy.Expr, value minipy.Expr) (stmtFn, bool, error) {
	switch d := target.(type) {
	case *minipy.Name:
		ref := sc.resolve(d.ID)
		switch ref.kind {
		case refFSlot:
			vf, err := c.compileFloat(sc, value)
			if err != nil {
				return nil, true, err
			}
			idx := ref.idx
			return func(fr *Frame) (flow, error) {
				v, err := vf(fr)
				if err != nil {
					return flowNext, err
				}
				fr.f[idx] = v
				return flowNext, nil
			}, true, nil
		case refISlot:
			vf, err := c.compileInt(sc, value)
			if err != nil {
				return nil, true, err
			}
			idx := ref.idx
			return func(fr *Frame) (flow, error) {
				v, err := vf(fr)
				if err != nil {
					return flowNext, err
				}
				fr.i[idx] = v
				return flowNext, nil
			}, true, nil
		}
	case *minipy.Index:
		// a[i] = <float expr> with a float-specialized list.
		if exprType(value, sc.types) == tFloat {
			xf, err := c.compileExprBoxed(sc, d.X)
			if err != nil {
				return nil, true, err
			}
			idxf, err := c.compileInt(sc, d.I)
			if err != nil {
				return nil, false, nil
			}
			vf, err := c.compileFloat(sc, value)
			if err != nil {
				return nil, true, err
			}
			pos := d.NodePos()
			if hi, ok := sc.hoistIndex(d.X); ok {
				// Kernel-hoisted store: the base name is pure, so the
				// boxed base load is deferred to the fallback.
				return func(fr *Frame) (flow, error) {
					iv, err := idxf(fr)
					if err != nil {
						return flowNext, err
					}
					v, err := vf(fr)
					if err != nil {
						return flowNext, err
					}
					if k := fr.kern; k != nil {
						if s := k.f[hi]; uint64(iv) < uint64(len(s)) {
							s[uint64(iv)] = v
							return flowNext, nil
						}
					}
					xv, err := xf(fr)
					if err != nil {
						return flowNext, err
					}
					if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
						if l.SetFloatAt(int(iv), v) {
							return flowNext, nil
						}
					}
					return flowNext, fr.th.SetItem(xv, iv, v, pos)
				}, true, nil
			}
			return func(fr *Frame) (flow, error) {
				xv, err := xf(fr)
				if err != nil {
					return flowNext, err
				}
				iv, err := idxf(fr)
				if err != nil {
					return flowNext, err
				}
				v, err := vf(fr)
				if err != nil {
					return flowNext, err
				}
				if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
					if l.SetFloatAt(int(iv), v) {
						return flowNext, nil
					}
				}
				return flowNext, fr.th.SetItem(xv, iv, v, pos)
			}, true, nil
		}
		// a[i] = <int expr> on a kernel-hoisted list. Outside kernels
		// int element stores stay on the generic path (unchanged), but
		// inside one the hoisted []int64 write is the whole point.
		if hi, ok := sc.hoistIndex(d.X); ok && exprType(value, sc.types) == tInt {
			xf, err := c.compileExprBoxed(sc, d.X)
			if err != nil {
				return nil, true, err
			}
			idxf, err := c.compileInt(sc, d.I)
			if err != nil {
				return nil, false, nil
			}
			vf, err := c.compileInt(sc, value)
			if err != nil {
				return nil, true, err
			}
			pos := d.NodePos()
			return func(fr *Frame) (flow, error) {
				iv, err := idxf(fr)
				if err != nil {
					return flowNext, err
				}
				v, err := vf(fr)
				if err != nil {
					return flowNext, err
				}
				if k := fr.kern; k != nil {
					if s := k.i[hi]; uint64(iv) < uint64(len(s)) {
						s[uint64(iv)] = v
						return flowNext, nil
					}
				}
				xv, err := xf(fr)
				if err != nil {
					return flowNext, err
				}
				if l, ok := xv.(*interp.List); ok && iv >= 0 && iv < int64(l.Len()) {
					if l.SetIntAt(int(iv), v) {
						return flowNext, nil
					}
				}
				return flowNext, fr.th.SetItem(xv, iv, v, pos)
			}, true, nil
		}
	}
	return nil, false, nil
}

// compileTypedAugAssign handles "x op= expr" on typed slots.
func (c *compiler) compileTypedAugAssign(sc *scopeCtx, t *minipy.AugAssign) (stmtFn, bool, error) {
	n, ok := t.Target.(*minipy.Name)
	if !ok {
		// a[i] op= v expands to a typed read-modify-write when both
		// paths specialize; reuse the assign fast path via expansion.
		if idx, ok := t.Target.(*minipy.Index); ok && exprType(t.Value, sc.types) != tBoxed {
			expanded := &minipy.BinOp{Op: t.Op, L: idx, R: t.Value}
			return c.compileTypedAssign(sc, t.Target, expanded)
		}
		return nil, false, nil
	}
	ref := sc.resolve(n.ID)
	switch ref.kind {
	case refFSlot:
		rhs := &minipy.BinOp{Op: t.Op, L: n, R: t.Value}
		vf, err := c.compileFloat(sc, rhs)
		if err != nil {
			return nil, true, err
		}
		idx := ref.idx
		return func(fr *Frame) (flow, error) {
			v, err := vf(fr)
			if err != nil {
				return flowNext, err
			}
			fr.f[idx] = v
			return flowNext, nil
		}, true, nil
	case refISlot:
		// int //=, %= etc. stay int; += float would have inferred the
		// variable float instead.
		rhs := &minipy.BinOp{Op: t.Op, L: n, R: t.Value}
		if exprType(rhs, sc.types) != tInt {
			return nil, false, nil
		}
		vf, err := c.compileInt(sc, rhs)
		if err != nil {
			return nil, true, err
		}
		idx := ref.idx
		return func(fr *Frame) (flow, error) {
			v, err := vf(fr)
			if err != nil {
				return flowNext, err
			}
			fr.i[idx] = v
			return flowNext, nil
		}, true, nil
	}
	return nil, false, nil
}
