package compile

import (
	"errors"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
)

// compileFunc compiles one function body into a funcCode.
func (c *compiler) compileFunc(name string, params []minipy.Param, body []minipy.Stmt, parent *scopeCtx) (*funcCode, error) {
	sc := c.newScope(params, body, parent)
	bodyFn, err := c.compileStmts(sc, body)
	if err != nil {
		return nil, err
	}
	code := &funcCode{
		name:   name,
		params: append([]minipy.Param(nil), params...),
		nSlots: sc.nSlots,
		body:   bodyFn,
	}
	code.nCells = len(sc.cellOf)
	code.nF = len(sc.fOf)
	code.nI = len(sc.iOf)
	code.captures = sc.captures
	code.paramBind = make([]binding, len(params))
	for i, p := range params {
		ref := sc.resolve(p.Name)
		code.paramBind[i] = binding{kind: ref.kind, idx: ref.idx}
	}
	return code, nil
}

func (c *compiler) compileStmts(sc *scopeCtx, body []minipy.Stmt) (stmtFn, error) {
	fns := make([]stmtFn, 0, len(body))
	for k := 0; k < len(body); k++ {
		// Transform-lowered worksharing loops with a compile-time
		// static schedule compile to a runtime-aware kernel replacing
		// the bounds/init/while prefix (kernel.go); anything that
		// doesn't match falls through to statement-at-a-time
		// compilation of the interp-bridge lowering.
		if c.kernels {
			kf, consumed, err := c.tryCompileKernel(sc, body, k)
			if err != nil {
				return nil, err
			}
			if kf != nil {
				fns = append(fns, kf)
				k += consumed - 1
				continue
			}
		}
		f, err := c.compileStmt(sc, body[k])
		if err != nil {
			return nil, err
		}
		fns = append(fns, f)
	}
	if len(fns) == 1 {
		return fns[0], nil
	}
	return func(fr *Frame) (flow, error) {
		for _, f := range fns {
			fl, err := f(fr)
			if err != nil || fl != flowNext {
				return fl, err
			}
		}
		return flowNext, nil
	}, nil
}

func (c *compiler) compileStmt(sc *scopeCtx, s minipy.Stmt) (stmtFn, error) {
	switch t := s.(type) {
	case *minipy.ExprStmt:
		ef, err := c.compileExpr(sc, t.X)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (flow, error) {
			_, err := ef(fr)
			return flowNext, err
		}, nil
	case *minipy.Assign:
		return c.compileAssign(sc, t)
	case *minipy.AnnAssign:
		if t.Value == nil {
			return func(fr *Frame) (flow, error) { return flowNext, nil }, nil
		}
		return c.compileAssign(sc, &minipy.Assign{Targets: []minipy.Expr{t.Target}, Value: t.Value})
	case *minipy.AugAssign:
		return c.compileAugAssign(sc, t)
	case *minipy.Return:
		if t.Value == nil {
			return func(fr *Frame) (flow, error) {
				fr.ret = nil
				return flowReturn, nil
			}, nil
		}
		ef, err := c.compileExpr(sc, t.Value)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (flow, error) {
			v, err := ef(fr)
			if err != nil {
				return flowNext, err
			}
			fr.ret = v
			return flowReturn, nil
		}, nil
	case *minipy.Pass:
		return func(fr *Frame) (flow, error) { return flowNext, nil }, nil
	case *minipy.Break:
		return func(fr *Frame) (flow, error) { return flowBreak, nil }, nil
	case *minipy.Continue:
		return func(fr *Frame) (flow, error) { return flowContinue, nil }, nil
	case *minipy.Global, *minipy.Nonlocal:
		return func(fr *Frame) (flow, error) { return flowNext, nil }, nil
	case *minipy.If:
		condf, err := c.compileCond(sc, t.Cond)
		if err != nil {
			return nil, err
		}
		thenf, err := c.compileStmts(sc, t.Body)
		if err != nil {
			return nil, err
		}
		var elsef stmtFn
		if len(t.Else) > 0 {
			elsef, err = c.compileStmts(sc, t.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(fr *Frame) (flow, error) {
			ok, err := condf(fr)
			if err != nil {
				return flowNext, err
			}
			if ok {
				return thenf(fr)
			}
			if elsef != nil {
				return elsef(fr)
			}
			return flowNext, nil
		}, nil
	case *minipy.While:
		condf, err := c.compileCond(sc, t.Cond)
		if err != nil {
			return nil, err
		}
		bodyf, err := c.compileStmts(sc, t.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (flow, error) {
			for {
				ok, err := condf(fr)
				if err != nil {
					return flowNext, err
				}
				if !ok {
					return flowNext, nil
				}
				fl, err := bodyf(fr)
				if err != nil {
					return flowNext, err
				}
				switch fl {
				case flowBreak:
					return flowNext, nil
				case flowReturn:
					return flowReturn, nil
				}
			}
		}, nil
	case *minipy.For:
		return c.compileFor(sc, t)
	case *minipy.FuncDef:
		mk, err := c.compileClosure(sc, t.Name, t.Params, t.Body)
		if err != nil {
			return nil, err
		}
		store := sc.store(t.Name)
		if len(t.Decorators) > 0 {
			decFns, err := c.compileExprs(sc, t.Decorators)
			if err != nil {
				return nil, err
			}
			pos := t.NodePos()
			return func(fr *Frame) (flow, error) {
				v, err := mk(fr)
				if err != nil {
					return flowNext, err
				}
				for i := len(decFns) - 1; i >= 0; i-- {
					d, err := decFns[i](fr)
					if err != nil {
						return flowNext, err
					}
					v, err = fr.th.Call(d, []interp.Value{v}, pos)
					if err != nil {
						return flowNext, err
					}
				}
				return flowNext, store(fr, v)
			}, nil
		}
		return func(fr *Frame) (flow, error) {
			v, err := mk(fr)
			if err != nil {
				return flowNext, err
			}
			return flowNext, store(fr, v)
		}, nil
	case *minipy.With:
		// Untransformed with blocks are inert containers (§III-A).
		var setups []stmtFn
		for _, item := range t.Items {
			cf, err := c.compileExpr(sc, item.Context)
			if err != nil {
				return nil, err
			}
			var as func(fr *Frame, v interp.Value) error
			if item.Vars != nil {
				if n, ok := item.Vars.(*minipy.Name); ok {
					as = sc.store(n.ID)
				}
			}
			asFn := as
			setups = append(setups, func(fr *Frame) (flow, error) {
				v, err := cf(fr)
				if err != nil {
					return flowNext, err
				}
				if asFn != nil {
					return flowNext, asFn(fr, v)
				}
				return flowNext, nil
			})
		}
		bodyf, err := c.compileStmts(sc, t.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (flow, error) {
			for _, su := range setups {
				if _, err := su(fr); err != nil {
					return flowNext, err
				}
			}
			return bodyf(fr)
		}, nil
	case *minipy.Try:
		return c.compileTry(sc, t)
	case *minipy.Raise:
		if t.Exc == nil {
			return func(fr *Frame) (flow, error) {
				return flowNext, interp.NewPyError("RuntimeError",
					"no active exception to re-raise", t.NodePos())
			}, nil
		}
		ef, err := c.compileExpr(sc, t.Exc)
		if err != nil {
			return nil, err
		}
		pos := t.NodePos()
		return func(fr *Frame) (flow, error) {
			v, err := ef(fr)
			if err != nil {
				return flowNext, err
			}
			return flowNext, interp.RaiseValue(v, pos)
		}, nil
	case *minipy.Assert:
		testf, err := c.compileCond(sc, t.Test)
		if err != nil {
			return nil, err
		}
		var msgf exprFn
		if t.Msg != nil {
			msgf, err = c.compileExpr(sc, t.Msg)
			if err != nil {
				return nil, err
			}
		}
		pos := t.NodePos()
		return func(fr *Frame) (flow, error) {
			ok, err := testf(fr)
			if err != nil {
				return flowNext, err
			}
			if ok {
				return flowNext, nil
			}
			msg := ""
			if msgf != nil {
				mv, err := msgf(fr)
				if err != nil {
					return flowNext, err
				}
				msg = interp.Str(mv)
			}
			return flowNext, interp.NewPyError("AssertionError", msg, pos)
		}, nil
	case *minipy.Import:
		names := t.Names
		stores := make([]func(fr *Frame, v interp.Value) error, len(names))
		for i, a := range names {
			bind := a.AsName
			if bind == "" {
				bind = a.Name
			}
			stores[i] = sc.store(bind)
		}
		return func(fr *Frame) (flow, error) {
			for i, a := range names {
				m, err := fr.th.Interp().ImportModule(a.Name)
				if err != nil {
					return flowNext, err
				}
				if err := stores[i](fr, m); err != nil {
					return flowNext, err
				}
			}
			return flowNext, nil
		}, nil
	case *minipy.FromImport:
		if t.Star {
			return nil, interp.NewPyError("SyntaxError",
				"import * is only allowed at module level", t.NodePos())
		}
		mod := t.Module
		names := t.Names
		stores := make([]func(fr *Frame, v interp.Value) error, len(names))
		for i, a := range names {
			bind := a.AsName
			if bind == "" {
				bind = a.Name
			}
			stores[i] = sc.store(bind)
		}
		pos := t.NodePos()
		return func(fr *Frame) (flow, error) {
			m, err := fr.th.Interp().ImportModule(mod)
			if err != nil {
				return flowNext, err
			}
			for i, a := range names {
				v, err := fr.th.GetAttr(m, a.Name, pos)
				if err != nil {
					return flowNext, err
				}
				if err := stores[i](fr, v); err != nil {
					return flowNext, err
				}
			}
			return flowNext, nil
		}, nil
	case *minipy.Del:
		return c.compileDel(sc, t)
	}
	return nil, interp.NewPyError("TypeError", "unsupported statement in compiled code", s.NodePos())
}

func (c *compiler) compileTry(sc *scopeCtx, t *minipy.Try) (stmtFn, error) {
	bodyf, err := c.compileStmts(sc, t.Body)
	if err != nil {
		return nil, err
	}
	type handler struct {
		typeName string // "" = bare except
		bindName string
		body     stmtFn
		store    func(fr *Frame, v interp.Value) error
	}
	handlers := make([]handler, 0, len(t.Handlers))
	for _, h := range t.Handlers {
		hf, err := c.compileStmts(sc, h.Body)
		if err != nil {
			return nil, err
		}
		hd := handler{body: hf, bindName: h.Name}
		if h.Type != nil {
			n, ok := h.Type.(*minipy.Name)
			if !ok {
				return nil, interp.NewPyError("SyntaxError",
					"except type must be a name", t.NodePos())
			}
			hd.typeName = n.ID
		}
		if h.Name != "" {
			hd.store = sc.store(h.Name)
		}
		handlers = append(handlers, hd)
	}
	var finalf stmtFn
	if len(t.Final) > 0 {
		finalf, err = c.compileStmts(sc, t.Final)
		if err != nil {
			return nil, err
		}
	}
	return func(fr *Frame) (flow, error) {
		fl, err := bodyf(fr)
		if err != nil {
			var pe *interp.PyError
			if errors.As(err, &pe) {
				for _, h := range handlers {
					if h.typeName != "" && !pe.Matches(h.typeName) {
						continue
					}
					if h.store != nil {
						exc := pe.Value
						if exc == nil {
							exc = &interp.ExcValue{Type: pe.Type, Msg: pe.Msg}
						}
						if serr := h.store(fr, exc); serr != nil {
							err = serr
							break
						}
					}
					fl, err = h.body(fr)
					break
				}
			}
		}
		if finalf != nil {
			ffl, ferr := finalf(fr)
			if ferr != nil {
				return flowNext, ferr
			}
			if ffl != flowNext {
				return ffl, nil
			}
		}
		return fl, err
	}, nil
}

func (c *compiler) compileDel(sc *scopeCtx, t *minipy.Del) (stmtFn, error) {
	var dels []stmtFn
	for _, tgt := range t.Targets {
		switch d := tgt.(type) {
		case *minipy.Index:
			xf, err := c.compileExpr(sc, d.X)
			if err != nil {
				return nil, err
			}
			inf, err := c.compileExpr(sc, d.I)
			if err != nil {
				return nil, err
			}
			pos := d.NodePos()
			dels = append(dels, func(fr *Frame) (flow, error) {
				x, err := xf(fr)
				if err != nil {
					return flowNext, err
				}
				idx, err := inf(fr)
				if err != nil {
					return flowNext, err
				}
				return flowNext, interp.DeleteItem(x, idx, pos)
			})
		case *minipy.Name:
			store := sc.store(d.ID)
			dels = append(dels, func(fr *Frame) (flow, error) {
				// Deleting rebinds to the unbound marker; compiled
				// code treats it as undefined on the next read.
				return flowNext, store(fr, unboundMarker)
			})
		default:
			return nil, interp.NewPyError("TypeError", "cannot delete this target", t.NodePos())
		}
	}
	return func(fr *Frame) (flow, error) {
		for _, d := range dels {
			if _, err := d(fr); err != nil {
				return flowNext, err
			}
		}
		return flowNext, nil
	}, nil
}

func (c *compiler) compileAssign(sc *scopeCtx, t *minipy.Assign) (stmtFn, error) {
	// Typed fast path: x = <float expr> straight into the slot.
	if c.opts.Typed && len(t.Targets) == 1 {
		if f, ok, err := c.compileTypedAssign(sc, t.Targets[0], t.Value); ok || err != nil {
			return f, err
		}
	}
	vf, err := c.compileExpr(sc, t.Value)
	if err != nil {
		return nil, err
	}
	assigns := make([]func(fr *Frame, v interp.Value) error, len(t.Targets))
	for i, tgt := range t.Targets {
		af, err := c.compileTarget(sc, tgt)
		if err != nil {
			return nil, err
		}
		assigns[i] = af
	}
	return func(fr *Frame) (flow, error) {
		v, err := vf(fr)
		if err != nil {
			return flowNext, err
		}
		for _, af := range assigns {
			if err := af(fr, v); err != nil {
				return flowNext, err
			}
		}
		return flowNext, nil
	}, nil
}

// compileTarget builds the store half of an assignment target.
func (c *compiler) compileTarget(sc *scopeCtx, tgt minipy.Expr) (func(fr *Frame, v interp.Value) error, error) {
	switch d := tgt.(type) {
	case *minipy.Name:
		return sc.store(d.ID), nil
	case *minipy.Index:
		xf, err := c.compileExpr(sc, d.X)
		if err != nil {
			return nil, err
		}
		inf, err := c.compileExpr(sc, d.I)
		if err != nil {
			return nil, err
		}
		pos := d.NodePos()
		return func(fr *Frame, v interp.Value) error {
			x, err := xf(fr)
			if err != nil {
				return err
			}
			idx, err := inf(fr)
			if err != nil {
				return err
			}
			return fr.th.SetItem(x, idx, v, pos)
		}, nil
	case *minipy.Attribute:
		xf, err := c.compileExpr(sc, d.X)
		if err != nil {
			return nil, err
		}
		name, pos := d.Name, d.NodePos()
		return func(fr *Frame, v interp.Value) error {
			x, err := xf(fr)
			if err != nil {
				return err
			}
			return interp.SetAttrValue(x, name, v, pos)
		}, nil
	case *minipy.TupleLit:
		return c.compileUnpack(sc, d.Elts, d.NodePos())
	case *minipy.ListLit:
		return c.compileUnpack(sc, d.Elts, d.NodePos())
	}
	return nil, interp.NewPyError("TypeError", "cannot assign to this target", tgt.NodePos())
}

func (c *compiler) compileUnpack(sc *scopeCtx, elts []minipy.Expr, pos minipy.Position) (func(fr *Frame, v interp.Value) error, error) {
	subs := make([]func(fr *Frame, v interp.Value) error, len(elts))
	for i, el := range elts {
		af, err := c.compileTarget(sc, el)
		if err != nil {
			return nil, err
		}
		subs[i] = af
	}
	return func(fr *Frame, v interp.Value) error {
		var vals []interp.Value
		switch src := v.(type) {
		case *interp.Tuple:
			vals = src.Elts
		case *interp.List:
			vals = src.Values()
		default:
			return interp.NewPyError("TypeError", "cannot unpack non-sequence", pos)
		}
		if len(vals) != len(subs) {
			return interp.NewPyError("ValueError", "unpacking arity mismatch", pos)
		}
		for i, af := range subs {
			if err := af(fr, vals[i]); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (c *compiler) compileAugAssign(sc *scopeCtx, t *minipy.AugAssign) (stmtFn, error) {
	// Typed fast path.
	if c.opts.Typed {
		if f, ok, err := c.compileTypedAugAssign(sc, t); ok || err != nil {
			return f, err
		}
	}
	switch d := t.Target.(type) {
	case *minipy.Name:
		loadf := sc.load(d.ID, d.NodePos())
		storef := sc.store(d.ID)
		vf, err := c.compileExpr(sc, t.Value)
		if err != nil {
			return nil, err
		}
		op, pos := t.Op, t.NodePos()
		return func(fr *Frame) (flow, error) {
			cur, err := loadf(fr)
			if err != nil {
				return flowNext, err
			}
			rhs, err := vf(fr)
			if err != nil {
				return flowNext, err
			}
			nv, err := fr.th.BinaryOp(op, cur, rhs, pos)
			if err != nil {
				return flowNext, err
			}
			return flowNext, storef(fr, nv)
		}, nil
	case *minipy.Index:
		xf, err := c.compileExpr(sc, d.X)
		if err != nil {
			return nil, err
		}
		inf, err := c.compileExpr(sc, d.I)
		if err != nil {
			return nil, err
		}
		vf, err := c.compileExpr(sc, t.Value)
		if err != nil {
			return nil, err
		}
		op, pos := t.Op, t.NodePos()
		return func(fr *Frame) (flow, error) {
			x, err := xf(fr)
			if err != nil {
				return flowNext, err
			}
			idx, err := inf(fr)
			if err != nil {
				return flowNext, err
			}
			cur, err := fr.th.GetItem(x, idx, pos)
			if err != nil {
				return flowNext, err
			}
			rhs, err := vf(fr)
			if err != nil {
				return flowNext, err
			}
			nv, err := fr.th.BinaryOp(op, cur, rhs, pos)
			if err != nil {
				return flowNext, err
			}
			return flowNext, fr.th.SetItem(x, idx, nv, pos)
		}, nil
	}
	return nil, interp.NewPyError("TypeError", "invalid augmented assignment target", t.NodePos())
}

func (c *compiler) compileFor(sc *scopeCtx, t *minipy.For) (stmtFn, error) {
	bodyf, err := c.compileStmts(sc, t.Body)
	if err != nil {
		return nil, err
	}
	// Native int loop for "for i in range(...)".
	if call, ok := t.Iter.(*minipy.Call); ok && isRangeCall(t.Iter) {
		if n, ok := t.Target.(*minipy.Name); ok {
			var startE, stopE, stepE minipy.Expr
			switch len(call.Args) {
			case 1:
				startE, stopE, stepE = nil, call.Args[0], nil
			case 2:
				startE, stopE, stepE = call.Args[0], call.Args[1], nil
			case 3:
				startE, stopE, stepE = call.Args[0], call.Args[1], call.Args[2]
			default:
				return nil, interp.NewPyError("TypeError", "range expected 1 to 3 arguments", t.NodePos())
			}
			startf, err := c.compileIntOrConst(sc, startE, 0)
			if err != nil {
				return nil, err
			}
			stopf, err := c.compileIntOrConst(sc, stopE, 0)
			if err != nil {
				return nil, err
			}
			stepf, err := c.compileIntOrConst(sc, stepE, 1)
			if err != nil {
				return nil, err
			}
			ref := sc.resolve(n.ID)
			var setVar func(fr *Frame, v int64) error
			switch ref.kind {
			case refISlot:
				idx := ref.idx
				setVar = func(fr *Frame, v int64) error { fr.i[idx] = v; return nil }
			default:
				store := sc.store(n.ID)
				setVar = func(fr *Frame, v int64) error { return store(fr, v) }
			}
			pos := t.NodePos()
			return func(fr *Frame) (flow, error) {
				start, err := startf(fr)
				if err != nil {
					return flowNext, err
				}
				stop, err := stopf(fr)
				if err != nil {
					return flowNext, err
				}
				step, err := stepf(fr)
				if err != nil {
					return flowNext, err
				}
				if step == 0 {
					return flowNext, interp.NewPyError("ValueError", "range() arg 3 must not be zero", pos)
				}
				for v := start; (step > 0 && v < stop) || (step < 0 && v > stop); v += step {
					if err := setVar(fr, v); err != nil {
						return flowNext, err
					}
					fl, err := bodyf(fr)
					if err != nil {
						return flowNext, err
					}
					if fl == flowBreak {
						return flowNext, nil
					}
					if fl == flowReturn {
						return flowReturn, nil
					}
				}
				return flowNext, nil
			}, nil
		}
	}
	// Generic iteration.
	iterf, err := c.compileExpr(sc, t.Iter)
	if err != nil {
		return nil, err
	}
	targetf, err := c.compileTarget(sc, t.Target)
	if err != nil {
		return nil, err
	}
	pos := t.NodePos()
	return func(fr *Frame) (flow, error) {
		iter, err := iterf(fr)
		if err != nil {
			return flowNext, err
		}
		runOne := func(v interp.Value) (flow, error) {
			if err := targetf(fr, v); err != nil {
				return flowNext, err
			}
			fl, err := bodyf(fr)
			if err != nil {
				return flowNext, err
			}
			switch fl {
			case flowBreak:
				return flowBreak, nil
			case flowReturn:
				return flowReturn, nil
			}
			return flowNext, nil
		}
		if l, ok := iter.(*interp.List); ok {
			// Lists iterate live (growing lists are seen), matching
			// the interpreter.
			for i := 0; i < l.Len(); i++ {
				fl, err := runOne(l.Get(i))
				if err != nil {
					return flowNext, err
				}
				if fl == flowBreak {
					return flowNext, nil
				}
				if fl == flowReturn {
					return flowReturn, nil
				}
			}
			return flowNext, nil
		}
		vals, err := interp.IterValues(iter)
		if err != nil {
			return flowNext, interp.NewPyError("TypeError",
				"object is not iterable", pos)
		}
		for _, v := range vals {
			fl, err := runOne(v)
			if err != nil {
				return flowNext, err
			}
			if fl == flowBreak {
				return flowNext, nil
			}
			if fl == flowReturn {
				return flowReturn, nil
			}
		}
		return flowNext, nil
	}, nil
}

// compileIntOrConst compiles e as an int expression; nil yields the
// constant def.
func (c *compiler) compileIntOrConst(sc *scopeCtx, e minipy.Expr, def int64) (intFn, error) {
	if e == nil {
		return func(fr *Frame) (int64, error) { return def, nil }, nil
	}
	return c.compileInt(sc, e)
}
