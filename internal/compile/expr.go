package compile

import (
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
)

// compileExpr produces the boxed evaluation of an expression. In
// typed mode, float- and int-typed subexpressions are computed
// unboxed and boxed only at the boundary.
func (c *compiler) compileExpr(sc *scopeCtx, e minipy.Expr) (exprFn, error) {
	if c.opts.Typed {
		switch exprType(e, sc.types) {
		case tFloat:
			ff, err := c.compileFloat(sc, e)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (interp.Value, error) {
				f, err := ff(fr)
				if err != nil {
					return nil, err
				}
				return f, nil
			}, nil
		case tInt:
			inf, err := c.compileInt(sc, e)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (interp.Value, error) {
				n, err := inf(fr)
				if err != nil {
					return nil, err
				}
				return n, nil
			}, nil
		}
	}
	return c.compileExprBoxed(sc, e)
}

func (c *compiler) compileExprBoxed(sc *scopeCtx, e minipy.Expr) (exprFn, error) {
	switch t := e.(type) {
	case *minipy.IntLit:
		v := t.V
		return func(fr *Frame) (interp.Value, error) { return v, nil }, nil
	case *minipy.FloatLit:
		v := t.V
		return func(fr *Frame) (interp.Value, error) { return v, nil }, nil
	case *minipy.StrLit:
		v := t.V
		return func(fr *Frame) (interp.Value, error) { return v, nil }, nil
	case *minipy.BoolLit:
		v := t.V
		return func(fr *Frame) (interp.Value, error) { return v, nil }, nil
	case *minipy.NoneLit:
		return func(fr *Frame) (interp.Value, error) { return nil, nil }, nil
	case *minipy.Name:
		return sc.load(t.ID, t.NodePos()), nil
	case *minipy.BinOp:
		lf, err := c.compileExpr(sc, t.L)
		if err != nil {
			return nil, err
		}
		rf, err := c.compileExpr(sc, t.R)
		if err != nil {
			return nil, err
		}
		op, pos := t.Op, t.NodePos()
		return func(fr *Frame) (interp.Value, error) {
			l, err := lf(fr)
			if err != nil {
				return nil, err
			}
			r, err := rf(fr)
			if err != nil {
				return nil, err
			}
			return fr.th.BinaryOp(op, l, r, pos)
		}, nil
	case *minipy.BoolOp:
		subs := make([]exprFn, len(t.Values))
		for i, v := range t.Values {
			sub, err := c.compileExpr(sc, v)
			if err != nil {
				return nil, err
			}
			subs[i] = sub
		}
		and := t.Op == "and"
		return func(fr *Frame) (interp.Value, error) {
			var v interp.Value
			for _, sub := range subs {
				var err error
				v, err = sub(fr)
				if err != nil {
					return nil, err
				}
				if interp.Truthy(v) != and {
					return v, nil
				}
			}
			return v, nil
		}, nil
	case *minipy.UnaryOp:
		xf, err := c.compileExpr(sc, t.X)
		if err != nil {
			return nil, err
		}
		op, pos := t.Op, t.NodePos()
		if op == "not" {
			return func(fr *Frame) (interp.Value, error) {
				x, err := xf(fr)
				if err != nil {
					return nil, err
				}
				return !interp.Truthy(x), nil
			}, nil
		}
		return func(fr *Frame) (interp.Value, error) {
			x, err := xf(fr)
			if err != nil {
				return nil, err
			}
			return fr.th.UnaryOpValue(op, x, pos)
		}, nil
	case *minipy.Compare:
		lf, err := c.compileExpr(sc, t.L)
		if err != nil {
			return nil, err
		}
		rights := make([]exprFn, len(t.Rights))
		for i, r := range t.Rights {
			rf, err := c.compileExpr(sc, r)
			if err != nil {
				return nil, err
			}
			rights[i] = rf
		}
		ops, pos := t.Ops, t.NodePos()
		return func(fr *Frame) (interp.Value, error) {
			l, err := lf(fr)
			if err != nil {
				return nil, err
			}
			for i, op := range ops {
				r, err := rights[i](fr)
				if err != nil {
					return nil, err
				}
				ok, err := fr.th.CompareValues(op, l, r, pos)
				if err != nil {
					return nil, err
				}
				if !ok {
					return false, nil
				}
				l = r
			}
			return true, nil
		}, nil
	case *minipy.Call:
		return c.compileCall(sc, t)
	case *minipy.Attribute:
		xf, err := c.compileExpr(sc, t.X)
		if err != nil {
			return nil, err
		}
		name, pos := t.Name, t.NodePos()
		return func(fr *Frame) (interp.Value, error) {
			x, err := xf(fr)
			if err != nil {
				return nil, err
			}
			return fr.th.GetAttr(x, name, pos)
		}, nil
	case *minipy.Index:
		xf, err := c.compileExpr(sc, t.X)
		if err != nil {
			return nil, err
		}
		inf, err := c.compileExpr(sc, t.I)
		if err != nil {
			return nil, err
		}
		pos := t.NodePos()
		return func(fr *Frame) (interp.Value, error) {
			x, err := xf(fr)
			if err != nil {
				return nil, err
			}
			idx, err := inf(fr)
			if err != nil {
				return nil, err
			}
			return fr.th.GetItem(x, idx, pos)
		}, nil
	case *minipy.SliceExpr:
		return c.compileSlice(sc, t)
	case *minipy.ListLit:
		elts, err := c.compileExprs(sc, t.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (interp.Value, error) {
			vals := make([]interp.Value, len(elts))
			for i, ef := range elts {
				v, err := ef(fr)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			fr.th.Account()
			return interp.NewList(vals), nil
		}, nil
	case *minipy.TupleLit:
		elts, err := c.compileExprs(sc, t.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (interp.Value, error) {
			vals := make([]interp.Value, len(elts))
			for i, ef := range elts {
				v, err := ef(fr)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return &interp.Tuple{Elts: vals}, nil
		}, nil
	case *minipy.DictLit:
		keys, err := c.compileExprs(sc, t.Keys)
		if err != nil {
			return nil, err
		}
		vals, err := c.compileExprs(sc, t.Vals)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (interp.Value, error) {
			d := interp.NewDict()
			for i := range keys {
				k, err := keys[i](fr)
				if err != nil {
					return nil, err
				}
				v, err := vals[i](fr)
				if err != nil {
					return nil, err
				}
				if err := d.Set(k, v); err != nil {
					return nil, err
				}
			}
			return d, nil
		}, nil
	case *minipy.SetLit:
		elts, err := c.compileExprs(sc, t.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (interp.Value, error) {
			s := interp.NewSet()
			for _, ef := range elts {
				v, err := ef(fr)
				if err != nil {
					return nil, err
				}
				if err := s.Add(v); err != nil {
					return nil, err
				}
			}
			return s, nil
		}, nil
	case *minipy.IfExp:
		condf, err := c.compileExpr(sc, t.Cond)
		if err != nil {
			return nil, err
		}
		thenf, err := c.compileExpr(sc, t.Then)
		if err != nil {
			return nil, err
		}
		elsef, err := c.compileExpr(sc, t.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (interp.Value, error) {
			cond, err := condf(fr)
			if err != nil {
				return nil, err
			}
			if interp.Truthy(cond) {
				return thenf(fr)
			}
			return elsef(fr)
		}, nil
	case *minipy.Lambda:
		body := []minipy.Stmt{&minipy.Return{Value: t.Body}}
		return c.compileClosure(sc, "<lambda>", t.Params, body)
	}
	return nil, interp.NewPyError("TypeError", "unsupported expression in compiled code", e.NodePos())
}

func (c *compiler) compileExprs(sc *scopeCtx, es []minipy.Expr) ([]exprFn, error) {
	out := make([]exprFn, len(es))
	for i, e := range es {
		f, err := c.compileExpr(sc, e)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func (c *compiler) compileCall(sc *scopeCtx, t *minipy.Call) (exprFn, error) {
	fnf, err := c.compileExpr(sc, t.Fn)
	if err != nil {
		return nil, err
	}
	args, err := c.compileExprs(sc, t.Args)
	if err != nil {
		return nil, err
	}
	pos := t.NodePos()
	if len(t.Keywords) == 0 {
		return func(fr *Frame) (interp.Value, error) {
			fn, err := fnf(fr)
			if err != nil {
				return nil, err
			}
			vals := make([]interp.Value, len(args))
			for i, af := range args {
				v, err := af(fr)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return fr.th.Call(fn, vals, pos)
		}, nil
	}
	kwNames := make([]string, len(t.Keywords))
	kwFns := make([]exprFn, len(t.Keywords))
	for i, kw := range t.Keywords {
		kwNames[i] = kw.Name
		f, err := c.compileExpr(sc, kw.Value)
		if err != nil {
			return nil, err
		}
		kwFns[i] = f
	}
	return func(fr *Frame) (interp.Value, error) {
		fn, err := fnf(fr)
		if err != nil {
			return nil, err
		}
		vals := make([]interp.Value, len(args))
		for i, af := range args {
			v, err := af(fr)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		kwargs := make(map[string]interp.Value, len(kwFns))
		for i, kf := range kwFns {
			v, err := kf(fr)
			if err != nil {
				return nil, err
			}
			kwargs[kwNames[i]] = v
		}
		return fr.th.CallKw(fn, vals, kwargs, pos)
	}, nil
}

func (c *compiler) compileSlice(sc *scopeCtx, t *minipy.SliceExpr) (exprFn, error) {
	// Slices are off the hot paths; delegate to the interpreter's
	// slice semantics by rebuilding the boxed values.
	xf, err := c.compileExpr(sc, t.X)
	if err != nil {
		return nil, err
	}
	part := func(e minipy.Expr) (exprFn, error) {
		if e == nil {
			return nil, nil
		}
		return c.compileExpr(sc, e)
	}
	lof, err := part(t.Lo)
	if err != nil {
		return nil, err
	}
	hif, err := part(t.Hi)
	if err != nil {
		return nil, err
	}
	stepf, err := part(t.Step)
	if err != nil {
		return nil, err
	}
	pos := t.NodePos()
	return func(fr *Frame) (interp.Value, error) {
		x, err := xf(fr)
		if err != nil {
			return nil, err
		}
		var parts [3]int64
		var set [3]bool
		for i, f := range []exprFn{lof, hif, stepf} {
			if f == nil {
				continue
			}
			v, err := f(fr)
			if err != nil {
				return nil, err
			}
			n, ok := interp.AsInt(v)
			if !ok {
				return nil, interp.NewPyError("TypeError", "slice indices must be integers", pos)
			}
			parts[i], set[i] = n, true
		}
		return interp.SliceOf(x, set[0], parts[0], set[1], parts[1], set[2], parts[2], pos)
	}, nil
}

// compileClosure compiles a nested function/lambda and returns the
// expression that creates its function value at run time.
func (c *compiler) compileClosure(sc *scopeCtx, name string, params []minipy.Param, body []minipy.Stmt) (exprFn, error) {
	code, err := c.compileFunc(name, params, body, sc)
	if err != nil {
		return nil, err
	}
	// Default expressions evaluate in the defining scope at def time.
	defFns := make([]exprFn, len(params))
	for i, p := range params {
		if p.Default == nil {
			continue
		}
		df, err := c.compileExpr(sc, p.Default)
		if err != nil {
			return nil, err
		}
		defFns[i] = df
	}
	paramsCopy := append([]minipy.Param(nil), params...)
	return func(fr *Frame) (interp.Value, error) {
		defaults := make([]interp.Value, len(defFns))
		for i, df := range defFns {
			if df == nil {
				continue
			}
			v, err := df(fr)
			if err != nil {
				return nil, err
			}
			defaults[i] = v
		}
		fn := interp.MakeCompiledFunction(name, paramsCopy, defaults, nil)
		fn.Compiled = code.entry(fr, fn)
		return fn, nil
	}, nil
}
