package compile

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/transform"
)

// exprGen builds random MiniPy arithmetic/comparison expressions over
// a fixed set of typed variables, for differential testing of the
// three execution paths (tree-walker, boxed closures, typed
// closures). Division-shaped operators are wrapped to avoid
// ZeroDivisionError so every generated program completes.
type exprGen struct {
	r     *rand.Rand
	depth int
}

func (g *exprGen) expr(d int) string {
	if d >= g.depth {
		return g.atom()
	}
	switch g.r.Intn(8) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s + %s)", g.expr(d+1), g.expr(d+1))
	case 2:
		return fmt.Sprintf("(%s - %s)", g.expr(d+1), g.expr(d+1))
	case 3:
		return fmt.Sprintf("(%s * %s)", g.expr(d+1), g.expr(d+1))
	case 4:
		// Guarded division keeps the program total.
		return fmt.Sprintf("(%s / (%s + 1000000.0))", g.expr(d+1), g.nonNegAtom())
	case 5:
		return fmt.Sprintf("(%s // (%s + 7))", g.intExpr(d+1), g.nonNegIntAtom())
	case 6:
		return fmt.Sprintf("(-%s)", g.expr(d+1))
	case 7:
		return fmt.Sprintf("(%s if %s < %s else %s)",
			g.expr(d+1), g.expr(d+1), g.expr(d+1), g.expr(d+1))
	}
	return g.atom()
}

func (g *exprGen) intExpr(d int) string {
	if d >= g.depth {
		return g.intAtom()
	}
	switch g.r.Intn(5) {
	case 0:
		return g.intAtom()
	case 1:
		return fmt.Sprintf("(%s + %s)", g.intExpr(d+1), g.intExpr(d+1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.intExpr(d+1), g.intAtom())
	case 3:
		return fmt.Sprintf("(%s %% (%s + 11))", g.intExpr(d+1), g.nonNegIntAtom())
	default:
		return fmt.Sprintf("(%s - %s)", g.intExpr(d+1), g.intExpr(d+1))
	}
}

func (g *exprGen) atom() string {
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(41)-20)
	case 1:
		return fmt.Sprintf("%.3f", g.r.Float64()*10-5)
	case 2:
		return "x"
	case 3:
		return "y"
	case 4:
		return "k"
	default:
		return "w"
	}
}

func (g *exprGen) intAtom() string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(31)-15)
	case 1:
		return "k"
	default:
		return "m"
	}
}

func (g *exprGen) nonNegAtom() string    { return fmt.Sprintf("%.3f", g.r.Float64()*9) }
func (g *exprGen) nonNegIntAtom() string { return fmt.Sprintf("%d", g.r.Intn(9)) }

// TestDifferentialRandomExpressions generates random programs and
// checks that the interpreter, the boxed compiler, and the typed
// compiler print identical results.
func TestDifferentialRandomExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 120; trial++ {
		g := &exprGen{r: r, depth: 4}
		var b strings.Builder
		b.WriteString("def f(x: float, y: float, k: int, m: int, w):\n")
		nVars := 1 + r.Intn(3)
		for v := 0; v < nVars; v++ {
			fmt.Fprintf(&b, "    t%d = %s\n", v, g.expr(0))
		}
		b.WriteString("    acc = 0.0\n")
		b.WriteString("    for i in range(k + 16):\n")
		fmt.Fprintf(&b, "        acc = acc + %s\n", g.expr(1))
		for v := 0; v < nVars; v++ {
			fmt.Fprintf(&b, "    acc = acc + t%d\n", v)
		}
		b.WriteString("    return acc\n")
		fmt.Fprintf(&b, "print(f(%.3f, %.3f, %d, %d, %.3f))\n",
			r.Float64()*4-2, r.Float64()*4-2, r.Intn(8), r.Intn(20)-10, r.Float64()*3)
		src := b.String()

		outputs := make([]string, 3)
		for mode := 0; mode <= 2; mode++ {
			mod, err := minipy.Parse(src, "gen.py")
			if err != nil {
				t.Fatalf("trial %d parse: %v\n%s", trial, err, src)
			}
			if _, err := transform.Module(mod); err != nil {
				t.Fatalf("trial %d transform: %v", trial, err)
			}
			var buf bytes.Buffer
			in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
				Getenv: func(string) string { return "" }})
			if mode > 0 {
				if err := Install(in, mod, Options{Typed: mode == 2}); err != nil {
					t.Fatalf("trial %d compile: %v\n%s", trial, err, src)
				}
			}
			if err := in.RunModule(mod); err != nil {
				t.Fatalf("trial %d mode %d run: %v\n%s", trial, mode, err, src)
			}
			outputs[mode] = buf.String()
		}
		if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
			t.Fatalf("trial %d diverged.\ninterp:   %scompiled: %styped:    %s\nprogram:\n%s",
				trial, outputs[0], outputs[1], outputs[2], src)
		}
	}
}

// TestDifferentialRandomIntPrograms exercises the int path (floor
// division, modulo, bitwise) where Python semantics differ most from
// Go defaults.
func TestDifferentialRandomIntPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ops := []string{"+", "-", "*", "//", "%", "&", "|", "^"}
	for trial := 0; trial < 120; trial++ {
		var b strings.Builder
		b.WriteString("def f(k: int, m: int):\n")
		b.WriteString("    a = k\n    b = m\n")
		for s := 0; s < 5; s++ {
			op := ops[r.Intn(len(ops))]
			rhs := fmt.Sprintf("%d", r.Intn(37)-18)
			if op == "//" || op == "%" {
				rhs = fmt.Sprintf("%d", 1+r.Intn(9)) // avoid zero divisors
			}
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "    a = a %s %s\n", op, rhs)
			} else {
				// The trailing operand is a variable, so only
				// total operators may touch it.
				fmt.Fprintf(&b, "    b = (b %s %s) %s a\n", op, rhs, ops[r.Intn(3)])
			}
		}
		b.WriteString("    return (a, b)\n")
		fmt.Fprintf(&b, "print(f(%d, %d))\n", r.Intn(200)-100, r.Intn(200)-100)
		src := b.String()

		var ref string
		for mode := 0; mode <= 2; mode++ {
			mod, err := minipy.Parse(src, "ints.py")
			if err != nil {
				t.Fatalf("trial %d parse: %v\n%s", trial, err, src)
			}
			var buf bytes.Buffer
			in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
				Getenv: func(string) string { return "" }})
			if mode > 0 {
				if err := Install(in, mod, Options{Typed: mode == 2}); err != nil {
					t.Fatalf("trial %d compile: %v", trial, err)
				}
			}
			if err := in.RunModule(mod); err != nil {
				t.Fatalf("trial %d mode %d: %v\n%s", trial, mode, err, src)
			}
			if mode == 0 {
				ref = buf.String()
			} else if buf.String() != ref {
				t.Fatalf("trial %d mode %d diverged: %q vs %q\n%s",
					trial, mode, buf.String(), ref, src)
			}
		}
	}
}
