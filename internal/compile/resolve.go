package compile

import (
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
)

// refKind classifies a resolved name reference.
type refKind int

const (
	refSlot   refKind = iota // boxed local slot
	refCell                  // cell-allocated local (captured by inner functions)
	refFree                  // free variable (cell from an enclosing function)
	refGlobal                // module global / builtin (stable cell)
	refFSlot                 // unboxed float64 slot (CompiledDT)
	refISlot                 // unboxed int64 slot (CompiledDT)
)

type varRef struct {
	kind refKind
	idx  int
	cell *interp.Cell // refGlobal: resolved once at compile time
}

// scopeCtx is the compile-time scope of one function.
type scopeCtx struct {
	c      *compiler
	parent *scopeCtx
	scope  *minipy.ScopeInfo

	slotOf map[string]int
	cellOf map[string]int
	fOf    map[string]int
	iOf    map[string]int

	freeOf   map[string]int
	captures []captureSrc

	nSlots int
	types  map[string]valType

	// hoist is non-nil only while a compiled-kernel loop body is being
	// compiled: it maps list names whose storage the kernel hoists to
	// their kernelEnv slot, letting texpr's Index paths emit direct
	// []float64/[]int64 access (kernel.go).
	hoist map[string]int
}

// newScope builds the compile-time scope for a function: decides
// which locals need cells (captured by nested functions), which get
// unboxed slots (typed mode), and numbers everything.
func (c *compiler) newScope(params []minipy.Param, body []minipy.Stmt, parent *scopeCtx) *scopeCtx {
	sc := &scopeCtx{
		c:      c,
		parent: parent,
		scope:  minipy.AnalyzeScope(params, body),
		slotOf: make(map[string]int),
		cellOf: make(map[string]int),
		fOf:    make(map[string]int),
		iOf:    make(map[string]int),
		freeOf: make(map[string]int),
	}

	captured := nestedReferences(body)

	if c.opts.Typed {
		sc.types = inferTypes(params, body)
	} else {
		sc.types = map[string]valType{}
	}

	for _, name := range sc.scope.Locals {
		if captured[name] {
			// Captured locals live in cells; cells are boxed, so a
			// captured variable cannot be type-specialized.
			sc.cellOf[name] = len(sc.cellOf)
			continue
		}
		switch sc.types[name] {
		case tFloat:
			sc.fOf[name] = len(sc.fOf)
		case tInt:
			sc.iOf[name] = len(sc.iOf)
		default:
			sc.slotOf[name] = sc.nSlots
			sc.nSlots++
		}
	}
	return sc
}

// resolve maps a name reference to its storage.
func (sc *scopeCtx) resolve(name string) varRef {
	if sc.scope.Globals[name] {
		return sc.globalRef(name)
	}
	if sc.scope.IsLocal(name) {
		if i, ok := sc.fOf[name]; ok {
			return varRef{kind: refFSlot, idx: i}
		}
		if i, ok := sc.iOf[name]; ok {
			return varRef{kind: refISlot, idx: i}
		}
		if i, ok := sc.cellOf[name]; ok {
			return varRef{kind: refCell, idx: i}
		}
		return varRef{kind: refSlot, idx: sc.slotOf[name]}
	}
	// Nonlocal declarations and plain free references both resolve
	// through the enclosing chain; captures thread transitively
	// through every intermediate function so each closure takes its
	// free cells from its immediate defining frame.
	if idx, ok := sc.freeIndex(name); ok {
		return varRef{kind: refFree, idx: idx}
	}
	return sc.globalRef(name)
}

// freeIndex returns (allocating if needed) this function's free-list
// index for name, capturing transitively from enclosing scopes.
func (sc *scopeCtx) freeIndex(name string) (int, bool) {
	if idx, ok := sc.freeOf[name]; ok {
		return idx, true
	}
	p := sc.parent
	if p == nil || p.scope.Globals[name] {
		return 0, false
	}
	var src captureSrc
	if p.scope.IsLocal(name) {
		src = p.captureFor(name)
	} else {
		pIdx, ok := p.freeIndex(name)
		if !ok {
			return 0, false
		}
		src = captureSrc{fromFree: true, idx: pIdx}
	}
	idx := len(sc.captures)
	sc.captures = append(sc.captures, src)
	sc.freeOf[name] = idx
	return idx, true
}

// captureFor returns how a child closure captures this scope's local.
func (sc *scopeCtx) captureFor(name string) captureSrc {
	if i, ok := sc.cellOf[name]; ok {
		return captureSrc{idx: i}
	}
	// The nested-reference over-approximation guarantees captured
	// locals have cells; reaching here means the analysis missed a
	// name, so promote defensively at compile time.
	i := len(sc.cellOf)
	sc.cellOf[name] = i
	delete(sc.slotOf, name)
	return captureSrc{idx: i}
}

func (sc *scopeCtx) globalRef(name string) varRef {
	// Globals resolve to a stable cell in the module environment
	// (created unset if the name is not bound yet), giving compiled
	// code constant-time global access.
	return varRef{kind: refGlobal, cell: sc.c.in.Globals().Define(name)}
}

// load compiles a variable read.
func (sc *scopeCtx) load(name string, pos minipy.Position) exprFn {
	ref := sc.resolve(name)
	switch ref.kind {
	case refFSlot:
		idx := ref.idx
		return func(fr *Frame) (interp.Value, error) { return fr.f[idx], nil }
	case refISlot:
		idx := ref.idx
		return func(fr *Frame) (interp.Value, error) { return fr.i[idx], nil }
	case refSlot:
		idx := ref.idx
		return func(fr *Frame) (interp.Value, error) {
			v := fr.slots[idx]
			if v == unboundMarker {
				return nil, interp.NewPyError("UnboundLocalError",
					"local variable '"+name+"' referenced before assignment", pos)
			}
			return v, nil
		}
	case refCell:
		idx := ref.idx
		return func(fr *Frame) (interp.Value, error) {
			v, set := fr.cells[idx].Get()
			if !set {
				return nil, interp.NewPyError("UnboundLocalError",
					"local variable '"+name+"' referenced before assignment", pos)
			}
			return v, nil
		}
	case refFree:
		idx := ref.idx
		return func(fr *Frame) (interp.Value, error) {
			v, set := fr.free[idx].Get()
			if !set {
				return nil, interp.NewPyError("NameError",
					"free variable '"+name+"' referenced before assignment", pos)
			}
			return v, nil
		}
	default: // refGlobal
		cell := ref.cell
		return func(fr *Frame) (interp.Value, error) {
			v, set := cell.Get()
			if !set {
				return nil, interp.NewPyError("NameError",
					"name \""+name+"\" is not defined", pos)
			}
			return v, nil
		}
	}
}

// store compiles a variable write.
func (sc *scopeCtx) store(name string) func(fr *Frame, v interp.Value) error {
	ref := sc.resolveStore(name)
	switch ref.kind {
	case refFSlot:
		idx := ref.idx
		return func(fr *Frame, v interp.Value) error {
			f, ok := interp.AsFloat(v)
			if !ok {
				return interp.NewPyError("TypeError",
					"variable '"+name+"' is typed float", minipy.Position{})
			}
			fr.f[idx] = f
			return nil
		}
	case refISlot:
		idx := ref.idx
		return func(fr *Frame, v interp.Value) error {
			n, ok := interp.AsInt(v)
			if !ok {
				return interp.NewPyError("TypeError",
					"variable '"+name+"' is typed int", minipy.Position{})
			}
			fr.i[idx] = n
			return nil
		}
	case refSlot:
		idx := ref.idx
		return func(fr *Frame, v interp.Value) error {
			fr.slots[idx] = v
			return nil
		}
	case refCell:
		idx := ref.idx
		return func(fr *Frame, v interp.Value) error {
			fr.cells[idx].SetValue(v)
			return nil
		}
	case refFree:
		idx := ref.idx
		return func(fr *Frame, v interp.Value) error {
			fr.free[idx].SetValue(v)
			return nil
		}
	default:
		cell := ref.cell
		return func(fr *Frame, v interp.Value) error {
			cell.SetValue(v)
			return nil
		}
	}
}

// resolveStore is resolve, but writes to undeclared non-local names
// follow the nonlocal declaration (handled by resolve) or create
// globals only when declared global.
func (sc *scopeCtx) resolveStore(name string) varRef {
	if sc.scope.Nonlocals[name] {
		return sc.resolve(name)
	}
	if sc.scope.Globals[name] {
		return sc.globalRef(name)
	}
	if sc.scope.IsLocal(name) {
		return sc.resolve(name)
	}
	// Assignment to a name that scope analysis did not classify:
	// module level (module bodies are not compiled) or dynamic; fall
	// back to a global store.
	return sc.globalRef(name)
}

// unboundMarker distinguishes never-assigned slots from None. Slots
// are pre-filled with it on frame creation via initUnbound.
type unboundType struct{}

var unboundMarker interp.Value = unboundType{}

// nestedReferences over-approximates the set of names referenced by
// nested functions/lambdas anywhere in body (such locals must live in
// cells so closures share them).
func nestedReferences(body []minipy.Stmt) map[string]bool {
	out := make(map[string]bool)
	var walkS func(s minipy.Stmt, inNested bool)
	var walkE func(e minipy.Expr, inNested bool)
	collectInto := func(names map[string]bool) {
		for n := range names {
			out[n] = true
		}
	}
	walkE = func(e minipy.Expr, inNested bool) {
		switch t := e.(type) {
		case *minipy.Lambda:
			collectInto(collectNamesExpr(t.Body))
		case *minipy.BinOp:
			walkE(t.L, inNested)
			walkE(t.R, inNested)
		case *minipy.BoolOp:
			for _, v := range t.Values {
				walkE(v, inNested)
			}
		case *minipy.UnaryOp:
			walkE(t.X, inNested)
		case *minipy.Compare:
			walkE(t.L, inNested)
			for _, r := range t.Rights {
				walkE(r, inNested)
			}
		case *minipy.Call:
			walkE(t.Fn, inNested)
			for _, a := range t.Args {
				walkE(a, inNested)
			}
			for i := range t.Keywords {
				walkE(t.Keywords[i].Value, inNested)
			}
		case *minipy.Attribute:
			walkE(t.X, inNested)
		case *minipy.Index:
			walkE(t.X, inNested)
			walkE(t.I, inNested)
		case *minipy.SliceExpr:
			walkE(t.X, inNested)
			if t.Lo != nil {
				walkE(t.Lo, inNested)
			}
			if t.Hi != nil {
				walkE(t.Hi, inNested)
			}
			if t.Step != nil {
				walkE(t.Step, inNested)
			}
		case *minipy.ListLit:
			for _, el := range t.Elts {
				walkE(el, inNested)
			}
		case *minipy.TupleLit:
			for _, el := range t.Elts {
				walkE(el, inNested)
			}
		case *minipy.DictLit:
			for i := range t.Keys {
				walkE(t.Keys[i], inNested)
				walkE(t.Vals[i], inNested)
			}
		case *minipy.SetLit:
			for _, el := range t.Elts {
				walkE(el, inNested)
			}
		case *minipy.IfExp:
			walkE(t.Cond, inNested)
			walkE(t.Then, inNested)
			walkE(t.Else, inNested)
		}
	}
	walkS = func(s minipy.Stmt, inNested bool) {
		switch t := s.(type) {
		case *minipy.FuncDef:
			// Everything referenced inside a nested function (at any
			// depth) is a potential capture. Defaults evaluate in the
			// outer scope.
			for _, p := range t.Params {
				if p.Default != nil {
					walkE(p.Default, inNested)
				}
			}
			names := make(map[string]bool)
			for _, b := range t.Body {
				for n := range collectNamesStmt(b) {
					names[n] = true
				}
			}
			collectInto(names)
		case *minipy.ExprStmt:
			walkE(t.X, inNested)
		case *minipy.Assign:
			for _, tgt := range t.Targets {
				walkE(tgt, inNested)
			}
			walkE(t.Value, inNested)
		case *minipy.AugAssign:
			walkE(t.Target, inNested)
			walkE(t.Value, inNested)
		case *minipy.AnnAssign:
			walkE(t.Target, inNested)
			if t.Value != nil {
				walkE(t.Value, inNested)
			}
		case *minipy.Return:
			if t.Value != nil {
				walkE(t.Value, inNested)
			}
		case *minipy.If:
			walkE(t.Cond, inNested)
			for _, b := range t.Body {
				walkS(b, inNested)
			}
			for _, b := range t.Else {
				walkS(b, inNested)
			}
		case *minipy.While:
			walkE(t.Cond, inNested)
			for _, b := range t.Body {
				walkS(b, inNested)
			}
		case *minipy.For:
			walkE(t.Target, inNested)
			walkE(t.Iter, inNested)
			for _, b := range t.Body {
				walkS(b, inNested)
			}
		case *minipy.With:
			for _, it := range t.Items {
				walkE(it.Context, inNested)
				if it.Vars != nil {
					walkE(it.Vars, inNested)
				}
			}
			for _, b := range t.Body {
				walkS(b, inNested)
			}
		case *minipy.Try:
			for _, b := range t.Body {
				walkS(b, inNested)
			}
			for _, h := range t.Handlers {
				for _, b := range h.Body {
					walkS(b, inNested)
				}
			}
			for _, b := range t.Final {
				walkS(b, inNested)
			}
		case *minipy.Raise:
			if t.Exc != nil {
				walkE(t.Exc, inNested)
			}
		case *minipy.Assert:
			walkE(t.Test, inNested)
			if t.Msg != nil {
				walkE(t.Msg, inNested)
			}
		case *minipy.Del:
			for _, tgt := range t.Targets {
				walkE(tgt, inNested)
			}
		}
	}
	for _, s := range body {
		walkS(s, false)
	}
	return out
}

// collectNamesStmt gathers every identifier mentioned in a statement,
// including inside nested functions.
func collectNamesStmt(s minipy.Stmt) map[string]bool {
	out := make(map[string]bool)
	var walkS func(minipy.Stmt)
	var walkE func(minipy.Expr)
	walkE = func(e minipy.Expr) {
		if e == nil {
			return
		}
		for n := range collectNamesExpr(e) {
			out[n] = true
		}
	}
	walkS = func(s minipy.Stmt) {
		switch t := s.(type) {
		case *minipy.ExprStmt:
			walkE(t.X)
		case *minipy.Assign:
			for _, tgt := range t.Targets {
				walkE(tgt)
			}
			walkE(t.Value)
		case *minipy.AugAssign:
			walkE(t.Target)
			walkE(t.Value)
		case *minipy.AnnAssign:
			walkE(t.Target)
			walkE(t.Value)
		case *minipy.Return:
			walkE(t.Value)
		case *minipy.If:
			walkE(t.Cond)
			for _, b := range t.Body {
				walkS(b)
			}
			for _, b := range t.Else {
				walkS(b)
			}
		case *minipy.While:
			walkE(t.Cond)
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.For:
			walkE(t.Target)
			walkE(t.Iter)
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.With:
			for _, it := range t.Items {
				walkE(it.Context)
				walkE(it.Vars)
			}
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.Try:
			for _, b := range t.Body {
				walkS(b)
			}
			for _, h := range t.Handlers {
				walkE(h.Type)
				for _, b := range h.Body {
					walkS(b)
				}
			}
			for _, b := range t.Final {
				walkS(b)
			}
		case *minipy.Raise:
			walkE(t.Exc)
		case *minipy.Assert:
			walkE(t.Test)
			walkE(t.Msg)
		case *minipy.Del:
			for _, tgt := range t.Targets {
				walkE(tgt)
			}
		case *minipy.FuncDef:
			for _, b := range t.Body {
				walkS(b)
			}
		case *minipy.Global:
			for _, n := range t.Names {
				out[n] = true
			}
		case *minipy.Nonlocal:
			for _, n := range t.Names {
				out[n] = true
			}
		}
	}
	walkS(s)
	return out
}

func collectNamesExpr(e minipy.Expr) map[string]bool {
	out := make(map[string]bool)
	var walk func(minipy.Expr)
	walk = func(e minipy.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *minipy.Name:
			out[t.ID] = true
		case *minipy.BinOp:
			walk(t.L)
			walk(t.R)
		case *minipy.BoolOp:
			for _, v := range t.Values {
				walk(v)
			}
		case *minipy.UnaryOp:
			walk(t.X)
		case *minipy.Compare:
			walk(t.L)
			for _, r := range t.Rights {
				walk(r)
			}
		case *minipy.Call:
			walk(t.Fn)
			for _, a := range t.Args {
				walk(a)
			}
			for i := range t.Keywords {
				walk(t.Keywords[i].Value)
			}
		case *minipy.Attribute:
			walk(t.X)
		case *minipy.Index:
			walk(t.X)
			walk(t.I)
		case *minipy.SliceExpr:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
			walk(t.Step)
		case *minipy.ListLit:
			for _, el := range t.Elts {
				walk(el)
			}
		case *minipy.TupleLit:
			for _, el := range t.Elts {
				walk(el)
			}
		case *minipy.DictLit:
			for i := range t.Keys {
				walk(t.Keys[i])
				walk(t.Vals[i])
			}
		case *minipy.SetLit:
			for _, el := range t.Elts {
				walk(el)
			}
		case *minipy.IfExp:
			walk(t.Cond)
			walk(t.Then)
			walk(t.Else)
		case *minipy.Lambda:
			walk(t.Body)
			for _, p := range t.Params {
				if p.Default != nil {
					walk(p.Default)
				}
			}
		}
	}
	walk(e)
	return out
}
