package compile

import (
	"bytes"
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/transform"
)

// runMode executes src interpreted (mode 0), compiled (1), or
// compiled with types (2), after the @omp transformation.
func runMode(t *testing.T, src string, mode int) string {
	t.Helper()
	mod, err := minipy.Parse(src, "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := transform.Module(mod); err != nil {
		t.Fatalf("transform: %v", err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	if mode > 0 {
		if err := Install(in, mod, Options{Typed: mode == 2}); err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
	if err := in.RunModule(mod); err != nil {
		t.Fatalf("run (mode %d): %v\nsource:\n%s", mode, err, minipy.Unparse(mod))
	}
	return buf.String()
}

// expectAllModes checks that all three modes produce want.
func expectAllModes(t *testing.T, src, want string) {
	t.Helper()
	for mode := 0; mode <= 2; mode++ {
		got := runMode(t, src, mode)
		if got != want {
			t.Fatalf("mode %d output mismatch.\ngot:  %q\nwant: %q", mode, got, want)
		}
	}
}

// expectModesAgree checks that all three modes produce identical
// output (differential testing without a golden value).
func expectModesAgree(t *testing.T, src string) {
	t.Helper()
	base := runMode(t, src, 0)
	for mode := 1; mode <= 2; mode++ {
		got := runMode(t, src, mode)
		if got != base {
			t.Fatalf("mode %d diverges from interpreter.\ninterp: %q\nmode%d: %q", mode, base, mode, got)
		}
	}
}

func TestCompiledArithmetic(t *testing.T) {
	expectAllModes(t, `
def f():
    print(7 // 2, -7 // 2, 7 % 3, -7 % 3, 7 % -3)
    print(7 / 2, 2 ** 10, 2 ** -1)
    print(1.5 + 2, 10 - 2 - 3, 2 ** 3 ** 2)
    print(5 & 3, 5 | 3, 5 ^ 3, 1 << 4, 64 >> 2, ~5)
f()
`, "3 -4 1 2 -2\n3.5 1024 0.5\n3.5 5 512\n1 7 6 16 16 -6\n")
}

func TestCompiledTypedNumerics(t *testing.T) {
	expectAllModes(t, `
def f(n: int) -> float:
    w: float = 1.0 / n
    acc: float = 0.0
    for i in range(n):
        local = (i + 0.5) * w
        acc += 4.0 / (1.0 + local * local)
    return acc * w

v = f(50000)
print(v > 3.14159 and v < 3.14160)
`, "True\n")
}

func TestCompiledControlFlow(t *testing.T) {
	expectAllModes(t, `
def f(n):
    total = 0
    i = 0
    while True:
        i += 1
        if i > n:
            break
        if i % 2 == 0:
            continue
        total += i
    return total
print(f(100))
`, "2500\n")
	expectAllModes(t, `
def grade(x):
    if x < 10:
        return "low"
    elif x < 20:
        return "mid"
    else:
        return "high"
print(grade(5), grade(15), grade(25))
`, "low mid high\n")
}

func TestCompiledForLoops(t *testing.T) {
	expectAllModes(t, `
def f():
    total = 0
    for i in range(10):
        total += i
    for i in range(10, 0, -2):
        total += i
    for v in [1, 2, 3]:
        total += v
    for c in "ab":
        total += ord(c)
    for k in {"x": 1, "y": 2}:
        total += len(k)
    return total
print(f())
`, "278\n")
	expectAllModes(t, `
def f():
    out = []
    for k, v in [(1, "a"), (2, "b")]:
        out.append(v * k)
    return out
print(f())
`, "['a', 'bb']\n")
}

func TestCompiledClosuresAndNonlocal(t *testing.T) {
	expectAllModes(t, `
def counter():
    n = 0
    def bump():
        nonlocal n
        n += 1
        return n
    return bump
c = counter()
print(c(), c(), c())
d = counter()
print(d())
`, "1 2 3\n1\n")
	expectAllModes(t, `
def make_adders():
    fns = []
    for i in range(3):
        def make(k):
            def add(x):
                return x + k
            return add
        fns.append(make(i))
    return fns
a = make_adders()
print(a[0](10), a[1](10), a[2](10))
`, "10 11 12\n")
}

func TestCompiledGlobals(t *testing.T) {
	expectAllModes(t, `
counter = 0
def bump():
    global counter
    counter += 1
def read():
    return counter
bump()
bump()
print(read())
`, "2\n")
}

func TestCompiledRecursion(t *testing.T) {
	expectAllModes(t, `
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)
print(fact(12))
`, "479001600\n")
	expectAllModes(t, `
def fib(n: int) -> int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(15))
`, "610\n")
}

func TestCompiledDataStructures(t *testing.T) {
	expectAllModes(t, `
def f():
    d = {}
    for w in ["a", "bb", "a", "ccc"]:
        d[w] = d.get(w, 0) + 1
    l = sorted(d.keys())
    out = []
    for k in l:
        out.append((k, d[k]))
    return out
print(f())
`, "[('a', 2), ('bb', 1), ('ccc', 1)]\n")
	expectAllModes(t, `
def f():
    s = set()
    for i in range(10):
        s.add(i % 3)
    l = [5, 3, 1]
    l.sort()
    t = (1, 2) + (3,)
    return (len(s), l, t, l[::-1], "xyz"[1:])
print(f())
`, "(3, [1, 3, 5], (1, 2, 3), [5, 3, 1], 'yz')\n")
}

func TestCompiledExceptions(t *testing.T) {
	expectAllModes(t, `
def safe_div(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        return "div0"
    finally:
        pass
print(safe_div(10, 4), safe_div(1, 0))
`, "2.5 div0\n")
	expectAllModes(t, `
def f():
    try:
        raise ValueError("boom")
    except ValueError as e:
        return "caught " + e.args[0]
print(f())
`, "caught boom\n")
	expectAllModes(t, `
def f():
    order = []
    try:
        order.append(1)
        raise KeyError("k")
    except IndexError:
        order.append(98)
    except:
        order.append(2)
    finally:
        order.append(3)
    return order
print(f())
`, "[1, 2, 3]\n")
}

func TestCompiledLambdasAndKwargs(t *testing.T) {
	expectAllModes(t, `
def apply(fn, x):
    return fn(x)
def f(a, b=10, c=20):
    return a + b + c
print(apply(lambda v: v * 2, 21))
print(f(1), f(1, c=2), f(1, 2, 3))
print(sorted([3, 1, 2], reverse=True))
`, "42\n31 13 6\n[3, 2, 1]\n")
}

func TestCompiledMathModule(t *testing.T) {
	expectAllModes(t, `
import math
def f(x: float) -> float:
    return math.sqrt(x) + math.pow(x, 2.0) + math.sin(0.0)
print(f(4.0))
def g():
    return math.floor(2.9) + math.ceil(0.1)
print(g())
`, "18.0\n3\n")
}

func TestCompiledStringOps(t *testing.T) {
	expectAllModes(t, `
def wc(text):
    counts = {}
    for w in text.lower().split():
        counts[w] = counts.get(w, 0) + 1
    out = []
    for k in sorted(counts.keys()):
        out.append(k + ":" + str(counts[k]))
    return " ".join(out)
print(wc("the cat and The dog and the bird"))
`, "and:2 bird:1 cat:1 dog:1 the:3\n")
}

func TestCompiledOMPPi(t *testing.T) {
	// The full pipeline: transform + compile, all modes.
	expectAllModes(t, `
from omp4py import *

@omp
def pi(n: int) -> float:
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local: float = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w

v = pi(20000)
print(v > 3.14159 and v < 3.14160)
`, "True\n")
}

func TestCompiledOMPTasks(t *testing.T) {
	expectAllModes(t, `
from omp4py import *

@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task if(n > 8)"):
        fib1 = fibonacci(n - 1)
    with omp("task if(n > 8)"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2

@omp
def run(n):
    result = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            result[0] = fibonacci(n)
    return result[0]

print(run(14))
`, "377\n")
}

func TestCompiledOMPWorksharing(t *testing.T) {
	expectAllModes(t, `
from omp4py import *

@omp
def f(n):
    hits = [0] * n
    with omp("parallel for num_threads(4) schedule(dynamic, 7)"):
        for i in range(n):
            hits[i] = hits[i] + 1
    return (sum(hits), min(hits), max(hits))

print(f(500))
`, "(500, 1, 1)\n")
}

func TestCompiledTypedListKernel(t *testing.T) {
	// Float-specialized list storage with unboxed element access.
	expectAllModes(t, `
def axpy(n: int) -> float:
    x = [0.0] * n
    y = [0.0] * n
    for i in range(n):
        x[i] = i * 0.5
        y[i] = i * 0.25
    a: float = 2.0
    for i in range(n):
        y[i] = a * x[i] + y[i]
    s: float = 0.0
    for i in range(n):
        s += y[i]
    return s
print(axpy(1000))
`, "624375.0\n")
}

func TestCompiledModesAgreeOnTrickyPrograms(t *testing.T) {
	srcs := []string{
		// Mixed typed/boxed arithmetic and shadowing.
		`
def f(x: float):
    y = "s" if x > 1e6 else x * 2
    return y
print(f(2.0), f(2e7))
`,
		// Chained comparisons and short circuits.
		`
def g(a, b, c):
    return 0 <= a < b <= c and (a or b)
print(g(1, 2, 3), g(2, 2, 3), g(0, 1, 1))
`,
		// Augmented assignment on subscripts.
		`
def h():
    d = {"k": 10}
    d["k"] += 5
    l = [1, 2, 3]
    l[1] *= 10
    return (d["k"], l)
print(h())
`,
		// Negative indices and slices.
		`
def s():
    l = [0, 1, 2, 3, 4]
    return (l[-1], l[-2], l[1:-1], l[::2])
print(s())
`,
		// While loop with typed counter and float accumulation.
		`
def w(n: int) -> float:
    acc: float = 0.0
    i: int = 0
    while i < n:
        acc += i / 2
        i += 1
    return acc
print(w(101))
`,
		// Unpacking and swaps.
		`
def u():
    a, b = 1, 2
    a, b = b, a
    (c, d), e = (3, 4), 5
    return (a, b, c, d, e)
print(u())
`,
		// Default parameters evaluated at definition time.
		`
base = 10
def dflt(x, y=base):
    return x + y
base = 99
print(dflt(1), dflt(1, 2))
`,
		// Deep nesting of functions sharing state.
		`
def outer():
    acc = []
    def mid():
        def inner():
            acc.append(len(acc))
        inner()
        inner()
    mid()
    return acc
print(outer())
`,
	}
	for _, src := range srcs {
		expectModesAgree(t, src)
	}
}

func TestCompileOnlySelectedFunctions(t *testing.T) {
	src := `
@omp(compile=True)
def fast(n):
    return n * 2

def slow(n):
    return n * 3

print(fast(10), slow(10))
`
	mod, err := minipy.Parse(src, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	res, err := transform.Module(mod)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	if err := Install(in, mod, Options{Only: res.Compile}); err != nil {
		t.Fatal(err)
	}
	if err := in.RunModule(mod); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "20 30\n" {
		t.Fatalf("output %q", buf.String())
	}
}

func TestCompiledUnboundLocal(t *testing.T) {
	src := `
def f():
    if False:
        x = 1
    return x
f()
`
	mod, err := minipy.Parse(src, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	if err := Install(in, mod, Options{}); err != nil {
		t.Fatal(err)
	}
	rerr := in.RunModule(mod)
	if rerr == nil || !strings.Contains(rerr.Error(), "UnboundLocalError") {
		t.Fatalf("error = %v, want UnboundLocalError", rerr)
	}
}

func TestTypeInference(t *testing.T) {
	src := `
def f(n: int, w: float):
    i = 0
    x = 1.5
    y = x + i
    s = "str"
    acc = 0
    for k in range(n):
        acc = acc + k
    mixed = 1
    mixed = "later"
    return acc
`
	mod, err := minipy.Parse(src, "t.py")
	if err != nil {
		t.Fatal(err)
	}
	fd := mod.Body[0].(*minipy.FuncDef)
	types := inferTypes(fd.Params, fd.Body)
	want := map[string]valType{
		"n": tInt, "w": tFloat, "i": tInt, "x": tFloat, "y": tFloat,
		"s": tBoxed, "acc": tInt, "k": tInt, "mixed": tBoxed,
	}
	for name, wt := range want {
		if types[name] != wt {
			t.Errorf("type of %s = %d, want %d", name, types[name], wt)
		}
	}
}

func TestCompiledSpeedupOverInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	src := `
def work(n: int) -> float:
    acc: float = 0.0
    for i in range(n):
        acc += (i % 7) * 0.5
    return acc
print(work(300000))
`
	timeMode := func(mode int) float64 {
		mod, err := minipy.Parse(src, "t.py")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
			Getenv: func(string) string { return "" }})
		if mode > 0 {
			if err := Install(in, mod, Options{Typed: mode == 2}); err != nil {
				t.Fatal(err)
			}
		}
		start := in.Runtime().GetWTime()
		if err := in.RunModule(mod); err != nil {
			t.Fatal(err)
		}
		return in.Runtime().GetWTime() - start
	}
	tInterp := timeMode(0)
	tCompiled := timeMode(1)
	tTyped := timeMode(2)
	t.Logf("interp %.4fs, compiled %.4fs, typed %.4fs", tInterp, tCompiled, tTyped)
	// Individual runs are noisy; assert only the robust ordering the
	// paper reports (compiled modes beat interpretation).
	if tCompiled > tInterp {
		t.Errorf("compiled mode (%.4fs) slower than interpreter (%.4fs)", tCompiled, tInterp)
	}
	if tTyped > tInterp {
		t.Errorf("typed mode (%.4fs) slower than interpreter (%.4fs)", tTyped, tInterp)
	}
}
