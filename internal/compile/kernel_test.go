package compile

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/transform"
)

// runKernelProbe runs src in the typed tier with the given kernel
// mode and ICV environment, returning the program output and how
// many worksharing-loop members executed as compiled kernels.
func runKernelProbe(t *testing.T, src string, kernels KernelMode, env func(string) string) (string, int64) {
	t.Helper()
	mod, err := minipy.Parse(src, "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := transform.Module(mod); err != nil {
		t.Fatalf("transform: %v", err)
	}
	if env == nil {
		env = func(string) string { return "" }
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic, Getenv: env})
	if err := Install(in, mod, Options{Typed: true, Kernels: kernels}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := in.RunModule(mod); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, minipy.Unparse(mod))
	}
	return buf.String(), in.Runtime().MetricsSnapshot().Counter(metrics.CompiledKernelLoops)
}

// hitsProgram is the worksharing probe: every index must be claimed
// exactly once whatever the schedule or lowering.
func hitsProgram(clause string) string {
	return `
from omp4py import *

@omp
def f(n):
    hits = [0] * n
    with omp("parallel for num_threads(4)` + clause + `"):
        for i in range(n):
            hits[i] = hits[i] + 1
    return (sum(hits), min(hits), max(hits))

print(f(500))
`
}

// TestKernelScheduleSelection pins which schedule clauses select the
// compiled kernel (static, compile-time chunk) and which fall back to
// the interp bridge (dynamic, guided, runtime, auto). Every variant
// must still claim each index exactly once in all three tiers.
func TestKernelScheduleSelection(t *testing.T) {
	cases := []struct {
		clause string
		kernel bool
	}{
		{"", true}, // no clause: transform defaults to static
		{" schedule(static)", true},
		{" schedule(static, 16)", true},
		{" schedule(dynamic, 7)", false},
		{" schedule(guided, 4)", false},
		{" schedule(runtime)", false},
		{" schedule(auto)", false},
	}
	for _, tc := range cases {
		name := tc.clause
		if name == "" {
			name = "default"
		}
		t.Run(name, func(t *testing.T) {
			expectAllModes(t, hitsProgram(tc.clause), "(500, 1, 1)\n")
			out, loops := runKernelProbe(t, hitsProgram(tc.clause), KernelsAuto, nil)
			if out != "(500, 1, 1)\n" {
				t.Fatalf("output = %q, want (500, 1, 1)", out)
			}
			if tc.kernel && loops == 0 {
				t.Fatalf("schedule %q: expected compiled kernel, counter is 0", tc.clause)
			}
			if !tc.kernel && loops != 0 {
				t.Fatalf("schedule %q: expected bridge fallback, kernel counter = %d", tc.clause, loops)
			}
		})
	}
}

// TestKernelEscapeHatch covers the OMP4GO_COMPILE_KERNELS ICV and the
// Options.Kernels override: off pins the bridge, on forces kernels
// regardless of the environment, auto consults the ICV at Install.
func TestKernelEscapeHatch(t *testing.T) {
	src := hitsProgram("")
	envOff := func(k string) string {
		if k == "OMP4GO_COMPILE_KERNELS" {
			return "off"
		}
		return ""
	}
	for _, tc := range []struct {
		name    string
		kernels KernelMode
		env     func(string) string
		want    bool
	}{
		{"auto-default-on", KernelsAuto, nil, true},
		{"auto-env-off", KernelsAuto, envOff, false},
		{"forced-off", KernelsOff, nil, false},
		{"forced-on-beats-env", KernelsOn, envOff, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, loops := runKernelProbe(t, src, tc.kernels, tc.env)
			if out != "(500, 1, 1)\n" {
				t.Fatalf("output = %q", out)
			}
			if got := loops > 0; got != tc.want {
				t.Fatalf("kernel loops = %d, want kernels=%v", loops, tc.want)
			}
		})
	}
}

// TestKernelUntypedTierNeverKernels: the untyped compiled tier has no
// iSlot loop variables, so even KernelsOn must stay on the bridge.
func TestKernelUntypedTierNeverKernels(t *testing.T) {
	mod, err := minipy.Parse(hitsProgram(""), "test.py")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := transform.Module(mod); err != nil {
		t.Fatalf("transform: %v", err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Stdout: &buf, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	if err := Install(in, mod, Options{Typed: false, Kernels: KernelsOn}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := in.RunModule(mod); err != nil {
		t.Fatalf("run: %v", err)
	}
	if buf.String() != "(500, 1, 1)\n" {
		t.Fatalf("output = %q", buf.String())
	}
	if n := in.Runtime().MetricsSnapshot().Counter(metrics.CompiledKernelLoops); n != 0 {
		t.Fatalf("untyped tier ran %d kernel loops, want 0", n)
	}
}

// TestKernelLastprivateFallsBack: lastprivate needs the bridge's
// for_last bookkeeping, so the recognizer must bail — and the loop
// must still produce the sequentially-last value.
func TestKernelLastprivateFallsBack(t *testing.T) {
	src := `
from omp4py import *

@omp
def f(n):
    last = 0
    with omp("parallel for lastprivate(last) num_threads(4)"):
        for i in range(n):
            last = i * 2
    return last

print(f(100))
`
	expectAllModes(t, src, "198\n")
	out, loops := runKernelProbe(t, src, KernelsAuto, nil)
	if out != "198\n" {
		t.Fatalf("output = %q", out)
	}
	if loops != 0 {
		t.Fatalf("lastprivate loop ran as kernel (%d), must use bridge", loops)
	}
}

// TestKernelReductionRunsAsKernel: the pi shape (static schedule,
// float reduction) is the flagship kernel loop; the merge still goes
// through the reduction critical section after the kernel body.
func TestKernelReductionRunsAsKernel(t *testing.T) {
	src := `
from omp4py import *

@omp
def pi(n: int) -> float:
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value) num_threads(4)"):
        for i in range(n):
            local: float = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w

v = pi(20000)
print(v > 3.14159 and v < 3.14160)
`
	out, loops := runKernelProbe(t, src, KernelsAuto, nil)
	if out != "True\n" {
		t.Fatalf("output = %q", out)
	}
	if loops < 4 {
		t.Fatalf("kernel loops = %d, want one per team member (4)", loops)
	}
}

// TestKernelBreakContinueSemantics: break leaves only the current
// chunk (the member then claims its next chunk), continue skips one
// iteration — both must match the interpreter's bridge semantics
// bit-for-bit under the deterministic static partition.
func TestKernelBreakContinueSemantics(t *testing.T) {
	// 4 members x block partition of 120 = one 30-wide chunk each;
	// each breaks at base+7, counting 7 hits. Deterministic.
	expectAllModes(t, `
from omp4py import *

@omp
def f(n):
    hits = [0] * n
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            if i % 10 == 7:
                break
            hits[i] = hits[i] + 1
    return sum(hits)

print(f(120))
`, "28\n")
	// With chunk=5 each member owns many chunks; break abandons one
	// chunk, the round-robin successor is still claimed.
	expectModesAgree(t, `
from omp4py import *

@omp
def f(n):
    hits = [0] * n
    with omp("parallel for num_threads(4) schedule(static, 5)"):
        for i in range(n):
            if i % 7 == 3:
                break
            hits[i] = hits[i] + 1
    return (sum(hits), max(hits))

print(f(200))
`)
	expectAllModes(t, `
from omp4py import *

@omp
def f(n):
    hits = [0] * n
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            if i % 3 == 0:
                continue
            hits[i] = hits[i] + 1
    return sum(hits)

print(f(99))
`, "66\n")
}

// TestKernelHoistedListAccess: float and int element loads/stores
// inside a kernel use hoisted unboxed storage; results must agree
// with the interpreter exactly. The sequential checksum loop uses a
// different variable on purpose — reusing the worksharing loop
// variable outside the region makes the transform share it via
// nonlocal, which is the captured-loop-var fallback pinned below.
func TestKernelHoistedListAccess(t *testing.T) {
	src := `
from omp4py import *

@omp
def f(n):
    xs = [0.0] * n
    ys = [0] * n
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            xs[i] = xs[i] + i * 0.5
            ys[i] = ys[i] + i * 3
    s = 0.0
    for j in range(n):
        s = s + xs[j] + ys[j]
    return s

print(f(400))
`
	expectModesAgree(t, src)
	_, loops := runKernelProbe(t, src, KernelsAuto, nil)
	if loops < 4 {
		t.Fatalf("kernel loops = %d, want one per member", loops)
	}
}

// TestKernelLoopVarReusedOutsideRegion: the worksharing loop variable
// is implicitly private (the transform keeps it a plain local of the
// region closure even when the enclosing function also binds it), so
// this shape is kernel-eligible and race-free.
func TestKernelLoopVarReusedOutsideRegion(t *testing.T) {
	src := `
from omp4py import *

@omp
def f(n):
    xs = [0.0] * n
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            xs[i] = xs[i] + i * 0.5
    s = 0.0
    for i in range(n):
        s = s + xs[i]
    return s

print(f(400))
`
	expectModesAgree(t, src)
	_, loops := runKernelProbe(t, src, KernelsAuto, nil)
	if loops < 4 {
		t.Fatalf("kernel loops = %d, want one per member", loops)
	}
}

// TestKernelCapturedLoopVarFallsBack: a loop variable captured by a
// nested function lives in a cell, not an unboxed int slot, so the
// loop must run on the bridge (and still agree with the interpreter).
func TestKernelCapturedLoopVarFallsBack(t *testing.T) {
	src := `
from omp4py import *

@omp
def f(n):
    xs = [0.0] * n
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            g = lambda: i * 0.5
            xs[i] = xs[i] + g()
    s = 0.0
    for j in range(n):
        s = s + xs[j]
    return s

print(f(400))
`
	expectModesAgree(t, src)
	_, loops := runKernelProbe(t, src, KernelsAuto, nil)
	if loops != 0 {
		t.Fatalf("captured loop var ran as kernel (%d), must use bridge", loops)
	}
}

// TestKernelMatchesBridgeAcrossThreadCounts is a narrow differential:
// the same static-schedule program under kernels on vs off vs the
// interpreter, across thread counts and chunk sizes, must print the
// same thing (the partitions are arithmetically identical).
func TestKernelMatchesBridgeAcrossThreadCounts(t *testing.T) {
	for _, nt := range []int{1, 3, 4, 8} {
		for _, clause := range []string{"", " schedule(static, 1)", " schedule(static, 13)"} {
			src := fmt.Sprintf(`
from omp4py import *

@omp
def f(n):
    acc = 0
    with omp("parallel for reduction(+:acc) num_threads(%d)%s"):
        for i in range(n):
            acc += i * i
    return acc

print(f(1000))
`, nt, clause)
			interp0 := runMode(t, src, 0)
			on, _ := runKernelProbe(t, src, KernelsAuto, nil)
			off, _ := runKernelProbe(t, src, KernelsOff, nil)
			if on != interp0 || off != interp0 {
				t.Fatalf("nt=%d clause=%q: interp=%q kernels-on=%q kernels-off=%q",
					nt, clause, interp0, on, off)
			}
		}
	}
}
