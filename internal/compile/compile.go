// Package compile implements the Compiled and CompiledDT execution
// modes: MiniPy functions are translated into trees of Go closures
// with slot-addressed frames, eliminating the tree-walker's AST
// dispatch and map-based environments — the role Cython plays for
// OMP4Py user code.
//
// Without type information (the paper's Compiled mode) values stay
// boxed and operators go through the same object protocol the
// interpreter uses, mirroring Cython's conservative default. With
// Options.Typed (CompiledDT), int/float annotations, literals, and
// range loop variables drive a local type inference that assigns
// unboxed int64/float64 frame slots and specializes arithmetic,
// comparisons, and list element access into native Go code.
package compile

import (
	"fmt"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
)

// Options configure compilation.
type Options struct {
	// Typed enables the CompiledDT specialization.
	Typed bool
	// Only restricts compilation to the named top-level functions
	// (per-function @omp(compile=True)); nil compiles every
	// module-level function, as passing the whole module through
	// Cython does.
	Only map[string]bool
	// Kernels selects whether transform-lowered worksharing loops
	// with compile-time-known static schedules compile to
	// runtime-aware kernels (rt.StaticBounds iteration, hoisted list
	// storage) instead of the per-chunk interp bridge. The default
	// KernelsAuto consults the runtime's OMP4GO_COMPILE_KERNELS ICV
	// at Install time; kernels additionally require Typed.
	Kernels KernelMode
}

// KernelMode is the three-way compiled-kernel switch.
type KernelMode int

const (
	// KernelsAuto defers to rt.Runtime.CompiledKernelsEnabled (the
	// OMP4GO_COMPILE_KERNELS ICV, default on).
	KernelsAuto KernelMode = iota
	// KernelsOn forces kernel compilation (still requires Typed).
	KernelsOn
	// KernelsOff forces every worksharing loop onto the interp
	// bridge, the differential baseline for kernel validation.
	KernelsOff
)

// Install compiles the module's top-level functions and hooks the
// interpreter so their function objects execute compiled code. Call
// it after transformation and before interp.RunModule.
func Install(in *interp.Interp, mod *minipy.Module, opts Options) error {
	c := &compiler{in: in, opts: opts, table: make(map[*minipy.FuncDef]*funcCode)}
	// The kernel decision is made once, here: the escape hatch is an
	// ICV (environment or rt.Runtime.SetCompiledKernels), read before
	// any function compiles. Toggling the ICV after Install does not
	// re-lower already-compiled loops.
	switch opts.Kernels {
	case KernelsOn:
		c.kernels = opts.Typed
	case KernelsOff:
		c.kernels = false
	default:
		c.kernels = opts.Typed && in.Runtime().CompiledKernelsEnabled()
	}
	for _, s := range mod.Body {
		fd, ok := s.(*minipy.FuncDef)
		if !ok {
			continue
		}
		if opts.Only != nil && !opts.Only[fd.Name] {
			continue
		}
		code, err := c.compileFunc(fd.Name, fd.Params, fd.Body, nil)
		if err != nil {
			return fmt.Errorf("compile %s: %w", fd.Name, err)
		}
		c.table[fd] = code
	}
	in.SetCompileHook(func(fd *minipy.FuncDef, fn *interp.Function) {
		if code, ok := c.table[fd]; ok {
			fn.Compiled = code.entry(nil, fn)
		}
	})
	return nil
}

type compiler struct {
	in      *interp.Interp
	opts    Options
	kernels bool // resolved kernel switch (Typed && mode/ICV)
	table   map[*minipy.FuncDef]*funcCode
}

// Frame is one activation of a compiled function.
type Frame struct {
	th    *interp.Thread
	slots []interp.Value
	cells []*interp.Cell
	free  []*interp.Cell
	f     []float64
	i     []int64
	ret   interp.Value
	// kern is non-nil only while a compiled loop kernel in this frame
	// executes; it holds the hoisted unboxed list storage the kernel's
	// body closures index directly (kernel.go).
	kern *kernelEnv
}

// flow is the statement outcome: sequential, break, continue, or
// return (with fr.ret set).
type flow int

const (
	flowNext flow = iota
	flowBreak
	flowContinue
	flowReturn
)

type stmtFn func(fr *Frame) (flow, error)

type exprFn func(fr *Frame) (interp.Value, error)

type floatFn func(fr *Frame) (float64, error)

type intFn func(fr *Frame) (int64, error)

// funcCode is the compiled form of one function.
type funcCode struct {
	name      string
	params    []minipy.Param
	nSlots    int
	nCells    int
	nF, nI    int
	captures  []captureSrc // how to fill frame.free from the enclosing frame
	paramBind []binding
	body      stmtFn
}

// captureSrc says where a free cell comes from in the defining frame.
type captureSrc struct {
	fromFree bool
	idx      int
}

// binding places a call argument into the frame.
type binding struct {
	kind refKind
	idx  int
}

// entry builds the callable entry point for this code, closing over
// the defining frame (nil for top-level functions). fnVal supplies
// defaults.
func (code *funcCode) entry(defFrame *Frame, fnVal *interp.Function) func(*interp.Thread, []interp.Value) (interp.Value, error) {
	// Resolve the free-variable cells once, at closure creation.
	free := make([]*interp.Cell, len(code.captures))
	for k, cap := range code.captures {
		if defFrame == nil {
			free[k] = &interp.Cell{}
			continue
		}
		if cap.fromFree {
			free[k] = defFrame.free[cap.idx]
		} else {
			free[k] = defFrame.cells[cap.idx]
		}
	}
	return func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		if len(args) > len(code.params) {
			return nil, interp.NewPyError("TypeError",
				fmt.Sprintf("%s() takes %d positional arguments but %d were given",
					code.name, len(code.params), len(args)),
				minipy.Position{})
		}
		fr := &Frame{
			th:   th,
			free: free,
		}
		if code.nSlots > 0 {
			fr.slots = make([]interp.Value, code.nSlots)
			for k := range fr.slots {
				fr.slots[k] = unboundMarker
			}
		}
		if code.nCells > 0 {
			fr.cells = make([]*interp.Cell, code.nCells)
			for k := range fr.cells {
				fr.cells[k] = &interp.Cell{}
			}
		}
		if code.nF > 0 {
			fr.f = make([]float64, code.nF)
		}
		if code.nI > 0 {
			fr.i = make([]int64, code.nI)
		}
		for pi := range code.params {
			var v interp.Value
			switch {
			case pi < len(args):
				v = args[pi]
			case fnVal != nil && pi < len(fnVal.Defaults) && (fnVal.Defaults[pi] != nil || code.params[pi].Default != nil):
				v = fnVal.Defaults[pi]
			default:
				return nil, interp.NewPyError("TypeError",
					fmt.Sprintf("%s() missing required argument: '%s'", code.name, code.params[pi].Name),
					minipy.Position{})
			}
			if err := fr.storeBinding(code.paramBind[pi], v); err != nil {
				return nil, err
			}
		}
		fl, err := code.body(fr)
		if err != nil {
			return nil, err
		}
		if fl == flowReturn {
			return fr.ret, nil
		}
		return nil, nil
	}
}

func (fr *Frame) storeBinding(b binding, v interp.Value) error {
	switch b.kind {
	case refSlot:
		fr.slots[b.idx] = v
	case refCell:
		fr.cells[b.idx].SetValue(v)
	case refFSlot:
		f, ok := interp.AsFloat(v)
		if !ok {
			return interp.NewPyError("TypeError", "expected float argument", minipy.Position{})
		}
		fr.f[b.idx] = f
	case refISlot:
		n, ok := interp.AsInt(v)
		if !ok {
			return interp.NewPyError("TypeError", "expected int argument", minipy.Position{})
		}
		fr.i[b.idx] = n
	default:
		return interp.NewPyError("RuntimeError", "bad parameter binding", minipy.Position{})
	}
	return nil
}
