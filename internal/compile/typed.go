package compile

import "github.com/omp4go/omp4go/internal/minipy"

// valType is the small type lattice of the CompiledDT specializer:
// unknown < int, float < boxed. join(int, float) = float (numeric
// promotion); anything joined with boxed stays boxed.
type valType int

const (
	tUnknown valType = iota
	tInt
	tFloat
	tBoxed
)

func joinTypes(a, b valType) valType {
	if a == b {
		return a
	}
	if a == tUnknown {
		return b
	}
	if b == tUnknown {
		return a
	}
	if (a == tInt && b == tFloat) || (a == tFloat && b == tInt) {
		return tFloat
	}
	return tBoxed
}

// inferTypes runs a fixed-point dataflow over one function body:
// int/float annotations seed variable types, range loop variables are
// ints, and every assignment joins the assigned expression's static
// type into the target. Variables that end boxed (or conflicted) stay
// on the boxed path.
func inferTypes(params []minipy.Param, body []minipy.Stmt) map[string]valType {
	types := make(map[string]valType)
	annotate := func(name string, ann minipy.Expr) {
		if n, ok := ann.(*minipy.Name); ok {
			switch n.ID {
			case "int":
				types[name] = joinTypes(types[name], tInt)
			case "float":
				types[name] = joinTypes(types[name], tFloat)
			default:
				types[name] = tBoxed
			}
		}
	}
	for _, p := range params {
		if p.Annotation != nil {
			annotate(p.Name, p.Annotation)
		}
	}

	join := func(name string, t valType) {
		types[name] = joinTypes(types[name], t)
	}

	var scanStmts func(body []minipy.Stmt)
	scanStmts = func(body []minipy.Stmt) {
		for _, s := range body {
			switch t := s.(type) {
			case *minipy.AnnAssign:
				if n, ok := t.Target.(*minipy.Name); ok {
					annotate(n.ID, t.Annotation)
					if t.Value != nil {
						join(n.ID, exprType(t.Value, types))
					}
				}
			case *minipy.Assign:
				vt := exprType(t.Value, types)
				for _, tgt := range t.Targets {
					if n, ok := tgt.(*minipy.Name); ok {
						join(n.ID, vt)
					}
				}
			case *minipy.AugAssign:
				if n, ok := t.Target.(*minipy.Name); ok {
					cur := types[n.ID]
					res := binOpType(t.Op, cur, exprType(t.Value, types))
					join(n.ID, res)
				}
			case *minipy.For:
				if n, ok := t.Target.(*minipy.Name); ok {
					if isRangeCall(t.Iter) {
						join(n.ID, tInt)
					} else {
						join(n.ID, tBoxed)
					}
				} else {
					// Tuple targets stay boxed.
					markTargetsBoxed(t.Target, types)
				}
				scanStmts(t.Body)
			case *minipy.If:
				scanStmts(t.Body)
				scanStmts(t.Else)
			case *minipy.While:
				scanStmts(t.Body)
			case *minipy.With:
				scanStmts(t.Body)
			case *minipy.Try:
				scanStmts(t.Body)
				for _, h := range t.Handlers {
					if h.Name != "" {
						types[h.Name] = tBoxed
					}
					scanStmts(h.Body)
				}
				scanStmts(t.Final)
			case *minipy.FuncDef:
				types[t.Name] = tBoxed
				// Nested bodies are separate scopes.
			case *minipy.Del:
				for _, tgt := range t.Targets {
					markTargetsBoxed(tgt, types)
				}
			}
		}
	}
	// Iterate to a fixed point; the lattice has height 3, so a few
	// passes suffice.
	for pass := 0; pass < 4; pass++ {
		before := snapshot(types)
		scanStmts(body)
		if equalTypes(before, types) {
			break
		}
	}
	return types
}

func markTargetsBoxed(e minipy.Expr, types map[string]valType) {
	switch t := e.(type) {
	case *minipy.Name:
		types[t.ID] = tBoxed
	case *minipy.TupleLit:
		for _, el := range t.Elts {
			markTargetsBoxed(el, types)
		}
	case *minipy.ListLit:
		for _, el := range t.Elts {
			markTargetsBoxed(el, types)
		}
	}
}

func snapshot(m map[string]valType) map[string]valType {
	out := make(map[string]valType, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func equalTypes(a, b map[string]valType) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func isRangeCall(e minipy.Expr) bool {
	call, ok := e.(*minipy.Call)
	if !ok {
		return false
	}
	n, ok := call.Fn.(*minipy.Name)
	return ok && n.ID == "range"
}

// mathFloatFns are math-module functions known to return float.
var mathFloatFns = map[string]bool{
	"sqrt": true, "sin": true, "cos": true, "tan": true, "exp": true,
	"log": true, "log2": true, "log10": true, "fabs": true, "pow": true,
	"atan": true, "atan2": true, "asin": true, "acos": true, "fmod": true,
}

// exprType computes the static type of an expression under the
// current variable typing.
func exprType(e minipy.Expr, types map[string]valType) valType {
	switch t := e.(type) {
	case *minipy.IntLit:
		return tInt
	case *minipy.FloatLit:
		return tFloat
	case *minipy.Name:
		if vt, ok := types[t.ID]; ok {
			return vt
		}
		return tBoxed
	case *minipy.BinOp:
		return binOpType(t.Op, exprType(t.L, types), exprType(t.R, types))
	case *minipy.UnaryOp:
		switch t.Op {
		case "-", "+":
			xt := exprType(t.X, types)
			if xt == tInt || xt == tFloat {
				return xt
			}
		case "~":
			if exprType(t.X, types) == tInt {
				return tInt
			}
		}
		return tBoxed
	case *minipy.IfExp:
		return joinTypes(exprType(t.Then, types), exprType(t.Else, types))
	case *minipy.Call:
		switch fn := t.Fn.(type) {
		case *minipy.Name:
			switch fn.ID {
			case "int", "len", "ord":
				return tInt
			case "float":
				return tFloat
			case "abs":
				if len(t.Args) == 1 {
					at := exprType(t.Args[0], types)
					if at == tInt || at == tFloat {
						return at
					}
				}
			case "min", "max":
				if len(t.Args) >= 2 {
					out := tUnknown
					for _, a := range t.Args {
						out = joinTypes(out, exprType(a, types))
					}
					if out == tInt || out == tFloat {
						return out
					}
				}
			}
		case *minipy.Attribute:
			if base, ok := fn.X.(*minipy.Name); ok && base.ID == "math" && mathFloatFns[fn.Name] {
				return tFloat
			}
		}
		return tBoxed
	}
	return tBoxed
}

// binOpType gives the result type of an arithmetic operator. Two
// Python facts make the float rules strong: true division always
// yields a float (or raises TypeError), and arithmetic with a float
// operand yields a float (or raises TypeError) — so a float operand
// pins the result type even when the other side is unknown. This is
// what keeps `s += a[i] * x[j]` on the unboxed path when s is
// annotated float but list elements are statically untyped.
func binOpType(op string, l, r valType) valType {
	switch op {
	case "/":
		return tFloat // numeric-or-TypeError in Python
	case "+", "-", "*", "//", "%", "**":
		if l == tFloat || r == tFloat {
			return tFloat
		}
		if l == tInt && r == tInt {
			if op == "**" {
				// int ** int may produce a float for negative
				// exponents; stay boxed.
				return tBoxed
			}
			return tInt
		}
		return tBoxed
	case "&", "|", "^", "<<", ">>":
		if l == tInt && r == tInt {
			return tInt
		}
		return tBoxed
	}
	return tBoxed
}
