// Package pyomp models the PyOMP baseline of the paper's evaluation:
// a Numba-based prototype that compiles numerical kernels to native
// code but supports only a subset of OpenMP (static scheduling, no
// nowait, no task if clause) and cannot compile dynamic Python
// features (dicts, graph objects, mpi4py).
//
// The kernels here are native Go with OpenMP-style parallelization
// through the omp package — the correct stand-in for Numba's LLVM
// output — and double as the sequential reference implementations
// that validate every OMP4Py execution mode.
package pyomp

import (
	"errors"
	"fmt"
	"math"

	"github.com/omp4go/omp4go/omp"
)

// ErrUnsupported marks benchmarks PyOMP cannot run, with the reason
// the paper gives.
var ErrUnsupported = errors.New("pyomp: unsupported benchmark")

// Unsupported lists the evaluation benchmarks PyOMP cannot execute
// and why (§IV-A, §IV-B).
var Unsupported = map[string]string{
	"qsort":     "parallel recursive algorithm using OpenMP tasks with the if clause, not supported",
	"bfs":       "Numba compilation error at execution time",
	"graphic":   "Numba cannot compile the graph object and related functions",
	"wordcount": "Numba lacks support for compiling Python dictionaries",
	"wavefront": "task depend clauses are not supported by the PyOMP baseline",
}

// Run executes a PyOMP kernel. args are benchmark-specific sizes; it
// returns the checksum the MiniPy versions also produce.
func Run(name string, threads int, args []int64) (float64, error) {
	if reason, no := Unsupported[name]; no {
		return 0, fmt.Errorf("%w: %s: %s", ErrUnsupported, name, reason)
	}
	switch name {
	case "pi":
		return ParallelPi(threads, args[0]), nil
	case "fft":
		return ParallelFFT(threads, int(args[0]), args[1]), nil
	case "jacobi":
		return ParallelJacobi(threads, int(args[0]), int(args[1]), args[2]), nil
	case "lu":
		return ParallelLU(threads, int(args[0]), args[1]), nil
	case "md":
		return ParallelMD(threads, int(args[0]), int(args[1]), args[2]), nil
	}
	return 0, fmt.Errorf("pyomp: unknown benchmark %q", name)
}

// splitmix is the shared deterministic generator; MiniPy sources use
// the same recurrence so inputs match bit for bit.
type splitmix struct{ s uint64 }

func newRand(seed int64) *splitmix {
	return &splitmix{s: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float returns a uniform value in [0, 1).
func (r *splitmix) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// ---- pi ----

// SequentialPi integrates 4/(1+x²) with n midpoint intervals.
func SequentialPi(n int64) float64 {
	w := 1.0 / float64(n)
	sum := 0.0
	for i := int64(0); i < n; i++ {
		local := (float64(i) + 0.5) * w
		sum += 4.0 / (1.0 + local*local)
	}
	return sum * w
}

// ParallelPi is the PyOMP kernel: parallel for + reduction, static
// scheduling only.
func ParallelPi(threads int, n int64) float64 {
	w := 1.0 / float64(n)
	sum, err := omp.ParallelReduce(0, int(n), 0.0, omp.Sum[float64],
		func(tc *omp.TC, i int, acc float64) float64 {
			local := (float64(i) + 0.5) * w
			return acc + 4.0/(1.0+local*local)
		}, omp.WithNumThreads(threads))
	if err != nil {
		panic(err)
	}
	return sum * w
}

// ---- fft ----

// FFTInput builds the deterministic complex test signal.
func FFTInput(n int, seed int64) (re, im []float64) {
	r := newRand(seed)
	re = make([]float64, n)
	im = make([]float64, n)
	for i := range re {
		re[i] = 2*r.float() - 1
		im[i] = 2*r.float() - 1
	}
	return re, im
}

// fftStages runs the iterative radix-2 Cooley-Tukey FFT in place;
// body distributes the outer group loop.
func fftCore(re, im []float64, forEach func(total int, body func(g int))) {
	n := len(re)
	// Bit reversal permutation.
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		groups := n / length
		half := length / 2
		forEach(groups, func(g int) {
			base := g * length
			curRe, curIm := 1.0, 0.0
			for k := 0; k < half; k++ {
				aRe, aIm := re[base+k], im[base+k]
				bRe := re[base+k+half]*curRe - im[base+k+half]*curIm
				bIm := re[base+k+half]*curIm + im[base+k+half]*curRe
				re[base+k], im[base+k] = aRe+bRe, aIm+bIm
				re[base+k+half], im[base+k+half] = aRe-bRe, aIm-bIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		})
	}
}

// fftChecksum samples the spectrum into a stable scalar.
func fftChecksum(re, im []float64) float64 {
	sum := 0.0
	step := len(re) / 64
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(re); i += step {
		sum += math.Abs(re[i]) + math.Abs(im[i])
	}
	return sum
}

// SequentialFFT runs the reference transform and returns the
// checksum.
func SequentialFFT(n int, seed int64) float64 {
	re, im := FFTInput(n, seed)
	fftCore(re, im, func(total int, body func(int)) {
		for g := 0; g < total; g++ {
			body(g)
		}
	})
	return fftChecksum(re, im)
}

// ParallelFFT distributes each stage's butterfly groups.
func ParallelFFT(threads, n int, seed int64) float64 {
	re, im := FFTInput(n, seed)
	fftCore(re, im, func(total int, body func(int)) {
		if err := omp.ParallelFor(0, total, func(tc *omp.TC, g int) {
			body(g)
		}, omp.WithNumThreads(threads)); err != nil {
			panic(err)
		}
	})
	return fftChecksum(re, im)
}

// ---- jacobi ----

// JacobiInput builds a diagonally dominant system A·x = b.
func JacobiInput(n int, seed int64) (a, b []float64) {
	r := newRand(seed)
	a = make([]float64, n*n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := r.float() - 0.5
				a[i*n+j] = v
				rowSum += math.Abs(v)
			}
		}
		a[i*n+i] = rowSum + 1.0
		b[i] = r.float() * float64(n)
	}
	return a, b
}

// jacobiCore iterates until maxIter (the stopping tolerance is kept
// tiny so iteration counts stay deterministic across thread counts).
func jacobiCore(a, b []float64, n, maxIter int, forRange func(lo, hi int, body func(i int))) []float64 {
	x := make([]float64, n)
	xn := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		forRange(0, n, func(i int) {
			s := 0.0
			row := a[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				if j != i {
					s += row[j] * x[j]
				}
			}
			xn[i] = (b[i] - s) / row[i]
		})
		x, xn = xn, x
	}
	return x
}

func vecSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// SequentialJacobi returns the solution checksum after maxIter
// sweeps.
func SequentialJacobi(n, maxIter int, seed int64) float64 {
	a, b := JacobiInput(n, seed)
	x := jacobiCore(a, b, n, maxIter, func(lo, hi int, body func(int)) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
	return vecSum(x)
}

// ParallelJacobi distributes each sweep's rows.
func ParallelJacobi(threads, n, maxIter int, seed int64) float64 {
	a, b := JacobiInput(n, seed)
	x := jacobiCore(a, b, n, maxIter, func(lo, hi int, body func(int)) {
		if err := omp.ParallelFor(lo, hi, func(tc *omp.TC, i int) {
			body(i)
		}, omp.WithNumThreads(threads)); err != nil {
			panic(err)
		}
	})
	return vecSum(x)
}

// ---- lu ----

// LUInput builds a well-conditioned dense matrix.
func LUInput(n int, seed int64) []float64 {
	r := newRand(seed)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = r.float() - 0.5
		}
		a[i*n+i] += float64(n)
	}
	return a
}

// luCore performs in-place Doolittle factorization without pivoting.
func luCore(a []float64, n int, forRange func(lo, hi int, body func(i int))) {
	for k := 0; k < n; k++ {
		pivot := a[k*n+k]
		forRange(k+1, n, func(i int) {
			factor := a[i*n+k] / pivot
			a[i*n+k] = factor
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= factor * a[k*n+j]
			}
		})
	}
}

func luChecksum(a []float64, n int) float64 {
	// Sum of log|U_kk|: numerically stable determinant surrogate.
	s := 0.0
	for k := 0; k < n; k++ {
		s += math.Log(math.Abs(a[k*n+k]))
	}
	return s
}

// SequentialLU returns the factorization checksum.
func SequentialLU(n int, seed int64) float64 {
	a := LUInput(n, seed)
	luCore(a, n, func(lo, hi int, body func(int)) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
	return luChecksum(a, n)
}

// ParallelLU distributes the row updates of each elimination step.
func ParallelLU(threads, n int, seed int64) float64 {
	a := LUInput(n, seed)
	luCore(a, n, func(lo, hi int, body func(int)) {
		if err := omp.ParallelFor(lo, hi, func(tc *omp.TC, i int) {
			body(i)
		}, omp.WithNumThreads(threads)); err != nil {
			panic(err)
		}
	})
	return luChecksum(a, n)
}

// ---- md ----

// MDInput places particles deterministically in the unit box.
func MDInput(nParticles int, seed int64) (pos, vel []float64) {
	r := newRand(seed)
	pos = make([]float64, 2*nParticles)
	vel = make([]float64, 2*nParticles)
	for i := range pos {
		pos[i] = r.float()
	}
	return pos, vel
}

// mdForces computes soft central pair forces into acc.
func mdForces(pos, acc []float64, n int, forRange func(lo, hi int, body func(i int))) {
	forRange(0, n, func(i int) {
		fx, fy := 0.0, 0.0
		xi, yi := pos[2*i], pos[2*i+1]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := xi - pos[2*j]
			dy := yi - pos[2*j+1]
			r2 := dx*dx + dy*dy + 1e-6
			inv := 1.0 / (r2 * math.Sqrt(r2))
			fx += dx * inv * 1e-6
			fy += dy * inv * 1e-6
		}
		acc[2*i] = fx
		acc[2*i+1] = fy
	})
}

// mdCore runs velocity Verlet steps.
func mdCore(pos, vel []float64, n, steps int, forRange func(lo, hi int, body func(i int))) {
	const dt = 1e-3
	acc := make([]float64, 2*n)
	mdForces(pos, acc, n, forRange)
	for s := 0; s < steps; s++ {
		forRange(0, n, func(i int) {
			vel[2*i] += 0.5 * dt * acc[2*i]
			vel[2*i+1] += 0.5 * dt * acc[2*i+1]
			pos[2*i] += dt * vel[2*i]
			pos[2*i+1] += dt * vel[2*i+1]
		})
		mdForces(pos, acc, n, forRange)
		forRange(0, n, func(i int) {
			vel[2*i] += 0.5 * dt * acc[2*i]
			vel[2*i+1] += 0.5 * dt * acc[2*i+1]
		})
	}
}

func mdChecksum(pos []float64) float64 { return vecSum(pos) }

// SequentialMD returns the position checksum after the simulation.
func SequentialMD(n, steps int, seed int64) float64 {
	pos, vel := MDInput(n, seed)
	mdCore(pos, vel, n, steps, func(lo, hi int, body func(int)) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
	return mdChecksum(pos)
}

// ParallelMD distributes the force and integration loops.
func ParallelMD(threads, n, steps int, seed int64) float64 {
	pos, vel := MDInput(n, seed)
	mdCore(pos, vel, n, steps, func(lo, hi int, body func(int)) {
		if err := omp.ParallelFor(lo, hi, func(tc *omp.TC, i int) {
			body(i)
		}, omp.WithNumThreads(threads)); err != nil {
			panic(err)
		}
	})
	return mdChecksum(pos)
}

// ---- qsort / bfs references (PyOMP cannot run them; OMP4Py modes
// validate against these) ----

// QsortInput generates the float array to sort.
func QsortInput(n int, seed int64) []float64 {
	r := newRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float() * 1e6
	}
	return out
}

// SequentialQsortChecksum sorts the input and folds order-sensitive
// samples into a checksum.
func SequentialQsortChecksum(n int, seed int64) float64 {
	data := QsortInput(n, seed)
	quicksort(data, 0, len(data)-1)
	return qsortChecksum(data)
}

func quicksort(a []float64, lo, hi int) {
	// Hoare partition: the returned index belongs to the left
	// subrange ([lo, p] and [p+1, hi]).
	for lo < hi {
		p := partition(a, lo, hi)
		if p-lo < hi-p {
			quicksort(a, lo, p)
			lo = p + 1
		} else {
			quicksort(a, p+1, hi)
			hi = p
		}
	}
}

func partition(a []float64, lo, hi int) int {
	pivot := a[(lo+hi)/2]
	i, j := lo, hi
	for {
		for a[i] < pivot {
			i++
		}
		for a[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
}

func qsortChecksum(sorted []float64) float64 {
	s := 0.0
	step := len(sorted) / 97
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(sorted); i += step {
		s += sorted[i] * float64(i%13+1)
	}
	return s
}

// MazeInput builds the BFS grid: 0 = path, 1 = wall, entrance at the
// top-left, exit at the bottom-right (§IV-A).
func MazeInput(n int, seed int64) []int64 {
	r := newRand(seed)
	grid := make([]int64, n*n)
	for i := range grid {
		if r.float() < 0.35 {
			grid[i] = 1
		}
	}
	grid[0] = 0
	grid[n*n-1] = 0
	return grid
}

// SequentialBFSChecksum flood-fills from the entrance and returns the
// number of reachable cells (schedule-independent).
func SequentialBFSChecksum(n int, seed int64) float64 {
	grid := MazeInput(n, seed)
	visited := make([]bool, n*n)
	queue := []int{0}
	visited[0] = true
	count := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		count++
		r, c := cur/n, cur%n
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= n || nc < 0 || nc >= n {
				continue
			}
			idx := nr*n + nc
			if grid[idx] == 0 && !visited[idx] {
				visited[idx] = true
				queue = append(queue, idx)
			}
		}
	}
	return float64(count)
}
