package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.Edges() != 0 {
		t.Fatal("empty graph")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate ignored
	g.AddEdge(3, 3) // self loop ignored
	g.AddEdge(-1, 2)
	g.AddEdge(0, 99)
	if g.Edges() != 2 {
		t.Fatalf("edges = %d", g.Edges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(3, 3) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree(1) = %d", g.Degree(1))
	}
	n := g.Neighbors(1)
	if len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("neighbors(1) = %v", n)
	}
}

func TestClusteringTriangle(t *testing.T) {
	// Triangle: every node has coefficient 1.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	for u := 0; u < 3; u++ {
		if c := g.Clustering(u); c != 1 {
			t.Fatalf("clustering(%d) = %f", u, c)
		}
	}
	// Path: middle node has two unconnected neighbours.
	p := New(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	if c := p.Clustering(1); c != 0 {
		t.Fatalf("path clustering = %f", c)
	}
	if c := p.Clustering(0); c != 0 {
		t.Fatalf("degree-1 clustering = %f", c)
	}
}

func TestClusteringHalf(t *testing.T) {
	// Node 0 adjacent to 1,2,3; only edge (1,2) exists among them:
	// 1 of 3 possible links.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	if c := g.Clustering(0); math.Abs(c-1.0/3) > 1e-12 {
		t.Fatalf("clustering = %f, want 1/3", c)
	}
}

func TestClusteringMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 5 + int(nRaw)%60
		d := 1 + int(dRaw)%8
		g := Random(n, d, seed)
		for u := 0; u < n; u++ {
			if math.Abs(g.Clustering(u)-g.ClusteringBrute(u)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(200, 10, 42)
	b := Random(200, 10, 42)
	c := Random(200, 10, 43)
	if a.Edges() != b.Edges() {
		t.Fatal("same seed produced different graphs")
	}
	for u := 0; u < 200; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d differs across same-seed graphs", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d neighbors differ", u)
			}
		}
	}
	if a.Edges() == c.Edges() && equalGraphs(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func equalGraphs(a, b *Graph) bool {
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestRandomDegreeTarget(t *testing.T) {
	const n, d = 2000, 16
	g := Random(n, d, 7)
	avg := 2 * float64(g.Edges()) / float64(n)
	if avg < float64(d)*0.8 || avg > float64(d)*1.05 {
		t.Fatalf("average degree %.2f, want ≈%d", avg, d)
	}
}
