// Package graph is the NetworkX stand-in for the clustering
// coefficient benchmark (§IV-B): an undirected graph with adjacency
// sets, a deterministic random generator matching the paper's
// parameters (n nodes, average degree d), and the per-node clustering
// coefficient.
package graph

import "sort"

// Graph is an undirected simple graph over nodes 0..N-1.
type Graph struct {
	adj []map[int32]struct{}
}

// New creates a graph with n isolated nodes.
func New(n int) *Graph {
	g := &Graph{adj: make([]map[int32]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int32]struct{})
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts the undirected edge (u, v); self-loops and
// duplicates are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return
	}
	g.adj[u][int32(v)] = struct{}{}
	g.adj[v][int32(u)] = struct{}{}
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][int32(v)]
	return ok
}

// Degree returns the number of neighbours of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns u's neighbours in ascending order.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// Edges returns the edge count.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Clustering returns the clustering coefficient of node u: the
// fraction of possible triangles through u that exist.
func (g *Graph) Clustering(u int) float64 {
	neigh := g.adj[u]
	k := len(neigh)
	if k < 2 {
		return 0
	}
	links := 0
	for v := range neigh {
		// Iterate the smaller adjacency for each pair check.
		for w := range neigh {
			if v < w && g.HasEdge(int(v), int(w)) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// ClusteringBrute recomputes the coefficient by scanning all pairs
// via Neighbors (reference implementation for property tests).
func (g *Graph) ClusteringBrute(u int) float64 {
	neigh := g.Neighbors(u)
	k := len(neigh)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(neigh[i], neigh[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// rng is a SplitMix64 generator: deterministic across platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Random generates a graph with n nodes and approximately avgDegree
// edges per node (the paper uses 300k nodes with 100 edges per node),
// deterministically from seed.
func Random(n, avgDegree int, seed int64) *Graph {
	g := New(n)
	r := &rng{s: uint64(seed)*2862933555777941757 + 3037000493}
	if n < 2 {
		return g
	}
	// Half edges per node: each undirected edge contributes degree 2.
	edges := n * avgDegree / 2
	for e := 0; e < edges; e++ {
		u := r.intn(n)
		v := r.intn(n)
		for v == u {
			v = r.intn(n)
		}
		g.AddEdge(u, v)
	}
	return g
}
