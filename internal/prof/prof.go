// Package prof is the per-thread time-attribution profiler: it
// classifies every nanosecond a team thread spends inside a parallel
// region into a small closed set of states (compute vs. the
// synchronization constructs) and accumulates the totals into striped
// per-region buckets, mirroring the cache-padded stripe scheme of
// internal/metrics.
//
// The runtime drives it from the hooks that already exist for tracing
// and the always-on wait metrics: wait sites report their measured
// wait directly, and compute is derived by subtraction (member wall
// time minus everything attributed to a wait state), so the per-state
// breakdown sums to the team's wall time by construction — the same
// compute-vs-synchronization split the OMP4Py paper's scalability
// analysis is built on.
//
// Buckets are keyed by region label. MiniPy programs carry the source
// line of the `parallel` directive through the transform ("L12"), so
// hot directives attribute to lines; native callers label regions with
// omp.WithLabel. The empty label collects unlabeled regions.
package prof

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// State classifies where a team thread's time went.
type State int32

const (
	// Compute is time spent running user code (region bodies, task
	// bodies, loop chunks) — everything not attributed to a wait.
	Compute State = iota
	// BarrierWait is time blocked in implicit/explicit barriers.
	BarrierWait
	// Taskwait is time blocked in taskwait for child tasks.
	Taskwait
	// DependStall is time stalled on unresolved task dependences:
	// blocked in an undeferred task's dependence wait, or idle in a
	// wait loop while dependence-stalled tasks kept the queues empty.
	DependStall
	// TaskgroupWait is time blocked at a taskgroup end.
	TaskgroupWait
	// StealIdle is time idle in a wait loop while runnable tasks
	// existed elsewhere but could not be claimed.
	StealIdle
	// Critical is time contending for critical sections.
	Critical
	// Kernel is time executing compiled loop kernels (the
	// runtime-aware fast paths of internal/compile).
	Kernel

	// NumStates is the number of states.
	NumStates
)

var stateNames = [NumStates]string{
	Compute:       "compute",
	BarrierWait:   "barrier_wait",
	Taskwait:      "taskwait",
	DependStall:   "depend_stall",
	TaskgroupWait: "taskgroup_wait",
	StealIdle:     "steal_idle",
	Critical:      "critical",
	Kernel:        "kernel",
}

// String returns the snake_case state name used in metrics labels and
// JSON keys.
func (s State) String() string {
	if s < 0 || s >= NumStates {
		return "unknown"
	}
	return stateNames[s]
}

// StateNames lists every state name in enum order.
func StateNames() []string {
	out := make([]string, NumStates)
	copy(out, stateNames[:])
	return out
}

// numStripes spreads concurrent adds from one team across cache
// lines; keys are dense thread numbers, like the metrics registry.
const numStripes = 16

// stripe is one thread-group's share of a bucket. NumStates int64
// pairs are 128 bytes — two full cache lines — so adjacent stripes
// never share a line.
type stripe struct {
	ns [NumStates]atomic.Int64
	n  [NumStates]atomic.Int64
}

// Bucket accumulates per-state time for one region label. Adds are a
// single uncontended atomic pair in the steady state.
type Bucket struct {
	label   string
	stripes [numStripes]stripe
}

// Label returns the region label this bucket aggregates.
func (b *Bucket) Label() string { return b.label }

// Add attributes ns nanoseconds to state s. key selects the stripe —
// any value is correct, dense per-team thread numbers keep lines warm.
func (b *Bucket) Add(key int32, s State, ns int64) {
	if ns <= 0 || s < 0 || s >= NumStates {
		return
	}
	st := &b.stripes[uint32(key)%numStripes]
	st.ns[s].Add(ns)
	st.n[s].Add(1)
}

// Profiler is the registry of per-label buckets for one runtime.
type Profiler struct {
	mu      sync.Mutex
	buckets map[string]*Bucket
	// last caches the most recently resolved bucket: fork-join loops
	// re-enter the same region, so the common lookup is one atomic
	// load plus a string compare instead of a mutex and a map probe.
	last atomic.Pointer[Bucket]
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{buckets: make(map[string]*Bucket)}
}

// Bucket returns (creating on first use) the bucket for label.
func (p *Profiler) Bucket(label string) *Bucket {
	if b := p.last.Load(); b != nil && b.label == label {
		return b
	}
	p.mu.Lock()
	b, ok := p.buckets[label]
	if !ok {
		b = &Bucket{label: label}
		p.buckets[label] = b
	}
	p.mu.Unlock()
	p.last.Store(b)
	return b
}

// BucketSnapshot is the merged point-in-time view of one bucket.
type BucketSnapshot struct {
	// Label is the region label ("" for unlabeled regions).
	Label string `json:"label"`
	// NS maps state name to attributed nanoseconds.
	NS map[string]int64 `json:"ns"`
	// Counts maps state name to the number of attributed intervals.
	Counts map[string]int64 `json:"counts"`
	// TotalNS is the sum over all states.
	TotalNS int64 `json:"total_ns"`
}

// State returns the nanoseconds attributed to s.
func (b *BucketSnapshot) State(s State) int64 { return b.NS[s.String()] }

// Snapshot is the merged view of every bucket.
type Snapshot struct {
	Buckets []BucketSnapshot `json:"buckets"`
	TotalNS int64            `json:"total_ns"`
}

// Snapshot merges the stripes of every bucket, sorted by label.
func (p *Profiler) Snapshot() Snapshot {
	p.mu.Lock()
	buckets := make([]*Bucket, 0, len(p.buckets))
	for _, b := range p.buckets {
		buckets = append(buckets, b)
	}
	p.mu.Unlock()
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].label < buckets[j].label })

	var snap Snapshot
	snap.Buckets = make([]BucketSnapshot, 0, len(buckets))
	for _, b := range buckets {
		bs := BucketSnapshot{
			Label:  b.label,
			NS:     make(map[string]int64, NumStates),
			Counts: make(map[string]int64, NumStates),
		}
		for s := State(0); s < NumStates; s++ {
			var ns, n int64
			for i := range b.stripes {
				ns += b.stripes[i].ns[s].Load()
				n += b.stripes[i].n[s].Load()
			}
			bs.NS[s.String()] = ns
			bs.Counts[s.String()] = n
			bs.TotalNS += ns
		}
		snap.TotalNS += bs.TotalNS
		snap.Buckets = append(snap.Buckets, bs)
	}
	return snap
}

// ConstructLabel is the metric label value used for unlabeled regions.
const ConstructLabel = "region"

// WritePrometheus renders the snapshot as the
// omp4go_time_seconds_total{state,construct} counter family, one
// series per (state, region label) with nonzero time. The construct
// label carries the region label; unlabeled regions render as
// construct="region".
func (s Snapshot) WritePrometheus(w io.Writer) error {
	const name = "omp4go_time_seconds_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Team-thread time by attribution state and region label.\n# TYPE %s counter\n",
		name, name); err != nil {
		return err
	}
	for _, b := range s.Buckets {
		construct := b.Label
		if construct == "" {
			construct = ConstructLabel
		}
		for st := State(0); st < NumStates; st++ {
			ns := b.NS[st.String()]
			if ns == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{state=%q,construct=%q} %s\n",
				name, st.String(), construct,
				strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}
