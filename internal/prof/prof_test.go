package prof

import (
	"strings"
	"sync"
	"testing"
)

func TestStateNames(t *testing.T) {
	want := []string{"compute", "barrier_wait", "taskwait", "depend_stall",
		"taskgroup_wait", "steal_idle", "critical", "kernel"}
	got := StateNames()
	if len(got) != len(want) {
		t.Fatalf("StateNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("state %d = %q, want %q", i, got[i], want[i])
		}
	}
	if State(-1).String() != "unknown" || NumStates.String() != "unknown" {
		t.Errorf("out-of-range states must stringify as unknown")
	}
}

func TestBucketAccumulates(t *testing.T) {
	p := New()
	b := p.Bucket("L4")
	if p.Bucket("L4") != b {
		t.Fatalf("Bucket must be stable per label")
	}
	b.Add(0, Compute, 100)
	b.Add(1, Compute, 50)
	b.Add(17, BarrierWait, 25) // stripe 17 wraps onto stripe 1
	b.Add(0, Compute, -5)      // ignored
	b.Add(0, State(99), 5)     // ignored

	snap := p.Snapshot()
	if len(snap.Buckets) != 1 {
		t.Fatalf("got %d buckets, want 1", len(snap.Buckets))
	}
	bs := snap.Buckets[0]
	if bs.Label != "L4" {
		t.Errorf("label = %q", bs.Label)
	}
	if got := bs.State(Compute); got != 150 {
		t.Errorf("compute = %d, want 150", got)
	}
	if got := bs.Counts["compute"]; got != 2 {
		t.Errorf("compute count = %d, want 2", got)
	}
	if got := bs.State(BarrierWait); got != 25 {
		t.Errorf("barrier_wait = %d, want 25", got)
	}
	if bs.TotalNS != 175 || snap.TotalNS != 175 {
		t.Errorf("totals = %d/%d, want 175", bs.TotalNS, snap.TotalNS)
	}
}

func TestSnapshotSortedByLabel(t *testing.T) {
	p := New()
	p.Bucket("b").Add(0, Compute, 1)
	p.Bucket("a").Add(0, Compute, 1)
	p.Bucket("").Add(0, Compute, 1)
	snap := p.Snapshot()
	if len(snap.Buckets) != 3 {
		t.Fatalf("got %d buckets", len(snap.Buckets))
	}
	if snap.Buckets[0].Label != "" || snap.Buckets[1].Label != "a" || snap.Buckets[2].Label != "b" {
		t.Errorf("buckets not sorted: %q %q %q",
			snap.Buckets[0].Label, snap.Buckets[1].Label, snap.Buckets[2].Label)
	}
}

func TestConcurrentAdds(t *testing.T) {
	p := New()
	const (
		workers = 8
		adds    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(key int32) {
			defer wg.Done()
			b := p.Bucket("hot")
			for i := 0; i < adds; i++ {
				b.Add(key, Compute, 3)
			}
		}(int32(w))
	}
	wg.Wait()
	bs := p.Snapshot().Buckets[0]
	if got := bs.State(Compute); got != workers*adds*3 {
		t.Errorf("compute = %d, want %d", got, workers*adds*3)
	}
	if got := bs.Counts["compute"]; got != workers*adds {
		t.Errorf("count = %d, want %d", got, workers*adds)
	}
}

func TestWritePrometheus(t *testing.T) {
	p := New()
	p.Bucket("L7").Add(0, Compute, 2_000_000_000)
	p.Bucket("L7").Add(0, DependStall, 500_000_000)
	p.Bucket("").Add(0, BarrierWait, 1_000_000_000)

	var sb strings.Builder
	if err := p.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE omp4go_time_seconds_total counter",
		`omp4go_time_seconds_total{state="compute",construct="L7"} 2`,
		`omp4go_time_seconds_total{state="depend_stall",construct="L7"} 0.5`,
		`omp4go_time_seconds_total{state="barrier_wait",construct="region"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `state="taskwait"`) {
		t.Errorf("zero-valued states must be omitted:\n%s", out)
	}
}
