package textgen

import (
	"sort"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{Lines: 100, Seed: 42})
	b := Generate(Options{Lines: 100, Seed: 42})
	c := Generate(Options{Lines: 100, Seed: 43})
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatal("same seed produced different corpora")
		}
	}
	same := true
	for i := range a.Lines {
		if a.Lines[i] != c.Lines[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	c := Generate(Options{Lines: 500, MeanWordsPerLine: 10, Vocabulary: 200, Seed: 1})
	if len(c.Lines) != 500 {
		t.Fatalf("lines = %d", len(c.Lines))
	}
	words := c.Words()
	if words < 500 || words > 500*40 {
		t.Fatalf("total words = %d out of plausible range", words)
	}
	for _, line := range c.Lines {
		if strings.TrimSpace(line) == "" {
			t.Fatal("empty line generated")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// The most frequent word must dominate the median word by a wide
	// margin — the imbalance property Fig. 7 depends on.
	c := Generate(Options{Lines: 2000, MeanWordsPerLine: 20, Vocabulary: 5000, Seed: 9})
	counts := SequentialWordCount(c)
	freqs := make([]int, 0, len(counts))
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if len(freqs) < 100 {
		t.Fatalf("only %d distinct words", len(freqs))
	}
	if freqs[0] < 10*freqs[len(freqs)/2] {
		t.Fatalf("distribution not skewed: top %d vs median %d", freqs[0], freqs[len(freqs)/2])
	}
}

func TestLineLengthImbalance(t *testing.T) {
	c := Generate(Options{Lines: 5000, MeanWordsPerLine: 12, Seed: 5})
	maxLen, minLen := 0, 1<<30
	for _, line := range c.Lines {
		n := len(strings.Fields(line))
		if n > maxLen {
			maxLen = n
		}
		if n < minLen {
			minLen = n
		}
	}
	if maxLen < 3*minLen {
		t.Fatalf("line lengths too uniform: min %d max %d", minLen, maxLen)
	}
}

func TestVocabularyUnique(t *testing.T) {
	v := makeVocabulary(5000)
	seen := make(map[string]bool, len(v))
	for _, w := range v {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if w == "" {
			t.Fatal("empty word")
		}
	}
}

func TestSequentialWordCount(t *testing.T) {
	c := &Corpus{Lines: []string{"The cat and the dog", "THE bird"}}
	counts := SequentialWordCount(c)
	if counts["the"] != 3 || counts["cat"] != 1 || counts["bird"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestDefaults(t *testing.T) {
	c := Generate(Options{Seed: 1})
	if len(c.Lines) == 0 || c.Words() == 0 {
		t.Fatal("defaults produced an empty corpus")
	}
}
