// Package textgen generates the synthetic corpus standing in for the
// Spanish Wikipedia dump of the wordcount benchmark (§IV-B). Token
// frequencies follow a Zipf distribution — the property that drives
// the load imbalance visible in the scheduling-policy study (Fig. 7)
// — and generation is deterministic given a seed, matching the
// artifact's "synthetic data generated from a fixed seed".
package textgen

import (
	"math"
	"strconv"
	"strings"
)

// Corpus holds generated text as lines of whitespace-separated words.
type Corpus struct {
	Lines []string
}

// Words returns the total token count.
func (c *Corpus) Words() int {
	total := 0
	for _, l := range c.Lines {
		total += len(strings.Fields(l))
	}
	return total
}

// Options control corpus generation.
type Options struct {
	// Lines is the number of lines to generate.
	Lines int
	// MeanWordsPerLine is the average line length; actual lengths
	// vary heavily (long-tail), creating per-line load imbalance.
	MeanWordsPerLine int
	// Vocabulary is the number of distinct words.
	Vocabulary int
	// ZipfS is the Zipf exponent (≈1.1 for natural language).
	ZipfS float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Default fills unset fields with natural-language-like values.
func (o Options) withDefaults() Options {
	if o.Lines <= 0 {
		o.Lines = 1000
	}
	if o.MeanWordsPerLine <= 0 {
		o.MeanWordsPerLine = 12
	}
	if o.Vocabulary <= 0 {
		o.Vocabulary = 10000
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.1
	}
	return o
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Generate builds a corpus.
func Generate(opts Options) *Corpus {
	opts = opts.withDefaults()
	r := &rng{s: uint64(opts.Seed)*6364136223846793005 + 1442695040888963407}

	// Precompute the Zipf CDF over the vocabulary.
	cdf := make([]float64, opts.Vocabulary)
	total := 0.0
	for i := range cdf {
		total += 1.0 / math.Pow(float64(i+1), opts.ZipfS)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	pick := func() int {
		u := r.float()
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	vocab := makeVocabulary(opts.Vocabulary)
	lines := make([]string, opts.Lines)
	var b strings.Builder
	for li := range lines {
		// Long-tail line lengths: most lines short, a few very long
		// (the imbalance source for dynamic-vs-static scheduling).
		n := 1 + int(float64(opts.MeanWordsPerLine)*(0.25+2*r.float()*r.float()*r.float()))
		b.Reset()
		for w := 0; w < n; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(vocab[pick()])
		}
		lines[li] = b.String()
	}
	return &Corpus{Lines: lines}
}

// makeVocabulary synthesizes pronounceable distinct words.
func makeVocabulary(n int) []string {
	consonants := []string{"b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
	vowels := []string{"a", "e", "i", "o", "u"}
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		k := i
		syllables := 2 + k%3
		for s := 0; s < syllables; s++ {
			b.WriteString(consonants[k%len(consonants)])
			k /= len(consonants)
			b.WriteString(vowels[k%len(vowels)])
			k /= len(vowels)
		}
		out[i] = b.String()
	}
	// Guarantee uniqueness: digits never occur in generated words, so
	// an index suffix cannot collide.
	seen := make(map[string]bool, n)
	for i, w := range out {
		if seen[w] {
			out[i] = w + strconv.Itoa(i)
		}
		seen[out[i]] = true
	}
	return out
}

// SequentialWordCount is the reference counter used to validate the
// parallel implementations.
func SequentialWordCount(c *Corpus) map[string]int {
	counts := make(map[string]int)
	for _, line := range c.Lines {
		for _, w := range strings.Fields(line) {
			counts[strings.ToLower(w)]++
		}
	}
	return counts
}
