package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the multi-tenant execution service. Construct with New,
// start with Start (or drive the Handler directly in tests), stop with
// Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// slots is the worker-slot semaphore: a run executes while holding
	// one. queued counts requests past admission (waiting + running);
	// when it exceeds MaxWorkers+QueueDepth new requests are shed with
	// 429 instead of building an unbounded convoy.
	slots  chan struct{}
	queued atomic.Int64

	draining atomic.Bool
	// drainCh unblocks slot waiters on drain; killCh cancels in-flight
	// run budgets when the drain deadline expires.
	drainCh   chan struct{}
	killCh    chan struct{}
	drainOnce sync.Once
	killOnce  sync.Once

	// allow maps each configured bearer token to its tenant name (""
	// when the entry carried no name — the tenant identity is then
	// derived by hashing). Empty map = open mode. Never exposed.
	allow map[string]string

	mu       sync.Mutex
	sessions map[string]*Session // keyed by tenant identity, not token

	evicted     atomic.Int64 // sessions evicted (idle or capacity)
	sessionFull atomic.Int64 // requests rejected: session table full

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a Server from cfg (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.MaxWorkers),
		drainCh:  make(chan struct{}),
		killCh:   make(chan struct{}),
		sessions: map[string]*Session{},
		allow:    map[string]string{},
	}
	for _, entry := range cfg.Tokens {
		// "tenant=token" names the tenant; a bare token gets a derived
		// identity. tokenRe forbids '=' so the split is unambiguous.
		if name, tok, ok := strings.Cut(entry, "="); ok {
			if tokenRe.MatchString(name) && tokenRe.MatchString(tok) {
				s.allow[tok] = name
			}
			continue
		}
		if tokenRe.MatchString(entry) {
			s.allow[entry] = ""
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/history", s.handleHistory)
	mux.HandleFunc("/v1/reset", s.handleReset)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/omp", s.handleDebug)
	s.mux = mux
	return s
}

// Handler exposes the route tree (tests drive it via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on cfg.Addr and serves until Shutdown. It returns once
// the listener is bound; Addr reports the bound address.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server: new work is refused with 503, queued
// waiters are released, and in-flight runs get until ctx's deadline to
// finish before their budgets are canceled. Afterwards every tenant
// runtime is shut down, retiring its pooled workers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })

	var err error
	if s.httpSrv != nil {
		done := make(chan struct{})
		go func() {
			// Waits for in-flight handlers (and so in-flight runs).
			err = s.httpSrv.Shutdown(context.Background())
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			// Drain deadline: cancel run budgets so handlers finish,
			// then wait for them.
			s.killOnce.Do(func() { close(s.killCh) })
			<-done
		}
	} else {
		// Handler-only mode (tests): cancel stragglers on ctx expiry.
		s.killOnce.Do(func() {
			go func() {
				<-ctx.Done()
				close(s.killCh)
			}()
		})
	}

	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.Close()
	}
	return err
}

// tokenRe constrains auth tokens and tenant names (both appear in
// URLs and config; tenant names additionally appear as metrics labels
// and in logs, so they must be label-safe).
var tokenRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// tenantID maps a bearer token to the tenant identity used everywhere
// a tenant is named — responses, history, /metrics labels, /debug/omp.
// The identity is never the token itself: either the name the
// allowlist assigned ("tenant=token") or a truncated hash, so the
// unauthenticated observability endpoints cannot leak credentials.
func (s *Server) tenantID(token string) string {
	if name := s.allow[token]; name != "" {
		return name
	}
	sum := sha256.Sum256([]byte(token))
	return "t-" + hex.EncodeToString(sum[:6])
}

// authenticate resolves the request's tenant identity from its bearer
// token.
func (s *Server) authenticate(r *http.Request) (string, *APIError) {
	h := r.Header.Get("Authorization")
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok || !tokenRe.MatchString(tok) {
		return "", &APIError{Code: CodeUnauthorized, Message: "missing or malformed bearer token"}
	}
	if len(s.allow) > 0 {
		if _, known := s.allow[tok]; !known {
			return "", &APIError{Code: CodeUnauthorized, Message: "unknown token"}
		}
	}
	return s.tenantID(tok), nil
}

// session returns (creating on first use) the tenant's session. On
// creation the session table is groomed: sessions idle past
// cfg.SessionIdle are evicted, and at cfg.MaxSessions the
// least-recently-used idle session makes room. Only sessions whose run
// lock is free are evictable — an executing tenant is never torn down.
// Returns nil when the table is full of busy sessions; the caller
// sheds the request.
func (s *Server) session(tenant string) *Session {
	now := time.Now()
	s.mu.Lock()
	if sess, ok := s.sessions[tenant]; ok {
		sess.touch(now)
		s.mu.Unlock()
		return sess
	}

	var evict []*Session
	if idle := s.cfg.SessionIdle; idle > 0 {
		cutoff := now.Add(-idle).UnixNano()
		for t, old := range s.sessions {
			if old.idleSince() < cutoff && old.tryAcquireRun() {
				delete(s.sessions, t)
				evict = append(evict, old)
			}
		}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		// LRU capacity eviction: oldest idle session first.
		byAge := make([]*Session, 0, len(s.sessions))
		for _, old := range s.sessions {
			byAge = append(byAge, old)
		}
		sort.Slice(byAge, func(i, j int) bool { return byAge[i].idleSince() < byAge[j].idleSince() })
		for _, old := range byAge {
			if len(s.sessions) < s.cfg.MaxSessions {
				break
			}
			if old.tryAcquireRun() {
				delete(s.sessions, old.tenant)
				evict = append(evict, old)
			}
		}
	}
	var sess *Session
	if len(s.sessions) < s.cfg.MaxSessions {
		sess = newSession(tenant, &s.cfg)
		s.sessions[tenant] = sess
	}
	s.mu.Unlock()

	// Runtime shutdown can take real time; do it off the map lock.
	for _, old := range evict {
		old.closeEvicted()
		s.evicted.Add(1)
	}
	return sess
}

// lookupSession returns the tenant's session without creating one.
func (s *Server) lookupSession(tenant string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess := s.sessions[tenant]; sess != nil {
		sess.touch(time.Now())
		return sess
	}
	return nil
}

// snapshotSessions copies the session map for iteration off-lock.
func (s *Server) snapshotSessions() map[string]*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*Session, len(s.sessions))
	for t, sess := range s.sessions {
		out[t] = sess
	}
	return out
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, &APIError{Code: CodeBadRequest, Message: "POST required"})
		return
	}
	tenant, aerr := s.authenticate(r)
	if aerr != nil {
		writeAPIError(w, http.StatusUnauthorized, aerr)
		return
	}
	if s.draining.Load() {
		writeAPIError(w, http.StatusServiceUnavailable, &APIError{Code: CodeDraining, Message: "server is draining"})
		return
	}

	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeAPIError(w, http.StatusRequestEntityTooLarge, &APIError{
				Code:    CodeBodyTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			})
			return
		}
		writeAPIError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "invalid JSON: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeAPIError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "source is required"})
		return
	}
	if _, err := parseMode(req.Mode); err != nil {
		writeAPIError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: err.Error()})
		return
	}

	sess := s.session(tenant)
	if sess == nil {
		s.sessionFull.Add(1)
		writeAPIError(w, http.StatusTooManyRequests, &APIError{
			Code:              CodeOverloaded,
			Message:           fmt.Sprintf("session table is full (%d active tenants)", s.cfg.MaxSessions),
			RetryAfterSeconds: 5,
		})
		return
	}

	// Admission. queued counts everyone past this point; when the
	// backlog would exceed the queue depth the request is shed
	// immediately — a 429 now beats a timeout later.
	backlog := s.queued.Add(1)
	defer s.queued.Add(-1)
	if backlog > int64(s.cfg.MaxWorkers+s.cfg.QueueDepth) {
		sess.stats.shed.Add(1)
		retry := 1 + int(backlog-int64(s.cfg.MaxWorkers))/max(1, s.cfg.MaxWorkers)
		writeAPIError(w, http.StatusTooManyRequests, &APIError{
			Code:              CodeOverloaded,
			Message:           fmt.Sprintf("run queue is full (%d waiting)", backlog-int64(s.cfg.MaxWorkers)),
			RetryAfterSeconds: retry,
		})
		return
	}
	enqueued := time.Now()
	// The tenant run lock comes BEFORE the worker slot: runs within a
	// session are serialized, so a tenant's extra concurrent requests
	// wait here holding only queue backlog, never a slot another
	// tenant could be using. (They still count against the global
	// admission budget above, which bounds the convoy.)
	select {
	case sess.runCh <- struct{}{}:
	case <-s.drainCh:
		writeAPIError(w, http.StatusServiceUnavailable, &APIError{Code: CodeDraining, Message: "server is draining"})
		return
	case <-r.Context().Done():
		return // client went away while queued
	}
	defer sess.releaseRun()
	select {
	case s.slots <- struct{}{}:
	case <-s.drainCh:
		writeAPIError(w, http.StatusServiceUnavailable, &APIError{Code: CodeDraining, Message: "server is draining"})
		return
	case <-r.Context().Done():
		return // client went away while queued
	}
	defer func() { <-s.slots }()
	sess.stats.queueNS.Observe(time.Since(enqueued).Nanoseconds())

	if req.Stream {
		s.streamRun(w, r, sess, req)
		return
	}
	resp := sess.Run(r.Context(), req, nil, s.killCh)
	writeJSON(w, http.StatusOK, resp)
}

// streamRun delivers stdout as NDJSON chunk records while the program
// runs, then the final RunResponse as the last record. A failed write
// (client gone) cancels the run's context so it stops consuming its
// worker slot instead of executing to the budget deadline.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, sess *Session, req RunRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	out := &ndjsonChunks{w: w, cancel: cancel}
	resp := sess.Run(ctx, req, out, s.killCh)
	out.mu.Lock()
	defer out.mu.Unlock()
	enc := json.NewEncoder(w)
	_ = enc.Encode(resp)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// ndjsonChunks wraps stdout writes as {"stdout": "..."} records. Write
// never returns an error into the program (a print must not die with a
// confusing I/O failure) — instead a failed client write cancels the
// run, which surfaces as the typed quota_exceeded/canceled kill.
type ndjsonChunks struct {
	mu     sync.Mutex
	w      http.ResponseWriter
	cancel context.CancelFunc
	failed bool
}

func (n *ndjsonChunks) Write(p []byte) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed {
		return len(p), nil
	}
	rec, err := json.Marshal(struct {
		Stdout string `json:"stdout"`
	}{string(p)})
	if err != nil {
		return len(p), nil
	}
	if _, err := n.w.Write(append(rec, '\n')); err != nil {
		n.failed = true
		if n.cancel != nil {
			n.cancel()
		}
		return len(p), nil
	}
	if f, ok := n.w.(http.Flusher); ok {
		f.Flush()
	}
	return len(p), nil
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	tenant, aerr := s.authenticate(r)
	if aerr != nil {
		writeAPIError(w, http.StatusUnauthorized, aerr)
		return
	}
	var entries []HistoryEntry
	if sess := s.lookupSession(tenant); sess != nil {
		entries = sess.History()
	}
	if entries == nil {
		entries = []HistoryEntry{}
	}
	writeJSON(w, http.StatusOK, struct {
		Tenant  string         `json:"tenant"`
		History []HistoryEntry `json:"history"`
	}{tenant, entries})
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, &APIError{Code: CodeBadRequest, Message: "POST required"})
		return
	}
	tenant, aerr := s.authenticate(r)
	if aerr != nil {
		writeAPIError(w, http.StatusUnauthorized, aerr)
		return
	}
	if sess := s.lookupSession(tenant); sess != nil {
		sess.Reset()
	}
	writeJSON(w, http.StatusOK, struct {
		Tenant string `json:"tenant"`
		Reset  bool   `json:"reset"`
	}{tenant, true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// handleDebug serves per-tenant runtime introspection: each session's
// per-mode rt.DebugSnapshot (ICVs, pool state, in-flight regions,
// watchdog stall reports) plus the service's admission state.
func (s *Server) handleDebug(w http.ResponseWriter, _ *http.Request) {
	type tenantDebug struct {
		Runs     int64                     `json:"runs"`
		Runtimes map[string]map[string]any `json:"runtimes"`
	}
	doc := struct {
		Draining bool                   `json:"draining"`
		Queued   int64                  `json:"queued"`
		Inflight int                    `json:"inflight"`
		Workers  int                    `json:"workers"`
		Tenants  map[string]tenantDebug `json:"tenants"`
	}{
		Draining: s.draining.Load(),
		Queued:   s.queued.Load(),
		Inflight: len(s.slots),
		Workers:  s.cfg.MaxWorkers,
		Tenants:  map[string]tenantDebug{},
	}
	for tenant, sess := range s.snapshotSessions() {
		td := tenantDebug{Runs: sess.stats.runs.Load(), Runtimes: map[string]map[string]any{}}
		for m, snap := range sess.debugSnapshots() {
			td.Runtimes[m] = map[string]any{
				"icvs":             snap.ICVs,
				"pool":             snap.Pool,
				"inflight_regions": snap.Regions,
				"stalls":           snap.Stalls,
				"profile":          snap.Profile,
			}
		}
		doc.Tenants[tenant] = td
	}
	writeJSON(w, http.StatusOK, doc)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

var _ io.Writer = (*ndjsonChunks)(nil)
