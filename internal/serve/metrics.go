package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
)

// tenantStats is one tenant's service-level counter block. Counters
// here describe the API surface (runs, sheds, kills, latency); the
// runtime-level counters (regions, barriers, tasks…) come from the
// tenant runtimes' own registries and are merged in at scrape time.
type tenantStats struct {
	runs    atomic.Int64 // completed runs (ok or not)
	errors  atomic.Int64 // runs that returned a typed error
	killed  atomic.Int64 // subset of errors: quota kills
	shed    atomic.Int64 // requests rejected 429 at admission
	steps   atomic.Int64 // interpreter steps charged across runs
	queueNS metrics.Hist // time from admission to a worker slot
	runNS   metrics.Hist // execution time (parse through finish)
}

// observe folds one finished run into the counters.
func (t *tenantStats) observe(resp RunResponse, elapsed time.Duration) {
	t.runs.Add(1)
	t.steps.Add(resp.Steps)
	if resp.Error != nil {
		t.errors.Add(1)
		if resp.Error.Code == CodeQuotaKill {
			t.killed.Add(1)
		}
	}
	t.runNS.Observe(elapsed.Nanoseconds())
}

// serveCounterDef drives the exposition loop: one HELP/TYPE header per
// metric, then a tenant-labeled series per session.
type serveCounterDef struct {
	name string
	help string
	load func(*tenantStats) int64
}

var serveCounters = []serveCounterDef{
	{"omp4go_serve_runs_total", "Completed MiniPy runs (ok or errored).",
		func(t *tenantStats) int64 { return t.runs.Load() }},
	{"omp4go_serve_errors_total", "Runs that returned a typed error.",
		func(t *tenantStats) int64 { return t.errors.Load() }},
	{"omp4go_serve_quota_kills_total", "Runs killed by the execution budget.",
		func(t *tenantStats) int64 { return t.killed.Load() }},
	{"omp4go_serve_shed_total", "Requests rejected 429 at admission.",
		func(t *tenantStats) int64 { return t.shed.Load() }},
	{"omp4go_serve_steps_total", "Interpreter steps charged across runs.",
		func(t *tenantStats) int64 { return t.steps.Load() }},
}

// writeMetrics renders the full /metrics document: service gauges,
// per-tenant serve counters and histograms, then each tenant's runtime
// counters relabeled with the tenant.
func (s *Server) writeMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP omp4go_serve_inflight Runs currently holding a worker slot.\n")
	fmt.Fprintf(w, "# TYPE omp4go_serve_inflight gauge\n")
	fmt.Fprintf(w, "omp4go_serve_inflight %d\n", len(s.slots))
	fmt.Fprintf(w, "# HELP omp4go_serve_queued Requests admitted and waiting or running.\n")
	fmt.Fprintf(w, "# TYPE omp4go_serve_queued gauge\n")
	fmt.Fprintf(w, "omp4go_serve_queued %d\n", s.queued.Load())
	fmt.Fprintf(w, "# HELP omp4go_serve_sessions Live tenant sessions.\n")
	fmt.Fprintf(w, "# TYPE omp4go_serve_sessions gauge\n")
	fmt.Fprintf(w, "omp4go_serve_sessions %d\n", len(s.snapshotSessions()))
	fmt.Fprintf(w, "# HELP omp4go_serve_sessions_evicted_total Sessions evicted for idleness or capacity.\n")
	fmt.Fprintf(w, "# TYPE omp4go_serve_sessions_evicted_total counter\n")
	fmt.Fprintf(w, "omp4go_serve_sessions_evicted_total %d\n", s.evicted.Load())
	fmt.Fprintf(w, "# HELP omp4go_serve_session_table_full_total Requests shed because every session was busy at the cap.\n")
	fmt.Fprintf(w, "# TYPE omp4go_serve_session_table_full_total counter\n")
	fmt.Fprintf(w, "omp4go_serve_session_table_full_total %d\n", s.sessionFull.Load())
	fmt.Fprintf(w, "# HELP omp4go_serve_draining 1 while the server refuses new work.\n")
	fmt.Fprintf(w, "# TYPE omp4go_serve_draining gauge\n")
	drain := 0
	if s.draining.Load() {
		drain = 1
	}
	fmt.Fprintf(w, "omp4go_serve_draining %d\n", drain)

	sessions := s.snapshotSessions()
	tenants := make([]string, 0, len(sessions))
	for t := range sessions {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)

	for _, def := range serveCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", def.name, def.help, def.name)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s{tenant=%s} %d\n", def.name, strconv.Quote(t), def.load(sessions[t].stats))
		}
	}

	for _, h := range []struct {
		name, help string
		pick       func(*tenantStats) *metrics.Hist
	}{
		{"omp4go_serve_run_seconds", "MiniPy run latency (parse through finish).",
			func(t *tenantStats) *metrics.Hist { return &t.runNS }},
		{"omp4go_serve_queue_seconds", "Wait from admission to a worker slot.",
			func(t *tenantStats) *metrics.Hist { return &t.queueNS }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		for _, t := range tenants {
			snap := h.pick(sessions[t].stats).Snapshot()
			_ = snap.WritePrometheus(w, h.name, `tenant=`+strconv.Quote(t))
		}
	}

	// Runtime counters, one labeled series per tenant per counter. The
	// names already carry the omp4go_ prefix and _total suffix; HELP
	// and TYPE are emitted once per name.
	byName := map[string]map[string]int64{}
	for _, t := range tenants {
		for name, v := range sessions[t].runtimeCounters() {
			if byName[name] == nil {
				byName[name] = map[string]int64{}
			}
			byName[name][t] = v
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# HELP %s Tenant runtime counter (summed across mode runtimes).\n# TYPE %s counter\n", name, name)
		for _, t := range tenants {
			if v, ok := byName[name][t]; ok {
				fmt.Fprintf(w, "%s{tenant=%s} %d\n", name, strconv.Quote(t), v)
			}
		}
	}

	// Per-tenant time attribution: where each tenant's team threads
	// spent their time, summed across mode runtimes and region labels.
	const timeName = "omp4go_serve_time_seconds_total"
	wroteHeader := false
	for _, t := range tenants {
		prof := sessions[t].profileNS()
		if len(prof) == 0 {
			continue
		}
		if !wroteHeader {
			fmt.Fprintf(w, "# HELP %s Tenant team-thread time per attribution state (summed across mode runtimes).\n# TYPE %s counter\n", timeName, timeName)
			wroteHeader = true
		}
		states := make([]string, 0, len(prof))
		for st := range prof {
			states = append(states, st)
		}
		sort.Strings(states)
		for _, st := range states {
			fmt.Fprintf(w, "%s{tenant=%s,state=%q} %s\n", timeName, strconv.Quote(t), st,
				strconv.FormatFloat(float64(prof[st])/1e9, 'g', -1, 64))
		}
	}
}
