package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/compile"
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/transform"
)

// mode is a directive mode of the service: the paper's four OMP4Py
// execution modes (internal/bench numbers them the same way).
type mode int

const (
	modePure mode = iota
	modeHybrid
	modeCompiled
	modeCompiledDT
	numModes
)

func (m mode) String() string {
	switch m {
	case modePure:
		return "Pure"
	case modeHybrid:
		return "Hybrid"
	case modeCompiled:
		return "Compiled"
	case modeCompiledDT:
		return "CompiledDT"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// parseMode accepts the paper's mode names case-insensitively; empty
// means Hybrid (the paper's headline interpreted configuration).
func parseMode(s string) (mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "hybrid":
		return modeHybrid, nil
	case "pure":
		return modePure, nil
	case "compiled":
		return modeCompiled, nil
	case "compileddt", "compiled_dt", "compiled-dt":
		return modeCompiledDT, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want pure, hybrid, compiled or compileddt)", s)
}

// swapWriter is the stdout indirection of a session: each interpreter
// is constructed once with the swapWriter as its Stdout, and every run
// swaps in its own capture (or stream) target. Between runs output is
// discarded, so a leaked goroutine from a previous run cannot write
// into a later response.
type swapWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *swapWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return len(p), nil
	}
	return w.Write(p)
}

func (s *swapWriter) swap(w io.Writer) {
	s.mu.Lock()
	s.w = w
	s.mu.Unlock()
}

// captureWriter buffers stdout up to max bytes and silently discards
// the rest, marking the capture truncated. It never returns an error:
// a chatty program keeps running (and keeps being charged steps)
// rather than dying with a confusing write failure.
type captureWriter struct {
	mu        sync.Mutex
	buf       strings.Builder
	max       int
	truncated bool
}

func (c *captureWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if room := c.max - c.buf.Len(); room < len(p) {
		c.truncated = true
		if room > 0 {
			c.buf.Write(p[:room])
		}
	} else {
		c.buf.Write(p)
	}
	return len(p), nil
}

func (c *captureWriter) result() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String(), c.truncated
}

// Session is one tenant's persistent execution context: one
// interpreter (and therefore one isolated OpenMP runtime) per
// directive mode, created on first use, with module globals carried
// across runs so tenants can build state incrementally. Runs within a
// session are serialized; concurrency comes from distinct tenants.
type Session struct {
	tenant string // non-secret tenant identity, never the bearer token
	quota  Quota
	cfg    *Config
	stats  *tenantStats

	// runCh is the run lock: holding its single token is the right to
	// execute. It is a channel (not a mutex) so waiters can bail on
	// drain or client disconnect, and so the handler can acquire it
	// BEFORE a worker slot — same-tenant concurrency queues here
	// without occupying slots other tenants could use. mu guards the
	// state below and is only held briefly, so /metrics and
	// /v1/history stay responsive while a tenant program runs.
	runCh chan struct{}

	// lastUsed is the unix-nano time of the last authenticated request
	// that touched the session; idle eviction reads it.
	lastUsed atomic.Int64

	mu      sync.Mutex
	interps [numModes]*interp.Interp
	outs    [numModes]*swapWriter
	seq     int64
	history []HistoryEntry // ring, newest last, len <= cfg.HistoryLimit
	closed  bool
}

func newSession(tenant string, cfg *Config) *Session {
	s := &Session{
		tenant: tenant,
		quota:  cfg.quotaFor(tenant),
		cfg:    cfg,
		stats:  &tenantStats{},
		runCh:  make(chan struct{}, 1),
	}
	s.touch(time.Now())
	return s
}

// touch records request activity for idle eviction.
func (s *Session) touch(now time.Time) { s.lastUsed.Store(now.UnixNano()) }

// idleSince returns the last activity instant.
func (s *Session) idleSince() int64 { return s.lastUsed.Load() }

// tryAcquireRun takes the run lock without blocking; false means a run
// is executing (or another waiter already holds the token).
func (s *Session) tryAcquireRun() bool {
	select {
	case s.runCh <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Session) acquireRun() { s.runCh <- struct{}{} }
func (s *Session) releaseRun() { <-s.runCh }

// interpFor lazily builds the tenant's interpreter for a mode. Tenant
// runtimes see an empty OMP_* environment: isolation means a host
// variable cannot change tenant scheduling behind the API's back.
// Called with s.mu held.
func (s *Session) interpFor(m mode) *interp.Interp {
	if in := s.interps[m]; in != nil {
		return in
	}
	out := &swapWriter{}
	layer := rt.LayerAtomic
	if m == modePure {
		layer = rt.LayerMutex
	}
	in := interp.New(interp.Options{
		Layer:          layer,
		ContendedAlloc: m == modePure || m == modeHybrid,
		Stdout:         out,
		Getenv:         func(string) string { return "" },
	})
	if in.Runtime().GetMaxThreads() > s.quota.MaxThreads {
		in.Runtime().SetNumThreads(s.quota.MaxThreads)
	}
	if s.cfg.Watchdog > 0 {
		in.Runtime().StartWatchdog(s.cfg.Watchdog)
	}
	if s.cfg.FlightDir != "" {
		// Per-tenant, per-mode dump directory so one tenant's stall
		// storm cannot crowd out another's post-mortems. The blank
		// Getenv means OMP4GO_FLIGHT never reaches tenant runtimes;
		// the service enables recording programmatically.
		dir := filepath.Join(s.cfg.FlightDir, pathSafe(s.tenant), m.String())
		if _, err := in.Runtime().EnableFlight(dir); err != nil {
			fmt.Fprintf(os.Stderr, "omp4go-serve: flight recorder for %s/%s: %v\n", s.tenant, m, err)
		}
	}
	s.interps[m] = in
	s.outs[m] = out
	return in
}

// pathSafe maps a tenant identity onto a filesystem-safe directory
// name (tenant names derived from tokens are already hex, but
// configured tenant=token names are free-form).
func pathSafe(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

// Run executes one program under the session's quota. The caller must
// hold the run lock (acquireRun/tryAcquireRun). out receives stdout as
// it is produced when non-nil (streaming); otherwise stdout is
// captured into the response. The run is canceled — with a typed
// quota_exceeded/canceled error — when ctx is done (the request
// context: client disconnect or a failed stream write) or when kill
// becomes receivable (the server's drain-deadline channel).
func (s *Session) Run(ctx context.Context, req RunRequest, out io.Writer, kill <-chan struct{}) RunResponse {
	m, _ := parseMode(req.Mode) // validated by the handler
	file := req.File
	if file == "" {
		file = "main.py"
	}
	s.mu.Lock()
	s.seq++
	resp := RunResponse{Tenant: s.tenant, Seq: s.seq, Mode: m.String()}
	closed := s.closed
	s.mu.Unlock()
	start := time.Now()
	finish := func(runErr error, stage string, steps, allocs int64) RunResponse {
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
		resp.Steps = steps
		resp.Allocs = allocs
		if runErr != nil {
			resp.Error = classifyRunError(runErr, file, stage)
		}
		resp.OK = resp.Error == nil
		s.mu.Lock()
		s.record(req, resp)
		s.mu.Unlock()
		s.stats.observe(resp, time.Since(start))
		return resp
	}
	if closed {
		return finish(fmt.Errorf("session closed"), CodeDraining, 0, 0)
	}

	mod, err := minipy.Parse(req.Source, file)
	if err != nil {
		return finish(err, CodeParseError, 0, 0)
	}
	if _, err := transform.Module(mod); err != nil {
		return finish(err, CodeParseError, 0, 0)
	}
	s.mu.Lock()
	in := s.interpFor(m)
	sw := s.outs[m]
	s.mu.Unlock()
	if m == modeCompiled || m == modeCompiledDT {
		if err := compile.Install(in, mod, compile.Options{Typed: m == modeCompiledDT}); err != nil {
			return finish(err, CodeCompileError, 0, 0)
		}
	}
	if n := req.NumThreads; n > 0 {
		if n > s.quota.MaxThreads {
			n = s.quota.MaxThreads
		}
		in.Runtime().SetNumThreads(n)
	}

	var capture *captureWriter
	if out == nil {
		capture = &captureWriter{max: s.cfg.MaxStdoutBytes}
		out = capture
	}
	sw.swap(out)
	defer sw.swap(nil)

	// The budget takes one Done channel; merge the drain kill with the
	// request context so an abandoned run (client timed out, stream
	// write failed) releases its worker slot instead of burning its
	// whole wall quota. The relay exits with the run.
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	cancelCh := make(chan struct{})
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-kill:
		case <-ctxDone:
		case <-stop:
			return
		}
		close(cancelCh)
	}()

	budget := interp.Budget{
		MaxSteps:  s.quota.MaxSteps,
		MaxAllocs: s.quota.MaxAllocs,
		Done:      cancelCh,
	}
	if s.quota.MaxWall > 0 {
		budget.Deadline = time.Now().Add(s.quota.MaxWall)
	}
	in.SetBudget(budget)
	runErr := in.RunModule(mod)
	steps, allocs := in.BudgetSteps(), in.BudgetAllocs()
	in.ClearBudget()

	// A budget kill is a post-mortem moment: the program was stopped
	// mid-flight (step/alloc/wall quota, client disconnect, drain), so
	// flush the flight recorder while the terminal state is fresh.
	var be *interp.BudgetError
	if errors.As(runErr, &be) {
		if fr := in.Runtime().Flight(); fr != nil {
			if _, err := fr.Dump("kill_" + be.Kind); err != nil {
				fmt.Fprintf(os.Stderr, "omp4go-serve: flight dump for %s: %v\n", s.tenant, err)
			}
		}
	}

	if capture != nil {
		resp.Stdout, resp.StdoutTruncated = capture.result()
	}
	return finish(runErr, CodeRuntimeError, steps, allocs)
}

// record appends a history entry, evicting the oldest past the limit.
func (s *Session) record(req RunRequest, resp RunResponse) {
	sum := sha256.Sum256([]byte(req.Source))
	e := HistoryEntry{
		Seq:        resp.Seq,
		Mode:       resp.Mode,
		OK:         resp.OK,
		Error:      resp.Error,
		ElapsedMS:  resp.ElapsedMS,
		Steps:      resp.Steps,
		SourceLen:  len(req.Source),
		SourceHash: hex.EncodeToString(sum[:8]),
		UnixMS:     time.Now().UnixMilli(),
	}
	if len(s.history) >= s.cfg.HistoryLimit {
		copy(s.history, s.history[1:])
		s.history[len(s.history)-1] = e
		return
	}
	s.history = append(s.history, e)
}

// History returns a copy of the session's run history, oldest first.
func (s *Session) History() []HistoryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HistoryEntry, len(s.history))
	copy(out, s.history)
	return out
}

// Reset drops the tenant's interpreters (shutting their runtimes down)
// and clears history. The session object itself stays valid; the next
// run builds fresh interpreters. Waits for an in-flight run to finish.
func (s *Session) Reset() {
	s.acquireRun()
	defer s.releaseRun()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shutdownLocked()
	s.history = nil
}

// Close shuts the session's runtimes down for good; later runs are
// rejected as draining. Waits for an in-flight run to finish, which is
// what graceful drain wants.
func (s *Session) Close() {
	s.acquireRun()
	defer s.releaseRun()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shutdownLocked()
	s.closed = true
}

// closeEvicted shuts an evicted session down. The caller already holds
// the run token (its tryAcquireRun succeeded), so this cannot block on
// a tenant program; the token is released at the end — a request that
// raced the eviction and is still waiting on the lock then finds the
// session closed and gets a typed error.
func (s *Session) closeEvicted() {
	s.mu.Lock()
	s.shutdownLocked()
	s.closed = true
	s.mu.Unlock()
	s.releaseRun()
}

func (s *Session) shutdownLocked() {
	for m := mode(0); m < numModes; m++ {
		if in := s.interps[m]; in != nil {
			if s.cfg.Watchdog > 0 {
				in.Runtime().StopWatchdog()
			}
			in.Runtime().Shutdown()
			s.interps[m] = nil
			s.outs[m] = nil
		}
	}
}

// debugSnapshots returns per-mode runtime snapshots for /debug/omp.
func (s *Session) debugSnapshots() map[string]rt.DebugSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]rt.DebugSnapshot{}
	for m := mode(0); m < numModes; m++ {
		if in := s.interps[m]; in != nil {
			out[m.String()] = in.Runtime().DebugSnapshot()
		}
	}
	return out
}

// runtimeCounters sums the tenant's runtime counters across its mode
// runtimes (each is an isolated registry) for tenant-labeled export.
func (s *Session) runtimeCounters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := map[string]int64{}
	for m := mode(0); m < numModes; m++ {
		if in := s.interps[m]; in != nil {
			for name, v := range in.Runtime().MetricsSnapshot().CounterMap() {
				total[name] += v
			}
		}
	}
	return total
}

// profileNS sums the tenant's per-state time attribution across its
// mode runtimes and region labels: state name -> nanoseconds. Empty
// when no mode runtime exists yet or profiling is off.
func (s *Session) profileNS() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := map[string]int64{}
	for m := mode(0); m < numModes; m++ {
		in := s.interps[m]
		if in == nil {
			continue
		}
		snap := in.Runtime().ProfileSnapshot()
		if snap == nil {
			continue
		}
		for _, b := range snap.Buckets {
			for state, ns := range b.NS {
				total[state] += ns
			}
		}
	}
	return total
}
