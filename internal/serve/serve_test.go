package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer boots a Server on a loopback port and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func postRun(t *testing.T, s *Server, token string, req RunRequest) (int, RunResponse, *APIError) {
	t.Helper()
	body, _ := json.Marshal(req)
	httpReq, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	httpReq.Header.Set("Authorization", "Bearer "+token)
	res, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(res.Body)
	if res.StatusCode == http.StatusOK {
		var rr RunResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("bad RunResponse %q: %v", raw, err)
		}
		return res.StatusCode, rr, rr.Error
	}
	var wrapped struct {
		Error *APIError `json:"error"`
	}
	if err := json.Unmarshal(raw, &wrapped); err != nil {
		t.Fatalf("bad error body %q: %v", raw, err)
	}
	return res.StatusCode, RunResponse{}, wrapped.Error
}

func get(t *testing.T, s *Server, path, token string) (int, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, "http://"+s.Addr()+path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(res.Body)
	return res.StatusCode, raw
}

const parallelProgram = `
from omp4py import *

@omp
def compute(n: int) -> float:
    total: float = 0.0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += 1.0
    return total

print(compute(1000))
`

// TestTwoTenantsConcurrentIsolation is the acceptance e2e: two tenants
// run concurrently with isolated interpreter state and show up as
// separate series on /metrics — under their configured tenant names,
// not their secret tokens.
func TestTwoTenantsConcurrentIsolation(t *testing.T) {
	s := startServer(t, Config{Tokens: []string{"alice=alice-key", "bob=bob-key"}})
	tenants := []struct {
		token string
		base  int
	}{{"alice-key", 100}, {"bob-key", 200}}

	var wg sync.WaitGroup
	for _, tc := range tenants {
		wg.Add(1)
		go func(token string, base int) {
			defer wg.Done()
			// Run 1 plants state in the tenant's module globals.
			st, rr, _ := postRun(t, s, token, RunRequest{Source: fmt.Sprintf("counter = %d", base)})
			if st != http.StatusOK || !rr.OK {
				t.Errorf("%s run1: status %d, resp %+v", token, st, rr)
				return
			}
			// Run 2 reads it back — a leak across tenants would print
			// the other tenant's counter or race to a NameError.
			for i := 1; i <= 3; i++ {
				st, rr, _ = postRun(t, s, token, RunRequest{Source: "counter = counter + 1\nprint(counter)"})
				if st != http.StatusOK || !rr.OK {
					t.Errorf("%s run%d: status %d, resp %+v", token, i+1, st, rr)
					return
				}
				if want := fmt.Sprintf("%d\n", base+i); rr.Stdout != want {
					t.Errorf("%s run%d stdout = %q, want %q", token, i+1, rr.Stdout, want)
				}
			}
			// A parallel region through the full directive pipeline.
			st, rr, _ = postRun(t, s, token, RunRequest{Source: parallelProgram, NumThreads: 4})
			if st != http.StatusOK || !rr.OK {
				t.Errorf("%s parallel run: status %d, resp %+v", token, st, rr)
				return
			}
			if !strings.Contains(rr.Stdout, "1000") {
				t.Errorf("%s parallel stdout = %q, want 1000", token, rr.Stdout)
			}
		}(tc.token, tc.base)
	}
	wg.Wait()

	// Per-tenant series on /metrics: serve counters and runtime
	// counters labeled with each tenant.
	st, raw := get(t, s, "/metrics", "")
	if st != http.StatusOK {
		t.Fatalf("/metrics status %d", st)
	}
	for _, want := range []string{
		`omp4go_serve_runs_total{tenant="alice"} 5`,
		`omp4go_serve_runs_total{tenant="bob"} 5`,
		`omp4go_serve_run_seconds_count{tenant="alice"} 5`,
		`omp4go_regions_forked_total{tenant="alice"}`,
		`omp4go_regions_forked_total{tenant="bob"}`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Histories are per tenant.
	st, raw = get(t, s, "/v1/history", "alice-key")
	if st != http.StatusOK {
		t.Fatalf("/v1/history status %d", st)
	}
	var hist struct {
		Tenant  string         `json:"tenant"`
		History []HistoryEntry `json:"history"`
	}
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatalf("history: %v", err)
	}
	if hist.Tenant != "alice" || len(hist.History) != 5 {
		t.Errorf("alice history = %s / %d entries, want alice / 5", hist.Tenant, len(hist.History))
	}

	// /debug/omp surfaces per-tenant runtime state.
	st, raw = get(t, s, "/debug/omp", "")
	if st != http.StatusOK {
		t.Fatalf("/debug/omp status %d", st)
	}
	for _, want := range []string{`"alice"`, `"bob"`, `"icvs"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/debug/omp missing %s", want)
		}
	}
}

// TestModes runs one program through all four directive modes.
func TestModes(t *testing.T) {
	s := startServer(t, Config{})
	for _, mode := range []string{"pure", "hybrid", "compiled", "compileddt"} {
		st, rr, _ := postRun(t, s, "modes", RunRequest{Source: parallelProgram, Mode: mode, NumThreads: 2})
		if st != http.StatusOK || !rr.OK {
			t.Errorf("mode %s: status %d, resp %+v", mode, st, rr)
			continue
		}
		if !strings.Contains(rr.Stdout, "1000") {
			t.Errorf("mode %s stdout = %q, want 1000", mode, rr.Stdout)
		}
	}
}

// TestQuotaKill: an over-quota program is killed with a typed error
// carrying its source position, and the kill is uncatchable.
// TenantQuotas is keyed by tenant identity, so the token is mapped to
// the "small" tenant name.
func TestQuotaKill(t *testing.T) {
	s := startServer(t, Config{
		Tokens:       []string{"small=small-key"},
		TenantQuotas: map[string]Quota{"small": {MaxSteps: 20_000}},
	})
	src := "x = 0\nwhile True:\n    x = x + 1\n"
	st, rr, apiErr := postRun(t, s, "small-key", RunRequest{Source: src})
	if st != http.StatusOK {
		t.Fatalf("status = %d, want 200 (program errors ride in the response)", st)
	}
	if rr.OK || apiErr == nil {
		t.Fatalf("resp = %+v, want quota kill", rr)
	}
	if apiErr.Code != CodeQuotaKill || apiErr.Quota != "steps" {
		t.Errorf("error = %+v, want code %s quota steps", apiErr, CodeQuotaKill)
	}
	if apiErr.Pos == nil || apiErr.Pos.Line < 2 || apiErr.Pos.File != "main.py" {
		t.Errorf("error position = %+v, want a line inside the loop", apiErr.Pos)
	}
	if rr.Steps == 0 {
		t.Errorf("Steps = 0, want the charged step count")
	}

	// The same tenant's session still works after the kill.
	st, rr2, _ := postRun(t, s, "small-key", RunRequest{Source: "print(x)"})
	if st != http.StatusOK || !rr2.OK {
		t.Fatalf("post-kill run: status %d, resp %+v", st, rr2)
	}

	// A catch-all except cannot swallow the kill.
	caught := "y = 0\ntry:\n    while True:\n        y = y + 1\nexcept Exception:\n    y = -1\nprint(y)\n"
	_, rr3, apiErr3 := postRun(t, s, "small-key", RunRequest{Source: caught})
	if rr3.OK || apiErr3 == nil || apiErr3.Code != CodeQuotaKill {
		t.Errorf("except-wrapped kill: resp %+v err %+v, want uncatchable %s", rr3, apiErr3, CodeQuotaKill)
	}
}

// TestRuntimeErrorPosition: an uncaught MiniPy exception carries its
// type and position.
func TestRuntimeErrorPosition(t *testing.T) {
	s := startServer(t, Config{})
	st, rr, apiErr := postRun(t, s, "errs", RunRequest{Source: "a = 1\nb = a // 0\n", File: "oops.py"})
	if st != http.StatusOK || rr.OK || apiErr == nil {
		t.Fatalf("status %d resp %+v, want runtime error in response", st, rr)
	}
	if apiErr.Code != CodeRuntimeError || apiErr.ExcType != "ZeroDivisionError" {
		t.Errorf("error = %+v, want runtime_error/ZeroDivisionError", apiErr)
	}
	if apiErr.Pos == nil || apiErr.Pos.Line != 2 || apiErr.Pos.File != "oops.py" {
		t.Errorf("pos = %+v, want oops.py line 2", apiErr.Pos)
	}
}

// TestParseErrorPosition: syntax errors come back as parse_error with
// a position.
func TestParseErrorPosition(t *testing.T) {
	s := startServer(t, Config{})
	st, _, apiErr := postRun(t, s, "errs", RunRequest{Source: "def broken(:\n    pass\n"})
	if st != http.StatusOK || apiErr == nil || apiErr.Code != CodeParseError {
		t.Fatalf("status %d err %+v, want parse_error", st, apiErr)
	}
	if apiErr.Pos == nil || apiErr.Pos.Line != 1 {
		t.Errorf("pos = %+v, want line 1", apiErr.Pos)
	}
}

// TestBodyTooLarge: oversized bodies are rejected with 413.
func TestBodyTooLarge(t *testing.T) {
	s := startServer(t, Config{MaxBodyBytes: 512})
	big := strings.Repeat("# padding\n", 200)
	st, _, apiErr := postRun(t, s, "big", RunRequest{Source: big})
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", st)
	}
	if apiErr == nil || apiErr.Code != CodeBodyTooLarge {
		t.Errorf("error = %+v, want %s", apiErr, CodeBodyTooLarge)
	}
}

// TestAuth: missing, malformed and unlisted tokens are rejected.
func TestAuth(t *testing.T) {
	s := startServer(t, Config{Tokens: []string{"alice"}})
	req, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run",
		strings.NewReader(`{"source":"x = 1"}`))
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: status %d, want 401", res.StatusCode)
	}
	if st, _, _ := postRun(t, s, "mallory", RunRequest{Source: "x = 1"}); st != http.StatusUnauthorized {
		t.Errorf("unlisted token: status %d, want 401", st)
	}
	if st, rr, _ := postRun(t, s, "alice", RunRequest{Source: "x = 1"}); st != http.StatusOK || !rr.OK {
		t.Errorf("listed token: status %d resp %+v, want ok", st, rr)
	}
}

// TestBadRequests: unknown mode and empty source are 400s.
func TestBadRequests(t *testing.T) {
	s := startServer(t, Config{})
	if st, _, apiErr := postRun(t, s, "bad", RunRequest{Source: "x = 1", Mode: "turbo"}); st != http.StatusBadRequest || apiErr.Code != CodeBadRequest {
		t.Errorf("unknown mode: status %d err %+v", st, apiErr)
	}
	if st, _, _ := postRun(t, s, "bad", RunRequest{}); st != http.StatusBadRequest {
		t.Errorf("empty source: status %d, want 400", st)
	}
}

// TestOverloadShedding: with the only worker slot occupied and the
// queue full, the next request is shed with 429 + Retry-After.
func TestOverloadShedding(t *testing.T) {
	s := startServer(t, Config{MaxWorkers: 1, QueueDepth: 1})
	// Occupy the only worker slot so admitted requests queue.
	s.slots <- struct{}{}

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, _ := postRun(t, s, "queued", RunRequest{Source: "x = 1"})
			results <- st
		}()
	}
	// Wait until both are admitted and waiting on the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// backlog would become 3 > MaxWorkers+QueueDepth = 2: shed.
	body, _ := json.Marshal(RunRequest{Source: "x = 1"})
	req, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer shed")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", res.StatusCode, raw)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if !strings.Contains(string(raw), CodeOverloaded) {
		t.Errorf("429 body %q missing %s", raw, CodeOverloaded)
	}

	// Release the slot; the queued requests complete normally.
	<-s.slots
	for i := 0; i < 2; i++ {
		if st := <-results; st != http.StatusOK {
			t.Errorf("queued request finished with %d, want 200", st)
		}
	}

	// The shed shows up in the tenant's counters, labeled with the
	// derived tenant identity (open mode never exposes the token).
	_, raw2 := get(t, s, "/metrics", "")
	want := fmt.Sprintf("omp4go_serve_shed_total{tenant=%q} 1", s.tenantID("shed"))
	if !strings.Contains(string(raw2), want) {
		t.Errorf("/metrics missing shed counter %q", want)
	}
}

// TestGracefulDrain: Shutdown lets an in-flight run finish, refuses
// new work with 503, and retires the tenant runtimes.
func TestGracefulDrain(t *testing.T) {
	s := startServer(t, Config{})
	// A run that takes real time: enough iterations to outlast the
	// drain call, small enough to finish well inside the grace period.
	slow := "total = 0\nfor i in range(400000):\n    total = total + 1\nprint(total)\n"
	type result struct {
		st int
		rr RunResponse
	}
	done := make(chan result, 1)
	go func() {
		st, rr, _ := postRun(t, s, "drainer", RunRequest{Source: slow})
		done <- result{st, rr}
	}()
	// Wait for the run to hold a worker slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never acquired a slot")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	r := <-done
	if r.st != http.StatusOK || !r.rr.OK {
		t.Errorf("in-flight run: status %d resp %+v, want to finish ok", r.st, r.rr)
	}
	if r.rr.Stdout != "400000\n" {
		t.Errorf("in-flight stdout = %q, want full output", r.rr.Stdout)
	}

	// New work is refused (the listener is down or the handler 503s).
	body, _ := json.Marshal(RunRequest{Source: "x = 1"})
	req, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer late")
	if res, err := http.DefaultClient.Do(req); err == nil {
		res.Body.Close()
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("post-drain status = %d, want 503 or refused", res.StatusCode)
		}
	}
}

// TestDrainDeadlineKillsRuns: when the drain grace period expires, the
// in-flight run's budget is canceled and the handler still returns a
// typed response.
func TestDrainDeadlineKillsRuns(t *testing.T) {
	s := startServer(t, Config{
		// Effectively unlimited so only the drain cancel can stop it.
		DefaultQuota: Quota{MaxSteps: 1 << 60, MaxAllocs: 1 << 60, MaxWall: time.Hour},
	})
	type result struct {
		st     int
		apiErr *APIError
	}
	done := make(chan result, 1)
	go func() {
		st, _, apiErr := postRun(t, s, "stuck", RunRequest{Source: "x = 0\nwhile True:\n    x = x + 1\n"})
		done <- result{st, apiErr}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never acquired a slot")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.st != http.StatusOK || r.apiErr == nil {
		t.Fatalf("killed run: status %d err %+v, want typed cancel", r.st, r.apiErr)
	}
	if r.apiErr.Code != CodeQuotaKill || r.apiErr.Quota != "canceled" {
		t.Errorf("killed run error = %+v, want %s/canceled", r.apiErr, CodeQuotaKill)
	}
}

// TestStdoutTruncation: output past MaxStdoutBytes is dropped and the
// response flagged.
func TestStdoutTruncation(t *testing.T) {
	s := startServer(t, Config{MaxStdoutBytes: 64})
	src := "for i in range(100):\n    print(\"0123456789\")\n"
	st, rr, _ := postRun(t, s, "chatty", RunRequest{Source: src})
	if st != http.StatusOK || !rr.OK {
		t.Fatalf("status %d resp %+v", st, rr)
	}
	if !rr.StdoutTruncated || len(rr.Stdout) > 64 {
		t.Errorf("truncated=%v len=%d, want truncated ≤ 64 bytes", rr.StdoutTruncated, len(rr.Stdout))
	}
}

// TestStreamRun: stream mode delivers stdout chunks then the final
// response record as NDJSON.
func TestStreamRun(t *testing.T) {
	s := startServer(t, Config{})
	body, _ := json.Marshal(RunRequest{Source: "print(\"chunk-one\")\nprint(\"chunk-two\")\n", Stream: true})
	req, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer streamer")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, _ := io.ReadAll(res.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream = %q, want chunk records plus final response", raw)
	}
	var final RunResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil || !final.OK {
		t.Fatalf("final record %q: err=%v ok=%v", lines[len(lines)-1], err, final.OK)
	}
	joined := strings.Join(lines[:len(lines)-1], "\n")
	if !strings.Contains(joined, "chunk-one") || !strings.Contains(joined, "chunk-two") {
		t.Errorf("chunks %q missing program output", joined)
	}
}

// TestReset drops tenant state.
func TestReset(t *testing.T) {
	s := startServer(t, Config{})
	if _, rr, _ := postRun(t, s, "resetter", RunRequest{Source: "state = 42"}); !rr.OK {
		t.Fatalf("seed run failed: %+v", rr)
	}
	req, _ := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/reset", nil)
	req.Header.Set("Authorization", "Bearer resetter")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/v1/reset status %d", res.StatusCode)
	}
	_, rr, apiErr := postRun(t, s, "resetter", RunRequest{Source: "print(state)"})
	if rr.OK || apiErr == nil || apiErr.ExcType != "NameError" {
		t.Errorf("post-reset run = %+v err %+v, want NameError", rr, apiErr)
	}
}

// TestHistoryRing: the history is bounded and keeps the newest runs.
func TestHistoryRing(t *testing.T) {
	s := startServer(t, Config{HistoryLimit: 3})
	for i := 0; i < 5; i++ {
		if _, rr, _ := postRun(t, s, "hist", RunRequest{Source: fmt.Sprintf("x = %d", i)}); !rr.OK {
			t.Fatalf("run %d failed: %+v", i, rr)
		}
	}
	sess := s.lookupSession(s.tenantID("hist"))
	h := sess.History()
	if len(h) != 3 {
		t.Fatalf("history len = %d, want 3", len(h))
	}
	if h[0].Seq != 3 || h[2].Seq != 5 {
		t.Errorf("history seqs = %d..%d, want 3..5", h[0].Seq, h[2].Seq)
	}
}

// TestFromEnv: the OMP4GO_SERVE_* environment configures the service.
func TestFromEnv(t *testing.T) {
	env := map[string]string{
		EnvAddr:         "127.0.0.1:9999",
		EnvMaxBodyBytes: "2048",
		EnvMaxSteps:     "1234",
		EnvMaxWall:      "2s",
		EnvMaxThreads:   "3",
		EnvMaxWorkers:   "2",
		EnvQueueDepth:   "7",
		EnvHistory:      "9",
		EnvTokens:       "alice, bob, carol=carol-key",
		EnvWatchdog:     "5",
		EnvMaxSessions:  "11",
		EnvSessionIdle:  "90s",
	}
	cfg := FromEnv(func(k string) string { return env[k] })
	if cfg.Addr != "127.0.0.1:9999" || cfg.MaxBodyBytes != 2048 {
		t.Errorf("addr/body = %s/%d", cfg.Addr, cfg.MaxBodyBytes)
	}
	if cfg.DefaultQuota.MaxSteps != 1234 || cfg.DefaultQuota.MaxWall != 2*time.Second || cfg.DefaultQuota.MaxThreads != 3 {
		t.Errorf("quota = %+v", cfg.DefaultQuota)
	}
	if cfg.MaxWorkers != 2 || cfg.QueueDepth != 7 || cfg.HistoryLimit != 9 {
		t.Errorf("workers/queue/history = %d/%d/%d", cfg.MaxWorkers, cfg.QueueDepth, cfg.HistoryLimit)
	}
	if len(cfg.Tokens) != 3 || cfg.Tokens[0] != "alice" || cfg.Tokens[1] != "bob" || cfg.Tokens[2] != "carol=carol-key" {
		t.Errorf("tokens = %v", cfg.Tokens)
	}
	if cfg.Watchdog != 5*time.Second {
		t.Errorf("watchdog = %v", cfg.Watchdog)
	}
	if cfg.MaxSessions != 11 || cfg.SessionIdle != 90*time.Second {
		t.Errorf("sessions/idle = %d/%v", cfg.MaxSessions, cfg.SessionIdle)
	}
	// The "tenant=token" entry authenticates by token and names the
	// tenant.
	s := New(cfg)
	if got := s.tenantID("carol-key"); got != "carol" {
		t.Errorf("tenantID(carol-key) = %q, want carol", got)
	}
	// Unset environment falls back to defaults.
	def := FromEnv(func(string) string { return "" })
	if def.Addr != DefaultAddr || def.DefaultQuota.MaxSteps != DefaultMaxSteps {
		t.Errorf("defaults = %s/%d", def.Addr, def.DefaultQuota.MaxSteps)
	}
	if def.MaxSessions != DefaultMaxSessions || def.SessionIdle != DefaultSessionIdle {
		t.Errorf("default sessions/idle = %d/%v", def.MaxSessions, def.SessionIdle)
	}
}

// TestTokensNotExposed: the bearer token must never appear on the
// unauthenticated observability endpoints or in response bodies — the
// tenant identity is either the allowlist-assigned name or a hash.
func TestTokensNotExposed(t *testing.T) {
	s := startServer(t, Config{Tokens: []string{"alice=super-secret-key", "bare-secret-token"}})
	for _, token := range []string{"super-secret-key", "bare-secret-token"} {
		st, rr, _ := postRun(t, s, token, RunRequest{Source: "x = 1"})
		if st != http.StatusOK || !rr.OK {
			t.Fatalf("%s run: status %d resp %+v", token, st, rr)
		}
		if strings.Contains(rr.Tenant, token) {
			t.Errorf("response tenant %q leaks the token", rr.Tenant)
		}
	}
	if got := s.tenantID("super-secret-key"); got != "alice" {
		t.Errorf("named token tenant = %q, want alice", got)
	}
	for _, path := range []string{"/metrics", "/debug/omp"} {
		_, raw := get(t, s, path, "")
		body := string(raw)
		for _, secret := range []string{"super-secret-key", "bare-secret-token"} {
			if strings.Contains(body, secret) {
				t.Errorf("%s leaks token %q", path, secret)
			}
		}
		if path == "/metrics" && !strings.Contains(body, `tenant="alice"`) {
			t.Errorf("/metrics missing the named tenant series")
		}
	}
	// The bare token's hashed identity is stable and label-safe.
	id := s.tenantID("bare-secret-token")
	if !strings.HasPrefix(id, "t-") || !tokenRe.MatchString(id) {
		t.Errorf("derived tenant id %q, want label-safe t-<hash>", id)
	}
	_, raw := get(t, s, "/metrics", "")
	if !strings.Contains(string(raw), fmt.Sprintf("tenant=%q", id)) {
		t.Errorf("/metrics missing hashed tenant series %q", id)
	}
}

// TestTenantBacklogDoesNotHoldSlots: a tenant with a run in progress
// queues its next request on the session run lock, NOT on a worker
// slot — so one tenant's backlog cannot wedge the pool for others.
func TestTenantBacklogDoesNotHoldSlots(t *testing.T) {
	s := startServer(t, Config{MaxWorkers: 1, QueueDepth: 4})
	// Materialize the hog's session, then hold its run lock as if a
	// run were executing (without occupying the worker slot).
	if _, rr, _ := postRun(t, s, "hog", RunRequest{Source: "x = 1"}); !rr.OK {
		t.Fatalf("seed run failed: %+v", rr)
	}
	sess := s.lookupSession(s.tenantID("hog"))
	sess.acquireRun()

	done := make(chan RunResponse, 1)
	go func() {
		_, rr, _ := postRun(t, s, "hog", RunRequest{Source: "y = 2"})
		done <- rr
	}()
	// Wait until the second hog request is admitted and parked.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	// It must be waiting on the run lock, leaving the only slot free.
	if n := len(s.slots); n != 0 {
		t.Errorf("parked tenant request holds %d worker slot(s), want 0", n)
	}
	// Another tenant gets through immediately.
	st, rr, _ := postRun(t, s, "bystander", RunRequest{Source: "print(7)"})
	if st != http.StatusOK || !rr.OK || rr.Stdout != "7\n" {
		t.Errorf("bystander starved: status %d resp %+v", st, rr)
	}
	// Release the hog's lock; its queued request completes.
	sess.releaseRun()
	if rr := <-done; !rr.OK {
		t.Errorf("queued hog request = %+v, want ok", rr)
	}
}

// TestSessionCapEviction: the session table is bounded — at the cap
// the LRU idle session is evicted (its state is gone afterwards), and
// when every session is mid-run the request is shed with 429.
func TestSessionCapEviction(t *testing.T) {
	s := startServer(t, Config{MaxSessions: 2})
	if _, rr, _ := postRun(t, s, "first", RunRequest{Source: "state = 1"}); !rr.OK {
		t.Fatalf("first: %+v", rr)
	}
	time.Sleep(5 * time.Millisecond) // order lastUsed deterministically
	if _, rr, _ := postRun(t, s, "second", RunRequest{Source: "state = 2"}); !rr.OK {
		t.Fatalf("second: %+v", rr)
	}
	// Third tenant: evicts "first" (the LRU).
	if _, rr, _ := postRun(t, s, "third", RunRequest{Source: "state = 3"}); !rr.OK {
		t.Fatalf("third: %+v", rr)
	}
	if sess := s.lookupSession(s.tenantID("first")); sess != nil {
		t.Errorf("first session survived past the cap")
	}
	if n := s.evicted.Load(); n != 1 {
		t.Errorf("evicted = %d, want 1", n)
	}
	// The evicted tenant can come back — with fresh state. (Its return
	// evicts the new LRU, "second", keeping the table at the cap.)
	_, rr, apiErr := postRun(t, s, "first", RunRequest{Source: "print(state)"})
	if rr.OK || apiErr == nil || apiErr.ExcType != "NameError" {
		t.Errorf("revived first tenant = %+v err %+v, want NameError", rr, apiErr)
	}

	// With every session's run lock held, there is nothing to evict:
	// a new tenant is shed with 429.
	for _, tok := range []string{"third", "first"} {
		sess := s.lookupSession(s.tenantID(tok))
		if sess == nil {
			t.Fatalf("session %s missing", tok)
		}
		sess.acquireRun()
		defer sess.releaseRun()
	}
	st, _, apiErr := postRun(t, s, "fourth", RunRequest{Source: "x = 1"})
	if st != http.StatusTooManyRequests || apiErr == nil || apiErr.Code != CodeOverloaded {
		t.Errorf("full busy table: status %d err %+v, want 429 %s", st, apiErr, CodeOverloaded)
	}
}

// TestIdleSessionEviction: sessions idle past SessionIdle are torn
// down when new sessions are created.
func TestIdleSessionEviction(t *testing.T) {
	s := startServer(t, Config{SessionIdle: 50 * time.Millisecond})
	if _, rr, _ := postRun(t, s, "sleepy", RunRequest{Source: "x = 1"}); !rr.OK {
		t.Fatalf("seed: %+v", rr)
	}
	time.Sleep(80 * time.Millisecond)
	// Creating another tenant's session grooms the table.
	if _, rr, _ := postRun(t, s, "awake", RunRequest{Source: "y = 1"}); !rr.OK {
		t.Fatalf("groomer: %+v", rr)
	}
	if sess := s.lookupSession(s.tenantID("sleepy")); sess != nil {
		t.Errorf("idle session survived grooming")
	}
}

// TestClientDisconnectCancelsRun: a non-streamed run whose client goes
// away is canceled (typed quota_exceeded/canceled) instead of holding
// its worker slot until the wall quota expires.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s := startServer(t, Config{
		// Effectively unlimited so only the disconnect can stop it.
		DefaultQuota: Quota{MaxSteps: 1 << 60, MaxAllocs: 1 << 60, MaxWall: time.Hour},
	})
	body, _ := json.Marshal(RunRequest{Source: "x = 0\nwhile True:\n    x = x + 1\n"})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+s.Addr()+"/v1/run", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer goner")
	errCh := make(chan error, 1)
	go func() {
		res, err := http.DefaultClient.Do(req)
		if err == nil {
			res.Body.Close()
		}
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never acquired a slot")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-errCh
	// The slot comes back promptly — the run did not sit on its
	// hour-long wall quota.
	deadline = time.Now().Add(5 * time.Second)
	for len(s.slots) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned run still holds its worker slot")
		}
		time.Sleep(time.Millisecond)
	}
	// The run was killed with the typed cancel, visible in history.
	sess := s.lookupSession(s.tenantID("goner"))
	if sess == nil {
		t.Fatal("session missing")
	}
	h := sess.History()
	if len(h) != 1 || h[0].Error == nil || h[0].Error.Code != CodeQuotaKill || h[0].Error.Quota != "canceled" {
		t.Errorf("history = %+v, want a %s/canceled entry", h, CodeQuotaKill)
	}
}
