package serve

import (
	"testing"

	"github.com/omp4go/omp4go/internal/rt"
)

// TestEnvVarsListedInDisplayEnv keeps rt's OMP_DISPLAY_ENV=verbose
// mirror of the OMP4GO_SERVE_* names in sync with this package's
// parser: a variable added here without a display entry (or renamed on
// one side) fails.
func TestEnvVarsListedInDisplayEnv(t *testing.T) {
	parsed := []string{
		EnvAddr, EnvMaxBodyBytes, EnvMaxSteps, EnvMaxAllocs, EnvMaxWall,
		EnvMaxThreads, EnvMaxWorkers, EnvQueueDepth, EnvHistory,
		EnvTokens, EnvWatchdog, EnvMaxSessions, EnvSessionIdle, EnvFlight,
	}
	displayed := map[string]bool{}
	for _, n := range rt.DisplayedServeEnvVars() {
		displayed[n] = true
	}
	for _, n := range parsed {
		if !displayed[n] {
			t.Errorf("%s is parsed by serve but not listed by OMP_DISPLAY_ENV=verbose (internal/rt/icv.go serveEnvVars)", n)
		}
	}
	if len(displayed) != len(parsed) {
		t.Errorf("display lists %d serve variables, serve parses %d — the mirrors drifted", len(displayed), len(parsed))
	}
}
