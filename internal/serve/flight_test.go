package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestQuotaKillWritesFlightDump wires the serve-layer kill path to the
// runtime flight recorder: with FlightDir set, a budget kill leaves a
// loadable post-mortem dump under <dir>/<tenant>/<mode>.
func TestQuotaKillWritesFlightDump(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, Config{
		Tokens:       []string{"small=small-key"},
		TenantQuotas: map[string]Quota{"small": {MaxSteps: 20_000}},
		FlightDir:    dir,
	})
	src := "x = 0\nwhile True:\n    x = x + 1\n"
	st, rr, apiErr := postRun(t, s, "small-key", RunRequest{Source: src})
	if st != http.StatusOK || rr.OK || apiErr == nil || apiErr.Code != CodeQuotaKill {
		t.Fatalf("run = status %d resp %+v err %+v, want a quota kill", st, rr, apiErr)
	}

	// The dump lands in the tenant/mode subdirectory, named after the
	// kill kind; poll briefly since the write races the response.
	pattern := filepath.Join(dir, "small", "Hybrid", "omp4go-flight-*-kill_steps.json")
	var dumps []string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		dumps, _ = filepath.Glob(pattern)
		if len(dumps) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(dumps) == 0 {
		t.Fatalf("no flight dump matching %s after a quota kill", pattern)
	}

	var doc struct {
		Reason  string          `json:"reason"`
		Debug   json.RawMessage `json:"debug"`
		Profile json.RawMessage `json:"profile"`
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		data, err := os.ReadFile(dumps[0])
		if err == nil && json.Unmarshal(data, &doc) == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dump %s never became loadable: %v", dumps[0], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if doc.Reason != "kill_steps" {
		t.Errorf("dump reason = %q, want kill_steps", doc.Reason)
	}
	if len(doc.Debug) == 0 {
		t.Error("dump carries no debug snapshot")
	}
}

// TestTenantTimeAttribution runs a parallel program and asserts the
// tenant's team-thread time breakdown shows up on /metrics and in the
// per-tenant debug document.
func TestTenantTimeAttribution(t *testing.T) {
	s := startServer(t, Config{Tokens: []string{"acme=acme-key"}})
	st, rr, apiErr := postRun(t, s, "acme-key", RunRequest{Source: parallelProgram})
	if st != http.StatusOK || !rr.OK {
		t.Fatalf("run = status %d resp %+v err %+v", st, rr, apiErr)
	}

	st, raw := get(t, s, "/metrics", "acme-key")
	if st != http.StatusOK {
		t.Fatalf("/metrics status %d", st)
	}
	body := string(raw)
	if !strings.Contains(body, `omp4go_serve_time_seconds_total{tenant="acme",state="compute"}`) {
		t.Errorf("/metrics lacks the tenant compute series:\n%s", body)
	}

	st, raw = get(t, s, "/debug/omp", "acme-key")
	if st != http.StatusOK {
		t.Fatalf("/debug/omp status %d", st)
	}
	var dbg struct {
		Tenants map[string]struct {
			Runtimes map[string]struct {
				Profile *struct {
					Buckets []struct {
						Label   string           `json:"label"`
						NS      map[string]int64 `json:"ns"`
						TotalNS int64            `json:"total_ns"`
					} `json:"buckets"`
					TotalNS int64 `json:"total_ns"`
				} `json:"profile"`
			} `json:"runtimes"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(raw, &dbg); err != nil {
		t.Fatalf("/debug/omp: %v\n%s", err, raw)
	}
	ten, ok := dbg.Tenants["acme"]
	if !ok {
		t.Fatalf("/debug/omp has no tenant acme: %s", raw)
	}
	var attributed int64
	var labeled bool
	for _, rtv := range ten.Runtimes {
		if rtv.Profile == nil {
			continue
		}
		attributed += rtv.Profile.TotalNS
		for _, b := range rtv.Profile.Buckets {
			// MiniPy regions auto-label with their source line.
			if strings.HasPrefix(b.Label, "L") {
				labeled = true
			}
		}
	}
	if attributed <= 0 {
		t.Error("no runtime reported an attribution breakdown")
	}
	if !labeled {
		t.Error("no bucket carries a MiniPy source-line label (L<line>)")
	}
}
