package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
)

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	// Source is the MiniPy program.
	Source string `json:"source"`
	// Mode selects the directive mode: "pure", "hybrid" (default),
	// "compiled" or "compileddt".
	Mode string `json:"mode,omitempty"`
	// NumThreads requests an OpenMP team size for the run (capped by
	// the tenant's MaxThreads quota; 0 keeps the session's current
	// setting).
	NumThreads int `json:"num_threads,omitempty"`
	// File names the program in error positions (default "main.py").
	File string `json:"file,omitempty"`
	// Stream switches the response to NDJSON: stdout chunks as they
	// are produced, then the final RunResponse.
	Stream bool `json:"stream,omitempty"`
}

// RunResponse is the POST /v1/run result (also the final NDJSON
// record of a streamed run).
type RunResponse struct {
	OK bool `json:"ok"`
	// Tenant is the session owner; Seq numbers the run within the
	// session's history.
	Tenant string `json:"tenant"`
	Seq    int64  `json:"seq"`
	Mode   string `json:"mode"`
	// Stdout is the captured print() output (empty for streamed runs,
	// where it was already delivered as chunks).
	Stdout          string  `json:"stdout,omitempty"`
	StdoutTruncated bool    `json:"stdout_truncated,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	// Steps and Allocs are the budget charges of the run (allocs only
	// when an allocation quota is armed).
	Steps  int64     `json:"steps,omitempty"`
	Allocs int64     `json:"allocs,omitempty"`
	Error  *APIError `json:"error,omitempty"`
}

// Pos is a source position in API errors (1-based line, 1-based
// column, matching what minipy.Position.String prints).
type Pos struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// Error codes. Protocol failures (the run never started) arrive with
// a matching HTTP status; program failures ride inside a 200
// RunResponse so clients distinguish "your program failed" from "the
// service failed you".
const (
	CodeBadRequest   = "bad_request"    // malformed JSON, unknown mode (400)
	CodeUnauthorized = "unauthorized"   // missing or rejected token (401)
	CodeBodyTooLarge = "body_too_large" // request body over MaxBodyBytes (413)
	CodeOverloaded   = "overloaded"     // run queue full, load shed (429)
	CodeDraining     = "draining"       // server shutting down (503)
	CodeParseError   = "parse_error"    // MiniPy syntax or directive error
	CodeCompileError = "compile_error"  // compiled-mode specialization error
	CodeRuntimeError = "runtime_error"  // uncaught MiniPy exception
	CodeQuotaKill    = "quota_exceeded" // execution budget violation
)

// APIError is the typed error schema: a stable code, a human message,
// the MiniPy exception type for runtime errors, the violated quota
// dimension for kills, and the source position when one is known.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// ExcType is the Python exception class for runtime_error (e.g.
	// "ZeroDivisionError").
	ExcType string `json:"exc_type,omitempty"`
	// Quota is "steps", "allocs", "deadline" or "canceled" for
	// quota_exceeded.
	Quota string `json:"quota,omitempty"`
	Pos   *Pos   `json:"pos,omitempty"`
	// RetryAfterSeconds accompanies overloaded responses.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func (e *APIError) Error() string {
	if e.Pos != nil {
		return fmt.Sprintf("%s: %s (%s line %d col %d)", e.Code, e.Message, e.Pos.File, e.Pos.Line, e.Pos.Col)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// apiPos converts a minipy position (1-based line, 0-based column)
// into the API's 1-based form; zero positions map to nil.
func apiPos(file string, p minipy.Position) *Pos {
	if p.Line == 0 {
		return nil
	}
	return &Pos{File: file, Line: p.Line, Col: p.Col + 1}
}

// classifyRunError maps an execution error onto the API error schema.
// frontend distinguishes parse/compile-stage failures from runtime
// ones, since both surface minipy front-end errors.
func classifyRunError(err error, file, stageCode string) *APIError {
	var be *interp.BudgetError
	if errors.As(err, &be) {
		return &APIError{
			Code:    CodeQuotaKill,
			Message: be.Error(),
			Quota:   be.Kind,
			Pos:     apiPos(file, be.Pos),
		}
	}
	var pe *interp.PyError
	if errors.As(err, &pe) {
		return &APIError{
			Code:    CodeRuntimeError,
			Message: pe.Error(),
			ExcType: pe.Type,
			Pos:     apiPos(file, pe.Pos),
		}
	}
	var fe *minipy.Error
	if errors.As(err, &fe) {
		return &APIError{
			Code:    stageCode,
			Message: fe.Error(),
			Pos:     apiPos(file, fe.Pos),
		}
	}
	return &APIError{Code: stageCode, Message: err.Error()}
}

// writeAPIError writes a protocol-level error with its HTTP status.
func writeAPIError(w http.ResponseWriter, status int, e *APIError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.RetryAfterSeconds))
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Error *APIError `json:"error"`
	}{e})
}

// HistoryEntry is one record of a session's execution history (the
// GET /v1/history items). Source is elided; Hash identifies it.
type HistoryEntry struct {
	Seq        int64     `json:"seq"`
	Mode       string    `json:"mode"`
	OK         bool      `json:"ok"`
	Error      *APIError `json:"error,omitempty"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	Steps      int64     `json:"steps,omitempty"`
	SourceLen  int       `json:"source_len"`
	SourceHash string    `json:"source_hash"`
	UnixMS     int64     `json:"unix_ms"`
}
