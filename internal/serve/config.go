// Package serve is the multi-tenant MiniPy execution service: an
// HTTP/JSON layer that accepts MiniPy programs with a directive mode
// (Pure/Hybrid/Compiled/CompiledDT), executes them on per-tenant
// isolated interpreter + OpenMP runtime instances, and returns (or
// streams) stdout and typed errors with source positions.
//
// Production concerns are the point of the package: per-tenant
// CPU-step/allocation/wall-clock quotas enforced through the
// interpreter's execution budget (internal/interp.Budget), admission
// control with load shedding when the worker slots saturate (429 +
// Retry-After), a bounded run queue, graceful drain on shutdown, and
// per-tenant counters/histograms on /metrics with per-tenant runtime
// introspection on /debug/omp.
package serve

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Env variable names understood by FromEnv. OMP_DISPLAY_ENV=verbose
// lists the same names (internal/rt/icv.go), so a misconfigured
// deployment can see what the runtime parsed.
const (
	EnvAddr         = "OMP4GO_SERVE_ADDR"
	EnvMaxBodyBytes = "OMP4GO_SERVE_MAX_BODY_BYTES"
	EnvMaxSteps     = "OMP4GO_SERVE_MAX_STEPS"
	EnvMaxAllocs    = "OMP4GO_SERVE_MAX_ALLOCS"
	EnvMaxWall      = "OMP4GO_SERVE_MAX_WALL"
	EnvMaxThreads   = "OMP4GO_SERVE_MAX_THREADS"
	EnvMaxWorkers   = "OMP4GO_SERVE_MAX_WORKERS"
	EnvQueueDepth   = "OMP4GO_SERVE_QUEUE_DEPTH"
	EnvHistory      = "OMP4GO_SERVE_HISTORY"
	EnvTokens       = "OMP4GO_SERVE_TOKENS"
	EnvWatchdog     = "OMP4GO_SERVE_WATCHDOG"
	EnvMaxSessions  = "OMP4GO_SERVE_MAX_SESSIONS"
	EnvSessionIdle  = "OMP4GO_SERVE_SESSION_IDLE"
	EnvFlight       = "OMP4GO_SERVE_FLIGHT"
)

// Quota bounds one tenant run. Zero fields mean "unlimited" except
// MaxThreads (0 = the server default).
type Quota struct {
	// MaxSteps bounds interpreter steps per run (the CPU-time proxy).
	MaxSteps int64
	// MaxAllocs bounds boxed allocations per run (the memory proxy —
	// MiniPy has no FS or network access, so allocations are the only
	// way a program grows).
	MaxAllocs int64
	// MaxWall is the wall-clock limit per run.
	MaxWall time.Duration
	// MaxThreads caps the OpenMP team size a run may request.
	MaxThreads int
}

// Config configures a Server.
type Config struct {
	// Addr is the listen address (":8500" by default; use ":0" in
	// tests).
	Addr string
	// MaxBodyBytes bounds the JSON request body; oversized requests
	// are rejected with 413.
	MaxBodyBytes int64
	// MaxStdoutBytes bounds captured stdout per run; the rest is
	// discarded and the response marked truncated.
	MaxStdoutBytes int
	// MaxWorkers is the number of runs executing concurrently;
	// QueueDepth is how many more may wait for a slot before the
	// server sheds load with 429.
	MaxWorkers int
	QueueDepth int
	// HistoryLimit is the per-session execution history ring size.
	HistoryLimit int
	// DefaultQuota applies to every tenant; TenantQuotas overrides it
	// per tenant.
	DefaultQuota Quota
	TenantQuotas map[string]Quota
	// Tokens, when non-empty, restricts access to the listed auth
	// tokens. An entry is either a bare token or "tenant=token", which
	// names the tenant the token authenticates as. Empty means any
	// well-formed token is accepted (the deployment fronts this with
	// real auth). Tokens are secrets and never appear in responses,
	// metrics labels or /debug/omp: an unnamed token's tenant identity
	// is a truncated hash of it.
	Tokens []string
	// MaxSessions caps the live session table; at the cap the
	// least-recently-used idle session is evicted to make room, and if
	// every session is mid-run the new request is shed with 429.
	// Without a cap, cycling random tokens in open mode would grow
	// interpreters and pooled workers without bound.
	MaxSessions int
	// SessionIdle evicts sessions with no authenticated request for
	// this long (checked when sessions are created). Negative disables
	// idle eviction; 0 takes the default.
	SessionIdle time.Duration
	// Watchdog arms the per-session runtime stall watchdog with this
	// threshold, surfacing stuck runs in /debug/omp. 0 = off.
	Watchdog time.Duration
	// FlightDir enables the per-tenant flight recorder: each tenant
	// runtime writes stall- and quota-kill-triggered post-mortem dumps
	// under FlightDir/<tenant>/<mode>. Empty = off.
	FlightDir string
}

// Defaults for the quota and service knobs.
const (
	DefaultAddr         = ":8500"
	DefaultMaxBodyBytes = 1 << 20 // 1 MiB of JSON
	DefaultMaxStdout    = 256 << 10
	DefaultMaxSteps     = 50_000_000
	DefaultMaxAllocs    = 64_000_000
	DefaultMaxWall      = 10 * time.Second
	DefaultMaxThreads   = 8
	DefaultHistory      = 64
	DefaultMaxSessions  = 256
	DefaultSessionIdle  = 15 * time.Minute
)

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = DefaultAddr
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxStdoutBytes <= 0 {
		c.MaxStdoutBytes = DefaultMaxStdout
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxWorkers
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = DefaultHistory
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.SessionIdle == 0 {
		c.SessionIdle = DefaultSessionIdle
	}
	if c.DefaultQuota.MaxSteps == 0 {
		c.DefaultQuota.MaxSteps = DefaultMaxSteps
	}
	if c.DefaultQuota.MaxAllocs == 0 {
		c.DefaultQuota.MaxAllocs = DefaultMaxAllocs
	}
	if c.DefaultQuota.MaxWall == 0 {
		c.DefaultQuota.MaxWall = DefaultMaxWall
	}
	if c.DefaultQuota.MaxThreads <= 0 {
		c.DefaultQuota.MaxThreads = DefaultMaxThreads
	}
	return c
}

// quotaFor resolves the effective quota of a tenant.
func (c *Config) quotaFor(tenant string) Quota {
	q, ok := c.TenantQuotas[tenant]
	if !ok {
		return c.DefaultQuota
	}
	if q.MaxSteps == 0 {
		q.MaxSteps = c.DefaultQuota.MaxSteps
	}
	if q.MaxAllocs == 0 {
		q.MaxAllocs = c.DefaultQuota.MaxAllocs
	}
	if q.MaxWall == 0 {
		q.MaxWall = c.DefaultQuota.MaxWall
	}
	if q.MaxThreads <= 0 {
		q.MaxThreads = c.DefaultQuota.MaxThreads
	}
	return q
}

// FromEnv builds a Config from the OMP4GO_SERVE_* environment,
// falling back to the defaults for unset or unparsable values (the
// environment never fails service construction, matching how the
// runtime treats bad OMP_* values).
func FromEnv(getenv func(string) string) Config {
	if getenv == nil {
		getenv = os.Getenv
	}
	var c Config
	c.Addr = strings.TrimSpace(getenv(EnvAddr))
	c.MaxBodyBytes = envInt64(getenv, EnvMaxBodyBytes)
	c.DefaultQuota.MaxSteps = envInt64(getenv, EnvMaxSteps)
	c.DefaultQuota.MaxAllocs = envInt64(getenv, EnvMaxAllocs)
	c.DefaultQuota.MaxWall = envDuration(getenv, EnvMaxWall)
	c.DefaultQuota.MaxThreads = int(envInt64(getenv, EnvMaxThreads))
	c.MaxWorkers = int(envInt64(getenv, EnvMaxWorkers))
	c.QueueDepth = int(envInt64(getenv, EnvQueueDepth))
	c.HistoryLimit = int(envInt64(getenv, EnvHistory))
	c.Watchdog = envDuration(getenv, EnvWatchdog)
	c.MaxSessions = int(envInt64(getenv, EnvMaxSessions))
	c.SessionIdle = envDuration(getenv, EnvSessionIdle)
	c.FlightDir = strings.TrimSpace(getenv(EnvFlight))
	if v := strings.TrimSpace(getenv(EnvTokens)); v != "" {
		for _, tok := range strings.Split(v, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				c.Tokens = append(c.Tokens, tok)
			}
		}
	}
	return c.withDefaults()
}

func envInt64(getenv func(string) string, key string) int64 {
	v := strings.TrimSpace(getenv(key))
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func envDuration(getenv func(string) string, key string) time.Duration {
	v := strings.TrimSpace(getenv(key))
	if v == "" {
		return 0
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d
	}
	// A bare number reads as seconds, like OMP4GO_WATCHDOG.
	if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}
