package mpi

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
)

// The TCP transport: each rank is a separate OS process and frames
// move over real sockets with length-prefixed binary framing. Vector
// payloads go as raw little-endian float64s; object payloads
// (SendObj) ride as gob blobs — see RegisterObjType.
//
// Rendezvous: rank 0 listens on the shared address; every other rank
// dials it, announces its rank and its own mesh-listener address, and
// receives the full peer table back. The all-to-all mesh then forms
// with a fixed orientation — each rank dials every lower rank and
// accepts from every higher rank — so exactly one connection exists
// per pair. The connection to rank 0 doubles as the rendezvous
// channel and the rank-0 data link.

// Environment variables a rank process reads to join a TCP world
// (EnvTCPConfig). The launcher cmd/omp4go-mpirun sets all of them.
const (
	EnvMPIAddr     = "OMP4GO_MPI_ADDR"
	EnvMPIRank     = "OMP4GO_MPI_RANK"
	EnvMPISize     = "OMP4GO_MPI_SIZE"
	EnvMPICoalesce = "OMP4GO_MPI_COALESCE"
)

// EnvVarNames lists the OMP4GO_MPI_* variables in display order. The
// runtime's OMP_DISPLAY_ENV=verbose output mirrors this list (a test
// pins the two in sync).
func EnvVarNames() []string {
	return []string{EnvMPIAddr, EnvMPIRank, EnvMPISize, EnvMPICoalesce}
}

// TCPConfig describes one rank's place in a multi-process world.
type TCPConfig struct {
	// Rank of this process and total Size of the world.
	Rank, Size int
	// Addr is the rendezvous address rank 0 listens on and every other
	// rank dials, e.g. "127.0.0.1:7311".
	Addr string
	// DialTimeout bounds the whole rendezvous (dial retries included);
	// 0 means 10s.
	DialTimeout time.Duration
	// FlushWindow and CoalesceBytes override the communicator's
	// batching parameters (0 keeps the defaults).
	FlushWindow   time.Duration
	CoalesceBytes int
	// Metrics, when set, receives the omp4go_mpi_* counters (a
	// Runtime's registry puts them on its /metrics endpoint).
	Metrics *metrics.Registry
}

// EnvTCPConfig builds a TCPConfig from OMP4GO_MPI_* variables via
// getenv (normally os.Getenv). ok is false when OMP4GO_MPI_ADDR is
// unset — the process is not part of a TCP world.
func EnvTCPConfig(getenv func(string) string) (cfg TCPConfig, ok bool, err error) {
	cfg.Addr = getenv(EnvMPIAddr)
	if cfg.Addr == "" {
		return TCPConfig{}, false, nil
	}
	parse := func(name string) (int, error) {
		s := getenv(name)
		if s == "" {
			return 0, fmt.Errorf("mpi: %s is set but %s is not", EnvMPIAddr, name)
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("mpi: invalid %s %q: %w", name, s, err)
		}
		return n, nil
	}
	if cfg.Rank, err = parse(EnvMPIRank); err != nil {
		return TCPConfig{}, false, err
	}
	if cfg.Size, err = parse(EnvMPISize); err != nil {
		return TCPConfig{}, false, err
	}
	if s := getenv(EnvMPICoalesce); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return TCPConfig{}, false, fmt.Errorf("mpi: invalid %s %q", EnvMPICoalesce, s)
		}
		cfg.CoalesceBytes = n
	}
	return cfg, true, nil
}

// ConnectTCP joins the TCP world described by cfg: it performs the
// rank rendezvous, builds the all-to-all mesh, and returns a Comm
// whose collectives, matching and coalescing behave identically to
// the in-process transport's. Dial and accept failures surface as
// errors within cfg.DialTimeout — a missing or crashed peer never
// hangs the rendezvous.
func ConnectTCP(cfg TCPConfig) (*Comm, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("mpi: world size %d must be at least 1", cfg.Size)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("mpi: rank %d outside world of size %d", cfg.Rank, cfg.Size)
	}
	opts := commOptions{metrics: cfg.Metrics, flushWindow: cfg.FlushWindow, coalesceBytes: cfg.CoalesceBytes}
	tr := &tcpTransport{rank: cfg.Rank, size: cfg.Size}
	if cfg.Size > 1 {
		if err := tr.rendezvous(cfg); err != nil {
			tr.Close()
			return nil, fmt.Errorf("mpi: rank %d rendezvous: %w", cfg.Rank, err)
		}
	}
	return newComm(tr, opts), nil
}

// tcpHello is the first control message on every new connection.
type tcpHello struct {
	Rank int
	// Addr is the sender's mesh-listener address; only the hello to
	// rank 0 carries it.
	Addr string
}

// tcpTable is rank 0's reply: the mesh address of every rank
// (Addrs[0] is unused — everyone already holds the rank-0 link).
type tcpTable struct {
	Addrs []string
}

// ctlLimit bounds control-blob sizes (a peer table of hostnames is
// tiny; anything larger is a corrupt or hostile stream).
const ctlLimit = 1 << 20

// writeCtl sends one gob-encoded control value as a length-prefixed
// blob. The explicit length prefix matters: a raw gob.Decoder reads
// ahead of the value it decodes, which would swallow framing bytes of
// the data stream that follows the rendezvous on the same connection.
func writeCtl(conn net.Conn, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(buf.Bytes())
	return err
}

// readCtl reads one length-prefixed control blob into v.
func readCtl(conn io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > ctlLimit {
		return fmt.Errorf("control message of %d bytes exceeds limit", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(conn, blob); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}

// tcpPeer is one live connection plus its read-side state. The
// Transport contract (one Recv caller per src at a time) makes rbuf
// and br single-reader; wmu serializes writes defensively.
type tcpPeer struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	bw   *bufio.Writer
	rbuf []frame // decoded frames not yet handed to Recv
}

type tcpTransport struct {
	rank, size int
	peers      []*tcpPeer // nil for self and, before rendezvous, everyone
	closeOnce  sync.Once
}

func (t *tcpTransport) Rank() int { return t.rank }
func (t *tcpTransport) Size() int { return t.size }

func (t *tcpTransport) adopt(rank int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // halo messages are latency-bound
	}
	_ = conn.SetDeadline(time.Time{})
	t.peers[rank] = &tcpPeer{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// rendezvous establishes the all-to-all mesh per the protocol in the
// package comment. Every conn carries a deadline until the mesh is
// complete, so a dead or absent peer fails the rendezvous instead of
// hanging it.
func (t *tcpTransport) rendezvous(cfg TCPConfig) error {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	t.peers = make([]*tcpPeer, t.size)
	if t.rank == 0 {
		return t.rendezvousRoot(cfg, deadline)
	}
	return t.rendezvousPeer(cfg, deadline)
}

func (t *tcpTransport) rendezvousRoot(cfg TCPConfig, deadline time.Time) error {
	ln, err := listenRetry(cfg.Addr, deadline)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", cfg.Addr, err)
	}
	defer ln.Close()
	addrs := make([]string, t.size)
	conns := make([]net.Conn, t.size)
	for n := 1; n < t.size; n++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("waiting for %d more ranks: %w", t.size-n, err)
		}
		_ = conn.SetDeadline(deadline)
		var h tcpHello
		if err := readCtl(conn, &h); err != nil {
			return fmt.Errorf("reading hello: %w", err)
		}
		if h.Rank <= 0 || h.Rank >= t.size || conns[h.Rank] != nil {
			return fmt.Errorf("bad or duplicate hello from rank %d", h.Rank)
		}
		conns[h.Rank] = conn
		addrs[h.Rank] = h.Addr
	}
	table := tcpTable{Addrs: addrs}
	for r := 1; r < t.size; r++ {
		if err := writeCtl(conns[r], table); err != nil {
			return fmt.Errorf("sending peer table to rank %d: %w", r, err)
		}
		t.adopt(r, conns[r])
	}
	return nil
}

func (t *tcpTransport) rendezvousPeer(cfg TCPConfig, deadline time.Time) error {
	// The mesh listener accepts connections from higher ranks. Its
	// advertised host is whatever interface reaches rank 0, learned
	// from the rendezvous connection itself.
	mesh, err := net.Listen("tcp", ":0")
	if err != nil {
		return fmt.Errorf("mesh listener: %w", err)
	}
	defer mesh.Close()
	conn0, err := dialRetry(cfg.Addr, deadline)
	if err != nil {
		return fmt.Errorf("dialing rank 0 at %s: %w", cfg.Addr, err)
	}
	_ = conn0.SetDeadline(deadline)
	host, _, err := net.SplitHostPort(conn0.LocalAddr().String())
	if err != nil {
		conn0.Close()
		return err
	}
	_, meshPort, err := net.SplitHostPort(mesh.Addr().String())
	if err != nil {
		conn0.Close()
		return err
	}
	hello := tcpHello{Rank: t.rank, Addr: net.JoinHostPort(host, meshPort)}
	if err := writeCtl(conn0, hello); err != nil {
		conn0.Close()
		return fmt.Errorf("sending hello to rank 0: %w", err)
	}
	var table tcpTable
	if err := readCtl(conn0, &table); err != nil {
		conn0.Close()
		return fmt.Errorf("reading peer table: %w", err)
	}
	if len(table.Addrs) != t.size {
		conn0.Close()
		return fmt.Errorf("peer table has %d entries, want %d", len(table.Addrs), t.size)
	}
	t.adopt(0, conn0)
	// Dial every lower rank; they accept from every higher rank.
	for j := 1; j < t.rank; j++ {
		cj, err := dialRetry(table.Addrs[j], deadline)
		if err != nil {
			return fmt.Errorf("dialing rank %d at %s: %w", j, table.Addrs[j], err)
		}
		_ = cj.SetDeadline(deadline)
		if err := writeCtl(cj, tcpHello{Rank: t.rank}); err != nil {
			cj.Close()
			return fmt.Errorf("sending hello to rank %d: %w", j, err)
		}
		t.adopt(j, cj)
	}
	for n := t.rank + 1; n < t.size; n++ {
		if tl, ok := mesh.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
		conn, err := mesh.Accept()
		if err != nil {
			return fmt.Errorf("waiting for %d more higher ranks: %w", t.size-n, err)
		}
		_ = conn.SetDeadline(deadline)
		var h tcpHello
		if err := readCtl(conn, &h); err != nil {
			conn.Close()
			return fmt.Errorf("reading mesh hello: %w", err)
		}
		if h.Rank <= t.rank || h.Rank >= t.size || t.peers[h.Rank] != nil {
			conn.Close()
			return fmt.Errorf("bad or duplicate mesh hello from rank %d", h.Rank)
		}
		t.adopt(h.Rank, conn)
	}
	return nil
}

// dialRetry dials addr until it succeeds or the deadline passes.
// Retrying absorbs start-order races — a rank may come up and dial
// before its target's listener exists.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var lastErr error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("timed out dialing %s", addr)
			}
			return nil, lastErr
		}
		step := remain
		if step > 500*time.Millisecond {
			step = 500 * time.Millisecond
		}
		conn, err := net.DialTimeout("tcp", addr, step)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
}

// listenRetry binds addr, retrying while a previous process's socket
// lingers in TIME_WAIT or a launcher-picked port is briefly occupied.
func listenRetry(addr string, deadline time.Time) (net.Listener, error) {
	var lastErr error
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		if time.Until(deadline) <= 0 {
			return nil, lastErr
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Wire format of one SendBatch:
//
//	u32 bodyLen | body
//	body = u16 nframes | nframes × frame
//	frame = u8 kind | u32 tag | u32 count | payload
//
// kindData/kindColl payloads are count little-endian float64s;
// kindObj payloads are count gob bytes (an objEnvelope). All integers
// little-endian. One batch is one buffered write, so every coalesced
// message behind the first costs no extra syscall or packet.
const (
	batchLimit     = 1 << 30
	framesPerBatch = 1 << 16
)

// objEnvelope wraps a SendObj value so gob moves the dynamic type.
type objEnvelope struct {
	V any
}

// RegisterObjType registers a concrete type for SendObj transmission
// over the TCP transport (gob.Register under the hood). Common basic
// types are pre-registered; call this for application structs. The
// local transport needs no registration — it passes values in memory.
func RegisterObjType(v any) { gob.Register(v) }

func init() {
	// Types SendObj callers in this repo and its examples use.
	for _, v := range []any{int(0), int64(0), float64(0), "", false,
		[]float64(nil), []int(nil), []string(nil), []any(nil),
		map[string]float64(nil), map[string]any(nil)} {
		gob.Register(v)
	}
}

func encodeBatch(frames []frame) ([]byte, error) {
	if len(frames) == 0 || len(frames) >= framesPerBatch {
		return nil, fmt.Errorf("batch of %d frames outside wire limits", len(frames))
	}
	buf := make([]byte, 6, 6+frames[0].wireBytes()) // u32 len + u16 nframes
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(frames)))
	var hdr [9]byte
	for i := range frames {
		f := &frames[i]
		hdr[0] = byte(f.kind)
		binary.LittleEndian.PutUint32(hdr[1:5], uint32(f.tag))
		switch f.kind {
		case kindData, kindColl:
			binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(f.data)))
			buf = append(buf, hdr[:]...)
			for _, v := range f.data {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
				buf = append(buf, b[:]...)
			}
		case kindObj:
			var ob bytes.Buffer
			if err := gob.NewEncoder(&ob).Encode(objEnvelope{V: f.obj}); err != nil {
				return nil, fmt.Errorf("encoding object (tag %d): %w — see mpi.RegisterObjType", f.tag, err)
			}
			binary.LittleEndian.PutUint32(hdr[5:9], uint32(ob.Len()))
			buf = append(buf, hdr[:]...)
			buf = append(buf, ob.Bytes()...)
		default:
			return nil, fmt.Errorf("unknown frame kind %d", f.kind)
		}
	}
	if len(buf)-4 > batchLimit {
		return nil, fmt.Errorf("batch of %d bytes exceeds wire limit", len(buf)-4)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-4))
	return buf, nil
}

func decodeBatch(br *bufio.Reader) ([]frame, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[0:4])
	if bodyLen < 2 || bodyLen > batchLimit {
		return nil, fmt.Errorf("corrupt batch length %d", bodyLen)
	}
	// hdr[4:6] is the body's leading u16 nframes; the rest follows.
	body := make([]byte, bodyLen-2)
	nframes := int(binary.LittleEndian.Uint16(hdr[4:6]))
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	frames := make([]frame, 0, nframes)
	off := 0
	for i := 0; i < nframes; i++ {
		if off+9 > len(body) {
			return nil, fmt.Errorf("corrupt batch: truncated frame header")
		}
		kind := frameKind(body[off])
		tag := int32(binary.LittleEndian.Uint32(body[off+1 : off+5]))
		count := int(binary.LittleEndian.Uint32(body[off+5 : off+9]))
		off += 9
		switch kind {
		case kindData, kindColl:
			if off+8*count > len(body) {
				return nil, fmt.Errorf("corrupt batch: truncated vector payload")
			}
			data := make([]float64, count)
			for j := 0; j < count; j++ {
				data[j] = math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
				off += 8
			}
			frames = append(frames, frame{kind: kind, tag: tag, data: data})
		case kindObj:
			if off+count > len(body) {
				return nil, fmt.Errorf("corrupt batch: truncated object payload")
			}
			var env objEnvelope
			if err := gob.NewDecoder(bytes.NewReader(body[off : off+count])).Decode(&env); err != nil {
				return nil, fmt.Errorf("decoding object (tag %d): %w — see mpi.RegisterObjType", tag, err)
			}
			off += count
			frames = append(frames, frame{kind: kind, tag: tag, obj: env.V})
		default:
			return nil, fmt.Errorf("corrupt batch: unknown frame kind %d", kind)
		}
	}
	if off != len(body) {
		return nil, fmt.Errorf("corrupt batch: %d trailing bytes", len(body)-off)
	}
	return frames, nil
}

func (t *tcpTransport) SendBatch(dst int, frames []frame) error {
	p := t.peers[dst]
	if p == nil {
		return fmt.Errorf("no connection to rank %d", dst)
	}
	buf, err := encodeBatch(frames)
	if err != nil {
		return err
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if _, err := p.bw.Write(buf); err != nil {
		return err
	}
	return p.bw.Flush()
}

func (t *tcpTransport) Recv(src int) (frame, error) {
	p := t.peers[src]
	if p == nil {
		return frame{}, fmt.Errorf("no connection to rank %d", src)
	}
	if len(p.rbuf) == 0 {
		batch, err := decodeBatch(p.br)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("rank %d: connection closed: %w", src, errRankGone)
			}
			return frame{}, err
		}
		p.rbuf = batch
	}
	f := p.rbuf[0]
	p.rbuf = p.rbuf[1:]
	return f, nil
}

func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		for _, p := range t.peers {
			if p != nil {
				_ = p.conn.Close()
			}
		}
	})
	return nil
}
