package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// The local transport: ranks run as goroutines inside one process and
// exchange frame batches over channels, with a configurable network
// model charging per-batch latency plus bandwidth-proportional
// transfer time — distinct intra-node and inter-node parameters let
// multi-node topologies be simulated on one machine (the original
// Fig. 8 setup). It implements the same Transport interface as the
// TCP transport, so everything above it — matching, batching,
// collectives, metrics — is shared code.

// NetworkModel charges communication costs. The zero value is a
// free, instantaneous network (unit tests); Fig. 8 runs use a model
// calibrated to a commodity cluster interconnect. Costs are charged
// once per coalesced batch, so message coalescing pays off under the
// simulated network exactly as it does on real sockets.
type NetworkModel struct {
	// RanksPerNode groups consecutive ranks onto simulated nodes;
	// 0 means every rank shares one node.
	RanksPerNode int
	// IntraLatency/InterLatency is the per-message setup time within
	// a node / across nodes.
	IntraLatency time.Duration
	InterLatency time.Duration
	// IntraBandwidth/InterBandwidth in bytes per second (0 = infinite).
	IntraBandwidth float64
	InterBandwidth float64
}

// cost returns the simulated transfer time for nbytes between ranks.
func (m *NetworkModel) cost(src, dst, nbytes int) time.Duration {
	if m == nil {
		return 0
	}
	sameNode := true
	if m.RanksPerNode > 0 {
		sameNode = src/m.RanksPerNode == dst/m.RanksPerNode
	}
	var lat time.Duration
	var bw float64
	if sameNode {
		lat, bw = m.IntraLatency, m.IntraBandwidth
	} else {
		lat, bw = m.InterLatency, m.InterBandwidth
	}
	d := lat
	if bw > 0 {
		d += time.Duration(float64(nbytes) / bw * float64(time.Second))
	}
	return d
}

// localWorld is the shared fabric of one in-process run.
type localWorld struct {
	size  int
	model *NetworkModel
	// box[dst][src] is an ordered mailbox of frame batches.
	box [][]chan []frame
	// dead[r] closes when rank r's body returned: senders to r stop
	// blocking and receivers from r drain what is left, then error
	// instead of hanging on a rank that will never speak again.
	dead []chan struct{}
}

func newLocalWorld(size int, model *NetworkModel) *localWorld {
	w := &localWorld{size: size, model: model}
	w.box = make([][]chan []frame, size)
	w.dead = make([]chan struct{}, size)
	for dst := 0; dst < size; dst++ {
		w.box[dst] = make([]chan []frame, size)
		for src := 0; src < size; src++ {
			w.box[dst][src] = make(chan []frame, 256)
		}
		w.dead[dst] = make(chan struct{})
	}
	return w
}

// markDead declares rank r finished. Idempotence is the caller's
// problem; Run calls it exactly once per rank.
func (w *localWorld) markDead(r int) { close(w.dead[r]) }

var errRankGone = errors.New("rank has exited")

// localTransport is one rank's endpoint on a localWorld.
type localTransport struct {
	w    *localWorld
	rank int
	// rbuf[src] holds the unconsumed tail of the last batch taken
	// from src's mailbox. Only the elected puller touches it (the
	// Transport concurrency contract).
	rbuf [][]frame
}

func (t *localTransport) Rank() int { return t.rank }
func (t *localTransport) Size() int { return t.w.size }

func (t *localTransport) SendBatch(dst int, frames []frame) error {
	nbytes := 0
	for i := range frames {
		nbytes += frames[i].wireBytes()
	}
	// The simulated network charges the sender once per batch: one
	// latency plus the bandwidth term over the whole payload.
	if d := t.w.model.cost(t.rank, dst, nbytes); d > 0 {
		time.Sleep(d)
	}
	select {
	case t.w.box[dst][t.rank] <- frames:
		return nil
	case <-t.w.dead[dst]:
		return fmt.Errorf("rank %d: %w", dst, errRankGone)
	}
}

func (t *localTransport) Recv(src int) (frame, error) {
	if buf := t.rbuf[src]; len(buf) > 0 {
		f := buf[0]
		t.rbuf[src] = buf[1:]
		return f, nil
	}
	box := t.w.box[t.rank][src]
	var batch []frame
	select {
	case batch = <-box:
	default:
		select {
		case batch = <-box:
		case <-t.w.dead[src]:
			// The sender is gone; drain anything it left behind
			// before reporting it.
			select {
			case batch = <-box:
			default:
				return frame{}, fmt.Errorf("rank %d: %w", src, errRankGone)
			}
		case <-t.w.dead[t.rank]:
			return frame{}, fmt.Errorf("rank %d: transport closed", t.rank)
		}
	}
	f := batch[0]
	t.rbuf[src] = batch[1:]
	return f, nil
}

// Close marks this rank dead, which unblocks peers waiting on it.
func (t *localTransport) Close() error {
	t.w.markDead(t.rank)
	return nil
}

// Run executes body on size in-process ranks over the local transport
// and waits for all of them. The model may be nil for an ideal
// network. Errors from ranks are joined; a panicking rank aborts its
// world with an error, and peers blocked on a finished rank receive
// errors instead of hanging.
func Run(size int, model *NetworkModel, body func(c *Comm) error) error {
	return runLocal(size, model, commOptions{}, body)
}

func runLocal(size int, model *NetworkModel, opts commOptions, body func(c *Comm) error) error {
	if size < 1 {
		return errors.New("mpi: world size must be at least 1")
	}
	w := newLocalWorld(size, model)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr := &localTransport{w: w, rank: rank, rbuf: make([][]frame, size)}
			c := newComm(tr, opts)
			defer c.Close()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(c)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
