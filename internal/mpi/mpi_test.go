package mpi

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestRunSpawnsAllRanks(t *testing.T) {
	var mask atomic.Int64
	err := Run(8, nil, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("size = %d", c.Size())
		}
		mask.Add(1 << c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask.Load() != 255 {
		t.Fatalf("rank mask = %b", mask.Load())
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1.5, 2.5})
		}
		data, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(data) != 2 || data[0] != 1.5 || data[1] != 2.5 {
			t.Errorf("data = %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // mutation after send must not reach the receiver
			return nil
		}
		data, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			t.Errorf("received mutated buffer: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvObj(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendObj(1, 3, map[string]int{"k": 42})
		}
		v, err := c.RecvObj(0, 3)
		if err != nil {
			return err
		}
		m, ok := v.(map[string]int)
		if !ok || m["k"] != 42 {
			t.Errorf("obj = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchErrors(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []float64{0})
		}
		_, err := c.Recv(0, 2)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "expected tag") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidRanks(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				t.Error("send to invalid rank accepted")
			}
			if _, err := c.Recv(-1, 0); err == nil {
				t.Error("recv from invalid rank accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(0, nil, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("world size 0 accepted")
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	const n = 6
	var phase1 atomic.Int64
	err := Run(n, nil, func(c *Comm) error {
		phase1.Add(1)
		c.Barrier()
		if got := phase1.Load(); got != n {
			t.Errorf("rank %d passed barrier with %d arrivals", c.Rank(), got)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	err := Run(n, nil, func(c *Comm) error {
		local := []float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 1)}
		all := c.Allgather(local)
		if len(all) != 2*n {
			t.Errorf("len = %d", len(all))
			return nil
		}
		for r := 0; r < n; r++ {
			if all[2*r] != float64(r*10) || all[2*r+1] != float64(r*10+1) {
				t.Errorf("rank %d sees %v", c.Rank(), all)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64
	}{
		{OpSum, 0 + 1 + 2 + 3},
		{OpMax, 3},
		{OpMin, 0},
		{OpProd, 0},
	}
	for _, tc := range cases {
		err := Run(4, nil, func(c *Comm) error {
			got := c.Allreduce(float64(c.Rank()), tc.op)
			if got != tc.want {
				t.Errorf("op %v: rank %d got %v, want %v", tc.op, c.Rank(), got, tc.want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMatchesLocalReduceProperty(t *testing.T) {
	f := func(vals [5]float64) bool {
		want := 0.0
		for _, v := range vals {
			want += v
		}
		ok := true
		err := Run(5, nil, func(c *Comm) error {
			got := c.Allreduce(vals[c.Rank()], OpSum)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, nil, func(c *Comm) error {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{7, 8, 9}
		}
		got := c.Bcast(data, 2)
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Collective instances must match by call order across ranks.
	err := Run(3, nil, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			got := c.Allreduce(float64(i), OpSum)
			if got != float64(3*i) {
				t.Errorf("iteration %d: got %v", i, got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorsJoined(t *testing.T) {
	boom := errors.New("rank failure")
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRankPanicContained(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("rank 0 dies")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkModelCharges(t *testing.T) {
	model := &NetworkModel{
		RanksPerNode: 2,
		IntraLatency: 0,
		InterLatency: 20 * time.Millisecond,
	}
	// Ranks 0,1 on node 0; ranks 2,3 on node 1.
	if model.cost(0, 1, 8) != 0 {
		t.Fatal("intra-node message should be free in this model")
	}
	if model.cost(0, 2, 8) != 20*time.Millisecond {
		t.Fatal("inter-node latency not charged")
	}
	// Bandwidth term.
	model.InterBandwidth = 1e6 // 1 MB/s
	if got := model.cost(0, 2, 1e6); got < 1020*time.Millisecond {
		t.Fatalf("bandwidth cost = %v", got)
	}
	// End to end: an inter-node send takes measurably longer.
	start := time.Now()
	err := Run(4, &NetworkModel{RanksPerNode: 2, InterLatency: 30 * time.Millisecond},
		func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(2, 0, []float64{1})
			}
			if c.Rank() == 2 {
				_, err := c.Recv(0, 0)
				return err
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("network model did not delay the send")
	}
}
