package mpi

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
)

func TestRunSpawnsAllRanks(t *testing.T) {
	var mask atomic.Int64
	err := Run(8, nil, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("size = %d", c.Size())
		}
		mask.Add(1 << c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask.Load() != 255 {
		t.Fatalf("rank mask = %b", mask.Load())
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1.5, 2.5})
		}
		data, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(data) != 2 || data[0] != 1.5 || data[1] != 2.5 {
			t.Errorf("data = %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // mutation after send must not reach the receiver
			return nil
		}
		data, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			t.Errorf("received mutated buffer: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvObj(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendObj(1, 3, map[string]int{"k": 42})
		}
		v, err := c.RecvObj(0, 3)
		if err != nil {
			return err
		}
		m, ok := v.(map[string]int)
		if !ok || m["k"] != 42 {
			t.Errorf("obj = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagMismatchRequeues pins MPI-style per-source matching: a
// message whose tag does not match the posted receive stays queued —
// it is neither discarded nor an error — until a receive posts for
// its tag, so receives may complete in any tag order. (The previous
// fabric treated a mismatched tag as a fatal protocol error, which no
// real MPI does.)
func TestTagMismatchRequeues(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{111}); err != nil {
				return err
			}
			if err := c.SendObj(1, 1, "obj"); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{222})
		}
		// Receive in the opposite order of arrival: tag 2 first.
		d2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		// Objects and vectors match in separate kind namespaces even
		// under the same tag.
		o, err := c.RecvObj(0, 1)
		if err != nil {
			return err
		}
		if d2[0] != 222 || d1[0] != 111 || o != "obj" {
			t.Errorf("got tag2=%v tag1=%v obj=%v", d2, d1, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				t.Error("send to invalid rank accepted")
			}
			if _, err := c.Recv(-1, 0); err == nil {
				t.Error("recv from invalid rank accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(0, nil, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("world size 0 accepted")
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	const n = 6
	var phase1 atomic.Int64
	err := Run(n, nil, func(c *Comm) error {
		phase1.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := phase1.Load(); got != n {
			t.Errorf("rank %d passed barrier with %d arrivals", c.Rank(), got)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	err := Run(n, nil, func(c *Comm) error {
		local := []float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 1)}
		all, err := c.Allgather(local)
		if err != nil {
			return err
		}
		if len(all) != 2*n {
			t.Errorf("len = %d", len(all))
			return nil
		}
		for r := 0; r < n; r++ {
			if all[2*r] != float64(r*10) || all[2*r+1] != float64(r*10+1) {
				t.Errorf("rank %d sees %v", c.Rank(), all)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllgatherVariableLengths pins MPI_Allgatherv semantics: per-rank
// vectors of different lengths concatenate in rank order.
func TestAllgatherVariableLengths(t *testing.T) {
	err := Run(4, nil, func(c *Comm) error {
		local := make([]float64, c.Rank()+1)
		for i := range local {
			local[i] = float64(100*c.Rank() + i)
		}
		all, err := c.Allgather(local)
		if err != nil {
			return err
		}
		var want []float64
		for r := 0; r < 4; r++ {
			for i := 0; i <= r; i++ {
				want = append(want, float64(100*r+i))
			}
		}
		if len(all) != len(want) {
			t.Errorf("rank %d: len = %d, want %d", c.Rank(), len(all), len(want))
			return nil
		}
		for i := range want {
			if all[i] != want[i] {
				t.Errorf("rank %d sees %v", c.Rank(), all)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64
	}{
		{OpSum, 0 + 1 + 2 + 3},
		{OpMax, 3},
		{OpMin, 0},
		{OpProd, 0},
	}
	for _, tc := range cases {
		err := Run(4, nil, func(c *Comm) error {
			got, err := c.Allreduce(float64(c.Rank()), tc.op)
			if err != nil {
				return err
			}
			if got != tc.want {
				t.Errorf("op %v: rank %d got %v, want %v", tc.op, c.Rank(), got, tc.want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMatchesLocalReduceProperty(t *testing.T) {
	// Values are bounded so the flat reference sum and the tree
	// reduction stay within rounding tolerance of each other; exact
	// reduction order is a deterministic function of (rank, size) but
	// not the same as left-to-right.
	f := func(raw [5]float64) bool {
		var vals [5]float64
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1000)
		}
		want := 0.0
		for _, v := range vals {
			want += v
		}
		ok := true
		err := Run(5, nil, func(c *Comm) error {
			got, err := c.Allreduce(vals[c.Rank()], OpSum)
			if err != nil {
				return err
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceBitIdenticalAcrossRanks pins that every rank sees the
// exact same bits from Allreduce — the broadcast of one reduced value
// rather than per-rank recomputation in different orders.
func TestAllreduceBitIdenticalAcrossRanks(t *testing.T) {
	const n = 7
	var got [n]uint64
	err := Run(n, nil, func(c *Comm) error {
		v := math.Sqrt(float64(c.Rank()) + 0.1)
		r, err := c.Allreduce(v, OpSum)
		if err != nil {
			return err
		}
		got[c.Rank()] = math.Float64bits(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if got[r] != got[0] {
			t.Fatalf("rank %d result bits %x differ from rank 0's %x", r, got[r], got[0])
		}
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, nil, func(c *Comm) error {
		var data []float64
		if c.Rank() == 2 {
			data = []float64{7, 8, 9}
		}
		got, err := c.Bcast(data, 2)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Collective instances must match by call order across ranks.
	err := Run(3, nil, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			got, err := c.Allreduce(float64(i), OpSum)
			if err != nil {
				return err
			}
			if got != float64(3*i) {
				t.Errorf("iteration %d: got %v", i, got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectivesRetireInstanceState is the regression test for the
// collective-instance leak: the old fabric kept every collective's
// bookkeeping in a shared per-world map that was never cleaned up, so
// long-running exchanges grew without bound. The rebuilt collectives
// keep no shared instance state at all — after any quiesced sequence
// of collectives, a communicator holds zero buffered frames.
func TestCollectivesRetireInstanceState(t *testing.T) {
	err := Run(4, nil, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			if _, err := c.Allreduce(float64(i), OpSum); err != nil {
				return err
			}
			if _, err := c.Allgather([]float64{float64(c.Rank())}); err != nil {
				return err
			}
			if _, err := c.Bcast([]float64{1, 2}, i%4); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		// Ranks are mutually quiesced after the final barrier... except
		// for collective frames a fast rank already pushed for phases a
		// slow rank has not entered. One last barrier after which no
		// rank sends anything settles the world.
		if err := c.Barrier(); err != nil {
			return err
		}
		if n := c.pendingFrames(); n != 0 {
			t.Errorf("rank %d retains %d frames after quiesce", c.Rank(), n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		peer := 1 - c.Rank()
		// Post receives before sends: both ranks make progress only if
		// Irecv really is nonblocking.
		r1 := c.Irecv(peer, 1)
		r2 := c.Irecv(peer, 2)
		// Send in reverse tag order to exercise requeue matching too.
		if _, err := c.Isend(peer, 2, []float64{20 + float64(c.Rank())}); err != nil {
			return err
		}
		req, err := c.Isend(peer, 1, []float64{10 + float64(c.Rank())})
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		d1, err := r1.Wait()
		if err != nil {
			return err
		}
		d2, err := r2.Wait()
		if err != nil {
			return err
		}
		if d1[0] != 10+float64(peer) || d2[0] != 20+float64(peer) {
			t.Errorf("rank %d got %v %v", c.Rank(), d1, d2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCoalescingCountsRiders pins the batching contract: messages
// Isent between flushes ride one wire batch, counted by the
// omp4go_mpi_coalesced_total counter as riders (batch size - 1).
func TestCoalescingCountsRiders(t *testing.T) {
	reg := metrics.New()
	err := runLocal(2, nil, commOptions{metrics: reg, flushWindow: time.Hour}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if _, err := c.Isend(1, i, []float64{float64(i)}); err != nil {
					return err
				}
			}
			return c.Flush(1)
		}
		for i := 0; i < 5; i++ {
			d, err := c.Recv(0, i)
			if err != nil {
				return err
			}
			if d[0] != float64(i) {
				t.Errorf("tag %d: got %v", i, d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[metrics.MPIMsgs]; got != 5 {
		t.Errorf("msgs = %d, want 5", got)
	}
	if got := snap.Counters[metrics.MPICoalesced]; got != 4 {
		t.Errorf("coalesced = %d, want 4 (5 messages in one flush)", got)
	}
	if snap.Counters[metrics.MPIBytes] == 0 {
		t.Error("bytes counter did not move")
	}
}

// TestCoalesceByteThreshold pins that a pending buffer crossing the
// byte threshold flushes itself without waiting for an explicit flush
// or the flush window.
func TestCoalesceByteThreshold(t *testing.T) {
	err := runLocal(2, nil, commOptions{flushWindow: time.Hour, coalesceBytes: 256}, func(c *Comm) error {
		if c.Rank() == 0 {
			// One 64-float message is 521 accounted bytes — past the
			// 256-byte threshold, so it must hit the wire on its own.
			_, err := c.Isend(1, 0, make([]float64, 64))
			return err
		}
		_, err := c.Recv(0, 0) // hangs (then fails the world) if the threshold flush is broken
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlushWindowDelivers pins the background flusher: an Isend with
// no explicit flush still reaches the peer within a flush window.
func TestFlushWindowDelivers(t *testing.T) {
	err := runLocal(2, nil, commOptions{flushWindow: 2 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Isend(1, 0, []float64{42}); err != nil {
				return err
			}
			// No Flush, no blocking op: only the flusher can deliver.
			time.Sleep(20 * time.Millisecond)
			return nil
		}
		d, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if d[0] != 42 {
			t.Errorf("got %v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendRecv(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if err := c.Send(c.Rank(), 5, []float64{9}); err != nil {
			return err
		}
		d, err := c.Recv(c.Rank(), 5)
		if err != nil {
			return err
		}
		if d[0] != 9 {
			t.Errorf("self-recv got %v", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorsJoined(t *testing.T) {
	boom := errors.New("rank failure")
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRankPanicContained(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("rank 0 dies")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

// TestRecvFromExitedRankErrors pins the fault path on the local
// transport: a receive posted against a rank that already returned
// gets an error, not a hang.
func TestRecvFromExitedRankErrors(t *testing.T) {
	err := Run(2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return nil // exits immediately without sending
		}
		_, err := c.Recv(0, 0)
		if err == nil {
			t.Error("recv from exited rank succeeded")
		} else if !errors.Is(err, errRankGone) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveAfterRankDeathErrors pins that collectives degrade to
// errors — not deadlocks — when a participant is gone.
func TestCollectiveAfterRankDeathErrors(t *testing.T) {
	err := Run(3, nil, func(c *Comm) error {
		if c.Rank() == 2 {
			return errors.New("rank 2 leaves early")
		}
		if _, err := c.Allreduce(1, OpSum); err == nil {
			t.Errorf("rank %d: collective with a dead rank succeeded", c.Rank())
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 leaves early") {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkModelCharges(t *testing.T) {
	model := &NetworkModel{
		RanksPerNode: 2,
		IntraLatency: 0,
		InterLatency: 20 * time.Millisecond,
	}
	// Ranks 0,1 on node 0; ranks 2,3 on node 1.
	if model.cost(0, 1, 8) != 0 {
		t.Fatal("intra-node message should be free in this model")
	}
	if model.cost(0, 2, 8) != 20*time.Millisecond {
		t.Fatal("inter-node latency not charged")
	}
	// Bandwidth term.
	model.InterBandwidth = 1e6 // 1 MB/s
	if got := model.cost(0, 2, 1e6); got < 1020*time.Millisecond {
		t.Fatalf("bandwidth cost = %v", got)
	}
	// End to end: an inter-node send takes measurably longer.
	start := time.Now()
	err := Run(4, &NetworkModel{RanksPerNode: 2, InterLatency: 30 * time.Millisecond},
		func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(2, 0, []float64{1})
			}
			if c.Rank() == 2 {
				_, err := c.Recv(0, 0)
				return err
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("network model did not delay the send")
	}
}
