package mpi

// Collectives as binomial-tree algorithms over point-to-point frames.
// The same code runs on every transport, so collective results —
// including floating-point reduction order — are bit-identical
// whether ranks are goroutines in one process (local transport) or
// separate OS processes (TCP transport).
//
// Matching: every rank calls collectives in the same order (the MPI
// requirement), so a per-communicator sequence number identifies the
// same collective phase on all ranks. The sequence is carried as the
// tag of kindColl frames, which live in a separate matching namespace
// from user Send/Recv traffic; a rank that runs ahead into the next
// collective simply queues its frames at slower peers until they
// catch up. No shared instance state exists — the old in-process
// fabric kept a per-world map of collective instances that was never
// cleaned up (the collSeq leak); here the last consumed frame of a
// collective is the last trace of it.

// nextSeq returns the next collective sequence number. Signed 32-bit
// wraparound is harmless: ranks agree on the sequence exactly.
func (c *Comm) nextSeq() int32 { return int32(c.collSeq.Add(1)) }

// collSend ships one collective payload to dst, flushing immediately
// (collective latency sits on the critical path of every rank).
func (c *Comm) collSend(dst int, seq int32, data []float64) error {
	cp := append([]float64(nil), data...)
	return c.enqueue(dst, frame{kind: kindColl, tag: seq, data: cp}, true)
}

// collRecv blocks for the collective payload with the given sequence
// from src.
func (c *Comm) collRecv(src int, seq int32) ([]float64, error) {
	f, err := c.recvMatch(src, func(f *frame) bool { return f.kind == kindColl && f.tag == seq })
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// gatherTree funnels every rank's blob to rank 0 up a binomial tree,
// concatenating in rank order: at step k a rank whose k-th bit is set
// sends its accumulated blob to the partner 2^k below and leaves;
// otherwise it absorbs the partner 2^k above, whose subtree holds the
// contiguous rank range just after its own. Rank 0 returns the full
// concatenation; every other rank returns nil.
func (c *Comm) gatherTree(seq int32, own []float64) ([]float64, error) {
	blob := append([]float64(nil), own...)
	for k := 0; 1<<k < c.size; k++ {
		bit := 1 << k
		if c.rank&bit != 0 {
			return nil, c.collSend(c.rank-bit, seq, blob)
		}
		if c.rank+bit < c.size {
			part, err := c.collRecv(c.rank+bit, seq)
			if err != nil {
				return nil, err
			}
			blob = append(blob, part...)
		}
	}
	return blob, nil
}

// reduceTree combines one scalar per rank into rank 0 up the same
// binomial tree. The combine order is a deterministic function of
// (rank, size) only, so floating-point results are reproducible
// across runs and transports.
func (c *Comm) reduceTree(seq int32, v float64, op Op) (float64, error) {
	acc := v
	for k := 0; 1<<k < c.size; k++ {
		bit := 1 << k
		if c.rank&bit != 0 {
			return 0, c.collSend(c.rank-bit, seq, []float64{acc})
		}
		if c.rank+bit < c.size {
			part, err := c.collRecv(c.rank+bit, seq)
			if err != nil {
				return 0, err
			}
			acc = op.apply(acc, part[0])
		}
	}
	return acc, nil
}

// bcastTree pushes root's vector down a binomial tree: each rank
// receives from its parent, then forwards to its subtree children,
// largest subtree first. Returns the received (or root's own) vector.
func (c *Comm) bcastTree(seq int32, data []float64, root int) ([]float64, error) {
	v := (c.rank - root + c.size) % c.size // rank relative to root
	lowbit := v & -v
	if v != 0 {
		parent := (v - lowbit + root) % c.size
		d, err := c.collRecv(parent, seq)
		if err != nil {
			return nil, err
		}
		data = d
	} else {
		lowbit = 1 << 30 // root forwards to every power-of-two child
	}
	top := 1
	for top < c.size {
		top <<= 1
	}
	for m := top; m >= 1; m >>= 1 {
		if m < lowbit && v+m < c.size {
			child := (v + m + root) % c.size
			if err := c.collSend(child, seq, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Barrier synchronizes all ranks (MPI_Barrier): an empty gather to
// rank 0 followed by an empty broadcast releasing everyone.
func (c *Comm) Barrier() error {
	if c.size == 1 {
		return nil
	}
	up, down := c.nextSeq(), c.nextSeq()
	if _, err := c.gatherTree(up, nil); err != nil {
		return err
	}
	_, err := c.bcastTree(down, nil, 0)
	return err
}

// Bcast distributes root's vector to every rank (MPI_Bcast) and
// returns a fresh copy on all ranks, root included.
func (c *Comm) Bcast(data []float64, root int) ([]float64, error) {
	if err := c.checkRank("bcast from", root); err != nil {
		return nil, err
	}
	if c.size == 1 {
		return append([]float64(nil), data...), nil
	}
	out, err := c.bcastTree(c.nextSeq(), data, root)
	if err != nil {
		return nil, err
	}
	if c.rank == root {
		out = append([]float64(nil), data...)
	}
	return out, nil
}

// Allreduce combines one scalar from every rank with op and returns
// the result everywhere (MPI_Allreduce): a binomial reduce to rank 0
// followed by a binomial broadcast of the result.
func (c *Comm) Allreduce(v float64, op Op) (float64, error) {
	if c.size == 1 {
		return v, nil
	}
	up, down := c.nextSeq(), c.nextSeq()
	acc, err := c.reduceTree(up, v, op)
	if err != nil {
		return 0, err
	}
	res, err := c.bcastTree(down, []float64{acc}, 0)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// Allgather concatenates every rank's vector in rank order and
// returns the result on all ranks (MPI_Allgatherv — per-rank lengths
// may differ): a binomial gather to rank 0 followed by a binomial
// broadcast of the concatenation.
func (c *Comm) Allgather(local []float64) ([]float64, error) {
	if c.size == 1 {
		return append([]float64(nil), local...), nil
	}
	up, down := c.nextSeq(), c.nextSeq()
	blob, err := c.gatherTree(up, local)
	if err != nil {
		return nil, err
	}
	return c.bcastTree(down, blob, 0)
}
