package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/rt"
)

// TestMain doubles as the rank entry point for tests that need real
// child processes (the go-test helper-process pattern): a child is
// this same test binary re-executed with OMP4GO_MPI_TEST_HELPER set.
func TestMain(m *testing.M) {
	switch os.Getenv("OMP4GO_MPI_TEST_HELPER") {
	case "":
		os.Exit(m.Run())
	case "connect-exit":
		// Join the rendezvous, then die immediately — the peer under
		// test must observe an error, not a hang.
		cfg, ok, err := EnvTCPConfig(os.Getenv)
		if !ok || err != nil {
			fmt.Fprintln(os.Stderr, "helper: bad env config:", err)
			os.Exit(2)
		}
		c, err := ConnectTCP(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper: connect:", err)
			os.Exit(3)
		}
		_ = c.Close()
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "unknown helper mode")
		os.Exit(2)
	}
}

// freeAddr reserves a loopback port and releases it for the test to
// rendezvous on.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runTCPWorld runs body on size ranks connected over real loopback
// sockets, each rank a goroutine in this process, and joins their
// errors. A deadline converts deadlocks into failures.
func runTCPWorld(t *testing.T, size int, mk func(rank int) TCPConfig, body func(c *Comm) error) error {
	t.Helper()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := ConnectTCP(mk(rank))
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = body(c)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("TCP world deadlocked")
	}
	return errors.Join(errs...)
}

func basicTCPConfig(addr string, size int) func(rank int) TCPConfig {
	return func(rank int) TCPConfig {
		return TCPConfig{Rank: rank, Size: size, Addr: addr, DialTimeout: 15 * time.Second}
	}
}

func TestTCPSendRecvAndRequeue(t *testing.T) {
	addr := freeAddr(t)
	err := runTCPWorld(t, 2, basicTCPConfig(addr, 2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{1.5, -2.5}); err != nil {
				return err
			}
			if err := c.SendObj(1, 9, map[string]float64{"pi": 3.14}); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{42})
		}
		// Receive tag 2 first: the tag-1 message must requeue, exactly
		// as on the local transport.
		d2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		d1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		o, err := c.RecvObj(0, 9)
		if err != nil {
			return err
		}
		m, ok := o.(map[string]float64)
		if d2[0] != 42 || len(d1) != 2 || d1[0] != 1.5 || d1[1] != -2.5 || !ok || m["pi"] != 3.14 {
			t.Errorf("got tag2=%v tag1=%v obj=%v", d2, d1, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectives(t *testing.T) {
	addr := freeAddr(t)
	const size = 4
	err := runTCPWorld(t, size, basicTCPConfig(addr, size), func(c *Comm) error {
		sum, err := c.Allreduce(float64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if sum != 1+2+3+4 {
			t.Errorf("rank %d: allreduce = %v", c.Rank(), sum)
		}
		all, err := c.Allgather([]float64{float64(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if len(all) != size || all[2] != 20 {
			t.Errorf("rank %d: allgather = %v", c.Rank(), all)
		}
		got, err := c.Bcast([]float64{7, 8}, 3)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[1] != 8 {
			t.Errorf("rank %d: bcast = %v", c.Rank(), got)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPBitIdenticalWithLocal pins the transports' defining shared
// property: the exact same bits come out of a collective exchange
// whether ranks are goroutines over channels or processes-worth of
// sockets, because both run the same tree algorithms.
func TestTCPBitIdenticalWithLocal(t *testing.T) {
	const size = 4
	type out struct {
		red  uint64
		gath []uint64
	}
	exchange := func(c *Comm) (out, error) {
		v := math.Sqrt(float64(c.Rank()) + 0.137)
		red, err := c.Allreduce(v, OpSum)
		if err != nil {
			return out{}, err
		}
		all, err := c.Allgather([]float64{v * red, v / (red + 1)})
		if err != nil {
			return out{}, err
		}
		o := out{red: math.Float64bits(red), gath: make([]uint64, len(all))}
		for i, x := range all {
			o.gath[i] = math.Float64bits(x)
		}
		return o, nil
	}
	var localOut, tcpOut [size]out
	if err := Run(size, nil, func(c *Comm) error {
		o, err := exchange(c)
		localOut[c.Rank()] = o
		return err
	}); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	if err := runTCPWorld(t, size, basicTCPConfig(addr, size), func(c *Comm) error {
		o, err := exchange(c)
		tcpOut[c.Rank()] = o
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < size; r++ {
		if localOut[r].red != tcpOut[r].red {
			t.Errorf("rank %d: allreduce bits differ: local %x tcp %x", r, localOut[r].red, tcpOut[r].red)
		}
		for i := range localOut[r].gath {
			if localOut[r].gath[i] != tcpOut[r].gath[i] {
				t.Errorf("rank %d: allgather[%d] bits differ", r, i)
			}
		}
	}
}

// TestTCPCoalescingOnWire pins that chunked Isends ride one wire
// batch over real sockets, counted by omp4go_mpi_coalesced_total.
func TestTCPCoalescingOnWire(t *testing.T) {
	addr := freeAddr(t)
	reg := metrics.New()
	mk := func(rank int) TCPConfig {
		cfg := basicTCPConfig(addr, 2)(rank)
		cfg.FlushWindow = time.Hour // only explicit flushes
		if rank == 0 {
			cfg.Metrics = reg
		}
		return cfg
	}
	err := runTCPWorld(t, 2, mk, func(c *Comm) error {
		if c.Rank() == 0 {
			for k := 0; k < 6; k++ {
				if _, err := c.Isend(1, k, []float64{float64(k)}); err != nil {
					return err
				}
			}
			if err := c.Flush(1); err != nil {
				return err
			}
			_, err := c.Recv(1, 100) // ack keeps rank 0 alive until delivery
			return err
		}
		for k := 0; k < 6; k++ {
			d, err := c.Recv(0, k)
			if err != nil {
				return err
			}
			if d[0] != float64(k) {
				t.Errorf("chunk %d: got %v", k, d)
			}
		}
		return c.Send(0, 100, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[metrics.MPICoalesced]; got != 5 {
		t.Errorf("coalesced = %d, want 5 riders for a 6-message flush", got)
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"omp4go_mpi_msgs_total", "omp4go_mpi_bytes_total",
		"omp4go_mpi_coalesced_total", "omp4go_mpi_send_wait_seconds", "omp4go_mpi_recv_wait_seconds"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("prometheus exposition missing %s", name)
		}
	}
}

// TestTCPDialFailureErrors pins the fault path: a rank whose peers
// never show up gets an error within the dial timeout, not a hang.
func TestTCPDialFailureErrors(t *testing.T) {
	addr := freeAddr(t) // nobody listens here
	start := time.Now()
	_, err := ConnectTCP(TCPConfig{Rank: 1, Size: 2, Addr: addr, DialTimeout: 700 * time.Millisecond})
	if err == nil {
		t.Fatal("connect to absent rank 0 succeeded")
	}
	if !strings.Contains(err.Error(), "rendezvous") {
		t.Errorf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("dial failure took %v", elapsed)
	}
	// Rank 0 waiting for ranks that never dial also times out.
	_, err = ConnectTCP(TCPConfig{Rank: 0, Size: 2, Addr: freeAddr(t), DialTimeout: 700 * time.Millisecond})
	if err == nil {
		t.Fatal("rendezvous with absent peers succeeded")
	}
}

// TestTCPPeerExitMidRunErrors spawns a real child process that joins
// the world and immediately exits; the surviving rank's receives and
// collectives must degrade to errors, not deadlocks.
func TestTCPPeerExitMidRunErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	addr := freeAddr(t)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"OMP4GO_MPI_TEST_HELPER=connect-exit",
		EnvMPIAddr+"="+addr,
		EnvMPIRank+"=1",
		EnvMPISize+"=2",
	)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()
	c, err := ConnectTCP(TCPConfig{Rank: 0, Size: 2, Addr: addr, DialTimeout: 15 * time.Second})
	if err != nil {
		t.Fatalf("connect: %v (child: %s)", err, childOut.String())
	}
	defer c.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Recv(1, 0)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("recv from exited peer succeeded")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("recv from exited peer hung")
	}
	if _, err := c.Allreduce(1, OpSum); err == nil {
		t.Fatal("collective with exited peer succeeded")
	}
}

func TestEnvTCPConfig(t *testing.T) {
	env := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}
	if _, ok, err := EnvTCPConfig(env(nil)); ok || err != nil {
		t.Fatalf("unset env: ok=%v err=%v", ok, err)
	}
	cfg, ok, err := EnvTCPConfig(env(map[string]string{
		EnvMPIAddr: "127.0.0.1:7311", EnvMPIRank: "2", EnvMPISize: "4", EnvMPICoalesce: "1024",
	}))
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if cfg.Rank != 2 || cfg.Size != 4 || cfg.Addr != "127.0.0.1:7311" || cfg.CoalesceBytes != 1024 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for name, m := range map[string]map[string]string{
		"missing rank":  {EnvMPIAddr: "a:1", EnvMPISize: "2"},
		"bad size":      {EnvMPIAddr: "a:1", EnvMPIRank: "0", EnvMPISize: "two"},
		"bad coalesce":  {EnvMPIAddr: "a:1", EnvMPIRank: "0", EnvMPISize: "2", EnvMPICoalesce: "-5"},
		"rank no digit": {EnvMPIAddr: "a:1", EnvMPIRank: "x", EnvMPISize: "2"},
	} {
		if _, _, err := EnvTCPConfig(env(m)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if _, err := ConnectTCP(TCPConfig{Rank: 5, Size: 2, Addr: "x"}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := ConnectTCP(TCPConfig{Rank: 0, Size: 0, Addr: "x"}); err == nil {
		t.Error("zero world accepted")
	}
}

// TestTCPSizeOneNeedsNoNetwork pins that a 1-rank TCP world works
// offline — collectives and self-sends with no sockets at all.
func TestTCPSizeOneNeedsNoNetwork(t *testing.T) {
	c, err := ConnectTCP(TCPConfig{Rank: 0, Size: 1, Addr: "255.255.255.255:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v, err := c.Allreduce(4.5, OpSum); err != nil || v != 4.5 {
		t.Fatalf("allreduce = %v, %v", v, err)
	}
	if err := c.Send(0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if d, err := c.Recv(0, 0); err != nil || d[0] != 1 {
		t.Fatalf("self recv = %v, %v", d, err)
	}
}

// TestMPIEnvVarsMirrorDisplayEnv keeps the OMP_DISPLAY_ENV=verbose
// mirror in internal/rt in sync with this package's parser, the same
// contract internal/serve pins for OMP4GO_SERVE_*.
func TestMPIEnvVarsMirrorDisplayEnv(t *testing.T) {
	displayed := rt.DisplayedMPIEnvVars()
	parsed := EnvVarNames()
	if len(displayed) != len(parsed) {
		t.Fatalf("display lists %d vars, parser %d", len(displayed), len(parsed))
	}
	for i := range parsed {
		if displayed[i] != parsed[i] {
			t.Errorf("var %d: display %q, parser %q", i, displayed[i], parsed[i])
		}
	}
}
