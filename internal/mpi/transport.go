package mpi

// frameKind discriminates the payload of one point-to-point frame.
type frameKind uint8

const (
	// kindData is a []float64 payload (Send/Isend/Recv).
	kindData frameKind = iota + 1
	// kindObj is an arbitrary value (SendObj/RecvObj); the TCP
	// transport moves it as a gob blob.
	kindObj
	// kindColl is internal collective traffic (the tree algorithms in
	// coll.go). Collective frames live in their own matching
	// namespace: Recv/RecvObj never see them and user tags can never
	// collide with collective sequence numbers.
	kindColl
)

// frame is one point-to-point message as the transports move it.
// Exactly one of data/obj is meaningful, selected by kind. The sender
// copies user buffers before building a frame, so a frame owns its
// payload and the receiver may adopt it without another copy.
type frame struct {
	kind frameKind
	tag  int32
	data []float64 // kindData, kindColl
	obj  any       // kindObj
}

// frameOverhead is the accounting cost of one frame's header: the
// wire framing is kind(1) + tag(4) + count(4).
const frameOverhead = 9

// objByteEstimate is the accounted payload size of an object frame.
// The local transport never serializes objects and the exact gob size
// is not known until the TCP writer encodes it, so both transports
// charge this flat estimate (the figure the simulated NetworkModel
// has always charged for object sends).
const objByteEstimate = 64

// wireBytes is the frame's accounted size for metrics, coalescing
// thresholds and the simulated network model.
func (f *frame) wireBytes() int {
	if f.kind == kindObj {
		return frameOverhead + objByteEstimate
	}
	return frameOverhead + 8*len(f.data)
}

// Transport moves frames between the ranks of one world. The Comm
// layer above owns MPI semantics — tag matching, collectives,
// batching, metrics; a Transport only provides ordered point-to-point
// delivery and connection lifecycle.
//
// Concurrency contract: SendBatch is called by at most one goroutine
// per dst at a time, and Recv by at most one goroutine per src at a
// time (Comm's per-peer send mutex and single-puller receive matcher
// guarantee both). Calls for different peers may overlap freely.
type Transport interface {
	// Rank is this endpoint's rank id, Size the world size.
	Rank() int
	Size() int
	// SendBatch delivers frames to dst, preserving order, as one
	// coalesced unit where the medium allows: the TCP transport
	// writes the batch as a single length-prefixed record in one
	// syscall, the local transport performs one mailbox handoff (and
	// charges the simulated network once per batch).
	SendBatch(dst int, frames []frame) error
	// Recv blocks for the next frame from src. It returns an error —
	// never hangs — when the peer is gone or the transport closed.
	Recv(src int) (frame, error)
	// Close tears down the endpoint; blocked Recvs unblock with
	// errors and subsequent sends fail.
	Close() error
}
