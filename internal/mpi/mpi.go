// Package mpi is an in-process message-passing fabric standing in for
// mpi4py/MPI in the hybrid MPI+OpenMP experiments (§IV-C, Fig. 8).
// Ranks run as goroutines inside one process and exchange messages
// over channels; a configurable network model charges per-message
// latency plus bandwidth-proportional transfer time, with distinct
// intra-node and inter-node parameters so multi-node topologies can
// be simulated on one machine.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Op is a reduction operator for Allreduce/Reduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	}
	return b
}

// NetworkModel charges communication costs. The zero value is a
// free, instantaneous network (unit tests); Fig. 8 runs use a model
// calibrated to a commodity cluster interconnect.
type NetworkModel struct {
	// RanksPerNode groups consecutive ranks onto simulated nodes;
	// 0 means every rank shares one node.
	RanksPerNode int
	// IntraLatency/InterLatency is the per-message setup time within
	// a node / across nodes.
	IntraLatency time.Duration
	InterLatency time.Duration
	// IntraBandwidth/InterBandwidth in bytes per second (0 = infinite).
	IntraBandwidth float64
	InterBandwidth float64
}

// cost returns the simulated transfer time for nbytes between ranks.
func (m *NetworkModel) cost(src, dst, nbytes int) time.Duration {
	if m == nil {
		return 0
	}
	sameNode := true
	if m.RanksPerNode > 0 {
		sameNode = src/m.RanksPerNode == dst/m.RanksPerNode
	}
	var lat time.Duration
	var bw float64
	if sameNode {
		lat, bw = m.IntraLatency, m.IntraBandwidth
	} else {
		lat, bw = m.InterLatency, m.InterBandwidth
	}
	d := lat
	if bw > 0 {
		d += time.Duration(float64(nbytes) / bw * float64(time.Second))
	}
	return d
}

// World is one MPI execution: Size ranks connected all-to-all.
type World struct {
	size  int
	model *NetworkModel
	// mailboxes[dst][src] is an unbounded-ish buffered channel.
	mailboxes [][]chan message

	barrier  *barrier
	collMu   sync.Mutex
	collSeq  map[string]*collective
	collNext map[string]int
}

type message struct {
	tag  int
	data []float64
	obj  any
}

// Run executes body on size ranks and waits for all of them. The
// model may be nil for an ideal network. Errors from ranks are
// joined; a panicking rank aborts the world with an error.
func Run(size int, model *NetworkModel, body func(c *Comm) error) error {
	if size < 1 {
		return errors.New("mpi: world size must be at least 1")
	}
	w := &World{
		size:     size,
		model:    model,
		barrier:  newBarrier(size),
		collSeq:  make(map[string]*collective),
		collNext: make(map[string]int),
	}
	w.mailboxes = make([][]chan message, size)
	for dst := 0; dst < size; dst++ {
		w.mailboxes[dst] = make([]chan message, size)
		for src := 0; src < size; src++ {
			w.mailboxes[dst][src] = make(chan message, 1024)
		}
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Comm is one rank's communicator handle.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

func (c *Comm) chargeSend(dst, nbytes int) {
	if d := c.world.model.cost(c.rank, dst, nbytes); d > 0 {
		time.Sleep(d)
	}
}

// Send delivers a float64 vector to dst (MPI_Send; buffered,
// non-blocking up to the mailbox capacity).
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	cp := append([]float64(nil), data...)
	c.chargeSend(dst, 8*len(cp))
	c.world.mailboxes[dst][c.rank] <- message{tag: tag, data: cp}
	return nil
}

// Recv blocks for a vector from src with the given tag.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if src < 0 || src >= c.world.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	box := c.world.mailboxes[c.rank][src]
	// Messages from one src arrive in order; tags must match in
	// order too (non-matching tags are a protocol error here, unlike
	// full MPI matching).
	msg := <-box
	if msg.tag != tag {
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d",
			c.rank, tag, src, msg.tag)
	}
	return msg.data, nil
}

// SendObj/RecvObj move arbitrary values (pickled objects in mpi4py).
func (c *Comm) SendObj(dst, tag int, v any) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	c.chargeSend(dst, 64)
	c.world.mailboxes[dst][c.rank] <- message{tag: tag, obj: v}
	return nil
}

// RecvObj blocks for an object message.
func (c *Comm) RecvObj(src, tag int) (any, error) {
	if src < 0 || src >= c.world.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	msg := <-c.world.mailboxes[c.rank][src]
	if msg.tag != tag {
		return nil, fmt.Errorf("mpi: rank %d expected tag %d from %d, got %d",
			c.rank, tag, src, msg.tag)
	}
	return msg.obj, nil
}

// Barrier synchronizes all ranks (MPI_Barrier).
func (c *Comm) Barrier() {
	c.world.barrier.await()
}

// collective is the shared state of one collective operation
// instance: a rendezvous slot per rank plus a completion latch.
type collective struct {
	mu      sync.Mutex
	parts   [][]float64
	scalars []float64
	arrived int
	done    chan struct{}
	result  []float64
	scalar  float64
}

// enterCollective matches the i-th collective call of the given kind
// across ranks (ranks call collectives in the same order, the MPI
// requirement).
func (c *Comm) enterCollective(kind string) *collective {
	w := c.world
	w.collMu.Lock()
	defer w.collMu.Unlock()
	seq := w.collNext[kind+fmt.Sprint(c.rank)]
	w.collNext[kind+fmt.Sprint(c.rank)] = seq + 1
	instKey := fmt.Sprintf("%s#%d", kind, seq)
	inst, ok := w.collSeq[instKey]
	if !ok {
		inst = &collective{
			parts:   make([][]float64, w.size),
			scalars: make([]float64, w.size),
			done:    make(chan struct{}),
		}
		w.collSeq[instKey] = inst
	}
	return inst
}

// Allgather concatenates every rank's vector in rank order and
// returns the result on all ranks (MPI_Allgather/Allgatherv).
func (c *Comm) Allgather(local []float64) []float64 {
	inst := c.enterCollective("allgather")
	inst.mu.Lock()
	inst.parts[c.rank] = append([]float64(nil), local...)
	inst.arrived++
	if inst.arrived == c.world.size {
		var out []float64
		for _, p := range inst.parts {
			out = append(out, p...)
		}
		inst.result = out
		close(inst.done)
	}
	inst.mu.Unlock()
	<-inst.done
	// Every rank receives size-1 remote contributions.
	for src := 0; src < c.world.size; src++ {
		if src != c.rank {
			if d := c.world.model.cost(src, c.rank, 8*len(inst.parts[src])); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return append([]float64(nil), inst.result...)
}

// Allreduce combines one scalar from every rank and returns the
// result everywhere (MPI_Allreduce).
func (c *Comm) Allreduce(v float64, op Op) float64 {
	inst := c.enterCollective("allreduce")
	inst.mu.Lock()
	inst.scalars[c.rank] = v
	inst.arrived++
	if inst.arrived == c.world.size {
		acc := inst.scalars[0]
		for _, s := range inst.scalars[1:] {
			acc = op.apply(acc, s)
		}
		inst.scalar = acc
		close(inst.done)
	}
	inst.mu.Unlock()
	<-inst.done
	// A tree allreduce costs ~2 log2(P) messages on the critical path.
	if c.world.model != nil {
		hops := 0
		for p := 1; p < c.world.size; p <<= 1 {
			hops += 2
		}
		if d := c.world.model.cost(0, c.rank, 8) * time.Duration(hops); d > 0 && c.rank != 0 {
			time.Sleep(d)
		}
	}
	return inst.scalar
}

// Bcast distributes root's vector to every rank (MPI_Bcast).
func (c *Comm) Bcast(data []float64, root int) []float64 {
	inst := c.enterCollective("bcast")
	inst.mu.Lock()
	if c.rank == root {
		inst.result = append([]float64(nil), data...)
	}
	inst.arrived++
	if inst.arrived == c.world.size {
		close(inst.done)
	}
	inst.mu.Unlock()
	<-inst.done
	if c.rank != root {
		if d := c.world.model.cost(root, c.rank, 8*len(inst.result)); d > 0 {
			time.Sleep(d)
		}
	}
	return append([]float64(nil), inst.result...)
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
