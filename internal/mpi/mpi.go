// Package mpi is the message-passing fabric under the hybrid
// MPI+OpenMP experiments (§IV-C, Fig. 8), standing in for mpi4py/MPI.
// It is split into a core communicator and pluggable transports:
//
//   - The Comm layer (this file and coll.go) owns MPI semantics —
//     MPI-style tag matching with requeue (a message whose tag does
//     not match the posted receive stays queued per source until a
//     matching receive arrives), nonblocking Isend/Irecv with
//     per-peer message coalescing (small messages merged into one
//     wire batch per flush window), tree-based collectives built on
//     point-to-point, and per-rank transport metrics.
//
//   - A Transport (transport.go) provides ordered point-to-point
//     frame delivery. local.go keeps the original in-process channel
//     fabric with its simulated NetworkModel; tcp.go runs each rank
//     as a separate OS process over real sockets with length-prefixed
//     binary framing and rank rendezvous (see ConnectTCP).
//
// Because collectives are the same tree algorithms over point-to-point
// on every transport, a program produces bit-identical floating-point
// results whether its ranks are goroutines in one process or processes
// on separate machines — the property the differential tests pin.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
)

// Op is a reduction operator for Allreduce/Reduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	}
	return b
}

// Default batching parameters: a pending buffer is handed to the
// transport when an explicit Flush (or any blocking operation)
// happens, when it exceeds defaultCoalesceBytes, or when the
// background flusher's window elapses — whichever comes first.
const (
	defaultFlushWindow   = time.Millisecond
	defaultCoalesceBytes = 32 << 10
)

// commOptions configures a Comm independently of its transport.
type commOptions struct {
	metrics       *metrics.Registry
	flushWindow   time.Duration
	coalesceBytes int
}

func (o *commOptions) fill() {
	if o.metrics == nil {
		o.metrics = metrics.New()
	}
	if o.flushWindow <= 0 {
		o.flushWindow = defaultFlushWindow
	}
	if o.coalesceBytes <= 0 {
		o.coalesceBytes = defaultCoalesceBytes
	}
}

// Comm is one rank's communicator handle.
type Comm struct {
	tr   Transport
	rank int
	size int

	// mreg is swappable so a host runtime can adopt the communicator
	// into its own /metrics registry (AttachMetrics).
	mreg atomic.Pointer[metrics.Registry]

	peers []*peerState

	// collSeq numbers collective calls. Every rank calls collectives
	// in the same order (the MPI requirement), so equal sequence
	// numbers identify the same collective instance across ranks; the
	// sequence is the matching tag of kindColl frames. No shared
	// instance state exists — when the last frame of a collective is
	// consumed, nothing of that instance remains anywhere.
	collSeq atomic.Int64

	flushWindow   time.Duration
	coalesceBytes int
	stop          chan struct{}
	closeOnce     sync.Once
	closeErr      error
}

// peerState is this rank's view of one peer: the send-side coalescing
// buffer and the receive-side match queue.
type peerState struct {
	// Send side. Isend appends to pending; a flush hands the whole
	// batch to the transport under smu, so per-destination order is
	// preserved no matter which goroutine flushes.
	smu          sync.Mutex
	pending      []frame
	pendingBytes int
	sendErr      error

	// Recv side. Frames pulled from the transport that did not match
	// the receive being waited for stay queued here until a matching
	// receive posts (MPI-style matching, satellite of the tag
	// mismatch fix). pulling elects a single puller so Transport.Recv
	// sees one caller per source at a time.
	rmu     sync.Mutex
	rcond   *sync.Cond
	queue   []frame
	pulling bool
	recvErr error
}

// newComm wraps a transport in the semantic layer and starts the
// background flusher that bounds how long a coalescing buffer can sit
// unsent (the flush window).
func newComm(tr Transport, o commOptions) *Comm {
	o.fill()
	c := &Comm{
		tr:            tr,
		rank:          tr.Rank(),
		size:          tr.Size(),
		peers:         make([]*peerState, tr.Size()),
		flushWindow:   o.flushWindow,
		coalesceBytes: o.coalesceBytes,
		stop:          make(chan struct{}),
	}
	c.mreg.Store(o.metrics)
	for i := range c.peers {
		p := &peerState{}
		p.rcond = sync.NewCond(&p.rmu)
		c.peers[i] = p
	}
	go c.flusherLoop()
	return c
}

// flusherLoop is the flush-window backstop: anything a rank Isent but
// never explicitly flushed reaches the wire within one window even if
// the rank never performs another blocking MPI call.
func (c *Comm) flusherLoop() {
	t := time.NewTicker(c.flushWindow)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for dst := range c.peers {
				if dst != c.rank {
					_ = c.Flush(dst)
				}
			}
		}
	}
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// AttachMetrics redirects the communicator's transport metrics into
// reg — typically a Runtime's registry, so omp4go_mpi_* counters
// appear on that runtime's /metrics endpoint next to the OpenMP ones.
func (c *Comm) AttachMetrics(reg *metrics.Registry) {
	if reg != nil {
		c.mreg.Store(reg)
	}
}

// MetricsSnapshot returns the communicator's current metric registry
// snapshot (the attached registry's, if AttachMetrics was called).
func (c *Comm) MetricsSnapshot() *metrics.Snapshot { return c.mreg.Load().Snapshot() }

// Close flushes pending sends best-effort and tears down the
// transport; outstanding receives unblock with errors.
func (c *Comm) Close() error {
	c.closeOnce.Do(func() {
		for dst := range c.peers {
			if dst != c.rank {
				_ = c.Flush(dst)
			}
		}
		close(c.stop)
		c.closeErr = c.tr.Close()
		// Unblock any receiver parked on the self queue (transports
		// only wake receivers of remote sources).
		p := c.peers[c.rank]
		p.rmu.Lock()
		if p.recvErr == nil {
			p.recvErr = fmt.Errorf("mpi: rank %d: communicator closed", c.rank)
		}
		p.rcond.Broadcast()
		p.rmu.Unlock()
	})
	return c.closeErr
}

func (c *Comm) checkRank(kind string, r int) error {
	if r < 0 || r >= c.size {
		return fmt.Errorf("mpi: %s invalid rank %d (world size %d)", kind, r, c.size)
	}
	return nil
}

// enqueue appends a frame to dst's coalescing buffer, flushing when
// asked to or when the buffer crossed the coalescing threshold.
// Self-sends bypass the transport and land directly in the local
// match queue.
func (c *Comm) enqueue(dst int, f frame, flushNow bool) error {
	if dst == c.rank {
		reg := c.mreg.Load()
		reg.Inc(int32(c.rank), metrics.MPIMsgs)
		reg.Add(int32(c.rank), metrics.MPIBytes, int64(f.wireBytes()))
		p := c.peers[dst]
		p.rmu.Lock()
		p.queue = append(p.queue, f)
		p.rcond.Broadcast()
		p.rmu.Unlock()
		return nil
	}
	p := c.peers[dst]
	p.smu.Lock()
	if p.sendErr != nil {
		err := p.sendErr
		p.smu.Unlock()
		return err
	}
	p.pending = append(p.pending, f)
	p.pendingBytes += f.wireBytes()
	if flushNow || p.pendingBytes >= c.coalesceBytes {
		return c.flushPeerLocked(dst, p)
	}
	p.smu.Unlock()
	return nil
}

// flushPeerLocked hands dst's pending batch to the transport. Called
// with p.smu held; releases it. Holding smu across SendBatch keeps
// per-destination frame order total even with concurrent flushers.
func (c *Comm) flushPeerLocked(dst int, p *peerState) error {
	batch := p.pending
	p.pending = nil
	p.pendingBytes = 0
	if len(batch) == 0 {
		err := p.sendErr
		p.smu.Unlock()
		return err
	}
	reg := c.mreg.Load()
	gtid := int32(c.rank)
	nbytes := 0
	for i := range batch {
		nbytes += batch[i].wireBytes()
	}
	reg.Add(gtid, metrics.MPIMsgs, int64(len(batch)))
	reg.Add(gtid, metrics.MPIBytes, int64(nbytes))
	if len(batch) > 1 {
		// Every message beyond the first rode an existing flush
		// instead of paying its own wire write.
		reg.Add(gtid, metrics.MPICoalesced, int64(len(batch)-1))
	}
	start := time.Now()
	err := c.tr.SendBatch(dst, batch)
	reg.Observe(gtid, metrics.HistMPISendWait, time.Since(start).Nanoseconds())
	if err != nil {
		err = fmt.Errorf("mpi: rank %d send to %d: %w", c.rank, dst, err)
		p.sendErr = err
	}
	p.smu.Unlock()
	return err
}

// Flush pushes dst's coalescing buffer to the wire and reports the
// peer's sticky send error, if any.
func (c *Comm) Flush(dst int) error {
	if err := c.checkRank("flush to", dst); err != nil {
		return err
	}
	if dst == c.rank {
		return nil
	}
	p := c.peers[dst]
	p.smu.Lock()
	if p.sendErr != nil {
		err := p.sendErr
		p.smu.Unlock()
		return err
	}
	return c.flushPeerLocked(dst, p)
}

// FlushAll flushes every peer's coalescing buffer, returning the
// first error. Every blocking operation calls it first, so a rank can
// never deadlock waiting for a peer whose request sits in its own
// unflushed buffer.
func (c *Comm) FlushAll() error {
	var first error
	for dst := range c.peers {
		if dst == c.rank {
			continue
		}
		if err := c.Flush(dst); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Send delivers a float64 vector to dst (MPI_Send). The buffer is
// copied before the call returns, and the frame — together with
// anything already coalescing for dst — is flushed to the transport
// immediately.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if err := c.checkRank("send to", dst); err != nil {
		return err
	}
	cp := append([]float64(nil), data...)
	return c.enqueue(dst, frame{kind: kindData, tag: int32(tag), data: cp}, true)
}

// Isend enqueues a vector for dst without flushing (MPI_Isend): the
// message rides the next flush of dst's coalescing buffer — an
// explicit Flush/FlushAll, a blocking operation, the coalescing byte
// threshold, or the background flush window, whichever happens first.
// The buffer is copied immediately, so the caller may reuse it.
func (c *Comm) Isend(dst, tag int, data []float64) (*Request, error) {
	if err := c.checkRank("send to", dst); err != nil {
		return nil, err
	}
	cp := append([]float64(nil), data...)
	if err := c.enqueue(dst, frame{kind: kindData, tag: int32(tag), data: cp}, false); err != nil {
		return nil, err
	}
	return &Request{c: c, dst: dst}, nil
}

// Request is the handle of an Isend.
type Request struct {
	c   *Comm
	dst int
}

// Wait completes the Isend: it flushes the destination's coalescing
// buffer and reports the peer's sticky send error, if any.
func (r *Request) Wait() error { return r.c.Flush(r.dst) }

// SendObj delivers an arbitrary value to dst (a pickled object in
// mpi4py terms). The local transport passes the value by reference;
// the TCP transport gob-encodes it — see RegisterObjType.
func (c *Comm) SendObj(dst, tag int, v any) error {
	if err := c.checkRank("send to", dst); err != nil {
		return err
	}
	return c.enqueue(dst, frame{kind: kindObj, tag: int32(tag), obj: v}, true)
}

// matchTag builds a matcher for user frames of one kind and tag.
func matchTag(kind frameKind, tag int) func(*frame) bool {
	t := int32(tag)
	return func(f *frame) bool { return f.kind == kind && f.tag == t }
}

// Recv blocks for a vector from src with the given tag (MPI_Recv).
// Matching is MPI-style per source: a message from src whose tag does
// not match stays queued — in arrival order — until a receive posts
// for its tag, so out-of-order tagged traffic is reordered rather
// than treated as a protocol error.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	f, err := c.recvMatch(src, matchTag(kindData, tag))
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// RecvObj blocks for an object message, with the same per-source tag
// matching as Recv.
func (c *Comm) RecvObj(src, tag int) (any, error) {
	f, err := c.recvMatch(src, matchTag(kindObj, tag))
	if err != nil {
		return nil, err
	}
	return f.obj, nil
}

// RecvRequest is the handle of an Irecv.
type RecvRequest struct {
	done chan struct{}
	data []float64
	err  error
}

// Irecv posts a nonblocking receive (MPI_Irecv): the match runs in
// the background so the caller can overlap compute with message
// arrival, collecting the payload later with Wait.
func (c *Comm) Irecv(src, tag int) *RecvRequest {
	r := &RecvRequest{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		f, err := c.recvMatch(src, matchTag(kindData, tag))
		r.data, r.err = f.data, err
	}()
	return r
}

// Wait blocks until the Irecv matched and returns its payload.
func (r *RecvRequest) Wait() ([]float64, error) {
	<-r.done
	return r.data, r.err
}

// recvMatch returns the earliest queued frame from src accepted by
// want, pulling frames from the transport as needed. Non-matching
// frames stay queued in arrival order. Any number of goroutines may
// wait on the same source concurrently: a single elected puller
// blocks in Transport.Recv while the rest wait on the condition
// variable, and every arrival wakes all waiters to re-scan.
func (c *Comm) recvMatch(src int, want func(*frame) bool) (frame, error) {
	if err := c.checkRank("recv from", src); err != nil {
		return frame{}, err
	}
	// Flush everything first: the message the peer needs before it
	// can send us ours may be sitting in our own coalescing buffer.
	_ = c.FlushAll()
	reg := c.mreg.Load()
	start := time.Now()
	p := c.peers[src]
	p.rmu.Lock()
	defer p.rmu.Unlock()
	for {
		for i := range p.queue {
			if want(&p.queue[i]) {
				f := p.queue[i]
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				reg.Observe(int32(c.rank), metrics.HistMPIRecvWait, time.Since(start).Nanoseconds())
				return f, nil
			}
		}
		if p.recvErr != nil {
			return frame{}, p.recvErr
		}
		if src != c.rank && !p.pulling {
			p.pulling = true
			p.rmu.Unlock()
			f, err := c.tr.Recv(src)
			p.rmu.Lock()
			p.pulling = false
			if err != nil {
				p.recvErr = fmt.Errorf("mpi: rank %d recv from %d: %w", c.rank, src, err)
			} else {
				p.queue = append(p.queue, f)
			}
			p.rcond.Broadcast()
			continue
		}
		p.rcond.Wait()
	}
}

// pendingFrames reports how many frames sit in this communicator's
// buffers — unsent coalescing batches plus unmatched received frames.
// After a quiesced exchange (every send matched by a receive, every
// collective completed) it must be zero: nothing of a completed
// operation is retained. Tests use it to pin the no-residual-state
// property that replaced the old shared collective-instance map,
// which grew without bound over long runs.
func (c *Comm) pendingFrames() int {
	n := 0
	for _, p := range c.peers {
		p.smu.Lock()
		n += len(p.pending)
		p.smu.Unlock()
		p.rmu.Lock()
		n += len(p.queue)
		p.rmu.Unlock()
	}
	return n
}
