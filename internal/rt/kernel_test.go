package rt

import (
	"testing"

	"github.com/omp4go/omp4go/internal/directive"
)

// TestStaticBoundsPartition checks that across every team member the
// chunks produced by StaticBounds cover the loop's linear iteration
// space exactly once — the property that makes a kernel loop visit
// the same index set as the bridge's claim loop.
func TestStaticBoundsPartition(t *testing.T) {
	cases := []struct {
		lo, hi, step, chunk int64
		nthreads            int
	}{
		{0, 100, 1, 0, 4},
		{0, 100, 1, 0, 1},
		{0, 100, 1, 0, 7},  // rem != 0 block split
		{0, 3, 1, 0, 8},    // more members than iterations
		{0, 0, 1, 0, 4},    // empty loop
		{5, 50, 3, 0, 4},   // offset + stride
		{50, 5, -3, 0, 4},  // negative step
		{0, 100, 1, 1, 4},  // cyclic
		{0, 100, 1, 13, 4}, // round-robin, ragged tail
		{0, 100, 1, 200, 3},
		{7, 93, 2, 5, 5},
		{10, -10, -1, 4, 2},
	}
	for _, tc := range cases {
		total := Triplet{Start: tc.lo, End: tc.hi, Step: tc.step}.count()
		seen := make([]int, total)
		lastSeen := false
		for g := 0; g < tc.nthreads; g++ {
			it := StaticBounds(g, tc.nthreads, tc.lo, tc.hi, tc.step, tc.chunk)
			if it.Total() != total {
				t.Fatalf("%+v: member %d Total() = %d, want %d", tc, g, it.Total(), total)
			}
			for it.Next() {
				if it.Lo < 0 || it.Hi > total || it.Lo >= it.Hi {
					t.Fatalf("%+v: member %d claimed bad chunk [%d,%d)", tc, g, it.Lo, it.Hi)
				}
				for lin := it.Lo; lin < it.Hi; lin++ {
					seen[lin]++
				}
				if it.Last() {
					lastSeen = true
				}
			}
		}
		for lin, n := range seen {
			if n != 1 {
				t.Fatalf("%+v: linear iteration %d claimed %d times", tc, lin, n)
			}
		}
		if total > 0 && !lastSeen {
			t.Fatalf("%+v: no member observed Last()", tc)
		}
	}
}

// TestStaticBoundsMatchesLoopBounds runs the same partitions through
// the bridge's claimNext protocol (a hand-initialized LoopBounds with
// ForInit's static-branch cursor arithmetic, no team needed) and
// through StaticBounds, asserting chunk-for-chunk equality — the
// differential at the heart of the kernel design.
func TestStaticBoundsMatchesLoopBounds(t *testing.T) {
	cases := []struct {
		lo, hi, step, chunk int64
		nthreads            int
	}{
		{0, 1000, 1, 0, 4},
		{0, 1000, 1, 16, 4},
		{0, 999, 7, 0, 3},
		{0, 999, 7, 5, 3},
		{-50, 50, 1, 0, 8},
		{-50, 50, 1, 3, 8},
		{0, 5, 1, 0, 8},
		{0, 64, 1, 64, 4},
	}
	for _, tc := range cases {
		for g := 0; g < tc.nthreads; g++ {
			b := ForBounds(Triplet{Start: tc.lo, End: tc.hi, Step: tc.step})
			b.sched = Schedule{Kind: directive.ScheduleStatic, Chunk: tc.chunk}
			b.tnum, b.tsize = g, tc.nthreads
			// ForInit's static cursor setup, minus team/region state.
			if tc.chunk == 0 {
				base := b.Total / int64(b.tsize)
				rem := b.Total % int64(b.tsize)
				lo := int64(b.tnum)*base + min64(int64(b.tnum), rem)
				sz := base
				if int64(b.tnum) < rem {
					sz++
				}
				b.next = lo
				b.limit = lo + sz
				b.stride = 0
			} else {
				b.next = int64(b.tnum) * tc.chunk
				b.stride = int64(b.tsize) * tc.chunk
				b.limit = b.Total
			}
			b.inited = true
			it := StaticBounds(g, tc.nthreads, tc.lo, tc.hi, tc.step, tc.chunk)
			for {
				bridgeOK := b.claimNext()
				kernOK := it.Next()
				if bridgeOK != kernOK {
					t.Fatalf("%+v member %d: bridge claimed=%v kernel claimed=%v", tc, g, bridgeOK, kernOK)
				}
				if !bridgeOK {
					break
				}
				if b.Lo != it.Lo || b.Hi != it.Hi {
					t.Fatalf("%+v member %d: bridge [%d,%d) kernel [%d,%d)",
						tc, g, b.Lo, b.Hi, it.Lo, it.Hi)
				}
			}
		}
	}
}

// TestReduceSlot covers construction, identity seeding, combining and
// operator validation of the unboxed reduction accumulator.
func TestReduceSlot(t *testing.T) {
	fs, err := NewReduceSlot[float64]("+")
	if err != nil {
		t.Fatalf("NewReduceSlot(+): %v", err)
	}
	if fs.Val != 0 {
		t.Fatalf("sum identity = %v, want 0", fs.Val)
	}
	for i := 1; i <= 10; i++ {
		fs.Combine(float64(i))
	}
	if fs.Val != 55 {
		t.Fatalf("sum = %v, want 55", fs.Val)
	}

	is, err := NewReduceSlot[int64]("*")
	if err != nil {
		t.Fatalf("NewReduceSlot(*): %v", err)
	}
	if is.Val != 1 {
		t.Fatalf("product identity = %v, want 1", is.Val)
	}
	for i := int64(1); i <= 5; i++ {
		is.Combine(i)
	}
	if is.Val != 120 {
		t.Fatalf("product = %v, want 120", is.Val)
	}

	mx, err := NewReduceSlot[int64]("max")
	if err != nil {
		t.Fatalf("NewReduceSlot(max): %v", err)
	}
	mx.Combine(-3)
	mx.Combine(7)
	mx.Combine(5)
	if mx.Val != 7 {
		t.Fatalf("max = %v, want 7", mx.Val)
	}

	if _, err := NewReduceSlot[float64]("nonsense"); err == nil {
		t.Fatalf("NewReduceSlot(nonsense) should fail")
	}
}
