package rt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTasksRunToCompletionAtBarrier(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		const nTasks = 100
		done := NewCounter(LayerAtomic)
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			s, err := c.SingleBegin(false, false)
			if err != nil {
				return err
			}
			if s.Executes() {
				for i := 0; i < nTasks; i++ {
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
						done.Add(1)
						return nil
					}); err != nil {
						return err
					}
				}
			}
			_, err = s.End() // implicit barrier drains the queue
			if err != nil {
				return err
			}
			if got := done.Load(); got != nTasks {
				t.Errorf("%v: after barrier %d tasks done, want %d", l, got, nTasks)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if done.Load() != nTasks {
			t.Fatalf("%v: %d tasks done, want %d", l, done.Load(), nTasks)
		}
	}
}

func TestTasksAreExecutedByMultipleThreads(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	// Every task blocks until two distinct threads have started
	// executing tasks, forcing the work to spread over the team.
	var mu sync.Mutex
	distinct := make(map[int]bool)
	gate := make(chan struct{})
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			for i := 0; i < 64; i++ {
				if err := c.SubmitTask(TaskOpts{}, func(tc *Context) error {
					mu.Lock()
					if !distinct[tc.GetThreadNum()] {
						distinct[tc.GetThreadNum()] = true
						if len(distinct) == 2 {
							close(gate)
						}
					}
					mu.Unlock()
					<-gate
					return nil
				}); err != nil {
					return err
				}
			}
		}
		_, err = s.End()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(distinct)
	mu.Unlock()
	if n < 2 {
		t.Fatalf("tasks executed by %d distinct threads, want >= 2", n)
	}
}

func TestTaskWaitWaitsForDirectChildren(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			var child1, child2 atomic.Bool
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				child1.Store(true)
				return nil
			}); err != nil {
				return err
			}
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				child2.Store(true)
				return nil
			}); err != nil {
				return err
			}
			if err := c.TaskWait(); err != nil {
				return err
			}
			if !child1.Load() || !child2.Load() {
				t.Error("taskwait returned before direct children completed")
			}
		}
		_, err = s.End()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fib computes Fibonacci numbers with nested tasks and taskwait —
// the paper's Fig. 4 pattern.
func fib(c *Context, n int64) (int64, error) {
	if n <= 1 {
		return n, nil
	}
	var f1, f2 int64
	var err1, err2 error
	// The if clause serializes small subproblems (task if).
	opts := TaskOpts{If: n > 8, IfSet: true}
	if err := c.SubmitTask(opts, func(tc *Context) error {
		f1, err1 = fib(tc, n-1)
		return err1
	}); err != nil {
		return 0, err
	}
	if err := c.SubmitTask(opts, func(tc *Context) error {
		f2, err2 = fib(tc, n-2)
		return err2
	}); err != nil {
		return 0, err
	}
	if err := c.TaskWait(); err != nil {
		return 0, err
	}
	if err1 != nil {
		return 0, err1
	}
	if err2 != nil {
		return 0, err2
	}
	return f1 + f2, nil
}

func TestFibonacciWithNestedTasks(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		var result int64
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			s, err := c.SingleBegin(false, false)
			if err != nil {
				return err
			}
			if s.Executes() {
				result, err = fib(c, 20)
				if err != nil {
					return err
				}
			}
			_, err = s.End()
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if result != 6765 {
			t.Fatalf("%v: fib(20) = %d, want 6765", l, result)
		}
	}
}

func TestTaskIfFalseRunsImmediately(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		if !c.Master() {
			return nil
		}
		var ranOn int = -1
		var before, after int
		before = 1
		if err := c.SubmitTask(TaskOpts{If: false, IfSet: true}, func(tc *Context) error {
			ranOn = tc.GetThreadNum()
			if before != 1 || after != 0 {
				t.Error("undeferred task did not run synchronously")
			}
			return nil
		}); err != nil {
			return err
		}
		after = 1
		if ranOn != c.GetThreadNum() {
			t.Errorf("undeferred task ran on thread %d, want %d", ranOn, c.GetThreadNum())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFinalTaskMakesDescendantsIncluded(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			outer := c.GetThreadNum()
			if err := c.SubmitTask(TaskOpts{Final: true, FinalSet: true, If: false, IfSet: true},
				func(tc *Context) error {
					// Descendant of a final task: must execute inline.
					inner := -1
					if err := tc.SubmitTask(TaskOpts{}, func(tc2 *Context) error {
						inner = tc2.GetThreadNum()
						return nil
					}); err != nil {
						return err
					}
					if inner != outer {
						t.Errorf("descendant of final ran on %d, want inline on %d", inner, outer)
					}
					return nil
				}); err != nil {
				return err
			}
		}
		_, err = s.End()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTaskErrorSurfacesAtJoin(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	boom := errors.New("task boom")
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return boom }); err != nil {
				return err
			}
		}
		_, err = s.End()
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("join error = %v, want to wrap task error", err)
	}
}

func TestTaskPanicIsContained(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error { panic("inside task") }); err != nil {
				return err
			}
		}
		_, err = s.End()
		return err
	})
	if err == nil {
		t.Fatal("expected an error from the panicking task")
	}
}

func TestTasksOnInitialThreadContext(t *testing.T) {
	// Tasks submitted outside any parallel region run on the implicit
	// single-thread team.
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	ran := false
	if err := ctx.SubmitTask(TaskOpts{}, func(*Context) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ctx.TaskWait(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task never ran")
	}
}

func TestDeepTaskRecursionQsortPattern(t *testing.T) {
	// A divide-and-conquer sort via tasks: validates heavy queue churn.
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	const n = 2000
	data := make([]int, n)
	for i := range data {
		data[i] = (i * 7919) % n
	}
	var qsort func(c *Context, lo, hi int) error
	qsort = func(c *Context, lo, hi int) error {
		if hi-lo < 2 {
			return nil
		}
		p := data[(lo+hi)/2]
		i, j := lo, hi-1
		for i <= j {
			for data[i] < p {
				i++
			}
			for data[j] > p {
				j--
			}
			if i <= j {
				data[i], data[j] = data[j], data[i]
				i++
				j--
			}
		}
		opts := TaskOpts{If: hi-lo > 64, IfSet: true}
		if err := c.SubmitTask(opts, func(tc *Context) error { return qsort(tc, lo, j+1) }); err != nil {
			return err
		}
		if err := c.SubmitTask(opts, func(tc *Context) error { return qsort(tc, i, hi) }); err != nil {
			return err
		}
		return c.TaskWait()
	}
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			if err := qsort(c, 0, n); err != nil {
				return err
			}
		}
		_, err = s.End()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if data[i-1] > data[i] {
			t.Fatalf("not sorted at %d: %d > %d", i, data[i-1], data[i])
		}
	}
}

// schedVariants enumerates every scheduler implementation × layer for
// direct-drive tests. size is the simulated team size.
func schedVariants(size int) map[string]taskScheduler {
	out := make(map[string]taskScheduler)
	for _, l := range bothLayers {
		for _, m := range []schedMode{schedSteal, schedList} {
			out[l.String()+"/"+m.String()] = newTaskScheduler(l, size, m)
		}
	}
	return out
}

func TestTaskSchedulerDirect(t *testing.T) {
	for name, q := range schedVariants(4) {
		l := LayerAtomic
		if q.hasRunnable() {
			t.Fatalf("%s: empty scheduler has runnable", name)
		}
		if tk, _ := q.take(0); tk != nil {
			t.Fatalf("%s: take on empty scheduler", name)
		}
		t1 := newTask(l, nil, nil, true)
		t2 := newTask(l, nil, nil, true)
		q.submit(0, t1)
		q.submit(0, t2)
		if !q.hasRunnable() {
			t.Fatalf("%s: scheduler should have runnable tasks", name)
		}
		a, _ := q.take(0)
		b, _ := q.take(1) // thread 1 must find thread 0's remaining task
		if a == nil || b == nil || a == b {
			t.Fatalf("%s: take returned %v, %v", name, a, b)
		}
		if tk, _ := q.take(2); tk != nil {
			t.Fatalf("%s: scheduler should be drained", name)
		}
		a.state.Store(taskDone)
		b.state.Store(taskDone)
		t3 := newTask(l, nil, nil, true)
		q.submit(3, t3)
		if got, _ := q.take(3); got != t3 {
			t.Fatalf("%s: expected t3 after completed tasks", name)
		}
	}
}

func TestTaskSchedulerConcurrent(t *testing.T) {
	// Each team-thread id is driven by exactly one goroutine that both
	// submits and consumes — the deque bottom end is owner-only, and
	// this is the invariant the runtime upholds (a context's thread
	// number is only ever used from that member's goroutine).
	for name, q := range schedVariants(4) {
		const workers = 4
		const perWorker = 500
		taken := NewCounter(LayerAtomic)
		var wg sync.WaitGroup
		for p := 0; p < workers; p++ {
			wg.Add(1)
			go func(self int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					q.submit(self, newTask(LayerAtomic, nil, nil, true))
					// Interleave claims with submissions, then drain.
					if tk, _ := q.take(self); tk != nil {
						tk.state.Store(taskDone)
						taken.Add(1)
					}
				}
				for taken.Load() < workers*perWorker {
					if tk, _ := q.take(self); tk != nil {
						tk.state.Store(taskDone)
						taken.Add(1)
					}
				}
			}(p)
		}
		wg.Wait()
		if taken.Load() != workers*perWorker {
			t.Fatalf("%s: took %d tasks, want %d", name, taken.Load(), workers*perWorker)
		}
		if tk, _ := q.take(0); tk != nil {
			t.Fatalf("%s: residual task in scheduler", name)
		}
		if n := q.retained(); n != 0 {
			t.Fatalf("%s: scheduler retains %d task references after drain", name, n)
		}
	}
}
