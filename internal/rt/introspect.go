package rt

import (
	"sync"

	"github.com/omp4go/omp4go/internal/ompt"
)

// This file implements live introspection of in-flight parallel
// regions. The state is opt-in: Parallel pays one atomic load of
// r.obs per region when introspection is off, and registers its team
// in the obsState registry when it is on. The watchdog sampler
// (watchdog.go) and the /debug/omp endpoint (serve.go) both read
// regions through snapshotRegions.

// Wait kinds published through Context.waitKind while introspection
// is enabled.
const (
	waitNone int32 = iota
	waitBarrier
	waitTaskwait
	waitTaskgroup
	waitDepend
)

func waitKindString(k int32) string {
	switch k {
	case waitBarrier:
		return "barrier"
	case waitTaskwait:
		return "taskwait"
	case waitTaskgroup:
		return "taskgroup"
	case waitDepend:
		return "depend"
	}
	return ""
}

// obsState is the introspection registry: the set of in-flight teams,
// and the most recent stall reports for /debug/omp. The mutex also
// provides the happens-before edge that makes the watchdog's reads of
// member plain fields (num, gtid, the members slice itself) safe:
// Parallel finishes member setup before register, and the watchdog
// reads only while holding the same mutex.
type obsState struct {
	mu    sync.Mutex
	teams map[int32]*Team

	stallMu sync.Mutex
	stalls  []StallReport // most recent first, bounded by maxStallReports
}

// maxStallReports bounds the stall history kept for /debug/omp.
const maxStallReports = 32

// ensureObs enables introspection, returning the (single) obsState.
func (r *Runtime) ensureObs() *obsState {
	for {
		if o := r.obs.Load(); o != nil {
			return o
		}
		o := &obsState{teams: make(map[int32]*Team)}
		if r.obs.CompareAndSwap(nil, o) {
			return o
		}
	}
}

func (o *obsState) register(t *Team) {
	o.mu.Lock()
	o.teams[t.regionID] = t
	o.mu.Unlock()
}

func (o *obsState) unregister(t *Team) {
	o.mu.Lock()
	delete(o.teams, t.regionID)
	o.mu.Unlock()
}

func (o *obsState) addStall(rep StallReport) {
	o.stallMu.Lock()
	o.stalls = append([]StallReport{rep}, o.stalls...)
	if len(o.stalls) > maxStallReports {
		o.stalls = o.stalls[:maxStallReports]
	}
	o.stallMu.Unlock()
}

// StallReports returns the watchdog's recent stall reports, most
// recent first. Empty until the watchdog flags something.
func (r *Runtime) StallReports() []StallReport {
	o := r.obs.Load()
	if o == nil {
		return nil
	}
	o.stallMu.Lock()
	out := make([]StallReport, len(o.stalls))
	copy(out, o.stalls)
	o.stallMu.Unlock()
	return out
}

// MemberInfo is the introspection view of one team member.
type MemberInfo struct {
	GTID      int32  `json:"gtid"`
	ThreadNum int    `json:"thread_num"`
	Wait      string `json:"wait,omitempty"` // "", "barrier", "taskwait", "taskgroup", "depend"
	// WaitFor names what the wait is on ("3 child task(s)",
	// "taskgroup #7", "2 unresolved predecessor(s)") when the wait
	// site published a detail string.
	WaitFor    string `json:"wait_for,omitempty"`
	WaitNS     int64  `json:"wait_ns,omitempty"`
	DequeDepth int    `json:"deque_depth"`
}

// RegionInfo is the introspection view of one in-flight parallel
// region.
type RegionInfo struct {
	RegionID    int32        `json:"region_id"`
	Size        int          `json:"size"`
	Outstanding int64        `json:"outstanding_tasks"`
	// QueuedTasks counts the unclaimed tasks the region's scheduler
	// holds anywhere — per-member deques, the steal scheduler's
	// overflow list, or the list schedulers' shared queue — so it is
	// meaningful in every scheduler mode, unlike the per-member
	// DequeDepth breakdown.
	QueuedTasks int          `json:"queued_tasks"`
	Members     []MemberInfo `json:"members"`
}

// snapshotRegions captures every registered in-flight region. Member
// wait states and deque depths are read through atomics (or the
// scheduler's own locks), so a region actively executing is sampled
// without perturbing it.
func (o *obsState) snapshotRegions() []RegionInfo {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := ompt.Now()
	out := make([]RegionInfo, 0, len(o.teams))
	for _, t := range o.teams {
		ri := RegionInfo{
			RegionID:    t.regionID,
			Size:        t.size,
			Outstanding: t.outstanding.Load(),
			QueuedTasks: t.sched.runnable(),
			Members:     make([]MemberInfo, 0, t.size),
		}
		depths := t.sched.depths()
		for i, m := range t.members {
			if m == nil {
				continue
			}
			mi := MemberInfo{GTID: m.gtid, ThreadNum: m.num}
			if k := m.waitKind.Load(); k != waitNone {
				mi.Wait = waitKindString(k)
				if d := m.waitDetail.Load(); d != nil {
					mi.WaitFor = *d
				}
				if since := m.waitSince.Load(); since > 0 && now > since {
					mi.WaitNS = now - since
				}
			}
			if i < len(depths) {
				mi.DequeDepth = depths[i]
			}
			ri.Members = append(ri.Members, mi)
		}
		out = append(out, ri)
	}
	return out
}

// InflightRegions returns the introspection view of the runtime's
// in-flight parallel regions; nil when introspection is disabled.
func (r *Runtime) InflightRegions() []RegionInfo {
	o := r.obs.Load()
	if o == nil {
		return nil
	}
	return o.snapshotRegions()
}
