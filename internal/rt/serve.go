package rt

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// This file implements the live metrics/introspection endpoint:
// /metrics serves the always-on counters in Prometheus text format,
// /debug/omp a JSON snapshot of ICVs, pool state and in-flight
// regions, and /debug/pprof the standard Go profiles (goroutine
// profiles carry the omp_region/omp_gtid labels Parallel applies
// while introspection is on). Activated by OMP4GO_METRICS=<addr> or
// Runtime.ServeMetrics.

// MetricsServer is a running introspection endpoint.
type MetricsServer struct {
	rt  *Runtime
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics starts serving the runtime's metrics and debug
// endpoints on addr (e.g. ":9090" or "127.0.0.1:0"), enabling live
// introspection as a side effect. The returned server reports its
// bound address via Addr and is shut down with Close.
func (r *Runtime) ServeMetrics(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.ensureObs()
	s := &MetricsServer{rt: r, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/omp", s.handleDebug)
	mux.HandleFunc("/debug/omp/profile", s.handleProfile)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

func (s *MetricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.rt.MetricsSnapshot()
	if err := snap.WritePrometheus(w); err != nil {
		return
	}
	// Gauges live outside the striped registry: they describe current
	// state, not accumulated events.
	idle, total := 0, 0
	if s.rt.pool != nil {
		idle, total = s.rt.pool.counts()
	}
	fmt.Fprintf(w, "# HELP omp4go_pool_workers_idle Parked pool workers available for dispatch.\n")
	fmt.Fprintf(w, "# TYPE omp4go_pool_workers_idle gauge\n")
	fmt.Fprintf(w, "omp4go_pool_workers_idle %d\n", idle)
	fmt.Fprintf(w, "# HELP omp4go_pool_workers_live Live persistent pool worker goroutines.\n")
	fmt.Fprintf(w, "# TYPE omp4go_pool_workers_live gauge\n")
	fmt.Fprintf(w, "omp4go_pool_workers_live %d\n", total)
	regions := s.rt.InflightRegions()
	fmt.Fprintf(w, "# HELP omp4go_inflight_regions Parallel regions currently executing.\n")
	fmt.Fprintf(w, "# TYPE omp4go_inflight_regions gauge\n")
	fmt.Fprintf(w, "omp4go_inflight_regions %d\n", len(regions))
	// Ready-queue depth: tasks sitting in the schedulers of in-flight
	// regions, runnable but not yet claimed. RegionInfo.QueuedTasks
	// covers every holding place — per-member deques, the steal
	// scheduler's overflow list, the list schedulers' shared queue —
	// where the per-member DequeDepth breakdown would miss the latter
	// two. Dependence-stalled tasks are not counted here (they are
	// outstanding but off the scheduler — the
	// omp4go_tasks_depend_stalled_total counter tracks how many ever
	// stalled).
	ready := 0
	for _, ri := range regions {
		ready += ri.QueuedTasks
	}
	fmt.Fprintf(w, "# HELP omp4go_ready_queue_depth Tasks queued runnable in in-flight regions' task schedulers (deques, overflow and shared lists).\n")
	fmt.Fprintf(w, "# TYPE omp4go_ready_queue_depth gauge\n")
	fmt.Fprintf(w, "omp4go_ready_queue_depth %d\n", ready)
	fmt.Fprintf(w, "# HELP omp4go_trace_dropped_events_total Trace/flight-recorder events lost to ring-buffer wrapping.\n")
	fmt.Fprintf(w, "# TYPE omp4go_trace_dropped_events_total counter\n")
	fmt.Fprintf(w, "omp4go_trace_dropped_events_total %d\n", s.rt.TraceDropped())
	// Per-state time attribution from the profiler, when enabled.
	if p := s.rt.prof.Load(); p != nil {
		fmt.Fprintf(w, "# HELP omp4go_time_seconds_total Team-thread time attributed per state and construct label.\n")
		fmt.Fprintf(w, "# TYPE omp4go_time_seconds_total counter\n")
		snap := p.Snapshot()
		_ = snap.WritePrometheus(w)
	}
}

// TraceDropped returns the total events lost to ring-buffer wrapping
// across every trace consumer: the OMP4GO_TRACE tracer, any Tracer
// attached as (or inside a Multi composition of) the event tool, and
// the flight recorder's rings. Safe with live producers.
func (r *Runtime) TraceDropped() uint64 {
	var dropped uint64
	counted := map[*ompt.Tracer]bool{}
	if tr := r.envTracer; tr != nil {
		counted[tr] = true
		dropped += tr.Dropped()
	}
	for _, t := range ompt.Tools(r.loadTool()) {
		if tr, ok := t.(*ompt.Tracer); ok && !counted[tr] {
			counted[tr] = true
			dropped += tr.Dropped()
		}
	}
	if fr := r.flight.Load(); fr != nil {
		dropped += fr.Dropped()
	}
	return dropped
}

// ProfileSnapshot returns the profiler's per-state time-attribution
// snapshot, or nil when profiling is disabled (OMP4GO_PROFILE=off).
func (r *Runtime) ProfileSnapshot() *prof.Snapshot {
	p := r.prof.Load()
	if p == nil {
		return nil
	}
	s := p.Snapshot()
	return &s
}

func (s *MetricsServer) handleProfile(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.rt.ProfileSnapshot()
	if snap == nil {
		http.Error(w, `{"error":"profiler disabled (OMP4GO_PROFILE=off)"}`, http.StatusNotFound)
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// DebugSnapshot is the /debug/omp JSON document.
type DebugSnapshot struct {
	ICVs     map[string]any   `json:"icvs"`
	Pool     *PoolDebug       `json:"pool,omitempty"`
	Regions  []RegionInfo     `json:"inflight_regions"`
	Stalls   []StallReport    `json:"stalls,omitempty"`
	Counters map[string]int64 `json:"counters"`
	Profile  *prof.Snapshot   `json:"profile,omitempty"`
}

// PoolDebug is the /debug/omp view of the persistent worker pool.
type PoolDebug struct {
	Idle int `json:"idle"`
	Live int `json:"live"`
	Max  int `json:"max"`
}

// DebugSnapshot captures the runtime state served at /debug/omp.
func (r *Runtime) DebugSnapshot() DebugSnapshot {
	d := DebugSnapshot{
		ICVs: map[string]any{
			"num_threads":       r.GetMaxThreads(),
			"dynamic":           r.GetDynamic(),
			"nested":            r.GetNested(),
			"max_active_levels": r.GetMaxActiveLevels(),
			"thread_limit":      r.GetThreadLimit(),
			"wait_policy":       r.GetWaitPolicy(),
			"schedule":          scheduleEnvString(r.GetSchedule()),
			"task_sched":        r.taskSched.String(),
			"pool":              r.PoolEnabled(),
		},
		Regions:  r.InflightRegions(),
		Stalls:   r.StallReports(),
		Counters: r.MetricsSnapshot().CounterMap(),
		Profile:  r.ProfileSnapshot(),
	}
	if r.pool != nil {
		idle, total := r.pool.counts()
		d.Pool = &PoolDebug{Idle: idle, Live: total, Max: r.pool.max}
	}
	if d.Regions == nil {
		d.Regions = []RegionInfo{}
	}
	return d
}

func (s *MetricsServer) handleDebug(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.rt.DebugSnapshot())
}
