package rt

import (
	"time"

	"github.com/omp4go/omp4go/internal/directive"
)

// This file implements the OpenMP 3.0 runtime library routines
// (omp_get_num_threads and friends). Functions that depend on the
// calling thread take a *Context; ICV accessors live on the Runtime.

// SetNumThreads sets the nthreads-var ICV (omp_set_num_threads).
func (r *Runtime) SetNumThreads(n int) {
	if n < 1 {
		return
	}
	r.icv.mu.Lock()
	r.icv.numThreads = n
	r.icv.mu.Unlock()
	r.refreshForkICV()
}

// GetMaxThreads returns the team size an encountering thread would
// get from a parallel region without a num_threads clause
// (omp_get_max_threads).
func (r *Runtime) GetMaxThreads() int {
	r.icv.mu.Lock()
	n := r.icv.numThreads
	r.icv.mu.Unlock()
	return n
}

// SetDynamic sets the dyn-var ICV (omp_set_dynamic).
func (r *Runtime) SetDynamic(v bool) {
	r.icv.mu.Lock()
	r.icv.dynamic = v
	r.icv.mu.Unlock()
}

// GetDynamic returns the dyn-var ICV (omp_get_dynamic).
func (r *Runtime) GetDynamic() bool {
	r.icv.mu.Lock()
	v := r.icv.dynamic
	r.icv.mu.Unlock()
	return v
}

// SetNested enables nested parallelism (omp_set_nested).
func (r *Runtime) SetNested(v bool) {
	r.icv.mu.Lock()
	r.icv.nested = v
	r.icv.mu.Unlock()
	r.refreshForkICV()
}

// GetNested returns the nest-var ICV (omp_get_nested).
func (r *Runtime) GetNested() bool {
	r.icv.mu.Lock()
	v := r.icv.nested
	r.icv.mu.Unlock()
	return v
}

// SetSchedule sets the run-sched-var ICV used by schedule(runtime)
// (omp_set_schedule).
func (r *Runtime) SetSchedule(s Schedule) error {
	switch s.Kind {
	case directive.ScheduleStatic, directive.ScheduleDynamic,
		directive.ScheduleGuided, directive.ScheduleAuto:
	default:
		return &MisuseError{Construct: "omp_set_schedule", Msg: "invalid schedule kind"}
	}
	if s.Chunk < 0 {
		return &MisuseError{Construct: "omp_set_schedule", Msg: "negative chunk size"}
	}
	r.icv.mu.Lock()
	r.icv.runSched = s
	r.icv.mu.Unlock()
	return nil
}

// GetSchedule returns the run-sched-var ICV (omp_get_schedule).
func (r *Runtime) GetSchedule() Schedule {
	r.icv.mu.Lock()
	s := r.icv.runSched
	r.icv.mu.Unlock()
	return s
}

// SetMaxActiveLevels sets max-active-levels-var
// (omp_set_max_active_levels).
func (r *Runtime) SetMaxActiveLevels(n int) {
	if n < 0 {
		return
	}
	r.icv.mu.Lock()
	r.icv.maxActiveLevels = n
	r.icv.mu.Unlock()
	r.refreshForkICV()
}

// GetMaxActiveLevels returns max-active-levels-var
// (omp_get_max_active_levels).
func (r *Runtime) GetMaxActiveLevels() int {
	r.icv.mu.Lock()
	n := r.icv.maxActiveLevels
	r.icv.mu.Unlock()
	return n
}

// GetWaitPolicy returns the wait-policy-var ICV ("active" or
// "passive"; the default is "passive"). The policy governs how idle
// pool workers wait for the next parallel region: "active" spins with
// scheduler-yield backoff before parking, "passive" parks at once.
func (r *Runtime) GetWaitPolicy() string {
	r.icv.mu.Lock()
	p := r.icv.waitPolicy
	r.icv.mu.Unlock()
	return waitPolicyOrDefault(p)
}

// SetWaitPolicy sets the wait-policy-var ICV without going through
// OMP_WAIT_POLICY. Accepts "active" or "passive" (any case); other
// values are rejected. Workers observe the new policy the next time
// they go idle.
func (r *Runtime) SetWaitPolicy(policy string) error {
	p, err := parseWaitPolicy(policy)
	if err != nil {
		return err
	}
	r.icv.mu.Lock()
	r.icv.waitPolicy = p
	r.icv.mu.Unlock()
	return nil
}

// GetThreadLimit returns thread-limit-var (omp_get_thread_limit).
func (r *Runtime) GetThreadLimit() int {
	r.icv.mu.Lock()
	n := r.icv.threadLimit
	r.icv.mu.Unlock()
	return n
}

// GetWTime returns elapsed wall-clock seconds from a fixed point
// (omp_get_wtime).
func (r *Runtime) GetWTime() float64 {
	return time.Since(r.epoch).Seconds()
}

// GetWTick returns the timer resolution in seconds (omp_get_wtick).
func (r *Runtime) GetWTick() float64 { return 1e-9 }

// GetNumThreads returns the size of the current team
// (omp_get_num_threads).
func (c *Context) GetNumThreads() int { return c.team.size }

// GetThreadNum returns this thread's number within the current team
// (omp_get_thread_num).
func (c *Context) GetThreadNum() int { return c.num }

// InParallel reports whether the thread executes inside an active
// (size > 1) parallel region (omp_in_parallel).
func (c *Context) InParallel() bool { return c.activeLevel > 0 }

// GetLevel returns the number of nested parallel regions enclosing
// the thread, counting serialized regions (omp_get_level).
func (c *Context) GetLevel() int { return c.level }

// GetActiveLevel returns the number of enclosing active parallel
// regions (omp_get_active_level).
func (c *Context) GetActiveLevel() int { return c.activeLevel }

// GetAncestorThreadNum returns the thread number of this thread's
// ancestor at the given nesting level, or -1 if the level is out of
// range (omp_get_ancestor_thread_num).
func (c *Context) GetAncestorThreadNum(level int) int {
	a := c.ancestorAt(level)
	if a == nil {
		return -1
	}
	return a.num
}

// GetTeamSize returns the team size at the given nesting level, or -1
// if the level is out of range (omp_get_team_size).
func (c *Context) GetTeamSize(level int) int {
	a := c.ancestorAt(level)
	if a == nil {
		return -1
	}
	return a.team.size
}

func (c *Context) ancestorAt(level int) *Context {
	if level < 0 || level > c.level {
		return nil
	}
	a := c
	for a != nil && a.level > level {
		a = a.parent
	}
	if a == nil || a.level != level {
		return nil
	}
	return a
}
