package rt

import (
	"os"

	"github.com/omp4go/omp4go/internal/ompt"
)

// This file wires the OMPT-style observability subsystem
// (internal/ompt) into the runtime. Every hook site guards on a nil
// tool so the disabled cost is one predictable branch; event
// construction and the Emit call happen only when a tool is attached.

// SetTool attaches an event tool (nil detaches). Attach before
// entering parallel regions: the field is published to team threads
// by the goroutine start that forks them, and is not synchronized
// against regions already in flight.
func (r *Runtime) SetTool(t ompt.Tool) { r.tool = t }

// Tool returns the attached event tool, or nil.
func (r *Runtime) Tool() ompt.Tool { return r.tool }

// EnvTracer returns the tracer installed by OMP4GO_TRACE, or nil when
// tracing was not activated through the environment.
func (r *Runtime) EnvTracer() *ompt.Tracer { return r.envTracer }

// FlushTrace writes the environment-activated trace (OMP4GO_TRACE=
// <file>) to its file in Chrome trace_event format. It is a no-op
// when tracing was not activated through the environment. Call after
// the traced parallel regions have completed, typically at program
// exit.
func (r *Runtime) FlushTrace() error {
	if r.envTracer == nil || r.traceFile == "" {
		return nil
	}
	f, err := os.Create(r.traceFile)
	if err != nil {
		return err
	}
	werr := r.envTracer.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// emit sends one event to the attached tool. Callers check
// c.rt.tool != nil first so the disabled path never reaches here.
func (c *Context) emit(kind ompt.EventKind, a, b, dur int64, label string) {
	t := c.rt.tool
	if t == nil {
		return
	}
	t.Emit(ompt.Record{
		Time: ompt.Now(), Kind: kind, GTID: c.gtid, Team: c.team.regionID,
		A: a, B: b, Dur: dur, Label: label,
	})
}

// CriticalEnter enters the named critical section from this thread,
// emitting an acquire event with the contention wait time when a tool
// is attached.
func (c *Context) CriticalEnter(name string) {
	r := c.rt
	if r.tool == nil {
		r.CriticalEnter(name)
		return
	}
	t0 := ompt.Now()
	r.CriticalEnter(name)
	now := ompt.Now()
	c.critT0 = append(c.critT0, now)
	c.emit(ompt.EvCriticalAcquire, 0, 0, now-t0, name)
}

// CriticalExit leaves the named critical section, emitting a release
// event with the hold duration when a tool is attached.
func (c *Context) CriticalExit(name string) {
	r := c.rt
	if r.tool != nil && len(c.critT0) > 0 {
		t0 := c.critT0[len(c.critT0)-1]
		c.critT0 = c.critT0[:len(c.critT0)-1]
		c.emit(ompt.EvCriticalRelease, 0, 0, ompt.Now()-t0, name)
	}
	r.CriticalExit(name)
}

// ReductionMerge notes that this thread merged its reduction partial
// into the shared result (the caller performs the merge itself, under
// whatever lock the construct requires). Tooling only; a no-op with
// no tool attached.
func (c *Context) ReductionMerge(ident string) {
	if c.rt.tool != nil {
		c.emit(ompt.EvReduceMerge, 0, 0, 0, ident)
	}
}
