package rt

import (
	"os"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// This file wires the OMPT-style observability subsystem
// (internal/ompt) into the runtime. Every hook site guards on a nil
// tool so the disabled cost is one predictable branch; event
// construction and the Emit call happen only when a tool is attached.

// toolBox wraps the attached tool so the runtime can publish it with
// a single atomic pointer swap (interfaces are two words and cannot
// be stored atomically without a box).
type toolBox struct{ t ompt.Tool }

// SetTool attaches an event tool (nil detaches). The attachment is
// published atomically, so it may be swapped while parallel regions
// are in flight: threads observe either the old or the new tool at
// each hook site, never a torn value. Per-region pairing (region
// begin/end, implicit task begin/end, barrier enter/exit) uses the
// tool loaded at the opening hook, so a mid-region swap never splits
// a pair across tools.
func (r *Runtime) SetTool(t ompt.Tool) {
	if t == nil {
		r.tool.Store(nil)
		return
	}
	r.tool.Store(&toolBox{t: t})
}

// Tool returns the attached event tool, or nil.
func (r *Runtime) Tool() ompt.Tool { return r.loadTool() }

// loadTool is the hot-path tool read: one atomic pointer load.
func (r *Runtime) loadTool() ompt.Tool {
	if b := r.tool.Load(); b != nil {
		return b.t
	}
	return nil
}

// EnvTracer returns the tracer installed by OMP4GO_TRACE, or nil when
// tracing was not activated through the environment.
func (r *Runtime) EnvTracer() *ompt.Tracer { return r.envTracer }

// FlushTrace writes the environment-activated trace (OMP4GO_TRACE=
// <file>) to its file in Chrome trace_event format. It is a no-op
// when tracing was not activated through the environment. Call after
// the traced parallel regions have completed, typically at program
// exit.
func (r *Runtime) FlushTrace() error {
	if r.envTracer == nil || r.traceFile == "" {
		return nil
	}
	f, err := os.Create(r.traceFile)
	if err != nil {
		return err
	}
	werr := r.envTracer.WriteChromeTrace(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// emit sends one event to the attached tool. Callers check
// loadTool() != nil first so the disabled path never reaches here.
func (c *Context) emit(kind ompt.EventKind, a, b, dur int64, label string) {
	t := c.rt.loadTool()
	if t == nil {
		return
	}
	c.emitTo(t, kind, a, b, dur, label)
}

// emitTo sends one event to an already-loaded tool; paired hook sites
// (begin/end) load once and use emitTo so both events reach the same
// tool even across a concurrent SetTool.
func (c *Context) emitTo(t ompt.Tool, kind ompt.EventKind, a, b, dur int64, label string) {
	t.Emit(ompt.Record{
		Time: ompt.Now(), Kind: kind, GTID: c.gtid, Team: c.team.regionID,
		A: a, B: b, Dur: dur, Label: label,
	})
}

// CriticalEnter enters the named critical section from this thread.
// The contention wait is metered into the always-on metrics registry
// (wait measured only when the lock is actually contended, so the
// uncontended path costs one TryLock and one clock read), and an
// acquire event is emitted when a tool is attached.
func (c *Context) CriticalEnter(name string) {
	r := c.rt
	mu := r.criticalLock(name)
	var wait int64
	if !mu.TryLock() {
		t0 := ompt.Now()
		mu.Lock()
		wait = ompt.Now() - t0
		// The histogram carries the wait-time sum; the
		// omp4go_critical_wait_ns_total counter mirrors it.
		r.metrics.Observe(c.gtid, metrics.HistCriticalWait, wait)
		if pb := c.team.profBucket; pb != nil {
			pb.Add(int32(c.num), prof.Critical, wait)
			c.profWaitNS += wait
		}
	}
	// The entry timestamp stacks for the hold-time measurement on
	// exit (critical sections of different names may nest).
	c.critT0 = append(c.critT0, ompt.Now())
	if t := r.loadTool(); t != nil {
		c.emitTo(t, ompt.EvCriticalAcquire, 0, 0, wait, name)
	}
}

// CriticalExit leaves the named critical section, metering the hold
// duration and emitting a release event when a tool is attached.
func (c *Context) CriticalExit(name string) {
	r := c.rt
	if n := len(c.critT0); n > 0 {
		t0 := c.critT0[n-1]
		c.critT0 = c.critT0[:n-1]
		hold := ompt.Now() - t0
		r.metrics.Observe(c.gtid, metrics.HistCriticalHold, hold)
		if t := r.loadTool(); t != nil {
			c.emitTo(t, ompt.EvCriticalRelease, 0, 0, hold, name)
		}
	}
	r.CriticalExit(name)
}

// ReductionMerge notes that this thread merged its reduction partial
// into the shared result (the caller performs the merge itself, under
// whatever lock the construct requires). Tooling only; a no-op with
// no tool attached.
func (c *Context) ReductionMerge(ident string) {
	if t := c.rt.loadTool(); t != nil {
		c.emitTo(t, ompt.EvReduceMerge, 0, 0, 0, ident)
	}
}
