package rt

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
)

// bothScheds names the two task schedulers every dependence test runs
// under: results must not depend on which one executes the DAG.
var bothScheds = []schedMode{schedSteal, schedList}

// inSingle runs body on the single winning thread of a 4-thread team.
func inSingle(t *testing.T, r *Runtime, body func(c *Context) error) error {
	t.Helper()
	return r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		var berr error
		if s.Executes() {
			berr = body(c)
		}
		if _, err := s.End(); err != nil {
			return err
		}
		return berr
	})
}

// TestDependChainSerializes submits an inout chain on one key and
// appends to an unsynchronized slice: only strict serialization in
// submission order makes the result (and the race detector) happy.
func TestDependChainSerializes(t *testing.T) {
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			const n = 32
			var order []int // no lock: the dep chain is the serialization
			err := inSingle(t, r, func(c *Context) error {
				for i := 0; i < n; i++ {
					i := i
					if err := c.SubmitTask(TaskOpts{Depends: InOut("x")}, func(*Context) error {
						order = append(order, i)
						return nil
					}); err != nil {
						return err
					}
				}
				return c.TaskWait()
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", l, sched, err)
			}
			if len(order) != n {
				t.Fatalf("%v/%s: %d tasks ran, want %d", l, sched, len(order), n)
			}
			for i, v := range order {
				if v != i {
					t.Fatalf("%v/%s: order[%d] = %d, dependence chain not serialized: %v",
						l, sched, i, v, order)
				}
			}
		}
	}
}

// TestDependOutInOut checks all three edge rules on one key:
// out→in (readers wait for the writer), readers run concurrently,
// in→out (the next writer waits for every reader), out→out implied
// transitively.
func TestDependOutInOut(t *testing.T) {
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			const readers = 8
			var wrote atomic.Bool
			var readsDone atomic.Int32
			var orderOK atomic.Bool
			orderOK.Store(true)
			err := inSingle(t, r, func(c *Context) error {
				if err := c.SubmitTask(TaskOpts{Depends: Out("a")}, func(*Context) error {
					wrote.Store(true)
					return nil
				}); err != nil {
					return err
				}
				for i := 0; i < readers; i++ {
					if err := c.SubmitTask(TaskOpts{Depends: In("a")}, func(*Context) error {
						if !wrote.Load() {
							orderOK.Store(false) // out→in violated
						}
						readsDone.Add(1)
						return nil
					}); err != nil {
						return err
					}
				}
				if err := c.SubmitTask(TaskOpts{Depends: Out("a")}, func(*Context) error {
					if readsDone.Load() != readers {
						orderOK.Store(false) // in→out violated
					}
					return nil
				}); err != nil {
					return err
				}
				return c.TaskWait()
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", l, sched, err)
			}
			if !orderOK.Load() {
				t.Fatalf("%v/%s: dependence ordering violated", l, sched)
			}
			if readsDone.Load() != readers {
				t.Fatalf("%v/%s: %d readers ran, want %d", l, sched, readsDone.Load(), readers)
			}
		}
	}
}

// TestDependUndeferredWaits: an if(false) task with an in dependence
// must not run before the deferred writer it depends on.
func TestDependUndeferredWaits(t *testing.T) {
	for _, sched := range bothScheds {
		r := newSchedRuntime(LayerAtomic, sched)
		var wrote atomic.Bool
		sawWrite := false
		err := inSingle(t, r, func(c *Context) error {
			if err := c.SubmitTask(TaskOpts{Depends: Out("k")}, func(*Context) error {
				wrote.Store(true)
				return nil
			}); err != nil {
				return err
			}
			if err := c.SubmitTask(TaskOpts{IfSet: true, If: false, Depends: In("k")},
				func(*Context) error {
					sawWrite = wrote.Load()
					return nil
				}); err != nil {
				return err
			}
			return c.TaskWait()
		})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !sawWrite {
			t.Fatalf("%s: undeferred dependent task ran before its predecessor", sched)
		}
	}
}

// TestDependStallCountersAndEvents: tasks held behind a blocked
// predecessor bump the stall counter, and their release emits both
// the released counter and the EvTaskDependResolved event.
func TestDependStallCountersAndEvents(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	rec := &recordingTool{}
	r.SetTool(rec)
	gate := make(chan struct{})
	err := inSingle(t, r, func(c *Context) error {
		if err := c.SubmitTask(TaskOpts{Depends: Out("g")}, func(*Context) error {
			<-gate
			return nil
		}); err != nil {
			return err
		}
		// Submitted while the writer is (or will be) pending: each is
		// gated behind it.
		for i := 0; i < 4; i++ {
			if err := c.SubmitTask(TaskOpts{Depends: In("g")}, func(*Context) error {
				return nil
			}); err != nil {
				return err
			}
		}
		close(gate)
		return c.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	cm := r.MetricsSnapshot().CounterMap()
	if cm["omp4go_tasks_depend_stalled_total"] == 0 {
		t.Error("no dependence stalls counted")
	}
	if cm["omp4go_tasks_depend_released_total"] == 0 {
		t.Error("no dependence releases counted")
	}
	resolved := 0
	rec.mu.Lock()
	for _, rr := range rec.recs {
		if rr.Kind == ompt.EvTaskDependResolved {
			resolved++
		}
	}
	rec.mu.Unlock()
	if resolved == 0 {
		t.Error("no EvTaskDependResolved events emitted")
	}
}

// TestTaskgroupWaitsForDescendants: taskgroup-end waits for the whole
// subtree, unlike taskwait's direct-children-only scope.
func TestTaskgroupWaitsForDescendants(t *testing.T) {
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			var done atomic.Int32
			const kids = 6
			err := inSingle(t, r, func(c *Context) error {
				c.TaskgroupBegin()
				if err := c.SubmitTask(TaskOpts{}, func(cc *Context) error {
					for i := 0; i < kids; i++ {
						if err := cc.SubmitTask(TaskOpts{}, func(*Context) error {
							done.Add(1) // grandchild of the group's creator
							return nil
						}); err != nil {
							return err
						}
					}
					return nil // no taskwait: children outlive this task
				}); err != nil {
					return err
				}
				if err := c.TaskgroupEnd(); err != nil {
					return err
				}
				if got := done.Load(); got != kids {
					t.Errorf("%v/%s: taskgroup end returned with %d/%d descendants done",
						l, sched, got, kids)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", l, sched, err)
			}
		}
	}
}

// TestTaskgroupCancelSkipsPending: cancelling a group prevents its
// not-yet-started tasks from running their bodies. The pending tasks
// are parked behind a blocked dependence chain, so cancellation
// observably beats them to the scheduler.
func TestTaskgroupCancelSkipsPending(t *testing.T) {
	for _, sched := range bothScheds {
		r := newSchedRuntime(LayerAtomic, sched)
		const gated = 20
		var ran atomic.Int32
		gate := make(chan struct{})
		started := make(chan struct{})
		err := inSingle(t, r, func(c *Context) error {
			c.TaskgroupBegin()
			if err := c.SubmitTask(TaskOpts{Depends: Out("c")}, func(*Context) error {
				ran.Add(1)
				close(started)
				<-gate
				return nil
			}); err != nil {
				return err
			}
			for i := 0; i < gated; i++ {
				if err := c.SubmitTask(TaskOpts{Depends: InOut("c")}, func(*Context) error {
					ran.Add(1)
					return nil
				}); err != nil {
					return err
				}
			}
			// A teammate draining tasks at the single-end barrier picks
			// up the writer; wait until its body is running so exactly
			// one task observably precedes the cancellation.
			<-started
			if !c.TaskgroupCancel() {
				t.Error("TaskgroupCancel reported no active group")
			}
			close(gate)
			return c.TaskgroupEnd()
		})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if got := ran.Load(); got != 1 {
			t.Fatalf("%s: %d task bodies ran after cancellation, want 1 (the already-started task)",
				sched, got)
		}
		if got := r.MetricsSnapshot().CounterMap()["omp4go_tasks_cancelled_total"]; got != gated {
			t.Fatalf("%s: cancelled counter %d, want %d", sched, got, gated)
		}
	}
}

// TestTaskgroupEndReturnsErrors: failures inside the group surface at
// the group's end, not at the region join.
func TestTaskgroupEndReturnsErrors(t *testing.T) {
	sentinel := errors.New("task boom")
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		var groupErr error
		err := inSingle(t, r, func(c *Context) error {
			c.TaskgroupBegin()
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				return sentinel
			}); err != nil {
				return err
			}
			groupErr = c.TaskgroupEnd()
			return nil
		})
		if err != nil {
			t.Fatalf("%v: region error %v, want nil (error consumed at taskgroup end)", l, err)
		}
		if !errors.Is(groupErr, sentinel) {
			t.Fatalf("%v: taskgroup end returned %v, want %v", l, groupErr, sentinel)
		}
	}
}

// TestTaskgroupEndWithoutBegin is a misuse, not a hang.
func TestTaskgroupEndWithoutBegin(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	err := inSingle(t, r, func(c *Context) error {
		return c.TaskgroupEnd()
	})
	var me *MisuseError
	if !errors.As(err, &me) {
		t.Fatalf("taskgroup end without begin returned %v, want MisuseError", err)
	}
}

// TestTaskgroupEventsEmitted: begin/end appear in the trace stream.
func TestTaskgroupEventsEmitted(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	rec := &recordingTool{}
	r.SetTool(rec)
	err := inSingle(t, r, func(c *Context) error {
		c.TaskgroupBegin()
		if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
			return err
		}
		return c.TaskgroupEnd()
	})
	if err != nil {
		t.Fatal(err)
	}
	var begin, end int
	rec.mu.Lock()
	for _, rr := range rec.recs {
		switch rr.Kind {
		case ompt.EvTaskgroupBegin:
			begin++
		case ompt.EvTaskgroupEnd:
			end++
		}
	}
	rec.mu.Unlock()
	if begin != 1 || end != 1 {
		t.Fatalf("taskgroup events begin=%d end=%d, want 1/1", begin, end)
	}
	if got := r.MetricsSnapshot().Counter(metrics.Taskgroups); got != 1 {
		t.Fatalf("taskgroup counter %d, want 1", got)
	}
}

// TestTaskLoopCoverage: every chunking mode visits each iteration
// exactly once.
func TestTaskLoopCoverage(t *testing.T) {
	cases := []struct {
		name string
		opts TaskLoopOpts
	}{
		{"default", TaskLoopOpts{}},
		{"grainsize", TaskLoopOpts{Grainsize: 10}},
		{"num_tasks", TaskLoopOpts{NumTasks: 7}},
	}
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			for _, tc := range cases {
				r := newSchedRuntime(l, sched)
				const total = 101
				var visits [total]atomic.Int32
				b := ForBounds(Triplet{Start: 0, End: total, Step: 1})
				err := inSingle(t, r, func(c *Context) error {
					return c.TaskLoop(b, tc.opts, func(_ *Context, lo, hi int64) error {
						for i := lo; i < hi; i++ {
							visits[i].Add(1)
						}
						return nil
					})
				})
				if err != nil {
					t.Fatalf("%v/%s/%s: %v", l, sched, tc.name, err)
				}
				for i := range visits {
					if n := visits[i].Load(); n != 1 {
						t.Fatalf("%v/%s/%s: iteration %d visited %d times", l, sched, tc.name, i, n)
					}
				}
			}
		}
	}
}

// TestTaskLoopNumTasksChunkCount: num_tasks produces exactly that
// many chunk tasks.
func TestTaskLoopNumTasksChunkCount(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	var chunks atomic.Int32
	b := ForBounds(Triplet{Start: 0, End: 100, Step: 1})
	err := inSingle(t, r, func(c *Context) error {
		return c.TaskLoop(b, TaskLoopOpts{NumTasks: 7}, func(_ *Context, lo, hi int64) error {
			chunks.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := chunks.Load(); got != 7 {
		t.Fatalf("num_tasks(7) produced %d chunks", got)
	}
}

// TestTaskLoopGrainsizeNumTasksExclusive: the runtime rejects the
// clause combination the spec forbids.
func TestTaskLoopGrainsizeNumTasksExclusive(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	b := ForBounds(Triplet{Start: 0, End: 10, Step: 1})
	err := inSingle(t, r, func(c *Context) error {
		return c.TaskLoop(b, TaskLoopOpts{Grainsize: 2, NumTasks: 2},
			func(_ *Context, lo, hi int64) error { return nil })
	})
	var me *MisuseError
	if !errors.As(err, &me) {
		t.Fatalf("grainsize+num_tasks returned %v, want MisuseError", err)
	}
}

// TestTaskLoopNoGroup: without the implicit taskgroup, completion is
// observed by the next taskwait (chunks are children of the
// generating task).
func TestTaskLoopNoGroup(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	const total = 64
	var visited atomic.Int32
	b := ForBounds(Triplet{Start: 0, End: total, Step: 1})
	err := inSingle(t, r, func(c *Context) error {
		if err := c.TaskLoop(b, TaskLoopOpts{NoGroup: true, Grainsize: 8},
			func(_ *Context, lo, hi int64) error {
				visited.Add(int32(hi - lo))
				return nil
			}); err != nil {
			return err
		}
		if err := c.TaskWait(); err != nil {
			return err
		}
		if got := visited.Load(); got != total {
			t.Errorf("after taskwait %d/%d iterations done", got, total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTaskLoopErrorSurfaces: a failing chunk surfaces through the
// construct's implicit taskgroup.
func TestTaskLoopErrorSurfaces(t *testing.T) {
	sentinel := errors.New("chunk boom")
	r := newTestRuntime(LayerAtomic)
	b := ForBounds(Triplet{Start: 0, End: 40, Step: 1})
	var loopErr error
	err := inSingle(t, r, func(c *Context) error {
		loopErr = c.TaskLoop(b, TaskLoopOpts{NumTasks: 4}, func(_ *Context, lo, hi int64) error {
			if lo == 0 {
				return sentinel
			}
			return nil
		})
		return nil
	})
	if err != nil {
		t.Fatalf("region error %v, want nil", err)
	}
	if !errors.Is(loopErr, sentinel) {
		t.Fatalf("taskloop returned %v, want %v", loopErr, sentinel)
	}
}

// wavefront runs the blocked wavefront recurrence under one scheduler
// and returns the result grid. Cell (i,j) depends on (i-1,j) and
// (i,j-1); the dependence graph fixes every operand, so any correct
// schedule produces bit-identical floats.
func wavefront(t *testing.T, sched schedMode, n int) []float64 {
	t.Helper()
	r := newSchedRuntime(LayerAtomic, sched)
	grid := make([]float64, n*n)
	err := inSingle(t, r, func(c *Context) error {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				i, j := i, j
				deps := Out([2]int{i, j})
				if i > 0 {
					deps = append(deps, In([2]int{i - 1, j})...)
				}
				if j > 0 {
					deps = append(deps, In([2]int{i, j - 1})...)
				}
				if err := c.SubmitTask(TaskOpts{Depends: deps}, func(*Context) error {
					up, left := 1.0, 1.0
					if i > 0 {
						up = grid[(i-1)*n+j]
					}
					if j > 0 {
						left = grid[i*n+j-1]
					}
					// Non-associative float work: any mis-ordered or
					// racing execution perturbs the bits.
					grid[i*n+j] = math.Sqrt(up*1.25+left/3.0) + up/7.0
					return nil
				}); err != nil {
					return err
				}
			}
		}
		return c.TaskWait()
	})
	if err != nil {
		t.Fatalf("%s: %v", sched, err)
	}
	return grid
}

// TestWavefrontDifferential: the wavefront result is bit-identical
// between the list and stealing schedulers (ISSUE acceptance).
func TestWavefrontDifferential(t *testing.T) {
	const n = 12
	steal := wavefront(t, schedSteal, n)
	list := wavefront(t, schedList, n)
	for k := range steal {
		if math.Float64bits(steal[k]) != math.Float64bits(list[k]) {
			t.Fatalf("cell %d differs: steal %v (%#x) list %v (%#x)", k,
				steal[k], math.Float64bits(steal[k]),
				list[k], math.Float64bits(list[k]))
		}
	}
	if steal[0] == 0 {
		t.Fatal("wavefront produced zero grid")
	}
}

// TestDependEdgeRegistrationRace: a predecessor completing on a
// teammate thread in the middle of its successor's dependence
// registration must not release the successor early. The edge must be
// counted on the successor before it is published into the
// predecessor's successor list; with the orders swapped, a completion
// landing in that window consumes the submission hold, runs the
// dependent before its remaining predecessors finish, and
// double-submits it (which corrupts the list schedulers' queue). Fast
// writers and a two-key dependent, repeated, make the window hittable.
func TestDependEdgeRegistrationRace(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive stress test")
	}
	const writers = 8
	const rounds = 1500
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			err := inSingle(t, r, func(c *Context) error {
				for i := 0; i < rounds; i++ {
					var done [writers]atomic.Bool
					var ordered atomic.Bool
					ordered.Store(true)
					// Trivial writers: teammates draining the single-end
					// barrier complete them while the dependent's edge
					// loop is still registering, one edge per writer.
					deps := make([]Dep, 0, writers)
					for w := 0; w < writers; w++ {
						w := w
						key := [3]int{i, w, 0}
						deps = append(deps, In(key)...)
						if err := c.SubmitTask(TaskOpts{Depends: Out(key)}, func(*Context) error {
							done[w].Store(true)
							return nil
						}); err != nil {
							return err
						}
					}
					if err := c.SubmitTask(TaskOpts{Depends: deps}, func(*Context) error {
						for w := range done {
							if !done[w].Load() {
								ordered.Store(false)
							}
						}
						return nil
					}); err != nil {
						return err
					}
					if err := c.TaskWait(); err != nil {
						return err
					}
					if !ordered.Load() {
						return fmt.Errorf("round %d: dependent ran before all %d writers", i, writers)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", l, sched, err)
			}
		}
	}
}

// TestDependEdgePublishWindow drives the addDepEdge interleaving
// deterministically via the test hook: the predecessor's successor
// list is drained (as a completion on a teammate would) in the window
// between the edge being counted on the successor and published on
// the predecessor. The edge is counted first precisely so this window
// is safe: the drain must not consume the submission hold, and the
// dependent must reach the scheduler exactly once — with the orders
// swapped, the drain decremented an unpublished-but-uncounted edge's
// hold and the task was submitted twice.
func TestDependEdgePublishWindow(t *testing.T) {
	for _, sched := range bothScheds {
		r := newSchedRuntime(LayerAtomic, sched)
		err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 1}, func(c *Context) error {
			// One-thread team: the writer stays queued (nobody claims
			// it), so it is still a live predecessor when the dependent
			// registers its edge.
			if err := c.SubmitTask(TaskOpts{Depends: Out("w")}, func(*Context) error {
				return nil
			}); err != nil {
				return err
			}
			fired := 0
			depEdgePublishHook = func(pred, _ *task) {
				if fired++; fired > 1 {
					return
				}
				c.team.releaseSuccessors(c, pred)
			}
			defer func() { depEdgePublishHook = nil }()
			ran := 0
			if err := c.SubmitTask(TaskOpts{Depends: In("w")}, func(*Context) error {
				ran++
				return nil
			}); err != nil {
				return err
			}
			if fired == 0 {
				t.Errorf("%s: publish-window hook never fired", sched)
			}
			// Exactly two submissions: the writer and the dependent once
			// each. A consumed hold double-submits the dependent (3).
			if got := c.team.sched.runnable(); got != 2 {
				t.Errorf("%s: %d tasks queued after the window, want 2", sched, got)
			}
			if err := c.TaskWait(); err != nil {
				return err
			}
			if ran != 1 {
				t.Errorf("%s: dependent ran %d times, want 1", sched, ran)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
	}
}

// TestTaskgroupPendingDropsAfterErrorParked pins the ordering of
// runClaimed's completion defer via the test hook: at the first
// instant a failing task has left its taskgroups' pending counts —
// when a TaskgroupEnd may observe the group drained and immediately
// drain childErrs — its error must already be parked on the
// collecting ancestor. With the orders swapped, TaskgroupEnd could
// return nil for a group containing a failed task, deferring the
// error to a later scheduling point.
func TestTaskgroupPendingDropsAfterErrorParked(t *testing.T) {
	sentinel := errors.New("group boom")
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 1}, func(c *Context) error {
			c.TaskgroupBegin()
			parent := c.curTask
			fired, parked := false, false
			taskPendingDropHook = func(tk *task) {
				if tk.err == nil {
					return
				}
				fired = true
				parent.childErrMu.Lock()
				parked = len(parent.childErrs) > 0
				parent.childErrMu.Unlock()
			}
			defer func() { taskPendingDropHook = nil }()
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				return sentinel
			}); err != nil {
				return err
			}
			gerr := c.TaskgroupEnd()
			if !fired {
				t.Errorf("%v: completion hook never fired for the failing task", l)
			}
			if !parked {
				t.Errorf("%v: taskgroup pending dropped before the error was parked", l)
			}
			if !errors.Is(gerr, sentinel) {
				t.Errorf("%v: taskgroup end returned %v, want %v", l, gerr, sentinel)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: region returned %v, want nil (error consumed at taskgroup end)", l, err)
		}
	}
}

// TestTaskgroupEndErrorNeverDeferred exercises the same ordering
// under real concurrency: failing tasks completing on teammates while
// the group-ending thread spins through its claim loop must surface
// their error at that group's end in every round, never deferred to
// the region join.
func TestTaskgroupEndErrorNeverDeferred(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive stress test")
	}
	sentinel := errors.New("group boom")
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			const rounds = 300
			err := inSingle(t, r, func(c *Context) error {
				for i := 0; i < rounds; i++ {
					c.TaskgroupBegin()
					// The failing task goes in first — the oldest entry
					// is what teammates steal (or scan to) — and spins a
					// little so it tends to finish last, while the
					// ending thread churns through the noise tasks.
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
						for spin := 0; spin < (i%16)*32; spin++ {
							_ = atomic.LoadInt32(new(int32))
						}
						return sentinel
					}); err != nil {
						return err
					}
					for n := 0; n < 6; n++ {
						if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
							return nil
						}); err != nil {
							return err
						}
					}
					if gerr := c.TaskgroupEnd(); !errors.Is(gerr, sentinel) {
						return fmt.Errorf("round %d: taskgroup end returned %v, want %v",
							i, gerr, sentinel)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", l, sched, err)
			}
		}
	}
}

// TestDependDisjointKeysNoEdges: tasks on disjoint keys never stall
// on each other — the tracker adds no spurious dependence edges.
func TestDependDisjointKeysNoEdges(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	var ran atomic.Int32
	err := inSingle(t, r, func(c *Context) error {
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("k%d", i)
			if err := c.SubmitTask(TaskOpts{Depends: InOut(key)}, func(*Context) error {
				ran.Add(1)
				return nil
			}); err != nil {
				return err
			}
		}
		return c.TaskWait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 16 {
		t.Fatalf("%d tasks ran, want 16", ran.Load())
	}
	cm := r.MetricsSnapshot().CounterMap()
	if got := cm["omp4go_tasks_depend_stalled_total"]; got != 0 {
		t.Fatalf("disjoint keys produced %d dependence stalls, want 0", got)
	}
}
