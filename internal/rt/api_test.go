package rt

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/directive"
)

func TestICVDefaultsAndSetters(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	if r.GetMaxThreads() < 1 {
		t.Fatal("default max threads < 1")
	}
	r.SetNumThreads(7)
	if r.GetMaxThreads() != 7 {
		t.Fatalf("max threads = %d", r.GetMaxThreads())
	}
	r.SetNumThreads(0) // ignored
	if r.GetMaxThreads() != 7 {
		t.Fatal("SetNumThreads(0) should be ignored")
	}
	if r.GetDynamic() {
		t.Fatal("dynamic default should be false")
	}
	r.SetDynamic(true)
	if !r.GetDynamic() {
		t.Fatal("SetDynamic lost")
	}
	if r.GetNested() {
		t.Fatal("nested default should be false")
	}
	r.SetNested(true)
	if !r.GetNested() {
		t.Fatal("SetNested lost")
	}
	r.SetMaxActiveLevels(3)
	if r.GetMaxActiveLevels() != 3 {
		t.Fatal("SetMaxActiveLevels lost")
	}
}

func TestSetScheduleValidation(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	if err := r.SetSchedule(Schedule{Kind: directive.ScheduleDynamic, Chunk: 8}); err != nil {
		t.Fatal(err)
	}
	s := r.GetSchedule()
	if s.Kind != directive.ScheduleDynamic || s.Chunk != 8 {
		t.Fatalf("schedule = %+v", s)
	}
	if err := r.SetSchedule(Schedule{Kind: directive.ScheduleRuntime}); err == nil {
		t.Fatal("schedule(runtime) as run-sched-var should be rejected")
	}
	if err := r.SetSchedule(Schedule{Kind: directive.ScheduleStatic, Chunk: -1}); err == nil {
		t.Fatal("negative chunk should be rejected")
	}
}

func TestEnvICVs(t *testing.T) {
	env := map[string]string{
		"OMP_NUM_THREADS":       "6,2",
		"OMP_SCHEDULE":          "guided,16",
		"OMP_DYNAMIC":           "true",
		"OMP_NESTED":            "1",
		"OMP_THREAD_LIMIT":      "64",
		"OMP_MAX_ACTIVE_LEVELS": "4",
	}
	r := NewWithEnv(LayerAtomic, func(k string) string { return env[k] })
	if r.GetMaxThreads() != 6 {
		t.Fatalf("OMP_NUM_THREADS: %d", r.GetMaxThreads())
	}
	if s := r.GetSchedule(); s.Kind != directive.ScheduleGuided || s.Chunk != 16 {
		t.Fatalf("OMP_SCHEDULE: %+v", s)
	}
	if !r.GetDynamic() || !r.GetNested() {
		t.Fatal("OMP_DYNAMIC/OMP_NESTED not applied")
	}
	if r.GetThreadLimit() != 64 {
		t.Fatalf("OMP_THREAD_LIMIT: %d", r.GetThreadLimit())
	}
	if r.GetMaxActiveLevels() != 4 {
		t.Fatalf("OMP_MAX_ACTIVE_LEVELS: %d", r.GetMaxActiveLevels())
	}
}

func TestEnvInvalidValuesIgnored(t *testing.T) {
	env := map[string]string{
		"OMP_NUM_THREADS": "zero",
		"OMP_SCHEDULE":    "sideways,3",
		"OMP_DYNAMIC":     "maybe",
	}
	r := NewWithEnv(LayerAtomic, func(k string) string { return env[k] })
	if r.GetMaxThreads() < 1 {
		t.Fatal("invalid OMP_NUM_THREADS should leave the default")
	}
	if s := r.GetSchedule(); s.Kind != directive.ScheduleStatic {
		t.Fatalf("invalid OMP_SCHEDULE should leave static, got %+v", s)
	}
	if r.GetDynamic() {
		t.Fatal("OMP_DYNAMIC=maybe should be false")
	}
}

func TestParseScheduleEnv(t *testing.T) {
	s, err := ParseScheduleEnv("dynamic,4")
	if err != nil || s.Kind != directive.ScheduleDynamic || s.Chunk != 4 {
		t.Fatalf("got %+v, %v", s, err)
	}
	if _, err := ParseScheduleEnv("dynamic,-4"); err == nil {
		t.Fatal("negative chunk accepted")
	}
	if _, err := ParseScheduleEnv("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestWTime(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	t0 := r.GetWTime()
	time.Sleep(5 * time.Millisecond)
	t1 := r.GetWTime()
	if t1 <= t0 {
		t.Fatalf("wtime not monotonic: %f then %f", t0, t1)
	}
	if r.GetWTick() <= 0 {
		t.Fatal("wtick must be positive")
	}
}

func TestSimpleLock(t *testing.T) {
	var l Lock
	l.Set()
	if l.Test() {
		t.Fatal("Test acquired a held lock")
	}
	if err := l.Unset(); err != nil {
		t.Fatal(err)
	}
	if !l.Test() {
		t.Fatal("Test failed on a free lock")
	}
	if err := l.Unset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Unset(); err == nil {
		t.Fatal("unset of unheld lock should error")
	}
}

func TestSimpleLockMutualExclusion(t *testing.T) {
	var l Lock
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Set()
				counter++
				if err := l.Unset(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (lost updates)", counter)
	}
}

func TestNestLock(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	var n NestLock
	n.Set(ctx)
	n.Set(ctx) // re-entrant for the owner
	if got := n.Test(ctx); got != 3 {
		t.Fatalf("Test by owner = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if err := n.Unset(ctx); err != nil {
			t.Fatal(err)
		}
	}
	other := r.NewContext()
	if got := n.Test(other); got != 1 {
		t.Fatalf("Test by other after release = %d, want 1", got)
	}
	if err := n.Unset(ctx); err == nil {
		t.Fatal("unset by non-owner should error")
	}
	if err := n.Unset(other); err != nil {
		t.Fatal(err)
	}
}

func TestNestLockBlocksOtherContexts(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	a := r.NewContext()
	b := r.NewContext()
	var n NestLock
	n.Set(a)
	if got := n.Test(b); got != 0 {
		t.Fatalf("Test by non-owner while held = %d, want 0", got)
	}
	if err := n.Unset(a); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalSectionsExclude(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	counter := 0
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 8}, func(c *Context) error {
		for i := 0; i < 1000; i++ {
			r.CriticalEnter("sum")
			counter++
			r.CriticalExit("sum")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestNamedCriticalsAreIndependent(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	r.CriticalEnter("a")
	// A different name must not block.
	done := make(chan struct{})
	go func() {
		r.CriticalEnter("b")
		r.CriticalExit("b")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("critical(b) blocked by critical(a)")
	}
	r.CriticalExit("a")
}

func TestAtomicUpdate(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	cells := make([]int, 4)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 8}, func(c *Context) error {
		for i := 0; i < 1000; i++ {
			id := uint64(i % len(cells))
			r.AtomicUpdate(id, func() { cells[id]++ })
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range cells {
		if v != 2000 {
			t.Fatalf("cell %d = %d, want 2000", i, v)
		}
	}
}

func TestDeclaredReductions(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	red := &DeclaredReduction{
		Ident:    "strcat",
		Combine:  func(out, in any) any { return out.(string) + in.(string) },
		Identity: func() any { return "" },
	}
	if err := r.RegisterReduction(red); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterReduction(red); err == nil {
		t.Fatal("redeclaration should error")
	}
	got, ok := r.LookupReduction("strcat")
	if !ok || got.Combine("a", "b") != "ab" {
		t.Fatalf("lookup failed: %v %v", got, ok)
	}
	if _, ok := r.LookupReduction("nope"); ok {
		t.Fatal("unknown reduction found")
	}
	var me *MisuseError
	if err := r.RegisterReduction(&DeclaredReduction{}); !errors.As(err, &me) {
		t.Fatalf("incomplete declaration error = %v", err)
	}
}

func TestBuiltinReductionOps(t *testing.T) {
	intCases := []struct {
		op      string
		a, b, w int64
	}{
		{"+", 3, 4, 7}, {"*", 3, 4, 12}, {"-", 3, 4, 7},
		{"&", 0b1100, 0b1010, 0b1000}, {"|", 0b1100, 0b1010, 0b1110},
		{"^", 0b1100, 0b1010, 0b0110},
		{"&&", 1, 1, 1}, {"&&", 1, 0, 0}, {"||", 0, 0, 0}, {"||", 0, 5, 1},
		{"min", 3, -4, -4}, {"max", 3, -4, 3},
	}
	for _, tc := range intCases {
		got, err := ReduceInt(tc.op, tc.a, tc.b)
		if err != nil || got != tc.w {
			t.Errorf("ReduceInt(%q, %d, %d) = %d, %v; want %d", tc.op, tc.a, tc.b, got, err, tc.w)
		}
	}
	if _, err := ReduceInt("%%", 1, 2); err == nil {
		t.Error("unknown int op accepted")
	}
	floatCases := []struct {
		op      string
		a, b, w float64
	}{
		{"+", 1.5, 2.5, 4}, {"*", 2, 3.5, 7}, {"-", 1.5, 2.5, 4},
		{"min", 2, -3, -3}, {"max", 2, -3, 2},
	}
	for _, tc := range floatCases {
		got, err := ReduceFloat(tc.op, tc.a, tc.b)
		if err != nil || got != tc.w {
			t.Errorf("ReduceFloat(%q, %g, %g) = %g, %v; want %g", tc.op, tc.a, tc.b, got, err, tc.w)
		}
	}
	if _, err := ReduceFloat("&", 1, 2); err == nil {
		t.Error("bitwise float op accepted")
	}
}

func TestReductionIdentities(t *testing.T) {
	for _, op := range []string{"+", "*", "-", "&", "|", "^", "&&", "||", "min", "max"} {
		id, err := IntIdentity(op)
		if err != nil {
			t.Fatalf("IntIdentity(%q): %v", op, err)
		}
		for _, v := range []int64{-17, 0, 5, 1 << 40} {
			got, err := ReduceInt(op, id, v)
			if err != nil {
				t.Fatal(err)
			}
			want := v
			if op == "&&" || op == "||" {
				// Logical ops normalize to 0/1.
				if v != 0 {
					want = 1
				} else {
					want = 0
				}
			}
			if got != want {
				t.Errorf("op %q: identity⊕%d = %d, want %d", op, v, got, want)
			}
		}
	}
	for _, op := range []string{"+", "*", "-", "min", "max"} {
		id, err := FloatIdentity(op)
		if err != nil {
			t.Fatalf("FloatIdentity(%q): %v", op, err)
		}
		for _, v := range []float64{-2.5, 0, 3.75} {
			got, err := ReduceFloat(op, id, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != v {
				t.Errorf("op %q: identity⊕%g = %g", op, v, got)
			}
		}
	}
}
