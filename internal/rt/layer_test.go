package rt

import (
	"sync"
	"testing"
	"time"
)

var bothLayers = []Layer{LayerMutex, LayerAtomic}

func TestLayerString(t *testing.T) {
	if LayerMutex.String() != "mutex" || LayerAtomic.String() != "atomic" {
		t.Fatalf("layer names: %s %s", LayerMutex, LayerAtomic)
	}
}

func TestCounterBasics(t *testing.T) {
	for _, l := range bothLayers {
		c := NewCounter(l)
		if c.Load() != 0 {
			t.Fatalf("%v: initial value %d", l, c.Load())
		}
		if got := c.Add(5); got != 5 {
			t.Fatalf("%v: Add returned %d", l, got)
		}
		if got := c.Add(-2); got != 3 {
			t.Fatalf("%v: Add returned %d", l, got)
		}
		c.Store(10)
		if c.Load() != 10 {
			t.Fatalf("%v: Store/Load mismatch", l)
		}
		if !c.CompareAndSwap(10, 20) {
			t.Fatalf("%v: CAS should succeed", l)
		}
		if c.CompareAndSwap(10, 30) {
			t.Fatalf("%v: CAS should fail", l)
		}
		if c.Load() != 20 {
			t.Fatalf("%v: value after CAS = %d", l, c.Load())
		}
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	const workers = 8
	const per = 10000
	for _, l := range bothLayers {
		c := NewCounter(l)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < per; j++ {
					c.Add(1)
				}
			}()
		}
		wg.Wait()
		if got := c.Load(); got != workers*per {
			t.Fatalf("%v: lost updates, got %d want %d", l, got, workers*per)
		}
	}
}

func TestCounterConcurrentCAS(t *testing.T) {
	// Exactly one CAS from the same old value may win.
	for _, l := range bothLayers {
		c := NewCounter(l)
		wins := NewCounter(LayerAtomic)
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(v int64) {
				defer wg.Done()
				if c.CompareAndSwap(0, v+1) {
					wins.Add(1)
				}
			}(int64(i))
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("%v: %d CAS winners, want 1", l, wins.Load())
		}
	}
}

func TestEventSetWait(t *testing.T) {
	for _, l := range bothLayers {
		e := NewEvent(l)
		if e.IsSet() {
			t.Fatalf("%v: new event is set", l)
		}
		done := make(chan struct{})
		go func() {
			e.Wait()
			close(done)
		}()
		time.Sleep(time.Millisecond)
		select {
		case <-done:
			t.Fatalf("%v: Wait returned before Set", l)
		default:
		}
		e.Set()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("%v: Wait did not return after Set", l)
		}
		if !e.IsSet() {
			t.Fatalf("%v: IsSet false after Set", l)
		}
		// Wait on a set event returns immediately.
		e.Wait()
	}
}

func TestEventClearReuse(t *testing.T) {
	for _, l := range bothLayers {
		e := NewEvent(l)
		e.Set()
		e.Clear()
		if e.IsSet() {
			t.Fatalf("%v: set after Clear", l)
		}
		done := make(chan struct{})
		go func() {
			e.Wait()
			close(done)
		}()
		time.Sleep(time.Millisecond)
		e.Set()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("%v: Wait after Clear/Set did not return", l)
		}
	}
}

func TestEventManyWaiters(t *testing.T) {
	for _, l := range bothLayers {
		e := NewEvent(l)
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.Wait()
			}()
		}
		e.Set()
		ok := make(chan struct{})
		go func() { wg.Wait(); close(ok) }()
		select {
		case <-ok:
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: waiters stuck after Set", l)
		}
	}
}

func TestEventSetIdempotent(t *testing.T) {
	for _, l := range bothLayers {
		e := NewEvent(l)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); e.Set() }()
		}
		wg.Wait()
		if !e.IsSet() {
			t.Fatalf("%v: not set after concurrent Set", l)
		}
	}
}
