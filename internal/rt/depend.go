package rt

import (
	"sync"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// This file implements OpenMP 4.x task dataflow on top of the task
// schedulers of task.go/sched.go:
//
//   - depend(in/out/inout) clauses: a per-generating-task dependence
//     tracker maps storage keys to the last out/inout writer and the
//     set of in readers since (libgomp's scheme). A new task counts
//     one predecessor per unfinished task it must serialize after
//     (out→in, in→out, out→out) and reaches the team scheduler only
//     when that count hits zero; completing tasks decrement their
//     successors and submit the newly-ready ones.
//   - taskgroup: a scoped wait on all descendant tasks created inside
//     the region, plus cancellation that marks not-yet-started
//     descendants to be skipped.
//   - taskloop: the collapsed iteration space of a LoopBounds
//     descriptor (worksharing.go) is chunked into child tasks under an
//     implicit taskgroup, sized by grainsize or num_tasks.

// DepKind classifies one depend clause item.
type DepKind int

// Dependence kinds, with OpenMP's serialization rules: a new in waits
// for the last out/inout on the same key; a new out/inout waits for
// the last out/inout and every in that read since.
const (
	DepIn DepKind = iota
	DepOut
	DepInOut
)

// String returns the clause spelling of the kind.
func (k DepKind) String() string {
	switch k {
	case DepIn:
		return "in"
	case DepOut:
		return "out"
	case DepInOut:
		return "inout"
	}
	return "depend(?)"
}

// Dep is one depend clause item: a storage key with a direction. Keys
// are compared with Go equality; any comparable value works (the
// MiniPy surface uses variable names, the native API whatever the
// caller passes — typically a pointer or an (array, index) pair).
type Dep struct {
	Key  any
	Kind DepKind
}

// In builds in dependences over the given keys.
func In(keys ...any) []Dep { return makeDeps(DepIn, keys) }

// Out builds out dependences over the given keys.
func Out(keys ...any) []Dep { return makeDeps(DepOut, keys) }

// InOut builds inout dependences over the given keys.
func InOut(keys ...any) []Dep { return makeDeps(DepInOut, keys) }

func makeDeps(k DepKind, keys []any) []Dep {
	ds := make([]Dep, len(keys))
	for i, key := range keys {
		ds[i] = Dep{Key: key, Kind: k}
	}
	return ds
}

// depCell records the dependence history of one storage key: the last
// out/inout writer and the in readers that arrived since it.
type depCell struct {
	lastOut *task
	readers []*task
}

// depTracker is the dependence hash of one task-generating task: its
// children's depend clauses are resolved against these cells. Only
// sibling tasks (children of the same generating task) can be ordered
// by depend clauses, as in OpenMP, so the tracker lives on the parent
// task and is consulted by the one thread executing it; the mutex
// covers untied-style migrations and keeps the invariant local.
type depTracker struct {
	mu    sync.Mutex
	cells map[any]*depCell
}

// registerDeps links tk behind the unfinished siblings its depend
// clauses serialize it after, recording tk into the parent's cells as
// the new reader or writer. The caller must hold tk's submission hold
// (npred starts at 1) so a predecessor completing mid-registration
// cannot release tk early.
func registerDeps(parent, tk *task, deps []Dep) {
	tr := parent.deps
	if tr == nil {
		tr = &depTracker{cells: make(map[any]*depCell)}
		parent.deps = tr
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, d := range deps {
		cell := tr.cells[d.Key]
		if cell == nil {
			cell = &depCell{}
			tr.cells[d.Key] = cell
		}
		switch d.Kind {
		case DepIn:
			addDepEdge(cell.lastOut, tk) // out→in
			cell.readers = append(cell.readers, tk)
		default: // DepOut, DepInOut
			for _, r := range cell.readers {
				addDepEdge(r, tk) // in→out
			}
			addDepEdge(cell.lastOut, tk) // out→out
			cell.lastOut = tk
			cell.readers = cell.readers[:0]
		}
	}
}

// addDepEdge orders succ after pred. A completed predecessor (its
// successor list already drained) imposes no wait; self-edges from a
// task naming the same key twice are ignored.
//
// The edge is counted on succ BEFORE it is published into pred.succs:
// the moment succ appears there, a pred completing on another thread
// decrements succ.npred, and an uncounted edge would let that
// decrement consume the caller's submission hold — releasing (and in
// the single-dep case double-submitting) the task while its remaining
// clauses are still registering. Counting first keeps npred ≥ hold +
// published edges at all times, so the hold is unconsumable until
// releaseHold. If pred turns out to be drained the count is undone;
// the hold keeps npred ≥ 1 throughout, so the decrement can never
// release the task itself.
func addDepEdge(pred, succ *task) {
	if pred == nil || pred == succ {
		return
	}
	succ.depMu.Lock()
	succ.npred++
	succ.depMu.Unlock()
	if h := depEdgePublishHook; h != nil {
		h(pred, succ)
	}
	pred.depMu.Lock()
	if pred.depDrained {
		pred.depMu.Unlock()
		succ.depMu.Lock()
		succ.npred--
		succ.depMu.Unlock()
		return
	}
	pred.succs = append(pred.succs, succ)
	pred.depMu.Unlock()
}

// depEdgePublishHook, when non-nil, runs in addDepEdge between
// counting an edge on the successor and publishing it on the
// predecessor — test injection for driving a predecessor completion
// into exactly that window (TestDependEdgePublishWindow).
var depEdgePublishHook func(pred, succ *task)

// releaseHold removes the submission hold placed before dependence
// registration and reports whether the task is ready for the
// scheduler (no unfinished predecessors remain).
func (tk *task) releaseHold() bool {
	tk.depMu.Lock()
	tk.npred--
	ready := tk.npred == 0
	tk.depMu.Unlock()
	return ready
}

// releaseSuccessors resolves the dependences of a completed task:
// every gated successor loses one predecessor, and tasks reaching
// zero enter the team scheduler. Runs in runClaimed's completion
// path, before the single team wake, so waiters observe the new
// runnable work when the broadcast lands.
func (t *Team) releaseSuccessors(ctx *Context, tk *task) {
	tk.depMu.Lock()
	tk.depDrained = true
	succs := tk.succs
	tk.succs = nil
	tk.depMu.Unlock()
	for _, s := range succs {
		s.depMu.Lock()
		s.npred--
		ready := s.npred == 0
		s.depMu.Unlock()
		// An undeferred task is not queued: its encountering thread
		// waits in waitDeps and picks up the npred flip from the
		// completion broadcast.
		if ready && !s.undeferred {
			t.enqueueReady(ctx, s, tk.id)
		}
	}
}

// enqueueReady submits a dependence-released task to the scheduler.
// Outstanding-task and taskgroup accounting happened at creation;
// only queue entry was deferred.
func (t *Team) enqueueReady(ctx *Context, tk *task, byID int64) {
	t.depStalled.Add(-1) // pairs with SubmitTask's deferred-stall increment
	t.rt.metrics.Inc(ctx.gtid, metrics.TasksDependReleased)
	if tk.id != 0 {
		ctx.emit(ompt.EvTaskDependResolved, tk.id, byID, 0, "")
	}
	if t.sched.submit(ctx.num, tk) {
		t.rt.metrics.Inc(ctx.gtid, metrics.TasksOverflowed)
		if tk.id != 0 {
			ctx.emit(ompt.EvTaskOverflow, tk.id, t.outstanding.Load(), 0, "")
		}
	}
}

// waitDeps blocks an undeferred task's encountering thread until the
// task's dependences resolve, executing queued tasks meanwhile: an
// if(false) task still obeys its depend clauses, only its execution
// moves onto the encountering thread. A broken team aborts the wait;
// the caller runs the task anyway and the body's next synchronization
// point reports the abort.
func (t *Team) waitDeps(c *Context, tk *task) {
	ready := func() bool {
		tk.depMu.Lock()
		r := tk.npred == 0
		tk.depMu.Unlock()
		return r
	}
	if ready() || t.broken.Load() != 0 {
		return
	}
	if obs := c.rt.obs.Load(); obs != nil {
		tk.depMu.Lock()
		np := tk.npred
		tk.depMu.Unlock()
		c.waitSince.Store(ompt.Now())
		c.waitKind.Store(waitDepend)
		detail := itoa(int(np)) + " unresolved predecessor(s)"
		c.waitDetail.Store(&detail)
		defer func() {
			c.waitDetail.Store(nil)
			c.waitKind.Store(waitNone)
			c.waitSince.Store(0)
		}()
	}
	// The whole wait — minus time productively running other tasks —
	// is dependence stall by definition: this thread is blocked on an
	// undeferred task's unresolved predecessors.
	pb := t.profBucket
	var t0, taskNS int64
	if pb != nil {
		t0 = ompt.Now()
		defer func() {
			if wait := ompt.Now() - t0 - taskNS; wait > 0 {
				pb.Add(int32(c.num), prof.DependStall, wait)
				c.profWaitNS += wait
			}
		}()
	}
	for {
		if ready() || t.broken.Load() != 0 {
			return
		}
		if q := t.claimTask(c); q != nil {
			if pb != nil {
				r0 := ompt.Now()
				t.runTask(c, q)
				taskNS += ompt.Now() - r0
			} else {
				t.runTask(c, q)
			}
			continue
		}
		t.waitFor(func() bool {
			return ready() || t.sched.hasRunnable() || t.broken.Load() != 0
		})
	}
}

// taskgroup is one taskgroup region instance. pending counts the
// not-yet-completed descendant tasks created inside the group (each
// task counts in every enclosing group, so ends wait without walking
// the task tree); cancelled marks unstarted descendants to be
// skipped.
type taskgroup struct {
	parent    *taskgroup
	pending   Counter
	cancelled Counter

	// id and startNS serve the observability subsystem: id is
	// non-zero only for groups opened while a tool was attached.
	id      int64
	startNS int64
}

// registerTaskgroup binds a newly created task to the encountering
// context's innermost taskgroup and counts it in every enclosing
// group.
func registerTaskgroup(c *Context, tk *task) {
	tk.tg = c.curTG
	for g := tk.tg; g != nil; g = g.parent {
		g.pending.Add(1)
	}
}

// cancelledByGroup reports whether any taskgroup enclosing the task's
// creation was cancelled; such a task is skipped instead of executed.
func (tk *task) cancelledByGroup() bool {
	for g := tk.tg; g != nil; g = g.parent {
		if g.cancelled.Load() != 0 {
			return true
		}
	}
	return false
}

// TaskgroupBegin opens a taskgroup region on this thread (the
// taskgroup directive). Tasks created until the matching TaskgroupEnd
// — including by descendant tasks — belong to the group.
func (c *Context) TaskgroupBegin() {
	tg := &taskgroup{
		parent:    c.curTG,
		pending:   NewCounter(c.team.layer),
		cancelled: NewCounter(c.team.layer),
	}
	c.rt.metrics.Inc(c.gtid, metrics.Taskgroups)
	if c.rt.loadTool() != nil {
		tg.id = c.rt.tgSeq.Add(1)
		tg.startNS = ompt.Now()
		c.emit(ompt.EvTaskgroupBegin, tg.id, 0, 0, "")
	}
	c.curTG = tg
}

// TaskgroupEnd closes the innermost taskgroup: the thread waits until
// every task of the group (descendants included) has completed,
// executing queued tasks while it waits. Errors recorded by completed
// children of the current task surface here, as at a taskwait.
func (c *Context) TaskgroupEnd() error {
	t := c.team
	tg := c.curTG
	if tg == nil {
		return &MisuseError{Construct: "taskgroup",
			Msg: "taskgroup end without a matching begin"}
	}
	defer func() {
		c.curTG = tg.parent
		if tg.id != 0 {
			label := ""
			if tg.cancelled.Load() != 0 {
				label = "cancelled"
			}
			c.emit(ompt.EvTaskgroupEnd, tg.id, 0, ompt.Now()-tg.startNS, label)
		}
	}()
	if obs := c.rt.obs.Load(); obs != nil {
		c.waitSince.Store(ompt.Now())
		c.waitKind.Store(waitTaskgroup)
		detail := "taskgroup"
		if tg.id != 0 {
			detail = "taskgroup #" + itoa(int(tg.id))
		}
		c.waitDetail.Store(&detail)
		defer func() {
			c.waitDetail.Store(nil)
			c.waitKind.Store(waitNone)
			c.waitSince.Store(0)
		}()
	}
	pb := t.profBucket
	var pt0, taskNS, depNS int64
	if pb != nil {
		pt0 = ompt.Now()
		defer func() {
			wait := ompt.Now() - pt0 - taskNS
			if wait <= 0 {
				return
			}
			dep := depNS
			if dep > wait {
				dep = wait
			}
			if tgw := wait - dep; tgw > 0 {
				pb.Add(int32(c.num), prof.TaskgroupWait, tgw)
			}
			pb.Add(int32(c.num), prof.DependStall, dep)
			c.profWaitNS += wait
		}()
	}
	for tg.pending.Load() > 0 {
		if tk := t.claimTask(c); tk != nil {
			if pb != nil {
				r0 := ompt.Now()
				t.runTask(c, tk)
				taskNS += ompt.Now() - r0
			} else {
				t.runTask(c, tk)
			}
			continue
		}
		if t.broken.Load() != 0 {
			return newBrokenAbort("taskgroup")
		}
		stalled := pb != nil && t.depStalled.Load() > 0
		var s0 int64
		if stalled {
			s0 = ompt.Now()
		}
		t.waitFor(func() bool {
			return tg.pending.Load() == 0 || t.sched.hasRunnable() || t.broken.Load() != 0
		})
		if stalled {
			depNS += ompt.Now() - s0
		}
	}
	return joinErrors(c.curTask.takeChildErrs())
}

// TaskgroupCancel cancels the innermost taskgroup enclosing the
// current task (cancel taskgroup): descendant tasks that have not yet
// started are skipped; already-running tasks complete normally — use
// TaskgroupCancelled as a cooperative cancellation point inside long
// bodies. Reports whether a group was active.
func (c *Context) TaskgroupCancel() bool {
	if c.curTG == nil {
		return false
	}
	c.curTG.cancelled.Store(1)
	return true
}

// TaskgroupCancelled reports whether any taskgroup enclosing the
// current task has been cancelled (the cancellation-point check).
func (c *Context) TaskgroupCancelled() bool {
	for g := c.curTG; g != nil; g = g.parent {
		if g.cancelled.Load() != 0 {
			return true
		}
	}
	return false
}

// TaskLoopOpts carries the taskloop clauses the runtime consumes.
type TaskLoopOpts struct {
	// Grainsize asks for chunks of at least this many iterations (the
	// grainsize clause); NumTasks for exactly that many chunk tasks
	// (num_tasks). They are mutually exclusive; with neither set the
	// iteration space splits into one chunk per team member.
	Grainsize int64
	NumTasks  int64
	// NoGroup skips the construct's implicit taskgroup (the nogroup
	// clause): completion is then observed by the next taskwait or
	// barrier instead of by TaskLoop returning.
	NoGroup bool
	// Depends gates every chunk task behind the given dependences
	// (and records the chunks as writers/readers for later siblings).
	Depends []Dep
	// IfSet/If and FinalSet/Final forward the if and final clauses to
	// every chunk task (the Set flag distinguishes absent from false).
	IfSet, If       bool
	FinalSet, Final bool
}

// TaskLoop implements the taskloop construct: the collapsed iteration
// space of b (a ForBounds descriptor) is chunked into child tasks,
// each invoked with a [lo, hi) range of linear iteration indices.
// Unless NoGroup is set the construct carries an implicit taskgroup:
// TaskLoop returns only after every chunk task (and its descendants)
// completed, surfacing their errors.
func (c *Context) TaskLoop(b *LoopBounds, opts TaskLoopOpts, body func(c *Context, lo, hi int64) error) error {
	if opts.Grainsize > 0 && opts.NumTasks > 0 {
		return &MisuseError{Construct: "taskloop",
			Msg: "grainsize and num_tasks are mutually exclusive"}
	}
	total := b.Total
	var n int64
	switch {
	case opts.Grainsize > 0:
		n = total / opts.Grainsize
	case opts.NumTasks > 0:
		n = opts.NumTasks
	default:
		n = int64(c.team.size)
	}
	if n > total {
		n = total
	}
	if n < 1 && total > 0 {
		n = 1
	}
	if !opts.NoGroup {
		c.TaskgroupBegin()
	}
	var submitErr error
	if n > 0 {
		base, rem := total/n, total%n
		lo := int64(0)
		for i := int64(0); i < n; i++ {
			sz := base
			if i < rem {
				sz++
			}
			clo, chi := lo, lo+sz
			lo = chi
			err := c.SubmitTask(TaskOpts{
				Depends: opts.Depends,
				IfSet:   opts.IfSet, If: opts.If,
				FinalSet: opts.FinalSet, Final: opts.Final,
			}, func(cc *Context) error {
				return body(cc, clo, chi)
			})
			// A non-nil submit error means the chunk ran undeferred
			// (inside a final task) and failed; stop chunking but
			// still close the group so the construct stays balanced.
			if err != nil {
				submitErr = err
				break
			}
		}
	}
	if !opts.NoGroup {
		gerr := c.TaskgroupEnd()
		if submitErr != nil {
			return submitErr
		}
		return gerr
	}
	return submitErr
}
