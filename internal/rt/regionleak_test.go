package rt

import (
	"errors"
	"testing"

	"github.com/omp4go/omp4go/internal/directive"
)

// size is a test-only probe counting live entries in the team's
// regionTable. Error-path constructs must release their entries, or
// the table grows for the lifetime of the team.
func (rt *regionTable) size() int {
	if rt.layer == LayerAtomic {
		n := 0
		rt.am.Range(func(any, any) bool { n++; return true })
		return n
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.m)
}

// TestForInitErrorDoesNotLeakRegion exercises the clause-validation
// error path of ForInit: a "chunk size must be positive" return must
// not have entered the worksharing region (no regionTable entry, no
// wsIndex advance), and a subsequent valid loop must still line up
// across the team.
func TestForInitErrorDoesNotLeakRegion(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		var team *Team
		covered := make([]Counter, 100)
		for i := range covered {
			covered[i] = NewCounter(LayerAtomic)
		}
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			if c.Master() {
				team = c.team
			}
			// Invalid chunk: every thread's ForInit must fail without
			// touching shared region state.
			bad := ForBounds(Triplet{0, 10, 1})
			err := c.ForInit(bad, ForOpts{
				Sched:    Schedule{Kind: directive.ScheduleDynamic, Chunk: -3},
				SchedSet: true,
			})
			var misuse *MisuseError
			if !errors.As(err, &misuse) {
				t.Errorf("%v: ForInit with negative chunk: %v", l, err)
			}
			if c.wsDepth != 0 {
				t.Errorf("%v: wsDepth = %d after failed ForInit", l, c.wsDepth)
			}
			// The next construct must still pair up team-wide: if the
			// failed ForInit had advanced wsIndex on some threads the
			// region keys would diverge and this loop would deadlock
			// or miscount.
			b := ForBounds(Triplet{0, 100, 1})
			if err := c.ForInit(b, ForOpts{
				Sched:    Schedule{Kind: directive.ScheduleDynamic, Chunk: 7},
				SchedSet: true,
			}); err != nil {
				return err
			}
			for b.ForNext() {
				for i := b.Lo; i < b.Hi; i++ {
					covered[i].Add(1)
				}
			}
			return c.ForEnd(b)
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		for i, c := range covered {
			if c.Load() != 1 {
				t.Fatalf("%v: iteration %d executed %d times", l, i, c.Load())
			}
		}
		if n := team.regions.size(); n != 0 {
			t.Fatalf("%v: regionTable retains %d entries after error-path construct", l, n)
		}
	}
}

// TestSingleEndBrokenTeamDoesNotLeakRegion exercises the
// "copyprivate value was never published" error path of Single.End:
// every thread — including the executing one, whose body died before
// publishing — must release its regionTable entry.
func TestSingleEndBrokenTeamDoesNotLeakRegion(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		var team *Team
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			if c.Master() {
				team = c.team
			}
			s, err := c.SingleBegin(false, true)
			if err != nil {
				return err
			}
			if s.Executes() {
				// Simulate the single body dying before CopyPrivate:
				// the team is marked broken, exactly as a body error
				// escaping the region does.
				c.team.broken.Store(1)
				c.team.wakeAll()
			}
			if _, err := s.End(); err == nil {
				t.Errorf("%v: Single.End on a broken team returned nil error", l)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if n := team.regions.size(); n != 0 {
			t.Fatalf("%v: regionTable retains %d entries after broken single", l, n)
		}
	}
}
