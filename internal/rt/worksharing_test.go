package rt

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/omp4go/omp4go/internal/directive"
)

// runLoop executes a parallel for over the triplets and records every
// claimed loop-variable value; it returns per-value visit counts.
func runLoop(t *testing.T, l Layer, threads int, opts ForOpts, trip Triplet) map[int64]int {
	t.Helper()
	r := newTestRuntime(l)
	ctx := r.NewContext()
	var mu sync.Mutex
	visits := make(map[int64]int)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: threads}, func(c *Context) error {
		b := ForBounds(trip)
		if err := c.ForInit(b, opts); err != nil {
			return err
		}
		for b.ForNext() {
			local := make([]int64, 0, b.Hi-b.Lo)
			for v := b.LoValue(); differentSign(trip.Step, v, b.HiValue()); v += trip.Step {
				local = append(local, v)
			}
			mu.Lock()
			for _, v := range local {
				visits[v]++
			}
			mu.Unlock()
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatalf("loop failed: %v", err)
	}
	return visits
}

// differentSign reports v < hi for positive step and v > hi for
// negative step.
func differentSign(step, v, hi int64) bool {
	if step > 0 {
		return v < hi
	}
	return v > hi
}

func expectExactCoverage(t *testing.T, visits map[int64]int, trip Triplet) {
	t.Helper()
	want := make(map[int64]bool)
	if trip.Step > 0 {
		for v := trip.Start; v < trip.End; v += trip.Step {
			want[v] = true
		}
	} else if trip.Step < 0 {
		for v := trip.Start; v > trip.End; v += trip.Step {
			want[v] = true
		}
	}
	if len(visits) != len(want) {
		t.Fatalf("visited %d values, want %d", len(visits), len(want))
	}
	for v := range want {
		if visits[v] != 1 {
			t.Fatalf("value %d visited %d times", v, visits[v])
		}
	}
}

func TestForSchedulesCoverEveryIterationOnce(t *testing.T) {
	trip := Triplet{Start: 0, End: 1000, Step: 1}
	cases := []ForOpts{
		{}, // default static
		{Sched: Schedule{Kind: directive.ScheduleStatic, Chunk: 7}, SchedSet: true},
		{Sched: Schedule{Kind: directive.ScheduleDynamic, Chunk: 13}, SchedSet: true},
		{Sched: Schedule{Kind: directive.ScheduleDynamic}, SchedSet: true},
		{Sched: Schedule{Kind: directive.ScheduleGuided, Chunk: 4}, SchedSet: true},
		{Sched: Schedule{Kind: directive.ScheduleGuided}, SchedSet: true},
		{Sched: Schedule{Kind: directive.ScheduleAuto}, SchedSet: true},
		{Sched: Schedule{Kind: directive.ScheduleRuntime}, SchedSet: true},
	}
	for _, l := range bothLayers {
		for _, opts := range cases {
			for _, threads := range []int{1, 3, 8} {
				visits := runLoop(t, l, threads, opts, trip)
				expectExactCoverage(t, visits, trip)
			}
		}
	}
}

func TestForNonUnitAndNegativeSteps(t *testing.T) {
	trips := []Triplet{
		{Start: 0, End: 100, Step: 3},
		{Start: 5, End: 6, Step: 1},
		{Start: 10, End: 10, Step: 1}, // empty
		{Start: 10, End: 0, Step: -1}, // descending
		{Start: 100, End: -1, Step: -7},
		{Start: -50, End: 50, Step: 11},
	}
	opts := ForOpts{Sched: Schedule{Kind: directive.ScheduleDynamic, Chunk: 2}, SchedSet: true}
	for _, trip := range trips {
		visits := runLoop(t, LayerAtomic, 4, opts, trip)
		expectExactCoverage(t, visits, trip)
	}
}

func TestForScheduleCoverageProperty(t *testing.T) {
	// Property: every (bounds, schedule, threads) combination covers
	// each iteration exactly once.
	f := func(start int16, count uint8, step uint8, sched uint8, chunk uint8, threads uint8) bool {
		st := int64(step%5) + 1
		trip := Triplet{
			Start: int64(start),
			End:   int64(start) + int64(count)*st,
			Step:  st,
		}
		kinds := []directive.ScheduleKind{
			directive.ScheduleStatic, directive.ScheduleDynamic, directive.ScheduleGuided,
		}
		opts := ForOpts{
			Sched: Schedule{
				Kind:  kinds[int(sched)%len(kinds)],
				Chunk: int64(chunk % 9), // 0 = policy default
			},
			SchedSet: true,
		}
		nThreads := int(threads%6) + 1
		visits := runLoop(t, LayerAtomic, nThreads, opts, trip)
		n := trip.count()
		if int64(len(visits)) != n {
			return false
		}
		for _, c := range visits {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticBlockPartitionIsContiguousAndBalanced(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	const total = 103
	const threads = 4
	type chunk struct{ lo, hi int64 }
	chunks := make([]chunk, threads)
	counts := make([]int64, threads)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: threads}, func(c *Context) error {
		b := ForBounds(Triplet{0, total, 1})
		if err := c.ForInit(b, ForOpts{}); err != nil {
			return err
		}
		n := 0
		for b.ForNext() {
			chunks[c.GetThreadNum()] = chunk{b.Lo, b.Hi}
			counts[c.GetThreadNum()] = b.Hi - b.Lo
			n++
		}
		if n != 1 {
			t.Errorf("static no-chunk gave thread %d chunks, want 1", n)
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Balanced: sizes differ by at most one, ordered by thread number.
	var minSz, maxSz int64 = 1 << 60, 0
	var next int64
	for tn := 0; tn < threads; tn++ {
		if chunks[tn].lo != next {
			t.Fatalf("thread %d chunk starts at %d, want %d", tn, chunks[tn].lo, next)
		}
		next = chunks[tn].hi
		if counts[tn] < minSz {
			minSz = counts[tn]
		}
		if counts[tn] > maxSz {
			maxSz = counts[tn]
		}
	}
	if next != total {
		t.Fatalf("chunks end at %d, want %d", next, total)
	}
	if maxSz-minSz > 1 {
		t.Fatalf("imbalanced static partition: min %d max %d", minSz, maxSz)
	}
}

func TestStaticChunkedIsRoundRobin(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	const total, threads, chunkSz = 40, 4, 5
	owner := make([]int, total)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: threads}, func(c *Context) error {
		b := ForBounds(Triplet{0, total, 1})
		opts := ForOpts{Sched: Schedule{Kind: directive.ScheduleStatic, Chunk: chunkSz}, SchedSet: true}
		if err := c.ForInit(b, opts); err != nil {
			return err
		}
		for b.ForNext() {
			for i := b.Lo; i < b.Hi; i++ {
				owner[i] = c.GetThreadNum()
			}
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		want := (i / chunkSz) % threads
		if owner[i] != want {
			t.Fatalf("iteration %d owned by thread %d, want %d", i, owner[i], want)
		}
	}
}

// guidedBounds builds a loop descriptor wired for direct claimNext
// driving: a simulated team of tsize threads, all chunks claimed from
// one goroutine so the sequence is deterministic.
func guidedBounds(l Layer, total, tsize, chunk int64) *LoopBounds {
	b := ForBounds(Triplet{0, total, 1})
	b.sched = Schedule{Kind: directive.ScheduleGuided, Chunk: chunk}
	b.tsize = int(tsize)
	b.region = newRegionState(l)
	b.inited = true
	return b
}

func TestGuidedChunksDecrease(t *testing.T) {
	var sizes []int64
	b := guidedBounds(LayerAtomic, 1000, 4, 1)
	for b.claimNext() {
		sizes = append(sizes, b.Hi-b.Lo)
	}
	if len(sizes) < 3 {
		t.Fatalf("guided produced %d chunks", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("guided chunk grew: %v", sizes)
		}
	}
	if sizes[0] != 250 { // remaining/tsize = 1000/4 on the first claim
		t.Fatalf("first guided chunk = %d, want 250", sizes[0])
	}
}

// TestGuidedChunkSequenceExact locks the exact guided chunk sequence
// to the libgomp formula (chunk = remaining/tsize, clamped below by
// the minimum chunk and above by the remaining iterations).
func TestGuidedChunkSequenceExact(t *testing.T) {
	cases := []struct {
		name                string
		total, tsize, chunk int64
		want                []int64
	}{
		{"t4-chunk1", 100, 4, 1,
			[]int64{25, 18, 14, 10, 8, 6, 4, 3, 3, 2, 1, 1, 1, 1, 1, 1, 1}},
		{"t2-chunk4", 40, 2, 4, []int64{20, 10, 5, 4, 1}},
		{"t1-chunk1", 16, 1, 1, []int64{16}},
		{"t8-chunk16", 64, 8, 16, []int64{16, 16, 16, 16}},
	}
	for _, l := range bothLayers {
		for _, tc := range cases {
			b := guidedBounds(l, tc.total, tc.tsize, tc.chunk)
			var got []int64
			var sum int64
			for b.claimNext() {
				got = append(got, b.Hi-b.Lo)
				sum += b.Hi - b.Lo
			}
			if sum != tc.total {
				t.Errorf("%v/%s: chunks sum to %d, want %d", l, tc.name, sum, tc.total)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("%v/%s: chunk sequence %v, want %v", l, tc.name, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("%v/%s: chunk sequence %v, want %v", l, tc.name, got, tc.want)
				}
			}
		}
	}
}

func TestCollapseUnravelRoundTrip(t *testing.T) {
	trips := []Triplet{{0, 4, 1}, {10, 1, -3}, {2, 11, 4}}
	b := ForBounds(trips...)
	want := [][]int64{}
	for i := int64(0); i < 4; i++ {
		for j := int64(10); j > 1; j -= 3 {
			for k := int64(2); k < 11; k += 4 {
				want = append(want, []int64{i, j, k})
			}
		}
	}
	if b.Total != int64(len(want)) {
		t.Fatalf("Total = %d, want %d", b.Total, len(want))
	}
	for lin := int64(0); lin < b.Total; lin++ {
		got := b.Unravel(lin)
		for d := 0; d < 3; d++ {
			if got[d] != want[lin][d] {
				t.Fatalf("Unravel(%d) = %v, want %v", lin, got, want[lin])
			}
		}
	}
}

func TestCollapsedLoopCoverage(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	const ni, nj = 13, 7
	var mu sync.Mutex
	seen := make(map[[2]int64]int)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		b := ForBounds(Triplet{0, ni, 1}, Triplet{0, nj, 1})
		opts := ForOpts{Sched: Schedule{Kind: directive.ScheduleDynamic, Chunk: 3}, SchedSet: true}
		if err := c.ForInit(b, opts); err != nil {
			return err
		}
		for b.ForNext() {
			for lin := b.Lo; lin < b.Hi; lin++ {
				idx := b.Unravel(lin)
				mu.Lock()
				seen[[2]int64{idx[0], idx[1]}]++
				mu.Unlock()
			}
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != ni*nj {
		t.Fatalf("covered %d pairs, want %d", len(seen), ni*nj)
	}
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("pair %v visited %d times", k, v)
		}
	}
}

func TestLastprivateIsLast(t *testing.T) {
	for _, kind := range []directive.ScheduleKind{
		directive.ScheduleStatic, directive.ScheduleDynamic, directive.ScheduleGuided,
	} {
		r := newTestRuntime(LayerAtomic)
		ctx := r.NewContext()
		lastOwners := NewCounter(LayerAtomic)
		var lastVal atomic.Int64
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			b := ForBounds(Triplet{0, 100, 1})
			opts := ForOpts{Sched: Schedule{Kind: kind, Chunk: 3}, SchedSet: true}
			if err := c.ForInit(b, opts); err != nil {
				return err
			}
			var priv int64
			sawLast := false
			for b.ForNext() {
				for i := b.LoValue(); i < b.HiValue(); i++ {
					priv = i * 2
				}
				if b.IsLast() {
					sawLast = true
				}
			}
			if sawLast {
				lastOwners.Add(1)
				lastVal.Store(priv)
			}
			return c.ForEnd(b)
		})
		if err != nil {
			t.Fatal(err)
		}
		if lastOwners.Load() != 1 {
			t.Fatalf("%v: %d threads saw the last chunk, want 1", kind, lastOwners.Load())
		}
		if lastVal.Load() != 198 {
			t.Fatalf("%v: lastprivate value = %d, want 198", kind, lastVal.Load())
		}
	}
}

func TestForNowaitAllowsRunAhead(t *testing.T) {
	// With nowait, a fast thread proceeds to the next loop while the
	// slow ones are still in the first; both loops must still cover
	// all iterations.
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	c1 := NewCounter(LayerAtomic)
	c2 := NewCounter(LayerAtomic)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		for loop, counter := range []Counter{c1, c2} {
			b := ForBounds(Triplet{0, 50, 1})
			opts := ForOpts{
				Sched:    Schedule{Kind: directive.ScheduleDynamic, Chunk: 1},
				SchedSet: true,
				NoWait:   true,
			}
			if err := c.ForInit(b, opts); err != nil {
				return err
			}
			for b.ForNext() {
				counter.Add(b.Hi - b.Lo)
			}
			if err := c.ForEnd(b); err != nil {
				return err
			}
			_ = loop
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Load() != 50 || c2.Load() != 50 {
		t.Fatalf("coverage: %d, %d; want 50, 50", c1.Load(), c2.Load())
	}
}

func TestNestedWorksharingRejected(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		b := ForBounds(Triplet{0, 10, 1})
		if err := c.ForInit(b, ForOpts{}); err != nil {
			return err
		}
		defer c.ForEnd(b)
		inner := ForBounds(Triplet{0, 10, 1})
		err := c.ForInit(inner, ForOpts{})
		var me *MisuseError
		if !errors.As(err, &me) {
			t.Errorf("nested ForInit error = %v, want MisuseError", err)
		}
		// Drain the outer loop so ForEnd's barrier is well-formed.
		for b.ForNext() {
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierInsideWorksharingRejected(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		b := ForBounds(Triplet{0, 4, 1})
		if err := c.ForInit(b, ForOpts{}); err != nil {
			return err
		}
		berr := c.Barrier()
		var me *MisuseError
		if !errors.As(berr, &me) {
			t.Errorf("barrier inside for = %v, want MisuseError", berr)
		}
		for b.ForNext() {
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleExecutesOnce(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		const rounds = 20
		execs := NewCounter(LayerAtomic)
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 8}, func(c *Context) error {
			for i := 0; i < rounds; i++ {
				s, err := c.SingleBegin(false, false)
				if err != nil {
					return err
				}
				if s.Executes() {
					execs.Add(1)
				}
				if _, err := s.End(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if execs.Load() != rounds {
			t.Fatalf("%v: single executed %d times, want %d", l, execs.Load(), rounds)
		}
	}
}

func TestSingleCopyPrivateBroadcasts(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	const n = 6
	got := make([]any, n)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: n}, func(c *Context) error {
		s, err := c.SingleBegin(false, true)
		if err != nil {
			return err
		}
		if s.Executes() {
			if err := s.CopyPrivate(12345); err != nil {
				return err
			}
		}
		v, err := s.End()
		if err != nil {
			return err
		}
		got[c.GetThreadNum()] = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 12345 {
			t.Fatalf("thread %d received %v", i, v)
		}
	}
}

func TestSingleCopyPrivateNowaitRejected(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	_, err := ctx.SingleBegin(true, true)
	var me *MisuseError
	if !errors.As(err, &me) {
		t.Fatalf("error = %v, want MisuseError", err)
	}
}

func TestSectionsEachExecutedOnce(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		const nSec = 11
		counts := make([]Counter, nSec)
		for i := range counts {
			counts[i] = NewCounter(LayerAtomic)
		}
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			s, err := c.SectionsBegin(nSec, false)
			if err != nil {
				return err
			}
			for {
				id := s.Next()
				if id < 0 {
					break
				}
				counts[id].Add(1)
			}
			return s.End()
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		for i, c := range counts {
			if c.Load() != 1 {
				t.Fatalf("%v: section %d executed %d times", l, i, c.Load())
			}
		}
	}
}

func TestSectionsIsLast(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	lastCount := NewCounter(LayerAtomic)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 3}, func(c *Context) error {
		s, err := c.SectionsBegin(5, false)
		if err != nil {
			return err
		}
		for s.Next() >= 0 {
		}
		if s.IsLast() {
			lastCount.Add(1)
		}
		return s.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastCount.Load() != 1 {
		t.Fatalf("%d threads executed the last section, want 1", lastCount.Load())
	}
}

func TestOrderedExecutesInIterationOrder(t *testing.T) {
	for _, kind := range []directive.ScheduleKind{directive.ScheduleStatic, directive.ScheduleDynamic} {
		r := newTestRuntime(LayerAtomic)
		ctx := r.NewContext()
		var mu sync.Mutex
		var order []int64
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			b := ForBounds(Triplet{0, 64, 1})
			opts := ForOpts{
				Sched:    Schedule{Kind: kind, Chunk: 4},
				SchedSet: true,
				Ordered:  true,
			}
			if err := c.ForInit(b, opts); err != nil {
				return err
			}
			for b.ForNext() {
				for i := b.LoValue(); i < b.HiValue(); i++ {
					if err := c.OrderedBegin(i); err != nil {
						return err
					}
					mu.Lock()
					order = append(order, i)
					mu.Unlock()
					if err := c.OrderedEnd(); err != nil {
						return err
					}
				}
			}
			return c.ForEnd(b)
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(order) != 64 {
			t.Fatalf("%v: %d ordered entries", kind, len(order))
		}
		for i, v := range order {
			if v != int64(i) {
				t.Fatalf("%v: ordered sequence %v broken at %d", kind, order[:i+1], i)
			}
		}
	}
}

func TestOrderedOutsideOrderedLoopRejected(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := ctx.OrderedBegin(0)
	var me *MisuseError
	if !errors.As(err, &me) {
		t.Fatalf("error = %v, want MisuseError", err)
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	masters := NewCounter(LayerAtomic)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 6}, func(c *Context) error {
		if c.Master() {
			masters.Add(1)
			if c.GetThreadNum() != 0 {
				t.Errorf("master is thread %d", c.GetThreadNum())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if masters.Load() != 1 {
		t.Fatalf("%d masters", masters.Load())
	}
}

func TestEmptyLoop(t *testing.T) {
	visits := runLoop(t, LayerAtomic, 4, ForOpts{}, Triplet{5, 5, 1})
	if len(visits) != 0 {
		t.Fatalf("empty loop visited %d values", len(visits))
	}
}

func TestCopyPrivateWinnerFailureDoesNotDeadlock(t *testing.T) {
	// The executing thread errors out of the region before publishing
	// the copyprivate value; the waiting threads must abort rather
	// than block forever (previously a deadlock).
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	done := make(chan error, 1)
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			s, err := c.SingleBegin(false, true)
			if err != nil {
				return err
			}
			if s.Executes() {
				// Die before CopyPrivate, abandoning End entirely.
				return errors.New("single body failed before publishing")
			}
			_, err = s.End()
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "failed before publishing") {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("team deadlocked waiting for an unpublished copyprivate value")
	}
}

func TestBodyErrorBreaksExplicitBarrier(t *testing.T) {
	// One thread errors before an explicit barrier the others reach.
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	done := make(chan error, 1)
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 3}, func(c *Context) error {
			if c.GetThreadNum() == 1 {
				return errors.New("early exit")
			}
			return c.Barrier()
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "early exit") {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivors deadlocked at the explicit barrier")
	}
}
