package rt

import (
	"hash/maphash"
	"sync"
)

// Lock is an OpenMP simple lock (omp_init_lock family). Setting a
// simple lock twice from the same thread deadlocks in C; here the
// misuse of unsetting an unheld lock is detected instead.
type Lock struct {
	mu   sync.Mutex
	held bool
	hmu  sync.Mutex
}

// Set acquires the lock (omp_set_lock).
func (l *Lock) Set() {
	l.mu.Lock()
	l.hmu.Lock()
	l.held = true
	l.hmu.Unlock()
}

// Unset releases the lock (omp_unset_lock).
func (l *Lock) Unset() error {
	l.hmu.Lock()
	held := l.held
	l.held = false
	l.hmu.Unlock()
	if !held {
		return &MisuseError{Construct: "lock", Msg: "unset of a lock that is not set"}
	}
	l.mu.Unlock()
	return nil
}

// Test acquires the lock if it is available (omp_test_lock).
func (l *Lock) Test() bool {
	if l.mu.TryLock() {
		l.hmu.Lock()
		l.held = true
		l.hmu.Unlock()
		return true
	}
	return false
}

// NestLock is an OpenMP nestable lock: the owning context may set it
// repeatedly; it is released when the count returns to zero.
type NestLock struct {
	mu    sync.Mutex
	state sync.Mutex // guards owner/count
	owner *Context
	count int
}

// Set acquires the nestable lock for ctx (omp_set_nest_lock).
func (n *NestLock) Set(ctx *Context) {
	n.state.Lock()
	if n.owner == ctx && n.count > 0 {
		n.count++
		n.state.Unlock()
		return
	}
	n.state.Unlock()
	n.mu.Lock()
	n.state.Lock()
	n.owner = ctx
	n.count = 1
	n.state.Unlock()
}

// Unset releases one nesting level (omp_unset_nest_lock).
func (n *NestLock) Unset(ctx *Context) error {
	n.state.Lock()
	if n.owner != ctx || n.count == 0 {
		n.state.Unlock()
		return &MisuseError{Construct: "nest lock", Msg: "unset by a context that does not own the lock"}
	}
	n.count--
	release := n.count == 0
	if release {
		n.owner = nil
	}
	n.state.Unlock()
	if release {
		n.mu.Unlock()
	}
	return nil
}

// Test acquires the nestable lock if available and returns the new
// nesting count, or 0 if it is held elsewhere (omp_test_nest_lock).
func (n *NestLock) Test(ctx *Context) int {
	n.state.Lock()
	if n.owner == ctx && n.count > 0 {
		n.count++
		c := n.count
		n.state.Unlock()
		return c
	}
	n.state.Unlock()
	if !n.mu.TryLock() {
		return 0
	}
	n.state.Lock()
	n.owner = ctx
	n.count = 1
	n.state.Unlock()
	return 1
}

// CriticalEnter acquires the named critical section. All critical
// constructs with the same name (the empty name is the unnamed
// critical) exclude each other across the whole runtime instance.
func (r *Runtime) CriticalEnter(name string) {
	r.criticalLock(name).Lock()
}

// CriticalExit releases the named critical section.
func (r *Runtime) CriticalExit(name string) {
	r.criticalLock(name).Unlock()
}

func (r *Runtime) criticalLock(name string) *sync.Mutex {
	r.criticalMu.Lock()
	m, ok := r.criticals[name]
	if !ok {
		m = &sync.Mutex{}
		r.criticals[name] = m
	}
	r.criticalMu.Unlock()
	return m
}

// DropCritical releases the runtime's lock object for a critical
// section name. It exists for generated per-region names (the unique
// reduction slots of omp.ParallelReduce) whose locks would otherwise
// accumulate in the runtime for its lifetime; call only after every
// thread that could enter the name has left the region.
func (r *Runtime) DropCritical(name string) {
	r.criticalMu.Lock()
	delete(r.criticals, name)
	r.criticalMu.Unlock()
}

var atomicSeed = maphash.MakeSeed()

// AtomicUpdate runs update under the lock striped for the given cell
// identity, implementing the atomic construct for locations that
// cannot be updated with hardware atomics (boxed interpreter values).
// Distinct cells contend only on hash collisions.
func (r *Runtime) AtomicUpdate(cellID uint64, update func()) {
	var h maphash.Hash
	h.SetSeed(atomicSeed)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(cellID >> (8 * i))
	}
	h.Write(buf[:])
	m := &r.atomicCells[h.Sum64()%uint64(len(r.atomicCells))]
	m.Lock()
	update()
	m.Unlock()
}
