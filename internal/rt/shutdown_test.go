package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitPool polls the pool until it reaches (idle, live) or the
// deadline passes.
func waitPool(t *testing.T, r *Runtime, wantIdle, wantLive int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		idle, live := r.pool.counts()
		if idle == wantIdle && live == wantLive {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool stuck at idle=%d live=%d, want %d/%d", idle, live, wantIdle, wantLive)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownUnderConcurrentRegions calls Shutdown while several
// initial threads are forking regions: no deadlock, no lost
// iterations, every pooled worker retires, and the runtime keeps
// serving regions (spawn-per-region) afterwards.
func TestShutdownUnderConcurrentRegions(t *testing.T) {
	r := NewWithEnv(LayerAtomic, func(string) string { return "" })
	if r.pool == nil {
		t.Fatal("pool not enabled by default")
	}

	const drivers, regions, teamSize = 4, 25, 3
	var total atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := r.NewContext()
			for reg := 0; reg < regions; reg++ {
				err := r.Parallel(ctx, ParallelOpts{NumThreads: teamSize}, func(c *Context) error {
					once.Do(func() { close(started) })
					total.Add(1)
					return nil
				})
				if err != nil {
					t.Errorf("Parallel: %v", err)
					return
				}
			}
		}()
	}
	<-started
	r.Shutdown()
	wg.Wait()

	if want := int64(drivers * regions * teamSize); total.Load() != want {
		t.Errorf("threads run = %d, want %d", total.Load(), want)
	}
	waitPool(t, r, 0, 0)

	// Still usable after Shutdown.
	ctx := r.NewContext()
	var after atomic.Int64
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: teamSize}, func(c *Context) error {
		after.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("Parallel after Shutdown: %v", err)
	}
	if after.Load() != teamSize {
		t.Errorf("post-shutdown team = %d, want %d", after.Load(), teamSize)
	}
	waitPool(t, r, 0, 0)
}

// TestShutdownLeavesNoWorkerGoroutines: after Shutdown and region
// join, the worker goroutines are gone (bounded settle, since exits
// are asynchronous).
func TestShutdownLeavesNoWorkerGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewWithEnv(LayerAtomic, func(string) string { return "" })
	ctx := r.NewContext()
	for i := 0; i < 10; i++ {
		if err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, live := r.pool.counts(); live == 0 {
		t.Fatal("expected live pooled workers before Shutdown")
	}
	r.Shutdown()
	waitPool(t, r, 0, 0)

	deadline := time.Now().Add(5 * time.Second)
	for {
		// Small slack: unrelated runtime goroutines may come and go.
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d (pool workers leaked)", runtime.NumGoroutine(), before+2)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
