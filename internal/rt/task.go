package rt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// Task states, as in the paper: free, in-progress, completed.
const (
	taskFree int64 = iota
	taskInProgress
	taskDone
)

// task is one deferred (or undeferred) task instance, carrying the
// execution state, a completion event, the task function, and — for
// the legacy list scheduler only — the linked-list next-reference of
// the paper's shared queue (§III-E).
type task struct {
	fn       func(*Context) error
	state    Counter
	done     Event
	parent   *task
	children Counter // outstanding direct children (for taskwait)
	explicit bool
	final    bool
	next     atomic.Pointer[task] // list scheduler only
	err      error

	// undeferred marks a task that ran inline on its encountering
	// thread (if-clause false, or inside a final task): its error
	// returns to the submitter from SubmitTask instead of being
	// recorded for a later scheduling point.
	undeferred bool

	// Dependence bookkeeping (depend.go). depMu guards npred (the
	// unresolved-predecessor count, +1 submission hold while depend
	// clauses register), succs (tasks gated on this one) and
	// depDrained (successor release done); hasDeps gates the
	// completion-time release pass so dependence-free tasks never
	// touch the mutex. deps is the tracker resolving this task's
	// children's depend clauses against each other.
	hasDeps    bool
	depMu      sync.Mutex
	npred      int
	succs      []*task
	depDrained bool
	deps       *depTracker

	// tg is the innermost taskgroup enclosing the task's creation
	// (nil outside any taskgroup region).
	tg *taskgroup

	// childErrMu guards childErrs and errsClosed: failures of
	// completed descendant tasks parked here until this task's next
	// taskwait/taskgroup-end drains them, or until its own completion
	// forwards them to the nearest still-collecting ancestor.
	childErrMu sync.Mutex
	childErrs  []error
	errsClosed bool

	// id and startNS serve the observability subsystem: id is
	// non-zero only for tasks created while a tool was attached.
	id      int64
	startNS int64
}

func newTask(l Layer, fn func(*Context) error, parent *task, explicit bool) *task {
	return &task{
		fn:       fn,
		state:    NewCounter(l),
		done:     NewEvent(l),
		parent:   parent,
		children: NewCounter(l),
		explicit: explicit,
	}
}

// resetImplicit returns a joined member's implicit task to its
// initial state for team recycling (runtime.go). Only valid at
// quiescence: state back at free-equivalent, no outstanding children.
func (t *task) resetImplicit() {
	t.fn = nil
	t.state.Store(taskFree)
	if t.done.IsSet() { // implicit tasks normally never complete-signal
		t.done.Clear()
	}
	t.parent = nil
	t.children.Store(0)
	t.explicit = false
	t.final = false
	t.next.Store(nil)
	t.err = nil
	t.undeferred = false
	t.hasDeps = false
	t.npred = 0
	t.succs = nil
	t.depDrained = false
	t.deps = nil
	t.tg = nil
	t.childErrs = nil
	t.errsClosed = false
	t.id, t.startNS = 0, 0
}

// newListQueue builds the paper's shared linked-list queue (§III-E):
// enqueueing updates the tail's next-reference — the mutex
// implementation locks around the update (Python runtime), the atomic
// one uses compare_exchange (cruntime). It remains available as the
// "list" scheduler mode for differential tests against the default
// work-stealing scheduler (sched.go).
func newListQueue(l Layer) taskScheduler {
	if l == LayerAtomic {
		q := &atomicTaskQueue{layer: l}
		q.reset()
		return q
	}
	return &mutexTaskQueue{}
}

// mutexTaskQueue is the Python-runtime flavour: one mutex guards both
// the tail update on submit and the scan on take.
type mutexTaskQueue struct {
	mu         sync.Mutex
	head, tail *task
}

func (q *mutexTaskQueue) submit(_ int, t *task) bool {
	q.mu.Lock()
	if q.tail == nil {
		q.head, q.tail = t, t
	} else {
		q.tail.next.Store(t)
		q.tail = t
	}
	q.mu.Unlock()
	return false
}

func (q *mutexTaskQueue) take(int) (*task, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Drop the completed prefix, then claim the first free node.
	for q.head != nil && q.head.state.Load() == taskDone {
		q.head = q.head.next.Load()
	}
	if q.head == nil {
		q.tail = nil
	}
	for n := q.head; n != nil; n = n.next.Load() {
		if n.state.CompareAndSwap(taskFree, taskInProgress) {
			return n, -1
		}
	}
	return nil, -1
}

func (q *mutexTaskQueue) hasRunnable() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for n := q.head; n != nil; n = n.next.Load() {
		if n.state.Load() == taskFree {
			return true
		}
	}
	return false
}

func (q *mutexTaskQueue) runnable() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for t := q.head; t != nil; t = t.next.Load() {
		if t.state.Load() == taskFree {
			n++
		}
	}
	return n
}

func (q *mutexTaskQueue) retained() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for t := q.head; t != nil; t = t.next.Load() {
		n++
	}
	return n
}

func (q *mutexTaskQueue) reset() {
	q.mu.Lock()
	q.head, q.tail = nil, nil
	q.mu.Unlock()
}

// depths: the shared list has no per-member queues to introspect.
func (q *mutexTaskQueue) depths() []int { return nil }

// atomicTaskQueue is the cruntime flavour: enqueue installs the
// next-reference with compare_exchange, and consumers advance the
// head hint past completed nodes without locking.
type atomicTaskQueue struct {
	layer Layer
	head  atomic.Pointer[task]
	tail  atomic.Pointer[task]
}

func (q *atomicTaskQueue) submit(_ int, t *task) bool {
	for {
		tl := q.tail.Load()
		if tl.next.CompareAndSwap(nil, t) {
			q.tail.CompareAndSwap(tl, t)
			return false
		}
		// Help a stalled enqueuer move the tail forward.
		q.tail.CompareAndSwap(tl, tl.next.Load())
	}
}

func (q *atomicTaskQueue) take(int) (*task, int) {
	// Advance the head hint past completed nodes (nodes are never
	// recycled, so racing advances are safe under GC).
	for {
		h := q.head.Load()
		n := h.next.Load()
		if n == nil || n.state.Load() != taskDone {
			break
		}
		q.head.CompareAndSwap(h, n)
	}
	for n := q.head.Load().next.Load(); n != nil; n = n.next.Load() {
		if n.state.CompareAndSwap(taskFree, taskInProgress) {
			return n, -1
		}
	}
	return nil, -1
}

func (q *atomicTaskQueue) hasRunnable() bool {
	for n := q.head.Load().next.Load(); n != nil; n = n.next.Load() {
		if n.state.Load() == taskFree {
			return true
		}
	}
	return false
}

func (q *atomicTaskQueue) runnable() int {
	n := 0
	for t := q.head.Load().next.Load(); t != nil; t = t.next.Load() {
		if t.state.Load() == taskFree {
			n++
		}
	}
	return n
}

func (q *atomicTaskQueue) retained() int {
	n := 0
	for t := q.head.Load().next.Load(); t != nil; t = t.next.Load() {
		n++
	}
	return n
}

// reset reinstalls a fresh sentinel, dropping the chain of completed
// nodes a recycled team would otherwise retain.
func (q *atomicTaskQueue) reset() {
	sentinel := &task{state: NewCounter(q.layer)}
	sentinel.state.Store(taskDone)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
}

// depths: the shared list has no per-member queues to introspect.
func (q *atomicTaskQueue) depths() []int { return nil }

// TaskOpts carries the task directive clauses the runtime consumes.
type TaskOpts struct {
	// If false (with IfSet), the task is undeferred: the encountering
	// thread suspends and executes it immediately.
	If    bool
	IfSet bool
	// Final makes every descendant task included (executed inline).
	Final    bool
	FinalSet bool
	// Depends lists the task's depend clause items (depend.go): the
	// task waits for the unfinished siblings it must serialize after
	// and is recorded as reader/writer of each key for later
	// siblings. An undeferred task still obeys its dependences — its
	// encountering thread waits for them.
	Depends []Dep
}

// SubmitTask implements the task directive: fn is packaged with its
// context into a task object and placed on the team's shared queue,
// unless the if clause (or an enclosing final task) forces immediate
// execution on the encountering thread.
func (c *Context) SubmitTask(opts TaskOpts, fn func(*Context) error) error {
	t := c.team
	// The if clause makes the task undeferred; descendants of a
	// final task are included (executed immediately) as well.
	undeferred := (opts.IfSet && !opts.If) || c.inFinal()
	tk := newTask(t.layer, fn, c.curTask, true)
	if opts.FinalSet && opts.Final {
		tk.final = true
	}
	if c.rt.loadTool() != nil {
		tk.id = c.rt.taskSeq.Add(1)
	}
	c.rt.metrics.Inc(c.gtid, metrics.TasksCreated)
	if undeferred {
		tk.undeferred = true
		tk.state.Store(taskInProgress)
		c.curTask.children.Add(1)
		registerTaskgroup(c, tk)
		if tk.id != 0 {
			c.emit(ompt.EvTaskCreate, tk.id, t.outstanding.Load(), 0, "undeferred")
		}
		if len(opts.Depends) > 0 {
			tk.hasDeps = true
			tk.npred = 1 // submission hold; see registerDeps
			registerDeps(c.curTask, tk, opts.Depends)
			if !tk.releaseHold() {
				c.rt.metrics.Inc(c.gtid, metrics.TasksDependStalled)
				t.waitDeps(c, tk)
			}
		}
		t.runClaimed(c, tk)
		return tk.err
	}
	c.curTask.children.Add(1)
	registerTaskgroup(c, tk)
	depth := t.outstanding.Add(1)
	if len(opts.Depends) > 0 {
		tk.hasDeps = true
		tk.npred = 1 // submission hold; see registerDeps
		registerDeps(c.curTask, tk, opts.Depends)
		if !tk.releaseHold() {
			// The task stays off the deques until its predecessors
			// complete; outstanding already counts it, so barriers
			// keep waiting for it. The depStalled gauge lets wait
			// loops classify their idle time as a dependence stall
			// while tasks sit gated here (decremented on release).
			c.rt.metrics.Inc(c.gtid, metrics.TasksDependStalled)
			t.depStalled.Add(1)
			if tk.id != 0 {
				c.emit(ompt.EvTaskCreate, tk.id, depth, 0, "stalled")
			}
			return nil
		}
	}
	overflowed := t.sched.submit(c.num, tk)
	if overflowed {
		c.rt.metrics.Inc(c.gtid, metrics.TasksOverflowed)
	}
	if tk.id != 0 {
		c.emit(ompt.EvTaskCreate, tk.id, depth, 0, "")
		if overflowed {
			c.emit(ompt.EvTaskOverflow, tk.id, depth, 0, "")
		}
	}
	// Threads waiting at a barrier are reawakened to consume newly
	// submitted work (§III-E).
	t.wakeAll()
	return nil
}

// claimTask claims the next runnable task for ctx's thread: local
// deque first, then overflow, then a round-robin steal. A successful
// steal from another member's deque is reported to the observability
// subsystem.
func (t *Team) claimTask(ctx *Context) *task {
	tk, victim := t.sched.take(ctx.num)
	if tk != nil && victim >= 0 && victim != ctx.num {
		t.rt.metrics.Inc(ctx.gtid, metrics.TasksStolen)
		if tk.id != 0 {
			ctx.emit(ompt.EvTaskSteal, tk.id, int64(victim), 0, "")
		}
	}
	return tk
}

func (c *Context) inFinal() bool {
	for tk := c.curTask; tk != nil; tk = tk.parent {
		if tk.final {
			return true
		}
	}
	return false
}

// runTask executes a queue-claimed task on this thread. Completion
// bookkeeping — the outstanding decrement and the single team wake —
// lives in runClaimed's defer, so the deferred-task completion path
// broadcasts exactly once (it used to wake here a second time).
func (t *Team) runTask(ctx *Context, tk *task) {
	t.runClaimed(ctx, tk)
}

// runClaimed runs a task already marked in-progress, pushing it onto
// the thread's context stack for the duration. A task whose enclosing
// taskgroup was cancelled is completed without running its body.
func (t *Team) runClaimed(ctx *Context, tk *task) {
	t.rt.metrics.Inc(ctx.gtid, metrics.TasksRun)
	if tk.id != 0 && t.rt.loadTool() != nil {
		tk.startNS = ompt.Now()
		ctx.emit(ompt.EvTaskBegin, tk.id, 0, 0, "")
	}
	prevTask := ctx.curTask
	prevWS := ctx.wsDepth
	prevLoop := ctx.curLoop
	prevTG := ctx.curTG
	ctx.curTask = tk
	ctx.wsDepth = 0
	ctx.curLoop = nil
	ctx.curTG = tk.tg
	cancelled := false
	defer func() {
		if p := recover(); p != nil {
			tk.err = fmt.Errorf("panic in task: %v", p)
		}
		ctx.curTask = prevTask
		ctx.wsDepth = prevWS
		ctx.curLoop = prevLoop
		ctx.curTG = prevTG
		if tk.id != 0 && tk.startNS != 0 {
			label := ""
			if cancelled {
				label = "cancelled"
			}
			ctx.emit(ompt.EvTaskEnd, tk.id, 0, ompt.Now()-tk.startNS, label)
		}
		tk.state.Store(taskDone)
		tk.done.Set()
		if tk.hasDeps {
			t.releaseSuccessors(ctx, tk)
		}
		// Error delivery precedes both completion counters: a thread
		// observing pending == 0 in TaskgroupEnd or children == 0 in
		// TaskWait immediately drains childErrs, so the error must
		// already be parked on the ancestor when either count drops.
		t.deliverTaskErrors(tk)
		for g := tk.tg; g != nil; g = g.parent {
			g.pending.Add(-1)
		}
		if h := taskPendingDropHook; h != nil {
			h(tk)
		}
		if tk.parent != nil {
			tk.parent.children.Add(-1)
		}
		// Deferred tasks leave the outstanding count here, before the
		// completion broadcast: barrier predicates read outstanding
		// and taskwait predicates read children, and both must be
		// current when the single wake lands.
		if tk.explicit && !tk.undeferred {
			t.outstanding.Add(-1)
		}
		t.wakeAll()
	}()
	if tk.fn != nil {
		if tk.cancelledByGroup() {
			cancelled = true
			t.rt.metrics.Inc(ctx.gtid, metrics.TasksCancelled)
			return
		}
		tk.err = tk.fn(ctx)
	}
}

// TaskWait implements the taskwait directive: the current task waits
// for the completion of its direct children, executing queued tasks
// while it waits instead of blocking idle. Errors recorded by
// completed children surface here (they used to be swallowed and
// deferred to the region join).
func (c *Context) TaskWait() error {
	t := c.team
	cur := c.curTask
	if cur.children.Load() == 0 {
		return joinErrors(cur.takeChildErrs())
	}
	// The wait marker (introspection only) lets the watchdog and
	// /debug/omp distinguish a thread draining a taskwait from one
	// still executing its body. waitSince is cleared with the kind so
	// a later sample never pairs a fresh wait with this stale
	// timestamp.
	if obs := c.rt.obs.Load(); obs != nil {
		c.waitSince.Store(ompt.Now())
		c.waitKind.Store(waitTaskwait)
		detail := itoa(int(cur.children.Load())) + " child task(s)"
		c.waitDetail.Store(&detail)
		defer func() {
			c.waitKind.Store(waitNone)
			c.waitSince.Store(0)
			c.waitDetail.Store(nil)
		}()
	}
	// Profiler: the taskwait's wait is the time in this loop minus
	// time productively running claimed tasks (whose own wait sites
	// attribute themselves); parks while dependence-stalled tasks gate
	// the queues classify as depend stalls.
	pb := t.profBucket
	var t0, taskNS, depNS int64
	if pb != nil {
		t0 = ompt.Now()
		defer func() {
			wait := ompt.Now() - t0 - taskNS
			if wait <= 0 {
				return
			}
			dep := depNS
			if dep > wait {
				dep = wait
			}
			if tw := wait - dep; tw > 0 {
				pb.Add(int32(c.num), prof.Taskwait, tw)
			}
			pb.Add(int32(c.num), prof.DependStall, dep)
			c.profWaitNS += wait
		}()
	}
	for cur.children.Load() > 0 {
		if tk := t.claimTask(c); tk != nil {
			if pb != nil {
				s := ompt.Now()
				t.runTask(c, tk)
				taskNS += ompt.Now() - s
			} else {
				t.runTask(c, tk)
			}
			continue
		}
		if t.broken.Load() != 0 {
			return newBrokenAbort("taskwait")
		}
		var sleepT0 int64
		stalled := pb != nil && t.depStalled.Load() > 0
		if stalled {
			sleepT0 = ompt.Now()
		}
		t.waitFor(func() bool {
			return cur.children.Load() == 0 || t.sched.hasRunnable() || t.broken.Load() != 0
		})
		if stalled {
			depNS += ompt.Now() - sleepT0
		}
	}
	return joinErrors(cur.takeChildErrs())
}

// taskPendingDropHook, when non-nil, runs in runClaimed's completion
// defer immediately after the task left its taskgroups' pending
// counts — the first instant a TaskgroupEnd can observe the group
// drained. Test injection for asserting the task's error is already
// parked on a collecting ancestor by then
// (TestTaskgroupPendingDropsAfterErrorParked).
var taskPendingDropHook func(tk *task)

// maxTaskErrs caps every task-error buffer (a task's childErrs, the
// team's region-join list): reporting keeps the first few failures
// and drops the rest rather than growing without bound.
const maxTaskErrs = 16

// deliverTaskErrors flushes a completed task's unreported failures to
// the nearest ancestor still collecting: the task's own error — for
// deferred tasks; an undeferred task's error returned to its
// submitter from SubmitTask — plus any descendant errors no taskwait
// drained. Each task error is thereby delivered exactly once: to one
// taskwait/taskgroup-end, or, once it climbs to an implicit task, to
// the region join (runMember flushes implicit tasks after the closing
// barrier).
func (t *Team) deliverTaskErrors(tk *task) {
	tk.childErrMu.Lock()
	tk.errsClosed = true
	up := tk.childErrs
	tk.childErrs = nil
	tk.childErrMu.Unlock()
	if tk.err != nil && !tk.undeferred {
		up = append([]error{tk.err}, up...)
	}
	if len(up) == 0 {
		return
	}
	for a := tk.parent; a != nil; a = a.parent {
		a.childErrMu.Lock()
		if !a.errsClosed {
			if room := maxTaskErrs - len(a.childErrs); room > 0 {
				if room > len(up) {
					room = len(up)
				}
				a.childErrs = append(a.childErrs, up[:room]...)
			}
			a.childErrMu.Unlock()
			return
		}
		a.childErrMu.Unlock()
	}
	// No collecting ancestor remains (the whole chain completed
	// before this flush) — fall back to the region-join list.
	for _, e := range up {
		t.recordTaskError(e)
	}
}

// takeChildErrs drains the errors recorded by completed descendants
// (the taskwait and taskgroup-end scheduling points).
func (tk *task) takeChildErrs() []error {
	tk.childErrMu.Lock()
	errs := tk.childErrs
	tk.childErrs = nil
	tk.childErrMu.Unlock()
	return errs
}

// recordTaskError keeps the first few task errors for reporting at
// the region join.
func (t *Team) recordTaskError(err error) {
	t.taskErrMu.Lock()
	if len(t.taskErrs) < maxTaskErrs {
		t.taskErrs = append(t.taskErrs, err)
	}
	t.taskErrMu.Unlock()
}

func (t *Team) takeTaskErrors() []error {
	t.taskErrMu.Lock()
	errs := t.taskErrs
	t.taskErrs = nil
	t.taskErrMu.Unlock()
	return errs
}
