package rt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
)

// Task states, as in the paper: free, in-progress, completed.
const (
	taskFree int64 = iota
	taskInProgress
	taskDone
)

// task is one deferred (or undeferred) task instance, carrying the
// execution state, a completion event, the task function, and — for
// the legacy list scheduler only — the linked-list next-reference of
// the paper's shared queue (§III-E).
type task struct {
	fn       func(*Context) error
	state    Counter
	done     Event
	parent   *task
	children Counter // outstanding direct children (for taskwait)
	explicit bool
	final    bool
	next     atomic.Pointer[task] // list scheduler only
	err      error

	// id and startNS serve the observability subsystem: id is
	// non-zero only for tasks created while a tool was attached.
	id      int64
	startNS int64
}

func newTask(l Layer, fn func(*Context) error, parent *task, explicit bool) *task {
	return &task{
		fn:       fn,
		state:    NewCounter(l),
		done:     NewEvent(l),
		parent:   parent,
		children: NewCounter(l),
		explicit: explicit,
	}
}

// resetImplicit returns a joined member's implicit task to its
// initial state for team recycling (runtime.go). Only valid at
// quiescence: state back at free-equivalent, no outstanding children.
func (t *task) resetImplicit() {
	t.fn = nil
	t.state.Store(taskFree)
	if t.done.IsSet() { // implicit tasks normally never complete-signal
		t.done.Clear()
	}
	t.parent = nil
	t.children.Store(0)
	t.explicit = false
	t.final = false
	t.next.Store(nil)
	t.err = nil
	t.id, t.startNS = 0, 0
}

// newListQueue builds the paper's shared linked-list queue (§III-E):
// enqueueing updates the tail's next-reference — the mutex
// implementation locks around the update (Python runtime), the atomic
// one uses compare_exchange (cruntime). It remains available as the
// "list" scheduler mode for differential tests against the default
// work-stealing scheduler (sched.go).
func newListQueue(l Layer) taskScheduler {
	if l == LayerAtomic {
		q := &atomicTaskQueue{layer: l}
		q.reset()
		return q
	}
	return &mutexTaskQueue{}
}

// mutexTaskQueue is the Python-runtime flavour: one mutex guards both
// the tail update on submit and the scan on take.
type mutexTaskQueue struct {
	mu         sync.Mutex
	head, tail *task
}

func (q *mutexTaskQueue) submit(_ int, t *task) bool {
	q.mu.Lock()
	if q.tail == nil {
		q.head, q.tail = t, t
	} else {
		q.tail.next.Store(t)
		q.tail = t
	}
	q.mu.Unlock()
	return false
}

func (q *mutexTaskQueue) take(int) (*task, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Drop the completed prefix, then claim the first free node.
	for q.head != nil && q.head.state.Load() == taskDone {
		q.head = q.head.next.Load()
	}
	if q.head == nil {
		q.tail = nil
	}
	for n := q.head; n != nil; n = n.next.Load() {
		if n.state.CompareAndSwap(taskFree, taskInProgress) {
			return n, -1
		}
	}
	return nil, -1
}

func (q *mutexTaskQueue) hasRunnable() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for n := q.head; n != nil; n = n.next.Load() {
		if n.state.Load() == taskFree {
			return true
		}
	}
	return false
}

func (q *mutexTaskQueue) retained() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for t := q.head; t != nil; t = t.next.Load() {
		n++
	}
	return n
}

func (q *mutexTaskQueue) reset() {
	q.mu.Lock()
	q.head, q.tail = nil, nil
	q.mu.Unlock()
}

// depths: the shared list has no per-member queues to introspect.
func (q *mutexTaskQueue) depths() []int { return nil }

// atomicTaskQueue is the cruntime flavour: enqueue installs the
// next-reference with compare_exchange, and consumers advance the
// head hint past completed nodes without locking.
type atomicTaskQueue struct {
	layer Layer
	head  atomic.Pointer[task]
	tail  atomic.Pointer[task]
}

func (q *atomicTaskQueue) submit(_ int, t *task) bool {
	for {
		tl := q.tail.Load()
		if tl.next.CompareAndSwap(nil, t) {
			q.tail.CompareAndSwap(tl, t)
			return false
		}
		// Help a stalled enqueuer move the tail forward.
		q.tail.CompareAndSwap(tl, tl.next.Load())
	}
}

func (q *atomicTaskQueue) take(int) (*task, int) {
	// Advance the head hint past completed nodes (nodes are never
	// recycled, so racing advances are safe under GC).
	for {
		h := q.head.Load()
		n := h.next.Load()
		if n == nil || n.state.Load() != taskDone {
			break
		}
		q.head.CompareAndSwap(h, n)
	}
	for n := q.head.Load().next.Load(); n != nil; n = n.next.Load() {
		if n.state.CompareAndSwap(taskFree, taskInProgress) {
			return n, -1
		}
	}
	return nil, -1
}

func (q *atomicTaskQueue) hasRunnable() bool {
	for n := q.head.Load().next.Load(); n != nil; n = n.next.Load() {
		if n.state.Load() == taskFree {
			return true
		}
	}
	return false
}

func (q *atomicTaskQueue) retained() int {
	n := 0
	for t := q.head.Load().next.Load(); t != nil; t = t.next.Load() {
		n++
	}
	return n
}

// reset reinstalls a fresh sentinel, dropping the chain of completed
// nodes a recycled team would otherwise retain.
func (q *atomicTaskQueue) reset() {
	sentinel := &task{state: NewCounter(q.layer)}
	sentinel.state.Store(taskDone)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
}

// depths: the shared list has no per-member queues to introspect.
func (q *atomicTaskQueue) depths() []int { return nil }

// TaskOpts carries the task directive clauses the runtime consumes.
type TaskOpts struct {
	// If false (with IfSet), the task is undeferred: the encountering
	// thread suspends and executes it immediately.
	If    bool
	IfSet bool
	// Final makes every descendant task included (executed inline).
	Final    bool
	FinalSet bool
}

// SubmitTask implements the task directive: fn is packaged with its
// context into a task object and placed on the team's shared queue,
// unless the if clause (or an enclosing final task) forces immediate
// execution on the encountering thread.
func (c *Context) SubmitTask(opts TaskOpts, fn func(*Context) error) error {
	t := c.team
	// The if clause makes the task undeferred; descendants of a
	// final task are included (executed immediately) as well.
	undeferred := (opts.IfSet && !opts.If) || c.inFinal()
	tk := newTask(t.layer, fn, c.curTask, true)
	if opts.FinalSet && opts.Final {
		tk.final = true
	}
	if c.rt.loadTool() != nil {
		tk.id = c.rt.taskSeq.Add(1)
	}
	c.rt.metrics.Inc(c.gtid, metrics.TasksCreated)
	if undeferred {
		tk.state.Store(taskInProgress)
		c.curTask.children.Add(1)
		if tk.id != 0 {
			c.emit(ompt.EvTaskCreate, tk.id, t.outstanding.Load(), 0, "undeferred")
		}
		t.runClaimed(c, tk)
		return tk.err
	}
	c.curTask.children.Add(1)
	depth := t.outstanding.Add(1)
	overflowed := t.sched.submit(c.num, tk)
	if overflowed {
		c.rt.metrics.Inc(c.gtid, metrics.TasksOverflowed)
	}
	if tk.id != 0 {
		c.emit(ompt.EvTaskCreate, tk.id, depth, 0, "")
		if overflowed {
			c.emit(ompt.EvTaskOverflow, tk.id, depth, 0, "")
		}
	}
	// Threads waiting at a barrier are reawakened to consume newly
	// submitted work (§III-E).
	t.wakeAll()
	return nil
}

// claimTask claims the next runnable task for ctx's thread: local
// deque first, then overflow, then a round-robin steal. A successful
// steal from another member's deque is reported to the observability
// subsystem.
func (t *Team) claimTask(ctx *Context) *task {
	tk, victim := t.sched.take(ctx.num)
	if tk != nil && victim >= 0 && victim != ctx.num {
		t.rt.metrics.Inc(ctx.gtid, metrics.TasksStolen)
		if tk.id != 0 {
			ctx.emit(ompt.EvTaskSteal, tk.id, int64(victim), 0, "")
		}
	}
	return tk
}

func (c *Context) inFinal() bool {
	for tk := c.curTask; tk != nil; tk = tk.parent {
		if tk.final {
			return true
		}
	}
	return false
}

// runTask executes a queue-claimed task on this thread.
func (t *Team) runTask(ctx *Context, tk *task) {
	t.runClaimed(ctx, tk)
	t.outstanding.Add(-1)
	t.wakeAll()
}

// runClaimed runs a task already marked in-progress, pushing it onto
// the thread's context stack for the duration.
func (t *Team) runClaimed(ctx *Context, tk *task) {
	t.rt.metrics.Inc(ctx.gtid, metrics.TasksRun)
	if tk.id != 0 && t.rt.loadTool() != nil {
		tk.startNS = ompt.Now()
		ctx.emit(ompt.EvTaskBegin, tk.id, 0, 0, "")
	}
	prevTask := ctx.curTask
	prevWS := ctx.wsDepth
	prevLoop := ctx.curLoop
	ctx.curTask = tk
	ctx.wsDepth = 0
	ctx.curLoop = nil
	defer func() {
		if p := recover(); p != nil {
			tk.err = fmt.Errorf("panic in task: %v", p)
			t.recordTaskError(tk.err)
		}
		ctx.curTask = prevTask
		ctx.wsDepth = prevWS
		ctx.curLoop = prevLoop
		if tk.id != 0 && tk.startNS != 0 {
			ctx.emit(ompt.EvTaskEnd, tk.id, 0, ompt.Now()-tk.startNS, "")
		}
		tk.state.Store(taskDone)
		tk.done.Set()
		if tk.parent != nil {
			tk.parent.children.Add(-1)
		}
		t.wakeAll()
	}()
	if tk.fn != nil {
		tk.err = tk.fn(ctx)
		if tk.err != nil {
			t.recordTaskError(tk.err)
		}
	}
}

// TaskWait implements the taskwait directive: the current task waits
// for the completion of its direct children, executing queued tasks
// while it waits instead of blocking idle.
func (c *Context) TaskWait() error {
	t := c.team
	cur := c.curTask
	if cur.children.Load() == 0 {
		return nil
	}
	// The wait marker (introspection only) lets the watchdog and
	// /debug/omp distinguish a thread draining a taskwait from one
	// still executing its body.
	if obs := c.rt.obs.Load(); obs != nil {
		c.waitSince.Store(ompt.Now())
		c.waitKind.Store(waitTaskwait)
		defer c.waitKind.Store(waitNone)
	}
	for cur.children.Load() > 0 {
		if tk := t.claimTask(c); tk != nil {
			t.runTask(c, tk)
			continue
		}
		if t.broken.Load() != 0 {
			return newBrokenAbort("taskwait")
		}
		t.waitFor(func() bool {
			return cur.children.Load() == 0 || t.sched.hasRunnable() || t.broken.Load() != 0
		})
	}
	return nil
}

// recordTaskError keeps the first few task errors for reporting at
// the region join.
func (t *Team) recordTaskError(err error) {
	t.taskErrMu.Lock()
	if len(t.taskErrs) < 16 {
		t.taskErrs = append(t.taskErrs, err)
	}
	t.taskErrMu.Unlock()
}

func (t *Team) takeTaskErrors() []error {
	t.taskErrMu.Lock()
	errs := t.taskErrs
	t.taskErrs = nil
	t.taskErrMu.Unlock()
	return errs
}
