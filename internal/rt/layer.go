// Package rt implements the OMP4Py OpenMP runtime in Go: thread
// teams, barriers, worksharing constructs, loop scheduling, tasking,
// reductions, locks, and the OpenMP 3.0 runtime library API.
//
// Mirroring the paper's dual-runtime architecture, every shared
// counter, flag, and task-queue link goes through a Layer: LayerMutex
// coordinates with mutexes the way OMP4Py's pure-Python runtime does,
// while LayerAtomic uses lock-free fetch-add/compare-exchange the way
// the Cython cruntime does. Teams built on different layers never
// share state, just as the paper's runtime and cruntime contexts are
// independent.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Layer selects the low-level synchronization implementation used by
// a Runtime instance.
type Layer int

const (
	// LayerMutex guards every shared counter update with a mutex,
	// modelling OMP4Py's pure-Python runtime.
	LayerMutex Layer = iota
	// LayerAtomic performs counter updates with hardware atomics
	// (fetch_add / compare_exchange), modelling the Cython cruntime.
	LayerAtomic
)

// String returns the layer name.
func (l Layer) String() string {
	switch l {
	case LayerMutex:
		return "mutex"
	case LayerAtomic:
		return "atomic"
	}
	return fmt.Sprintf("Layer(%d)", int(l))
}

// Counter is a shared integer cell. Both implementations provide the
// same operations; only the coordination mechanism differs.
type Counter interface {
	// Add atomically adds delta and returns the new value.
	Add(delta int64) int64
	// Load returns the current value.
	Load() int64
	// Store replaces the current value.
	Store(v int64)
	// CompareAndSwap installs new if the current value is old.
	CompareAndSwap(old, new int64) bool
}

// NewCounter returns a counter for the layer.
func NewCounter(l Layer) Counter {
	if l == LayerAtomic {
		return &atomicCounter{}
	}
	return &mutexCounter{}
}

type atomicCounter struct{ v atomic.Int64 }

func (c *atomicCounter) Add(d int64) int64                  { return c.v.Add(d) }
func (c *atomicCounter) Load() int64                        { return c.v.Load() }
func (c *atomicCounter) Store(v int64)                      { c.v.Store(v) }
func (c *atomicCounter) CompareAndSwap(old, new int64) bool { return c.v.CompareAndSwap(old, new) }

type mutexCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *mutexCounter) Add(d int64) int64 {
	c.mu.Lock()
	c.v += d
	v := c.v
	c.mu.Unlock()
	return v
}

func (c *mutexCounter) Load() int64 {
	c.mu.Lock()
	v := c.v
	c.mu.Unlock()
	return v
}

func (c *mutexCounter) Store(v int64) {
	c.mu.Lock()
	c.v = v
	c.mu.Unlock()
}

func (c *mutexCounter) CompareAndSwap(old, new int64) bool {
	c.mu.Lock()
	ok := c.v == old
	if ok {
		c.v = new
	}
	c.mu.Unlock()
	return ok
}

// Event is a one-way completion gate with reset, equivalent to
// Python's threading.Event (runtime) / PyEvent (cruntime).
type Event interface {
	// Set marks the event and wakes all waiters.
	Set()
	// Clear resets the event to unset.
	Clear()
	// IsSet reports whether the event is set.
	IsSet() bool
	// Wait blocks until the event is set.
	Wait()
}

// NewEvent returns an event for the layer. The mutex layer uses a
// condition variable throughout; the atomic layer answers IsSet with a
// single atomic load and only falls back to blocking when unset.
func NewEvent(l Layer) Event {
	if l == LayerAtomic {
		e := &atomicEvent{}
		e.ch = make(chan struct{})
		return e
	}
	e := &mutexEvent{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

type mutexEvent struct {
	mu   sync.Mutex
	cond *sync.Cond
	set  bool
}

func (e *mutexEvent) Set() {
	e.mu.Lock()
	e.set = true
	e.mu.Unlock()
	e.cond.Broadcast()
}

func (e *mutexEvent) Clear() {
	e.mu.Lock()
	e.set = false
	e.mu.Unlock()
}

func (e *mutexEvent) IsSet() bool {
	e.mu.Lock()
	s := e.set
	e.mu.Unlock()
	return s
}

func (e *mutexEvent) Wait() {
	e.mu.Lock()
	for !e.set {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// parkSlot is the one-element work handoff cell a persistent pool
// worker parks on between parallel regions (pool.go). Exactly one
// consumer (the worker) polls/gets; producers hand over at most one
// function at a time — a worker is dispatched to only after it was
// taken off the pool's free list, so put never overtakes an
// unconsumed function. The mutex flavour coordinates through a
// condition-style pending field (the Python runtime's Event idiom),
// the atomic flavour through a buffered channel (the cruntime's
// futex-style wait).
type parkSlot interface {
	// put hands d to the worker, waking it if parked.
	put(d dispatch)
	// poll returns a pending dispatch without blocking; ok is false
	// when none is pending (the wait policies' spin probe).
	poll() (d dispatch, ok bool)
	// get blocks until a dispatch arrives, the slot is closed, or
	// timeout elapses (timeout <= 0 blocks forever). closed is true
	// when the slot was closed; both false means timeout.
	get(timeout time.Duration) (d dispatch, ok, closed bool)
	// closeSlot permanently wakes the worker with closed = true. It
	// must not race with put: only close a slot whose worker cannot
	// be dispatched to anymore.
	closeSlot()
}

func newParkSlot(l Layer) parkSlot {
	if l == LayerAtomic {
		return &atomicParkSlot{ch: make(chan dispatch, 1)}
	}
	return &mutexParkSlot{sig: make(chan struct{}, 1)}
}

// atomicParkSlot parks the worker on a buffered channel receive.
// timer is owned by the single consumer and reused across parks so a
// park-unpark cycle costs no allocation (go.mod is past 1.23, so
// Stop/Reset need no channel drain).
type atomicParkSlot struct {
	ch    chan dispatch
	timer *time.Timer
}

func (s *atomicParkSlot) put(d dispatch) { s.ch <- d }

func (s *atomicParkSlot) poll() (dispatch, bool) {
	select {
	case d, ok := <-s.ch:
		// ok is false only on a closed channel; the subsequent get
		// reports the close.
		return d, ok
	default:
		return dispatch{}, false
	}
}

func (s *atomicParkSlot) get(timeout time.Duration) (dispatch, bool, bool) {
	if timeout <= 0 {
		d, ok := <-s.ch
		return d, ok, !ok
	}
	if s.timer == nil {
		s.timer = time.NewTimer(timeout)
	} else {
		s.timer.Reset(timeout)
	}
	select {
	case d, ok := <-s.ch:
		s.timer.Stop()
		return d, ok, !ok
	case <-s.timer.C:
		return dispatch{}, false, false
	}
}

func (s *atomicParkSlot) closeSlot() { close(s.ch) }

// mutexParkSlot guards the pending function with a mutex and parks on
// a one-shot wakeup signal. A spurious wakeup (a stale signal left in
// the buffer) only re-runs the guarded check.
type mutexParkSlot struct {
	mu     sync.Mutex
	d      dispatch
	has    bool
	closed bool
	sig    chan struct{}
	timer  *time.Timer // consumer-owned, reused across parks
}

func (s *mutexParkSlot) put(d dispatch) {
	s.mu.Lock()
	s.d, s.has = d, true
	s.mu.Unlock()
	select {
	case s.sig <- struct{}{}:
	default:
	}
}

func (s *mutexParkSlot) poll() (dispatch, bool) {
	s.mu.Lock()
	d, ok := s.d, s.has
	s.d, s.has = dispatch{}, false
	s.mu.Unlock()
	return d, ok
}

func (s *mutexParkSlot) get(timeout time.Duration) (dispatch, bool, bool) {
	var expired <-chan time.Time
	if timeout > 0 {
		if s.timer == nil {
			s.timer = time.NewTimer(timeout)
		} else {
			s.timer.Reset(timeout)
		}
		defer s.timer.Stop()
		expired = s.timer.C
	}
	for {
		s.mu.Lock()
		d, ok, closed := s.d, s.has, s.closed
		s.d, s.has = dispatch{}, false
		s.mu.Unlock()
		if ok {
			return d, true, false
		}
		if closed {
			return dispatch{}, false, true
		}
		select {
		case <-s.sig:
		case <-expired:
			return dispatch{}, false, false
		}
	}
}

func (s *mutexParkSlot) closeSlot() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.sig <- struct{}{}:
	default:
	}
}

type atomicEvent struct {
	set atomic.Bool
	mu  sync.Mutex
	ch  chan struct{}
}

func (e *atomicEvent) Set() {
	if e.set.Swap(true) {
		return
	}
	e.mu.Lock()
	close(e.ch)
	e.mu.Unlock()
}

func (e *atomicEvent) Clear() {
	e.mu.Lock()
	if e.set.Load() {
		e.ch = make(chan struct{})
		e.set.Store(false)
	}
	e.mu.Unlock()
}

func (e *atomicEvent) IsSet() bool { return e.set.Load() }

func (e *atomicEvent) Wait() {
	if e.set.Load() {
		return
	}
	e.mu.Lock()
	ch := e.ch
	set := e.set.Load()
	e.mu.Unlock()
	if set {
		return
	}
	<-ch
}
