package rt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/directive"
)

func TestParseScheduleEnvEdgeCases(t *testing.T) {
	cases := []struct {
		in    string
		kind  directive.ScheduleKind
		chunk int64
		bad   bool
	}{
		{in: "static", kind: directive.ScheduleStatic},
		{in: "dynamic,4", kind: directive.ScheduleDynamic, chunk: 4},
		{in: "guided,300", kind: directive.ScheduleGuided, chunk: 300},
		// Kinds without a chunk, including the ones only meaningful as
		// ICV values.
		{in: "auto", kind: directive.ScheduleAuto},
		{in: "runtime", kind: directive.ScheduleRuntime},
		// Whitespace and case variations around both fields.
		{in: "  DYNAMIC , 8 ", kind: directive.ScheduleDynamic, chunk: 8},
		{in: "Guided,1", kind: directive.ScheduleGuided, chunk: 1},
		// Invalid chunk sizes: zero, negative, non-numeric, trailing
		// comma (empty chunk field).
		{in: "static,0", bad: true},
		{in: "dynamic,-4", bad: true},
		{in: "dynamic,four", bad: true},
		{in: "dynamic,", bad: true},
		{in: "static,1,2", bad: true},
		// Unknown kind.
		{in: "fastest", bad: true},
		{in: "", bad: true},
	}
	for _, c := range cases {
		s, err := ParseScheduleEnv(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseScheduleEnv(%q) = %+v, want error", c.in, s)
				continue
			}
			var mis *MisuseError
			if !errors.As(err, &mis) {
				t.Errorf("ParseScheduleEnv(%q) error %T, want *MisuseError", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseScheduleEnv(%q): %v", c.in, err)
			continue
		}
		if s.Kind != c.kind || s.Chunk != c.chunk {
			t.Errorf("ParseScheduleEnv(%q) = %v,%d, want %v,%d", c.in, s.Kind, s.Chunk, c.kind, c.chunk)
		}
	}
}

func fakeEnv(vars map[string]string) func(string) string {
	return func(k string) string { return vars[k] }
}

func TestLoadEnvWaitPolicy(t *testing.T) {
	cases := []struct {
		val  string
		want string
	}{
		{"", "passive"}, // default
		{"active", "active"},
		{"ACTIVE", "active"},
		{" Passive ", "passive"},
		{"aggressive", "passive"}, // unknown values keep the default
	}
	for _, c := range cases {
		r := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{"OMP_WAIT_POLICY": c.val}))
		if got := r.GetWaitPolicy(); got != c.want {
			t.Errorf("OMP_WAIT_POLICY=%q: GetWaitPolicy() = %q, want %q", c.val, got, c.want)
		}
	}
}

func TestDisplayEnv(t *testing.T) {
	var buf bytes.Buffer
	prev := displayEnvOut
	displayEnvOut = &buf
	defer func() { displayEnvOut = prev }()

	NewWithEnv(LayerAtomic, fakeEnv(map[string]string{
		"OMP_DISPLAY_ENV": "true",
		"OMP_NUM_THREADS": "6",
		"OMP_SCHEDULE":    "dynamic,4",
		"OMP_WAIT_POLICY": "active",
	}))
	out := buf.String()
	for _, want := range []string{
		"OPENMP DISPLAY ENVIRONMENT BEGIN",
		"_OPENMP = '200805'",
		"OMP_NUM_THREADS = '6'",
		"OMP_SCHEDULE = 'DYNAMIC,4'",
		"OMP_WAIT_POLICY = 'ACTIVE'",
		"OPENMP DISPLAY ENVIRONMENT END",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("display output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "OMP4GO_TRACE") {
		t.Errorf("non-verbose display should not list OMP4GO_TRACE:\n%s", out)
	}

	buf.Reset()
	NewWithEnv(LayerAtomic, fakeEnv(map[string]string{
		"OMP_DISPLAY_ENV": "VERBOSE",
		"OMP4GO_TRACE":    "/tmp/out.json",
	}))
	if out := buf.String(); !strings.Contains(out, "OMP4GO_TRACE = '/tmp/out.json'") {
		t.Errorf("verbose display missing OMP4GO_TRACE:\n%s", out)
	}

	buf.Reset()
	NewWithEnv(LayerAtomic, fakeEnv(map[string]string{"OMP_DISPLAY_ENV": "false"}))
	if buf.Len() != 0 {
		t.Errorf("OMP_DISPLAY_ENV=false printed:\n%s", buf.String())
	}
}

// TestDisplayEnvObservability covers the observability variables in
// the OMP_DISPLAY_ENV report: verbose mode lists OMP4GO_METRICS and
// OMP4GO_WATCHDOG with the parsed values, plain mode omits them.
func TestDisplayEnvObservability(t *testing.T) {
	cases := []struct {
		name    string
		env     map[string]string
		want    []string
		notWant []string
	}{
		{
			name: "verbose defaults",
			env:  map[string]string{"OMP_DISPLAY_ENV": "verbose"},
			want: []string{"OMP4GO_METRICS = ''", "OMP4GO_WATCHDOG = ''",
				"OMP4GO_PROFILE = 'on'", "OMP4GO_FLIGHT = ''"},
		},
		{
			name: "verbose with profiler off",
			env: map[string]string{
				"OMP_DISPLAY_ENV": "verbose",
				"OMP4GO_PROFILE":  "off",
			},
			want: []string{"OMP4GO_PROFILE = 'off'"},
		},
		{
			name: "verbose with metrics addr",
			env: map[string]string{
				"OMP_DISPLAY_ENV": "verbose",
				// An address that cannot bind still displays: display
				// reports the ICV, not the listener.
				"OMP4GO_METRICS": "127.0.0.1:0",
			},
			want: []string{"OMP4GO_METRICS = '127.0.0.1:0'"},
		},
		{
			name: "verbose with watchdog threshold",
			env: map[string]string{
				"OMP_DISPLAY_ENV": "verbose",
				"OMP4GO_WATCHDOG": "750ms",
			},
			want: []string{"OMP4GO_WATCHDOG = '750ms'"},
		},
		{
			name: "verbose with invalid watchdog keeps it off",
			env: map[string]string{
				"OMP_DISPLAY_ENV": "verbose",
				"OMP4GO_WATCHDOG": "soon",
			},
			want: []string{"OMP4GO_WATCHDOG = ''"},
		},
		{
			name: "verbose lists serve variables unset",
			env:  map[string]string{"OMP_DISPLAY_ENV": "verbose"},
			want: []string{
				"OMP4GO_SERVE_ADDR = ''",
				"OMP4GO_SERVE_MAX_STEPS = ''",
				"OMP4GO_SERVE_QUEUE_DEPTH = ''",
				"OMP4GO_SERVE_MAX_SESSIONS = ''",
				"OMP4GO_SERVE_SESSION_IDLE = ''",
			},
		},
		{
			name: "verbose echoes serve configuration",
			env: map[string]string{
				"OMP_DISPLAY_ENV":             "verbose",
				"OMP4GO_SERVE_ADDR":           "127.0.0.1:8500",
				"OMP4GO_SERVE_MAX_STEPS":      "1000000",
				"OMP4GO_SERVE_MAX_WALL":       "5s",
				"OMP4GO_SERVE_MAX_BODY_BYTES": "65536",
			},
			want: []string{
				"OMP4GO_SERVE_ADDR = '127.0.0.1:8500'",
				"OMP4GO_SERVE_MAX_STEPS = '1000000'",
				"OMP4GO_SERVE_MAX_WALL = '5s'",
				"OMP4GO_SERVE_MAX_BODY_BYTES = '65536'",
			},
		},
		{
			name: "verbose lists mpi variables unset",
			env:  map[string]string{"OMP_DISPLAY_ENV": "verbose"},
			want: []string{
				"OMP4GO_MPI_ADDR = ''",
				"OMP4GO_MPI_RANK = ''",
				"OMP4GO_MPI_SIZE = ''",
				"OMP4GO_MPI_COALESCE = ''",
			},
		},
		{
			name: "verbose echoes mpi rank configuration",
			env: map[string]string{
				"OMP_DISPLAY_ENV":     "verbose",
				"OMP4GO_MPI_ADDR":     "127.0.0.1:7311",
				"OMP4GO_MPI_RANK":     "2",
				"OMP4GO_MPI_SIZE":     "4",
				"OMP4GO_MPI_COALESCE": "65536",
			},
			want: []string{
				"OMP4GO_MPI_ADDR = '127.0.0.1:7311'",
				"OMP4GO_MPI_RANK = '2'",
				"OMP4GO_MPI_SIZE = '4'",
				"OMP4GO_MPI_COALESCE = '65536'",
			},
		},
		{
			name: "non-verbose omits mpi variables",
			env: map[string]string{
				"OMP_DISPLAY_ENV": "true",
				"OMP4GO_MPI_ADDR": "127.0.0.1:7311",
			},
			notWant: []string{"OMP4GO_MPI_ADDR"},
		},
		{
			name: "verbose redacts serve tokens",
			env: map[string]string{
				"OMP_DISPLAY_ENV":     "verbose",
				"OMP4GO_SERVE_TOKENS": "alice,bob",
			},
			want:    []string{"OMP4GO_SERVE_TOKENS = '(2 tokens)'"},
			notWant: []string{"alice", "bob"},
		},
		{
			name:    "plain display omits omp4go extensions",
			env:     map[string]string{"OMP_DISPLAY_ENV": "true", "OMP4GO_WATCHDOG": "1s", "OMP4GO_SERVE_ADDR": ":8500"},
			want:    []string{"OPENMP DISPLAY ENVIRONMENT BEGIN"},
			notWant: []string{"OMP4GO_METRICS", "OMP4GO_WATCHDOG", "OMP4GO_SERVE", "OMP4GO_PROFILE", "OMP4GO_FLIGHT"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			prev := displayEnvOut
			displayEnvOut = &buf
			defer func() { displayEnvOut = prev }()
			r := NewWithEnv(LayerAtomic, fakeEnv(c.env))
			defer r.Shutdown()
			r.StopWatchdog() // disarm anything OMP4GO_WATCHDOG armed
			out := buf.String()
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("display output missing %q:\n%s", want, out)
				}
			}
			for _, notWant := range c.notWant {
				if strings.Contains(out, notWant) {
					t.Errorf("display output should not contain %q:\n%s", notWant, out)
				}
			}
		})
	}
}

// TestEnvTraceActivation covers the OMP4GO_TRACE path end to end: the
// variable attaches the built-in tracer at init and FlushTrace writes
// the Chrome trace file.
func TestEnvTraceActivation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	r := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{"OMP4GO_TRACE": path}))
	if r.EnvTracer() == nil || r.Tool() == nil {
		t.Fatalf("OMP4GO_TRACE did not attach the tracer")
	}
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error { return nil })
	if err != nil {
		t.Fatalf("parallel failed: %v", err)
	}
	if err := r.FlushTrace(); err != nil {
		t.Fatalf("FlushTrace: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if !bytes.Contains(data, []byte("traceEvents")) {
		t.Fatalf("trace file lacks traceEvents:\n%s", data)
	}

	// Without the variable, FlushTrace is a no-op.
	r2 := newTestRuntime(LayerAtomic)
	if r2.EnvTracer() != nil {
		t.Fatalf("tracer attached without OMP4GO_TRACE")
	}
	if err := r2.FlushTrace(); err != nil {
		t.Fatalf("no-op FlushTrace: %v", err)
	}
}
