package rt

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestUndeferredErrorDeliveredOnce is the ISSUE's headline bugfix: an
// undeferred (if(false)) task's error returns from SubmitTask and is
// NOT delivered a second time at the region join.
func TestUndeferredErrorDeliveredOnce(t *testing.T) {
	sentinel := errors.New("undeferred boom")
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			var submitErr, waitErr error
			regionErr := inSingle(t, r, func(c *Context) error {
				submitErr = c.SubmitTask(TaskOpts{IfSet: true, If: false}, func(*Context) error {
					return sentinel
				})
				waitErr = c.TaskWait()
				return nil
			})
			if !errors.Is(submitErr, sentinel) {
				t.Fatalf("%v/%v: SubmitTask returned %v, want %v", l, sched, submitErr, sentinel)
			}
			if waitErr != nil {
				t.Fatalf("%v/%v: TaskWait re-delivered the error: %v", l, sched, waitErr)
			}
			if regionErr != nil {
				t.Fatalf("%v/%v: region join re-delivered the error: %v", l, sched, regionErr)
			}
		}
	}
}

// TestTaskWaitSurfacesChildError is the second satellite fix: a
// deferred child's failure surfaces at the next taskwait instead of
// being swallowed (and is not delivered again at the region join).
func TestTaskWaitSurfacesChildError(t *testing.T) {
	sentinel := errors.New("deferred boom")
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			var waitErr error
			regionErr := inSingle(t, r, func(c *Context) error {
				if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
					return sentinel
				}); err != nil {
					return err
				}
				waitErr = c.TaskWait()
				return nil
			})
			if !errors.Is(waitErr, sentinel) {
				t.Fatalf("%v/%v: TaskWait returned %v, want %v", l, sched, waitErr, sentinel)
			}
			if regionErr != nil {
				t.Fatalf("%v/%v: region join re-delivered the error: %v", l, sched, regionErr)
			}
		}
	}
}

// TestRegionJoinStillCatchesUnwaitedErrors: without a taskwait, the
// deferred child's error still reaches the region join — the fix
// removes double delivery, not the safety net.
func TestRegionJoinStillCatchesUnwaitedErrors(t *testing.T) {
	sentinel := errors.New("unwaited boom")
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		regionErr := inSingle(t, r, func(c *Context) error {
			return c.SubmitTask(TaskOpts{}, func(*Context) error {
				return sentinel
			})
		})
		if !errors.Is(regionErr, sentinel) {
			t.Fatalf("%v: region join returned %v, want %v", l, regionErr, sentinel)
		}
	}
}

// TestNestedTaskwaitErrorPropagation: a grandchild's failure surfaces
// at the child's taskwait; the child forwards it, and it reaches the
// outer taskwait exactly once — under both sync layers and both
// schedulers.
func TestNestedTaskwaitErrorPropagation(t *testing.T) {
	sentinel := errors.New("grandchild boom")
	for _, l := range bothLayers {
		for _, sched := range bothScheds {
			r := newSchedRuntime(l, sched)
			var outerErr error
			regionErr := inSingle(t, r, func(c *Context) error {
				if err := c.SubmitTask(TaskOpts{}, func(cc *Context) error {
					if err := cc.SubmitTask(TaskOpts{}, func(*Context) error {
						return sentinel
					}); err != nil {
						return err
					}
					return cc.TaskWait() // inner taskwait sees the grandchild
				}); err != nil {
					return err
				}
				outerErr = c.TaskWait()
				return nil
			})
			if !errors.Is(outerErr, sentinel) {
				t.Fatalf("%v/%v: outer TaskWait returned %v, want %v", l, sched, outerErr, sentinel)
			}
			if regionErr != nil {
				t.Fatalf("%v/%v: region join re-delivered the error: %v", l, sched, regionErr)
			}
		}
	}
}

// TestPanicInDeferredTask: the recover converts a deferred task's
// panic into an error surfaced at taskwait.
func TestPanicInDeferredTask(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		var waitErr error
		regionErr := inSingle(t, r, func(c *Context) error {
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				panic("task exploded")
			}); err != nil {
				return err
			}
			waitErr = c.TaskWait()
			return nil
		})
		if waitErr == nil || !strings.Contains(waitErr.Error(), "panic in task") {
			t.Fatalf("%v: TaskWait returned %v, want panic-in-task error", l, waitErr)
		}
		if regionErr != nil {
			t.Fatalf("%v: region join re-delivered the panic: %v", l, regionErr)
		}
	}
}

// TestPanicInUndeferredTask: an undeferred task's panic returns from
// SubmitTask as an error (not a process-killing unwind) and is not
// duplicated downstream.
func TestPanicInUndeferredTask(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		var submitErr, waitErr error
		regionErr := inSingle(t, r, func(c *Context) error {
			submitErr = c.SubmitTask(TaskOpts{IfSet: true, If: false}, func(*Context) error {
				panic("undeferred exploded")
			})
			waitErr = c.TaskWait()
			return nil
		})
		if submitErr == nil || !strings.Contains(submitErr.Error(), "panic in task") {
			t.Fatalf("%v: SubmitTask returned %v, want panic-in-task error", l, submitErr)
		}
		if waitErr != nil {
			t.Fatalf("%v: TaskWait re-delivered the panic: %v", l, waitErr)
		}
		if regionErr != nil {
			t.Fatalf("%v: region join re-delivered the panic: %v", l, regionErr)
		}
	}
}

// TestTaskErrorCapSixteen: a flood of failing tasks stores at most
// maxTaskErrs errors; the joined error reports the first failure plus
// maxTaskErrs-1 extras, and the overflow is dropped, not deadlocked.
func TestTaskErrorCapSixteen(t *testing.T) {
	const failing = 40
	r := newTestRuntime(LayerAtomic)
	var waitErr error
	regionErr := inSingle(t, r, func(c *Context) error {
		for i := 0; i < failing; i++ {
			i := i
			// A dependence chain serializes the tasks so error arrival
			// order (and thus the "first" error) is deterministic.
			if err := c.SubmitTask(TaskOpts{Depends: InOut("e")}, func(*Context) error {
				return fmt.Errorf("fail %d", i)
			}); err != nil {
				return err
			}
		}
		waitErr = c.TaskWait()
		return nil
	})
	if regionErr != nil {
		t.Fatalf("region join re-delivered task errors: %v", regionErr)
	}
	var te *teamError
	if !errors.As(waitErr, &te) {
		t.Fatalf("TaskWait returned %T (%v), want *teamError", waitErr, waitErr)
	}
	if te.extra != maxTaskErrs-1 {
		t.Fatalf("teamError extra = %d, want %d (cap %d)", te.extra, maxTaskErrs-1, maxTaskErrs)
	}
	if te.first.Error() != "fail 0" {
		t.Fatalf("first error = %v, want fail 0", te.first)
	}
}

// TestTaskWaitNoChildrenReturnsPendingErrors: taskwait with zero live
// children still drains errors already recorded by completed ones.
func TestTaskWaitNoChildrenReturnsPendingErrors(t *testing.T) {
	sentinel := errors.New("already done boom")
	r := newTestRuntime(LayerAtomic)
	var firstWait, secondWait error
	regionErr := inSingle(t, r, func(c *Context) error {
		if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
			return sentinel
		}); err != nil {
			return err
		}
		firstWait = c.TaskWait()
		secondWait = c.TaskWait() // nothing left: error must not repeat
		return nil
	})
	if !errors.Is(firstWait, sentinel) {
		t.Fatalf("first TaskWait returned %v, want %v", firstWait, sentinel)
	}
	if secondWait != nil {
		t.Fatalf("second TaskWait re-delivered the error: %v", secondWait)
	}
	if regionErr != nil {
		t.Fatalf("region join re-delivered the error: %v", regionErr)
	}
}
