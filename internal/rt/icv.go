package rt

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"github.com/omp4go/omp4go/internal/directive"
)

// Schedule pairs a scheduling policy with a chunk size (0 means the
// policy default).
type Schedule struct {
	Kind  directive.ScheduleKind
	Chunk int64
}

// icvSet holds the internal control variables defined by OpenMP 3.0.
// The set is guarded by a mutex: ICV reads are off the hot paths.
type icvSet struct {
	mu              sync.Mutex
	numThreads      int      // nthreads-var
	dynamic         bool     // dyn-var
	nested          bool     // nest-var
	runSched        Schedule // run-sched-var, used by schedule(runtime)
	defSched        Schedule // def-sched-var, used by schedule(auto)
	maxActiveLevels int      // max-active-levels-var
	threadLimit     int      // thread-limit-var
	stackTrace      bool     // diagnostic: dump worker panics
}

func defaultICVs() icvSet {
	return icvSet{
		numThreads:      runtime.NumCPU(),
		dynamic:         false,
		nested:          false,
		runSched:        Schedule{Kind: directive.ScheduleStatic},
		defSched:        Schedule{Kind: directive.ScheduleStatic},
		maxActiveLevels: 1 << 30,
		threadLimit:     1 << 30,
	}
}

// loadEnvICVs applies OMP_NUM_THREADS, OMP_SCHEDULE, OMP_DYNAMIC,
// OMP_NESTED, OMP_THREAD_LIMIT and OMP_MAX_ACTIVE_LEVELS, matching the
// environment-variable surface of OpenMP 3.0.
func (s *icvSet) loadEnv(getenv func(string) string) {
	if getenv == nil {
		getenv = os.Getenv
	}
	if v := getenv("OMP_NUM_THREADS"); v != "" {
		// OpenMP allows a comma-separated list for nested levels; the
		// first entry applies to the outermost level.
		first := strings.Split(v, ",")[0]
		if n, err := strconv.Atoi(strings.TrimSpace(first)); err == nil && n > 0 {
			s.numThreads = n
		}
	}
	if v := getenv("OMP_SCHEDULE"); v != "" {
		if sched, err := ParseScheduleEnv(v); err == nil {
			s.runSched = sched
		}
	}
	if v := getenv("OMP_DYNAMIC"); v != "" {
		s.dynamic = isEnvTrue(v)
	}
	if v := getenv("OMP_NESTED"); v != "" {
		s.nested = isEnvTrue(v)
	}
	if v := getenv("OMP_THREAD_LIMIT"); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
			s.threadLimit = n
		}
	}
	if v := getenv("OMP_MAX_ACTIVE_LEVELS"); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 0 {
			s.maxActiveLevels = n
		}
	}
}

func isEnvTrue(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// ParseScheduleEnv parses an OMP_SCHEDULE value such as "dynamic,4".
func ParseScheduleEnv(v string) (Schedule, error) {
	parts := strings.SplitN(v, ",", 2)
	kind, err := directive.ParseScheduleKind(parts[0])
	if err != nil {
		return Schedule{}, err
	}
	sched := Schedule{Kind: kind}
	if len(parts) == 2 {
		chunk, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil || chunk < 1 {
			return Schedule{}, &MisuseError{Msg: "invalid chunk size in OMP_SCHEDULE: " + v}
		}
		sched.Chunk = chunk
	}
	return sched, nil
}
