package rt

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/omp4go/omp4go/internal/directive"
)

// Schedule pairs a scheduling policy with a chunk size (0 means the
// policy default).
type Schedule struct {
	Kind  directive.ScheduleKind
	Chunk int64
}

// icvSet holds the internal control variables defined by OpenMP 3.0.
// The set is guarded by a mutex: ICV reads are off the hot paths.
type icvSet struct {
	mu              sync.Mutex
	numThreads      int           // nthreads-var
	dynamic         bool          // dyn-var
	nested          bool          // nest-var
	runSched        Schedule      // run-sched-var, used by schedule(runtime)
	defSched        Schedule      // def-sched-var, used by schedule(auto)
	maxActiveLevels int           // max-active-levels-var
	threadLimit     int           // thread-limit-var
	stackTrace      bool          // diagnostic: dump worker panics
	waitPolicy      string        // wait-policy-var: "active" or "passive"
	displayEnv      string        // OMP_DISPLAY_ENV: "", "true" or "verbose"
	traceFile       string        // OMP4GO_TRACE output file (tool activation)
	taskSched       string        // OMP4GO_TASK_SCHED: "", "steal" or "list"
	poolMode        string        // OMP4GO_POOL: "", "on" or "off"
	kernelMode      string        // OMP4GO_COMPILE_KERNELS: "", "on" or "off"
	metricsAddr     string        // OMP4GO_METRICS listen address ("" = off)
	watchdog        time.Duration // OMP4GO_WATCHDOG stall threshold (0 = off)
	profileMode     string        // OMP4GO_PROFILE: "", "on" or "off" (default on)
	flightDir       string        // OMP4GO_FLIGHT dump directory ("" = off)
	// serveEnv holds the raw OMP4GO_SERVE_* values that were set
	// (internal/serve owns their parsing; see serveEnvVars).
	serveEnv map[string]string
	// mpiEnv holds the raw OMP4GO_MPI_* values that were set
	// (internal/mpi owns their parsing; see mpiEnvVars).
	mpiEnv map[string]string
}

// serveEnvVars are the execution-service environment variables
// (internal/serve/config.go defines and parses them; serve sits above
// rt so the names are mirrored here). OMP_DISPLAY_ENV=verbose lists
// them so a deployment can see its full configuration in one report.
var serveEnvVars = []string{
	"OMP4GO_SERVE_ADDR",
	"OMP4GO_SERVE_MAX_BODY_BYTES",
	"OMP4GO_SERVE_MAX_STEPS",
	"OMP4GO_SERVE_MAX_ALLOCS",
	"OMP4GO_SERVE_MAX_WALL",
	"OMP4GO_SERVE_MAX_THREADS",
	"OMP4GO_SERVE_MAX_WORKERS",
	"OMP4GO_SERVE_QUEUE_DEPTH",
	"OMP4GO_SERVE_HISTORY",
	"OMP4GO_SERVE_TOKENS",
	"OMP4GO_SERVE_WATCHDOG",
	"OMP4GO_SERVE_MAX_SESSIONS",
	"OMP4GO_SERVE_SESSION_IDLE",
	"OMP4GO_SERVE_FLIGHT",
}

// DisplayedServeEnvVars returns the OMP4GO_SERVE_* names the verbose
// display lists, letting internal/serve's tests assert the mirror
// stays in sync with its parser.
func DisplayedServeEnvVars() []string {
	out := make([]string, len(serveEnvVars))
	copy(out, serveEnvVars)
	return out
}

// mpiEnvVars are the distributed-transport environment variables
// (internal/mpi/tcp.go defines and parses them; mpi sits above rt so
// the names are mirrored here, like serveEnvVars).
var mpiEnvVars = []string{
	"OMP4GO_MPI_ADDR",
	"OMP4GO_MPI_RANK",
	"OMP4GO_MPI_SIZE",
	"OMP4GO_MPI_COALESCE",
}

// DisplayedMPIEnvVars returns the OMP4GO_MPI_* names the verbose
// display lists, letting internal/mpi's tests assert the mirror stays
// in sync with its parser.
func DisplayedMPIEnvVars() []string {
	out := make([]string, len(mpiEnvVars))
	copy(out, mpiEnvVars)
	return out
}

func defaultICVs() icvSet {
	return icvSet{
		numThreads:      runtime.NumCPU(),
		dynamic:         false,
		nested:          false,
		runSched:        Schedule{Kind: directive.ScheduleStatic},
		defSched:        Schedule{Kind: directive.ScheduleStatic},
		maxActiveLevels: 1 << 30,
		threadLimit:     1 << 30,
	}
}

// loadEnv applies OMP_NUM_THREADS, OMP_SCHEDULE, OMP_DYNAMIC,
// OMP_NESTED, OMP_THREAD_LIMIT, OMP_MAX_ACTIVE_LEVELS,
// OMP_WAIT_POLICY and OMP_DISPLAY_ENV, matching the
// environment-variable surface of OpenMP 3.0, plus the OMP4Go
// extension OMP4GO_TRACE (tool activation, mirroring OMP_TOOL).
func (s *icvSet) loadEnv(getenv func(string) string) {
	if getenv == nil {
		getenv = os.Getenv
	}
	if v := getenv("OMP_NUM_THREADS"); v != "" {
		// OpenMP allows a comma-separated list for nested levels; the
		// first entry applies to the outermost level.
		first := strings.Split(v, ",")[0]
		if n, err := strconv.Atoi(strings.TrimSpace(first)); err == nil && n > 0 {
			s.numThreads = n
		}
	}
	if v := getenv("OMP_SCHEDULE"); v != "" {
		if sched, err := ParseScheduleEnv(v); err == nil {
			s.runSched = sched
		}
	}
	if v := getenv("OMP_DYNAMIC"); v != "" {
		s.dynamic = isEnvTrue(v)
	}
	if v := getenv("OMP_NESTED"); v != "" {
		s.nested = isEnvTrue(v)
	}
	if v := getenv("OMP_THREAD_LIMIT"); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
			s.threadLimit = n
		}
	}
	if v := getenv("OMP_MAX_ACTIVE_LEVELS"); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 0 {
			s.maxActiveLevels = n
		}
	}
	if v := getenv("OMP_WAIT_POLICY"); v != "" {
		// The policy controls the idle loop of persistent pool
		// workers between regions (pool.go): "active" spins before
		// parking, "passive" parks immediately. Unknown values keep
		// the default, as libgomp does.
		if p, err := parseWaitPolicy(v); err == nil {
			s.waitPolicy = p
		}
	}
	if v := getenv("OMP_DISPLAY_ENV"); v != "" {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "1", "true", "yes", "on":
			s.displayEnv = "true"
		case "verbose":
			s.displayEnv = "verbose"
		}
	}
	if v := getenv("OMP4GO_TRACE"); v != "" {
		s.traceFile = strings.TrimSpace(v)
	}
	if v := getenv("OMP4GO_POOL"); v != "" {
		// Worker-pool selection: "on" (default, persistent worker
		// goroutines reused across regions) or "off" (the seed's
		// spawn-per-region path, kept as a differential baseline
		// mirroring OMP4GO_TASK_SCHED=list).
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "1", "true", "yes", "on":
			s.poolMode = "on"
		case "0", "false", "no", "off":
			s.poolMode = "off"
		}
	}
	if v := getenv("OMP4GO_COMPILE_KERNELS"); v != "" {
		// Compiled loop kernels: "on" (default; the compiled tier may
		// replace static-schedule worksharing loops with runtime-aware
		// kernels) or "off" (force the interp-bridge lowering, the
		// differential baseline mirroring OMP4GO_POOL=off).
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "1", "true", "yes", "on":
			s.kernelMode = "on"
		case "0", "false", "no", "off":
			s.kernelMode = "off"
		}
	}
	if v := getenv("OMP4GO_METRICS"); v != "" {
		// Listen address for the live metrics/introspection endpoint
		// (serve.go), e.g. ":9090" or "127.0.0.1:0".
		s.metricsAddr = strings.TrimSpace(v)
	}
	if v := getenv("OMP4GO_PROFILE"); v != "" {
		// Time-attribution profiler (internal/prof): "on" (the
		// default — multi-thread regions attribute their time into
		// the per-state breakdown) or "off".
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "1", "true", "yes", "on":
			s.profileMode = "on"
		case "0", "false", "no", "off":
			s.profileMode = "off"
		}
	}
	if v := getenv("OMP4GO_FLIGHT"); v != "" {
		// Flight recorder (flight.go): a directory to write
		// stall/kill-triggered dumps into, or an on-spelling for a
		// default directory under the OS temp dir. Off-spellings keep
		// it disabled.
		t := strings.TrimSpace(v)
		switch strings.ToLower(t) {
		case "0", "false", "no", "off":
		case "1", "true", "yes", "on":
			s.flightDir = defaultFlightDir()
		default:
			s.flightDir = t
		}
	}
	if v := getenv("OMP4GO_WATCHDOG"); v != "" {
		// Stall threshold for the watchdog (watchdog.go), e.g. "5s".
		// A bare number is taken as seconds; unparsable or
		// non-positive values leave the watchdog off.
		t := strings.TrimSpace(v)
		if d, err := time.ParseDuration(t); err == nil && d > 0 {
			s.watchdog = d
		} else if secs, err := strconv.Atoi(t); err == nil && secs > 0 {
			s.watchdog = time.Duration(secs) * time.Second
		}
	}
	// Execution-service variables (parsed by internal/serve, which
	// sits above rt and cannot be imported from here). They are
	// captured raw so OMP_DISPLAY_ENV=verbose gives one complete
	// picture of a deployment's environment.
	for _, name := range serveEnvVars {
		if v := strings.TrimSpace(getenv(name)); v != "" {
			if s.serveEnv == nil {
				s.serveEnv = map[string]string{}
			}
			s.serveEnv[name] = v
		}
	}
	// Distributed-transport variables (parsed by internal/mpi),
	// captured raw for the same reason.
	for _, name := range mpiEnvVars {
		if v := strings.TrimSpace(getenv(name)); v != "" {
			if s.mpiEnv == nil {
				s.mpiEnv = map[string]string{}
			}
			s.mpiEnv[name] = v
		}
	}
	if v := getenv("OMP4GO_TASK_SCHED"); v != "" {
		// Scheduler selection: "steal" (default, per-thread
		// work-stealing deques) or "list" (the paper's shared
		// linked-list queue, kept for differential comparison).
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "steal":
			s.taskSched = "steal"
		case "list":
			s.taskSched = "list"
		}
	}
}

// displayEnvOut receives the OMP_DISPLAY_ENV report at runtime init
// (a package variable so tests can capture it).
var displayEnvOut io.Writer = os.Stderr

// display prints the ICVs in libgomp's OMP_DISPLAY_ENV format.
func (s *icvSet) display(w io.Writer) {
	onoff := func(b bool) string {
		if b {
			return "TRUE"
		}
		return "FALSE"
	}
	fmt.Fprintln(w, "OPENMP DISPLAY ENVIRONMENT BEGIN")
	fmt.Fprintf(w, "  _OPENMP = '200805'\n") // OpenMP 3.0
	fmt.Fprintf(w, "  OMP_DYNAMIC = '%s'\n", onoff(s.dynamic))
	fmt.Fprintf(w, "  OMP_NESTED = '%s'\n", onoff(s.nested))
	fmt.Fprintf(w, "  OMP_NUM_THREADS = '%d'\n", s.numThreads)
	fmt.Fprintf(w, "  OMP_SCHEDULE = '%s'\n", scheduleEnvString(s.runSched))
	fmt.Fprintf(w, "  OMP_THREAD_LIMIT = '%d'\n", s.threadLimit)
	fmt.Fprintf(w, "  OMP_MAX_ACTIVE_LEVELS = '%d'\n", s.maxActiveLevels)
	fmt.Fprintf(w, "  OMP_WAIT_POLICY = '%s'\n", strings.ToUpper(waitPolicyOrDefault(s.waitPolicy)))
	if s.displayEnv == "verbose" {
		fmt.Fprintf(w, "  OMP4GO_TRACE = '%s'\n", s.traceFile)
		fmt.Fprintf(w, "  OMP4GO_TASK_SCHED = '%s'\n", parseSchedMode(s.taskSched))
		pool := "on"
		if s.poolMode == "off" {
			pool = "off"
		}
		fmt.Fprintf(w, "  OMP4GO_POOL = '%s'\n", pool)
		kern := "on"
		if s.kernelMode == "off" {
			kern = "off"
		}
		fmt.Fprintf(w, "  OMP4GO_COMPILE_KERNELS = '%s'\n", kern)
		fmt.Fprintf(w, "  OMP4GO_METRICS = '%s'\n", s.metricsAddr)
		wd := ""
		if s.watchdog > 0 {
			wd = s.watchdog.String()
		}
		fmt.Fprintf(w, "  OMP4GO_WATCHDOG = '%s'\n", wd)
		profile := "on"
		if s.profileMode == "off" {
			profile = "off"
		}
		fmt.Fprintf(w, "  OMP4GO_PROFILE = '%s'\n", profile)
		fmt.Fprintf(w, "  OMP4GO_FLIGHT = '%s'\n", s.flightDir)
		for _, name := range serveEnvVars {
			v := s.serveEnv[name]
			if name == "OMP4GO_SERVE_TOKENS" && v != "" {
				// Tokens are credentials: report how many were set,
				// never their values.
				v = fmt.Sprintf("(%d tokens)", 1+strings.Count(v, ","))
			}
			fmt.Fprintf(w, "  %s = '%s'\n", name, v)
		}
		for _, name := range mpiEnvVars {
			fmt.Fprintf(w, "  %s = '%s'\n", name, s.mpiEnv[name])
		}
	}
	fmt.Fprintln(w, "OPENMP DISPLAY ENVIRONMENT END")
}

func waitPolicyOrDefault(p string) string {
	if p == "" {
		return "passive"
	}
	return p
}

// parseWaitPolicy normalizes a wait-policy value ("active" or
// "passive", any case), rejecting anything else.
func parseWaitPolicy(v string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "active":
		return "active", nil
	case "passive":
		return "passive", nil
	}
	return "", &MisuseError{Construct: "omp_set_wait_policy",
		Msg: "wait policy must be \"active\" or \"passive\", got " + strconv.Quote(v)}
}

// scheduleEnvString renders a Schedule in OMP_SCHEDULE syntax.
func scheduleEnvString(s Schedule) string {
	out := strings.ToUpper(s.Kind.String())
	if s.Chunk > 0 {
		out += "," + strconv.FormatInt(s.Chunk, 10)
	}
	return out
}

func isEnvTrue(v string) bool {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// ParseScheduleEnv parses an OMP_SCHEDULE value such as "dynamic,4".
func ParseScheduleEnv(v string) (Schedule, error) {
	parts := strings.SplitN(v, ",", 2)
	kind, err := directive.ParseScheduleKind(parts[0])
	if err != nil {
		return Schedule{}, &MisuseError{Msg: "invalid OMP_SCHEDULE: " + err.Error()}
	}
	sched := Schedule{Kind: kind}
	if len(parts) == 2 {
		chunk, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil || chunk < 1 {
			return Schedule{}, &MisuseError{Msg: "invalid chunk size in OMP_SCHEDULE: " + v}
		}
		sched.Chunk = chunk
	}
	return sched, nil
}
