package rt

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/omp4go/omp4go/internal/ompt"
)

// The stall watchdog samples in-flight regions and flags
// synchronization points that fail to complete within a threshold: a
// barrier where some members have been waiting longer than the
// threshold while others never arrived, or a taskwait stuck on
// outstanding tasks. The diagnosis — who arrived, who is missing,
// what the deques hold — is exactly what a hung fork-join program
// needs and a goroutine dump does not give. Activated by
// OMP4GO_WATCHDOG=<duration> or Runtime.StartWatchdog.

// watchdogOut receives stall reports (a package variable so tests can
// capture the output).
var watchdogOut io.Writer = os.Stderr

// StallMember describes one team member waiting at the stalled
// synchronization point.
type StallMember struct {
	GTID      int32 `json:"gtid"`
	ThreadNum int   `json:"thread_num"`
	// Wait is the wait kind ("barrier", "taskwait", "taskgroup",
	// "depend"); WaitFor names what the member waits on when the wait
	// site published a detail string.
	Wait    string `json:"wait,omitempty"`
	WaitFor string `json:"wait_for,omitempty"`
	WaitNS  int64  `json:"wait_ns"`
}

// StallReport is one watchdog finding: a synchronization point that
// has not completed within the threshold.
type StallReport struct {
	RegionID    int32         `json:"region_id"`
	Kind        string        `json:"kind"` // "barrier" or "taskwait"
	Waiting     []StallMember `json:"waiting"`
	Missing     []int32       `json:"missing_gtids"` // members not yet at a wait point
	DequeDepths []int         `json:"deque_depths"`
	Outstanding int64         `json:"outstanding_tasks"`
	Threshold   time.Duration `json:"threshold_ns"`
}

func (s StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "omp4go watchdog: region %d %s stalled > %v:", s.RegionID, s.Kind, s.Threshold)
	for _, m := range s.Waiting {
		fmt.Fprintf(&b, " gtid %d (thread %d) waiting %v", m.GTID, m.ThreadNum,
			time.Duration(m.WaitNS).Round(time.Millisecond))
		if m.Wait != "" {
			fmt.Fprintf(&b, " at %s", m.Wait)
		}
		if m.WaitFor != "" {
			fmt.Fprintf(&b, " on %s", m.WaitFor)
		}
		b.WriteString(";")
	}
	if len(s.Missing) > 0 {
		fmt.Fprintf(&b, " missing gtids %v (still executing or blocked outside the runtime);", s.Missing)
	}
	fmt.Fprintf(&b, " %d outstanding task(s), deque depths %v", s.Outstanding, s.DequeDepths)
	return b.String()
}

// watchdog is the sampler goroutine's state.
type watchdog struct {
	rt        *Runtime
	threshold time.Duration
	stop      chan struct{}
	done      chan struct{}

	// reported dedupes by region and arrival signature: a stall is
	// re-reported only when its shape changes (another thread arrives,
	// a task drains) or the region completes and a new one stalls.
	reported map[int32]string
}

// StartWatchdog arms the stall watchdog with the given threshold,
// enabling live introspection as a side effect. A second call
// replaces the previous watchdog.
func (r *Runtime) StartWatchdog(threshold time.Duration) {
	if threshold <= 0 {
		return
	}
	r.ensureObs()
	w := &watchdog{
		rt:        r,
		threshold: threshold,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		reported:  make(map[int32]string),
	}
	r.wdMu.Lock()
	prev := r.wd
	r.wd = w
	r.wdMu.Unlock()
	if prev != nil {
		prev.halt()
	}
	go w.loop()
}

// StopWatchdog disarms the stall watchdog. Safe to call when none is
// armed.
func (r *Runtime) StopWatchdog() {
	r.wdMu.Lock()
	w := r.wd
	r.wd = nil
	r.wdMu.Unlock()
	if w != nil {
		w.halt()
	}
}

func (w *watchdog) halt() {
	close(w.stop)
	<-w.done
}

func (w *watchdog) loop() {
	defer close(w.done)
	// Sampling at a quarter of the threshold bounds detection latency
	// to ~1.25x the threshold while keeping the sampler cheap.
	tick := w.threshold / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.sample()
		}
	}
}

// sample inspects every in-flight region for members stuck past the
// threshold.
func (w *watchdog) sample() {
	o := w.rt.obs.Load()
	if o == nil {
		return
	}
	o.mu.Lock()
	teams := make([]*Team, 0, len(o.teams))
	live := make(map[int32]bool, len(o.teams))
	for id, t := range o.teams {
		teams = append(teams, t)
		live[id] = true
	}
	o.mu.Unlock()
	// Forget completed regions so their ids (which can recur via
	// regionSeq wrap in very long runs) do not suppress new reports.
	for id := range w.reported {
		if !live[id] {
			delete(w.reported, id)
		}
	}
	now := ompt.Now()
	thresholdNS := w.threshold.Nanoseconds()
	for _, t := range teams {
		rep, ok := w.diagnose(t, now, thresholdNS)
		if !ok {
			continue
		}
		sig := stallSignature(rep)
		if w.reported[t.regionID] == sig {
			continue
		}
		w.reported[t.regionID] = sig
		o.addStall(rep)
		fmt.Fprintln(watchdogOut, rep.String())
		// A stall is exactly what the flight recorder exists for:
		// flush the recent-event ring and introspection history to a
		// post-mortem dump (deduped with the report itself — only a
		// changed stall shape triggers another dump).
		if fr := w.rt.flight.Load(); fr != nil {
			if path, err := fr.Dump("stall"); err == nil {
				fmt.Fprintf(watchdogOut, "omp4go watchdog: flight dump written to %s\n", path)
			}
		}
	}
}

// diagnose builds a stall report for the team if any member has been
// waiting at a synchronization point longer than the threshold.
func (w *watchdog) diagnose(t *Team, now, thresholdNS int64) (StallReport, bool) {
	var waiting []StallMember
	var missing []int32
	kind := ""
	stalled := false
	for _, m := range t.members {
		if m == nil {
			continue
		}
		k := m.waitKind.Load()
		if k == waitNone {
			missing = append(missing, m.gtid)
			continue
		}
		waitNS := now - m.waitSince.Load()
		sm := StallMember{GTID: m.gtid, ThreadNum: m.num,
			Wait: waitKindString(k), WaitNS: waitNS}
		if d := m.waitDetail.Load(); d != nil {
			sm.WaitFor = *d
		}
		waiting = append(waiting, sm)
		if waitNS >= thresholdNS {
			stalled = true
			if kind == "" {
				kind = waitKindString(k)
			}
		}
	}
	if !stalled {
		return StallReport{}, false
	}
	return StallReport{
		RegionID:    t.regionID,
		Kind:        kind,
		Waiting:     waiting,
		Missing:     missing,
		DequeDepths: t.sched.depths(),
		Outstanding: t.outstanding.Load(),
		Threshold:   w.threshold,
	}, true
}

// stallSignature identifies a stall's shape: the set of waiting and
// missing gtids. A report repeats only when the shape changes.
func stallSignature(rep StallReport) string {
	ids := make([]int, 0, len(rep.Waiting)+len(rep.Missing))
	for _, m := range rep.Waiting {
		ids = append(ids, int(m.GTID))
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString(rep.Kind)
	for _, id := range ids {
		b.WriteString(" w")
		b.WriteString(itoa(id))
	}
	miss := make([]int, 0, len(rep.Missing))
	for _, id := range rep.Missing {
		miss = append(miss, int(id))
	}
	sort.Ints(miss)
	for _, id := range miss {
		b.WriteString(" m")
		b.WriteString(itoa(id))
	}
	return b.String()
}
