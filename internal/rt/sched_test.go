package rt

import (
	"fmt"
	"testing"

	"github.com/omp4go/omp4go/internal/ompt"
)

// newSchedRuntime builds a runtime pinned to one scheduler mode.
func newSchedRuntime(l Layer, m schedMode) *Runtime {
	r := newTestRuntime(l)
	r.taskSched = m
	return r
}

// TestSchedulerDifferentialEveryTaskRunsOnce is the differential test
// between the legacy list queue and the work-stealing scheduler:
// under every mode × layer × team size, every submitted task executes
// exactly once — including second-generation tasks submitted from
// inside running tasks (which land on the claiming thread's deque and
// are visible to the whole team through stealing).
func TestSchedulerDifferentialEveryTaskRunsOnce(t *testing.T) {
	const firstGen = 64
	const childrenPer = 4
	for _, l := range bothLayers {
		for _, m := range []schedMode{schedSteal, schedList} {
			for _, threads := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%v/%v/%dT", l, m, threads)
				r := newSchedRuntime(l, m)
				ctx := r.NewContext()
				runs := make([]Counter, firstGen*(1+childrenPer))
				for i := range runs {
					runs[i] = NewCounter(LayerAtomic)
				}
				err := r.Parallel(ctx, ParallelOpts{NumThreads: threads}, func(c *Context) error {
					s, err := c.SingleBegin(false, false)
					if err != nil {
						return err
					}
					if s.Executes() {
						for i := 0; i < firstGen; i++ {
							id := i
							if err := c.SubmitTask(TaskOpts{}, func(tc *Context) error {
								runs[id].Add(1)
								for ch := 0; ch < childrenPer; ch++ {
									cid := firstGen + id*childrenPer + ch
									if err := tc.SubmitTask(TaskOpts{}, func(*Context) error {
										runs[cid].Add(1)
										return nil
									}); err != nil {
										return err
									}
								}
								return tc.TaskWait()
							}); err != nil {
								return err
							}
						}
					}
					_, err = s.End() // implicit barrier drains everything
					return err
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for i := range runs {
					if got := runs[i].Load(); got != 1 {
						t.Fatalf("%s: task %d ran %d times, want exactly 1", name, i, got)
					}
				}
			}
		}
	}
}

// TestStealSchedulerRetainsNothingAfterDrain is the queue-length
// probe of the acceptance criteria: once a region's tasks have all
// completed, the work-stealing scheduler holds zero task references —
// retirement is O(1), with no completed-task chains kept alive (the
// legacy list queue retained every done node until a later take()
// happened to walk past it).
func TestStealSchedulerRetainsNothingAfterDrain(t *testing.T) {
	for _, l := range bothLayers {
		r := newSchedRuntime(l, schedSteal)
		ctx := r.NewContext()
		var team *Team
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			if c.Master() {
				team = c.team
			}
			s, err := c.SingleBegin(false, false)
			if err != nil {
				return err
			}
			if s.Executes() {
				// More than dequeCap tasks so the overflow list is
				// exercised too.
				for i := 0; i < dequeCap+64; i++ {
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
						return err
					}
				}
			}
			_, err = s.End()
			return err
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if n := team.sched.retained(); n != 0 {
			t.Fatalf("%v: scheduler retains %d task references after barrier", l, n)
		}
		if team.sched.hasRunnable() {
			t.Fatalf("%v: hasRunnable after drain", l)
		}
	}
}

// TestSchedulerRunnableCountsEverywhere: the runnable() introspection
// probe (feeding RegionInfo.QueuedTasks and the
// omp4go_ready_queue_depth gauge) counts unclaimed tasks wherever the
// scheduler holds them — the steal scheduler's overflow list beyond
// the deque capacity, and the list schedulers' shared queue, which
// report depths() == nil and were invisible to a deque-only sum.
func TestSchedulerRunnableCountsEverywhere(t *testing.T) {
	for _, l := range bothLayers {
		// Steal mode, one member: dequeCap tasks fill the deque, the
		// rest spill to the overflow list; all must be counted.
		s := newTaskScheduler(l, 1, schedSteal)
		const spill = 5
		for i := 0; i < dequeCap+spill; i++ {
			s.submit(0, newTask(l, func(*Context) error { return nil }, nil, true))
		}
		if got := s.runnable(); got != dequeCap+spill {
			t.Fatalf("%v/steal: runnable %d, want %d (overflow not counted)",
				l, got, dequeCap+spill)
		}
		if tk, _ := s.take(0); tk == nil {
			t.Fatalf("%v/steal: no task to claim", l)
		}
		if got := s.runnable(); got != dequeCap+spill-1 {
			t.Fatalf("%v/steal: runnable %d after one claim, want %d",
				l, got, dequeCap+spill-1)
		}

		// List mode: depths() is nil, runnable must count the shared
		// queue's free nodes (and only those — claimed ones drop out).
		q := newTaskScheduler(l, 1, schedList)
		for i := 0; i < 3; i++ {
			q.submit(0, newTask(l, func(*Context) error { return nil }, nil, true))
		}
		if d := q.depths(); d != nil {
			t.Fatalf("%v/list: depths() = %v, want nil", l, d)
		}
		if got := q.runnable(); got != 3 {
			t.Fatalf("%v/list: runnable %d, want 3", l, got)
		}
		if tk, _ := q.take(0); tk == nil {
			t.Fatalf("%v/list: no task to claim", l)
		}
		if got := q.runnable(); got != 2 {
			t.Fatalf("%v/list: runnable %d after one claim, want 2", l, got)
		}
	}
}

// TestStealEventEmitted asserts the observability contract of the
// work-stealing scheduler: when a team member claims a task from
// another member's deque while a tool is attached, an EvTaskSteal
// record naming the victim is emitted on the thief.
func TestStealEventEmitted(t *testing.T) {
	r := newSchedRuntime(LayerAtomic, schedSteal)
	tool := &recordingTool{}
	r.SetTool(tool)
	ctx := r.NewContext()
	// Gate every task until two distinct threads are executing tasks,
	// guaranteeing at least one cross-thread steal.
	gate := make(chan struct{})
	distinct := NewCounter(LayerAtomic)
	seen := [4]Counter{}
	for i := range seen {
		seen[i] = NewCounter(LayerAtomic)
	}
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			for i := 0; i < 32; i++ {
				if err := c.SubmitTask(TaskOpts{}, func(tc *Context) error {
					if seen[tc.num].Add(1) == 1 && distinct.Add(1) == 2 {
						close(gate)
					}
					<-gate
					return nil
				}); err != nil {
					return err
				}
			}
		}
		_, err = s.End()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	steals := 0
	for _, recs := range tool.byGTID() {
		for _, rec := range recs {
			if rec.Kind == ompt.EvTaskSteal {
				steals++
				if rec.B < 0 || rec.B >= 4 {
					t.Fatalf("steal event names victim %d", rec.B)
				}
			}
		}
	}
	if steals == 0 {
		t.Fatal("no EvTaskSteal emitted despite cross-thread task execution")
	}
}

// TestSchedulerOverflowBurst drives a submission burst past the deque
// capacity from inside a parallel region and checks nothing is lost.
func TestSchedulerOverflowBurst(t *testing.T) {
	for _, l := range bothLayers {
		r := newSchedRuntime(l, schedSteal)
		ctx := r.NewContext()
		const n = 3 * dequeCap
		done := NewCounter(LayerAtomic)
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.Master() {
				for i := 0; i < n; i++ {
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
						done.Add(1)
						return nil
					}); err != nil {
						return err
					}
				}
			}
			return nil // implicit region barrier drains
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if done.Load() != n {
			t.Fatalf("%v: %d tasks ran, want %d", l, done.Load(), n)
		}
	}
}
