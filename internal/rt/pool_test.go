package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolEnv builds the NewWithEnv getenv for a given pool mode ("on",
// "off", or "" for the default).
func poolEnv(mode string) func(string) string {
	if mode == "" {
		return func(string) string { return "" }
	}
	return fakeEnv(map[string]string{"OMP4GO_POOL": mode})
}

func TestPoolEnabledEnv(t *testing.T) {
	for _, tc := range []struct {
		mode string
		want bool
	}{
		{"", true}, {"on", true}, {"1", true}, {"off", false}, {"0", false},
	} {
		r := NewWithEnv(LayerAtomic, poolEnv(tc.mode))
		if got := r.PoolEnabled(); got != tc.want {
			t.Errorf("OMP4GO_POOL=%q: PoolEnabled() = %v, want %v", tc.mode, got, tc.want)
		}
		r.Shutdown()
	}
}

// memberGtids runs one region of n threads and returns the gtids of
// the non-master members (the threads pool workers execute).
func memberGtids(t *testing.T, r *Runtime, n int) map[int32]bool {
	t.Helper()
	var mu sync.Mutex
	gtids := make(map[int32]bool)
	err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: n}, func(c *Context) error {
		if c.GetThreadNum() != 0 {
			mu.Lock()
			gtids[c.gtid] = true
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	return gtids
}

// TestPoolGtidStability: with the pool on, non-master members carry
// the same worker gtids across consecutive regions — the stable
// thread-identity contract OMPT rings and recycled deques rely on.
// With the pool off, every region gets fresh identities.
func TestPoolGtidStability(t *testing.T) {
	const n, regions = 4, 5
	for _, l := range bothLayers {
		pooled := NewWithEnv(l, poolEnv("on"))
		union := make(map[int32]bool)
		for i := 0; i < regions; i++ {
			for g := range memberGtids(t, pooled, n) {
				union[g] = true
			}
		}
		if len(union) != n-1 {
			t.Errorf("%v pool=on: %d distinct member gtids over %d regions, want %d",
				l, len(union), regions, n-1)
		}
		pooled.Shutdown()

		spawned := NewWithEnv(l, poolEnv("off"))
		union = make(map[int32]bool)
		for i := 0; i < regions; i++ {
			for g := range memberGtids(t, spawned, n) {
				union[g] = true
			}
		}
		if len(union) != (n-1)*regions {
			t.Errorf("%v pool=off: %d distinct member gtids over %d regions, want %d",
				l, len(union), regions, (n-1)*regions)
		}
	}
}

// TestPoolSlotsReleased: when Parallel returns, every borrowed worker
// is back on the free list — no slot leaks.
func TestPoolSlotsReleased(t *testing.T) {
	for _, l := range bothLayers {
		r := NewWithEnv(l, poolEnv("on"))
		for i := 0; i < 3; i++ {
			var ran atomic.Int32
			err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 6}, func(c *Context) error {
				ran.Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("%v: %v", l, err)
			}
			if got := ran.Load(); got != 6 {
				t.Fatalf("%v: ran %d threads, want 6", l, got)
			}
			idle, total := r.pool.counts()
			if idle != total {
				t.Fatalf("%v region %d: %d idle != %d total — leaked pool slots", l, i, idle, total)
			}
			if total < 5 {
				t.Fatalf("%v region %d: total %d workers, want >= 5", l, i, total)
			}
		}
		r.Shutdown()
	}
}

// TestNestedParallelPoolMatrix covers nested regions across both sync
// layers and both pool modes: team sizes, ancestor thread numbers,
// and active levels must be identical in all four cells, and the pool
// must hold no borrowed slots afterwards.
func TestNestedParallelPoolMatrix(t *testing.T) {
	for _, l := range bothLayers {
		for _, mode := range []string{"on", "off"} {
			r := NewWithEnv(l, poolEnv(mode))
			r.SetNested(true)
			var inner atomic.Int32
			var badTeam, badAncestor, badLevel atomic.Int32
			err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 3}, func(outer *Context) error {
				outerNum := outer.GetThreadNum()
				if outer.GetNumThreads() != 3 {
					badTeam.Add(1)
				}
				return r.Parallel(outer, ParallelOpts{NumThreads: 2}, func(c *Context) error {
					inner.Add(1)
					if c.GetNumThreads() != 2 || c.GetTeamSize(1) != 3 {
						badTeam.Add(1)
					}
					if c.GetAncestorThreadNum(1) != outerNum {
						badAncestor.Add(1)
					}
					if c.GetActiveLevel() != 2 || c.GetLevel() != 2 {
						badLevel.Add(1)
					}
					return nil
				})
			})
			if err != nil {
				t.Fatalf("%v pool=%s: %v", l, mode, err)
			}
			if got := inner.Load(); got != 6 {
				t.Errorf("%v pool=%s: %d inner executions, want 6", l, mode, got)
			}
			if badTeam.Load() != 0 || badAncestor.Load() != 0 || badLevel.Load() != 0 {
				t.Errorf("%v pool=%s: team/ancestor/level mismatches: %d/%d/%d",
					l, mode, badTeam.Load(), badAncestor.Load(), badLevel.Load())
			}
			if mode == "on" {
				idle, total := r.pool.counts()
				if idle != total {
					t.Errorf("%v pool=on: %d idle != %d total after nested regions", l, idle, total)
				}
			}
			r.Shutdown()
		}
	}
}

// TestShutdownFallsBackToSpawn: a runtime stays usable after
// Shutdown, spawning goroutines per region, and the pool stays empty.
func TestShutdownFallsBackToSpawn(t *testing.T) {
	r := NewWithEnv(LayerAtomic, poolEnv("on"))
	if err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.Shutdown()
	var ran atomic.Int32
	if err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("post-shutdown region ran %d threads, want 4", ran.Load())
	}
	if idle, total := r.pool.counts(); idle != 0 || total != 0 {
		t.Fatalf("post-shutdown pool holds %d idle / %d total workers, want 0/0", idle, total)
	}
}

// TestWorkerIdleRetirement: parked workers retire after the idle
// timeout, so short-lived runtimes do not pin goroutines.
func TestWorkerIdleRetirement(t *testing.T) {
	r := NewWithEnv(LayerAtomic, poolEnv("on"))
	if err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, total := r.pool.counts(); total == 0 {
		t.Fatal("no pool workers after a 4-thread region")
	}
	deadline := time.Now().Add(10 * workerIdleTimeout)
	for {
		if _, total := r.pool.counts(); total == 0 {
			return
		}
		if time.Now().After(deadline) {
			_, total := r.pool.counts()
			t.Fatalf("%d workers still live after idle timeout", total)
		}
		time.Sleep(workerIdleTimeout / 5)
	}
}

// TestWaitPolicyICV exercises SetWaitPolicy: both values work under
// both layers, pool dispatch still functions with active spinning,
// and invalid values are rejected.
func TestWaitPolicyICV(t *testing.T) {
	for _, l := range bothLayers {
		r := NewWithEnv(l, poolEnv("on"))
		if got := r.GetWaitPolicy(); got != "passive" {
			t.Errorf("%v: default wait policy %q, want passive", l, got)
		}
		if err := r.SetWaitPolicy("active"); err != nil {
			t.Fatalf("%v: SetWaitPolicy(active): %v", l, err)
		}
		if got := r.GetWaitPolicy(); got != "active" {
			t.Errorf("%v: wait policy %q after set, want active", l, got)
		}
		// Back-to-back regions: the second dispatch tends to catch
		// workers inside the active spin loop's poll path.
		for i := 0; i < 5; i++ {
			var ran atomic.Int32
			if err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
				ran.Add(1)
				return nil
			}); err != nil {
				t.Fatalf("%v: %v", l, err)
			}
			if ran.Load() != 4 {
				t.Fatalf("%v: ran %d threads under active policy, want 4", l, ran.Load())
			}
		}
		if err := r.SetWaitPolicy("eager"); err == nil {
			t.Errorf("%v: SetWaitPolicy(eager) succeeded, want error", l)
		}
		r.Shutdown()
	}
}

// TestPoolDifferentialWorkload runs the same task-spawning workload
// under both pool modes and both layers; results must agree — the
// spawn-per-region path is the differential baseline for the pool.
func TestPoolDifferentialWorkload(t *testing.T) {
	workload := func(r *Runtime) int64 {
		var sum atomic.Int64
		err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
			for i := 0; i < 8; i++ {
				i := i
				if err := c.SubmitTask(TaskOpts{}, func(tc *Context) error {
					sum.Add(int64(c.GetThreadNum()*100 + i))
					return nil
				}); err != nil {
					return err
				}
			}
			return c.TaskWait()
		})
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
		return sum.Load()
	}
	var want int64
	for ti := 0; ti < 4; ti++ {
		for i := 0; i < 8; i++ {
			want += int64(ti*100 + i)
		}
	}
	for _, l := range bothLayers {
		for _, mode := range []string{"on", "off"} {
			r := NewWithEnv(l, poolEnv(mode))
			for rep := 0; rep < 3; rep++ {
				if got := workload(r); got != want {
					t.Errorf("%v pool=%s rep %d: sum = %d, want %d", l, mode, rep, got, want)
				}
			}
			r.Shutdown()
		}
	}
}

// TestTeamRecycling: in pool mode, repeated same-size regions reuse
// cached teams; the cache stays bounded and holds only cleanly-joined
// teams.
func TestTeamRecycling(t *testing.T) {
	r := NewWithEnv(LayerAtomic, poolEnv("on"))
	for i := 0; i < 3*maxCachedTeams; i++ {
		if err := r.Parallel(r.NewContext(), ParallelOpts{NumThreads: 4}, func(c *Context) error {
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.teamCacheMu.Lock()
	cached := len(r.teamCache[4])
	r.teamCacheMu.Unlock()
	if cached == 0 {
		t.Error("no teams cached after repeated 4-thread regions")
	}
	if cached > maxCachedTeams {
		t.Errorf("%d teams cached, cap is %d", cached, maxCachedTeams)
	}
	r.Shutdown()
}
