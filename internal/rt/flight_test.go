package rt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
)

// TestFlightDumpOnDemand drives the recorder end to end: enable it,
// run a region with tasks, trigger a dump, and load both files back.
func TestFlightDumpOnDemand(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	dir := t.TempDir()
	if _, err := r.EnableFlight(dir); err != nil {
		t.Fatalf("EnableFlight: %v", err)
	}
	// Idempotent: a second enable returns the same recorder.
	fr, err := r.EnableFlight(filepath.Join(dir, "other"))
	if err != nil || fr != r.Flight() {
		t.Fatalf("second EnableFlight = %v, %v; want the existing recorder", fr, err)
	}

	ctx := r.NewContext()
	err = r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "work"}, func(c *Context) error {
		if c.num == 0 {
			for i := 0; i < 4; i++ {
				if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
					return err
				}
			}
			return c.TaskWait()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	path, err := r.FlightDump("unit test")
	if err != nil {
		t.Fatalf("FlightDump: %v", err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("dump written to %s, want directory %s", path, dir)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	var doc FlightDump
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump is not a loadable FlightDump: %v\n%s", err, data)
	}
	if doc.Reason != "unit test" {
		t.Errorf("dump reason = %q, want %q", doc.Reason, "unit test")
	}
	if doc.WallTime == "" || doc.TimeNS <= 0 {
		t.Errorf("dump lacks timestamps: wall %q mono %d", doc.WallTime, doc.TimeNS)
	}
	if got := doc.Debug.Counters["omp4go_regions_forked_total"]; got < 1 {
		t.Errorf("dump debug counters regions_forked = %d, want >= 1", got)
	}
	if doc.Profile == nil || doc.Profile.TotalNS <= 0 {
		t.Errorf("dump profile breakdown missing: %+v", doc.Profile)
	}

	trace, err := os.ReadFile(strings.TrimSuffix(path, ".json") + ".trace.json")
	if err != nil {
		t.Fatalf("reading trace companion: %v", err)
	}
	var tdoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tdoc); err != nil {
		t.Fatalf("trace companion is not valid JSON: %v", err)
	}
	if len(tdoc.TraceEvents) == 0 {
		t.Error("trace companion has no events despite a traced region")
	}

	if got := r.MetricsSnapshot().Counter(metrics.FlightDumps); got != 1 {
		t.Errorf("omp4go_flight_dumps_total = %d, want 1", got)
	}

	// The reason lands sanitized in the filename.
	if base := filepath.Base(path); !strings.Contains(base, "unit_test") {
		t.Errorf("dump filename %q does not carry the sanitized reason", base)
	}
}

// TestFlightDumpDisabled pins the error path.
func TestFlightDumpDisabled(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	if _, err := r.FlightDump("x"); err == nil {
		t.Fatal("FlightDump succeeded without EnableFlight")
	}
}

// TestFlightDumpOnWatchdogStall asserts the watchdog writes a flight
// dump when it reports a stalled region: the acceptance path for
// post-mortem debugging of wedged barriers.
func TestFlightDumpOnWatchdogStall(t *testing.T) {
	out := &syncBuffer{}
	prev := watchdogOut
	watchdogOut = out
	defer func() { watchdogOut = prev }()

	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	dir := t.TempDir()
	if _, err := r.EnableFlight(dir); err != nil {
		t.Fatalf("EnableFlight: %v", err)
	}
	r.StartWatchdog(30 * time.Millisecond)

	release := make(chan struct{})
	done := make(chan error, 1)
	ctx := r.NewContext()
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.num == 1 {
				<-release // wedged before the implicit barrier
			}
			return nil
		})
	}()

	// Poll until a stall dump exists and is fully written (the glob
	// can catch the file mid-encode).
	var doc FlightDump
	var loaded bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !loaded {
		dumps, _ := filepath.Glob(filepath.Join(dir, "omp4go-flight-*-stall.json"))
		for _, p := range dumps {
			data, err := os.ReadFile(p)
			if err == nil && json.Unmarshal(data, &doc) == nil {
				loaded = true
				break
			}
		}
		if !loaded {
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("region failed after release: %v", err)
	}
	if !loaded {
		t.Fatal("watchdog stall produced no loadable flight dump")
	}
	if doc.Reason != "stall" {
		t.Errorf("dump reason = %q, want stall", doc.Reason)
	}
	if !strings.Contains(out.String(), "flight dump written to") {
		t.Errorf("watchdog output does not announce the dump:\n%s", out.String())
	}
}

// TestFlightEnvActivation pins OMP4GO_FLIGHT: the variable enables
// the recorder at init, pointed at the given directory.
func TestFlightEnvActivation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "flight")
	r := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{"OMP4GO_FLIGHT": dir}))
	defer r.Shutdown()
	fr := r.Flight()
	if fr == nil {
		t.Fatal("OMP4GO_FLIGHT did not enable the recorder")
	}
	if fr.Dir() != dir {
		t.Errorf("recorder dir = %q, want %q", fr.Dir(), dir)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("dump directory was not created: %v", err)
	}
}

// TestFlightDumpCap asserts the dump cap holds: a stall storm cannot
// fill the disk.
func TestFlightDumpCap(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	if _, err := r.EnableFlight(t.TempDir()); err != nil {
		t.Fatalf("EnableFlight: %v", err)
	}
	var failed bool
	for i := 0; i < maxFlightDumps+4; i++ {
		if _, err := r.FlightDump("cap"); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Errorf("no dump was refused after %d requests (cap %d)", maxFlightDumps+4, maxFlightDumps)
	}
}

// TestFlightRecorderRingCoherence exercises concurrent emitters
// against Dump: the per-thread rings are mutex-protected, so a dump
// taken mid-region must not tear (run under -race via make race).
func TestFlightRecorderRingCoherence(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	if _, err := r.EnableFlight(t.TempDir()); err != nil {
		t.Fatalf("EnableFlight: %v", err)
	}
	ctx := r.NewContext()
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.FlightDump("race"); err != nil {
				return // cap reached; emitters keep running
			}
		}
	}()
	for round := 0; round < 10; round++ {
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			if c.num == 0 {
				for i := 0; i < 8; i++ {
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
						return err
					}
				}
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
