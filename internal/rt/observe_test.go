package rt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
)

// TestSetToolDuringRegionRace swaps the attached tool while regions
// are in flight. The attachment is an atomic pointer; under -race
// (make race) this test proves hook sites never read a torn tool and
// a mid-region swap is safe.
func TestSetToolDuringRegionRace(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		tr := ompt.NewTracer(1 << 10)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.SetTool(tr)
			} else {
				r.SetTool(nil)
			}
		}
	}()

	for round := 0; round < 50; round++ {
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			c.CriticalEnter("swap")
			c.CriticalExit("swap")
			if c.num == 0 {
				for i := 0; i < 4; i++ {
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
						return err
					}
				}
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	swapper.Wait()
	r.SetTool(nil)
}

// TestMetricsAgreeWithTraceSummary locks the acceptance criterion
// that the always-on metrics and the OMPT trace aggregates describe
// the same execution: with a tracer attached from runtime creation,
// the /metrics counters for regions, barriers, loop chunks and tasks
// must equal the corresponding sums from ompt.ComputeStats.
func TestMetricsAgreeWithTraceSummary(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	tr := ompt.NewTracer(1 << 16)
	r.SetTool(tr)
	ctx := r.NewContext()

	// Region 1: a dynamic loop (chunks + iterations) plus an explicit
	// barrier and contended criticals.
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		b := ForBounds(Triplet{Start: 0, End: 100, Step: 1})
		if err := c.ForInit(b, ForOpts{Sched: Schedule{Kind: directive.ScheduleDynamic, Chunk: 1}, SchedSet: true}); err != nil {
			return err
		}
		for b.ForNext() {
			c.CriticalEnter("sum")
			c.CriticalExit("sum")
		}
		if err := c.ForEnd(b); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatalf("region 1: %v", err)
	}

	// Region 2: an explicit-task burst from one thread, large enough
	// to overflow its deque (dequeCap=256) while the other members
	// steal from the barrier.
	err = r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		if c.num == 0 {
			for i := 0; i < 400; i++ {
				if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
					return err
				}
			}
			// One undeferred task: created and run inline.
			if err := c.SubmitTask(TaskOpts{If: false, IfSet: true}, func(*Context) error { return nil }); err != nil {
				return err
			}
			return c.TaskWait()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("region 2: %v", err)
	}

	// Region 3: serialized (num_threads 1) — still one fork in both
	// views.
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 1}, func(*Context) error { return nil }); err != nil {
		t.Fatalf("region 3: %v", err)
	}

	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace dropped %d records; agreement comparison needs a complete trace", d)
	}
	snap := r.MetricsSnapshot()
	stats := ompt.ComputeStats(tr.Records(), 0)

	var barriers, chunks, tasksRun, stolen int64
	var iters int64
	for _, th := range stats.Threads {
		barriers += int64(th.Barriers)
		chunks += int64(th.Chunks)
		iters += th.Iterations
		tasksRun += int64(th.TasksRun)
		stolen += int64(th.TasksStolen)
	}

	cases := []struct {
		name   string
		metric int64
		trace  int64
	}{
		{"regions_forked", snap.Counter(metrics.RegionsForked), int64(stats.Regions)},
		{"barrier_passages", snap.Counter(metrics.Barriers), barriers},
		{"loop_chunks", snap.Counter(metrics.LoopChunks), chunks},
		{"loop_iterations", snap.Counter(metrics.LoopIterations), iters},
		{"tasks_created", snap.Counter(metrics.TasksCreated), int64(stats.TasksCreated)},
		{"tasks_run", snap.Counter(metrics.TasksRun), tasksRun},
		{"tasks_stolen", snap.Counter(metrics.TasksStolen), stolen},
		{"tasks_overflowed", snap.Counter(metrics.TasksOverflowed), int64(stats.TaskOverflows)},
	}
	for _, c := range cases {
		if c.metric != c.trace {
			t.Errorf("%s: metrics=%d trace=%d", c.name, c.metric, c.trace)
		}
	}
	// Sanity: the workload actually produced work in every compared
	// dimension that is deterministic (steals/overflows depend on
	// scheduling and are only compared, not required).
	if snap.Counter(metrics.RegionsForked) != 3 {
		t.Errorf("regions_forked = %d, want 3", snap.Counter(metrics.RegionsForked))
	}
	if snap.Counter(metrics.LoopIterations) != 100 {
		t.Errorf("loop_iterations = %d, want 100", snap.Counter(metrics.LoopIterations))
	}
	if snap.Counter(metrics.TasksCreated) != 401 {
		t.Errorf("tasks_created = %d, want 401", snap.Counter(metrics.TasksCreated))
	}
	if snap.Counter(metrics.RegionsJoined) != 3 {
		t.Errorf("regions_joined = %d, want 3", snap.Counter(metrics.RegionsJoined))
	}
}

// syncBuffer is a race-safe bytes.Buffer for capturing watchdog
// output written from the sampler goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWatchdogStuckBarrier deliberately wedges a two-thread region —
// one member parks on a channel and never reaches the implicit
// barrier — and asserts the watchdog reports the stall within the
// threshold, naming the member that is missing from the barrier.
func TestWatchdogStuckBarrier(t *testing.T) {
	out := &syncBuffer{}
	prev := watchdogOut
	watchdogOut = out
	defer func() { watchdogOut = prev }()

	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	r.StartWatchdog(40 * time.Millisecond)

	release := make(chan struct{})
	var stuckGTID, waitingGTID int32
	var gtidMu sync.Mutex
	done := make(chan error, 1)
	ctx := r.NewContext()
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.num == 1 {
				gtidMu.Lock()
				stuckGTID = c.gtid
				gtidMu.Unlock()
				<-release // wedged: never arrives at the implicit barrier
				return nil
			}
			gtidMu.Lock()
			waitingGTID = c.gtid
			gtidMu.Unlock()
			return nil // thread 0 proceeds into the implicit barrier
		})
	}()

	var reps []StallReport
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reps = r.StallReports(); len(reps) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("region failed after release: %v", err)
	}
	if len(reps) == 0 {
		t.Fatal("watchdog produced no stall report for a wedged barrier")
	}

	gtidMu.Lock()
	stuck, waiting := stuckGTID, waitingGTID
	gtidMu.Unlock()
	rep := reps[len(reps)-1] // oldest = first report
	if rep.Kind != "barrier" {
		t.Errorf("stall kind = %q, want barrier", rep.Kind)
	}
	if rep.RegionID <= 0 {
		t.Errorf("stall report lacks a region id: %+v", rep)
	}
	foundMissing := false
	for _, g := range rep.Missing {
		if g == stuck {
			foundMissing = true
		}
	}
	if !foundMissing {
		t.Errorf("missing gtids %v do not name the wedged member (gtid %d)", rep.Missing, stuck)
	}
	foundWaiting := false
	for _, m := range rep.Waiting {
		if m.GTID == waiting && m.WaitNS >= (40*time.Millisecond).Nanoseconds() {
			foundWaiting = true
		}
	}
	if !foundWaiting {
		t.Errorf("waiting members %+v do not show gtid %d past the threshold", rep.Waiting, waiting)
	}
	text := out.String()
	if !strings.Contains(text, "missing gtids") || !strings.Contains(text, fmt.Sprintf("[%d]", stuck)) {
		t.Errorf("stderr report does not name the missing gtid %d:\n%s", stuck, text)
	}
	// The stall deduplicates: the same shape is reported once.
	if n := len(reps); n > 2 {
		t.Errorf("stall reported %d times before release; want deduplication", n)
	}
}

// TestMetricsEndpointSmoke drives the OMP4GO_METRICS environment
// activation end to end: run a region, scrape /metrics over HTTP, and
// assert the region/barrier counters are non-zero; then check
// /debug/omp returns well-formed JSON.
func TestMetricsEndpointSmoke(t *testing.T) {
	r := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{
		"OMP4GO_METRICS": "127.0.0.1:0",
	}))
	defer r.Shutdown()
	if r.envServer == nil {
		t.Fatal("OMP4GO_METRICS did not start the endpoint")
	}

	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		b := ForBounds(Triplet{Start: 0, End: 64, Step: 1})
		if err := c.ForInit(b, ForOpts{}); err != nil {
			return err
		}
		for b.ForNext() {
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	body := httpGet(t, "http://"+r.envServer.Addr()+"/metrics")
	for _, want := range []string{
		"omp4go_regions_forked_total 1",
		"omp4go_regions_joined_total 1",
		"omp4go_pool_workers_live",
		"omp4go_inflight_regions 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Barrier passages: 4 from the implicit region barrier + 4 from
	// the loop-end barrier.
	if !strings.Contains(body, "omp4go_barrier_passages_total 8") {
		t.Errorf("/metrics barrier count wrong:\n%s", body)
	}

	dbg := httpGet(t, "http://"+r.envServer.Addr()+"/debug/omp")
	var snap DebugSnapshot
	if err := json.Unmarshal([]byte(dbg), &snap); err != nil {
		t.Fatalf("/debug/omp is not valid JSON: %v\n%s", err, dbg)
	}
	if snap.ICVs["wait_policy"] != "passive" {
		t.Errorf("/debug/omp icvs = %v, want wait_policy passive", snap.ICVs)
	}
	if snap.Pool == nil || snap.Pool.Max <= 0 {
		t.Errorf("/debug/omp pool = %+v, want live pool info", snap.Pool)
	}
	if got := snap.Counters["omp4go_regions_forked_total"]; got != 1 {
		t.Errorf("/debug/omp counters regions_forked = %d, want 1", got)
	}
}

// TestDebugSnapshotInflight asserts an executing region is visible in
// the introspection snapshot with its members' wait states.
func TestDebugSnapshotInflight(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	r.ensureObs() // introspection on, no endpoint needed

	inBody := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	ctx := r.NewContext()
	go func() {
		var once sync.Once
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.num == 1 {
				once.Do(func() { close(inBody) })
				<-release
			}
			return nil
		})
	}()
	<-inBody
	// Wait until thread 0 shows up at the implicit barrier.
	var regions []RegionInfo
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		regions = r.InflightRegions()
		if len(regions) == 1 && memberWaiting(regions[0], "barrier") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(regions) != 1 {
		t.Fatalf("inflight regions = %d, want 1", len(regions))
	}
	reg := regions[0]
	if reg.Size != 2 || len(reg.Members) != 2 {
		t.Fatalf("region view = %+v, want 2 members", reg)
	}
	if !memberWaiting(reg, "barrier") {
		t.Errorf("no member shows a barrier wait: %+v", reg.Members)
	}
	// After the join the registry is empty again.
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) && len(r.InflightRegions()) > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if left := r.InflightRegions(); len(left) != 0 {
		t.Errorf("regions still registered after join: %+v", left)
	}
}

func memberWaiting(reg RegionInfo, kind string) bool {
	for _, m := range reg.Members {
		if m.Wait == kind && m.WaitNS > 0 {
			return true
		}
	}
	return false
}

// TestWatchdogEnvParsing pins the OMP4GO_WATCHDOG value forms.
func TestWatchdogEnvParsing(t *testing.T) {
	cases := []struct {
		val  string
		want time.Duration
	}{
		{"5s", 5 * time.Second},
		{"250ms", 250 * time.Millisecond},
		{"3", 3 * time.Second}, // bare number = seconds
		{"bogus", 0},
		{"-1s", 0},
		{"", 0},
	}
	for _, c := range cases {
		var s icvSet
		s.loadEnv(fakeEnv(map[string]string{"OMP4GO_WATCHDOG": c.val}))
		if s.watchdog != c.want {
			t.Errorf("OMP4GO_WATCHDOG=%q parsed as %v, want %v", c.val, s.watchdog, c.want)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(data)
}
