package rt

import (
	"strings"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/prof"
)

// profBucket returns the snapshot bucket for label, failing the test
// when the profiler is off or the bucket does not exist.
func profBucket(t *testing.T, r *Runtime, label string) prof.BucketSnapshot {
	t.Helper()
	snap := r.ProfileSnapshot()
	if snap == nil {
		t.Fatal("profiler disabled; ProfileSnapshot returned nil")
	}
	for _, b := range snap.Buckets {
		if b.Label == label {
			return b
		}
	}
	t.Fatalf("no bucket for label %q in %+v", label, snap.Buckets)
	return prof.BucketSnapshot{}
}

// spinFor busy-loops until the deadline so the thread accrues real
// compute time (a sleep would park the goroutine and the OS would not
// charge the region).
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x = x*1.000001 + 1e-9
		}
	}
	_ = x
}

// TestProfileAttributionSumsToWall locks the core invariant of the
// compute-by-subtraction scheme: for an n-thread region, the sum over
// all states equals the sum of the member spans, each of which covers
// the full region (fork to join barrier), so the bucket total is
// approximately n x the region's wall time — and a pure-compute body
// attributes its majority to compute.
func TestProfileAttributionSumsToWall(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()

	const n = 4
	const work = 30 * time.Millisecond
	start := time.Now()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: n, Label: "pi"}, func(c *Context) error {
		// Wall-clock deadline rather than per-thread work: all members
		// finish together regardless of how many CPUs the host has, so
		// the join barrier wait stays small.
		spinFor(work)
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	b := profBucket(t, r, "pi")
	total := time.Duration(b.TotalNS)
	// Member spans are nested inside the Parallel call, so the total
	// can never exceed n x wall; the lower bound is loose because
	// thread spawn and scheduling jitter eat into the spans.
	if total > time.Duration(float64(n)*1.02*float64(wall)) {
		t.Errorf("attributed %v exceeds %d x wall %v", total, n, wall)
	}
	if total < time.Duration(float64(n)*0.5*float64(wall)) {
		t.Errorf("attributed %v is under half of %d x wall %v; spans are leaking time", total, n, wall)
	}
	if compute := b.State(prof.Compute); compute <= b.TotalNS/2 {
		t.Errorf("compute = %v of %v; a pure-compute body must attribute its majority to compute: %+v",
			time.Duration(compute), total, b.NS)
	}
	if ds := b.State(prof.DependStall); ds != 0 {
		t.Errorf("depend_stall = %d for a dependence-free region, want 0", ds)
	}
	// Every member contributes at least one compute interval.
	if cnt := b.Counts[prof.Compute.String()]; cnt < n {
		t.Errorf("compute intervals = %d, want >= %d (one per member)", cnt, n)
	}
}

// TestProfileDependStallAttribution builds a two-thread region where
// one member holds an out-dependence open while the other blocks on an
// in-dependence with nothing else runnable: the blocked member's wait
// must land in depend_stall, not compute or barrier_wait.
func TestProfileDependStallAttribution(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()

	aStarted := make(chan struct{})
	release := make(chan struct{})
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "wavefront"}, func(c *Context) error {
		if c.num != 0 {
			// Thread 1 heads straight into the join barrier, claims
			// the writer task from thread 0's deque, and blocks in it.
			return nil
		}
		if err := c.SubmitTask(TaskOpts{Depends: Out("x")}, func(*Context) error {
			close(aStarted)
			<-release
			return nil
		}); err != nil {
			return err
		}
		<-aStarted // the writer is mid-flight on the other thread
		go func() {
			time.Sleep(30 * time.Millisecond)
			close(release)
		}()
		// Undeferred reader: its predecessor is running elsewhere and
		// the ready queue is empty, so the encountering thread parks
		// in its dependence wait.
		return c.SubmitTask(TaskOpts{IfSet: true, If: false, Depends: In("x")}, func(*Context) error { return nil })
	})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	b := profBucket(t, r, "wavefront")
	if ds := b.State(prof.DependStall); ds < (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("depend_stall = %v, want >= 5ms for a 30ms dependence stall: %+v",
			time.Duration(ds), b.NS)
	}
}

// TestProfileDependStallAtBarrier covers the other depend_stall route:
// a member idling in the join barrier while the only outstanding task
// is dependence-gated attributes that idle time to depend_stall (via
// the team's stalled-task gauge), not steal_idle or barrier_wait.
func TestProfileDependStallAtBarrier(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()

	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "gate"}, func(c *Context) error {
		if c.num != 0 {
			return nil
		}
		// Writer sleeps while running; the reader stays gated off the
		// queues the whole time, so the member that does not claim
		// the writer parks with the stalled gauge raised.
		if err := c.SubmitTask(TaskOpts{Depends: Out("y")}, func(*Context) error {
			time.Sleep(30 * time.Millisecond)
			return nil
		}); err != nil {
			return err
		}
		return c.SubmitTask(TaskOpts{Depends: In("y")}, func(*Context) error { return nil })
	})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	b := profBucket(t, r, "gate")
	if ds := b.State(prof.DependStall); ds < (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("depend_stall = %v, want >= 5ms while the reader was gated: %+v",
			time.Duration(ds), b.NS)
	}
}

// TestProfileCriticalContention pins attribution of contended critical
// sections: the loser of a critical race attributes its blocked time
// to the critical state.
func TestProfileCriticalContention(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()

	inside := make(chan struct{})
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "crit"}, func(c *Context) error {
		if c.num == 0 {
			c.CriticalEnter("lock")
			close(inside)
			time.Sleep(20 * time.Millisecond)
			c.CriticalExit("lock")
			return nil
		}
		<-inside // guarantee thread 0 holds the section first
		c.CriticalEnter("lock")
		c.CriticalExit("lock")
		return nil
	})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	b := profBucket(t, r, "crit")
	if cr := b.State(prof.Critical); cr < (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("critical = %v, want >= 5ms for a 20ms hold: %+v", time.Duration(cr), b.NS)
	}
}

// TestProfileTaskwaitAndTaskgroup asserts the taskwait and
// taskgroup_wait states receive the blocked time of their constructs.
func TestProfileTaskwaitAndTaskgroup(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()

	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "tw"}, func(c *Context) error {
		if c.num != 0 {
			return nil
		}
		// A child the submitter cannot run inline: thread 1 (or the
		// taskwait loop) picks it up and sleeps, so the submitter's
		// wait time is real.
		if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
			time.Sleep(15 * time.Millisecond)
			return nil
		}); err != nil {
			return err
		}
		return c.TaskWait()
	})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}

	err = r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "tg"}, func(c *Context) error {
		if c.num != 0 {
			return nil
		}
		c.TaskgroupBegin()
		if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
			time.Sleep(15 * time.Millisecond)
			return nil
		}); err != nil {
			return err
		}
		return c.TaskgroupEnd()
	})
	if err != nil {
		t.Fatalf("taskgroup region: %v", err)
	}

	// The waits may resolve instantly when the submitter runs the
	// child inline in its own wait loop — then the time lands in
	// compute instead. Both buckets must exist and account for the
	// sleep somewhere.
	tw := profBucket(t, r, "tw")
	if tw.TotalNS < (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("tw bucket total %v; the 15ms child is unaccounted: %+v", time.Duration(tw.TotalNS), tw.NS)
	}
	tg := profBucket(t, r, "tg")
	if tg.TotalNS < (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("tg bucket total %v; the 15ms child is unaccounted: %+v", time.Duration(tg.TotalNS), tg.NS)
	}
}

// TestProfileEnvOff pins the OMP4GO_PROFILE=off escape hatch and the
// on-by-default behavior.
func TestProfileEnvOff(t *testing.T) {
	off := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{"OMP4GO_PROFILE": "off"}))
	defer off.Shutdown()
	if snap := off.ProfileSnapshot(); snap != nil {
		t.Errorf("OMP4GO_PROFILE=off still snapshots: %+v", snap)
	}
	ctx := off.NewContext()
	if err := off.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "x"}, func(*Context) error { return nil }); err != nil {
		t.Fatalf("parallel with profiler off: %v", err)
	}
	if snap := off.ProfileSnapshot(); snap != nil {
		t.Errorf("profiler re-appeared after a region: %+v", snap)
	}

	on := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{}))
	defer on.Shutdown()
	if on.ProfileSnapshot() == nil {
		t.Error("profiler must be on by default")
	}
}

// TestProfileSerialUnlabeledSkipsBucket pins the overhead contract: a
// serialized, unlabeled region resolves no bucket, so the fork/join
// fast path pays no clock reads for the common 1-thread case.
func TestProfileSerialUnlabeledSkipsBucket(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 1}, func(*Context) error { return nil }); err != nil {
		t.Fatalf("serial region: %v", err)
	}
	snap := r.ProfileSnapshot()
	if snap == nil {
		t.Fatal("profiler off by default")
	}
	if len(snap.Buckets) != 0 {
		t.Errorf("serial unlabeled region produced buckets: %+v", snap.Buckets)
	}
	// A labeled serial region does attribute (labels opt in).
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 1, Label: "serial"}, func(*Context) error { return nil }); err != nil {
		t.Fatalf("labeled serial region: %v", err)
	}
	b := profBucket(t, r, "serial")
	if b.TotalNS <= 0 {
		t.Errorf("labeled serial region attributed nothing: %+v", b)
	}
}

// TestProfilePrometheusExposition renders the snapshot and checks the
// series shape: state + construct labels, unlabeled regions as
// construct="region".
func TestProfilePrometheusExposition(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	ctx := r.NewContext()
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 2, Label: "L7"}, func(*Context) error { return nil }); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(*Context) error { return nil }); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	var sb strings.Builder
	if err := r.ProfileSnapshot().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE omp4go_time_seconds_total counter",
		`omp4go_time_seconds_total{state="compute",construct="L7"}`,
		`omp4go_time_seconds_total{state="compute",construct="region"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
