package rt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func newTestRuntime(l Layer) *Runtime {
	// Empty environment: tests control ICVs explicitly.
	return NewWithEnv(l, func(string) string { return "" })
}

func TestParallelRunsAllThreads(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		var seen sync.Map
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
			seen.Store(c.GetThreadNum(), true)
			if c.GetNumThreads() != 4 {
				t.Errorf("team size = %d", c.GetNumThreads())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		for i := 0; i < 4; i++ {
			if _, ok := seen.Load(i); !ok {
				t.Fatalf("%v: thread %d never ran", l, i)
			}
		}
	}
}

func TestParallelMasterIsEncounteringGoroutine(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	var masterRan atomic.Bool
	marker := make(chan int, 8)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 3}, func(c *Context) error {
		if c.Master() {
			masterRan.Store(true)
			if c.GetThreadNum() != 0 {
				t.Errorf("master thread num = %d", c.GetThreadNum())
			}
		}
		marker <- c.GetThreadNum()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !masterRan.Load() {
		t.Fatal("master did not execute")
	}
	if len(marker) != 3 {
		t.Fatalf("%d threads ran, want 3", len(marker))
	}
}

func TestParallelDefaultsToICV(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	r.SetNumThreads(5)
	ctx := r.NewContext()
	var size atomic.Int64
	if err := r.Parallel(ctx, ParallelOpts{}, func(c *Context) error {
		size.Store(int64(c.GetNumThreads()))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if size.Load() != 5 {
		t.Fatalf("team size = %d, want 5", size.Load())
	}
}

func TestParallelIfFalseSerializes(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	ran := 0
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 8, If: false, IfSet: true},
		func(c *Context) error {
			ran++
			if c.GetNumThreads() != 1 {
				t.Errorf("if(false) team size = %d", c.GetNumThreads())
			}
			if c.InParallel() {
				t.Error("if(false) region reports in-parallel")
			}
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("body ran %d times", ran)
	}
}

func TestNestedParallelSerializedByDefault(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(outer *Context) error {
		return r.Parallel(outer, ParallelOpts{NumThreads: 4}, func(inner *Context) error {
			if inner.GetNumThreads() != 1 {
				t.Errorf("nested team size = %d, want 1 (nesting disabled)", inner.GetNumThreads())
			}
			if inner.GetLevel() != 2 {
				t.Errorf("nested level = %d, want 2", inner.GetLevel())
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedParallelEnabled(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	r.SetNested(true)
	ctx := r.NewContext()
	var innerTotal atomic.Int64
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(outer *Context) error {
		return r.Parallel(outer, ParallelOpts{NumThreads: 3}, func(inner *Context) error {
			innerTotal.Add(1)
			if inner.GetNumThreads() != 3 {
				t.Errorf("nested team size = %d, want 3", inner.GetNumThreads())
			}
			if inner.GetActiveLevel() != 2 {
				t.Errorf("active level = %d, want 2", inner.GetActiveLevel())
			}
			if got := inner.GetAncestorThreadNum(1); got != outer.GetThreadNum() {
				t.Errorf("ancestor(1) = %d, want %d", got, outer.GetThreadNum())
			}
			if got := inner.GetTeamSize(1); got != 2 {
				t.Errorf("team size at level 1 = %d, want 2", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if innerTotal.Load() != 6 {
		t.Fatalf("inner bodies ran %d times, want 6", innerTotal.Load())
	}
}

func TestMaxActiveLevelsCapsNesting(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	r.SetNested(true)
	r.SetMaxActiveLevels(1)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(outer *Context) error {
		return r.Parallel(outer, ParallelOpts{NumThreads: 4}, func(inner *Context) error {
			if inner.GetNumThreads() != 1 {
				t.Errorf("nested team size = %d, want 1 (max active levels)", inner.GetNumThreads())
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelCollectsBodyErrors(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	boom := errors.New("boom")
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		if c.GetThreadNum()%2 == 1 {
			return fmt.Errorf("thread %d: %w", c.GetThreadNum(), boom)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap boom", err)
	}
}

func TestParallelRecoversPanics(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		if c.GetThreadNum() == 2 {
			panic("kaboom")
		}
		return nil
	})
	var tp *TeamPanic
	if !errors.As(err, &tp) {
		t.Fatalf("error = %v, want TeamPanic", err)
	}
	if _, ok := tp.Panics[2]; !ok {
		t.Fatalf("panic map %v missing thread 2", tp.Panics)
	}
}

func TestPanicDoesNotDeadlockBarrier(t *testing.T) {
	// One thread panics before an explicit barrier the others reach:
	// survivors must abandon the barrier, not hang.
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 4}, func(c *Context) error {
		if c.GetThreadNum() == 0 {
			panic("early death")
		}
		return c.Barrier()
	})
	var tp *TeamPanic
	if !errors.As(err, &tp) {
		t.Fatalf("error = %v, want TeamPanic", err)
	}
}

func TestExplicitBarrierSynchronizes(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		ctx := r.NewContext()
		const n = 8
		phase1 := make([]int, n)
		err := r.Parallel(ctx, ParallelOpts{NumThreads: n}, func(c *Context) error {
			phase1[c.GetThreadNum()] = 1
			if err := c.Barrier(); err != nil {
				return err
			}
			// After the barrier every phase-1 write must be visible.
			for i, v := range phase1 {
				if v != 1 {
					t.Errorf("%v: thread %d missing phase-1 write of %d", l, c.GetThreadNum(), i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
	}
}

func TestManyBarriersInSequence(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	const n = 4
	const rounds = 200
	counter := NewCounter(LayerAtomic)
	err := r.Parallel(ctx, ParallelOpts{NumThreads: n}, func(c *Context) error {
		for round := 1; round <= rounds; round++ {
			counter.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := counter.Load(); got != int64(round*n) {
				return fmt.Errorf("round %d: counter %d, want %d", round, got, round*n)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOnSingleThreadTeam(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	if err := ctx.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestContextFromDifferentRuntimeRejected(t *testing.T) {
	r1 := newTestRuntime(LayerAtomic)
	r2 := newTestRuntime(LayerMutex)
	ctx := r1.NewContext()
	err := r2.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error { return nil })
	var me *MisuseError
	if !errors.As(err, &me) {
		t.Fatalf("error = %v, want MisuseError", err)
	}
}

func TestInitialThreadContext(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	ctx := r.NewContext()
	if ctx.GetNumThreads() != 1 || ctx.GetThreadNum() != 0 {
		t.Fatalf("initial context: size=%d num=%d", ctx.GetNumThreads(), ctx.GetThreadNum())
	}
	if ctx.InParallel() {
		t.Fatal("initial thread reports in-parallel")
	}
	if ctx.GetLevel() != 0 || ctx.GetActiveLevel() != 0 {
		t.Fatalf("initial levels: %d/%d", ctx.GetLevel(), ctx.GetActiveLevel())
	}
}

func TestThreadLimitCapsTeam(t *testing.T) {
	r := NewWithEnv(LayerAtomic, func(k string) string {
		if k == "OMP_THREAD_LIMIT" {
			return "3"
		}
		return ""
	})
	ctx := r.NewContext()
	var size atomic.Int64
	if err := r.Parallel(ctx, ParallelOpts{NumThreads: 16}, func(c *Context) error {
		size.Store(int64(c.GetNumThreads()))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if size.Load() != 3 {
		t.Fatalf("team size = %d, want 3", size.Load())
	}
}
