package rt

import (
	"fmt"
	"strings"
)

// MisuseError reports non-conforming use of the runtime API detected
// at run time (for example a barrier inside a worksharing construct,
// or unlocking a lock the caller does not hold). The OpenMP standard
// leaves such programs undefined; like the paper, we surface the
// misuse instead of deadlocking where we can detect it cheaply.
type MisuseError struct {
	Construct string
	Msg       string
}

func (e *MisuseError) Error() string {
	if e.Construct != "" {
		return fmt.Sprintf("omp runtime: non-conforming %s: %s", e.Construct, e.Msg)
	}
	return "omp runtime: " + e.Msg
}

// brokenAbort marks errors produced when a synchronization point is
// abandoned because another thread broke the team; they are secondary
// to the root cause when errors are joined.
type brokenAbort struct{ MisuseError }

// Unwrap lets errors.As still match *MisuseError through the wrapper.
func (e *brokenAbort) Unwrap() error { return &e.MisuseError }

func newBrokenAbort(construct string) error {
	return &brokenAbort{MisuseError{Construct: construct,
		Msg: "team broken by failure in another thread"}}
}

// TeamPanic aggregates panics recovered from the members of a thread
// team. Per the OpenMP rule, exceptions never escape a parallel
// region on the thread that raised them; the encountering thread
// re-raises them after the join so Go callers are not left with
// silently-lost failures.
type TeamPanic struct {
	// Panics maps thread numbers to the recovered panic values.
	Panics map[int]any
}

func (e *TeamPanic) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "panic in %d parallel team thread(s):", len(e.Panics))
	for num, v := range e.Panics {
		fmt.Fprintf(&b, " [thread %d: %v]", num, v)
	}
	return b.String()
}
