package rt

import (
	"sync"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/ompt"
)

// recordingTool captures every event under a mutex, for asserting
// exact sequences (the built-in Tracer reorders by timestamp).
type recordingTool struct {
	mu   sync.Mutex
	recs []ompt.Record
}

func (t *recordingTool) Emit(rec ompt.Record) {
	t.mu.Lock()
	t.recs = append(t.recs, rec)
	t.mu.Unlock()
}

// byGTID splits the captured stream into per-thread sequences,
// preserving each thread's emission order.
func (t *recordingTool) byGTID() map[int32][]ompt.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int32][]ompt.Record)
	for _, r := range t.recs {
		out[r.GTID] = append(out[r.GTID], r)
	}
	return out
}

func kinds(recs []ompt.Record) []ompt.EventKind {
	out := make([]ompt.EventKind, len(recs))
	for i, r := range recs {
		out[i] = r.Kind
	}
	return out
}

func kindsEqual(got, want []ompt.EventKind) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// runTracedFor runs a 2-thread parallel for over [0, total) with the
// given schedule and returns the recorded events.
func runTracedFor(t *testing.T, l Layer, opts ForOpts, total int64) *recordingTool {
	t.Helper()
	r := newTestRuntime(l)
	rec := &recordingTool{}
	r.SetTool(rec)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		b := ForBounds(Triplet{Start: 0, End: total, Step: 1})
		if err := c.ForInit(b, opts); err != nil {
			return err
		}
		for b.ForNext() {
			for i := b.Lo; i < b.Hi; i++ {
				_ = i
			}
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatalf("parallel for failed: %v", err)
	}
	return rec
}

// TestTraceStaticForSequence asserts the exact per-thread event
// sequence of a 2-thread static parallel for: implicit task begin,
// loop begin, one block chunk, loop end, the loop's implicit barrier,
// the region-end implicit barrier, implicit task end.
func TestTraceStaticForSequence(t *testing.T) {
	for _, l := range bothLayers {
		rec := runTracedFor(t, l, ForOpts{}, 100)
		seqs := rec.byGTID()

		wantWorker := []ompt.EventKind{
			ompt.EvImplicitTaskBegin,
			ompt.EvLoopBegin,
			ompt.EvLoopChunk,
			ompt.EvLoopEnd,
			ompt.EvBarrierEnter, ompt.EvBarrierExit,
			ompt.EvBarrierEnter, ompt.EvBarrierExit,
			ompt.EvImplicitTaskEnd,
		}
		workers := 0
		var master []ompt.Record
		for gtid, seq := range seqs {
			if seq[0].Kind == ompt.EvParallelBegin {
				master = seq
				continue
			}
			if !kindsEqual(kinds(seq), wantWorker) {
				t.Fatalf("layer %v gtid %d: sequence %v, want %v", l, gtid, kinds(seq), wantWorker)
			}
			// The static block partition gives thread n the half
			// [n*50, n*50+50); the thread number rides in the
			// implicit-task event.
			num := seq[0].B
			chunk := seq[2]
			if chunk.A != num*50 || chunk.B != num*50+50 {
				t.Fatalf("layer %v thread %d: chunk [%d,%d), want [%d,%d)",
					l, num, chunk.A, chunk.B, num*50, num*50+50)
			}
			if chunk.Dur < 0 {
				t.Fatalf("negative chunk duration %d", chunk.Dur)
			}
			// Both barriers are implicit, with per-thread epochs 1, 2.
			for i, idx := range []int{4, 6} {
				enter, exit := seq[idx], seq[idx+1]
				if enter.A != ompt.BarrierImplicit || exit.A != ompt.BarrierImplicit {
					t.Fatalf("barrier kind = %d/%d, want implicit", enter.A, exit.A)
				}
				if wantEpoch := int64(i + 1); enter.B != wantEpoch || exit.B != wantEpoch {
					t.Fatalf("barrier epoch = %d/%d, want %d", enter.B, exit.B, wantEpoch)
				}
				if exit.Dur < 0 {
					t.Fatalf("negative barrier wait %d", exit.Dur)
				}
			}
			workers++
		}
		if workers != 2 {
			t.Fatalf("layer %v: %d worker sequences, want 2", l, workers)
		}
		if master == nil {
			t.Fatalf("layer %v: no parallel begin/end sequence", l)
		}
		if !kindsEqual(kinds(master), []ompt.EventKind{ompt.EvParallelBegin, ompt.EvParallelEnd}) {
			t.Fatalf("layer %v: master sequence %v", l, kinds(master))
		}
		if master[0].B != 2 || master[1].Dur <= 0 {
			t.Fatalf("layer %v: parallel events %+v", l, master)
		}
	}
}

// TestTraceDynamicForCoverage asserts that the chunk events of a
// dynamic schedule tile [0, total) exactly once, and that each
// thread's stream stays well-formed.
func TestTraceDynamicForCoverage(t *testing.T) {
	for _, l := range bothLayers {
		const total = 100
		rec := runTracedFor(t, l, ForOpts{
			Sched:    Schedule{Kind: directive.ScheduleDynamic, Chunk: 7},
			SchedSet: true,
		}, total)

		covered := make([]int, total)
		for gtid, seq := range rec.byGTID() {
			if seq[0].Kind == ompt.EvParallelBegin {
				continue
			}
			ks := kinds(seq)
			if ks[0] != ompt.EvImplicitTaskBegin || ks[1] != ompt.EvLoopBegin {
				t.Fatalf("layer %v gtid %d: sequence starts %v", l, gtid, ks[:2])
			}
			if ks[len(ks)-1] != ompt.EvImplicitTaskEnd {
				t.Fatalf("layer %v gtid %d: sequence ends %v", l, gtid, ks[len(ks)-1])
			}
			sawLoopEnd := false
			for _, r := range seq {
				switch r.Kind {
				case ompt.EvLoopChunk:
					if sawLoopEnd {
						t.Fatalf("chunk event after loop end")
					}
					if r.A < 0 || r.B > total || r.A >= r.B {
						t.Fatalf("bad chunk bounds [%d,%d)", r.A, r.B)
					}
					for i := r.A; i < r.B; i++ {
						covered[i]++
					}
				case ompt.EvLoopEnd:
					sawLoopEnd = true
				}
			}
			if !sawLoopEnd {
				t.Fatalf("layer %v gtid %d: no loop-end event", l, gtid)
			}
			if sched := seq[1].Label; sched != "dynamic" {
				t.Fatalf("loop begin schedule label = %q, want dynamic", sched)
			}
		}
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("layer %v: iteration %d traced %d times", l, i, n)
			}
		}
	}
}

// TestTraceBarrierWait asserts the wait-time accounting: a thread
// arriving early at a barrier observes at least the latecomer's delay
// as wait time, and successive barriers report increasing epochs.
func TestTraceBarrierWait(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	rec := &recordingTool{}
	r.SetTool(rec)
	ctx := r.NewContext()
	const delay = 50 * time.Millisecond
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		if c.ThreadNum() == 0 {
			time.Sleep(delay)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatalf("parallel failed: %v", err)
	}
	for gtid, seq := range rec.byGTID() {
		if seq[0].Kind == ompt.EvParallelBegin {
			continue
		}
		var exits []ompt.Record
		for _, r := range seq {
			if r.Kind == ompt.EvBarrierExit {
				exits = append(exits, r)
			}
		}
		// Two explicit barriers plus the region-end implicit one.
		if len(exits) != 3 {
			t.Fatalf("gtid %d: %d barrier exits, want 3", gtid, len(exits))
		}
		for i, e := range exits {
			if e.Dur < 0 {
				t.Fatalf("gtid %d: negative barrier wait %d", gtid, e.Dur)
			}
			if want := int64(i + 1); e.B != want {
				t.Fatalf("gtid %d: barrier epoch %d, want %d (monotonic)", gtid, e.B, want)
			}
		}
		if exits[0].A != ompt.BarrierExplicit || exits[2].A != ompt.BarrierImplicit {
			t.Fatalf("gtid %d: barrier kinds %d,%d", gtid, exits[0].A, exits[2].A)
		}
		// The thread that did not sleep (thread 1) waited for the
		// sleeper at the first barrier.
		if seq[0].B == 1 && exits[0].Dur < int64(delay/2) {
			t.Fatalf("early thread's first barrier wait = %s, want >= %s",
				time.Duration(exits[0].Dur), delay/2)
		}
	}
}

// TestTraceTaskEvents asserts create/begin/end pairing and queue-depth
// reporting for explicit tasks.
func TestTraceTaskEvents(t *testing.T) {
	for _, l := range bothLayers {
		r := newTestRuntime(l)
		rec := &recordingTool{}
		r.SetTool(rec)
		ctx := r.NewContext()
		const tasks = 8
		err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.ThreadNum() == 0 {
				for i := 0; i < tasks; i++ {
					if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("parallel failed: %v", err)
		}
		rec.mu.Lock()
		created, begun, ended := map[int64]bool{}, map[int64]bool{}, map[int64]bool{}
		var maxDepth int64
		for _, r := range rec.recs {
			switch r.Kind {
			case ompt.EvTaskCreate:
				created[r.A] = true
				if r.B > maxDepth {
					maxDepth = r.B
				}
			case ompt.EvTaskBegin:
				begun[r.A] = true
			case ompt.EvTaskEnd:
				ended[r.A] = true
				if r.Dur < 0 {
					t.Fatalf("negative task duration")
				}
			}
		}
		rec.mu.Unlock()
		if len(created) != tasks || len(begun) != tasks || len(ended) != tasks {
			t.Fatalf("layer %v: created %d begun %d ended %d, want %d each",
				l, len(created), len(begun), len(ended), tasks)
		}
		if maxDepth < 1 {
			t.Fatalf("layer %v: max queue depth %d, want >= 1", l, maxDepth)
		}
	}
}

// TestTraceCriticalContention asserts that critical acquire events
// carry contention wait and release events carry hold time.
func TestTraceCriticalContention(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	rec := &recordingTool{}
	r.SetTool(rec)
	ctx := r.NewContext()
	const hold = 30 * time.Millisecond
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		c.CriticalEnter("sec")
		time.Sleep(hold)
		c.CriticalExit("sec")
		return nil
	})
	if err != nil {
		t.Fatalf("parallel failed: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var acquires, releases []ompt.Record
	for _, r := range rec.recs {
		switch r.Kind {
		case ompt.EvCriticalAcquire:
			acquires = append(acquires, r)
		case ompt.EvCriticalRelease:
			releases = append(releases, r)
		}
	}
	if len(acquires) != 2 || len(releases) != 2 {
		t.Fatalf("%d acquires, %d releases, want 2 each", len(acquires), len(releases))
	}
	var maxWait, maxHeld int64
	for _, a := range acquires {
		if a.Label != "sec" {
			t.Fatalf("acquire label %q", a.Label)
		}
		if a.Dur > maxWait {
			maxWait = a.Dur
		}
	}
	for _, rl := range releases {
		if rl.Dur > maxHeld {
			maxHeld = rl.Dur
		}
	}
	// The second thread contended for the full hold duration.
	if maxWait < int64(hold/2) {
		t.Fatalf("max critical wait = %s, want >= %s", time.Duration(maxWait), hold/2)
	}
	if maxHeld < int64(hold/2) {
		t.Fatalf("max critical hold = %s, want >= %s", time.Duration(maxHeld), hold/2)
	}
}

// TestTraceReductionMerge asserts the reduce-merge instant event.
func TestTraceReductionMerge(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	rec := &recordingTool{}
	r.SetTool(rec)
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		c.ReductionMerge("+:total")
		return nil
	})
	if err != nil {
		t.Fatalf("parallel failed: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	merges := 0
	for _, r := range rec.recs {
		if r.Kind == ompt.EvReduceMerge {
			if r.Label != "+:total" {
				t.Fatalf("merge label %q", r.Label)
			}
			merges++
		}
	}
	if merges != 2 {
		t.Fatalf("%d merge events, want 2", merges)
	}
}

// TestTraceDisabledEmitsNothing asserts the disabled fast path: with
// no tool attached nothing is recorded even through the instrumented
// entry points.
func TestTraceDisabledEmitsNothing(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	rec := &recordingTool{}
	ctx := r.NewContext()
	err := r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
		b := ForBounds(Triplet{Start: 0, End: 10, Step: 1})
		if err := c.ForInit(b, ForOpts{}); err != nil {
			return err
		}
		for b.ForNext() {
		}
		c.CriticalEnter("sec")
		c.CriticalExit("sec")
		c.ReductionMerge("x")
		if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
			return err
		}
		return c.ForEnd(b)
	})
	if err != nil {
		t.Fatalf("parallel failed: %v", err)
	}
	// Attaching afterwards must not resurrect past events.
	r.SetTool(rec)
	if n := len(rec.recs); n != 0 {
		t.Fatalf("%d events recorded with tracing disabled", n)
	}
}
