package rt

import (
	stdctx "context"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// Runtime is one OpenMP runtime instance. OMP4Py instantiates the
// same logic twice (pure-Python runtime and Cython cruntime); here a
// Runtime is parameterized by its Layer instead. Instances are fully
// independent: contexts from one runtime are treated as foreign
// initial threads by another, exactly as in the paper.
type Runtime struct {
	layer Layer
	icv   icvSet

	criticalMu sync.Mutex
	criticals  map[string]*sync.Mutex

	// atomicCells stripes locks for the atomic construct; cells are
	// selected by hashing the updated location's identity.
	atomicCells [64]sync.Mutex

	declRedMu sync.Mutex
	declRed   map[string]*DeclaredReduction

	epoch time.Time

	// tool is the attached OMPT-style observability tool; nil means
	// tracing disabled. The pointer is atomic so SetTool may run while
	// regions are in flight (hook sites load it once per hook);
	// envTracer/traceFile are set when OMP4GO_TRACE activated tracing
	// through the environment.
	tool      atomic.Pointer[toolBox]
	envTracer *ompt.Tracer
	traceFile string

	// metrics is the always-on counter/histogram registry: updates are
	// striped per thread id and merged only on snapshot, so hot paths
	// pay one uncontended atomic add per event (internal/metrics).
	metrics *metrics.Registry

	// forkICV caches the ICVs Parallel needs to size a team, refreshed
	// by the (rare) setters. Reading it is one atomic pointer load,
	// keeping the icv mutex off the region fork path.
	forkICV atomic.Pointer[forkICVs]

	// obs is the live-introspection state: non-nil once a metrics
	// endpoint or watchdog wants to see in-flight regions. Hot paths
	// gate the extra bookkeeping (wait markers, pprof labels, region
	// registry) on a single atomic load of this pointer.
	obs atomic.Pointer[obsState]

	// prof is the time-attribution profiler (internal/prof), on by
	// default (OMP4GO_PROFILE=off disables it). Like obs and tool it
	// is an atomic gate: hot paths pay one pointer load when it is
	// off, and unlabeled serialized (1-thread) regions skip the
	// member clock stamps entirely so the fork fast path keeps its
	// overhead bar.
	prof atomic.Pointer[prof.Profiler]

	// flight is the flight recorder (flight.go); nil unless enabled
	// via OMP4GO_FLIGHT, EnableFlight, or the execution service.
	flight atomic.Pointer[FlightRecorder]

	// wd is the stall watchdog (watchdog.go); envServer the metrics
	// endpoint activated by OMP4GO_METRICS. Both are rare-path state
	// guarded by wdMu.
	wdMu      sync.Mutex
	wd        *watchdog
	envServer *MetricsServer

	// gtidSeq hands out per-context global trace thread ids;
	// regionSeq numbers parallel regions; taskSeq numbers explicit
	// tasks and tgSeq taskgroup regions (both assigned only while a
	// tool is attached).
	gtidSeq   atomic.Int64
	regionSeq atomic.Int64
	taskSeq   atomic.Int64
	tgSeq     atomic.Int64

	// taskSched selects the team task scheduler: work-stealing
	// deques by default, the paper's shared list queue when
	// OMP4GO_TASK_SCHED=list (differential testing).
	taskSched schedMode

	// pool holds the persistent worker goroutines Parallel dispatches
	// region bodies to (pool.go); nil when OMP4GO_POOL=off selects the
	// spawn-per-region baseline.
	pool *workerPool

	// teamCache recycles Team objects (and with them the scheduler's
	// per-thread deques) between same-size regions; pool mode only, so
	// the spawn baseline keeps its allocate-per-region behaviour.
	teamCacheMu sync.Mutex
	teamCache   map[int][]*Team
}

// maxCachedTeams bounds the recycled teams kept per team size; nested
// parallelism can hold several same-size teams live at once.
const maxCachedTeams = 8

// New returns a runtime using the given synchronization layer with
// ICVs initialized from the OMP_* environment variables.
func New(layer Layer) *Runtime {
	return NewWithEnv(layer, nil)
}

// NewWithEnv is New with an explicit environment lookup (tests use a
// fake; nil means os.Getenv).
func NewWithEnv(layer Layer, getenv func(string) string) *Runtime {
	r := &Runtime{
		layer:     layer,
		icv:       defaultICVs(),
		criticals: make(map[string]*sync.Mutex),
		declRed:   make(map[string]*DeclaredReduction),
		epoch:     time.Now(),
		metrics:   metrics.New(),
	}
	r.icv.loadEnv(getenv)
	r.refreshForkICV()
	r.taskSched = parseSchedMode(r.icv.taskSched)
	if r.icv.profileMode != "off" {
		r.prof.Store(prof.New())
	}
	if r.icv.poolMode != "off" {
		r.pool = newWorkerPool(r)
		r.teamCache = make(map[int][]*Team)
	}
	if r.icv.displayEnv != "" {
		r.icv.display(displayEnvOut)
	}
	if r.icv.traceFile != "" {
		// OMP4GO_TRACE=<file> activates the built-in tracer at
		// runtime init, mirroring how OMP_TOOL attaches an OMPT tool;
		// FlushTrace writes the file when the program is done.
		r.traceFile = r.icv.traceFile
		r.envTracer = ompt.NewTracer(0)
		r.SetTool(r.envTracer)
	}
	if r.icv.watchdog > 0 {
		// OMP4GO_WATCHDOG=<duration> arms the stall watchdog at init.
		r.StartWatchdog(r.icv.watchdog)
	}
	if dir := r.icv.flightDir; dir != "" {
		// OMP4GO_FLIGHT=<dir> arms the flight recorder at init. Like
		// OMP4GO_METRICS, a failure (unwritable directory) is reported
		// but never takes the program down.
		if _, err := r.EnableFlight(dir); err != nil {
			fmt.Fprintf(os.Stderr, "omp4go: OMP4GO_FLIGHT: %v\n", err)
		}
	}
	if addr := r.icv.metricsAddr; addr != "" {
		// OMP4GO_METRICS=<addr> serves /metrics and /debug/omp for the
		// runtime's lifetime. A bind failure is reported but does not
		// fail construction: observability must never take the
		// program down.
		if srv, err := r.ServeMetrics(addr); err != nil {
			fmt.Fprintf(os.Stderr, "omp4go: OMP4GO_METRICS: %v\n", err)
		} else {
			r.envServer = srv
		}
	}
	return r
}

// Layer reports the synchronization layer of this runtime.
func (r *Runtime) Layer() Layer { return r.layer }

// PoolEnabled reports whether Parallel dispatches to the persistent
// worker pool (true unless OMP4GO_POOL=off).
func (r *Runtime) PoolEnabled() bool { return r.pool != nil }

// MetricsSnapshot returns a merged point-in-time view of the runtime's
// always-on metrics.
func (r *Runtime) MetricsSnapshot() *metrics.Snapshot { return r.metrics.Snapshot() }

// Metrics exposes the runtime's live registry so adjacent subsystems
// (the MPI fabric's Comm.AttachMetrics) can land their counters on
// this runtime's /metrics endpoint.
func (r *Runtime) Metrics() *metrics.Registry { return r.metrics }

// Shutdown retires the runtime's parked pool workers and stops the
// environment-activated observability services (watchdog, metrics
// endpoint). It is optional — idle workers retire on their own after
// workerIdleTimeout — but gives deterministic teardown for tests and
// short-lived runtimes. Parallel remains usable afterwards, falling
// back to spawning goroutines per region.
func (r *Runtime) Shutdown() {
	r.StopWatchdog()
	if fr := r.flight.Swap(nil); fr != nil {
		fr.stopSampler()
	}
	r.wdMu.Lock()
	srv := r.envServer
	r.envServer = nil
	r.wdMu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
	if r.pool != nil {
		r.pool.shutdownAll()
	}
}

// takeTeam returns a recycled team of the given size or builds a new
// one. Recycling is a pool-mode optimization: the spawn-per-region
// baseline allocates fresh, as the seed runtime did.
func (r *Runtime) takeTeam(size int) *Team {
	if r.pool != nil {
		r.teamCacheMu.Lock()
		if list := r.teamCache[size]; len(list) > 0 {
			t := list[len(list)-1]
			list[len(list)-1] = nil
			r.teamCache[size] = list[:len(list)-1]
			r.teamCacheMu.Unlock()
			t.reset()
			return t
		}
		r.teamCacheMu.Unlock()
	}
	return newTeam(r, nil, size)
}

// putTeam recycles a team whose region joined cleanly. A broken team
// (or one with tasks unaccounted for) may hold abandoned tasks in its
// deques and is left for the garbage collector instead.
func (r *Runtime) putTeam(t *Team) {
	if r.pool == nil || t.broken.Load() != 0 || t.outstanding.Load() != 0 {
		return
	}
	r.teamCacheMu.Lock()
	if len(r.teamCache[t.size]) < maxCachedTeams {
		r.teamCache[t.size] = append(r.teamCache[t.size], t)
	}
	r.teamCacheMu.Unlock()
}

// reset prepares a recycled team for its next region. Member contexts
// are overwritten by Parallel; the scheduler keeps its deques (empty
// after a clean join) and the region table is replaced because its
// entries are keyed by per-thread construct sequence numbers that
// restart at zero with the fresh contexts.
func (t *Team) reset() {
	t.regionID = int32(t.rt.regionSeq.Add(1))
	t.arrivals.Store(0)
	t.broken.Store(0)
	t.outstanding.Store(0)
	t.depStalled.Store(0)
	// t.regions is kept: a cleanly-joined region leaves the table
	// empty (every worksharing region is dropped when its last thread
	// leaves — regionleak_test.go holds this invariant), so reusing
	// it is safe even though wsIndex keys restart per region.
	t.taskErrs = nil
	t.sched.reset()
}

// Context is the per-thread OpenMP execution context: the task stack
// of the paper's §III-C. CPython stores it in threading.local /
// C thread_local storage; Go has no TLS, so contexts are threaded
// explicitly through every runtime call.
type Context struct {
	rt     *Runtime
	team   *Team
	parent *Context // encountering thread's context, nil for initial threads
	num    int      // thread number within the team

	level       int // nesting depth of parallel regions (incl. serialized)
	activeLevel int // nesting depth counting only teams with size > 1

	curTask *task      // innermost task (implicit or explicit)
	curTG   *taskgroup // innermost taskgroup region (depend.go), nil outside any

	wsIndex      int64 // worksharing constructs encountered in this region
	wsDepth      int   // >0 while inside a worksharing construct body
	barrierEpoch int64 // barriers passed in this region
	curLoop      *LoopBounds

	// gtid is the global trace thread id (unique per context across
	// all teams); critT0 stacks critical-section entry times. Both
	// serve the observability subsystem only.
	gtid   int32
	critT0 []int64

	// Profiler bookkeeping, owner-thread only (plain fields): profT0
	// is the member's region entry stamp, profWaitNS accumulates
	// every nanosecond the wait sites attributed to a non-compute
	// state, so compute = (now - profT0) - profWaitNS at region end.
	// kernelT0 is the running compiled-kernel entry stamp (0 = none).
	profT0     int64
	profWaitNS int64
	kernelT0   int64

	// waitKind/waitSince mark what synchronization point this thread
	// is blocked in (waitNone when running). Written by the owning
	// thread only while introspection is enabled (r.obs non-nil), read
	// by the watchdog sampler and the /debug/omp handler — atomics
	// make the cross-goroutine reads race-free. waitDetail names what
	// the thread waits for (a taskgroup, unresolved predecessors).
	waitKind   atomic.Int32
	waitSince  atomic.Int64
	waitDetail atomic.Pointer[string]
}

// NewContext creates the context for an initial thread: a thread that
// exists outside any OpenMP-created team. It is implicitly part of a
// single-thread parallel team consisting only of itself.
func (r *Runtime) NewContext() *Context {
	ctx := &Context{rt: r, gtid: int32(r.gtidSeq.Add(1) - 1)}
	team := newTeam(r, nil, 1)
	ctx.team = team
	ctx.curTask = newTask(r.layer, nil, nil, false)
	team.members[0] = ctx
	return ctx
}

// Runtime returns the runtime that owns this context.
func (c *Context) Runtime() *Runtime { return c.rt }

// ThreadNum returns the thread number within the current team.
func (c *Context) ThreadNum() int { return c.num }

// TeamSize returns the size of the current team.
func (c *Context) TeamSize() int { return c.team.size }

// Team is a thread team created by a parallel directive.
type Team struct {
	rt    *Runtime
	layer Layer
	size  int

	members []*Context

	// wake is the team-wide wake-up channel used by barriers,
	// taskwait, ordered sections and copyprivate. Wakers broadcast
	// under the mutex so waiters cannot miss a state change.
	wakeMu   sync.Mutex
	wakeCond *sync.Cond

	sched       taskScheduler
	outstanding Counter // explicit tasks submitted but not yet completed

	arrivals Counter // monotonically increasing barrier arrival count

	// release is the timestamp of the latest barrier-epoch completion
	// (written by the one arrival that completes an epoch). Waiters
	// use it as their wait-end time for the always-on wait metrics —
	// one clock read per waiting thread instead of two. A waiter that
	// races the store (sees the epoch complete before the stamp
	// lands) falls back to reading the clock itself.
	release atomic.Int64

	regions *regionTable

	// broken is set when a team thread dies from a panic; barriers
	// and waits abort instead of deadlocking on the missing thread.
	broken Counter

	taskErrMu sync.Mutex
	taskErrs  []error

	// errbuf backs the per-region member error slice; recycled with
	// the team so joining a region costs no allocation.
	errbuf []error

	// depStalled gauges the team's dependence-stalled tasks (created
	// but gated on unresolved predecessors). Wait loops consult it to
	// classify their idle time: sleeping while it is nonzero is a
	// dependence stall, not generic barrier/steal idling.
	depStalled atomic.Int64

	// Per-region fork state. Keeping it on the (recycled) team rather
	// than in Parallel's locals makes forking a region allocation-free
	// in pool mode: locals captured by a dispatch closure would each
	// cost a heap cell per region.
	body    func(*Context) error // region body for this fork
	tool    ompt.Tool            // tool snapshot for this fork
	labeled bool                 // members run under pprof labels (obs on)
	label   string               // region label (profiler bucket key)
	// profBucket is the profiler bucket for this fork; nil disables
	// member attribution (profiler off, or an unlabeled serialized
	// region — not worth two clock stamps on the 1T fast path).
	profBucket *prof.Bucket
	wg      sync.WaitGroup       // join group; reused after each Wait
	panicMu sync.Mutex
	panics  map[int]any // allocated on first member panic only

	// regionID numbers the parallel region this team executes
	// (observability subsystem).
	regionID int32
}

// memberMain is one team member's whole region: the body, error and
// panic collection, and the closing implicit barrier. Dispatched as a
// (Team, Context) pair — never as a closure — on the region hot path.
func (t *Team) memberMain(member *Context) {
	if t.labeled {
		// Goroutine labels make pool workers and spawned members
		// attributable in pprof profiles while introspection is on:
		// omp_region is the region id, omp_gtid the member's stable
		// thread id. pprof.Do restores the previous labels on return,
		// so the master's caller keeps its own labels.
		labels := pprof.Labels(
			"omp_region", itoa(int(t.regionID)),
			"omp_gtid", itoa(int(member.gtid)))
		pprof.Do(stdctx.Background(), labels, func(stdctx.Context) { t.runMember(member) })
		return
	}
	t.runMember(member)
}

func (t *Team) runMember(member *Context) {
	pb := t.profBucket
	if pb != nil {
		member.profWaitNS = 0
		member.profT0 = ompt.Now()
	}
	tool := t.tool
	if tool != nil {
		member.emitTo(tool, ompt.EvImplicitTaskBegin, int64(t.regionID), int64(member.num), 0, "")
		// The deferred end event also fires when the member dies
		// from a panic, keeping every begin paired in the trace.
		defer member.emitTo(tool, ompt.EvImplicitTaskEnd, int64(t.regionID), int64(member.num), 0, "")
	}
	defer func() {
		if p := recover(); p != nil {
			t.panicMu.Lock()
			if t.panics == nil {
				t.panics = make(map[int]any)
			}
			t.panics[member.num] = p
			t.panicMu.Unlock()
			// Mark the team broken so surviving threads abandon
			// barriers instead of waiting for the dead thread.
			t.broken.Store(1)
			t.wakeAll()
		}
	}()
	err := t.body(member)
	t.errbuf[member.num] = err
	if err != nil {
		// An error escaping the region body means this thread
		// abandons its remaining synchronization points (the
		// OpenMP rule is that exceptions must be handled inside
		// the region); mark the team broken so peers blocked on
		// this thread — barriers, copyprivate — abort instead of
		// deadlocking.
		t.broken.Store(1)
		t.wakeAll()
	}
	// Implicit barrier at region end: drains outstanding tasks.
	// Barrier aborts caused by another thread's failure are not
	// recorded: the causing thread already carries the error.
	if berr := t.Barrier(member); berr != nil && err == nil &&
		t.broken.Load() == 0 {
		t.errbuf[member.num] = berr
	}
	// The closing barrier drained every explicit task, so the errors
	// that climbed to this member's implicit task — failures no
	// taskwait/taskgroup-end consumed — are final; surface them once
	// at the region join. (On a broken team stragglers may still
	// deliver afterwards; their errors stay with the abandoned team,
	// whose join already reports the causing failure.)
	for _, e := range member.curTask.takeChildErrs() {
		t.recordTaskError(e)
	}
	if pb != nil {
		// Compute by subtraction: the member's whole wall time minus
		// everything the wait sites already attributed. The breakdown
		// sums to team wall time by construction. (A panicking member
		// unwinds past this — abnormal regions go unattributed.)
		if compute := ompt.Now() - member.profT0 - member.profWaitNS; compute > 0 {
			pb.Add(int32(member.num), prof.Compute, compute)
		}
	}
}

// spawnedMember runs a member on a freshly spawned goroutine (pool
// exhausted or disabled); pool workers run memberMain from their
// dispatch loop instead.
func (t *Team) spawnedMember(member *Context) {
	defer t.wg.Done()
	t.memberMain(member)
}

func newTeam(r *Runtime, master *Context, size int) *Team {
	t := &Team{
		regionID:    int32(r.regionSeq.Add(1)),
		rt:          r,
		layer:       r.layer,
		size:        size,
		members:     make([]*Context, size),
		sched:       newTaskScheduler(r.layer, size, r.taskSched),
		outstanding: NewCounter(r.layer),
		arrivals:    NewCounter(r.layer),
		regions:     newRegionTable(r.layer),
		broken:      NewCounter(r.layer),
		errbuf:      make([]error, size),
	}
	t.wakeCond = sync.NewCond(&t.wakeMu)
	_ = master
	return t
}

// wakeAll wakes every thread blocked on the team (barrier, taskwait,
// ordered, copyprivate). Broadcasting under the mutex pairs with
// waitFor's check-then-wait so no wake-up is lost.
func (t *Team) wakeAll() {
	t.wakeMu.Lock()
	t.wakeCond.Broadcast()
	t.wakeMu.Unlock()
}

// waitFor blocks until pred() holds. pred must be monotonic with
// respect to the wake events (every state change that can make it
// true is followed by wakeAll).
func (t *Team) waitFor(pred func() bool) {
	t.wakeMu.Lock()
	for !pred() {
		t.wakeCond.Wait()
	}
	t.wakeMu.Unlock()
}

// ParallelOpts carries the clauses of a parallel directive that the
// runtime itself consumes.
type ParallelOpts struct {
	// NumThreads is the num_threads clause; 0 means the nthreads ICV.
	NumThreads int
	// If is the value of the if clause; it only applies when IfSet.
	If    bool
	IfSet bool
	// Label names the region for time attribution (internal/prof):
	// MiniPy lowers the directive's source line ("L12"), native
	// callers use omp.WithLabel. Empty regions pool into the
	// unlabeled bucket.
	Label string
}

// Parallel executes body on a new thread team, implementing the
// parallel directive. The encountering thread becomes thread 0 of the
// new team (the master); the remaining team members run on fresh
// goroutines. An implicit task-draining barrier joins the team.
//
// Errors returned by body do not cross the region boundary on their
// own thread (the OpenMP rule); they are collected and returned as a
// single error from Parallel on the encountering thread. Panics in
// team threads are recovered and reported the same way.
func (r *Runtime) Parallel(ctx *Context, opts ParallelOpts, body func(*Context) error) error {
	if ctx.rt != r {
		return &MisuseError{Construct: "parallel", Msg: "context belongs to a different runtime"}
	}
	if ctx.wsDepth > 0 {
		return &MisuseError{Construct: "parallel",
			Msg: "parallel region may not be closely nested inside a worksharing construct without enclosing parallel"}
	}
	n := r.resolveTeamSize(ctx, opts)
	team := r.takeTeam(n)

	r.metrics.Inc(ctx.gtid, metrics.RegionsForked)
	// The tool is loaded once per region so a concurrent SetTool never
	// splits the region's paired events across two tools.
	tool := r.loadTool()
	var regionT0 int64
	if tool != nil {
		regionT0 = ompt.Now()
		ctx.emitTo(tool, ompt.EvParallelBegin, int64(team.regionID), int64(n), 0, "")
	}

	errs := team.errbuf[:n]
	for i := range errs {
		errs[i] = nil
	}
	// Fork state rides on the (recycled) team — see memberMain. The
	// writes happen before any dispatch, which provides the ordering.
	team.body = body
	team.tool = tool
	team.panics = nil
	team.label = opts.Label
	team.profBucket = nil
	if p := r.prof.Load(); p != nil && (n > 1 || opts.Label != "") {
		// Unlabeled 1-thread regions stay unprofiled: they have no
		// wait states to break down, and skipping them keeps the
		// serialized fork path free of clock reads (the PR 4 bar).
		team.profBucket = p.Bucket(opts.Label)
	}

	// Workers come from the persistent pool when enabled; the pool may
	// come up short (cap reached, nested demand, shutdown), in which
	// case the remaining members run on spawned goroutines exactly as
	// in the OMP4GO_POOL=off baseline.
	var workers []*poolWorker
	if r.pool != nil && n > 1 {
		workers = r.pool.acquire(n - 1)
	}

	// Setup pass: every member context is fully initialized before any
	// of them is dispatched. The split from dispatch matters for
	// introspection — registering the team between the passes means
	// the watchdog and /debug/omp only ever observe members whose
	// plain fields (num, gtid) are final, with the registry mutex
	// providing the happens-before edge.
	for i := 0; i < n; i++ {
		// A recycled team still holds its previous members: reuse the
		// Context and its implicit task in place of reallocating both
		// per region. Safe because teams are recycled only after a
		// clean join (every member back at its implicit task, no
		// outstanding children) and contexts are dead outside their
		// region by the OpenMP contract.
		member := team.members[i]
		if member == nil {
			member = &Context{rt: r, team: team, num: i}
			member.curTask = newTask(r.layer, nil, nil, false)
			team.members[i] = member
		} else {
			member.curTask.resetImplicit()
			member.wsIndex, member.wsDepth, member.barrierEpoch = 0, 0, 0
			member.curLoop = nil
			member.curTG = nil
			member.critT0 = member.critT0[:0]
		}
		member.parent = ctx
		member.level = ctx.level + 1
		member.activeLevel = ctx.activeLevel
		if n > 1 {
			member.activeLevel++
		}
		switch {
		case i == 0:
			// Master runs on the encountering goroutine.
			member.gtid = int32(r.gtidSeq.Add(1) - 1)
		case i-1 < len(workers):
			// Pool dispatch: the member inherits the worker's stable
			// gtid, so per-thread trace rings persist across regions.
			member.gtid = workers[i-1].gtid
		default:
			member.gtid = int32(r.gtidSeq.Add(1) - 1)
		}
	}

	obs := r.obs.Load()
	team.labeled = obs != nil
	if obs != nil {
		obs.register(team)
	}

	// Dispatch pass.
	team.wg.Add(n - 1) // every member but the master signals completion
	for i := 1; i < n; i++ {
		member := team.members[i]
		if i-1 < len(workers) {
			workers[i-1].slot.put(dispatch{t: team, m: member})
			continue
		}
		go team.spawnedMember(member)
	}
	team.memberMain(team.members[0])
	team.wg.Wait()
	// Borrowed slots go back in one batch: cheaper than per-worker
	// release locking, and still ordered before Parallel returns.
	if r.pool != nil {
		r.pool.releaseAll(workers)
	}
	if obs != nil {
		obs.unregister(team)
	}

	r.metrics.Inc(ctx.gtid, metrics.RegionsJoined)
	if tool != nil {
		ctx.emitTo(tool, ompt.EvParallelEnd, int64(team.regionID), int64(n), ompt.Now()-regionT0, "")
	}

	// Drop the region's references before the team is recycled (or
	// collected): body and tool are user values the runtime must not
	// retain past the join.
	team.body, team.tool = nil, nil

	if len(team.panics) > 0 {
		return &TeamPanic{Panics: team.panics}
	}
	// joinErrors runs before the team is recycled: errs aliases the
	// team's errbuf, which the next region borrowing this team will
	// overwrite.
	errs = append(errs, team.takeTaskErrors()...)
	err := joinErrors(errs)
	r.putTeam(team)
	return err
}

func joinErrors(errs []error) error {
	// Broken-team aborts are consequences, not causes: a thread that
	// bailed out of a barrier because another thread failed should
	// not mask that thread's actual error.
	var first error
	total := 0
	for _, e := range errs {
		if e == nil {
			continue
		}
		total++
		if _, secondary := e.(*brokenAbort); secondary {
			continue
		}
		if first == nil {
			first = e
		}
	}
	if total == 0 {
		return nil
	}
	if first == nil {
		// Every error is a broken abort (e.g. the causing thread
		// panicked and is reported separately).
		for _, e := range errs {
			if e != nil {
				first = e
				break
			}
		}
	}
	if total > 1 {
		return &teamError{first: first, extra: total - 1}
	}
	return first
}

type teamError struct {
	first error
	extra int
}

func (e *teamError) Error() string {
	return e.first.Error() + " (and " + itoa(e.extra) + " more team thread error(s))"
}

func (e *teamError) Unwrap() error { return e.first }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// forkICVs is the immutable snapshot of the team-sizing ICVs behind
// Runtime.forkICV. A fresh value is published on every change, so
// resolveTeamSize reads a consistent set with one atomic load.
type forkICVs struct {
	numThreads      int
	nested          bool
	maxActiveLevels int
	threadLimit     int
}

// refreshForkICV republishes the team-sizing ICV snapshot; every
// setter that touches one of its fields must call it after unlocking.
func (r *Runtime) refreshForkICV() {
	r.icv.mu.Lock()
	f := &forkICVs{
		numThreads:      r.icv.numThreads,
		nested:          r.icv.nested,
		maxActiveLevels: r.icv.maxActiveLevels,
		threadLimit:     r.icv.threadLimit,
	}
	r.icv.mu.Unlock()
	r.forkICV.Store(f)
}

func (r *Runtime) resolveTeamSize(ctx *Context, opts ParallelOpts) int {
	f := r.forkICV.Load()
	n := f.numThreads
	nested := f.nested
	maxActive := f.maxActiveLevels
	limit := f.threadLimit

	if opts.NumThreads > 0 {
		n = opts.NumThreads
	}
	if opts.IfSet && !opts.If {
		n = 1
	}
	if ctx.activeLevel >= 1 && !nested {
		n = 1 // nested region serialized unless omp_set_nested(true)
	}
	if ctx.activeLevel >= maxActive {
		n = 1
	}
	if n > limit {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Barrier implements the implicit barrier of a parallel region or
// worksharing construct: every thread of the team waits until all
// have arrived, consuming pending explicit tasks while waiting
// (§III-E of the paper). All explicit tasks generated in the region
// complete before any thread leaves.
func (t *Team) Barrier(ctx *Context) error {
	return t.barrier(ctx, ompt.BarrierImplicit)
}

// Barrier is the context-level entry point for the explicit barrier
// directive.
func (c *Context) Barrier() error { return c.team.barrier(c, ompt.BarrierExplicit) }

func (t *Team) barrier(ctx *Context, kind int64) error {
	if ctx.wsDepth > 0 {
		return &MisuseError{Construct: "barrier",
			Msg: "barrier may not appear inside a worksharing construct body"}
	}
	r := t.rt
	ctx.barrierEpoch++
	target := ctx.barrierEpoch * int64(t.size)
	tool := r.loadTool()
	obs := r.obs.Load()
	// Wait-time accounting: the barrier's wait is the time spent in
	// the barrier minus the time spent productively executing stolen
	// tasks while waiting.
	var t0, taskNS int64
	timed := tool != nil
	if tool != nil {
		t0 = ompt.Now()
		ctx.emitTo(tool, ompt.EvBarrierEnter, kind, ctx.barrierEpoch, 0, "")
	}
	// Only the arrival that completes the epoch can flip another
	// thread's wait predicate (the predicates are monotonic in
	// arrivals), so earlier arrivals skip the broadcast — one wake per
	// barrier instead of one per thread. The completing arrival also
	// accounts the passage for the whole team in one striped add
	// (barrier passages are counted at epoch completion — a barrier
	// abandoned by a broken team counts zero) and stamps the release
	// time waiters use as their wait-end clock.
	arrived := t.arrivals.Add(1)
	if arrived >= target {
		if arrived == target {
			r.metrics.Add(int32(ctx.num), metrics.Barriers, int64(t.size))
			if t.size > 1 {
				t.release.Store(ompt.Now())
			}
		}
		t.wakeAll()
	} else if !timed {
		// This thread will wait (or drain tasks): start the clock for
		// the always-on wait metrics. The fast path — last arrival,
		// nothing left to do — reads no clock at all.
		timed = true
		t0 = ompt.Now()
	}
	if obs != nil {
		ctx.waitSince.Store(ompt.Now())
		ctx.waitKind.Store(waitBarrier)
	}
	// Sleep classification for the profiler: time parked in waitFor is
	// a dependence stall when stalled tasks gate the queues, steal
	// idling when runnable work exists elsewhere, and plain barrier
	// waiting otherwise. Clock reads happen only around actual parks —
	// the fast path is untouched.
	pb := t.profBucket
	var depNS, stealNS int64
	err := func() error {
		for {
			if tk := t.claimTask(ctx); tk != nil {
				if timed {
					s := ompt.Now()
					t.runTask(ctx, tk)
					taskNS += ompt.Now() - s
				} else {
					t.runTask(ctx, tk)
				}
				continue
			}
			if t.broken.Load() != 0 {
				return newBrokenAbort("barrier")
			}
			if t.arrivals.Load() >= target && t.outstanding.Load() == 0 {
				return nil
			}
			var sleepT0 int64
			sleepState := prof.BarrierWait
			if pb != nil {
				sleepT0 = ompt.Now()
				if t.depStalled.Load() > 0 {
					sleepState = prof.DependStall
				} else if t.outstanding.Load() > 0 {
					sleepState = prof.StealIdle
				}
			}
			t.waitFor(func() bool {
				return t.sched.hasRunnable() || t.broken.Load() != 0 ||
					(t.arrivals.Load() >= target && t.outstanding.Load() == 0)
			})
			switch sleepState {
			case prof.DependStall:
				depNS += ompt.Now() - sleepT0
			case prof.StealIdle:
				stealNS += ompt.Now() - sleepT0
			}
		}
	}()
	if obs != nil {
		ctx.waitKind.Store(waitNone)
	}
	if timed {
		// With a tool attached the exit event wants precise timing;
		// the metrics-only path ends the wait at the completer's
		// release stamp instead of reading the clock again. A stale
		// stamp (the epoch completed but the store has not landed
		// yet, or the team aborted) falls back to the clock.
		var end int64
		if tool != nil {
			end = ompt.Now()
		} else if end = t.release.Load(); end < t0 {
			end = ompt.Now()
		}
		wait := end - t0 - taskNS
		if wait < 0 {
			wait = 0
		}
		if wait > 0 {
			// Striped by thread number, not gtid: the master's gtid is
			// fresh every region, which would walk cold stripe lines
			// in fork-join loops, while thread numbers are dense and
			// stable across recycled regions. Any stripe key is
			// correct — the adds stay atomic — this one keeps the
			// line warm. The histogram also carries the wait-time sum
			// (the omp4go_barrier_wait_ns_total counter mirrors it).
			r.metrics.Observe(int32(ctx.num), metrics.HistBarrierWait, wait)
			if pb != nil {
				// The park classification above splits the wait; the
				// unparked remainder (arrival skew, scan loops) is
				// barrier waiting. Clamp to the measured wait so the
				// breakdown never exceeds it.
				dep, steal := depNS, stealNS
				if dep > wait {
					dep, steal = wait, 0
				} else if dep+steal > wait {
					steal = wait - dep
				}
				if bw := wait - dep - steal; bw > 0 {
					pb.Add(int32(ctx.num), prof.BarrierWait, bw)
				}
				pb.Add(int32(ctx.num), prof.DependStall, dep)
				pb.Add(int32(ctx.num), prof.StealIdle, steal)
				ctx.profWaitNS += wait
			}
		}
		if tool != nil {
			ctx.emitTo(tool, ompt.EvBarrierExit, kind, ctx.barrierEpoch, wait, "")
		}
	} else if pb != nil && depNS+stealNS > 0 {
		// The epoch-completing arrival skips wait timing (no t0), but
		// with outstanding tasks it still drains the wait loop and can
		// park. Those parks were measured directly around waitFor —
		// attribute them so a gated dependence chain is never
		// misread as compute.
		pb.Add(int32(ctx.num), prof.DependStall, depNS)
		pb.Add(int32(ctx.num), prof.StealIdle, stealNS)
		ctx.profWaitNS += depNS + stealNS
	}
	return err
}
