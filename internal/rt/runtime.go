package rt

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/ompt"
)

// Runtime is one OpenMP runtime instance. OMP4Py instantiates the
// same logic twice (pure-Python runtime and Cython cruntime); here a
// Runtime is parameterized by its Layer instead. Instances are fully
// independent: contexts from one runtime are treated as foreign
// initial threads by another, exactly as in the paper.
type Runtime struct {
	layer Layer
	icv   icvSet

	criticalMu sync.Mutex
	criticals  map[string]*sync.Mutex

	// atomicCells stripes locks for the atomic construct; cells are
	// selected by hashing the updated location's identity.
	atomicCells [64]sync.Mutex

	declRedMu sync.Mutex
	declRed   map[string]*DeclaredReduction

	epoch time.Time

	// tool is the attached OMPT-style observability tool; nil means
	// tracing disabled (the fast path at every hook site is a single
	// nil check). envTracer/traceFile are set when OMP4GO_TRACE
	// activated tracing through the environment.
	tool      ompt.Tool
	envTracer *ompt.Tracer
	traceFile string

	// gtidSeq hands out per-context global trace thread ids;
	// regionSeq numbers parallel regions; taskSeq numbers explicit
	// tasks (assigned only while a tool is attached).
	gtidSeq   atomic.Int64
	regionSeq atomic.Int64
	taskSeq   atomic.Int64

	// taskSched selects the team task scheduler: work-stealing
	// deques by default, the paper's shared list queue when
	// OMP4GO_TASK_SCHED=list (differential testing).
	taskSched schedMode
}

// New returns a runtime using the given synchronization layer with
// ICVs initialized from the OMP_* environment variables.
func New(layer Layer) *Runtime {
	return NewWithEnv(layer, nil)
}

// NewWithEnv is New with an explicit environment lookup (tests use a
// fake; nil means os.Getenv).
func NewWithEnv(layer Layer, getenv func(string) string) *Runtime {
	r := &Runtime{
		layer:     layer,
		icv:       defaultICVs(),
		criticals: make(map[string]*sync.Mutex),
		declRed:   make(map[string]*DeclaredReduction),
		epoch:     time.Now(),
	}
	r.icv.loadEnv(getenv)
	r.taskSched = parseSchedMode(r.icv.taskSched)
	if r.icv.displayEnv != "" {
		r.icv.display(displayEnvOut)
	}
	if r.icv.traceFile != "" {
		// OMP4GO_TRACE=<file> activates the built-in tracer at
		// runtime init, mirroring how OMP_TOOL attaches an OMPT tool;
		// FlushTrace writes the file when the program is done.
		r.traceFile = r.icv.traceFile
		r.envTracer = ompt.NewTracer(0)
		r.tool = r.envTracer
	}
	return r
}

// Layer reports the synchronization layer of this runtime.
func (r *Runtime) Layer() Layer { return r.layer }

// Context is the per-thread OpenMP execution context: the task stack
// of the paper's §III-C. CPython stores it in threading.local /
// C thread_local storage; Go has no TLS, so contexts are threaded
// explicitly through every runtime call.
type Context struct {
	rt     *Runtime
	team   *Team
	parent *Context // encountering thread's context, nil for initial threads
	num    int      // thread number within the team

	level       int // nesting depth of parallel regions (incl. serialized)
	activeLevel int // nesting depth counting only teams with size > 1

	curTask *task // innermost task (implicit or explicit)

	wsIndex      int64 // worksharing constructs encountered in this region
	wsDepth      int   // >0 while inside a worksharing construct body
	barrierEpoch int64 // barriers passed in this region
	curLoop      *LoopBounds

	// gtid is the global trace thread id (unique per context across
	// all teams); critT0 stacks critical-section entry times. Both
	// serve the observability subsystem only.
	gtid   int32
	critT0 []int64
}

// NewContext creates the context for an initial thread: a thread that
// exists outside any OpenMP-created team. It is implicitly part of a
// single-thread parallel team consisting only of itself.
func (r *Runtime) NewContext() *Context {
	ctx := &Context{rt: r, gtid: int32(r.gtidSeq.Add(1) - 1)}
	team := newTeam(r, nil, 1)
	ctx.team = team
	ctx.curTask = newTask(r.layer, nil, nil, false)
	team.members[0] = ctx
	return ctx
}

// Runtime returns the runtime that owns this context.
func (c *Context) Runtime() *Runtime { return c.rt }

// ThreadNum returns the thread number within the current team.
func (c *Context) ThreadNum() int { return c.num }

// TeamSize returns the size of the current team.
func (c *Context) TeamSize() int { return c.team.size }

// Team is a thread team created by a parallel directive.
type Team struct {
	rt    *Runtime
	layer Layer
	size  int

	members []*Context

	// wake is the team-wide wake-up channel used by barriers,
	// taskwait, ordered sections and copyprivate. Wakers broadcast
	// under the mutex so waiters cannot miss a state change.
	wakeMu   sync.Mutex
	wakeCond *sync.Cond

	sched       taskScheduler
	outstanding Counter // explicit tasks submitted but not yet completed

	arrivals Counter // monotonically increasing barrier arrival count

	regions *regionTable

	// broken is set when a team thread dies from a panic; barriers
	// and waits abort instead of deadlocking on the missing thread.
	broken Counter

	taskErrMu sync.Mutex
	taskErrs  []error

	// regionID numbers the parallel region this team executes
	// (observability subsystem).
	regionID int32
}

func newTeam(r *Runtime, master *Context, size int) *Team {
	t := &Team{
		regionID:    int32(r.regionSeq.Add(1)),
		rt:          r,
		layer:       r.layer,
		size:        size,
		members:     make([]*Context, size),
		sched:       newTaskScheduler(r.layer, size, r.taskSched),
		outstanding: NewCounter(r.layer),
		arrivals:    NewCounter(r.layer),
		regions:     newRegionTable(r.layer),
		broken:      NewCounter(r.layer),
	}
	t.wakeCond = sync.NewCond(&t.wakeMu)
	_ = master
	return t
}

// wakeAll wakes every thread blocked on the team (barrier, taskwait,
// ordered, copyprivate). Broadcasting under the mutex pairs with
// waitFor's check-then-wait so no wake-up is lost.
func (t *Team) wakeAll() {
	t.wakeMu.Lock()
	t.wakeCond.Broadcast()
	t.wakeMu.Unlock()
}

// waitFor blocks until pred() holds. pred must be monotonic with
// respect to the wake events (every state change that can make it
// true is followed by wakeAll).
func (t *Team) waitFor(pred func() bool) {
	t.wakeMu.Lock()
	for !pred() {
		t.wakeCond.Wait()
	}
	t.wakeMu.Unlock()
}

// ParallelOpts carries the clauses of a parallel directive that the
// runtime itself consumes.
type ParallelOpts struct {
	// NumThreads is the num_threads clause; 0 means the nthreads ICV.
	NumThreads int
	// If is the value of the if clause; it only applies when IfSet.
	If    bool
	IfSet bool
}

// Parallel executes body on a new thread team, implementing the
// parallel directive. The encountering thread becomes thread 0 of the
// new team (the master); the remaining team members run on fresh
// goroutines. An implicit task-draining barrier joins the team.
//
// Errors returned by body do not cross the region boundary on their
// own thread (the OpenMP rule); they are collected and returned as a
// single error from Parallel on the encountering thread. Panics in
// team threads are recovered and reported the same way.
func (r *Runtime) Parallel(ctx *Context, opts ParallelOpts, body func(*Context) error) error {
	if ctx.rt != r {
		return &MisuseError{Construct: "parallel", Msg: "context belongs to a different runtime"}
	}
	if ctx.wsDepth > 0 {
		return &MisuseError{Construct: "parallel",
			Msg: "parallel region may not be closely nested inside a worksharing construct without enclosing parallel"}
	}
	n := r.resolveTeamSize(ctx, opts)
	team := newTeam(r, ctx, n)

	var regionT0 int64
	if r.tool != nil {
		regionT0 = ompt.Now()
		ctx.emit(ompt.EvParallelBegin, int64(team.regionID), int64(n), 0, "")
	}

	errs := make([]error, n)
	panics := make(map[int]any)
	var panicMu sync.Mutex

	run := func(member *Context) {
		if r.tool != nil {
			member.emit(ompt.EvImplicitTaskBegin, int64(team.regionID), int64(member.num), 0, "")
			// The deferred end event also fires when the member dies
			// from a panic, keeping every begin paired in the trace.
			defer member.emit(ompt.EvImplicitTaskEnd, int64(team.regionID), int64(member.num), 0, "")
		}
		defer func() {
			if p := recover(); p != nil {
				panicMu.Lock()
				panics[member.num] = p
				panicMu.Unlock()
				// Mark the team broken so surviving threads abandon
				// barriers instead of waiting for the dead thread.
				team.broken.Store(1)
				team.wakeAll()
			}
		}()
		errs[member.num] = body(member)
		if errs[member.num] != nil {
			// An error escaping the region body means this thread
			// abandons its remaining synchronization points (the
			// OpenMP rule is that exceptions must be handled inside
			// the region); mark the team broken so peers blocked on
			// this thread — barriers, copyprivate — abort instead of
			// deadlocking.
			team.broken.Store(1)
			team.wakeAll()
		}
		// Implicit barrier at region end: drains outstanding tasks.
		// Barrier aborts caused by another thread's failure are not
		// recorded: the causing thread already carries the error.
		if err := team.Barrier(member); err != nil && errs[member.num] == nil &&
			team.broken.Load() == 0 {
			errs[member.num] = err
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		member := &Context{
			rt:          r,
			team:        team,
			parent:      ctx,
			num:         i,
			level:       ctx.level + 1,
			activeLevel: ctx.activeLevel,
			gtid:        int32(r.gtidSeq.Add(1) - 1),
		}
		if n > 1 {
			member.activeLevel++
		}
		member.curTask = newTask(r.layer, nil, nil, false)
		team.members[i] = member
		if i == 0 {
			continue // master runs on the encountering goroutine
		}
		wg.Add(1)
		go func(m *Context) {
			defer wg.Done()
			run(m)
		}(member)
	}
	run(team.members[0])
	wg.Wait()

	if r.tool != nil {
		ctx.emit(ompt.EvParallelEnd, int64(team.regionID), int64(n), ompt.Now()-regionT0, "")
	}

	if len(panics) > 0 {
		return &TeamPanic{Panics: panics}
	}
	errs = append(errs, team.takeTaskErrors()...)
	return joinErrors(errs)
}

func joinErrors(errs []error) error {
	// Broken-team aborts are consequences, not causes: a thread that
	// bailed out of a barrier because another thread failed should
	// not mask that thread's actual error.
	var first error
	total := 0
	for _, e := range errs {
		if e == nil {
			continue
		}
		total++
		if _, secondary := e.(*brokenAbort); secondary {
			continue
		}
		if first == nil {
			first = e
		}
	}
	if total == 0 {
		return nil
	}
	if first == nil {
		// Every error is a broken abort (e.g. the causing thread
		// panicked and is reported separately).
		for _, e := range errs {
			if e != nil {
				first = e
				break
			}
		}
	}
	if total > 1 {
		return &teamError{first: first, extra: total - 1}
	}
	return first
}

type teamError struct {
	first error
	extra int
}

func (e *teamError) Error() string {
	return e.first.Error() + " (and " + itoa(e.extra) + " more team thread error(s))"
}

func (e *teamError) Unwrap() error { return e.first }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (r *Runtime) resolveTeamSize(ctx *Context, opts ParallelOpts) int {
	r.icv.mu.Lock()
	n := r.icv.numThreads
	nested := r.icv.nested
	maxActive := r.icv.maxActiveLevels
	limit := r.icv.threadLimit
	r.icv.mu.Unlock()

	if opts.NumThreads > 0 {
		n = opts.NumThreads
	}
	if opts.IfSet && !opts.If {
		n = 1
	}
	if ctx.activeLevel >= 1 && !nested {
		n = 1 // nested region serialized unless omp_set_nested(true)
	}
	if ctx.activeLevel >= maxActive {
		n = 1
	}
	if n > limit {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Barrier implements the implicit barrier of a parallel region or
// worksharing construct: every thread of the team waits until all
// have arrived, consuming pending explicit tasks while waiting
// (§III-E of the paper). All explicit tasks generated in the region
// complete before any thread leaves.
func (t *Team) Barrier(ctx *Context) error {
	return t.barrier(ctx, ompt.BarrierImplicit)
}

// Barrier is the context-level entry point for the explicit barrier
// directive.
func (c *Context) Barrier() error { return c.team.barrier(c, ompt.BarrierExplicit) }

func (t *Team) barrier(ctx *Context, kind int64) error {
	if ctx.wsDepth > 0 {
		return &MisuseError{Construct: "barrier",
			Msg: "barrier may not appear inside a worksharing construct body"}
	}
	ctx.barrierEpoch++
	target := ctx.barrierEpoch * int64(t.size)
	tool := t.rt.tool
	// Wait-time accounting: the barrier's wait is the time spent in
	// the barrier minus the time spent productively executing stolen
	// tasks while waiting.
	var t0, taskNS int64
	if tool != nil {
		t0 = ompt.Now()
		ctx.emit(ompt.EvBarrierEnter, kind, ctx.barrierEpoch, 0, "")
	}
	t.arrivals.Add(1)
	t.wakeAll()
	err := func() error {
		for {
			if tk := t.claimTask(ctx); tk != nil {
				if tool != nil {
					s := ompt.Now()
					t.runTask(ctx, tk)
					taskNS += ompt.Now() - s
				} else {
					t.runTask(ctx, tk)
				}
				continue
			}
			if t.broken.Load() != 0 {
				return newBrokenAbort("barrier")
			}
			if t.arrivals.Load() >= target && t.outstanding.Load() == 0 {
				return nil
			}
			t.waitFor(func() bool {
				return t.sched.hasRunnable() || t.broken.Load() != 0 ||
					(t.arrivals.Load() >= target && t.outstanding.Load() == 0)
			})
		}
	}()
	if tool != nil {
		wait := ompt.Now() - t0 - taskNS
		if wait < 0 {
			wait = 0
		}
		ctx.emit(ompt.EvBarrierExit, kind, ctx.barrierEpoch, wait, "")
	}
	return err
}
