package rt

import (
	"strings"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/ompt"
)

// findWaiting polls the inflight-region snapshots until a member shows
// the given wait kind, returning that member's view.
func findWaiting(t *testing.T, r *Runtime, kind string) (MemberInfo, bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, reg := range r.InflightRegions() {
			for _, m := range reg.Members {
				if m.Wait == kind && m.WaitNS > 0 {
					return m, true
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return MemberInfo{}, false
}

// TestIntrospectDependWaitFor wedges a dependence chain — an
// undeferred reader whose writer predecessor is blocked mid-flight on
// another thread — and asserts both the introspection snapshot and the
// watchdog stall report name the dependence wait and what it waits on.
func TestIntrospectDependWaitFor(t *testing.T) {
	out := &syncBuffer{}
	prev := watchdogOut
	watchdogOut = out
	defer func() { watchdogOut = prev }()

	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	r.ensureObs()
	r.StartWatchdog(30 * time.Millisecond)

	aStarted := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	ctx := r.NewContext()
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.num != 0 {
				return nil // join barrier; claims and runs the writer
			}
			if err := c.SubmitTask(TaskOpts{Depends: Out("x")}, func(*Context) error {
				close(aStarted)
				<-release
				return nil
			}); err != nil {
				return err
			}
			<-aStarted
			return c.SubmitTask(TaskOpts{IfSet: true, If: false, Depends: In("x")},
				func(*Context) error { return nil })
		})
	}()

	m, ok := findWaiting(t, r, "depend")
	if !ok {
		close(release)
		<-done
		t.Fatal("no member ever showed a depend wait")
	}
	if m.WaitFor != "1 unresolved predecessor(s)" {
		t.Errorf("depend WaitFor = %q, want %q", m.WaitFor, "1 unresolved predecessor(s)")
	}

	// Hold the stall until the watchdog reports it, then check the
	// report names the dependence wait with its age.
	var found *StallMember
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && found == nil {
		for _, rep := range r.StallReports() {
			for i, sm := range rep.Waiting {
				if sm.Wait == "depend" {
					found = &rep.Waiting[i]
					break
				}
			}
		}
		if found == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("region failed after release: %v", err)
	}
	if found == nil {
		t.Fatal("watchdog never reported the depend stall")
	}
	if found.WaitFor != "1 unresolved predecessor(s)" {
		t.Errorf("stall WaitFor = %q, want the predecessor count", found.WaitFor)
	}
	if found.WaitNS < (30 * time.Millisecond).Nanoseconds() {
		t.Errorf("stall age %v below the watchdog threshold", time.Duration(found.WaitNS))
	}
	if text := out.String(); !strings.Contains(text, "at depend") ||
		!strings.Contains(text, "on 1 unresolved predecessor(s)") {
		t.Errorf("stderr report does not describe the depend wait:\n%s", text)
	}
}

// TestIntrospectTaskgroupWaitFor parks a member in a taskgroup end
// while its child is blocked on another thread, and asserts the
// snapshot names the taskgroup wait.
func TestIntrospectTaskgroupWaitFor(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	r.ensureObs()

	release := make(chan struct{})
	done := make(chan error, 1)
	ctx := r.NewContext()
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.num != 0 {
				return nil
			}
			c.TaskgroupBegin()
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				<-release
				return nil
			}); err != nil {
				return err
			}
			return c.TaskgroupEnd()
		})
	}()

	m, ok := findWaiting(t, r, "taskgroup")
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("region failed after release: %v", err)
	}
	if !ok {
		t.Fatal("no member ever showed a taskgroup wait")
	}
	if !strings.HasPrefix(m.WaitFor, "taskgroup") {
		t.Errorf("taskgroup WaitFor = %q, want a taskgroup description", m.WaitFor)
	}
}

// TestIntrospectTaskwaitWaitFor does the same for taskwait: the
// member's WaitFor carries the outstanding child count.
func TestIntrospectTaskwaitWaitFor(t *testing.T) {
	r := newTestRuntime(LayerAtomic)
	defer r.Shutdown()
	r.ensureObs()

	release := make(chan struct{})
	done := make(chan error, 1)
	ctx := r.NewContext()
	go func() {
		done <- r.Parallel(ctx, ParallelOpts{NumThreads: 2}, func(c *Context) error {
			if c.num != 0 {
				return nil
			}
			if err := c.SubmitTask(TaskOpts{}, func(*Context) error {
				<-release
				return nil
			}); err != nil {
				return err
			}
			return c.TaskWait()
		})
	}()

	m, ok := findWaiting(t, r, "taskwait")
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("region failed after release: %v", err)
	}
	if !ok {
		t.Fatal("no member ever showed a taskwait wait")
	}
	if m.WaitFor != "1 child task(s)" {
		t.Errorf("taskwait WaitFor = %q, want %q", m.WaitFor, "1 child task(s)")
	}
}

// TestTraceDroppedMetric overflows a deliberately tiny tracer ring and
// asserts the loss is visible as omp4go_trace_dropped_events_total on
// the /metrics endpoint — silent trace truncation is the failure mode
// this counter exists to surface.
func TestTraceDroppedMetric(t *testing.T) {
	r := NewWithEnv(LayerAtomic, fakeEnv(map[string]string{
		"OMP4GO_METRICS": "127.0.0.1:0",
	}))
	defer r.Shutdown()
	if r.envServer == nil {
		t.Fatal("OMP4GO_METRICS did not start the endpoint")
	}

	tr := ompt.NewTracer(2) // 2-record ring per thread
	r.SetTool(tr)
	for i := int64(0); i < 8; i++ {
		tr.Emit(ompt.Record{Time: i, Kind: ompt.EvTaskCreate, GTID: 7, A: i})
	}
	if got := r.TraceDropped(); got != 6 {
		t.Fatalf("TraceDropped = %d, want 6 (8 emits into a 2-slot ring)", got)
	}

	body := httpGet(t, "http://"+r.envServer.Addr()+"/metrics")
	if !strings.Contains(body, "omp4go_trace_dropped_events_total 6") {
		t.Errorf("/metrics does not report the dropped events:\n%s", body)
	}

	// The attached-tool count and the env tracer are deduplicated:
	// attaching the same tracer again must not double the number.
	r.SetTool(ompt.Multi(tr, tr))
	if got := r.TraceDropped(); got != 6 {
		t.Errorf("TraceDropped after re-attach = %d, want 6 (no double count)", got)
	}
}
