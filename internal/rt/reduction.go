package rt

import (
	"fmt"

	"github.com/omp4go/omp4go/internal/directive"
)

// DeclaredReduction is a user-defined reduction registered through
// the declare reduction directive: a combiner over (out, in) and an
// identity-producing initializer.
type DeclaredReduction struct {
	Ident    string
	Combine  func(out, in any) any
	Identity func() any
}

// RegisterReduction installs a user-declared reduction. Redeclaring
// an identifier is an error, as in OpenMP.
func (r *Runtime) RegisterReduction(d *DeclaredReduction) error {
	if d == nil || d.Ident == "" || d.Combine == nil {
		return &MisuseError{Construct: "declare reduction", Msg: "incomplete declaration"}
	}
	r.declRedMu.Lock()
	defer r.declRedMu.Unlock()
	if _, dup := r.declRed[d.Ident]; dup {
		return &MisuseError{Construct: "declare reduction",
			Msg: fmt.Sprintf("reduction identifier %q redeclared", d.Ident)}
	}
	r.declRed[d.Ident] = d
	return nil
}

// LookupReduction resolves a reduction identifier previously
// registered with RegisterReduction.
func (r *Runtime) LookupReduction(ident string) (*DeclaredReduction, bool) {
	r.declRedMu.Lock()
	d, ok := r.declRed[ident]
	r.declRedMu.Unlock()
	return d, ok
}

// ReduceInt combines two int64 partial results with a built-in
// reduction operator.
func ReduceInt(op string, a, b int64) (int64, error) {
	switch op {
	case "+":
		return a + b, nil
	case "*":
		return a * b, nil
	case "-":
		// OpenMP defines the minus reduction to combine with +.
		return a + b, nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "&&":
		if a != 0 && b != 0 {
			return 1, nil
		}
		return 0, nil
	case "||":
		if a != 0 || b != 0 {
			return 1, nil
		}
		return 0, nil
	case "min":
		return min64(a, b), nil
	case "max":
		if a > b {
			return a, nil
		}
		return b, nil
	}
	return 0, &MisuseError{Construct: "reduction", Msg: "unknown operator " + op}
}

// ReduceFloat combines two float64 partial results with a built-in
// reduction operator.
func ReduceFloat(op string, a, b float64) (float64, error) {
	switch op {
	case "+", "-":
		return a + b, nil
	case "*":
		return a * b, nil
	case "min":
		if a < b {
			return a, nil
		}
		return b, nil
	case "max":
		if a > b {
			return a, nil
		}
		return b, nil
	case "&&":
		if a != 0 && b != 0 {
			return 1, nil
		}
		return 0, nil
	case "||":
		if a != 0 || b != 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, &MisuseError{Construct: "reduction", Msg: "operator " + op + " is not valid for floats"}
}

// IntIdentity returns the identity element for a built-in reduction
// operator over integers.
func IntIdentity(op string) (int64, error) {
	switch op {
	case "+", "-", "|", "^", "||":
		return 0, nil
	case "*", "&&":
		return 1, nil
	case "&":
		return -1, nil
	case "min":
		return int64(^uint64(0) >> 1), nil // MaxInt64
	case "max":
		return -int64(^uint64(0)>>1) - 1, nil // MinInt64
	}
	return 0, &MisuseError{Construct: "reduction", Msg: "unknown operator " + op}
}

// FloatIdentity returns the identity element for a built-in reduction
// operator over floats.
func FloatIdentity(op string) (float64, error) {
	switch op {
	case "+", "-", "||":
		return 0, nil
	case "*", "&&":
		return 1, nil
	case "min":
		return maxFloat, nil
	case "max":
		return -maxFloat, nil
	}
	return 0, &MisuseError{Construct: "reduction", Msg: "operator " + op + " is not valid for floats"}
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

var _ = directive.ScheduleStatic // anchor the directive dependency for Schedule
