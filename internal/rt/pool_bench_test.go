package rt

import (
	"fmt"
	"testing"
)

// BenchmarkRegionOverhead measures the fork-join cost of an empty
// parallel region — the quantity behind the paper's Fig. 5 overhead
// comparison — under the persistent pool and the spawn-per-region
// baseline (OMP4GO_POOL=off). The pool's win comes from dispatching
// to parked goroutines and recycling teams (no per-region deque or
// team allocation), not from extra parallelism.
func BenchmarkRegionOverhead(b *testing.B) {
	for _, mode := range []string{"on", "off"} {
		for _, n := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("pool=%s/%dT", mode, n), func(b *testing.B) {
				r := NewWithEnv(LayerAtomic, poolEnv(mode))
				defer r.Shutdown()
				ctx := r.NewContext()
				body := func(c *Context) error { return nil }
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := r.Parallel(ctx, ParallelOpts{NumThreads: n}, body); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
