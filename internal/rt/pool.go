package rt

import (
	stdctx "context"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
)

// This file implements the persistent worker pool behind Parallel.
// The paper's runtime (§4, Fig. 5) amortizes thread management by
// keeping OpenMP worker threads alive across parallel regions instead
// of re-spawning them per region; libgomp does the same with an
// OMP_WAIT_POLICY-controlled idle loop. Here each Runtime owns a pool
// of long-lived worker goroutines: Parallel dispatches region bodies
// to already-running workers through their park slots (layer.go), and
// only falls back to `go func` when the pool is exhausted or disabled
// (OMP4GO_POOL=off, the spawn-per-region differential baseline).
//
// Pool workers carry a stable global thread id (gtid) across regions,
// so per-thread structures keyed by thread identity — the OMPT
// per-thread trace rings, and the recycled team's Chase–Lev deques —
// are allocated once per worker rather than once per region.
//
// Idle workers honor the wait-policy ICV: "active" spins with
// runtime.Gosched backoff before parking, "passive" (the default)
// parks immediately. A parked worker that stays idle past
// workerIdleTimeout retires its goroutine, so short-lived runtimes
// (the interpreter creates one per program) do not accumulate parked
// goroutines; Runtime.Shutdown retires the pool deterministically.

const (
	// activeSpins is the number of Gosched-yield probes an idle worker
	// performs before parking under the "active" wait policy.
	activeSpins = 128
	// graceSpins is the short probe burst every worker makes before a
	// full park, whatever the wait policy: in fork-join loops the next
	// region's dispatch usually lands within a few scheduler yields,
	// and catching it in poll skips the park-unpark round trip
	// entirely. libgomp's passive policy keeps the same brief spin
	// before sleeping (gomp_throttled_spin_count).
	graceSpins = 64
	// workerIdleTimeout is how long a parked worker stays resident
	// waiting for the next region before retiring its goroutine.
	workerIdleTimeout = 250 * time.Millisecond
)

// dispatch is the by-value work handoff a park slot carries: the
// member's team (which holds the region body and join group) and the
// member context. A plain struct instead of a closure keeps
// per-dispatch allocation at zero.
type dispatch struct {
	t *Team
	m *Context
}

// poolWorker is one persistent pool slot: a parked goroutine with a
// stable trace thread id and a layer-flavoured handoff cell.
type poolWorker struct {
	pool *workerPool
	gtid int32
	slot parkSlot
}

// workerPool owns a Runtime's persistent workers. free holds parked
// (or about-to-park) workers available for acquisition; total counts
// live worker goroutines, bounded by max.
type workerPool struct {
	rt *Runtime

	mu       sync.Mutex
	free     []*poolWorker
	total    int
	max      int
	shutdown bool
}

func newWorkerPool(r *Runtime) *workerPool {
	// The persistent-worker cap: enough to serve a few nested teams of
	// hardware size without unbounded goroutine growth, and never more
	// than the thread-limit ICV. Demand beyond the cap falls back to
	// spawned goroutines in Parallel.
	max := runtime.NumCPU() * 4
	if max < 16 {
		max = 16
	}
	if limit := r.GetThreadLimit(); limit < max {
		max = limit
	}
	return &workerPool{rt: r, max: max}
}

// acquire takes up to k workers off the free list, spawning new
// persistent workers while under the cap. It may return fewer than k
// (including none after shutdown); the caller covers the remainder
// with plain goroutines.
func (p *workerPool) acquire(k int) []*poolWorker {
	if k <= 0 {
		return nil
	}
	p.mu.Lock()
	if p.shutdown {
		p.mu.Unlock()
		return nil
	}
	var ws []*poolWorker
	for k > 0 && len(p.free) > 0 {
		w := p.free[len(p.free)-1]
		p.free[len(p.free)-1] = nil
		p.free = p.free[:len(p.free)-1]
		ws = append(ws, w)
		k--
	}
	for k > 0 && p.total < p.max {
		w := &poolWorker{
			pool: p,
			gtid: int32(p.rt.gtidSeq.Add(1) - 1),
			slot: newParkSlot(p.rt.layer),
		}
		p.total++
		go w.loop()
		ws = append(ws, w)
		k--
	}
	p.mu.Unlock()
	return ws
}

// releaseAll returns a region's borrowed workers under one lock. The
// master calls it after the join, before Parallel returns, so a
// caller observing Parallel's return also observes every borrowed
// slot back on the list. A pool shut down mid-region retires the
// returning workers instead: they are off the free list, so nothing
// can race a dispatch against the slot close.
func (p *workerPool) releaseAll(ws []*poolWorker) {
	if len(ws) == 0 {
		return
	}
	p.mu.Lock()
	if p.shutdown {
		p.total -= len(ws)
		p.mu.Unlock()
		for _, w := range ws {
			w.slot.closeSlot()
		}
		return
	}
	p.free = append(p.free, ws...)
	p.mu.Unlock()
}

// tryRetire removes an idle-timed-out worker from the free list. It
// fails when an acquirer already took the worker — a dispatch is then
// imminent and the worker must keep waiting.
func (p *workerPool) tryRetire(w *poolWorker) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, f := range p.free {
		if f == w {
			p.free[i] = p.free[len(p.free)-1]
			p.free[len(p.free)-1] = nil
			p.free = p.free[:len(p.free)-1]
			p.total--
			return true
		}
	}
	return false
}

// shutdownAll retires every parked worker and marks the pool closed;
// busy workers retire when they release. Subsequent regions fall back
// to spawned goroutines.
func (p *workerPool) shutdownAll() {
	p.mu.Lock()
	p.shutdown = true
	ws := p.free
	p.free = nil
	p.total -= len(ws)
	p.mu.Unlock()
	for _, w := range ws {
		w.slot.closeSlot()
	}
}

// counts reports (parked, live) workers — a probe for slot-leak
// assertions in tests.
func (p *workerPool) counts() (idle, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free), p.total
}

// loop is the worker goroutine: wait for a region body, run it,
// repeat until closed or retired.
func (w *poolWorker) loop() {
	// The stable worker label makes parked pool goroutines
	// identifiable in pprof goroutine profiles for the worker's whole
	// lifetime; the per-region omp_region/omp_gtid labels are applied
	// by Parallel (and only while introspection is on).
	pprof.SetGoroutineLabels(pprof.WithLabels(stdctx.Background(),
		pprof.Labels("omp_pool_worker", itoa(int(w.gtid)))))
	for {
		d, ok := w.await()
		if !ok {
			return
		}
		d.t.memberMain(d.m)
		d.t.wg.Done()
	}
}

// await implements the wait-policy-aware idle loop: spin-then-park
// under "active", park immediately under "passive", retiring the
// worker when a full idle timeout passes with the worker still free.
func (w *poolWorker) await() (dispatch, bool) {
	spins := graceSpins
	if w.pool.rt.GetWaitPolicy() == "active" {
		spins = activeSpins
	}
	for i := 0; i < spins; i++ {
		if d, ok := w.slot.poll(); ok {
			return d, true
		}
		runtime.Gosched()
	}
	m := w.pool.rt.metrics
	for {
		// Each full park (and the matching dispatch wake-up) is
		// metered: a high park/unpark rate relative to regions forked
		// means the spin grace window is missing the fork-join cadence.
		m.Inc(w.gtid, metrics.PoolParks)
		d, ok, closed := w.slot.get(workerIdleTimeout)
		if ok {
			m.Inc(w.gtid, metrics.PoolUnparks)
			return d, true
		}
		if closed {
			m.Inc(w.gtid, metrics.PoolRetirements)
			return dispatch{}, false
		}
		if w.pool.tryRetire(w) {
			m.Inc(w.gtid, metrics.PoolRetirements)
			return dispatch{}, false
		}
		// Not on the free list: an acquirer holds this worker and will
		// dispatch shortly — park again without retiring.
	}
}
